bin/fpart_cli.ml: Arg Array Cmd Cmdliner Device Filename Flow Format Fpart Hashtbl Hypergraph List Netlist Partition Printf String Term
