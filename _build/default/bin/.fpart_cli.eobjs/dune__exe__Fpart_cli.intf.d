bin/fpart_cli.mli:
