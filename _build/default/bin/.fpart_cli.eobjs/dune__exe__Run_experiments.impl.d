bin/run_experiments.ml: Arg Cmd Cmdliner List Printf Report String Term
