  $ fpart --generate 120x16 --device XC3090 --seed 7
  $ fpart --generate 120x16 --device XC3090 --seed 7 --algo kwayx | head -2
  $ fpart --generate 120x16 --device XC3090 --seed 7 --algo fbb-mw | head -2
  $ fpart --generate 10x2 --device XC9999
  $ fpart --generate 120x16 --device XC3042 --seed 7 --save out.part > /dev/null
  $ head -5 out.part
  $ cat > tiny.blif <<'BLIF'
  > .model tiny
  > .inputs a b
  > .outputs y
  > .names a b t
  > 11 1
  > .names t y
  > 1 1
  > .end
  > BLIF
  $ fpart tiny.blif --device XC3020
  $ cat > tiny.v <<'V'
  > module tiny (a, b, y);
  >   input a, b;
  >   output y;
  >   wire t;
  >   AND2 g1 (a, b, t);
  >   INV g2 (t, y);
  > endmodule
  > V
  $ fpart tiny.v --device XC3020
  $ printf '.model m\n.names\n.end\n' > bad.blif
  $ fpart bad.blif --device XC3020
  $ fpart --generate 120x16 --device XC3042 --seed 7 --save rt.part > /dev/null
  $ fpart --generate 120x16 --device XC3042 --seed 7 --check rt.part
  $ fpart --generate 120x16 --device XC3020 --seed 7 --check rt.part 2>&1 | tail -1
