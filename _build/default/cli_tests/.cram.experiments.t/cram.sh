  $ run_fpart_experiments no_such_artifact 2>&1 | head -1
  $ run_fpart_experiments figure3 2>/dev/null
