examples/baselines_compare.ml: Array Device Flow Format Fpart Hypergraph Mlevel Netlist Printf Sys
