examples/baselines_compare.mli:
