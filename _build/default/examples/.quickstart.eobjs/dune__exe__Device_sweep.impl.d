examples/device_sweep.ml: Array Device Format Fpart List Netlist Printf String Sys
