examples/formats_tour.ml: Array Device Format Fpart Hypergraph List Netlist Partition String
