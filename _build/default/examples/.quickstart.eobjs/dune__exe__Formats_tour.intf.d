examples/formats_tour.mli:
