examples/heterogeneous.ml: Array Device Format Fpart Hypergraph List Netlist Printf Sys
