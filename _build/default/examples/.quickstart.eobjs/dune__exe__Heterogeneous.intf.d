examples/heterogeneous.mli:
