examples/io_critical.ml: Device Format Fpart Hypergraph Netlist Partition String
