examples/io_critical.mli:
