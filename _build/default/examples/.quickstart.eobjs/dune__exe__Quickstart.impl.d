examples/quickstart.ml: Device Format Fpart Hypergraph Netlist Partition
