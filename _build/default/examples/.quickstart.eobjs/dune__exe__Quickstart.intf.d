examples/quickstart.mli:
