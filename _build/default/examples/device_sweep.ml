(* Device sweep: partition one circuit onto each device of the Xilinx
   catalog and watch the device count track the lower bound — the
   experiment behind the paper's Tables 2-5, on a single circuit.

   Run with: dune exec examples/device_sweep.exe [circuit]
   where circuit is an MCNC name (default s5378). *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s5378" in
  match Netlist.Mcnc.find name with
  | None ->
    Printf.eprintf "unknown circuit %s (try one of: %s)\n" name
      (String.concat ", "
         (List.map (fun c -> c.Netlist.Mcnc.circuit_name) Netlist.Mcnc.all));
    exit 1
  | Some circuit ->
    Format.printf "circuit %s: %d IOBs, %d CLBs (XC2000 map), %d CLBs (XC3000 map)@."
      circuit.Netlist.Mcnc.circuit_name circuit.Netlist.Mcnc.iobs
      circuit.Netlist.Mcnc.clbs_xc2000 circuit.Netlist.Mcnc.clbs_xc3000;
    Format.printf "@.%-8s %6s %6s %5s %3s %3s %9s %8s@." "device" "S_MAX" "T_MAX"
      "delta" "M" "k" "feasible" "cpu";
    List.iter
      (fun device ->
        let hg = Netlist.Mcnc.surrogate circuit device.Device.family in
        let delta = Device.paper_delta device in
        let r = Fpart.Driver.run hg device in
        Format.printf "%-8s %6d %6d %5.2f %3d %3d %9b %7.2fs@."
          device.Device.dev_name
          (Device.s_max device ~delta)
          device.Device.t_max delta r.Fpart.Driver.m_lower r.Fpart.Driver.k
          r.Fpart.Driver.feasible r.Fpart.Driver.cpu_seconds)
      Device.catalog;
    Format.printf
      "@.Reading the table: k is the number of devices FPART produced; M is@.\
       the theoretical lower bound.  Bigger devices need fewer copies, and k@.\
       should track M closely on every row.@."
