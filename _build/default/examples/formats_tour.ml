(* Formats tour: one circuit travelling through every interchange format
   the library supports — BLIF, structural Verilog, XNF — plus a saved
   partition file, with invariants checked at every hop.

   Run with: dune exec examples/formats_tour.exe *)

module Hg = Hypergraph.Hgraph

let describe label h =
  Format.printf "%-22s %d cells, %d pads, %d nets, size %d, flops %d@." label
    (Hg.num_cells h) (Hg.num_pads h) (Hg.num_nets h) (Hg.total_size h)
    (Hg.total_flops h)

let () =
  (* a small sequential circuit: 30% of cells carry a flip-flop *)
  let spec =
    {
      (Netlist.Generator.default_spec ~name:"tour" ~cells:150 ~pads:20 ~seed:99) with
      Netlist.Generator.flop_ratio = 0.3;
    }
  in
  let circuit = Netlist.Generator.generate spec in
  describe "generated:" circuit;

  (* BLIF: the classic academic format; latches carry the FF marks *)
  let blif_text = Netlist.Blif.to_string (Netlist.Blif.of_hypergraph ~name:"tour" circuit) in
  let from_blif =
    match Netlist.Blif.parse_string blif_text with
    | Ok m -> m.Netlist.Blif.graph
    | Error e -> failwith e
  in
  describe "via BLIF:" from_blif;
  Format.printf
    "  (BLIF can only express a flip-flop on two-net cells via .latch, so@.\
    \   most FF annotations degrade — use Verilog or XNF to keep weights)@.";

  (* Verilog: SIZE/FLOPS parameters make the weights exact *)
  let v_text =
    Netlist.Verilog.to_string (Netlist.Verilog.of_hypergraph ~name:"tour" circuit)
  in
  let from_verilog =
    match Netlist.Verilog.parse_string v_text with
    | Ok m -> m.Netlist.Verilog.graph
    | Error e -> failwith e
  in
  describe "via Verilog:" from_verilog;

  (* XNF: the era-native Xilinx format *)
  let xnf_text =
    Netlist.Xnf.to_string
      (Netlist.Xnf.of_hypergraph ~part:"3020PC68" ~name:"tour" circuit)
  in
  let from_xnf =
    match Netlist.Xnf.parse_string ~name:"tour" xnf_text with
    | Ok d -> d.Netlist.Xnf.graph
    | Error e -> failwith e
  in
  describe "via XNF:" from_xnf;

  (* partition the Verilog round-trip and archive the result *)
  let r = Fpart.Driver.run from_verilog Device.xc3020 in
  Format.printf "@.FPART on the round-tripped circuit: %d x XC3020 (M = %d)@."
    r.Fpart.Driver.k r.Fpart.Driver.m_lower;
  let pf =
    Netlist.Partfile.of_assignment from_verilog ~circuit:"tour"
      ~delta:r.Fpart.Driver.delta
      ~block_devices:(Array.make r.Fpart.Driver.k "XC3020")
      ~assignment:r.Fpart.Driver.assignment
  in
  let text = Netlist.Partfile.to_string pf in
  Format.printf "partition file: %d lines; reloading and validating...@."
    (List.length (String.split_on_char '\n' text));
  match Netlist.Partfile.parse_string text with
  | Error e -> failwith e
  | Ok pf2 -> (
    match Netlist.Partfile.apply pf2 from_verilog with
    | Error e -> failwith e
    | Ok (assignment, k) ->
      let ctx =
        Partition.Cost.context_of Device.xc3020 ~delta:r.Fpart.Driver.delta
          from_verilog
      in
      let report = Partition.Check.of_assignment from_verilog ~k ~assignment ~ctx in
      Format.printf "%a" Partition.Check.pp report;
      let st =
        Partition.State.create from_verilog ~k ~assign:(fun v -> assignment.(v))
      in
      Format.printf "quality: %a@." Partition.Metrics.pp (Partition.Metrics.all st))
