(* Heterogeneous partitioning: minimise total device *cost* over a
   priced XC3000-family library instead of the device *count* for one
   type — the generalisation of Kuznar et al. (DAC'94) that the paper
   positions itself against.  Also demonstrates multi-start FPART.

   Run with: dune exec examples/heterogeneous.exe [circuit] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s9234" in
  let circuit =
    match Netlist.Mcnc.find name with
    | Some c -> c
    | None ->
      Printf.eprintf "unknown circuit %s\n" name;
      exit 1
  in
  let hg = Netlist.Mcnc.surrogate circuit Device.XC3000 in
  Format.printf "%s: %a@.@." name Hypergraph.Hgraph.pp hg;

  (* 1. Homogeneous baselines: best FPART solution per device type. *)
  Format.printf "homogeneous (FPART, one device type):@.";
  List.iter
    (fun p ->
      let r = Fpart.Driver.run hg p.Fpart.Hetero.device in
      Format.printf "  %d x %-7s at %.1f = cost %5.1f@." r.Fpart.Driver.k
        p.Fpart.Hetero.device.Device.dev_name p.Fpart.Hetero.unit_cost
        (float_of_int r.Fpart.Driver.k *. p.Fpart.Hetero.unit_cost))
    Fpart.Hetero.default_candidates;

  (* 2. Heterogeneous: mix device types, greedy cost efficiency. *)
  let het = Fpart.Hetero.run hg in
  Format.printf "@.heterogeneous (greedy cost efficiency): cost %.1f, feasible %b@."
    het.Fpart.Hetero.total_cost het.Fpart.Hetero.feasible;
  List.iteri
    (fun i b ->
      Format.printf "  block %d: %-7s size %3d pins %3d flops %3d (cost %.1f)@." i
        b.Fpart.Hetero.blk_device.Device.dev_name b.Fpart.Hetero.blk_size
        b.Fpart.Hetero.blk_pins b.Fpart.Hetero.blk_flops b.Fpart.Hetero.blk_cost)
    het.Fpart.Hetero.blocks;

  (* 3. Multi-start: squeeze the homogeneous solution with 5 seeds. *)
  let device = Device.xc3020 in
  let single = Fpart.Driver.run hg device in
  let best = Fpart.Driver.run_best ~runs:5 hg device in
  Format.printf
    "@.multi-start on %s: single run k=%d cut=%d; best of 5 runs k=%d cut=%d@."
    device.Device.dev_name single.Fpart.Driver.k single.Fpart.Driver.cut
    best.Fpart.Driver.k best.Fpart.Driver.cut
