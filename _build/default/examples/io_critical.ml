(* I/O-critical partitioning: when pads dominate, the external-I/O
   balancing factor d^E (paper section 3.4) matters.  This example
   builds a pad-heavy circuit (the pin bound, not the logic bound,
   determines M), partitions it, and shows how the external I/Os spread
   across the blocks.

   Run with: dune exec examples/io_critical.exe *)

let () =
  (* 120 CLBs but 300 primary I/Os: on an XC3020 (64 IOBs) the pin term
     gives M = ceil(300/64) = 5 while the logic term gives only 3. *)
  let spec =
    Netlist.Generator.default_spec ~name:"iocrit" ~cells:120 ~pads:300 ~seed:2026
  in
  let circuit = Netlist.Generator.generate spec in
  let device = Device.xc3020 in
  let delta = Device.paper_delta device in
  let io_critical =
    Device.io_critical device ~delta
      ~total_size:(Hypergraph.Hgraph.total_size circuit)
      ~total_pads:(Hypergraph.Hgraph.num_pads circuit)
  in
  Format.printf "circuit: %a@." Hypergraph.Hgraph.pp circuit;
  Format.printf "I/O-critical for %s: %b@.@." device.Device.dev_name io_critical;

  let r = Fpart.Driver.run circuit device in
  let st = Fpart.Driver.final_state r circuit in
  Format.printf "FPART: %d devices (M = %d), feasible = %b@.@." r.Fpart.Driver.k
    r.Fpart.Driver.m_lower r.Fpart.Driver.feasible;

  let total_pads = Hypergraph.Hgraph.num_pads circuit in
  let avg = float_of_int total_pads /. float_of_int r.Fpart.Driver.m_lower in
  Format.printf "external I/Os per block (T^E_AVG = %.1f):@." avg;
  for b = 0 to r.Fpart.Driver.k - 1 do
    let pads = Partition.State.pads_of st b in
    let bar = String.make (pads / 4) '#' in
    Format.printf "  block %d: %3d pads, %3d/%d pins  %s@." b pads
      (Partition.State.pins_of st b)
      device.Device.t_max bar
  done;
  let ctx = Partition.Cost.context_of device ~delta circuit in
  Format.printf "@.final external-I/O balancing factor d^E = %.4f (0 = every block@."
    (Partition.Cost.io_balance ctx st);
  Format.printf "absorbs at least its share of pads; large values mean starved blocks@.";
  Format.printf "that will strangle the remainder at late iterations).@."
