(* Quickstart: generate a small circuit, partition it onto XC3020
   devices with FPART, and print the resulting blocks.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A synthetic 400-CLB circuit with 60 I/O pads (think of it as a
     small mapped MCNC design). *)
  let spec = Netlist.Generator.default_spec ~name:"demo" ~cells:400 ~pads:60 ~seed:42 in
  let circuit = Netlist.Generator.generate spec in
  Format.printf "circuit: %a@." Hypergraph.Hgraph.pp circuit;

  (* Partition onto XC3020 devices (64 CLBs, 64 IOBs) at the paper's
     filling ratio of 0.9. *)
  let device = Device.xc3020 in
  let result = Fpart.Driver.run circuit device in
  Format.printf "device: %a, lower bound M = %d@." Device.pp device
    result.Fpart.Driver.m_lower;
  Format.printf "FPART produced %d blocks (feasible = %b) in %.2fs@."
    result.Fpart.Driver.k result.Fpart.Driver.feasible
    result.Fpart.Driver.cpu_seconds;

  (* Inspect each block. *)
  let st = Fpart.Driver.final_state result circuit in
  let s_max = Device.s_max device ~delta:result.Fpart.Driver.delta in
  for b = 0 to result.Fpart.Driver.k - 1 do
    Format.printf "  block %d: size %3d/%d  pins %3d/%d@." b
      (Partition.State.size_of st b)
      s_max
      (Partition.State.pins_of st b)
      device.Device.t_max
  done;
  Format.printf "cut nets: %d, total pins: %d@." result.Fpart.Driver.cut
    result.Fpart.Driver.total_pins
