lib/anneal/sa.ml: Array Hypergraph Partition Prng Sys
