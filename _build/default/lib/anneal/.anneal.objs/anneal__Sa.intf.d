lib/anneal/sa.mli: Device Hypergraph
