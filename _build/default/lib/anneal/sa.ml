module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Rng = Prng.Splitmix

type config = {
  delta : float;
  w_infeasible : float;
  moves_factor : int;
  initial_temp : float;
  cooling : float;
  min_temp : float;
  max_extra_k : int;
  seed : int;
}

let default_config =
  {
    delta = 0.9;
    w_infeasible = 10.0;
    moves_factor = 8;
    initial_temp = 0.5;
    cooling = 0.92;
    min_temp = 0.002;
    max_extra_k = 8;
    seed = 0x5a;
  }

type outcome = {
  assignment : int array;
  k : int;
  feasible : bool;
  cut : int;
  trials : int;
  cpu_seconds : float;
}

let block_energy config ctx st i =
  config.w_infeasible
  *. Cost.block_distance Cost.default_params ctx ~size:(State.size_of st i)
       ~pins:(State.pins_of st i) ~flops:(State.flops_of st i)

(* One annealing run at fixed [k]; mutates [st] and returns trials. *)
let anneal config ctx rng st =
  let hg = State.hypergraph st in
  let n = Hg.num_nodes hg in
  let k = State.k st in
  let nets = max 1 (Hg.num_nets hg) in
  let cut_weight = 1.0 /. float_of_int nets in
  let trials = ref 0 in
  let temp = ref config.initial_temp in
  while !temp > config.min_temp do
    for _ = 1 to config.moves_factor * n do
      incr trials;
      let v = Rng.int rng n in
      let a = State.block_of st v in
      let b = Rng.int rng k in
      if b <> a then begin
        let before =
          block_energy config ctx st a
          +. block_energy config ctx st b
          +. (cut_weight *. float_of_int (State.cut_size st))
        in
        State.move st v b;
        let after =
          block_energy config ctx st a
          +. block_energy config ctx st b
          +. (cut_weight *. float_of_int (State.cut_size st))
        in
        let delta_e = after -. before in
        let accept =
          delta_e <= 0.0 || Rng.float rng < exp (-.delta_e /. !temp)
        in
        if not accept then State.move st v a
      end
    done;
    temp := !temp *. config.cooling
  done;
  !trials

let partition hg device config =
  let t0 = Sys.time () in
  let ctx = Cost.context_of device ~delta:config.delta hg in
  let m = max 1 ctx.Cost.m_lower in
  let n = Hg.num_nodes hg in
  let trials = ref 0 in
  let best = ref None in
  let rec probe k =
    if k > m + config.max_extra_k then ()
    else begin
      let rng = Rng.create (config.seed + (1000 * k)) in
      (* random balanced-ish start *)
      let st = State.create hg ~k ~assign:(fun v -> (v * 31 + k) mod k) in
      trials := !trials + anneal config ctx rng st;
      let report = Partition.Check.of_state st ~ctx in
      (match !best with
      | Some (v, k', _) when (v, k') <= (report.Partition.Check.violations, k) -> ()
      | _ -> best := Some (report.Partition.Check.violations, k, State.assignment st));
      if not report.Partition.Check.feasible then probe (k + 1)
    end
  in
  probe m;
  match !best with
  | None ->
    {
      assignment = Array.make n 0;
      k = 1;
      feasible = false;
      cut = 0;
      trials = !trials;
      cpu_seconds = Sys.time () -. t0;
    }
  | Some (violations, k, assignment) ->
    let st = State.create hg ~k ~assign:(fun v -> assignment.(v)) in
    {
      assignment;
      k;
      feasible = violations = 0;
      cut = State.cut_size st;
      trials = !trials;
      cpu_seconds = Sys.time () -. t0;
    }
