(** Simulated-annealing k-way partitioning — the other classical
    iterative-improvement family.

    The paper's introduction cites Yeh/Cheng/Lin (TCAD 1995,
    reference [17]), the standard experimental comparison of FM-style
    moves against annealing for two-way partitioning; this module
    provides the annealing side for our multi-way, feasibility-driven
    setting so the comparison can be reproduced (the [anneal] artifact
    of the experiment runner).

    Energy of a k-way assignment:
    [E = w_inf · Σ_i d_i  +  cut / |nets|] where [d_i] is the paper's
    per-block infeasibility distance — feasibility dominates, cut breaks
    ties.  Moves relocate one random node to one random other block and
    are accepted by the Metropolis rule under a geometric cooling
    schedule.  Like the other drivers, block counts are probed upward
    from the lower bound [M] until a feasible partition appears. *)

type config = {
  delta : float;          (** Filling ratio. *)
  w_infeasible : float;   (** Weight of the infeasibility term (≫ cut). *)
  moves_factor : int;     (** Trials per temperature = factor · nodes. *)
  initial_temp : float;
  cooling : float;        (** Geometric factor in (0, 1). *)
  min_temp : float;
  max_extra_k : int;      (** Probe at most [M + this] block counts. *)
  seed : int;
}

val default_config : config

type outcome = {
  assignment : int array;
  k : int;
  feasible : bool;
  cut : int;
  trials : int;           (** Total proposed moves over all probes. *)
  cpu_seconds : float;
}

(** [partition h device config] anneals the circuit onto copies of
    [device]; always terminates, flagging [feasible = false] when even
    [M + max_extra_k] blocks could not be made feasible. *)
val partition : Hypergraph.Hgraph.t -> Device.t -> config -> outcome
