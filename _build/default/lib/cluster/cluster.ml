module Hg = Hypergraph.Hgraph
module Rng = Prng.Splitmix

type t = {
  fine_hg : Hg.t;
  coarse_hg : Hg.t;
  node_map : int array;          (* fine -> coarse *)
  member_lists : int list array; (* coarse -> fine nodes *)
}

let coarse t = t.coarse_hg
let fine t = t.fine_hg
let coarse_of t v = t.node_map.(v)
let members t c = t.member_lists.(c)

let reduction t =
  float_of_int (Hg.num_nodes t.fine_hg) /. float_of_int (Hg.num_nodes t.coarse_hg)

(* Standard edge-coarsening connectivity: each shared net contributes
   1/(degree-1), so tight 2-pin connections dominate fat buses. *)
let connectivity hg v cluster_of cid =
  let score = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      let d = Hg.net_degree hg e in
      if d >= 2 then begin
        let w = 1.0 /. float_of_int (d - 1) in
        Array.iter
          (fun u ->
            if u <> v && (not (Hg.is_pad hg u)) && cluster_of.(u) = cid then begin
              let cur = Option.value ~default:0.0 (Hashtbl.find_opt score u) in
              Hashtbl.replace score u (cur +. w)
            end)
          (Hg.pins hg e)
      end)
    (Hg.nets_of hg v);
  score

let build hg ~max_cluster_size ~seed =
  if max_cluster_size < 1 then invalid_arg "Cluster.build: max_cluster_size < 1";
  let n = Hg.num_nodes hg in
  let rng = Rng.create seed in
  let cluster_of = Array.make n (-1) in
  let cluster_size = ref [] in
  (* reversed list of (cluster id, members reversed) *)
  let next_cluster = ref 0 in
  let order =
    let cells = ref [] in
    Hg.iter_cells (fun v -> cells := v :: !cells) hg;
    let a = Array.of_list !cells in
    Rng.shuffle rng a;
    a
  in
  Array.iter
    (fun v0 ->
      if cluster_of.(v0) < 0 then begin
        let cid = !next_cluster in
        incr next_cluster;
        cluster_of.(v0) <- cid;
        let members = ref [ v0 ] in
        let size = ref (Hg.size hg v0) in
        let stop = ref false in
        while not !stop do
          (* best unclustered neighbour of the whole cluster *)
          let best = ref (-1) in
          let best_score = ref 0.0 in
          List.iter
            (fun m ->
              let scores = connectivity hg m cluster_of (-1) in
              Hashtbl.iter
                (fun u s ->
                  if
                    !size + Hg.size hg u <= max_cluster_size
                    && (s > !best_score || (s = !best_score && u < !best))
                  then begin
                    best := u;
                    best_score := s
                  end)
                scores)
            !members;
          if !best < 0 then stop := true
          else begin
            cluster_of.(!best) <- cid;
            members := !best :: !members;
            size := !size + Hg.size hg !best;
            if !size >= max_cluster_size then stop := true
          end
        done;
        cluster_size := (cid, !members) :: !cluster_size
      end)
    order;
  (* pads: one coarse node each *)
  Hg.iter_pads
    (fun p ->
      let cid = !next_cluster in
      incr next_cluster;
      cluster_of.(p) <- cid;
      cluster_size := (cid, [ p ]) :: !cluster_size)
    hg;
  let n_coarse = !next_cluster in
  let member_lists = Array.make n_coarse [] in
  List.iter (fun (cid, ms) -> member_lists.(cid) <- List.rev ms) !cluster_size;
  (* build the coarse hypergraph; coarse ids must match cluster ids *)
  let b = Hg.Builder.create () in
  for cid = 0 to n_coarse - 1 do
    match member_lists.(cid) with
    | [ p ] when Hg.is_pad hg p ->
      ignore (Hg.Builder.add_pad b ~name:(Hg.name hg p))
    | ms ->
      let size = List.fold_left (fun acc v -> acc + Hg.size hg v) 0 ms in
      let flops = List.fold_left (fun acc v -> acc + Hg.flops hg v) 0 ms in
      ignore (Hg.Builder.add_cell b ~flops ~name:(Printf.sprintf "cl%d" cid) ~size)
  done;
  Hg.iter_nets
    (fun e ->
      let endpoints =
        Array.to_list (Hg.pins hg e)
        |> List.map (fun v -> cluster_of.(v))
        |> List.sort_uniq compare
      in
      if List.length endpoints >= 2 then
        ignore (Hg.Builder.add_net b ~name:(Hg.net_name hg e) endpoints))
    hg;
  {
    fine_hg = hg;
    coarse_hg = Hg.Builder.freeze b;
    node_map = cluster_of;
    member_lists;
  }

let project t coarse_assignment =
  if Array.length coarse_assignment <> Hg.num_nodes t.coarse_hg then
    invalid_arg "Cluster.project: wrong assignment length";
  Array.map (fun c -> coarse_assignment.(c)) t.node_map
