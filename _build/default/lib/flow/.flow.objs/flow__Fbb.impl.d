lib/flow/fbb.ml: Array Flownet Hypergraph Prng
