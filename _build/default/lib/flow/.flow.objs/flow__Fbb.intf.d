lib/flow/fbb.mli: Hypergraph Prng
