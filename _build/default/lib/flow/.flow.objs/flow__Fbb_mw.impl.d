lib/flow/fbb_mw.ml: Array Device Fbb Fm Hypergraph Partition Prng Queue
