lib/flow/fbb_mw.mli: Device Hypergraph
