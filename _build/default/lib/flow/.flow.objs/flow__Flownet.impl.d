lib/flow/flownet.ml: Array Hypergraph Maxflow
