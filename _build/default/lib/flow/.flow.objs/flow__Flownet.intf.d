lib/flow/flownet.mli: Hypergraph Maxflow
