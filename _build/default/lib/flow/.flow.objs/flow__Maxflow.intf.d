lib/flow/maxflow.mli:
