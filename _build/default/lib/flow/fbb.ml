module Hg = Hypergraph.Hgraph
module Rng = Prng.Splitmix

type result = { side : bool array; cut : int; phases : int }

(* Kept neighbours of the region [inside] that are in neither the source
   nor the sink set: candidates for merging. *)
let boundary_candidates hg ~keep ~inside ~excluded =
  let n = Hg.num_nodes hg in
  let cand = ref [] in
  let seen = Array.make n false in
  for v = 0 to n - 1 do
    if inside.(v) then
      Array.iter
        (fun e ->
          Array.iter
            (fun u ->
              if (not inside.(u)) && (not seen.(u)) && keep u && not (excluded u)
              then begin
                seen.(u) <- true;
                cand := u :: !cand
              end)
            (Hg.pins hg e))
        (Hg.nets_of hg v)
  done;
  Array.of_list !cand

let weight_of hg side keep =
  let w = ref 0 in
  Array.iteri (fun v s -> if s && keep v then w := !w + Hg.size hg v) side;
  !w

let bipartition hg ~keep ~seed_s ~seed_t ~lo ~hi ~rng =
  if seed_s = seed_t then invalid_arg "Fbb.bipartition: seeds coincide";
  if not (keep seed_s && keep seed_t) then
    invalid_arg "Fbb.bipartition: seed not kept";
  if lo > hi then invalid_arg "Fbb.bipartition: lo > hi";
  let net = Flownet.build hg ~keep in
  Flownet.attach_source net seed_s;
  Flownet.attach_sink net seed_t;
  let n = Hg.num_nodes hg in
  let max_phases = n + 2 in
  let rec phase i =
    if i > max_phases then None
    else begin
      let cut = Flownet.run net in
      let side = Flownet.source_side net in
      let w = weight_of hg side keep in
      if lo <= w && w <= hi then Some { side; cut; phases = i }
      else if w < lo then begin
        (* absorb the source side, then grow by a batch of boundary nodes *)
        Array.iteri (fun v s -> if s && keep v then Flownet.attach_source net v) side;
        let cands =
          boundary_candidates hg ~keep ~inside:side ~excluded:(Flownet.in_sink_set net)
        in
        if Array.length cands = 0 then None
        else begin
          let batch = max 1 ((lo - w) / 8) in
          Rng.shuffle rng cands;
          Array.iteri
            (fun j u -> if j < batch then Flownet.attach_source net u)
            cands;
          phase (i + 1)
        end
      end
      else begin
        (* overshoot: absorb the complement into the sink, plus one
           boundary node taken from the source side *)
        let complement = Array.make n false in
        for v = 0 to n - 1 do
          if keep v && not side.(v) then complement.(v) <- true
        done;
        Array.iteri (fun v c -> if c then Flownet.attach_sink net v) complement;
        let cands =
          boundary_candidates hg ~keep ~inside:complement
            ~excluded:(Flownet.in_source_set net)
        in
        if Array.length cands = 0 then None
        else begin
          Flownet.attach_sink net (Rng.choose rng cands);
          phase (i + 1)
        end
      end
    end
  in
  phase 1
