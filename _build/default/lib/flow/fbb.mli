(** Flow-Balanced Bipartition (FBB) — Liu & Wong's bipartitioner.

    Repeatedly computes a minimum net cut between a growing source set
    and a growing sink set until the source side's logic weight falls in
    a target window [[lo, hi]]:

    - undershoot ([w < lo]): the whole source side plus one or more
      boundary nodes are merged into the source set;
    - overshoot ([w > hi]): the complement plus a boundary node merge
      into the sink set.

    Merging only ever adds infinite source/sink edges, so the
    accumulated flow stays feasible and each phase just augments it
    (the incremental-flow idea that makes FBB practical).

    Divergence from the original: when the undershoot is large we merge
    a batch of boundary nodes (size [(lo-w)/8], at least 1) instead of
    exactly one, trading a little cut quality for far fewer phases; the
    experiments in EXPERIMENTS.md are run this way. *)

type result = {
  side : bool array;  (** Hypergraph nodes on the source side. *)
  cut : int;          (** Nets cut between the two sides. *)
  phases : int;       (** Flow phases executed. *)
}

(** [bipartition h ~keep ~seed_s ~seed_t ~lo ~hi ~rng] carves a source
    side of weight within [[lo, hi]] out of the kept subhypergraph.
    Weight is the sum of cell sizes ({!Hypergraph.Hgraph.size}); pads
    weigh 0 and ride with whichever side absorbs them.  Returns [None]
    when no such cut is found (window unattainable from these seeds).
    @raise Invalid_argument if the seeds coincide or are not kept, or
    if [lo > hi]. *)
val bipartition :
  Hypergraph.Hgraph.t ->
  keep:(Hypergraph.Hgraph.node -> bool) ->
  seed_s:Hypergraph.Hgraph.node ->
  seed_t:Hypergraph.Hgraph.node ->
  lo:int ->
  hi:int ->
  rng:Prng.Splitmix.t ->
  result option
