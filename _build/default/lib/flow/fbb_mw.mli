(** FBB-MW: network-flow-based multi-way partitioning with area and pin
    constraints (Liu & Wong 1998) — the strongest baseline the paper
    compares against (Tables 2-5).

    Blocks are peeled off one at a time: FBB carves a source side whose
    logic weight lands in a window just under [S_MAX]; the carved
    block's pin count is then checked against [T_MAX], retrying with a
    tightened window and fresh seeds a few times when pins overflow.  A
    short FM refinement between the carved block and the rest cleans the
    boundary before the block is committed.  Peeling continues until the
    rest itself meets the device constraints. *)

type config = {
  delta : float;        (** Filling ratio for [S_MAX]. *)
  window : float;       (** Initial [lo = window · hi]; paper-era 0.85. *)
  pin_retries : int;    (** Carve retries when the pin check fails. *)
  refine_passes : int;  (** FM passes between carved block and rest. *)
  rng_seed : int;       (** Seed for seed-node choice and batches. *)
}

val default_config : config

type outcome = {
  assignment : int array;  (** node → block, blocks [0 .. k-1]. *)
  k : int;                 (** Number of blocks produced. *)
  feasible : bool;         (** All blocks meet the device constraints. *)
  cut : int;               (** Final number of cut nets. *)
}

(** [partition h device config] splits the circuit onto copies of
    [device].  Always terminates (a greedy BFS carve backs up FBB when
    the flow window is unattainable); [feasible] reports whether every
    block satisfied both constraints. *)
val partition : Hypergraph.Hgraph.t -> Device.t -> config -> outcome
