module Hg = Hypergraph.Hgraph

type t = {
  flow : Maxflow.t;
  src : int;
  snk : int;
  node_id : int array; (* hg node -> flow node, or -1 *)
  in_src : bool array; (* per hg node *)
  in_snk : bool array;
}

let build hg ~keep =
  let n = Hg.num_nodes hg in
  let node_id = Array.make n (-1) in
  let next = ref 0 in
  let fresh () = let id = !next in incr next; id in
  for v = 0 to n - 1 do
    if keep v then node_id.(v) <- fresh ()
  done;
  (* count kept nets to size the graph *)
  let kept_pins e =
    Array.fold_left
      (fun acc v -> if node_id.(v) >= 0 then acc + 1 else acc)
      0 (Hg.pins hg e)
  in
  let net_aux = Array.make (Hg.num_nets hg) (-1) in
  Hg.iter_nets
    (fun e ->
      if kept_pins e >= 2 then begin
        net_aux.(e) <- !next;
        next := !next + 2
      end)
    hg;
  let src = fresh () in
  let snk = fresh () in
  let flow = Maxflow.create ~nodes:!next in
  Hg.iter_nets
    (fun e ->
      let aux = net_aux.(e) in
      if aux >= 0 then begin
        ignore (Maxflow.add_edge flow ~src:aux ~dst:(aux + 1) ~cap:1);
        Array.iter
          (fun v ->
            let fv = node_id.(v) in
            if fv >= 0 then begin
              ignore (Maxflow.add_edge flow ~src:fv ~dst:aux ~cap:Maxflow.infinite);
              ignore (Maxflow.add_edge flow ~src:(aux + 1) ~dst:fv ~cap:Maxflow.infinite)
            end)
          (Hg.pins hg e)
      end)
    hg;
  {
    flow;
    src;
    snk;
    node_id;
    in_src = Array.make n false;
    in_snk = Array.make n false;
  }

let graph t = t.flow
let source t = t.src
let sink t = t.snk

let check_kept t v =
  if t.node_id.(v) < 0 then invalid_arg "Flownet: node was not kept"

let attach_source t v =
  check_kept t v;
  if not t.in_src.(v) then begin
    t.in_src.(v) <- true;
    ignore (Maxflow.add_edge t.flow ~src:t.src ~dst:t.node_id.(v) ~cap:Maxflow.infinite)
  end

let attach_sink t v =
  check_kept t v;
  if not t.in_snk.(v) then begin
    t.in_snk.(v) <- true;
    ignore (Maxflow.add_edge t.flow ~src:t.node_id.(v) ~dst:t.snk ~cap:Maxflow.infinite)
  end

let in_source_set t v = t.in_src.(v)
let in_sink_set t v = t.in_snk.(v)

let run t =
  ignore (Maxflow.max_flow t.flow ~source:t.src ~sink:t.snk);
  Maxflow.total_flow t.flow

let source_side t =
  let side = Maxflow.source_side t.flow ~source:t.src in
  Array.mapi (fun _ id -> id >= 0 && side.(id)) t.node_id
