(** Hypergraph → flow network transformation (Liu & Wong, 1998).

    Each net is split into two auxiliary nodes joined by a bridging edge
    of capacity 1; every pin gets infinite-capacity edges into the first
    and out of the second auxiliary node.  A minimum s-t cut of the
    resulting digraph then equals a minimum hyperedge cut separating the
    seeds, which is what the FBB bipartitioner iterates on.

    The network can be restricted to a node subset (the remainder being
    peeled by FBB-MW); excluded nodes and the nets entirely outside the
    subset do not appear. *)

type t

(** [build h ~keep] builds the network over the nodes [v] with
    [keep v = true].  Nets with fewer than two kept pins are dropped
    (they can never be cut). *)
val build : Hypergraph.Hgraph.t -> keep:(Hypergraph.Hgraph.node -> bool) -> t

(** The underlying flow graph (for [max_flow] etc.). *)
val graph : t -> Maxflow.t

(** Flow-graph ids of the artificial source and sink. *)
val source : t -> int

val sink : t -> int

(** [attach_source t v] merges hypergraph node [v] into the source set
    (adds an infinite edge source→v); idempotent.
    @raise Invalid_argument if [v] was not kept. *)
val attach_source : t -> Hypergraph.Hgraph.node -> unit

(** [attach_sink t v] merges [v] into the sink set (edge v→sink). *)
val attach_sink : t -> Hypergraph.Hgraph.node -> unit

(** [in_source_set t v] / [in_sink_set t v] report merges done so far. *)
val in_source_set : t -> Hypergraph.Hgraph.node -> bool

val in_sink_set : t -> Hypergraph.Hgraph.node -> bool

(** [run t] augments the flow to a maximum and returns the cut value
    (total accumulated flow). *)
val run : t -> int

(** [source_side t] is, after {!run}, the set of {e hypergraph} nodes on
    the source side of the induced minimum cut (indexed by hypergraph
    node id; excluded nodes are [false]). *)
val source_side : t -> bool array
