(* Adjacency stored as arrays-of-growable-vectors: [adj.(v)] lists edge
   ids; edges come in (forward, reverse) pairs, so [id lxor 1] is the
   residual partner. *)

type t = {
  nodes : int;
  mutable edge_to : int array;
  mutable edge_cap : int array;
  mutable edge_flow : int array;
  mutable n_edges : int;
  adj : int list array; (* reversed order; fine for flow *)
  mutable adj_frozen : int array array option; (* cache for traversals *)
  mutable total : int;
}

let infinite = max_int / 4

let create ~nodes =
  {
    nodes;
    edge_to = Array.make 16 0;
    edge_cap = Array.make 16 0;
    edge_flow = Array.make 16 0;
    n_edges = 0;
    adj = Array.make nodes [];
    adj_frozen = None;
    total = 0;
  }

let grow t =
  let cap = Array.length t.edge_to in
  if t.n_edges >= cap then begin
    let ncap = 2 * cap in
    let g a = let b = Array.make ncap 0 in Array.blit a 0 b 0 cap; b in
    t.edge_to <- g t.edge_to;
    t.edge_cap <- g t.edge_cap;
    t.edge_flow <- g t.edge_flow
  end

let add_half t ~src ~dst ~cap =
  grow t;
  let id = t.n_edges in
  t.edge_to.(id) <- dst;
  t.edge_cap.(id) <- cap;
  t.edge_flow.(id) <- 0;
  t.n_edges <- id + 1;
  t.adj.(src) <- id :: t.adj.(src);
  id

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes then
    invalid_arg "Maxflow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  t.adj_frozen <- None;
  let id = add_half t ~src ~dst ~cap in
  let _rev = add_half t ~src:dst ~dst:src ~cap:0 in
  id

let residual t e = t.edge_cap.(e) - t.edge_flow.(e)

let adjacency t =
  match t.adj_frozen with
  | Some a -> a
  | None ->
    let a = Array.map Array.of_list t.adj in
    t.adj_frozen <- Some a;
    a

(* BFS level graph; [-1] = unreachable. *)
let levels t ~source ~sink =
  let adj = adjacency t in
  let level = Array.make t.nodes (-1) in
  let q = Queue.create () in
  level.(source) <- 0;
  Queue.add source q;
  let reached = ref false in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun e ->
        let u = t.edge_to.(e) in
        if level.(u) < 0 && residual t e > 0 then begin
          level.(u) <- level.(v) + 1;
          if u = sink then reached := true;
          Queue.add u q
        end)
      adj.(v)
  done;
  if !reached then Some level else None

let rec dfs t adj level iters v sink pushed =
  if v = sink then pushed
  else begin
    let found = ref 0 in
    let arr = adj.(v) in
    while !found = 0 && iters.(v) < Array.length arr do
      let e = arr.(iters.(v)) in
      let u = t.edge_to.(e) in
      if residual t e > 0 && level.(u) = level.(v) + 1 then begin
        let d = dfs t adj level iters u sink (min pushed (residual t e)) in
        if d > 0 then begin
          t.edge_flow.(e) <- t.edge_flow.(e) + d;
          t.edge_flow.(e lxor 1) <- t.edge_flow.(e lxor 1) - d;
          found := d
        end
        else iters.(v) <- iters.(v) + 1
      end
      else iters.(v) <- iters.(v) + 1
    done;
    !found
  end

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let adj = adjacency t in
  let added = ref 0 in
  let continue = ref true in
  while !continue do
    match levels t ~source ~sink with
    | None -> continue := false
    | Some level ->
      let iters = Array.make t.nodes 0 in
      let pushing = ref true in
      while !pushing do
        let d = dfs t adj level iters source sink infinite in
        if d > 0 then added := !added + d else pushing := false
      done
  done;
  t.total <- t.total + !added;
  !added

let total_flow t = t.total

let source_side t ~source =
  let adj = adjacency t in
  let seen = Array.make t.nodes false in
  let q = Queue.create () in
  seen.(source) <- true;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun e ->
        let u = t.edge_to.(e) in
        if (not seen.(u)) && residual t e > 0 then begin
          seen.(u) <- true;
          Queue.add u q
        end)
      adj.(v)
  done;
  seen

let edge_flow t id = t.edge_flow.(id)
let num_nodes t = t.nodes
let num_edges t = t.n_edges / 2
