(** Dinic's maximum-flow algorithm on explicit directed graphs.

    Written for the FBB bipartitioner, which needs two things beyond a
    textbook max-flow:

    - {b incremental growth}: edges may be added {e between} calls to
      {!max_flow} (capacities never shrink), and the next call continues
      augmenting from the accumulated flow — this is how FBB merges
      nodes into the source/sink sets without recomputing from scratch;
    - {b residual reachability}: {!source_side} exposes the min-cut
      partition induced by the current flow. *)

type t

(** [create ~nodes] makes an empty graph over node ids [0 .. nodes-1]. *)
val create : nodes:int -> t

(** Capacity value treated as unbounded (large enough never to saturate
    in networks built from circuit hypergraphs). *)
val infinite : int

(** [add_edge t ~src ~dst ~cap] adds a directed edge (plus its residual
    reverse of capacity 0) and returns its edge id.
    @raise Invalid_argument on out-of-range nodes or negative cap. *)
val add_edge : t -> src:int -> dst:int -> cap:int -> int

(** [max_flow t ~source ~sink] augments until no path remains and
    returns the {e additional} flow pushed by this call.  Cumulative
    flow is [total_flow t].  @raise Invalid_argument if
    [source = sink]. *)
val max_flow : t -> source:int -> sink:int -> int

(** [total_flow t] is the flow accumulated over all {!max_flow} calls. *)
val total_flow : t -> int

(** [source_side t ~source] marks every node reachable from [source] in
    the residual graph; after a completed [max_flow] this is the
    source side of a minimum cut. *)
val source_side : t -> source:int -> bool array

(** [edge_flow t id] is the current flow on edge [id]. *)
val edge_flow : t -> int -> int

(** [num_nodes t] and [num_edges t] describe the graph size. *)
val num_nodes : t -> int

val num_edges : t -> int
