module Hg = Hypergraph.Hgraph
module State = Partition.State
module Bucket = Gainbucket.Bucket_array

type limits = { lo0 : int; hi0 : int; lo1 : int; hi1 : int }

let limits_of_tolerance ~total ~tolerance =
  let slack = int_of_float (ceil (tolerance *. float_of_int total)) in
  let half = total / 2 in
  {
    lo0 = max 0 (half - slack);
    hi0 = half + slack + (total land 1);
    lo1 = max 0 (half - slack);
    hi1 = half + slack + (total land 1);
  }

type result = { initial_cut : int; final_cut : int; passes : int; moves : int }

(* One pass of FM between blocks [b0] and [b1].  Returns [(best_cut,
   retained_moves)]; [st] ends at the best prefix. *)
let run_pass st ~b0 ~b1 ~limits =
  let hg = State.hypergraph st in
  let n = Hg.num_nodes hg in
  let max_gain = max 1 (Hg.max_node_degree hg) in
  (* bucket 0: moves b0→b1; bucket 1: moves b1→b0 *)
  let buckets =
    [| Bucket.create ~cells:n ~max_gain (); Bucket.create ~cells:n ~max_gain () |]
  in
  let locked = Array.make n false in
  let in_play v =
    let b = State.block_of st v in
    b = b0 || b = b1
  in
  let dir_of v = if State.block_of st v = b0 then 0 else 1 in
  let target v = if State.block_of st v = b0 then b1 else b0 in
  let insert v =
    Bucket.insert buckets.(dir_of v) v (State.cut_gain st v (target v))
  in
  Hg.iter_nodes (fun v -> if in_play v then insert v) hg;
  let lo_of b = if b = b0 then limits.lo0 else limits.lo1 in
  let hi_of b = if b = b0 then limits.hi0 else limits.hi1 in
  let legal v =
    let from_b = State.block_of st v in
    let to_b = if from_b = b0 then b1 else b0 in
    let s = Hg.size hg v in
    State.size_of st from_b - s >= lo_of from_b
    && State.size_of st to_b + s <= hi_of to_b
  in
  (* Find the best legal move: pop illegal tops into a stash, restore the
     stash before returning so later moves can reconsider them. *)
  let select () =
    let stash = ref [] in
    let candidate dir =
      let bucket = buckets.(dir) in
      let rec go () =
        match Bucket.top_gain bucket with
        | None -> None
        | Some g ->
          let cell = Bucket.fold_top bucket ~limit:1 ~init:(-1) ~f:(fun _ c -> c) in
          if legal cell then Some (g, cell)
          else begin
            Bucket.remove bucket cell;
            stash := (dir, cell, g) :: !stash;
            go ()
          end
      in
      go ()
    in
    let c0 = candidate 0 and c1 = candidate 1 in
    let chosen =
      match (c0, c1) with
      | None, None -> None
      | Some (g, v), None | None, Some (g, v) -> Some (g, v)
      | Some (g0, v0), Some (g1, v1) ->
        if g0 > g1 then Some (g0, v0)
        else if g1 > g0 then Some (g1, v1)
        else begin
          (* tie: prefer the move that improves size balance most *)
          let imbalance v =
            let s = Hg.size hg v in
            let from_b = State.block_of st v in
            let to_b = if from_b = b0 then b1 else b0 in
            abs (State.size_of st from_b - s - (State.size_of st to_b + s))
          in
          if imbalance v0 <= imbalance v1 then Some (g0, v0) else Some (g1, v1)
        end
    in
    List.iter (fun (dir, cell, g) -> Bucket.insert buckets.(dir) cell g) !stash;
    chosen
  in
  (* Recompute the gain of every unlocked in-play neighbour of [v]. *)
  let update_neighbours v =
    Array.iter
      (fun e ->
        Array.iter
          (fun u ->
            if u <> v && (not locked.(u)) && in_play u then begin
              let d = dir_of u in
              if Bucket.mem buckets.(d) u then
                Bucket.update buckets.(d) u (State.cut_gain st u (target u))
            end)
          (Hg.pins hg e))
      (Hg.nets_of hg v)
  in
  let trail = ref [] in
  let n_moves = ref 0 in
  let best_cut = ref (State.cut_size st) in
  let best_prefix = ref 0 in
  let best_imbalance = ref (abs (State.size_of st b0 - State.size_of st b1)) in
  let continue = ref true in
  while !continue do
    match select () with
    | None -> continue := false
    | Some (_, v) ->
      let from_b = State.block_of st v in
      Bucket.remove buckets.(dir_of v) v;
      State.move st v (if from_b = b0 then b1 else b0);
      locked.(v) <- true;
      trail := (v, from_b) :: !trail;
      incr n_moves;
      update_neighbours v;
      let cut = State.cut_size st in
      let imb = abs (State.size_of st b0 - State.size_of st b1) in
      if cut < !best_cut || (cut = !best_cut && imb < !best_imbalance) then begin
        best_cut := cut;
        best_imbalance := imb;
        best_prefix := !n_moves
      end
  done;
  (* rewind to the best prefix *)
  let rec rewind i = function
    | [] -> ()
    | (v, from_b) :: rest ->
      if i > !best_prefix then begin
        State.move st v from_b;
        rewind (i - 1) rest
      end
  in
  rewind !n_moves !trail;
  (!best_cut, !best_prefix)

let refine st ~block0 ~block1 ~limits ~max_passes =
  if block0 = block1 then invalid_arg "Fm.refine: blocks coincide";
  if block0 < 0 || block0 >= State.k st || block1 < 0 || block1 >= State.k st then
    invalid_arg "Fm.refine: block out of range";
  let initial_cut = State.cut_size st in
  let total_moves = ref 0 in
  let passes = ref 0 in
  let prev_cut = ref initial_cut in
  let continue = ref true in
  while !continue && !passes < max_passes do
    incr passes;
    let cut, moves = run_pass st ~b0:block0 ~b1:block1 ~limits in
    total_moves := !total_moves + moves;
    if cut >= !prev_cut || moves = 0 then continue := false;
    prev_cut := min !prev_cut cut
  done;
  {
    initial_cut;
    final_cut = State.cut_size st;
    passes = !passes;
    moves = !total_moves;
  }
