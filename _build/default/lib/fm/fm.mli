(** Classical Fiduccia–Mattheyses bipartition refinement.

    Operates on two designated blocks of a {!Partition.State.t},
    minimising the hypergraph cut under per-block size windows.  Each
    pass tentatively moves every movable node once (highest-gain-first,
    LIFO buckets, nodes lock after moving) and finally rewinds to the
    best prefix — best cut, ties broken by better size balance, exactly
    as in the 1982 paper.  Passes repeat until a pass fails to improve
    the cut or [max_passes] is reached.

    This engine is both the baseline bipartitioner of the k-way.x
    reproduction and the differential-testing reference for the
    multi-way Sanchis engine restricted to two blocks. *)

(** Size windows for the two blocks: a move is legal when the source
    block stays at or above its [lo] and the destination stays at or
    below its [hi]. *)
type limits = {
  lo0 : int;
  hi0 : int;
  lo1 : int;
  hi1 : int;
}

(** [limits_of_tolerance ~total ~tolerance] is the classical symmetric
    balance criterion: each side must hold within
    [total/2 ± tolerance·total] (e.g. [tolerance = 0.1]). *)
val limits_of_tolerance : total:int -> tolerance:float -> limits

type result = {
  initial_cut : int;
  final_cut : int;
  passes : int;      (** Number of passes executed. *)
  moves : int;       (** Number of retained (non-rewound) moves. *)
}

(** [refine st ~block0 ~block1 ~limits ~max_passes] runs FM between the
    two blocks of [st], mutating [st] to the best solution found.
    Nodes outside the two blocks are untouched; pads are movable (size
    0).  @raise Invalid_argument if the blocks coincide or are out of
    range. *)
val refine :
  Partition.State.t ->
  block0:int ->
  block1:int ->
  limits:limits ->
  max_passes:int ->
  result
