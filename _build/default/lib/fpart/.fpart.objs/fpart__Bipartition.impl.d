lib/fpart/bipartition.ml: Array Hypergraph List Partition Prng Ratio_cut Seed_merge
