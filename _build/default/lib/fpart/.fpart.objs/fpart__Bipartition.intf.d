lib/fpart/bipartition.mli: Partition Prng
