lib/fpart/config.ml: Device Gainbucket Partition Sanchis
