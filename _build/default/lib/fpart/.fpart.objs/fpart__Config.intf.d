lib/fpart/config.mli: Device Gainbucket Partition Sanchis
