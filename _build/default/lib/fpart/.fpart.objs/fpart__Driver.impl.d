lib/fpart/driver.ml: Array Bipartition Cluster Config Fun Hypergraph Improve List Partition Prng Sanchis Schedule Sys Trace
