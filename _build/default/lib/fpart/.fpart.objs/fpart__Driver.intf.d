lib/fpart/driver.mli: Config Device Hypergraph Partition Trace
