lib/fpart/hetero.ml: Array Config Device Driver Hypergraph List Partition Sanchis Seed_merge Sys
