lib/fpart/hetero.mli: Config Device Hypergraph
