lib/fpart/improve.ml: Array Config Partition Sanchis Trace
