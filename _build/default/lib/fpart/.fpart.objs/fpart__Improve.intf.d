lib/fpart/improve.mli: Config Partition Trace
