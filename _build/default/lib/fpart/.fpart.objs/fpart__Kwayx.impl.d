lib/fpart/kwayx.ml: Array Device Fm Hypergraph List Partition Seed_merge Sys
