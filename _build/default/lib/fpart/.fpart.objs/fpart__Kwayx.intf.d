lib/fpart/kwayx.mli: Device Hypergraph
