lib/fpart/ratio_cut.ml: Array Bool Gainbucket Hypergraph Partition Queue
