lib/fpart/ratio_cut.mli: Hypergraph
