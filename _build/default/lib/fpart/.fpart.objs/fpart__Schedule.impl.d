lib/fpart/schedule.ml: Config Partition
