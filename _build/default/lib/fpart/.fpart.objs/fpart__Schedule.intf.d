lib/fpart/schedule.mli: Config Partition
