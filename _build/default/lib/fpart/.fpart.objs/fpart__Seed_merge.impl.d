lib/fpart/seed_merge.ml: Array Hypergraph List Partition Queue
