lib/fpart/seed_merge.mli: Hypergraph
