lib/fpart/trace.ml: Format List Partition String
