lib/fpart/trace.mli: Format Partition
