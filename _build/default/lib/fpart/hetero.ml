module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost

type priced = { device : Device.t; unit_cost : float }

(* One family only: a circuit is technology-mapped for a single CLB
   architecture, so mixing XC2000 and XC3000 devices in one partition
   would compare incomparable size units. *)
let default_candidates =
  [
    { device = Device.xc3020; unit_cost = 1.0 };
    { device = Device.xc3042; unit_cost = 2.1 };
    { device = Device.xc3090; unit_cost = 4.6 };
  ]

type block_info = {
  blk_device : Device.t;
  blk_cost : float;
  blk_size : int;
  blk_pins : int;
  blk_flops : int;
}

type result = {
  blocks : block_info list;
  assignment : int array;
  total_cost : float;
  feasible : bool;
  cut : int;
  cpu_seconds : float;
}

(* Capacity of a candidate under the config's filling-ratio policy. *)
let caps config c =
  let delta = Config.delta_for config c.device in
  (Device.s_max c.device ~delta, c.device.Device.t_max, Device.ff_max c.device ~delta)

let fits config c ~size ~pins ~flops =
  let s_max, t_max, f_max = caps config c in
  size <= s_max
  && pins <= t_max
  && match f_max with None -> true | Some f -> flops <= f

(* Pin/size/flop totals of the remaining (unassigned) region. *)
let rest_totals hg assigned =
  let size = ref 0 and flops = ref 0 in
  Hg.iter_cells
    (fun v ->
      if assigned.(v) < 0 then begin
        size := !size + Hg.size hg v;
        flops := !flops + Hg.flops hg v
      end)
    hg;
  let pins = ref 0 in
  Hg.iter_nets
    (fun e ->
      let ps = Hg.pins hg e in
      let inside = Array.exists (fun v -> assigned.(v) < 0) ps in
      if inside then begin
        let outside = Array.exists (fun v -> assigned.(v) >= 0) ps in
        let pad_in = Array.exists (fun v -> assigned.(v) < 0 && Hg.is_pad hg v) ps in
        if outside || pad_in then incr pins
      end)
    hg;
  (!size, !pins, !flops)

(* Tentatively carve a block for candidate [c] out of the rest; returns
   the achieved (p_side, size, pins, flops) after a two-block
   improvement, without committing anything. *)
let carve_for config hg assigned b c =
  let s_max, t_max, f_max = caps config c in
  let member v = assigned.(v) < 0 in
  let sm =
    Seed_merge.split ~salt:(config.Config.seed land 0xFFFF) hg ~member ~s_max ~t_max
  in
  (* improvement between the tentative block [b] and the rest [b+1] *)
  let st =
    State.create hg ~k:(b + 2) ~assign:(fun v ->
        if assigned.(v) >= 0 then assigned.(v)
        else if sm.Seed_merge.p_side.(v) then b
        else b + 1)
  in
  let ctx =
    {
      Cost.s_max;
      t_max;
      f_max;
      m_lower = 1;
      total_pads = Hg.num_pads hg;
    }
  in
  let lower = Array.make (b + 2) 0 and upper = Array.make (b + 2) max_int in
  Array.fill lower 0 (b + 1) (int_of_float (config.Config.eps_min_two *. float_of_int s_max));
  Array.fill upper 0 (b + 1) s_max;
  let spec =
    { Sanchis.active = [| b; b + 1 |]; remainder = Some (b + 1); lower; upper }
  in
  let eval st = Cost.evaluate config.Config.cost ctx st ~remainder:(Some (b + 1)) ~step_k:1 in
  ignore (Sanchis.improve st ~spec ~config:(Config.engine config) ~eval);
  let side = Array.init (Hg.num_nodes hg) (fun v -> State.block_of st v = b) in
  (side, State.size_of st b, State.pins_of st b, State.flops_of st b)

let run ?(config = Config.default) ?(candidates = default_candidates) hg =
  if candidates = [] then invalid_arg "Hetero.run: empty candidate list";
  let t0 = Sys.time () in
  let n = Hg.num_nodes hg in
  let assigned = Array.make n (-1) in
  let blocks = ref [] in
  let b = ref 0 in
  let total_cost = ref 0.0 in
  let feasible = ref true in
  let commit device cost side =
    let size = ref 0 and flops = ref 0 in
    Array.iteri
      (fun v inside ->
        if inside && assigned.(v) < 0 then begin
          assigned.(v) <- !b;
          size := !size + Hg.size hg v;
          flops := !flops + Hg.flops hg v
        end)
      side;
    (* pins measured against the whole circuit *)
    let pins = ref 0 in
    Hg.iter_nets
      (fun e ->
        let ps = Hg.pins hg e in
        let inside = Array.exists (fun v -> assigned.(v) = !b) ps in
        if inside then begin
          let outside = Array.exists (fun v -> assigned.(v) <> !b) ps in
          let pad_in =
            Array.exists (fun v -> assigned.(v) = !b && Hg.is_pad hg v) ps
          in
          if outside || pad_in then incr pins
        end)
      hg;
    blocks :=
      {
        blk_device = device;
        blk_cost = cost;
        blk_size = !size;
        blk_pins = !pins;
        blk_flops = !flops;
      }
      :: !blocks;
    total_cost := !total_cost +. cost;
    incr b
  in
  let max_blocks =
    let smallest =
      List.fold_left (fun acc c -> min acc (let s, _, _ = caps config c in s)) max_int
        candidates
    in
    (2 * Hg.total_size hg / max 1 smallest) + 8
  in
  let continue = ref (Hg.num_cells hg > 0) in
  while !continue do
    let size, pins, flops = rest_totals hg assigned in
    (* cheapest candidate the whole rest fits *)
    let closing =
      List.filter (fun c -> fits config c ~size ~pins ~flops) candidates
      |> List.sort (fun a b -> compare a.unit_cost b.unit_cost)
    in
    match closing with
    | c :: _ ->
      let side = Array.map (fun a -> a < 0) assigned in
      commit c.device c.unit_cost side;
      continue := false
    | [] ->
      if !b >= max_blocks then begin
        (* give up: close with the biggest device even though infeasible *)
        let biggest =
          List.fold_left
            (fun acc c ->
              let s, _, _ = caps config c in
              match acc with
              | Some (s', _) when s' >= s -> acc
              | _ -> Some (s, c))
            None candidates
        in
        (match biggest with
        | Some (_, c) ->
          feasible := false;
          commit c.device c.unit_cost (Array.map (fun a -> a < 0) assigned)
        | None -> ());
        continue := false
      end
      else begin
        (* peel: best cost-per-cell candidate *)
        let best = ref None in
        List.iter
          (fun c ->
            let side, size, pins, flops = carve_for config hg assigned !b c in
            if size > 0 && fits config c ~size ~pins ~flops then begin
              let efficiency = c.unit_cost /. float_of_int size in
              match !best with
              | Some (e, _, _) when e <= efficiency -> ()
              | _ -> best := Some (efficiency, c, side)
            end)
          candidates;
        match !best with
        | Some (_, c, side) -> commit c.device c.unit_cost side
        | None ->
          (* no candidate could carve a feasible block: force progress
             with the biggest device, flagged infeasible if needed *)
          let c =
            List.fold_left
              (fun acc c ->
                let s, _, _ = caps config c in
                let s_acc, _, _ = caps config acc in
                if s > s_acc then c else acc)
              (List.hd candidates) candidates
          in
          let side, size, pins, flops = carve_for config hg assigned !b c in
          if not (fits config c ~size ~pins ~flops) then feasible := false;
          if Array.exists2 (fun s a -> s && a < 0) side assigned then
            commit c.device c.unit_cost side
          else begin
            feasible := false;
            continue := false
          end
      end
  done;
  (* any stragglers (empty-carve corner): dump into the last block *)
  let last = max 0 (!b - 1) in
  Array.iteri (fun v a -> if a < 0 then assigned.(v) <- last) assigned;
  let k = max 1 !b in
  let st = State.create hg ~k ~assign:(fun v -> assigned.(v)) in
  {
    blocks = List.rev !blocks;
    assignment = assigned;
    total_cost = !total_cost;
    feasible = !feasible;
    cut = State.cut_size st;
    cpu_seconds = Sys.time () -. t0;
  }

let homogeneous_cost ?(config = Config.default) hg priced =
  let r = Driver.run ~config hg priced.device in
  float_of_int r.Driver.k *. priced.unit_cost
