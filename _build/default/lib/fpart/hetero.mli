(** Heterogeneous multi-way partitioning with device-cost minimisation.

    The paper's related work (Kuznar/Brglez/Zajc, DAC'94) generalises
    the problem from "minimum number of identical devices" to "minimum
    total cost over a heterogeneous device library".  This module
    implements a greedy cost-efficiency variant of that formulation on
    top of the same substrates:

    - while the rest of the circuit fits no single candidate device, one
      block is peeled per iteration: every candidate device carves a
      tentative block (pin-aware seeded merge at that device's capacity,
      plus a two-block improvement against the rest), and the candidate
      with the lowest {e cost per absorbed logic cell} wins;
    - when the rest fits some device, the {e cheapest} such device
      closes the partition.

    Prices are user-supplied ({!default_candidates} provides a synthetic
    catalog roughly proportional to capacity — 1990s street prices are
    not public data; see DESIGN.md). *)

type priced = {
  device : Device.t;
  unit_cost : float;  (** Cost of one copy of this device. *)
}

(** The XC3000-family catalog with synthetic costs: XC3020 at 1.0,
    XC3042 at 2.1, XC3090 at 4.6.  One family only — a netlist is
    technology-mapped for a single CLB architecture, so mixing families
    would compare incomparable size units. *)
val default_candidates : priced list

type block_info = {
  blk_device : Device.t;
  blk_cost : float;
  blk_size : int;
  blk_pins : int;
  blk_flops : int;
}

type result = {
  blocks : block_info list;  (** One entry per block, in peel order. *)
  assignment : int array;    (** node → block index. *)
  total_cost : float;
  feasible : bool;           (** Every block fits its chosen device. *)
  cut : int;
  cpu_seconds : float;
}

(** [run ?config ?candidates h] partitions [h] over the priced device
    library.  [config] supplies the improvement engine settings and the
    filling ratio policy ({!Config.delta_for} per device).
    @raise Invalid_argument if [candidates] is empty. *)
val run : ?config:Config.t -> ?candidates:priced list -> Hypergraph.Hgraph.t -> result

(** [homogeneous_cost ?config h priced] is the cost of the best
    single-device-type solution ([FPART k × unit cost]) for comparison
    against the heterogeneous result. *)
val homogeneous_cost : ?config:Config.t -> Hypergraph.Hgraph.t -> priced -> float
