(** The k-way.x baseline (Kuznar/Brglez/Kozminski 1993; the "(p,p)"
    column of the paper's tables).

    Plain recursive bipartitioning: each iteration carves one block out
    of the remainder with the greedy constructive merge, refines the cut
    with classical two-block FM between the new block and the remainder
    only, greedily sheds cells when the block's pin budget overflows,
    and never revisits committed blocks.  This is the greedy behaviour
    whose weaknesses (section 3 of the paper: I/O saturation of late
    blocks, no cross-block optimisation) FPART was designed to fix — so
    it must be measurably worse on the same workloads. *)

type result = {
  k : int;
  assignment : int array;
  feasible : bool;
  iterations : int;
  cut : int;
  cpu_seconds : float;
}

(** [run ?delta ?max_passes h device] partitions [h] onto copies of
    [device].  [delta] defaults to {!Device.paper_delta};
    [max_passes] (default 8) bounds FM passes per iteration. *)
val run :
  ?delta:float -> ?max_passes:int -> Hypergraph.Hgraph.t -> Device.t -> result
