module Hg = Hypergraph.Hgraph
module State = Partition.State
module Bucket = Gainbucket.Bucket_array

type result = { p_side : bool array; ratio : float }

let external_b = 0
let grow = 1
let rest = 2

(* Farthest *cell* from [start] within the member set (pads make poor
   seeds: they have size 0 and a single net). *)
let far_member_cell hg ~member start =
  let seen = Array.make (Hg.num_nodes hg) false in
  let q = Queue.create () in
  seen.(start) <- true;
  Queue.add start q;
  let last_cell = ref start in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if not (Hg.is_pad hg v) then last_cell := v;
    Array.iter
      (fun e ->
        Array.iter
          (fun u ->
            if (not seen.(u)) && member u then begin
              seen.(u) <- true;
              Queue.add u q
            end)
          (Hg.pins hg e))
      (Hg.nets_of hg v)
  done;
  !last_cell

type sweep_best = { b_ratio : float; b_prefix : int; b_side : int }

let sweep hg ~member ~s_max ~t_max seed =
  let n = Hg.num_nodes hg in
  let st =
    State.create hg ~k:3 ~assign:(fun v -> if member v then rest else external_b)
  in
  State.move st seed grow;
  (* nets currently touching both scratch sides *)
  let c12 = ref 0 in
  Hg.iter_nets
    (fun e ->
      if State.net_count st e grow > 0 && State.net_count st e rest > 0 then incr c12)
    hg;
  let max_gain = max 1 (Hg.max_node_degree hg) in
  let bucket = Bucket.create ~cells:n ~max_gain () in
  Hg.iter_nodes
    (fun u -> if State.block_of st u = rest then Bucket.insert bucket u (State.cut_gain st u grow))
    hg;
  let trail = ref [] in
  let moves = ref 0 in
  let best = ref None in
  while not (Bucket.is_empty bucket) do
    let u = Bucket.fold_top bucket ~limit:1 ~init:(-1) ~f:(fun _ c -> c) in
    Bucket.remove bucket u;
    Array.iter
      (fun e ->
        let c1 = State.net_count st e grow and c2 = State.net_count st e rest in
        let before = c1 > 0 && c2 > 0 in
        let after = c2 - 1 > 0 in
        (* c1 + 1 > 0 always *)
        c12 := !c12 + Bool.to_int after - Bool.to_int before)
      (Hg.nets_of hg u);
    State.move st u grow;
    trail := u :: !trail;
    incr moves;
    Array.iter
      (fun e ->
        Array.iter
          (fun w ->
            if Bucket.mem bucket w then Bucket.update bucket w (State.cut_gain st w grow))
          (Hg.pins hg e))
      (Hg.nets_of hg u);
    let s1 = State.size_of st grow and s2 = State.size_of st rest in
    if s1 > 0 && s2 > 0 then begin
      let ratio = float_of_int !c12 /. (float_of_int s1 *. float_of_int s2) in
      let feas1 = s1 <= s_max && State.pins_of st grow <= t_max in
      let feas2 = s2 <= s_max && State.pins_of st rest <= t_max in
      if feas1 || feas2 then begin
        let side = if feas1 then grow else rest in
        match !best with
        | Some b when b.b_ratio <= ratio -> ()
        | _ -> best := Some { b_ratio = ratio; b_prefix = !moves; b_side = side }
      end
    end
  done;
  match !best with
  | None -> None
  | Some b ->
    (* rewind the sweep to the chosen prefix *)
    let rec rewind i = function
      | [] -> ()
      | u :: more ->
        if i > b.b_prefix then begin
          State.move st u rest;
          rewind (i - 1) more
        end
    in
    rewind !moves !trail;
    let p_side = Array.init n (fun v -> State.block_of st v = b.b_side) in
    Some ({ p_side; ratio = b.b_ratio }, b.b_ratio)

let split hg ~member ~s_max ~t_max =
  (* pick a deterministic member cell to anchor the eccentric pair *)
  let start = ref (-1) in
  Hg.iter_nodes (fun v -> if !start < 0 && member v && not (Hg.is_pad hg v) then start := v) hg;
  if !start < 0 then None
  else begin
    let seed1 = far_member_cell hg ~member !start in
    let seed2 = far_member_cell hg ~member seed1 in
    let r1 = sweep hg ~member ~s_max ~t_max seed1 in
    let r2 = if seed2 <> seed1 then sweep hg ~member ~s_max ~t_max seed2 else None in
    match (r1, r2) with
    | None, None -> None
    | Some (r, _), None | None, Some (r, _) -> Some r
    | Some (ra, va), Some (rb, vb) -> Some (if va <= vb then ra else rb)
  end
