(** Constructive initial bipartition by a ratio-cut sweep
    (Wei/Cheng 1991, paper section 3.2, pass 2).

    From a seed node, the rest of the remainder is swept into the
    growing block one node at a time, each step taking the node with the
    highest cut gain.  After every move the ratio
    [R = C_{1,2} / (S(P_1) · S(P_2))] is recorded; the sweep prefix with
    the smallest ratio {e among prefixes where at least one side meets
    the device constraints} is retained.  The whole procedure runs from
    two far-apart seeds and the better of the two sweeps wins.

    Returns [None] when no prefix of either sweep has a constraint-
    satisfying side (e.g. a remainder whose every split violates pins). *)

type result = {
  p_side : bool array;  (** Nodes of the constraint-satisfying side. *)
  ratio : float;        (** The ratio-cut value of the chosen prefix. *)
}

val split :
  Hypergraph.Hgraph.t ->
  member:(Hypergraph.Hgraph.node -> bool) ->
  s_max:int ->
  t_max:int ->
  result option
