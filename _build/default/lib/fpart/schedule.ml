module State = Partition.State

let argbest st ~except ~better =
  let best = ref None in
  for i = 0 to State.k st - 1 do
    if i <> except then
      match !best with
      | None -> best := Some i
      | Some j -> if better i j then best := Some i
  done;
  !best

let min_size_block st ~except =
  argbest st ~except ~better:(fun i j -> State.size_of st i < State.size_of st j)

let min_io_block st ~except =
  argbest st ~except ~better:(fun i j -> State.pins_of st i < State.pins_of st j)

let max_free_block cfg st ~except ~s_max ~t_max =
  let free i =
    Config.free_space cfg ~s_max ~t_max ~size:(State.size_of st i)
      ~pins:(State.pins_of st i)
  in
  argbest st ~except ~better:(fun i j -> free i > free j)
