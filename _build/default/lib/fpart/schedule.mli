(** Block selection for the improvement schedule (paper section 3.1).

    After the pair pass on the two lately created blocks, the remainder
    is improved against: the committed block of smallest size
    [P_MIN_size], the one with fewest terminals [P_MIN_IO], and the one
    with most free space [P_MIN_F], where free space mixes both
    resources: [F = σ1·(S_MAX-S_i)/S_MAX + σ2·(T_MAX-|Y_i|)/T_MAX]. *)

(** [min_size_block st ~except] is the non-[except] block of smallest
    logic size, or [None] when there is no other block. *)
val min_size_block : Partition.State.t -> except:int -> int option

(** [min_io_block st ~except] is the non-[except] block with the fewest
    terminals. *)
val min_io_block : Partition.State.t -> except:int -> int option

(** [max_free_block cfg st ~except ~s_max ~t_max] is the non-[except]
    block with the largest free-space estimate [F]. *)
val max_free_block :
  Config.t -> Partition.State.t -> except:int -> s_max:int -> t_max:int -> int option
