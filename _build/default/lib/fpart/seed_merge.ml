module Hg = Hypergraph.Hgraph
module State = Partition.State

type result = { p_side : bool array; p_size : int; p_pins : int }

(* Scratch block indices. *)
let external_b = 0
let block_a = 1
let block_b = 2
let pool = 3

(* BFS within the member set, starting from [start]; returns the last
   node dequeued (approximately eccentric). *)
let far_member hg ~member start =
  let seen = Array.make (Hg.num_nodes hg) false in
  let q = Queue.create () in
  seen.(start) <- true;
  Queue.add start q;
  let last = ref start in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    last := v;
    Array.iter
      (fun e ->
        Array.iter
          (fun u ->
            if (not seen.(u)) && member u then begin
              seen.(u) <- true;
              Queue.add u q
            end)
          (Hg.pins hg e))
      (Hg.nets_of hg v)
  done;
  !last

let biggest_member hg ~member ~salt =
  let best = ref (-1) in
  let best_key = ref (-1, -1, min_int) in
  Hg.iter_nodes
    (fun v ->
      if member v then begin
        (* the salted id term lets multi-start runs pick different seeds
           among equally big, equally connected candidates *)
        let key = (Hg.size hg v, Hg.node_degree hg v, -(v lxor salt)) in
        if key > !best_key then begin
          best_key := key;
          best := v
        end
      end)
    hg;
  !best

let split ?(salt = 0) hg ~member ~s_max ~t_max =
  let n = Hg.num_nodes hg in
  let seed_a = biggest_member hg ~member ~salt in
  if seed_a < 0 then invalid_arg "Seed_merge.split: empty member set";
  let st =
    State.create hg ~k:4 ~assign:(fun v -> if member v then pool else external_b)
  in
  let seed_b = far_member hg ~member seed_a in
  State.move st seed_a block_a;
  if seed_b <> seed_a then State.move st seed_b block_b;
  (* Frontier per block: pool nodes adjacent to the block.  Stored as a
     membership array + list; stale entries are skipped at use. *)
  let in_frontier = Array.make n (-1) in
  (* -1 none, 1 in A's frontier, 2 in B's, 3 in both *)
  let frontier = [| []; [] |] in
  let add_frontier blk u =
    let bit = if blk = block_a then 1 else 2 in
    let cur = max 0 in_frontier.(u) in
    if cur land bit = 0 then begin
      in_frontier.(u) <- cur lor bit;
      let idx = blk - 1 in
      frontier.(idx) <- u :: frontier.(idx)
    end
  in
  let extend_frontier blk v =
    Array.iter
      (fun e ->
        Array.iter
          (fun u -> if State.block_of st u = pool then add_frontier blk u)
          (Hg.pins hg e))
      (Hg.nets_of hg v)
  in
  extend_frontier block_a seed_a;
  if seed_b <> seed_a then extend_frontier block_b seed_b;
  (* Merge score: size gained per terminal paid after the tentative
     merge (higher is better).  Also returns the resulting pin count so
     the caller can enforce pin saturation. *)
  let score blk u =
    State.move st u blk;
    let s = State.size_of st blk in
    let t = max 1 (State.pins_of st blk) in
    State.move st u pool;
    (float_of_int s /. float_of_int t, t)
  in
  (* A candidate is acceptable when it fits the size budget and keeps
     the pins within T_MAX — "merge stops when constraints are
     saturated" covers both resources.  While the block is already
     above the pin budget, pin-decreasing merges stay acceptable so a
     temporary overshoot can be absorbed. *)
  let pick blk =
    let idx = blk - 1 in
    let best = ref (-1) in
    let best_score = ref neg_infinity in
    let live = ref [] in
    let pins_now = State.pins_of st blk in
    List.iter
      (fun u ->
        if State.block_of st u = pool then begin
          live := u :: !live;
          if State.size_of st blk + Hg.size hg u <= s_max then begin
            let sc, pins' = score blk u in
            if pins' <= t_max || pins' < pins_now then
              if sc > !best_score || (sc = !best_score && u lxor salt < !best lxor salt)
              then begin
                best_score := sc;
                best := u
              end
          end
        end)
      frontier.(idx);
    frontier.(idx) <- !live;
    if !best >= 0 then Some !best else None
  in
  let saturated = [| false; false |] in
  while not (saturated.(0) && saturated.(1)) do
    List.iter
      (fun blk ->
        if not saturated.(blk - 1) then
          match pick blk with
          | None -> saturated.(blk - 1) <- true
          | Some u ->
            State.move st u blk;
            extend_frontier blk u)
      [ block_a; block_b ]
  done;
  let p = if State.size_of st block_a >= State.size_of st block_b then block_a else block_b in
  let p_side = Array.init n (fun v -> State.block_of st v = p) in
  { p_side; p_size = State.size_of st p; p_pins = State.pins_of st p }
