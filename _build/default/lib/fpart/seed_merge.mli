(** Constructive initial bipartition by greedy seeded node merge
    (Brasen/Hiol/Saucier cone structures, paper section 3.2, pass 1).

    Two seed nodes are picked inside the remainder — the biggest node,
    and the node at maximal BFS distance from it.  Two blocks then grow
    simultaneously, one node per block per round; each block absorbs the
    frontier candidate maximising the merge cost [S_(i+j) / T_(i+j)]
    (size gained per terminal paid).  Growth of a block stops when no
    candidate fits under [S_MAX]; growing both blocks at once tempers
    the greed of absorbing all well-connected nodes into one cone.  The
    bigger block becomes the candidate device block [P]; everything else
    (second block and unabsorbed nodes) stays in the remainder.

    Pin counts are evaluated in the context of the whole partition: the
    scratch state keeps all already-committed blocks merged as one
    "external" block, which leaves every block's terminal count exactly
    as in the real partition. *)

type result = {
  p_side : bool array;  (** Nodes of the candidate block [P]. *)
  p_size : int;         (** Its logic size. *)
  p_pins : int;         (** Its terminal count (in full-partition context). *)
}

(** [split h ~member ~s_max ~t_max] bipartitions the sub-circuit
    [{v | member v}].  [salt] (default 0) perturbs the deterministic
    tie-breaks (seed choice, equal-score merges) so multi-start runs
    construct different initial partitions.
    @raise Invalid_argument when the member set is empty. *)
val split :
  ?salt:int ->
  Hypergraph.Hgraph.t ->
  member:(Hypergraph.Hgraph.node -> bool) ->
  s_max:int ->
  t_max:int ->
  result
