type pass_kind =
  | Pair_latest
  | All_blocks
  | Min_size
  | Min_io
  | Max_free
  | Final_pairs

type event =
  | Bipartition of { iteration : int; p_block : int; r_block : int; method_used : string }
  | Improve of {
      iteration : int;
      kind : pass_kind;
      blocks : int list;
      value : Partition.Cost.value;
      passes : int;
      moves : int;
      restarts : int;
    }
  | Committed of { iteration : int; block : int; size : int; pins : int }
  | Done of { iterations : int; k : int; feasible : bool }

type t = { mutable rev_events : event list }

let create () = { rev_events = [] }
let record t e = t.rev_events <- e :: t.rev_events
let events t = List.rev t.rev_events

let pp_kind ppf = function
  | Pair_latest -> Format.pp_print_string ppf "pair(R,P)"
  | All_blocks -> Format.pp_print_string ppf "all-blocks"
  | Min_size -> Format.pp_print_string ppf "min-size"
  | Min_io -> Format.pp_print_string ppf "min-io"
  | Max_free -> Format.pp_print_string ppf "max-free"
  | Final_pairs -> Format.pp_print_string ppf "final-pairs"

let pp_blocks ppf blocks =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int blocks))

let pp_event ppf = function
  | Bipartition { iteration; p_block; r_block; method_used } ->
    Format.fprintf ppf "it%-3d bipartition -> P=%d R=%d (%s)" iteration p_block
      r_block method_used
  | Improve { iteration; kind; blocks; value; passes; moves; restarts } ->
    Format.fprintf ppf "it%-3d improve %a %a %a [%d passes, %d moves, %d restarts]"
      iteration pp_kind kind pp_blocks blocks Partition.Cost.pp_value value passes
      moves restarts
  | Committed { iteration; block; size; pins } ->
    Format.fprintf ppf "it%-3d committed block %d (size=%d pins=%d)" iteration block
      size pins
  | Done { iterations; k; feasible } ->
    Format.fprintf ppf "done after %d iterations: k=%d feasible=%b" iterations k
      feasible
