lib/gainbucket/bucket_array.ml: Array Format
