lib/gainbucket/bucket_array.mli:
