lib/gainbucket/direction_set.ml: Array Bucket_array
