lib/gainbucket/direction_set.mli: Bucket_array
