(** Fiduccia–Mattheyses gain buckets.

    A bucket array keeps a set of cells, each with an integer gain in
    [[-max_gain, max_gain]], and answers "which unlocked cell has the
    highest gain" in amortized O(1).  Cells live in doubly linked lists
    (one per gain value) threaded through per-cell [prev]/[next] arrays.

    The insertion discipline is configurable — the paper's section 1
    lists "LIFO, FIFO gain buckets" among the classical FM parameters.
    LIFO (the default, shown best by Hagen/Huang/Kahng 1997) inserts at
    the head; FIFO appends at the tail.

    Cell identifiers are small ints (hypergraph node ids).  One bucket
    array serves one move direction; the multi-way engine keeps
    [k·(k-1)] of them (paper section 3.7). *)

type t

(** Insertion discipline for cells of equal gain. *)
type discipline =
  | Lifo  (** Most recently touched first (default). *)
  | Fifo  (** Oldest first. *)

(** [create ?discipline ~cells ~max_gain ()] makes an empty structure
    able to hold cells with ids in [0, cells) and gains in
    [[-max_gain, max_gain]].
    @raise Invalid_argument if [cells < 0] or [max_gain < 0]. *)
val create : ?discipline:discipline -> cells:int -> max_gain:int -> unit -> t

(** [mem t cell] is [true] iff [cell] is currently stored. *)
val mem : t -> int -> bool

(** [gain_of t cell] is the stored gain.
    @raise Invalid_argument if the cell is not stored. *)
val gain_of : t -> int -> int

(** [insert t cell gain] adds a cell at the head of its gain bucket.
    @raise Invalid_argument if already present or gain out of range. *)
val insert : t -> int -> int -> unit

(** [remove t cell] deletes the cell; no-op if absent. *)
val remove : t -> int -> unit

(** [update t cell gain] moves a stored cell to a new gain bucket
    (re-inserts at the head, as classical FM does on gain change). *)
val update : t -> int -> int -> unit

(** [cardinal t] is the number of stored cells. *)
val cardinal : t -> int

(** [is_empty t] is [cardinal t = 0]. *)
val is_empty : t -> bool

(** [top_gain t] is the highest gain with a non-empty bucket, if any. *)
val top_gain : t -> int option

(** [fold_top t ~limit ~init ~f] folds [f] over at most [limit] cells of
    the top non-empty bucket, head (most recently touched) first.  Used
    for bounded tie-break scans. *)
val fold_top : t -> limit:int -> init:'acc -> f:('acc -> int -> 'acc) -> 'acc

(** [iter t f] applies [f] to every stored cell (arbitrary order). *)
val iter : t -> (int -> unit) -> unit

(** [clear t] removes all cells. *)
val clear : t -> unit

(** [check t] verifies list integrity (test-only, O(cells + gains)). *)
val check : t -> (unit, string) result
