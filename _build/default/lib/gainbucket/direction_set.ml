type t = { buckets : Bucket_array.t array; enabled : bool array }

let create ?discipline ~directions ~cells ~max_gain () =
  {
    buckets =
      Array.init directions (fun _ ->
          Bucket_array.create ?discipline ~cells ~max_gain ());
    enabled = Array.make directions true;
  }

let bucket t dir = t.buckets.(dir)

let set_enabled t dir flag = t.enabled.(dir) <- flag

let enabled t dir = t.enabled.(dir)

let best_gain t =
  let best = ref None in
  Array.iteri
    (fun dir b ->
      if t.enabled.(dir) then
        match Bucket_array.top_gain b with
        | Some g -> (
          match !best with
          | Some g' when g' >= g -> ()
          | _ -> best := Some g)
        | None -> ())
    t.buckets;
  !best

let best_dirs t =
  match best_gain t with
  | None -> []
  | Some g ->
    let out = ref [] in
    for dir = Array.length t.buckets - 1 downto 0 do
      if t.enabled.(dir) && Bucket_array.top_gain t.buckets.(dir) = Some g then
        out := dir :: !out
    done;
    !out

let total_cells t =
  Array.fold_left (fun acc b -> acc + Bucket_array.cardinal b) 0 t.buckets

let clear t =
  Array.iter Bucket_array.clear t.buckets;
  Array.fill t.enabled 0 (Array.length t.enabled) true
