(** The set of per-direction gain buckets of a multi-way pass.

    The Sanchis engine maintains one {!Bucket_array} per ordered pair of
    active blocks ("move direction", paper section 3.7) and repeatedly
    asks for the direction(s) whose best cell has the globally highest
    gain.  The paper uses a heap for this; with the direction counts
    that arise in FPGA partitioning (at most [k·(k-1)] with [k ≤ 16] in
    multi-block passes, and exactly 2 in two-block passes) a linear
    argmax over direction tops is faster in practice and much simpler,
    so that is what this module does — it still centralises the
    enable/disable logic used to retire directions whose blocks hit the
    feasible-move-region boundary (section 3.5).

    Directions are dense integers [0 .. n-1] chosen by the caller. *)

type t

(** [create ?discipline ~directions ~cells ~max_gain ()] allocates
    [directions] empty bucket arrays (shared insertion discipline). *)
val create :
  ?discipline:Bucket_array.discipline ->
  directions:int ->
  cells:int ->
  max_gain:int ->
  unit ->
  t

(** [bucket t dir] is the bucket array of a direction (shared, mutable). *)
val bucket : t -> int -> Bucket_array.t

(** [set_enabled t dir flag] enables or disables a direction; disabled
    directions are skipped by {!best_dirs}. *)
val set_enabled : t -> int -> bool -> unit

(** [enabled t dir] reads the flag (directions start enabled). *)
val enabled : t -> int -> bool

(** [best_gain t] is the highest top gain over enabled, non-empty
    directions. *)
val best_gain : t -> int option

(** [best_dirs t] is all enabled directions whose top gain equals
    {!best_gain} (empty when all buckets are empty or disabled). *)
val best_dirs : t -> int list

(** [total_cells t] sums {!Bucket_array.cardinal} over all directions. *)
val total_cells : t -> int

(** [clear t] empties every bucket and re-enables every direction. *)
val clear : t -> unit
