lib/hypergraph/dot.ml: Array Buffer Hgraph Printf String
