lib/hypergraph/dot.mli: Hgraph
