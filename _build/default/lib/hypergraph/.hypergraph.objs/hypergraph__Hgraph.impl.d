lib/hypergraph/hgraph.ml: Array Format List Vec
