lib/hypergraph/hgraph.mli: Format
