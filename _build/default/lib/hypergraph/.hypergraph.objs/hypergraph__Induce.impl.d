lib/hypergraph/induce.ml: Array Hgraph List
