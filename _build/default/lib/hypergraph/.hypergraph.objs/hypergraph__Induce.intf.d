lib/hypergraph/induce.mli: Hgraph
