lib/hypergraph/stats.ml: Array Format Hashtbl Hgraph List Prng Queue Traversal
