lib/hypergraph/stats.mli: Format Hgraph
