lib/hypergraph/traversal.ml: Array Hgraph Queue
