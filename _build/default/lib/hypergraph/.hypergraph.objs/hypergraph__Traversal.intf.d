lib/hypergraph/traversal.mli: Hgraph
