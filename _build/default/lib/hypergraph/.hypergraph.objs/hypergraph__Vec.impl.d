lib/hypergraph/vec.ml: Array
