lib/hypergraph/vec.mli:
