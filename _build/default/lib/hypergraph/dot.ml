(* Colourblind-safe-ish cycle for block fills. *)
let palette =
  [| "#8dd3c7"; "#ffffb3"; "#bebada"; "#fb8072"; "#80b1d3"; "#fdb462";
     "#b3de69"; "#fccde5"; "#d9d9d9"; "#bc80bd"; "#ccebc5"; "#ffed6f" |]

let escape name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c -> if c = '"' || c = '\\' then Buffer.add_char buf '\\' else ();
      Buffer.add_char buf c)
    name;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_dot ?assignment ?(name = "circuit") h =
  (match assignment with
  | Some a when Array.length a <> Hgraph.num_nodes h ->
    invalid_arg "Dot.to_dot: wrong assignment length"
  | Some _ | None -> ());
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" (escape name));
  Buffer.add_string buf "  overlap=false;\n  node [fontsize=9];\n";
  Hgraph.iter_nodes
    (fun v ->
      let shape = if Hgraph.is_pad h v then "circle" else "box" in
      let fill =
        match assignment with
        | Some a -> Printf.sprintf ", style=filled, fillcolor=\"%s\""
                      palette.(a.(v) mod Array.length palette)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=%s, shape=%s%s];\n" v
           (escape (Hgraph.name h v)) shape fill))
    h;
  Hgraph.iter_nets
    (fun e ->
      if Hgraph.net_degree h e = 2 then begin
        (* two-pin nets as plain edges *)
        let pins = Hgraph.pins h e in
        Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" pins.(0) pins.(1))
      end
      else begin
        (* star expansion through a junction point *)
        Buffer.add_string buf
          (Printf.sprintf "  e%d [shape=point, width=0.05, label=\"\"];\n" e);
        Array.iter
          (fun v -> Buffer.add_string buf (Printf.sprintf "  e%d -- n%d;\n" e v))
          (Hgraph.pins h e)
      end)
    h;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path ?assignment ?name h =
  let oc = open_out_bin path in
  output_string oc (to_dot ?assignment ?name h);
  close_out oc
