(** Graphviz export of circuit hypergraphs.

    Star expansion: every net becomes a small junction vertex connected
    to its pins, cells are boxes, pads are circles.  With an assignment,
    nodes are filled with one colour per block — handy for eyeballing a
    partition ([dot -Tsvg] or [neato] for larger circuits). *)

(** [to_dot ?assignment ?name h] renders the hypergraph as an undirected
    Graphviz graph.  [assignment] (one block id per node) colours the
    nodes; block ids may exceed the palette, which then cycles.
    @raise Invalid_argument if [assignment] has the wrong length. *)
val to_dot : ?assignment:int array -> ?name:string -> Hgraph.t -> string

(** [write_file path ?assignment ?name h] writes the rendering. *)
val write_file : string -> ?assignment:int array -> ?name:string -> Hgraph.t -> unit
