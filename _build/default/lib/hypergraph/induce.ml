type t = { sub : Hgraph.t; to_sub : int array; to_orig : int array }

let induce h ~keep =
  let n = Hgraph.num_nodes h in
  let to_sub = Array.make n (-1) in
  let b = Hgraph.Builder.create () in
  let to_orig_rev = ref [] in
  for v = 0 to n - 1 do
    if keep v then begin
      let id =
        match Hgraph.kind h v with
        | Hgraph.Cell ->
          Hgraph.Builder.add_cell b ~flops:(Hgraph.flops h v) ~name:(Hgraph.name h v)
            ~size:(Hgraph.size h v)
        | Hgraph.Pad -> Hgraph.Builder.add_pad b ~name:(Hgraph.name h v)
      in
      to_sub.(v) <- id;
      to_orig_rev := v :: !to_orig_rev
    end
  done;
  Hgraph.iter_nets
    (fun e ->
      let pins =
        Array.to_list (Hgraph.pins h e)
        |> List.filter_map (fun v -> if to_sub.(v) >= 0 then Some to_sub.(v) else None)
      in
      if List.length pins >= 2 then
        ignore (Hgraph.Builder.add_net b ~name:(Hgraph.net_name h e) pins))
    h;
  {
    sub = Hgraph.Builder.freeze b;
    to_sub;
    to_orig = Array.of_list (List.rev !to_orig_rev);
  }
