(** Induced subhypergraphs.

    [induce h ~keep] extracts the subcircuit of the nodes with
    [keep v = true]: kept nodes are renumbered densely (preserving
    relative order), and each net is restricted to its kept pins — nets
    with fewer than two kept pins disappear (they can never be cut
    inside the subcircuit).

    Used by the multilevel recursive bisection (each half recurses on
    its own subhypergraph) and by the CLI's per-block netlist export. *)

type t = {
  sub : Hgraph.t;          (** The induced subhypergraph. *)
  to_sub : int array;      (** Original node → sub node, or -1. *)
  to_orig : int array;     (** Sub node → original node. *)
}

val induce : Hgraph.t -> keep:(Hgraph.node -> bool) -> t
