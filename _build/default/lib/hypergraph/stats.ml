type summary = {
  nodes : int;
  cells : int;
  pads : int;
  nets : int;
  total_size : int;
  avg_net_degree : float;
  max_net_degree : int;
  avg_node_degree : float;
  max_node_degree : int;
  components : int;
}

let summary h =
  let nets = Hgraph.num_nets h in
  let nodes = Hgraph.num_nodes h in
  let pin_total = Hgraph.fold_nets (fun acc e -> acc + Hgraph.net_degree h e) 0 h in
  let _, components = Traversal.components h in
  {
    nodes;
    cells = Hgraph.num_cells h;
    pads = Hgraph.num_pads h;
    nets;
    total_size = Hgraph.total_size h;
    avg_net_degree = (if nets = 0 then 0.0 else float_of_int pin_total /. float_of_int nets);
    max_net_degree = Hgraph.max_net_degree h;
    avg_node_degree =
      (if nodes = 0 then 0.0 else float_of_int pin_total /. float_of_int nodes);
    max_node_degree = Hgraph.max_node_degree h;
    components;
  }

let net_degree_histogram h =
  let hist = Array.make (Hgraph.max_net_degree h + 1) 0 in
  Hgraph.iter_nets
    (fun e ->
      let d = Hgraph.net_degree h e in
      hist.(d) <- hist.(d) + 1)
    h;
  hist

let external_nets h nodes =
  let inside = Hashtbl.create (List.length nodes * 2) in
  List.iter (fun v -> Hashtbl.replace inside v ()) nodes;
  let counted = Hashtbl.create 64 in
  let count = ref 0 in
  let consider e =
    if not (Hashtbl.mem counted e) then begin
      Hashtbl.replace counted e ();
      let pins = Hgraph.pins h e in
      let touches_inside = Array.exists (fun v -> Hashtbl.mem inside v) pins in
      if touches_inside then begin
        let crosses = Array.exists (fun v -> not (Hashtbl.mem inside v)) pins in
        let pad_inside =
          Array.exists (fun v -> Hashtbl.mem inside v && Hgraph.is_pad h v) pins
        in
        if crosses || pad_inside then incr count
      end
    end
  in
  List.iter (fun v -> Array.iter consider (Hgraph.nets_of h v)) nodes;
  !count

(* Grow a BFS cluster of [target] cells from [seed]; return its node list. *)
let grow_cluster h seed target =
  let visited = Hashtbl.create (target * 2) in
  let members = ref [] in
  let queue = Queue.create () in
  Hashtbl.replace visited seed ();
  Queue.add seed queue;
  let count = ref 0 in
  while !count < target && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    members := v :: !members;
    incr count;
    Array.iter
      (fun e ->
        Array.iter
          (fun u ->
            if (not (Hashtbl.mem visited u)) && not (Hgraph.is_pad h u) then begin
              Hashtbl.replace visited u ();
              Queue.add u queue
            end)
          (Hgraph.pins h e))
      (Hgraph.nets_of h v)
  done;
  !members

let least_squares_slope points =
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then None
  else Some (((n *. sxy) -. (sx *. sy)) /. denom)

let rent_exponent h ~rng_seed ~samples =
  let cells = Hgraph.num_cells h in
  if cells < 32 then None
  else begin
    let rng = Prng.Splitmix.create rng_seed in
    let cell_ids =
      Hgraph.fold_nodes
        (fun acc v -> if Hgraph.is_pad h v then acc else v :: acc)
        [] h
      |> Array.of_list
    in
    let points = ref [] in
    let size = ref 4 in
    while !size <= cells / 4 do
      for _ = 1 to samples do
        let seed = Prng.Splitmix.choose rng cell_ids in
        let cluster = grow_cluster h seed !size in
        let actual = List.length cluster in
        if actual >= 2 then begin
          let pins = external_nets h cluster in
          if pins >= 1 then
            points :=
              (log (float_of_int actual), log (float_of_int pins)) :: !points
        end
      done;
      size := !size * 2
    done;
    if List.length !points < 4 then None else least_squares_slope !points
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "nodes=%d (cells=%d pads=%d) nets=%d size=%d net-deg avg=%.2f max=%d \
     node-deg avg=%.2f max=%d components=%d"
    s.nodes s.cells s.pads s.nets s.total_size s.avg_net_degree s.max_net_degree
    s.avg_node_degree s.max_node_degree s.components
