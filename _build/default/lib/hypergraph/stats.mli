(** Descriptive statistics of circuit hypergraphs.

    Used to validate that the synthetic MCNC-surrogate circuits have
    realistic structure (fanout distribution, locality), and by the
    documentation/examples to describe workloads. *)

type summary = {
  nodes : int;
  cells : int;
  pads : int;
  nets : int;
  total_size : int;
  avg_net_degree : float;
  max_net_degree : int;
  avg_node_degree : float;
  max_node_degree : int;
  components : int;
}

(** [summary h] computes the full summary in one pass. *)
val summary : Hgraph.t -> summary

(** [net_degree_histogram h] maps net degree [d] (array index) to the
    number of nets with exactly [d] pins.  Index 0 is unused. *)
val net_degree_histogram : Hgraph.t -> int array

(** [external_nets h nodes] counts nets that have at least one pin
    inside the node set and at least one pin outside (or a pad inside).
    This is the pin cost the partitioners charge to a block holding
    exactly [nodes]. *)
val external_nets : Hgraph.t -> Hgraph.node list -> int

(** [rent_exponent h ~rng_seed ~samples] estimates the Rent exponent by
    sampling BFS-grown clusters of geometrically increasing size and
    fitting [log pins = p * log size + c] by least squares.  Returns
    [None] when the circuit is too small to sample (fewer than two
    usable cluster sizes). *)
val rent_exponent : Hgraph.t -> rng_seed:int -> samples:int -> float option

val pp_summary : Format.formatter -> summary -> unit
