let bfs_distances h v0 =
  let n = Hgraph.num_nodes h in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(v0) <- 0;
  Queue.add v0 queue;
  (* [net_seen] avoids rescanning a net once all its pins are enqueued. *)
  let net_seen = Array.make (Hgraph.num_nets h) false in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let d = dist.(v) in
    Array.iter
      (fun e ->
        if not net_seen.(e) then begin
          net_seen.(e) <- true;
          Array.iter
            (fun u ->
              if dist.(u) < 0 then begin
                dist.(u) <- d + 1;
                Queue.add u queue
              end)
            (Hgraph.pins h e)
        end)
      (Hgraph.nets_of h v)
  done;
  dist

let farthest_node h v0 =
  let dist = bfs_distances h v0 in
  let best = ref v0 and best_d = ref 0 in
  Array.iteri
    (fun u d -> if d > !best_d then begin best := u; best_d := d end)
    dist;
  (!best, !best_d)

let components h =
  let n = Hgraph.num_nodes h in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for v0 = 0 to n - 1 do
    if comp.(v0) < 0 then begin
      let c = !count in
      incr count;
      comp.(v0) <- c;
      Queue.add v0 queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Array.iter
          (fun e ->
            Array.iter
              (fun u ->
                if comp.(u) < 0 then begin
                  comp.(u) <- c;
                  Queue.add u queue
                end)
              (Hgraph.pins h e))
          (Hgraph.nets_of h v)
      done
    end
  done;
  (comp, !count)

let is_connected h =
  let _, c = components h in
  c <= 1

let eccentric_pair h seed =
  let a, _ = farthest_node h seed in
  let b, _ = farthest_node h a in
  (a, b)
