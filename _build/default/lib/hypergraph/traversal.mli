(** Breadth-first traversals over circuit hypergraphs.

    Two nodes are neighbours when they share a net.  These helpers back
    the seed selection of the constructive initial-partition methods
    (section 3.2 of the paper): the second seed is chosen as the node at
    maximal BFS distance from the first. *)

(** [bfs_distances h v] is an array mapping each node to its hop
    distance from [v]; unreachable nodes map to [-1]. *)
val bfs_distances : Hgraph.t -> Hgraph.node -> int array

(** [farthest_node h v] is [(u, d)] where [u] is a node at maximal BFS
    distance [d] from [v] (ties broken by smallest id).  [v] itself is
    returned when it has no neighbours. *)
val farthest_node : Hgraph.t -> Hgraph.node -> Hgraph.node * int

(** [components h] assigns a component index to every node and returns
    [(comp, count)]: [comp.(v)] is the component of node [v] and [count]
    the number of connected components. *)
val components : Hgraph.t -> int array * int

(** [is_connected h] is [true] iff the hypergraph has at most one
    connected component. *)
val is_connected : Hgraph.t -> bool

(** [eccentric_pair h seed] runs two BFS sweeps (the classic
    pseudo-diameter heuristic) and returns a pair of far-apart nodes:
    first the farthest node from [seed], then the farthest node from
    that one. *)
val eccentric_pair : Hgraph.t -> Hgraph.node -> Hgraph.node * Hgraph.node
