type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  (* [dummy] fills unused slots so we never keep references alive and can
     grow an empty vector without a witness value. *)
  mutable dummy : 'a option;
}

let create () = { data = [||]; len = 0; dummy = None }

let make n x = { data = Array.make (max n 1) x; len = n; dummy = Some x }

let length v = v.len

let grow v witness =
  let cap = Array.length v.data in
  if v.len >= cap then begin
    let ncap = max 8 (2 * cap) in
    let ndata = Array.make ncap witness in
    Array.blit v.data 0 ndata 0 v.len;
    v.data <- ndata
  end

let push v x =
  if v.dummy = None then v.dummy <- Some x;
  grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)

let set v i x = check v i; v.data.(i) <- x

let to_array v = Array.sub v.data 0 v.len

let iter f v =
  for i = 0 to v.len - 1 do f v.data.(i) done

let iteri f v =
  for i = 0 to v.len - 1 do f i v.data.(i) done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do acc := f !acc v.data.(i) done;
  !acc

let clear v = v.len <- 0
