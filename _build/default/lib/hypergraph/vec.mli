(** Resizable vectors used by hypergraph builders.

    OCaml 5.1 has no [Dynarray]; this is the small subset the library
    needs.  ['a t] is a growable array with amortized O(1) [push]. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : unit -> 'a t

(** [make n x] is a vector holding [n] copies of [x]. *)
val make : int -> 'a -> 'a t

(** [length v] is the number of elements pushed so far. *)
val length : 'a t -> int

(** [push v x] appends [x] at the end of [v]. *)
val push : 'a t -> 'a -> unit

(** [get v i] is the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [to_array v] is a fresh array with the contents of [v]. *)
val to_array : 'a t -> 'a array

(** [iter f v] applies [f] to every element, in push order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f v] is [iter] with the element index. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [fold f acc v] folds [f] over the elements, in push order. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [clear v] removes all elements (capacity is kept). *)
val clear : 'a t -> unit
