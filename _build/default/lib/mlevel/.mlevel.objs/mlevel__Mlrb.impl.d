lib/mlevel/mlrb.ml: Array Cluster Fm Fun Hypergraph List Partition Prng Queue Sanchis Sys
