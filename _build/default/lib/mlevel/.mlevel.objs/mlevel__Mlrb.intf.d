lib/mlevel/mlrb.mli: Device Hypergraph
