module Hg = Hypergraph.Hgraph
module Induce = Hypergraph.Induce
module State = Partition.State
module Cost = Partition.Cost
module Rng = Prng.Splitmix

type config = {
  coarsen_to : int;
  cluster_size : int;
  fm_passes : int;
  balance_tol : float;
  delta : float;
  max_extra_k : int;
  seed : int;
}

let default_config =
  {
    coarsen_to = 24;
    cluster_size = 4;
    fm_passes = 6;
    balance_tol = 0.1;
    delta = 0.9;
    max_extra_k = 8;
    seed = 0x41;
  }

type outcome = {
  assignment : int array;
  k : int;
  feasible : bool;
  cut : int;
  cpu_seconds : float;
}

(* The side-0 weight window [lo0, hi0] is capacity-derived by the caller
   (side 0 must hold at most k0 devices' worth and leave the rest at
   most k1 devices' worth); the balance tolerance only widens it when
   the capacity window is slack. *)
let limits_for config total ~lo0 ~hi0 =
  let slack =
    int_of_float (config.balance_tol *. float_of_int total /. 4.0)
  in
  let lo0 = max 0 (min lo0 (total - 0)) in
  let hi0 = min total hi0 in
  let lo0' = max 0 (lo0 - slack) and hi0' = min total (hi0 + slack) in
  ignore lo0';
  ignore hi0';
  {
    Fm.lo0;
    hi0;
    lo1 = total - hi0;
    hi1 = total - lo0;
  }

(* Greedy BFS-grown initial bisection of [hg] with side 0 holding
   [target0] of the logic weight, followed by FM refinement. *)
let flat_bisect _config rng hg ~lo0 ~hi0 =
  let n = Hg.num_nodes hg in
  let total = Hg.total_size hg in
  let want = min total ((lo0 + hi0) / 2) in
  let side = Array.make n false in
  if total > 0 && want > 0 then begin
    let cells =
      Hg.fold_nodes (fun acc v -> if Hg.is_pad hg v then acc else v :: acc) [] hg
      |> Array.of_list
    in
    if Array.length cells > 0 then begin
      let start = Rng.choose rng cells in
      let seen = Array.make n false in
      let q = Queue.create () in
      seen.(start) <- true;
      Queue.add start q;
      let grown = ref 0 in
      while !grown < want && not (Queue.is_empty q) do
        let v = Queue.pop q in
        if !grown + Hg.size hg v <= want || !grown = 0 then begin
          side.(v) <- true;
          grown := !grown + Hg.size hg v
        end;
        Array.iter
          (fun e ->
            Array.iter
              (fun u ->
                if not seen.(u) then begin
                  seen.(u) <- true;
                  Queue.add u q
                end)
              (Hg.pins hg e))
          (Hg.nets_of hg v)
      done;
      (* disconnected leftovers: top up side 0 with arbitrary cells *)
      if !grown < want then
        Array.iter
          (fun v ->
            if (not side.(v)) && !grown + Hg.size hg v <= want then begin
              side.(v) <- true;
              grown := !grown + Hg.size hg v
            end)
          cells
    end
  end;
  side

let refine config hg side ~lo0 ~hi0 =
  let st = State.create hg ~k:2 ~assign:(fun v -> if side.(v) then 0 else 1) in
  let limits = limits_for config (Hg.total_size hg) ~lo0 ~hi0 in
  ignore (Fm.refine st ~block0:0 ~block1:1 ~limits ~max_passes:config.fm_passes);
  (* FM respects windows only for moves; if the initial side overshot,
     drain the violating side greedily (cheapest pin damage first) *)
  let drain from_b to_b over =
    let budget = ref (State.cells_of st from_b) in
    while State.size_of st from_b > over && !budget > 0 do
      decr budget;
      let best = ref (-1) and best_gain = ref min_int in
      List.iter
        (fun v ->
          if Hg.size hg v > 0 then begin
            let g = State.cut_gain st v to_b in
            if g > !best_gain then begin
              best_gain := g;
              best := v
            end
          end)
        (State.nodes_of_block st from_b);
      if !best >= 0 then State.move st !best to_b else budget := 0
    done
  in
  let total = Hg.total_size hg in
  drain 0 1 hi0;
  drain 1 0 (total - lo0);
  Array.init (Hg.num_nodes hg) (fun v -> State.block_of st v = 0)

(* Multilevel bisection: coarsen until small, bisect, project + refine. *)
let rec ml_bisect config rng hg ~lo0 ~hi0 =
  let n = Hg.num_nodes hg in
  if n <= config.coarsen_to then
    refine config hg (flat_bisect config rng hg ~lo0 ~hi0) ~lo0 ~hi0
  else begin
    let cl =
      Cluster.build hg ~max_cluster_size:config.cluster_size
        ~seed:(Rng.int rng 1_000_000)
    in
    let coarse = Cluster.coarse cl in
    if Hg.num_nodes coarse * 20 >= n * 19 then
      (* coarsening stalled: fall back to a flat bisection *)
      refine config hg (flat_bisect config rng hg ~lo0 ~hi0) ~lo0 ~hi0
    else begin
      let coarse_side = ml_bisect config rng coarse ~lo0 ~hi0 in
      let side =
        Array.init n (fun v -> coarse_side.(Cluster.coarse_of cl v))
      in
      refine config hg side ~lo0 ~hi0
    end
  end

(* Recursive k-way over the original node ids: nodes with [keep] get
   blocks [base .. base+k-1] written into [assignment]. *)
let rec kway config rng hg assignment ~s_max ~keep ~base ~k =
  if k <= 1 then
    Array.iteri (fun v inside -> if inside then assignment.(v) <- base) keep
  else begin
    let ind = Induce.induce hg ~keep:(fun v -> keep.(v)) in
    let k0 = (k + 1) / 2 in
    let total = Hg.total_size ind.Induce.sub in
    (* capacity window: side 0 hosts k0 devices, side 1 the other k-k0 *)
    let lo0 = max 0 (total - ((k - k0) * s_max)) in
    let hi0 = min total (k0 * s_max) in
    let side = ml_bisect config rng ind.Induce.sub ~lo0 ~hi0 in
    let n = Hg.num_nodes hg in
    let left = Array.make n false and right = Array.make n false in
    Array.iteri
      (fun sub_v orig_v ->
        if side.(sub_v) then left.(orig_v) <- true else right.(orig_v) <- true)
      ind.Induce.to_orig;
    kway config rng hg assignment ~s_max ~keep:left ~base ~k:k0;
    kway config rng hg assignment ~s_max ~keep:right ~base:(base + k0) ~k:(k - k0)
  end

(* Flat multi-block cleanup: restore pin feasibility after the balance-
   driven bisections (ring of pairwise passes for large k). *)
let fixup _config hg assignment k ctx =
  let st = State.create hg ~k ~assign:(fun v -> assignment.(v)) in
  let lower = Array.make k 0 and upper = Array.make k ctx.Cost.s_max in
  let eval st = Cost.evaluate Cost.default_params ctx st ~remainder:None ~step_k:k in
  let engine = { Sanchis.default_config with max_passes = 4 } in
  if k = 1 then ()
  else if k <= 16 then
    ignore
      (Sanchis.improve st
         ~spec:{ Sanchis.active = Array.init k Fun.id; remainder = None; lower; upper }
         ~config:engine ~eval)
  else
    for i = 0 to k - 1 do
      let j = (i + 1) mod k in
      ignore
        (Sanchis.improve st
           ~spec:{ Sanchis.active = [| i; j |]; remainder = None; lower; upper }
           ~config:engine ~eval)
    done;
  st

let partition hg device config =
  let t0 = Sys.time () in
  let ctx = Cost.context_of device ~delta:config.delta hg in
  let m = ctx.Cost.m_lower in
  let n = Hg.num_nodes hg in
  let best = ref None in
  let consider st k =
    let report = Partition.Check.of_state st ~ctx in
    let candidate = (report.Partition.Check.violations, k, st) in
    (match !best with
    | Some (v, k', _) when (v, k') <= (report.Partition.Check.violations, k) -> ()
    | _ -> best := Some candidate);
    report.Partition.Check.feasible
  in
  let rec probe k =
    if k > m + config.max_extra_k then ()
    else begin
      let rng = Rng.create (config.seed + k) in
      let assignment = Array.make n 0 in
      kway config rng hg assignment ~s_max:ctx.Cost.s_max
        ~keep:(Array.make n true) ~base:0 ~k;
      let st = fixup config hg assignment k ctx in
      if not (consider st k) then probe (k + 1)
    end
  in
  probe (max 1 m);
  match !best with
  | None ->
    (* max_extra_k < 0 corner: return the trivial single block *)
    let st = State.create hg ~k:1 ~assign:(fun _ -> 0) in
    {
      assignment = State.assignment st;
      k = 1;
      feasible = Cost.classify ctx st = Cost.Feasible;
      cut = State.cut_size st;
      cpu_seconds = Sys.time () -. t0;
    }
  | Some (violations, k, st) ->
    {
      assignment = State.assignment st;
      k;
      feasible = violations = 0;
      cut = State.cut_size st;
      cpu_seconds = Sys.time () -. t0;
    }
