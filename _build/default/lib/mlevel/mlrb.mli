(** Multilevel recursive bisection — a post-paper baseline.

    The technique that superseded flat FM shortly after the paper
    (hMETIS, Karypis et al. 1997): coarsen the circuit through a
    hierarchy of connectivity clusterings, bipartition the smallest
    level, then project back level by level with FM refinement at each.
    k-way partitions come from recursive bisection with proportional
    size targets; device feasibility (the pin constraint in particular)
    is restored by a final flat multi-block improvement pass.

    The driver probes k = M, M+1, ... until every block meets the
    device constraints, mirroring the problem statement of the paper
    ("find a feasible partition with minimum k"). *)

type config = {
  coarsen_to : int;    (** Stop coarsening below this many nodes (≥ 8). *)
  cluster_size : int;  (** Max cluster logic size per coarsening level. *)
  fm_passes : int;     (** FM passes per refinement level. *)
  balance_tol : float; (** Allowed deviation from proportional split. *)
  delta : float;       (** Filling ratio. *)
  max_extra_k : int;   (** Probe at most M + this many block counts. *)
  seed : int;
}

val default_config : config

type outcome = {
  assignment : int array;
  k : int;
  feasible : bool;
  cut : int;
  cpu_seconds : float;
}

(** [partition h device config] splits the circuit onto copies of
    [device].  Always terminates; when even [M + max_extra_k] blocks
    cannot be made feasible the best attempt is returned with
    [feasible = false]. *)
val partition : Hypergraph.Hgraph.t -> Device.t -> config -> outcome
