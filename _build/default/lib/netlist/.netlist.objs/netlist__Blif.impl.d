lib/netlist/blif.ml: Array Buffer Format Hashtbl Hypergraph List Printf String
