lib/netlist/blif.mli: Hypergraph
