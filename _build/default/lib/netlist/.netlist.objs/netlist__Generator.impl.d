lib/netlist/generator.ml: Array Hashtbl Hypergraph List Printf Prng
