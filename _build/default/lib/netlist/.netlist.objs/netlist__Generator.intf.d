lib/netlist/generator.mli: Hypergraph
