lib/netlist/mcnc.ml: Char Device Generator List String
