lib/netlist/mcnc.mli: Device Hypergraph
