lib/netlist/partfile.ml: Array Buffer Hashtbl Hypergraph List Printf String
