lib/netlist/partfile.mli: Hypergraph
