lib/netlist/verilog.ml: Array Buffer Format Hashtbl Hypergraph List Printf String
