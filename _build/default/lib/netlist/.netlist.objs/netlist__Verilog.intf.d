lib/netlist/verilog.mli: Hypergraph
