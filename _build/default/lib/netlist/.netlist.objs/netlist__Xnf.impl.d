lib/netlist/xnf.ml: Array Buffer Filename Hashtbl Hypergraph List Printf String
