lib/netlist/xnf.mli: Hypergraph
