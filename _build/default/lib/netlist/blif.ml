module Hg = Hypergraph.Hgraph

type model = { model_name : string; graph : Hg.t }

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type raw_line = { lineno : int; tokens : string list }

(* Split input into logical lines: strip comments, join continuations
   ending in '\', drop blanks. *)
let logical_lines text =
  let lines = String.split_on_char '\n' text in
  let rec go acc pending pending_no n = function
    | [] ->
      let acc =
        match pending with
        | Some buf -> { lineno = pending_no; tokens = buf } :: acc
        | None -> acc
      in
      List.rev acc
    | line :: rest ->
      let n = n + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
      let body = if continued then String.sub line 0 (String.length line - 1) else line in
      let tokens =
        String.split_on_char ' ' body
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      let merged, merged_no =
        match pending with
        | Some buf -> (buf @ tokens, pending_no)
        | None -> (tokens, n)
      in
      if continued then go acc (Some merged) merged_no n rest
      else if merged = [] then go acc None 0 n rest
      else go ({ lineno = merged_no; tokens = merged } :: acc) None 0 n rest
  in
  go [] None 0 0 lines

type cell_desc = { cell_label : string; signals : string list; is_latch : bool }

type parse_state = {
  mutable the_model : string option;
  mutable inputs : string list;  (* reversed *)
  mutable outputs : string list; (* reversed *)
  mutable cells : cell_desc list; (* reversed *)
  mutable cell_count : int;
  mutable ended : bool;
}

let err lineno fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt

let is_latch_type = function
  | "fe" | "re" | "ah" | "al" | "as" -> true
  | _ -> false

let parse_gate_actuals args =
  (* formal=actual pairs; we only need the actual signal names *)
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i when i < String.length tok - 1 ->
        Some (String.sub tok (i + 1) (String.length tok - i - 1))
      | _ -> None)
    args

let parse_lines lines =
  let st =
    { the_model = None; inputs = []; outputs = []; cells = []; cell_count = 0; ended = false }
  in
  let fresh_label prefix =
    st.cell_count <- st.cell_count + 1;
    Printf.sprintf "%s%d" prefix st.cell_count
  in
  let add_cell ?(is_latch = false) label signals =
    st.cells <- { cell_label = label; signals; is_latch } :: st.cells
  in
  let rec go = function
    | [] -> Ok ()
    | { lineno; tokens } :: rest -> (
      if st.ended then Ok () (* ignore everything after .end *)
      else
        match tokens with
        | ".model" :: name :: _ ->
          if st.the_model = None then st.the_model <- Some name;
          go rest
        | ".model" :: [] -> err lineno ".model without a name"
        | ".inputs" :: sigs ->
          st.inputs <- List.rev_append sigs st.inputs;
          go rest
        | ".outputs" :: sigs ->
          st.outputs <- List.rev_append sigs st.outputs;
          go rest
        | ".names" :: sigs ->
          if sigs = [] then err lineno ".names without signals"
          else begin
            add_cell (fresh_label "g") sigs;
            go rest
          end
        | ".latch" :: args -> (
          match args with
          | input :: output :: tail ->
            let ctrl =
              match tail with
              | ty :: ctrl :: _ when is_latch_type ty -> [ ctrl ]
              | _ -> []
            in
            add_cell ~is_latch:true (fresh_label "l") (input :: output :: ctrl);
            go rest
          | _ -> err lineno ".latch needs at least input and output")
        | (".gate" | ".subckt") :: name :: args ->
          let actuals = parse_gate_actuals args in
          if actuals = [] then err lineno ".gate/.subckt %s has no connections" name
          else begin
            add_cell (fresh_label (name ^ "_")) actuals;
            go rest
          end
        | ".end" :: _ ->
          st.ended <- true;
          go rest
        | tok :: _ when String.length tok > 0 && tok.[0] = '.' ->
          (* unknown directive: ignore *)
          go rest
        | _ ->
          (* cover line of the preceding .names: ignore *)
          go rest)
  in
  match go lines with
  | Error _ as e -> e
  | Ok () -> (
    match st.the_model with
    | None -> Error "no .model found"
    | Some name ->
      Ok (name, List.rev st.inputs, List.rev st.outputs, List.rev st.cells))

let build_graph (name, inputs, outputs, cells) =
  let b = Hg.Builder.create () in
  (* signal -> list of node ids (reversed) *)
  let nets : (string, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let touch signal node =
    match Hashtbl.find_opt nets signal with
    | Some l -> l := node :: !l
    | None -> Hashtbl.add nets signal (ref [ node ])
  in
  List.iter
    (fun c ->
      let id =
        Hg.Builder.add_cell b
          ~flops:(if c.is_latch then 1 else 0)
          ~name:c.cell_label ~size:1
      in
      List.iter (fun s -> touch s id) (List.sort_uniq compare c.signals))
    cells;
  let add_pads role signals =
    List.iteri
      (fun i s ->
        let id = Hg.Builder.add_pad b ~name:(Printf.sprintf "%s_%s%d" s role i) in
        touch s id)
      signals
  in
  add_pads "in" inputs;
  add_pads "out" outputs;
  (* one net per signal with >= 2 pins, in deterministic (sorted) order *)
  let signals = Hashtbl.fold (fun s _ acc -> s :: acc) nets [] |> List.sort compare in
  List.iter
    (fun s ->
      let pins = List.sort_uniq compare !(Hashtbl.find nets s) in
      if List.length pins >= 2 then ignore (Hg.Builder.add_net b ~name:s pins))
    signals;
  { model_name = name; graph = Hg.Builder.freeze b }

let parse_string text =
  match parse_lines (logical_lines text) with
  | Error _ as e -> e
  | Ok parsed ->
    let m = build_graph parsed in
    (match Hg.validate m.graph with
    | Ok () -> Ok m
    | Error msg -> Error ("internal: invalid hypergraph from BLIF: " ^ msg))

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let to_string m =
  let h = m.graph in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" m.model_name);
  (* Pads become .inputs/.outputs signals named after their single net.
     Even pad index -> input, odd -> output (matches the generator). *)
  let pad_signal v =
    match Hg.nets_of h v with
    | [| e |] -> Hg.net_name h e
    | nets ->
      if Array.length nets = 0 then
        invalid_arg (Printf.sprintf "Blif.to_string: pad %s has no net" (Hg.name h v))
      else
        invalid_arg
          (Printf.sprintf "Blif.to_string: pad %s has %d nets (expected 1)"
             (Hg.name h v) (Array.length nets))
  in
  let ins = ref [] and outs = ref [] in
  let flip = ref true in
  Hg.iter_pads
    (fun v ->
      let s = pad_signal v in
      if !flip then ins := s :: !ins else outs := s :: !outs;
      flip := not !flip)
    h;
  let emit_list dir l =
    if l <> [] then
      Buffer.add_string buf (Printf.sprintf "%s %s\n" dir (String.concat " " (List.rev l)))
  in
  emit_list ".inputs" !ins;
  emit_list ".outputs" !outs;
  Hg.iter_cells
    (fun v ->
      let signals = Array.to_list (Hg.nets_of h v) |> List.map (Hg.net_name h) in
      match signals with
      | [] ->
        (* isolated cell: emit a private constant signal to keep it *)
        Buffer.add_string buf (Printf.sprintf ".names __dangling_%d\n1\n" v)
      | [ a; b ] when Hg.flops h v > 0 ->
        (* two-net flop cells round-trip as latches (preserves the FF
           annotation); wider flop cells degrade to .names below *)
        Buffer.add_string buf (Printf.sprintf ".latch %s %s\n" a b)
      | _ ->
        Buffer.add_string buf (Printf.sprintf ".names %s\n" (String.concat " " signals));
        let n_in = List.length signals - 1 in
        if n_in > 0 then
          Buffer.add_string buf (String.make n_in '1' ^ " 1\n")
        else Buffer.add_string buf "1\n")
    h;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path m =
  let oc = open_out_bin path in
  output_string oc (to_string m);
  close_out oc

let of_hypergraph ~name h = { model_name = name; graph = h }
