(** Reader and writer for a practical subset of Berkeley BLIF.

    Supported constructs:
    - [.model NAME], [.end]
    - [.inputs s1 s2 ...] / [.outputs s1 s2 ...] (continuation with [\\])
    - [.names in1 ... inN out] followed by cover lines (cover lines are
      kept only to delimit the block; logic content is irrelevant to
      partitioning) — becomes one interior node of size 1 on the nets of
      its signals;
    - [.latch input output [type ctrl] [init]] — becomes one interior
      node (carrying one flip-flop) on the input, output and (when
      present) control nets;
    - [#] comments and blank lines.

    Each distinct signal name becomes one net; each [.inputs]/[.outputs]
    signal additionally gets a terminal (pad) node on its net.  This is
    exactly the hypergraph model of the paper's section 2. *)

type model = {
  model_name : string;
  graph : Hypergraph.Hgraph.t;
}

(** [parse_string s] parses BLIF text.  Returns [Error msg] with a
    1-based line number on malformed input. *)
val parse_string : string -> (model, string) result

(** [parse_file path] reads and parses a file. *)
val parse_file : string -> (model, string) result

(** [to_string m] renders the model back to BLIF.  Interior nodes whose
    incident nets allow it are emitted as [.names] blocks with a dummy
    cover; two-net cells carrying a flip-flop are emitted as [.latch]
    (preserving the FF annotation).  The output is re-parseable by
    {!parse_string} and round-trips node/net/pad counts. *)
val to_string : model -> string

(** [write_file path m] writes [to_string m] to [path]. *)
val write_file : string -> model -> unit

(** [of_hypergraph ~name h] wraps an existing hypergraph as a model
    (e.g. to export a generated surrogate circuit as BLIF). *)
val of_hypergraph : name:string -> Hypergraph.Hgraph.t -> model
