type circuit = {
  circuit_name : string;
  iobs : int;
  clbs_xc2000 : int;
  clbs_xc3000 : int;
}

let mk circuit_name iobs clbs_xc2000 clbs_xc3000 =
  { circuit_name; iobs; clbs_xc2000; clbs_xc3000 }

(* Table 1 of the paper, verbatim. *)
let all =
  [
    mk "c3540" 72 373 283;
    mk "c5315" 301 535 377;
    mk "c6288" 64 833 833;
    mk "c7552" 313 611 489;
    mk "s5378" 86 500 381;
    mk "s9234" 43 565 454;
    mk "s13207" 154 1038 915;
    mk "s15850" 102 1013 842;
    mk "s38417" 136 2763 2221;
    mk "s38584" 292 3956 2904;
  ]

let find name = List.find_opt (fun c -> c.circuit_name = name) all

let table5_subset =
  List.filter_map find [ "c3540"; "c5315"; "c7552"; "c6288" ]

let clbs c = function
  | Device.XC2000 -> c.clbs_xc2000
  | Device.XC3000 -> c.clbs_xc3000

(* Stable seed from circuit name + family so surrogates are reproducible
   across runs and processes (no Hashtbl.hash dependence). *)
let seed_of c family =
  let tag = match family with Device.XC2000 -> "xc2000" | Device.XC3000 -> "xc3000" in
  let s = c.circuit_name ^ ":" ^ tag in
  let h = ref 5381 in
  String.iter (fun ch -> h := (!h * 33) + Char.code ch) s;
  !h land 0x3FFFFFFF

let surrogate c family =
  let cells = clbs c family in
  let spec =
    Generator.default_spec ~name:c.circuit_name ~cells ~pads:c.iobs
      ~seed:(seed_of c family)
  in
  (* Pad-heavy circuits (c5315, c7552: one I/O per ~1.5 cells) are
     shallow, I/O-dominated netlists; their internal wiring density is
     correspondingly lower than that of the deep sequential s-circuits.
     Without this, the surrogate is intrinsically harder to partition at
     the pin-derived lower bound than the real circuit. *)
  let ratio = float_of_int c.iobs /. float_of_int cells in
  let spec =
    if ratio > 0.3 then { spec with Generator.wiring = 0.18 } else spec
  in
  (* s-circuits are sequential (ISCAS'89): roughly a third of their
     mapped CLBs carry a flip-flop; c-circuits (ISCAS'85) are pure
     combinational logic. *)
  let spec =
    if c.circuit_name.[0] = 's' then { spec with Generator.flop_ratio = 0.3 }
    else spec
  in
  Generator.generate spec
