(** MCNC Partitioning93 benchmark surrogates.

    Table 1 of the paper lists ten MCNC circuits with their primary I/O
    counts and CLB counts after technology mapping onto the Xilinx
    XC2000 and XC3000 families.  This module records those published
    characteristics and builds deterministic surrogate circuits with the
    exact same interface numbers (see {!Generator} and DESIGN.md for why
    this substitution preserves the experiments' behaviour). *)

type circuit = {
  circuit_name : string;
  iobs : int;      (** Primary I/O count ([#IOBs], Table 1). *)
  clbs_xc2000 : int;  (** CLBs after mapping to XC2000 ([#CLBs], Table 1). *)
  clbs_xc3000 : int;  (** CLBs after mapping to XC3000 ([#CLBs], Table 1). *)
}

(** The ten circuits of Table 1, in the paper's order: c3540, c5315,
    c6288, c7552, s5378, s9234, s13207, s15850, s38417, s38584. *)
val all : circuit list

(** The four combinational circuits used in Table 5 (XC2064): c3540,
    c5315, c7552, c6288 — in the paper's Table 5 row order. *)
val table5_subset : circuit list

(** [find name] looks a circuit up by name. *)
val find : string -> circuit option

(** [clbs c family] selects the CLB count for a device family. *)
val clbs : circuit -> Device.family -> int

(** [surrogate c family] generates the surrogate hypergraph for circuit
    [c] mapped onto [family]: [clbs c family] unit-size cells and
    [c.iobs] pads.  Deterministic (the seed is derived from the circuit
    name and family). *)
val surrogate : circuit -> Device.family -> Hypergraph.Hgraph.t
