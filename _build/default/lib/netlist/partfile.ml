module Hg = Hypergraph.Hgraph

type t = {
  circuit : string;
  delta : float;
  block_devices : string array;
  assignment : (string * int) list;
}

let of_assignment hg ~circuit ~delta ~block_devices ~assignment =
  if Array.length assignment <> Hg.num_nodes hg then
    invalid_arg "Partfile.of_assignment: wrong assignment length";
  let k = Array.length block_devices in
  Array.iter
    (fun b ->
      if b < 0 || b >= k then
        invalid_arg "Partfile.of_assignment: block out of range")
    assignment;
  let assignment_list =
    Hg.fold_nodes (fun acc v -> (Hg.name hg v, assignment.(v)) :: acc) [] hg
    |> List.rev
  in
  { circuit; delta; block_devices; assignment = assignment_list }

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# fpart partition\n";
  Buffer.add_string buf (Printf.sprintf "circuit %s\n" t.circuit);
  Buffer.add_string buf (Printf.sprintf "delta %.4f\n" t.delta);
  Buffer.add_string buf (Printf.sprintf "blocks %d\n" (Array.length t.block_devices));
  Array.iteri
    (fun i d -> Buffer.add_string buf (Printf.sprintf "block %d device %s\n" i d))
    t.block_devices;
  List.iter
    (fun (name, b) -> Buffer.add_string buf (Printf.sprintf "node %s %d\n" name b))
    t.assignment;
  Buffer.contents buf

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let circuit = ref None in
  let delta = ref 1.0 in
  let blocks = ref None in
  let devices : (int * string) list ref = ref [] in
  let nodes = ref [] in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec go lineno = function
    | [] -> (
      match (!circuit, !blocks) with
      | None, _ -> Error "missing 'circuit' line"
      | _, None -> Error "missing 'blocks' line"
      | Some c, Some k ->
        let block_devices = Array.make k "?" in
        List.iter
          (fun (i, d) -> if i >= 0 && i < k then block_devices.(i) <- d)
          !devices;
        Ok
          {
            circuit = c;
            delta = !delta;
            block_devices;
            assignment = List.rev !nodes;
          })
    | line :: rest -> (
      let line = String.trim line in
      let tokens =
        String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> go (lineno + 1) rest
      | tok :: _ when tok.[0] = '#' -> go (lineno + 1) rest
      | [ "circuit"; name ] ->
        circuit := Some name;
        go (lineno + 1) rest
      | [ "delta"; d ] -> (
        match float_of_string_opt d with
        | Some f ->
          delta := f;
          go (lineno + 1) rest
        | None -> err lineno "bad delta")
      | [ "blocks"; k ] -> (
        match int_of_string_opt k with
        | Some k when k >= 1 ->
          blocks := Some k;
          go (lineno + 1) rest
        | _ -> err lineno "bad block count")
      | [ "block"; i; "device"; d ] -> (
        match int_of_string_opt i with
        | Some i ->
          devices := (i, d) :: !devices;
          go (lineno + 1) rest
        | None -> err lineno "bad block line")
      | [ "node"; name; b ] -> (
        match int_of_string_opt b with
        | Some b ->
          nodes := (name, b) :: !nodes;
          go (lineno + 1) rest
        | None -> err lineno "bad node line")
      | _ -> err lineno (Printf.sprintf "unrecognised line %S" line))
  in
  go 1 lines

let write_file path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let apply t hg =
  let k = Array.length t.block_devices in
  let by_name = Hashtbl.create (Hg.num_nodes hg * 2) in
  Hg.iter_nodes (fun v -> Hashtbl.replace by_name (Hg.name hg v) v) hg;
  let assignment = Array.make (Hg.num_nodes hg) (-1) in
  let error = ref None in
  List.iter
    (fun (name, b) ->
      if !error = None then
        match Hashtbl.find_opt by_name name with
        | None -> error := Some (Printf.sprintf "unknown node %S" name)
        | Some v ->
          if b < 0 || b >= k then
            error := Some (Printf.sprintf "node %S assigned to bad block %d" name b)
          else assignment.(v) <- b)
    t.assignment;
  match !error with
  | Some e -> Error e
  | None ->
    let missing = ref [] in
    Array.iteri
      (fun v b -> if b < 0 then missing := Hg.name hg v :: !missing)
      assignment;
    (match !missing with
    | [] -> Ok (assignment, k)
    | name :: _ -> Error (Printf.sprintf "node %S has no assignment" name))
