module Hg = Hypergraph.Hgraph

type modul = { mod_name : string; graph : Hg.t }

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of string
  | Punct of char  (* ( ) , ; = . # *)
  | Eof

type lexer = {
  text : string;
  mutable pos : int;
  mutable line : int;
}

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '$' || c = '\\'

let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  let n = String.length lx.text in
  if lx.pos >= n then ()
  else
    match lx.text.[lx.pos] with
    | '\n' ->
      lx.line <- lx.line + 1;
      lx.pos <- lx.pos + 1;
      skip_ws lx
    | ' ' | '\t' | '\r' ->
      lx.pos <- lx.pos + 1;
      skip_ws lx
    | '/' when lx.pos + 1 < n && lx.text.[lx.pos + 1] = '/' ->
      while lx.pos < n && lx.text.[lx.pos] <> '\n' do
        lx.pos <- lx.pos + 1
      done;
      skip_ws lx
    | '/' when lx.pos + 1 < n && lx.text.[lx.pos + 1] = '*' ->
      lx.pos <- lx.pos + 2;
      let closed = ref false in
      while (not !closed) && lx.pos < n do
        if lx.text.[lx.pos] = '\n' then lx.line <- lx.line + 1;
        if
          lx.text.[lx.pos] = '*'
          && lx.pos + 1 < n
          && lx.text.[lx.pos + 1] = '/'
        then begin
          closed := true;
          lx.pos <- lx.pos + 2
        end
        else lx.pos <- lx.pos + 1
      done;
      skip_ws lx
    | _ -> ()

let next_token lx =
  skip_ws lx;
  let n = String.length lx.text in
  if lx.pos >= n then Eof
  else
    let c = lx.text.[lx.pos] in
    if is_digit c then begin
      let start = lx.pos in
      while lx.pos < n && (is_ident_char lx.text.[lx.pos] || lx.text.[lx.pos] = '\'') do
        lx.pos <- lx.pos + 1
      done;
      Number (String.sub lx.text start (lx.pos - start))
    end
    else if is_ident_char c then begin
      let start = lx.pos in
      while lx.pos < n && is_ident_char lx.text.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      Ident (String.sub lx.text start (lx.pos - start))
    end
    else begin
      lx.pos <- lx.pos + 1;
      Punct c
    end

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

type instance = {
  inst_label : string;
  inst_size : int;
  inst_flops : int;
  inst_signals : string list;
}

type parsed = {
  p_name : string;
  p_inputs : string list;
  p_outputs : string list;
  p_instances : instance list;
}

type parser_state = {
  lx : lexer;
  mutable tok : token;
}

let advance ps = ps.tok <- next_token ps.lx

let fail ps fmt =
  Format.kasprintf (fun s -> raise (Parse_error (ps.lx.line, s))) fmt

let expect_punct ps c =
  match ps.tok with
  | Punct c' when c' = c -> advance ps
  | _ -> fail ps "expected '%c'" c

let expect_ident ps =
  match ps.tok with
  | Ident s ->
    advance ps;
    s
  | _ -> fail ps "expected an identifier"

let ident_list ps =
  (* ident (, ident)* ; *)
  let rec go acc =
    let id = expect_ident ps in
    match ps.tok with
    | Punct ',' ->
      advance ps;
      go (id :: acc)
    | Punct ';' ->
      advance ps;
      List.rev (id :: acc)
    | _ -> fail ps "expected ',' or ';' in declaration"
  in
  go []

(* #(.SIZE(3), .FLOPS(1)) or #(3) — returns (size, flops) *)
let parameters ps =
  expect_punct ps '(';
  let size = ref 1 and flops = ref 0 in
  let rec entries () =
    (match ps.tok with
    | Punct '.' ->
      advance ps;
      let name = expect_ident ps in
      expect_punct ps '(';
      let value =
        match ps.tok with
        | Number v ->
          advance ps;
          int_of_string_opt v
        | _ -> fail ps "expected a number in parameter"
      in
      expect_punct ps ')';
      (match (String.uppercase_ascii name, value) with
      | "SIZE", Some v -> size := v
      | "FLOPS", Some v -> flops := v
      | _ -> () (* foreign parameters ignored *))
    | Number v ->
      advance ps;
      (match int_of_string_opt v with Some v -> size := v | None -> ())
    | _ -> fail ps "expected a parameter");
    match ps.tok with
    | Punct ',' ->
      advance ps;
      entries ()
    | Punct ')' -> advance ps
    | _ -> fail ps "expected ',' or ')' in parameter list"
  in
  entries ();
  (!size, !flops)

(* connection list: (sig, sig) or (.port(sig), .port(sig)); returns signals *)
let connections ps =
  expect_punct ps '(';
  let signals = ref [] in
  let rec go () =
    (match ps.tok with
    | Punct '.' ->
      advance ps;
      let _port = expect_ident ps in
      expect_punct ps '(';
      (match ps.tok with
      | Ident s ->
        advance ps;
        signals := s :: !signals
      | Punct ')' -> () (* unconnected port: .P() *)
      | _ -> fail ps "expected a signal in named connection");
      expect_punct ps ')'
    | Ident s ->
      advance ps;
      signals := s :: !signals
    | _ -> fail ps "expected a connection");
    match ps.tok with
    | Punct ',' ->
      advance ps;
      go ()
    | Punct ')' -> advance ps
    | _ -> fail ps "expected ',' or ')' in connection list"
  in
  (match ps.tok with
  | Punct ')' -> advance ps (* empty list *)
  | _ -> go ());
  List.rev !signals

let parse ps =
  (match ps.tok with
  | Ident "module" -> advance ps
  | _ -> fail ps "expected 'module'");
  let name = expect_ident ps in
  (* port list is redundant with input/output declarations: skip it *)
  (match ps.tok with
  | Punct '(' ->
    let depth = ref 1 in
    advance ps;
    while !depth > 0 do
      (match ps.tok with
      | Punct '(' -> incr depth
      | Punct ')' -> decr depth
      | Eof -> fail ps "unterminated port list"
      | _ -> ());
      if !depth > 0 then advance ps else advance ps
    done
  | _ -> ());
  expect_punct ps ';';
  let inputs = ref [] and outputs = ref [] in
  let instances = ref [] in
  let count = ref 0 in
  let fresh () =
    incr count;
    Printf.sprintf "_i%d" !count
  in
  let rec body () =
    match ps.tok with
    | Ident "endmodule" -> ()
    | Eof -> fail ps "missing 'endmodule'"
    | Ident "input" ->
      advance ps;
      inputs := !inputs @ ident_list ps;
      body ()
    | Ident ("output" | "inout") ->
      advance ps;
      outputs := !outputs @ ident_list ps;
      body ()
    | Ident "wire" ->
      advance ps;
      ignore (ident_list ps);
      body ()
    | Ident "assign" ->
      advance ps;
      let lhs = expect_ident ps in
      expect_punct ps '=';
      let rhs = expect_ident ps in
      expect_punct ps ';';
      instances :=
        { inst_label = fresh (); inst_size = 1; inst_flops = 0;
          inst_signals = [ lhs; rhs ] }
        :: !instances;
      body ()
    | Ident _type_name ->
      advance ps;
      let size, flops =
        match ps.tok with
        | Punct '#' ->
          advance ps;
          parameters ps
        | _ -> (1, 0)
      in
      let label =
        match ps.tok with
        | Ident l ->
          advance ps;
          l
        | _ -> fresh ()
      in
      let signals = connections ps in
      expect_punct ps ';';
      instances :=
        { inst_label = label; inst_size = size; inst_flops = flops;
          inst_signals = signals }
        :: !instances;
      body ()
    | _ -> fail ps "unexpected token in module body"
  in
  body ();
  {
    p_name = name;
    p_inputs = !inputs;
    p_outputs = !outputs;
    p_instances = List.rev !instances;
  }

let build parsed =
  let b = Hg.Builder.create () in
  let nets : (string, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let touch signal node =
    match Hashtbl.find_opt nets signal with
    | Some l -> l := node :: !l
    | None -> Hashtbl.add nets signal (ref [ node ])
  in
  List.iter
    (fun inst ->
      if inst.inst_size < 1 then
        raise (Parse_error (0, Printf.sprintf "instance %s has SIZE < 1" inst.inst_label));
      if inst.inst_flops < 0 then
        raise (Parse_error (0, Printf.sprintf "instance %s has FLOPS < 0" inst.inst_label));
      let id =
        Hg.Builder.add_cell b ~flops:inst.inst_flops ~name:inst.inst_label
          ~size:inst.inst_size
      in
      List.iter (fun s -> touch s id) (List.sort_uniq compare inst.inst_signals))
    parsed.p_instances;
  let add_pads role signals =
    List.iteri
      (fun i s ->
        let id = Hg.Builder.add_pad b ~name:(Printf.sprintf "%s_%s%d" s role i) in
        touch s id)
      signals
  in
  add_pads "in" parsed.p_inputs;
  add_pads "out" parsed.p_outputs;
  let signals = Hashtbl.fold (fun s _ acc -> s :: acc) nets [] |> List.sort compare in
  List.iter
    (fun s ->
      let pins = List.sort_uniq compare !(Hashtbl.find nets s) in
      if List.length pins >= 2 then ignore (Hg.Builder.add_net b ~name:s pins))
    signals;
  { mod_name = parsed.p_name; graph = Hg.Builder.freeze b }

let parse_string text =
  let lx = { text; pos = 0; line = 1 } in
  let ps = { lx; tok = Eof } in
  try
    advance ps;
    let parsed = parse ps in
    let m = build parsed in
    match Hg.validate m.graph with
    | Ok () -> Ok m
    | Error msg -> Error ("internal: invalid hypergraph from Verilog: " ^ msg)
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

(* Verilog identifiers must start with a letter or underscore and use
   [A-Za-z0-9_$]; sanitise generated names just in case. *)
let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '$'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_"
  else if (s.[0] >= '0' && s.[0] <= '9') || s.[0] = '$' then "_" ^ s
  else s

let to_string m =
  let h = m.graph in
  let buf = Buffer.create 4096 in
  (* port signal per pad: the name of its single net; pads with several
     nets are not expressible as one port *)
  let pad_signal v =
    match Hg.nets_of h v with
    | [| e |] -> sanitize (Hg.net_name h e)
    | nets ->
      invalid_arg
        (Printf.sprintf "Verilog.to_string: pad %s has %d nets (expected 1)"
           (Hg.name h v) (Array.length nets))
  in
  let ins = ref [] and outs = ref [] in
  let flip = ref true in
  Hg.iter_pads
    (fun v ->
      let s = pad_signal v in
      if !flip then ins := s :: !ins else outs := s :: !outs;
      flip := not !flip)
    h;
  let ins = List.rev !ins and outs = List.rev !outs in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" (sanitize m.mod_name)
       (String.concat ", " (ins @ outs)));
  let decl kw = function
    | [] -> ()
    | l -> Buffer.add_string buf (Printf.sprintf "  %s %s;\n" kw (String.concat ", " l))
  in
  decl "input" ins;
  decl "output" outs;
  (* wires: nets not exposed as ports *)
  let port_signals = List.sort_uniq compare (ins @ outs) in
  let wires = ref [] in
  Hg.iter_nets
    (fun e ->
      let s = sanitize (Hg.net_name h e) in
      if not (List.mem s port_signals) then wires := s :: !wires)
    h;
  decl "wire" (List.rev !wires);
  Hg.iter_cells
    (fun v ->
      let signals =
        Array.to_list (Hg.nets_of h v)
        |> List.map (fun e -> sanitize (Hg.net_name h e))
      in
      match signals with
      | [] -> () (* isolated cell: not expressible; dropped with nets intact *)
      | _ ->
        Buffer.add_string buf
          (Printf.sprintf "  FPART_CELL #(.SIZE(%d), .FLOPS(%d)) %s (%s);\n"
             (Hg.size h v) (Hg.flops h v)
             (sanitize (Hg.name h v))
             (String.concat ", " signals)))
    h;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path m =
  let oc = open_out_bin path in
  output_string oc (to_string m);
  close_out oc

let of_hypergraph ~name h = { mod_name = name; graph = h }
