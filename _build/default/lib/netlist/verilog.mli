(** Reader and writer for a structural Verilog subset.

    The second interchange format next to {!Blif} (multi-FPGA flows of
    the paper's era moved netlists between tools as structural Verilog
    or XNF).  Supported constructs:

    - [module NAME (port, ...);] … [endmodule] (first module only);
    - [input] / [output] / [inout] declarations (comma lists; [inout]
      ports become pads like the others);
    - [wire] declarations;
    - gate/cell instances, positional or named connections:
      [TYPE inst (a, b, y);] or [TYPE inst (.A(a), .Y(y));] — one
      interior node per instance, connected to each distinct signal;
    - parameter overrides [TYPE #(.SIZE(3), .FLOPS(1)) inst (...);] —
      [SIZE]/[FLOPS] set the node's weights (defaults 1/0; this is how
      a {!to_string}+{!parse_string} round trip preserves weights
      exactly, which BLIF cannot express);
    - [assign a = b;] — modelled as a buffer cell on the two signals;
    - [//] and [/* *\/] comments.

    Not supported (rejected or ignored): vectors/buses, escaped
    identifiers, expressions beyond a lone signal in [assign],
    behavioural blocks. *)

type modul = {
  mod_name : string;
  graph : Hypergraph.Hgraph.t;
}

(** [parse_string s] parses Verilog text; [Error msg] carries a line
    number. *)
val parse_string : string -> (modul, string) result

(** [parse_file path] reads and parses a file. *)
val parse_file : string -> (modul, string) result

(** [to_string m] renders the circuit as structural Verilog: pads become
    ports, cells become [FPART_CELL] instances with [SIZE]/[FLOPS]
    parameters.  Re-parseable by {!parse_string}; round-trips node/net
    counts, sizes and flip-flop weights. *)
val to_string : modul -> string

(** [write_file path m] writes [to_string m]. *)
val write_file : string -> modul -> unit

(** [of_hypergraph ~name h] wraps a hypergraph as a module. *)
val of_hypergraph : name:string -> Hypergraph.Hgraph.t -> modul
