module Hg = Hypergraph.Hgraph

type design = {
  design_name : string;
  part : string option;
  graph : Hg.t;
}

let fields line =
  String.split_on_char ',' line |> List.map String.trim |> List.filter (fun s -> s <> "")

(* SIZE=3 / FLOPS=1 attributes on SYM records *)
let parse_attr field =
  match String.index_opt field '=' with
  | Some i ->
    let key = String.uppercase_ascii (String.sub field 0 i) in
    let value = String.sub field (i + 1) (String.length field - i - 1) in
    Some (key, value)
  | None -> None

type open_sym = { sym_name : string; sym_size : int; sym_flops : int }

let parse_string ?(name = "xnf") text =
  let b = Hg.Builder.create () in
  let nets : (string, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let touch signal node =
    match Hashtbl.find_opt nets signal with
    | Some l -> l := node :: !l
    | None -> Hashtbl.add nets signal (ref [ node ])
  in
  let part = ref None in
  let open_sym = ref None in
  let open_pins = ref [] in
  let pad_count = ref 0 in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let close_sym () =
    match !open_sym with
    | None -> Ok ()
    | Some sym ->
      if sym.sym_size < 1 then
        Error (Printf.sprintf "symbol %s has SIZE < 1" sym.sym_name)
      else begin
        let id =
          Hg.Builder.add_cell b ~flops:sym.sym_flops ~name:sym.sym_name
            ~size:sym.sym_size
        in
        List.iter (fun net -> touch net id) (List.sort_uniq compare !open_pins);
        open_sym := None;
        open_pins := [];
        Ok ()
      end
  in
  let rec go lineno lines =
    match lines with
    | [] -> (
      match !open_sym with
      | Some sym -> Error (Printf.sprintf "unterminated symbol %s" sym.sym_name)
      | None -> Ok ())
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go (lineno + 1) rest
      else
        match fields line with
        | [] -> go (lineno + 1) rest
        | record :: args -> (
          match (String.uppercase_ascii record, args) with
          | "LCANET", _ | "PROG", _ -> go (lineno + 1) rest
          | "PART", p :: _ ->
            part := Some p;
            go (lineno + 1) rest
          | "PART", [] -> err lineno "PART without a value"
          | "SYM", sym_name :: _typ :: attrs ->
            if !open_sym <> None then err lineno "nested SYM"
            else begin
              let size = ref 1 and flops = ref 0 in
              List.iter
                (fun f ->
                  match parse_attr f with
                  | Some ("SIZE", v) ->
                    (match int_of_string_opt v with Some v -> size := v | None -> ())
                  | Some ("FLOPS", v) ->
                    (match int_of_string_opt v with Some v -> flops := v | None -> ())
                  | _ -> ())
                attrs;
              open_sym := Some { sym_name; sym_size = !size; sym_flops = !flops };
              go (lineno + 1) rest
            end
          | "SYM", _ -> err lineno "SYM needs a name and a type"
          | "PIN", _pin :: _dir :: netname :: _ ->
            if !open_sym = None then err lineno "PIN outside SYM"
            else begin
              open_pins := netname :: !open_pins;
              go (lineno + 1) rest
            end
          | "PIN", _ -> err lineno "PIN needs name, direction and net"
          | "END", _ -> (
            match close_sym () with
            | Ok () -> go (lineno + 1) rest
            | Error e -> err lineno e)
          | "EXT", netname :: _ ->
            incr pad_count;
            let id =
              Hg.Builder.add_pad b ~name:(Printf.sprintf "%s_ext%d" netname !pad_count)
            in
            touch netname id;
            go (lineno + 1) rest
          | "EXT", [] -> err lineno "EXT without a net"
          | "EOF", _ -> (
            match !open_sym with
            | Some sym -> Error (Printf.sprintf "line %d: EOF inside symbol %s" lineno sym.sym_name)
            | None -> Ok ())
          | other, _ -> err lineno (Printf.sprintf "unknown record %S" other)))
  in
  match go 1 (String.split_on_char '\n' text) with
  | Error _ as e -> e
  | Ok () -> (
    let signals = Hashtbl.fold (fun s _ acc -> s :: acc) nets [] |> List.sort compare in
    List.iter
      (fun s ->
        let pins = List.sort_uniq compare !(Hashtbl.find nets s) in
        if List.length pins >= 2 then ignore (Hg.Builder.add_net b ~name:s pins))
      signals;
    let graph = Hg.Builder.freeze b in
    match Hg.validate graph with
    | Ok () -> Ok { design_name = name; part = !part; graph }
    | Error msg -> Error ("internal: invalid hypergraph from XNF: " ^ msg))

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match parse_string ~name:(Filename.remove_extension (Filename.basename path)) text with
  | Ok _ as ok -> ok
  | Error _ as e -> e

let to_string d =
  let h = d.graph in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "LCANET, 4\n";
  Buffer.add_string buf (Printf.sprintf "PROG, fpart, %s\n" d.design_name);
  (match d.part with
  | Some p -> Buffer.add_string buf (Printf.sprintf "PART, %s\n" p)
  | None -> ());
  Hg.iter_cells
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "SYM, %s, CELL, SIZE=%d, FLOPS=%d\n" (Hg.name h v)
           (Hg.size h v) (Hg.flops h v));
      Array.iteri
        (fun i e ->
          Buffer.add_string buf
            (Printf.sprintf "PIN, P%d, B, %s\n" i (Hg.net_name h e)))
        (Hg.nets_of h v);
      Buffer.add_string buf "END\n")
    h;
  Hg.iter_pads
    (fun v ->
      match Hg.nets_of h v with
      | [| e |] -> Buffer.add_string buf (Printf.sprintf "EXT, %s, B\n" (Hg.net_name h e))
      | nets ->
        invalid_arg
          (Printf.sprintf "Xnf.to_string: pad %s has %d nets (expected 1)"
             (Hg.name h v) (Array.length nets)))
    h;
  Buffer.add_string buf "EOF\n";
  Buffer.contents buf

let write_file path d =
  let oc = open_out_bin path in
  output_string oc (to_string d);
  close_out oc

let of_hypergraph ?part ~name h = { design_name = name; part; graph = h }
