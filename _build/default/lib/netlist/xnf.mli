(** Reader and writer for a Xilinx Netlist Format (XNF) subset.

    XNF was the native interchange format of the Xilinx tools the paper
    targets (XC2000/XC3000 flows).  Supported record types, one per
    line, comma-separated:

    - [LCANET, v] — format version (ignored);
    - [PROG, ...] / [PART, ...] — provenance and target part (the part
      is remembered and re-emitted);
    - [SYM, name, type, SIZE=n, FLOPS=n] — begins a symbol (interior
      node); the [SIZE]/[FLOPS] attributes are this library's extension
      carrying node weights (defaults 1/0);
    - [PIN, pinname, dir, netname] — connects the open symbol to a net;
    - [END] — closes the open symbol;
    - [EXT, netname, dir] — an external pad on [netname];
    - [EOF] — end of file (required by the writer, optional on read);
    - lines starting with [#] and blank lines are skipped.

    Net directionality in [PIN]/[EXT] records is accepted and ignored
    (the partitioning model is undirected). *)

type design = {
  design_name : string;
  part : string option;  (** [PART] record, e.g. ["3020PC68"]. *)
  graph : Hypergraph.Hgraph.t;
}

val parse_string : ?name:string -> string -> (design, string) result

val parse_file : string -> (design, string) result

(** [to_string d] renders the design; re-parseable, round-trips
    node/net/pad counts and node weights. *)
val to_string : design -> string

val write_file : string -> design -> unit

val of_hypergraph : ?part:string -> name:string -> Hypergraph.Hgraph.t -> design
