lib/partition/check.ml: Array Cost Format Hypergraph List State
