lib/partition/check.mli: Cost Format Hypergraph State
