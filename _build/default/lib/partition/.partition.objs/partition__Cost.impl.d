lib/partition/cost.ml: Device Format Hypergraph State
