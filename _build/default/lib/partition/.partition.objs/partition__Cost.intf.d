lib/partition/cost.mli: Device Format Hypergraph State
