lib/partition/metrics.ml: Format Hypergraph State
