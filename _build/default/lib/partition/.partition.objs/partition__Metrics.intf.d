lib/partition/metrics.mli: Format State
