lib/partition/quotient.ml: Array Format Hashtbl Hypergraph List Printf State
