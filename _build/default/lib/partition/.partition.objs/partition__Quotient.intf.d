lib/partition/quotient.mli: Format Hypergraph State
