lib/partition/snapshot.ml: Cost State
