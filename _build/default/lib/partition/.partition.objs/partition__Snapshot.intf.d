lib/partition/snapshot.mli: Cost State
