lib/partition/solution_stack.ml: List Snapshot
