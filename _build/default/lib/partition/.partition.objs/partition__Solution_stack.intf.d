lib/partition/solution_stack.mli: Snapshot
