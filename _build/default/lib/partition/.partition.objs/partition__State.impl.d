lib/partition/state.ml: Array Format Hypergraph Printf
