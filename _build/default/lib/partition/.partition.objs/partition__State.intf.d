lib/partition/state.mli: Hypergraph
