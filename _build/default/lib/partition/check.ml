type block_report = {
  index : int;
  size : int;
  flops : int;
  pins : int;
  pads : int;
  nodes : int;
  size_ok : bool;
  pins_ok : bool;
  flops_ok : bool;
}

type report = {
  blocks : block_report list;
  feasible : bool;
  violations : int;
  cut : int;
  total_pins : int;
}

let of_state st ~ctx =
  let k = State.k st in
  let blocks = ref [] in
  let violations = ref 0 in
  for i = k - 1 downto 0 do
    let size = State.size_of st i in
    let pins = State.pins_of st i in
    let flops = State.flops_of st i in
    let size_ok = size <= ctx.Cost.s_max in
    let pins_ok = pins <= ctx.Cost.t_max in
    let flops_ok = match ctx.Cost.f_max with None -> true | Some f -> flops <= f in
    if not (size_ok && pins_ok && flops_ok) then incr violations;
    blocks :=
      {
        index = i;
        size;
        flops;
        pins;
        pads = State.pads_of st i;
        nodes = State.cells_of st i;
        size_ok;
        pins_ok;
        flops_ok;
      }
      :: !blocks
  done;
  {
    blocks = !blocks;
    feasible = !violations = 0;
    violations = !violations;
    cut = State.cut_size st;
    total_pins = State.total_pins st;
  }

let of_assignment hg ~k ~assignment ~ctx =
  if Array.length assignment <> Hypergraph.Hgraph.num_nodes hg then
    invalid_arg "Check.of_assignment: wrong assignment length";
  Array.iter
    (fun b ->
      if b < 0 || b >= k then invalid_arg "Check.of_assignment: block out of range")
    assignment;
  of_state (State.create hg ~k ~assign:(fun v -> assignment.(v))) ~ctx

let pp ppf r =
  List.iter
    (fun b ->
      let flag ok = if ok then ' ' else '!' in
      Format.fprintf ppf "block %2d: size %4d%c pins %4d%c flops %4d%c pads %3d@."
        b.index b.size (flag b.size_ok) b.pins (flag b.pins_ok) b.flops
        (flag b.flops_ok) b.pads)
    r.blocks;
  Format.fprintf ppf "%d blocks, %s (%d violating), cut %d, total pins %d@."
    (List.length r.blocks)
    (if r.feasible then "feasible" else "INFEASIBLE")
    r.violations r.cut r.total_pins
