(** Partition validation reports.

    One place that answers "does this assignment really satisfy the
    device constraints?" — used by the CLI, the drivers' tests and the
    experiment harness instead of each re-deriving per-block checks. *)

type block_report = {
  index : int;
  size : int;
  flops : int;
  pins : int;
  pads : int;
  nodes : int;
  size_ok : bool;
  pins_ok : bool;
  flops_ok : bool;
}

type report = {
  blocks : block_report list;  (** One per block, in index order. *)
  feasible : bool;             (** All blocks pass all constraints. *)
  violations : int;            (** Number of failing blocks. *)
  cut : int;
  total_pins : int;
}

(** [of_assignment h ~k ~assignment ~ctx] builds the report.
    @raise Invalid_argument on a wrong-length assignment or an
    out-of-range block id. *)
val of_assignment :
  Hypergraph.Hgraph.t -> k:int -> assignment:int array -> ctx:Cost.context -> report

(** [of_state st ~ctx] is the report of a live partition state. *)
val of_state : State.t -> ctx:Cost.context -> report

(** [pp] prints one line per block plus a summary. *)
val pp : Format.formatter -> report -> unit
