type params = {
  lambda_s : float;
  lambda_t : float;
  lambda_r : float;
  lambda_f : float;
}

let default_params = { lambda_s = 0.4; lambda_t = 0.6; lambda_r = 0.1; lambda_f = 0.4 }

type context = {
  s_max : int;
  t_max : int;
  f_max : int option;
  m_lower : int;
  total_pads : int;
}

let context_of device ~delta h =
  let module Hg = Hypergraph.Hgraph in
  {
    s_max = Device.s_max device ~delta;
    t_max = device.Device.t_max;
    f_max = Device.ff_max device ~delta;
    m_lower =
      Device.lower_bound device ~delta ~total_size:(Hg.total_size h)
        ~total_pads:(Hg.num_pads h);
    total_pads = Hg.num_pads h;
  }

let block_feasible ctx ~size ~pins ~flops =
  size <= ctx.s_max
  && pins <= ctx.t_max
  && match ctx.f_max with None -> true | Some f -> flops <= f

let over num cap =
  if num > cap then float_of_int (num - cap) /. float_of_int cap else 0.0

let block_distance p ctx ~size ~pins ~flops =
  (p.lambda_s *. over size ctx.s_max)
  +. (p.lambda_t *. over pins ctx.t_max)
  +. (match ctx.f_max with None -> 0.0 | Some f -> p.lambda_f *. over flops f)

type classification = Feasible | Semi_feasible of int | Infeasible of int list

let classify ctx st =
  let bad = ref [] in
  for i = State.k st - 1 downto 0 do
    if
      not
        (block_feasible ctx ~size:(State.size_of st i) ~pins:(State.pins_of st i)
           ~flops:(State.flops_of st i))
    then bad := i :: !bad
  done;
  match !bad with
  | [] -> Feasible
  | [ i ] -> Semi_feasible i
  | l -> Infeasible l

let deviation_penalty ctx ~remainder_size ~step_k =
  let remaining = max 1 (ctx.m_lower - step_k + 1) in
  let s_avg = float_of_int remainder_size /. float_of_int remaining in
  let s_max = float_of_int ctx.s_max in
  if s_avg > s_max then s_avg /. s_max else 0.0

let infeasibility p ctx st ~remainder ~step_k =
  let sum = ref 0.0 in
  for i = 0 to State.k st - 1 do
    sum :=
      !sum
      +. block_distance p ctx ~size:(State.size_of st i) ~pins:(State.pins_of st i)
           ~flops:(State.flops_of st i)
  done;
  (match remainder with
  | Some r ->
    sum :=
      !sum
      +. p.lambda_r *. deviation_penalty ctx ~remainder_size:(State.size_of st r) ~step_k
  | None -> ());
  !sum

let io_balance ctx st =
  if ctx.total_pads = 0 || ctx.m_lower = 0 then 0.0
  else begin
    let t_avg = float_of_int ctx.total_pads /. float_of_int ctx.m_lower in
    let sum = ref 0.0 in
    for i = 0 to State.k st - 1 do
      let te = float_of_int (State.pads_of st i) in
      if te < t_avg then sum := !sum +. ((t_avg -. te) /. t_avg)
    done;
    !sum
  end

type value = {
  feasible_blocks : int;
  distance : float;
  t_sum : int;
  io_bal : float;
}

let evaluate p ctx st ~remainder ~step_k =
  let f = ref 0 in
  for i = 0 to State.k st - 1 do
    if
      block_feasible ctx ~size:(State.size_of st i) ~pins:(State.pins_of st i)
        ~flops:(State.flops_of st i)
    then incr f
  done;
  {
    feasible_blocks = !f;
    distance = infeasibility p ctx st ~remainder ~step_k;
    t_sum = State.total_pins st;
    io_bal = io_balance ctx st;
  }

let eps = 1e-9

let cmp_float a b = if a < b -. eps then -1 else if a > b +. eps then 1 else 0

let compare_value a b =
  (* more feasible blocks first *)
  let c = compare b.feasible_blocks a.feasible_blocks in
  if c <> 0 then c
  else
    let c = cmp_float a.distance b.distance in
    if c <> 0 then c
    else
      let c = compare a.t_sum b.t_sum in
      if c <> 0 then c else cmp_float a.io_bal b.io_bal

let pp_value ppf v =
  Format.fprintf ppf "(f=%d, d=%.4f, T=%d, dE=%.4f)" v.feasible_blocks v.distance
    v.t_sum v.io_bal
