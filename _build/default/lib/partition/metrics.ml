module Hg = Hypergraph.Hgraph

type t = {
  m_cut : int;
  m_soed : int;
  m_connectivity : int;
  m_absorption : float;
  m_imbalance : float;
}

let all st =
  let hg = State.hypergraph st in
  let k = State.k st in
  let cut = ref 0 and soed = ref 0 and conn = ref 0 in
  let absorption = ref 0.0 in
  Hg.iter_nets
    (fun e ->
      let span = State.net_span st e in
      if span >= 2 then begin
        incr cut;
        soed := !soed + span;
        conn := !conn + (span - 1)
      end;
      let d = Hg.net_degree hg e in
      if d >= 2 then
        for b = 0 to k - 1 do
          let c = State.net_count st e b in
          if c >= 1 then
            absorption := !absorption +. (float_of_int (c - 1) /. float_of_int (d - 1))
        done)
    hg;
  let total = Hg.total_size hg in
  let avg = float_of_int total /. float_of_int k in
  let max_size = ref 0 in
  for b = 0 to k - 1 do
    max_size := max !max_size (State.size_of st b)
  done;
  let imbalance = if total = 0 then 0.0 else (float_of_int !max_size /. avg) -. 1.0 in
  {
    m_cut = !cut;
    m_soed = !soed;
    m_connectivity = !conn;
    m_absorption = !absorption;
    m_imbalance = imbalance;
  }

let cut_net st = (all st).m_cut
let soed st = (all st).m_soed
let connectivity st = (all st).m_connectivity
let absorption st = (all st).m_absorption
let imbalance st = (all st).m_imbalance

let pp ppf m =
  Format.fprintf ppf
    "cut=%d soed=%d (K-1)=%d absorption=%.1f imbalance=%.3f" m.m_cut m.m_soed
    m.m_connectivity m.m_absorption m.m_imbalance
