(** Standard hypergraph-partitioning quality metrics.

    The paper evaluates device count only, but partitioning literature
    (and any downstream user comparing tools) also reports the classical
    cut metrics; this module computes them from a partition state:

    - {!cut_net}: nets spanning ≥ 2 blocks (the FM objective, identical
      to {!State.cut_size});
    - {!soed}: sum over cut nets of the number of blocks they touch
      ("sum of external degrees");
    - {!connectivity}: the (K-1) metric, [Σ (span_e - 1)] — what k-way
      tools like hMETIS optimise;
    - {!absorption}: Σ over blocks and nets of
      [(pins in block - 1) / (degree - 1)] — higher is better (1.0 per
      fully absorbed net);
    - {!imbalance}: max block size over the average block size, minus 1. *)

val cut_net : State.t -> int

val soed : State.t -> int

val connectivity : State.t -> int

val absorption : State.t -> float

val imbalance : State.t -> float

(** Everything at once (single pass over the nets). *)
type t = {
  m_cut : int;
  m_soed : int;
  m_connectivity : int;
  m_absorption : float;
  m_imbalance : float;
}

val all : State.t -> t

val pp : Format.formatter -> t -> unit
