module Hg = Hypergraph.Hgraph

let interconnect st =
  let hg = State.hypergraph st in
  let k = State.k st in
  let b = Hg.Builder.create () in
  let block_node =
    Array.init k (fun i ->
        Hg.Builder.add_cell b
          ~name:(Printf.sprintf "block%d" i)
          ~size:(max 1 (State.size_of st i))
          ~flops:(State.flops_of st i))
  in
  (* pads: one quotient pad per original pad, wired to its block through
     the cut nets below (collect the pad's block memberships per net) *)
  let pad_node = Hashtbl.create 64 in
  Hg.iter_pads
    (fun p -> Hashtbl.replace pad_node p (Hg.Builder.add_pad b ~name:(Hg.name hg p)))
    hg;
  Hg.iter_nets
    (fun e ->
      let span = State.net_span st e in
      let pads = Array.to_list (Hg.pins hg e) |> List.filter (Hg.is_pad hg) in
      if span >= 2 || pads <> [] then begin
        let blocks = ref [] in
        for i = k - 1 downto 0 do
          if State.net_count st e i > 0 then blocks := block_node.(i) :: !blocks
        done;
        let pad_pins = List.map (fun p -> Hashtbl.find pad_node p) pads in
        match !blocks @ pad_pins with
        | _ :: _ :: _ as pins ->
          ignore (Hg.Builder.add_net b ~name:(Hg.net_name hg e) pins)
        | _ -> ()
      end)
    hg;
  Hg.Builder.freeze b

let wire_matrix st =
  let hg = State.hypergraph st in
  let k = State.k st in
  let m = Array.make_matrix k k 0 in
  Hg.iter_nets
    (fun e ->
      if State.net_span st e >= 2 then begin
        let touched = ref [] in
        for i = k - 1 downto 0 do
          if State.net_count st e i > 0 then touched := i :: !touched
        done;
        let rec pairs = function
          | [] -> ()
          | i :: rest ->
            List.iter
              (fun j ->
                m.(i).(j) <- m.(i).(j) + 1;
                m.(j).(i) <- m.(j).(i) + 1)
              rest;
            pairs rest
        in
        pairs !touched
      end)
    hg;
  m

let io_utilization st ~t_max =
  List.init (State.k st) (fun i ->
      let pins = State.pins_of st i in
      (i, pins, t_max, float_of_int pins /. float_of_int (max 1 t_max)))

let pp_report ppf st ~t_max =
  let k = State.k st in
  Format.fprintf ppf "board view: %d devices, %d inter-device signals@." k
    (State.cut_size st);
  List.iter
    (fun (i, pins, cap, ratio) ->
      Format.fprintf ppf "  device %2d: %3d/%d pins (%.0f%%)@." i pins cap
        (100.0 *. ratio))
    (io_utilization st ~t_max);
  let m = wire_matrix st in
  let buses = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if m.(i).(j) > 0 then buses := (m.(i).(j), i, j) :: !buses
    done
  done;
  let buses = List.sort (fun a b -> compare b a) !buses in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Format.fprintf ppf "  densest buses:@.";
  List.iter
    (fun (w, i, j) -> Format.fprintf ppf "    %2d <-> %2d : %d signals@." i j w)
    (take 5 buses)
