(** Board-level (quotient) view of a partition.

    Once a circuit is split over k devices, the downstream artifact a
    multi-FPGA flow consumes is the {e board netlist}: one node per
    device, one net per cut signal.  This module builds that quotient
    hypergraph and the pairwise wire counts, which is also what a board
    router or a cable-count estimate needs. *)

(** [interconnect st] is the quotient hypergraph: node [i] is block [i]
    (an interior node of size [S_i] named ["block<i>"]); every cut net
    of the circuit becomes a net over the blocks it touches; every
    original pad becomes a pad attached to its block through the nets
    that carried it.  Nets internal to one block disappear. *)
val interconnect : State.t -> Hypergraph.Hgraph.t

(** [wire_matrix st] is the symmetric [k × k] matrix of signal counts:
    entry [i][j] counts cut nets touching both block [i] and block [j]
    (a net spanning three blocks increments three pairs).  The diagonal
    is zero. *)
val wire_matrix : State.t -> int array array

(** [io_utilization st ~t_max] lists [(block, pins, t_max, ratio)] for
    every block — the per-device I/O budget view. *)
val io_utilization : State.t -> t_max:int -> (int * int * int * float) list

(** [pp_report ppf st ~t_max] prints the board summary: per-device I/O
    budgets and the densest inter-device buses. *)
val pp_report : Format.formatter -> State.t -> t_max:int -> unit
