type t = { assign : int array; value : Cost.value; cut : int }

let capture st ~value =
  { assign = State.assignment st; value; cut = State.cut_size st }

let restore snap st = State.load_assignment st snap.assign

let same_assignment a b = a.assign = b.assign

let compare a b = Cost.compare_value a.value b.value
