(** Immutable captures of a partition state.

    The iterative improvement passes remember the best solution seen so
    far, and the solution stacks (section 3.6) store several candidate
    restart points.  A snapshot carries the full node→block assignment
    plus the solution value it was captured with, so comparisons never
    re-evaluate. *)

type t = {
  assign : int array;   (** node → block, frozen. *)
  value : Cost.value;   (** the lexicographic value at capture time. *)
  cut : int;            (** cut size at capture time (for reporting). *)
}

(** [capture st ~value] freezes the current assignment of [st]. *)
val capture : State.t -> value:Cost.value -> t

(** [restore snap st] drives [st] back to the captured assignment. *)
val restore : t -> State.t -> unit

(** [same_assignment a b] is [true] when the two snapshots assign every
    node identically (used for stack deduplication). *)
val same_assignment : t -> t -> bool

(** [compare a b] orders snapshots by {!Cost.compare_value}. *)
val compare : t -> t -> int
