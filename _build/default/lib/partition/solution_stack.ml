type t = { depth : int; mutable items : Snapshot.t list (* best first *) }

let create ~depth =
  if depth < 1 then invalid_arg "Solution_stack.create: depth < 1";
  { depth; items = [] }

let offer t snap =
  if List.exists (Snapshot.same_assignment snap) t.items then false
  else begin
    (* Stored items go first so an equal-value newcomer ranks after them
       (stable merge): earlier discoveries win ties. *)
    let merged = List.merge Snapshot.compare t.items [ snap ] in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    let kept = take t.depth merged in
    let inserted = List.memq snap kept in
    t.items <- kept;
    inserted
  end

let contents t = t.items

let best t = match t.items with [] -> None | x :: _ -> Some x

let length t = List.length t.items

let clear t = t.items <- []
