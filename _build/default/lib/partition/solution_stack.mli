(** Bounded best-solutions stack (paper section 3.6).

    The first FM execution of an [Improve] call records a fixed number
    ([D_stack], paper value 4) of the best solutions it encounters; a
    series of passes is then restarted from each of them.  Two stacks
    run in parallel — one for semi-feasible and one for infeasible
    solutions — so that promising infeasible solutions can pull the
    search out of local minima.

    The stack keeps at most [depth] snapshots, ordered best-first by
    {!Cost.compare_value}, with duplicate assignments suppressed. *)

type t

(** [create ~depth] is an empty stack holding at most [depth] snapshots.
    @raise Invalid_argument if [depth < 1]. *)
val create : depth:int -> t

(** [offer t snap] inserts [snap] if it is better than the current tail
    or the stack is not full; returns [true] if the snapshot was kept.
    A snapshot equal (same assignment) to a stored one is rejected. *)
val offer : t -> Snapshot.t -> bool

(** [contents t] lists the stored snapshots, best first. *)
val contents : t -> Snapshot.t list

(** [best t] is the best stored snapshot, if any. *)
val best : t -> Snapshot.t option

(** [length t] is the number of stored snapshots. *)
val length : t -> int

(** [clear t] empties the stack. *)
val clear : t -> unit
