lib/prng/splitmix.mli:
