lib/report/experiments.ml: Anneal Array Buffer Device Flow Format Fpart Gainbucket Hashtbl Hypergraph List Mlevel Netlist Option Partition Printf Published Sanchis String Sys Table
