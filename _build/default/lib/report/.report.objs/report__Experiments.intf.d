lib/report/experiments.mli: Device Netlist
