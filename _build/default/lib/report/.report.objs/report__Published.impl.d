lib/report/published.ml: List
