lib/report/published.mli:
