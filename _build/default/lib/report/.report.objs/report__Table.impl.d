lib/report/table.ml: Array Buffer List String
