lib/report/table.mli:
