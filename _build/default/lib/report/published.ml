type row = {
  circuit : string;
  kwayx : int option;
  rp0 : int option;
  prop_pop : int option;
  prop_prop : int option;
  sc : int option;
  wcdp : int option;
  fbb_mw : int option;
  fpart : int option;
  m : int;
}

let blank circuit m =
  {
    circuit;
    kwayx = None;
    rp0 = None;
    prop_pop = None;
    prop_prop = None;
    sc = None;
    wcdp = None;
    fbb_mw = None;
    fpart = None;
    m;
  }

(* Table 2: XC3020, delta = 0.9. *)
let t2 circuit kwayx rp0 pop prop fbb fpart m =
  {
    (blank circuit m) with
    kwayx = Some kwayx;
    rp0 = Some rp0;
    prop_pop = Some pop;
    prop_prop = Some prop;
    fbb_mw = Some fbb;
    fpart = Some fpart;
  }

let table2 =
  [
    t2 "c3540" 6 6 6 6 6 6 5;
    t2 "c5315" 9 8 9 8 8 9 7;
    t2 "c6288" 16 16 12 12 15 15 15;
    t2 "c7552" 10 10 9 9 9 9 9;
    t2 "s5378" 11 10 11 9 9 9 7;
    t2 "s9234" 10 10 9 9 8 8 8;
    t2 "s13207" 23 23 21 19 18 18 16;
    t2 "s15850" 19 19 17 16 15 15 15;
    t2 "s38417" 46 48 44 44 41 39 39;
    t2 "s38584" 60 60 60 56 54 52 51;
  ]

(* Table 3: XC3042, delta = 0.9. *)
let table3 =
  [
    t2 "c3540" 3 3 2 2 3 3 3;
    t2 "c5315" 5 5 4 4 4 5 4;
    t2 "c6288" 7 7 6 5 7 7 7;
    t2 "c7552" 4 4 5 4 4 4 4;
    t2 "s5378" 5 4 4 4 4 4 3;
    t2 "s9234" 4 4 4 4 4 4 4;
    t2 "s13207" 11 10 9 8 9 9 8;
    t2 "s15850" 8 9 8 7 8 7 7;
    t2 "s38417" 20 20 20 19 18 18 18;
    t2 "s38584" 27 27 25 25 23 23 23;
  ]

(* Table 4: XC3090, delta = 0.9.  Small circuits have only k-way.x,
   r+p.0 and FPART columns. *)
let t4 circuit kwayx rp0 sc wcdp fbb fpart m =
  {
    (blank circuit m) with
    kwayx = Some kwayx;
    rp0 = Some rp0;
    sc;
    wcdp;
    fbb_mw = fbb;
    fpart = Some fpart;
  }

let table4 =
  [
    t4 "c3540" 1 1 None None None 1 1;
    t4 "c5315" 3 3 None None None 3 3;
    t4 "c6288" 3 3 None None None 3 3;
    t4 "c7552" 3 3 None None None 3 3;
    t4 "s5378" 2 2 None None None 2 2;
    t4 "s9234" 2 2 None None None 2 2;
    t4 "s13207" 7 4 (Some 6) (Some 6) (Some 5) 5 4;
    t4 "s15850" 4 3 (Some 3) (Some 3) (Some 3) 3 3;
    t4 "s38417" 9 8 (Some 10) (Some 8) (Some 8) 8 8;
    t4 "s38584" 14 11 (Some 14) (Some 12) (Some 11) 11 11;
  ]

(* Table 5: XC2064, delta = 1.0; c-circuits only. *)
let t5 circuit kwayx sc wcdp fbb fpart m =
  {
    (blank circuit m) with
    kwayx = Some kwayx;
    sc = Some sc;
    wcdp = Some wcdp;
    fbb_mw = Some fbb;
    fpart = Some fpart;
  }

let table5 =
  [
    t5 "c3540" 6 6 7 6 6 6;
    t5 "c5315" 11 12 12 10 10 9;
    t5 "c7552" 11 11 11 10 10 10;
    t5 "c6288" 14 14 14 14 14 14;
  ]

let find rows circuit = List.find_opt (fun r -> r.circuit = circuit) rows

(* Table 6: FPART CPU seconds on a SUN Sparc Ultra 5. *)
let cpu_times =
  [
    ("c3540", Some 15.59, Some 2.75, Some 1.00, Some 11.2);
    ("c5315", Some 43.99, Some 16.12, Some 6.15, Some 34.74);
    ("c6288", Some 89.14, Some 36.45, Some 10.83, Some 64.62);
    ("c7552", Some 46.23, Some 14.11, Some 6.05, Some 40.89);
    ("s5378", Some 52.09, Some 22.01, Some 3.87, None);
    ("s9234", Some 59.47, Some 23.65, Some 3.45, None);
    ("s13207", Some 121.51, Some 95.18, Some 91.61, None);
    ("s15850", Some 156.25, Some 61.54, Some 15.61, None);
    ("s38417", Some 464.66, Some 131.48, Some 78.54, None);
    ("s38584", Some 875.26, Some 258.73, Some 184.12, None);
  ]

let cell = function None -> "-" | Some v -> string_of_int v
