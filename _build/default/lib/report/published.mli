(** Literature results quoted in the paper's Tables 2–5 and 6.

    These numbers are {e data}, not measurements: they are the columns
    the paper reprints from \[11\], \[12\], \[16\], \[3\], \[6\] plus
    the paper's own FPART results and CPU times, stored verbatim so the
    experiment harness can print our measured columns side by side with
    the published ones.  [None] marks a "-" (not reported) entry. *)

type row = {
  circuit : string;
  kwayx : int option;        (** k-way.x, "(p,p)" \[11\]. *)
  rp0 : int option;          (** r+p.0, "(p,r,p)" \[11\]. *)
  prop_pop : int option;     (** PROP "(p,o,p)" \[12\]. *)
  prop_prop : int option;    (** PROP "(p,r,o,p)" \[12\]. *)
  sc : int option;           (** Set covering \[3\]. *)
  wcdp : int option;         (** WCDP \[6\]. *)
  fbb_mw : int option;       (** FBB-MW \[16\]. *)
  fpart : int option;        (** The paper's FPART. *)
  m : int;                   (** Lower bound M as printed. *)
}

(** Rows of Table 2 (XC3020), in the paper's order. *)
val table2 : row list

(** Rows of Table 3 (XC3042). *)
val table3 : row list

(** Rows of Table 4 (XC3090). *)
val table4 : row list

(** Rows of Table 5 (XC2064). *)
val table5 : row list

(** [find rows circuit] looks a row up by circuit name. *)
val find : row list -> string -> row option

(** Table 6: the paper's FPART CPU seconds on a SUN Sparc Ultra 5, per
    circuit, for XC3020/XC3042/XC3090/XC2064 ([None] = "-"). *)
val cpu_times : (string * float option * float option * float option * float option) list

(** Pretty-print an [int option] ("-" for [None]). *)
val cell : int option -> string
