type align = Left | Right

let render ~title ~header ?(align = []) rows =
  let ncols = List.length header in
  List.iter
    (fun row ->
      if List.length row > ncols then
        invalid_arg "Table.render: row wider than header")
    rows;
  let aligns =
    Array.init ncols (fun i ->
        match List.nth_opt align i with Some a -> a | None -> Right)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let pad i cell =
    let w = widths.(i) in
    let len = String.length cell in
    if len >= w then cell
    else
      let fill = String.make (w - len) ' ' in
      match aligns.(i) with Left -> cell ^ fill | Right -> fill ^ cell
  in
  let line row =
    let cells = List.mapi pad row in
    (* rows may be narrower than the header; missing cells are blank *)
    let missing = ncols - List.length row in
    let blanks = List.init missing (fun j -> pad (List.length row + j) "") in
    String.concat "  " (cells @ blanks)
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
