(** Plain-text table rendering for the experiment reports. *)

type align =
  | Left
  | Right

(** [render ~title ~header ~align rows] lays the table out with column
    widths fitted to content, a rule under the header, and one leading
    title line.  [align] defaults to right-aligned everywhere; when
    shorter than the header it is padded with [Right].
    @raise Invalid_argument if a row is wider than the header. *)
val render :
  title:string -> header:string list -> ?align:align list -> string list list -> string
