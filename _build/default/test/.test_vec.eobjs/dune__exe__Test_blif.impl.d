test/test_blif.ml: Alcotest Filename Gen Hypergraph List Netlist QCheck QCheck_alcotest String Sys
