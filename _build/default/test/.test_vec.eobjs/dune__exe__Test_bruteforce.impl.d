test/test_bruteforce.ml: Alcotest Array Device Flow Fm Fpart Hypergraph List Netlist Partition Printf String
