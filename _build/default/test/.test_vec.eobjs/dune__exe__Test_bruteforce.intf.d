test/test_bruteforce.mli:
