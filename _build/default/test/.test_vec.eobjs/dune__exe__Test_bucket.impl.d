test/test_bucket.ml: Alcotest Gainbucket Hashtbl List QCheck QCheck_alcotest Test
