test/test_bucket.mli:
