test/test_cluster.ml: Alcotest Array Cluster Device Fpart Fun Hypergraph List Netlist Partition Printf QCheck QCheck_alcotest
