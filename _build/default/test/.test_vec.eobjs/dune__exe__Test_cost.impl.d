test/test_cost.ml: Alcotest Array Device Float Hypergraph List Netlist Partition QCheck QCheck_alcotest
