test/test_device.ml: Alcotest Device List Netlist QCheck QCheck_alcotest
