test/test_driver.ml: Alcotest Array Device Fpart Hypergraph List Netlist Partition Printf QCheck QCheck_alcotest
