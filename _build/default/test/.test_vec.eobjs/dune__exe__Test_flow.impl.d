test/test_flow.ml: Alcotest Array Device Flow Hypergraph List Netlist Partition Prng QCheck QCheck_alcotest
