test/test_fm.ml: Alcotest Array Fm Hypergraph List Netlist Partition Printf QCheck QCheck_alcotest
