test/test_generator.ml: Alcotest Hypergraph List Netlist Printf Prng QCheck QCheck_alcotest
