test/test_hetero.ml: Alcotest Array Device Fpart Hypergraph List Netlist Partition QCheck QCheck_alcotest
