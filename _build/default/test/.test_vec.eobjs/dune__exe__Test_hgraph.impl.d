test/test_hgraph.ml: Alcotest Array Hypergraph List Printf Prng QCheck QCheck_alcotest
