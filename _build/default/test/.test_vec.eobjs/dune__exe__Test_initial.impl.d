test/test_initial.ml: Alcotest Array Device Fpart Fun Hypergraph List Netlist Partition QCheck QCheck_alcotest
