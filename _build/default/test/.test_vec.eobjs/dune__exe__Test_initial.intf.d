test/test_initial.mli:
