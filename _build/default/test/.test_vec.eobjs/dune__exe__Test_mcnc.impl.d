test/test_mcnc.ml: Alcotest Device Hypergraph List Netlist Option
