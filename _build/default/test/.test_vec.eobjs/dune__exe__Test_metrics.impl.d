test/test_metrics.ml: Alcotest Hypergraph List Netlist Partition QCheck QCheck_alcotest
