test/test_mlrb.ml: Alcotest Array Device Hypergraph List Mlevel Netlist Partition QCheck QCheck_alcotest
