test/test_mlrb.mli:
