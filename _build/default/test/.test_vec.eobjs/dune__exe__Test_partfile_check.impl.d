test/test_partfile_check.ml: Alcotest Array Device Filename Fpart Hypergraph List Netlist Partition QCheck QCheck_alcotest String Sys
