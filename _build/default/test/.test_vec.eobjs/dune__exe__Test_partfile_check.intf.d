test/test_partfile_check.mli:
