test/test_quotient.ml: Alcotest Array Device Filename Format Fpart Hypergraph List Netlist Partition Printf QCheck QCheck_alcotest String Sys
