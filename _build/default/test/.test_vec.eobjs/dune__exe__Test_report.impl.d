test/test_report.ml: Alcotest Device List Netlist Option Report String
