test/test_sa.ml: Alcotest Anneal Array Device Hypergraph List Netlist Partition QCheck QCheck_alcotest
