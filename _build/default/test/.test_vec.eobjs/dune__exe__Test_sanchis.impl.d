test/test_sanchis.ml: Alcotest Array Device Fun Hypergraph List Netlist Partition Printf QCheck QCheck_alcotest Sanchis
