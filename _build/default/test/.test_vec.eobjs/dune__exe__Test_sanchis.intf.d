test/test_sanchis.mli:
