test/test_snapshot_stack.ml: Alcotest Array Hypergraph List Netlist Partition QCheck QCheck_alcotest
