test/test_snapshot_stack.mli:
