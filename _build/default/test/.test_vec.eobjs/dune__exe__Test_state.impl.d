test/test_state.ml: Alcotest Fun Hypergraph List Netlist Partition Printf Prng QCheck QCheck_alcotest
