test/test_stats.ml: Alcotest Array Hypergraph List Netlist Prng QCheck QCheck_alcotest
