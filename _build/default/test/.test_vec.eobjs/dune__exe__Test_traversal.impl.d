test/test_traversal.ml: Alcotest Array Hypergraph List Netlist Printf QCheck QCheck_alcotest
