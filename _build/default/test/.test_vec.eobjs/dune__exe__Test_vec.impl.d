test/test_vec.ml: Alcotest Array Hypergraph List QCheck QCheck_alcotest
