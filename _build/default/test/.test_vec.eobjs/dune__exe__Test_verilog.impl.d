test/test_verilog.ml: Alcotest Filename Gen Hypergraph List Netlist QCheck QCheck_alcotest String Sys
