test/test_xnf.ml: Alcotest Filename Hypergraph List Netlist QCheck QCheck_alcotest String Sys
