test/test_xnf.mli:
