(* Blif: reader/writer for the BLIF netlist subset. *)

module Hg = Hypergraph.Hgraph
module Blif = Netlist.Blif

let sample =
  {|# a tiny circuit
.model tiny
.inputs a b
.outputs y
.names a b t1
11 1
.names t1 y
1 1
.end
|}

let parse_ok text =
  match Blif.parse_string text with
  | Ok m -> m
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_basic () =
  let m = parse_ok sample in
  Alcotest.(check string) "model name" "tiny" m.Blif.model_name;
  let h = m.Blif.graph in
  (* 2 .names cells; pads a, b, y *)
  Alcotest.(check int) "cells" 2 (Hg.num_cells h);
  Alcotest.(check int) "pads" 3 (Hg.num_pads h);
  (* nets: a{pad,g1} b{pad,g1} t1{g1,g2} y{g2,pad} *)
  Alcotest.(check int) "nets" 4 (Hg.num_nets h)

let test_parse_latch () =
  let m =
    parse_ok
      {|.model seq
.inputs d clk
.outputs q
.latch d q re clk 0
.end
|}
  in
  let h = m.Blif.graph in
  Alcotest.(check int) "one latch cell" 1 (Hg.num_cells h);
  Alcotest.(check int) "pads" 3 (Hg.num_pads h);
  (* nets d, q, clk all have >= 2 pins (pad + latch) *)
  Alcotest.(check int) "nets" 3 (Hg.num_nets h)

let test_parse_gate () =
  let m =
    parse_ok
      {|.model g
.inputs a b
.outputs y
.gate NAND2 A=a B=b O=y
.end
|}
  in
  let h = m.Blif.graph in
  Alcotest.(check int) "gate cell" 1 (Hg.num_cells h);
  Alcotest.(check int) "nets" 3 (Hg.num_nets h)

let test_continuation_lines () =
  let m =
    parse_ok
      ".model cont\n.inputs a \\\nb c\n.outputs y\n.names a b c y\n111 1\n.end\n"
  in
  let h = m.Blif.graph in
  Alcotest.(check int) "pads" 4 (Hg.num_pads h);
  Alcotest.(check int) "cell" 1 (Hg.num_cells h)

let test_comments_and_blanks () =
  let m =
    parse_ok
      "# header\n\n.model c # trailing\n.inputs a\n.outputs y\n\n.names a y\n1 1\n.end\n"
  in
  Alcotest.(check string) "name" "c" m.Blif.model_name

let test_dangling_signal_dropped () =
  (* t is driven but never read: its net has one pin and is dropped *)
  let m =
    parse_ok ".model d\n.inputs a\n.outputs y\n.names a y\n1 1\n.names t\n1\n.end\n"
  in
  let h = m.Blif.graph in
  Alcotest.(check int) "cells" 2 (Hg.num_cells h);
  Alcotest.(check int) "nets (t dropped)" 2 (Hg.num_nets h)

let test_errors () =
  (match Blif.parse_string ".inputs a\n" with
  | Error e -> Alcotest.(check bool) "no model" true (e = "no .model found")
  | Ok _ -> Alcotest.fail "expected error");
  (match Blif.parse_string ".model m\n.names\n.end\n" with
  | Error e ->
    Alcotest.(check bool) "names without signals" true
      (String.length e > 0 && String.sub e 0 4 = "line")
  | Ok _ -> Alcotest.fail "expected error");
  match Blif.parse_string ".model m\n.latch x\n.end\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected latch arity error"

let test_unknown_directives_ignored () =
  let m =
    parse_ok
      ".model u\n.wire_load_slope 0.1\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
  in
  Alcotest.(check int) "cells" 1 (Hg.num_cells m.Blif.graph)

let test_roundtrip () =
  let m = parse_ok sample in
  let text = Blif.to_string m in
  let m2 = parse_ok text in
  let h = m.Blif.graph and h2 = m2.Blif.graph in
  Alcotest.(check int) "cells" (Hg.num_cells h) (Hg.num_cells h2);
  Alcotest.(check int) "pads" (Hg.num_pads h) (Hg.num_pads h2);
  Alcotest.(check int) "nets" (Hg.num_nets h) (Hg.num_nets h2)

let test_roundtrip_generated () =
  let spec = Netlist.Generator.default_spec ~name:"gen" ~cells:120 ~pads:16 ~seed:3 in
  let h = Netlist.Generator.generate spec in
  let m = Blif.of_hypergraph ~name:"gen" h in
  let m2 = parse_ok (Blif.to_string m) in
  let h2 = m2.Blif.graph in
  Alcotest.(check int) "cells" (Hg.num_cells h) (Hg.num_cells h2);
  Alcotest.(check int) "pads" (Hg.num_pads h) (Hg.num_pads h2);
  Alcotest.(check int) "nets" (Hg.num_nets h) (Hg.num_nets h2);
  Alcotest.(check int) "total size" (Hg.total_size h) (Hg.total_size h2)

let test_file_io () =
  let m = parse_ok sample in
  let path = Filename.temp_file "fpart_test" ".blif" in
  Blif.write_file path m;
  (match Blif.parse_file path with
  | Ok m2 -> Alcotest.(check string) "name survives" "tiny" m2.Blif.model_name
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  Sys.remove path

let test_latch_flops_roundtrip () =
  let m =
    parse_ok ".model seq\n.inputs d\n.outputs q\n.latch d q re d 0\n.end\n"
  in
  let h = m.Blif.graph in
  let total = Hg.total_flops h in
  Alcotest.(check int) "latch carries a flop" 1 total;
  (* and it survives printing + reparsing *)
  let m2 = parse_ok (Blif.to_string m) in
  Alcotest.(check int) "flop survives roundtrip" 1 (Hg.total_flops m2.Blif.graph)

(* The parser must never raise: any byte soup yields Ok or Error. *)
let prop_parser_total =
  QCheck.Test.make ~count:300 ~name:"parser is total on arbitrary text"
    QCheck.(string_gen_of_size (Gen.int_bound 200) Gen.printable)
    (fun text ->
      match Blif.parse_string text with Ok _ | Error _ -> true)

let prop_parser_total_bliflike =
  (* byte soup biased towards BLIF keywords to reach deeper code paths *)
  let fragment =
    QCheck.Gen.oneofl
      [ ".model m"; ".inputs a b"; ".outputs y"; ".names a b y"; "11 1";
        ".latch a b re c 0"; ".latch x"; ".gate G A=a O=y"; ".subckt s x=y";
        ".end"; "#c"; "\\"; ""; "a b"; ".names"; ".model"; ".wire 1" ]
  in
  let gen =
    QCheck.Gen.(map (String.concat "\n") (list_size (int_bound 20) fragment))
  in
  QCheck.Test.make ~count:300 ~name:"parser is total on BLIF-like soup"
    (QCheck.make gen)
    (fun text ->
      match Blif.parse_string text with
      | Ok m -> Hg.validate m.Netlist.Blif.graph = Ok ()
      | Error _ -> true)

let prop_generated_roundtrip =
  QCheck.Test.make ~count:25 ~name:"generated circuits round-trip through BLIF"
    QCheck.(pair (int_range 10 150) (int_range 2 30))
    (fun (cells, pads) ->
      let spec =
        Netlist.Generator.default_spec ~name:"rt" ~cells ~pads ~seed:(cells + pads)
      in
      let h = Netlist.Generator.generate spec in
      match Blif.parse_string (Blif.to_string (Blif.of_hypergraph ~name:"rt" h)) with
      | Error _ -> false
      | Ok m2 ->
        let h2 = m2.Netlist.Blif.graph in
        Hg.num_cells h = Hg.num_cells h2
        && Hg.num_pads h = Hg.num_pads h2
        && Hg.num_nets h = Hg.num_nets h2)

let () =
  Alcotest.run "blif"
    [
      ( "unit",
        [
          Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "parse latch" `Quick test_parse_latch;
          Alcotest.test_case "parse gate" `Quick test_parse_gate;
          Alcotest.test_case "continuations" `Quick test_continuation_lines;
          Alcotest.test_case "comments" `Quick test_comments_and_blanks;
          Alcotest.test_case "dangling dropped" `Quick test_dangling_signal_dropped;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "unknown directives" `Quick test_unknown_directives_ignored;
          Alcotest.test_case "roundtrip sample" `Quick test_roundtrip;
          Alcotest.test_case "roundtrip generated" `Quick test_roundtrip_generated;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "latch flops roundtrip" `Quick test_latch_flops_roundtrip;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_roundtrip; prop_parser_total; prop_parser_total_bliflike ]
      );
    ]
