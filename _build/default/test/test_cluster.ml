(* Cluster: the connectivity-based coarsening pre-pass. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State

let circuit ?(cells = 200) ?(pads = 20) seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name:"cl" ~cells ~pads ~seed)

let test_partition_of_nodes () =
  let h = circuit 1 in
  let cl = Cluster.build h ~max_cluster_size:4 ~seed:7 in
  let coarse = Cluster.coarse cl in
  let seen = Array.make (Hg.num_nodes h) false in
  for c = 0 to Hg.num_nodes coarse - 1 do
    List.iter
      (fun v ->
        if seen.(v) then Alcotest.failf "node %d in two clusters" v;
        seen.(v) <- true;
        Alcotest.(check int) "map consistent" c (Cluster.coarse_of cl v))
      (Cluster.members cl c)
  done;
  Alcotest.(check bool) "every node covered" true (Array.for_all Fun.id seen)

let test_size_bound () =
  let h = circuit 2 in
  let cl = Cluster.build h ~max_cluster_size:5 ~seed:3 in
  let coarse = Cluster.coarse cl in
  Hg.iter_cells
    (fun c ->
      if Hg.size coarse c > 5 then
        Alcotest.failf "cluster %d has size %d" c (Hg.size coarse c))
    coarse

let test_pads_stay_single () =
  let h = circuit 3 in
  let cl = Cluster.build h ~max_cluster_size:8 ~seed:1 in
  let coarse = Cluster.coarse cl in
  Alcotest.(check int) "pad count preserved" (Hg.num_pads h) (Hg.num_pads coarse);
  Hg.iter_pads
    (fun c ->
      match Cluster.members cl c with
      | [ v ] -> Alcotest.(check bool) "member is a pad" true (Hg.is_pad h v)
      | ms -> Alcotest.failf "pad cluster with %d members" (List.length ms))
    coarse

let test_totals_preserved () =
  let spec =
    {
      (Netlist.Generator.default_spec ~name:"f" ~cells:150 ~pads:12 ~seed:4) with
      Netlist.Generator.flop_ratio = 0.4;
    }
  in
  let h = Netlist.Generator.generate spec in
  let cl = Cluster.build h ~max_cluster_size:4 ~seed:9 in
  let coarse = Cluster.coarse cl in
  Alcotest.(check int) "total size" (Hg.total_size h) (Hg.total_size coarse);
  Alcotest.(check int) "total flops" (Hg.total_flops h) (Hg.total_flops coarse)

let test_reduction () =
  let h = circuit 5 in
  let cl = Cluster.build h ~max_cluster_size:4 ~seed:2 in
  Alcotest.(check bool) "reduces" true (Cluster.reduction cl > 1.5);
  (* max_cluster_size 1 cannot merge anything *)
  let cl1 = Cluster.build h ~max_cluster_size:1 ~seed:2 in
  Alcotest.(check int) "identity coarsening" (Hg.num_nodes h)
    (Hg.num_nodes (Cluster.coarse cl1))

let test_project () =
  let h = circuit 6 in
  let cl = Cluster.build h ~max_cluster_size:4 ~seed:5 in
  let coarse = Cluster.coarse cl in
  let k = 3 in
  let coarse_assign = Array.init (Hg.num_nodes coarse) (fun c -> c mod k) in
  let fine_assign = Cluster.project cl coarse_assign in
  Hg.iter_nodes
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "node %d follows its cluster" v)
        coarse_assign.(Cluster.coarse_of cl v)
        fine_assign.(v))
    h

let test_pins_exact_under_projection () =
  (* coarse pin counts equal fine pin counts for projected assignments *)
  let h = circuit 7 in
  let cl = Cluster.build h ~max_cluster_size:4 ~seed:11 in
  let coarse = Cluster.coarse cl in
  let k = 4 in
  let coarse_assign = Array.init (Hg.num_nodes coarse) (fun c -> (c * 7) mod k) in
  let fine_assign = Cluster.project cl coarse_assign in
  let st_c = State.create coarse ~k ~assign:(fun c -> coarse_assign.(c)) in
  let st_f = State.create h ~k ~assign:(fun v -> fine_assign.(v)) in
  for b = 0 to k - 1 do
    Alcotest.(check int) (Printf.sprintf "pins of block %d" b)
      (State.pins_of st_c b) (State.pins_of st_f b);
    Alcotest.(check int) (Printf.sprintf "size of block %d" b)
      (State.size_of st_c b) (State.size_of st_f b)
  done;
  Alcotest.(check int) "cut" (State.cut_size st_c) (State.cut_size st_f)

let test_deterministic () =
  let h = circuit 8 in
  let a = Cluster.build h ~max_cluster_size:4 ~seed:13 in
  let b = Cluster.build h ~max_cluster_size:4 ~seed:13 in
  Alcotest.(check int) "same coarse size" (Hg.num_nodes (Cluster.coarse a))
    (Hg.num_nodes (Cluster.coarse b))

let test_invalid () =
  let h = circuit 9 in
  Alcotest.check_raises "size 0" (Invalid_argument "Cluster.build: max_cluster_size < 1")
    (fun () -> ignore (Cluster.build h ~max_cluster_size:0 ~seed:1))

(* Regression: the clustered driver produced weighted coarse cells that
   once sent the Sanchis stash logic into an infinite move loop. *)
let test_clustered_driver_end_to_end () =
  let h = circuit ~cells:400 ~pads:50 10 in
  let config = { Fpart.Config.default with cluster_size = Some 4 } in
  let r = Fpart.Driver.run ~config h Device.xc3020 in
  Alcotest.(check bool) "feasible" true r.Fpart.Driver.feasible;
  Alcotest.(check bool) "k >= M" true (r.Fpart.Driver.k >= r.Fpart.Driver.m_lower);
  (* blocks verified against the real (fine) circuit *)
  let st = Fpart.Driver.final_state r h in
  let s_max = Device.s_max Device.xc3020 ~delta:r.Fpart.Driver.delta in
  for b = 0 to r.Fpart.Driver.k - 1 do
    Alcotest.(check bool) "size ok" true (State.size_of st b <= s_max);
    Alcotest.(check bool) "pins ok" true
      (State.pins_of st b <= Device.xc3020.Device.t_max)
  done

let test_clustered_close_to_flat () =
  let h = circuit ~cells:300 ~pads:40 11 in
  let flat = Fpart.Driver.run h Device.xc3020 in
  let config = { Fpart.Config.default with cluster_size = Some 4 } in
  let clustered = Fpart.Driver.run ~config h Device.xc3020 in
  (* coarsening costs at most a couple of devices on these sizes *)
  Alcotest.(check bool) "within 2 devices of flat" true
    (clustered.Fpart.Driver.k <= flat.Fpart.Driver.k + 2)

let prop_projection_partitions =
  QCheck.Test.make ~count:25 ~name:"projection is a valid total assignment"
    QCheck.(triple (int_range 20 150) (int_range 2 8) (int_range 0 10_000))
    (fun (cells, cs, seed) ->
      let h = circuit ~cells ~pads:4 seed in
      let cl = Cluster.build h ~max_cluster_size:cs ~seed in
      let coarse = Cluster.coarse cl in
      let k = 3 in
      let fine = Cluster.project cl (Array.init (Hg.num_nodes coarse) (fun c -> c mod k)) in
      Array.length fine = Hg.num_nodes h
      && Array.for_all (fun b -> b >= 0 && b < k) fine)

let prop_coarse_validates =
  QCheck.Test.make ~count:25 ~name:"coarse hypergraphs validate"
    QCheck.(pair (int_range 20 150) (int_range 2 8))
    (fun (cells, cs) ->
      let h = circuit ~cells ~pads:4 (cells + cs) in
      let cl = Cluster.build h ~max_cluster_size:cs ~seed:(cells * cs) in
      Hg.validate (Cluster.coarse cl) = Ok ())

let () =
  Alcotest.run "cluster"
    [
      ( "unit",
        [
          Alcotest.test_case "partition of nodes" `Quick test_partition_of_nodes;
          Alcotest.test_case "size bound" `Quick test_size_bound;
          Alcotest.test_case "pads single" `Quick test_pads_stay_single;
          Alcotest.test_case "totals preserved" `Quick test_totals_preserved;
          Alcotest.test_case "reduction" `Quick test_reduction;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "pins exact" `Quick test_pins_exact_under_projection;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "invalid" `Quick test_invalid;
        ] );
      ( "driver",
        [
          Alcotest.test_case "clustered end-to-end" `Quick test_clustered_driver_end_to_end;
          Alcotest.test_case "close to flat" `Quick test_clustered_close_to_flat;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_projection_partitions; prop_coarse_validates ] );
    ]
