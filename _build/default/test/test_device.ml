(* Device: the Xilinx catalog and the lower bound M.  The golden cases
   check every M value printed in the paper's Tables 2-5 against our
   Device.lower_bound on the published Table 1 characteristics — this
   pins down the [S_MAX = floor(S_ds * delta)] interpretation. *)

let test_catalog () =
  Alcotest.(check int) "xc3020 s_ds" 64 Device.xc3020.Device.s_ds;
  Alcotest.(check int) "xc3020 t_max" 64 Device.xc3020.Device.t_max;
  Alcotest.(check int) "xc3042 s_ds" 144 Device.xc3042.Device.s_ds;
  Alcotest.(check int) "xc3042 t_max" 96 Device.xc3042.Device.t_max;
  Alcotest.(check int) "xc3090 s_ds" 320 Device.xc3090.Device.s_ds;
  Alcotest.(check int) "xc3090 t_max" 144 Device.xc3090.Device.t_max;
  Alcotest.(check int) "xc2064 s_ds" 64 Device.xc2064.Device.s_ds;
  Alcotest.(check int) "xc2064 t_max" 58 Device.xc2064.Device.t_max

let test_find () =
  (match Device.find "xc3042" with
  | Some d -> Alcotest.(check string) "case-insensitive" "XC3042" d.Device.dev_name
  | None -> Alcotest.fail "xc3042 not found");
  Alcotest.(check bool) "unknown" true (Device.find "XC4005" = None)

let test_s_max () =
  Alcotest.(check int) "derated 3020" 57 (Device.s_max Device.xc3020 ~delta:0.9);
  Alcotest.(check int) "derated 3042" 129 (Device.s_max Device.xc3042 ~delta:0.9);
  Alcotest.(check int) "derated 3090" 288 (Device.s_max Device.xc3090 ~delta:0.9);
  Alcotest.(check int) "full 2064" 64 (Device.s_max Device.xc2064 ~delta:1.0);
  Alcotest.check_raises "delta 0" (Invalid_argument "Device.s_max: delta out of (0,1]")
    (fun () -> ignore (Device.s_max Device.xc3020 ~delta:0.0))

let test_paper_delta () =
  Alcotest.(check (float 0.0)) "xc3000" 0.9 (Device.paper_delta Device.xc3020);
  Alcotest.(check (float 0.0)) "xc2000" 1.0 (Device.paper_delta Device.xc2064)

let test_feasible () =
  Alcotest.(check bool) "fits" true
    (Device.feasible Device.xc3020 ~delta:0.9 ~size:57 ~pins:64);
  Alcotest.(check bool) "size over" false
    (Device.feasible Device.xc3020 ~delta:0.9 ~size:58 ~pins:10);
  Alcotest.(check bool) "pins over" false
    (Device.feasible Device.xc3020 ~delta:0.9 ~size:10 ~pins:65)

(* The paper's M column, per device table, on Table 1 data. *)
let golden_m device delta expectations () =
  List.iter
    (fun (name, expected) ->
      match Netlist.Mcnc.find name with
      | None -> Alcotest.failf "unknown circuit %s" name
      | Some c ->
        let total_size = Netlist.Mcnc.clbs c device.Device.family in
        let m =
          Device.lower_bound device ~delta ~total_size ~total_pads:c.Netlist.Mcnc.iobs
        in
        Alcotest.(check int) (name ^ " M") expected m)
    expectations

let table2_m =
  golden_m Device.xc3020 0.9
    [
      ("c3540", 5); ("c5315", 7); ("c6288", 15); ("c7552", 9); ("s5378", 7);
      ("s9234", 8); ("s13207", 16); ("s15850", 15); ("s38417", 39); ("s38584", 51);
    ]

let table3_m =
  golden_m Device.xc3042 0.9
    [
      ("c3540", 3); ("c5315", 4); ("c6288", 7); ("c7552", 4); ("s5378", 3);
      ("s9234", 4); ("s13207", 8); ("s15850", 7); ("s38417", 18); ("s38584", 23);
    ]

let table4_m =
  golden_m Device.xc3090 0.9
    [
      ("c3540", 1); ("c5315", 3); ("c6288", 3); ("c7552", 3); ("s5378", 2);
      ("s9234", 2); ("s13207", 4); ("s15850", 3); ("s38417", 8); ("s38584", 11);
    ]

let table5_m =
  golden_m Device.xc2064 1.0
    [ ("c3540", 6); ("c5315", 9); ("c7552", 10); ("c6288", 14) ]

let test_io_critical () =
  (* c5315 on XC3020: 301 pads vs 377 CLBs -> ceil(377/57)=7 vs
     ceil(301/64)=5: size-critical *)
  Alcotest.(check bool) "c5315 xc3020 size-critical" false
    (Device.io_critical Device.xc3020 ~delta:0.9 ~total_size:377 ~total_pads:301);
  (* tiny logic with many pads is I/O-critical *)
  Alcotest.(check bool) "pad-dominated" true
    (Device.io_critical Device.xc3020 ~delta:0.9 ~total_size:30 ~total_pads:640)

let prop_lower_bound_sane =
  QCheck.Test.make ~count:200 ~name:"M >= 1 and covers both resources"
    QCheck.(pair (int_range 1 5000) (int_range 1 2000))
    (fun (size, pads) ->
      let d = Device.xc3042 in
      let m = Device.lower_bound d ~delta:0.9 ~total_size:size ~total_pads:pads in
      (* the logic term uses the real derated capacity S_ds * delta *)
      let s_cap = float_of_int d.Device.s_ds *. 0.9 in
      m >= 1
      && float_of_int m *. s_cap >= float_of_int size -. 1e-6
      && m * d.Device.t_max >= pads)

let () =
  Alcotest.run "device"
    [
      ( "unit",
        [
          Alcotest.test_case "catalog" `Quick test_catalog;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "s_max" `Quick test_s_max;
          Alcotest.test_case "paper delta" `Quick test_paper_delta;
          Alcotest.test_case "feasible" `Quick test_feasible;
          Alcotest.test_case "io critical" `Quick test_io_critical;
        ] );
      ( "golden-M",
        [
          Alcotest.test_case "table2 (XC3020)" `Quick table2_m;
          Alcotest.test_case "table3 (XC3042)" `Quick table3_m;
          Alcotest.test_case "table4 (XC3090)" `Quick table4_m;
          Alcotest.test_case "table5 (XC2064)" `Quick table5_m;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_lower_bound_sane ]);
    ]
