(* Generator: the synthetic MCNC-surrogate circuit builder. *)

module Hg = Hypergraph.Hgraph
module Gen = Netlist.Generator

let gen ?(seed = 1) cells pads =
  Gen.generate (Gen.default_spec ~name:"g" ~cells ~pads ~seed)

let test_exact_counts () =
  let h = gen 200 30 in
  Alcotest.(check int) "cells" 200 (Hg.num_cells h);
  Alcotest.(check int) "pads" 30 (Hg.num_pads h);
  Alcotest.(check int) "unit sizes sum" 200 (Hg.total_size h)

let test_determinism () =
  let h1 = gen ~seed:77 150 20 in
  let h2 = gen ~seed:77 150 20 in
  Alcotest.(check int) "same nets" (Hg.num_nets h1) (Hg.num_nets h2);
  let pins h = Hg.fold_nets (fun acc e -> acc + Hg.net_degree h e) 0 h in
  Alcotest.(check int) "same pins" (pins h1) (pins h2);
  (* different seed changes the structure *)
  let h3 = gen ~seed:78 150 20 in
  Alcotest.(check bool) "seed sensitivity" true
    (Hg.num_nets h1 <> Hg.num_nets h3 || pins h1 <> pins h3)

let test_connected () =
  List.iter
    (fun (c, p, s) ->
      let h = gen ~seed:s c p in
      Alcotest.(check bool)
        (Printf.sprintf "connected %d/%d" c p)
        true
        (Hypergraph.Traversal.is_connected h))
    [ (10, 2, 1); (64, 8, 2); (500, 50, 3); (283, 72, 4) ]

let test_net_degree_bounds () =
  let spec = Gen.default_spec ~name:"g" ~cells:300 ~pads:40 ~seed:9 in
  let h = Gen.generate spec in
  Hg.iter_nets
    (fun e ->
      let d = Hg.net_degree h e in
      if d < 2 then Alcotest.failf "net %d has %d pins" e d;
      if d > spec.Gen.max_fanout then Alcotest.failf "net %d exceeds max fanout" e)
    h

let test_validates () =
  let h = gen 120 15 in
  match Hg.validate h with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" e

let test_avg_degree_realistic () =
  let h = gen 800 60 in
  let s = Hypergraph.Stats.summary h in
  (* mapped LUT netlists sit around 2.5-4 pins per net *)
  if s.Hypergraph.Stats.avg_net_degree < 2.0 || s.Hypergraph.Stats.avg_net_degree > 5.0
  then Alcotest.failf "avg net degree %f unrealistic" s.Hypergraph.Stats.avg_net_degree

let test_pad_structure () =
  let h = gen 100 12 in
  (* every pad has exactly one net (inputs fan out through one net;
     outputs are driven through one net) *)
  Hg.iter_pads
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "pad %d single net" v)
        1 (Hg.node_degree h v))
    h

let test_invalid_specs () =
  Alcotest.check_raises "cells < 2" (Invalid_argument "Generator.generate: cells < 2")
    (fun () -> ignore (gen 1 1));
  Alcotest.check_raises "pads < 1" (Invalid_argument "Generator.generate: pads < 1")
    (fun () -> ignore (gen 10 0))

let test_locality () =
  (* Inter-cluster wiring follows Rent scaling: a contiguous index
     window of cells should have far fewer external nets than a random
     scatter of the same size. *)
  let h = gen ~seed:21 512 30 in
  let window = List.init 64 (fun i -> i) in
  let rng = Prng.Splitmix.create 5 in
  let scatter =
    List.init 64 (fun _ -> Prng.Splitmix.int rng 512)
    |> List.sort_uniq compare
  in
  let ext = Hypergraph.Stats.external_nets h in
  if ext window >= ext scatter then
    Alcotest.failf "no locality: window %d vs scatter %d" (ext window) (ext scatter)

let prop_counts =
  QCheck.Test.make ~count:50 ~name:"exact cell/pad counts for any spec"
    QCheck.(triple (int_range 2 300) (int_range 1 80) (int_range 0 10_000))
    (fun (cells, pads, seed) ->
      let h = gen ~seed cells pads in
      Hg.num_cells h = cells && Hg.num_pads h = pads)

let prop_valid =
  QCheck.Test.make ~count:50 ~name:"generated graphs validate"
    QCheck.(pair (int_range 2 200) (int_range 1 40))
    (fun (cells, pads) -> Hg.validate (gen ~seed:(cells * pads) cells pads) = Ok ())

let () =
  Alcotest.run "generator"
    [
      ( "unit",
        [
          Alcotest.test_case "exact counts" `Quick test_exact_counts;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "net degree bounds" `Quick test_net_degree_bounds;
          Alcotest.test_case "validates" `Quick test_validates;
          Alcotest.test_case "realistic degree" `Quick test_avg_degree_realistic;
          Alcotest.test_case "pad structure" `Quick test_pad_structure;
          Alcotest.test_case "invalid specs" `Quick test_invalid_specs;
          Alcotest.test_case "locality" `Quick test_locality;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_counts; prop_valid ]);
    ]
