(* Hetero: heterogeneous-device partitioning with cost minimisation,
   plus the Driver.run_best multi-start wrapper. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Hetero = Fpart.Hetero

let circuit ?(cells = 250) ?(pads = 30) seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name:"het" ~cells ~pads ~seed)

let check_blocks hg (r : Hetero.result) config =
  let k = List.length r.Hetero.blocks in
  let st = State.create hg ~k ~assign:(fun v -> r.Hetero.assignment.(v)) in
  List.iteri
    (fun b info ->
      let delta = Fpart.Config.delta_for config info.Hetero.blk_device in
      let s_max = Device.s_max info.Hetero.blk_device ~delta in
      Alcotest.(check int) "size recorded" (State.size_of st b) info.Hetero.blk_size;
      Alcotest.(check int) "pins recorded" (State.pins_of st b) info.Hetero.blk_pins;
      if r.Hetero.feasible then begin
        Alcotest.(check bool) "size fits" true (info.Hetero.blk_size <= s_max);
        Alcotest.(check bool) "pins fit" true
          (info.Hetero.blk_pins <= info.Hetero.blk_device.Device.t_max)
      end)
    r.Hetero.blocks

let test_end_to_end () =
  let hg = circuit 1 in
  let r = Hetero.run hg in
  Alcotest.(check bool) "feasible" true r.Hetero.feasible;
  Alcotest.(check bool) "at least one block" true (r.Hetero.blocks <> []);
  Alcotest.(check (float 1e-9)) "cost is the sum"
    (List.fold_left (fun acc b -> acc +. b.Hetero.blk_cost) 0.0 r.Hetero.blocks)
    r.Hetero.total_cost;
  check_blocks hg r Fpart.Config.default

let test_all_assigned () =
  let hg = circuit 2 in
  let r = Hetero.run hg in
  let k = List.length r.Hetero.blocks in
  Array.iteri
    (fun v b -> if b < 0 || b >= k then Alcotest.failf "node %d unassigned" v)
    r.Hetero.assignment

let test_small_circuit_single_cheapest () =
  (* fits the cheapest device outright: one block, minimal cost *)
  let hg = circuit ~cells:30 ~pads:10 3 in
  let r = Hetero.run hg in
  Alcotest.(check int) "one block" 1 (List.length r.Hetero.blocks);
  (match r.Hetero.blocks with
  | [ b ] -> Alcotest.(check string) "cheapest device" "XC3020" b.Hetero.blk_device.Device.dev_name
  | _ -> Alcotest.fail "expected one block");
  Alcotest.(check (float 1e-9)) "cost 1.0" 1.0 r.Hetero.total_cost

let test_competitive_with_homogeneous () =
  (* heterogeneous should be within 1.5x of the best single-device cost
     (greedy, not optimal — but never absurd) *)
  let hg = circuit ~cells:400 ~pads:40 4 in
  let r = Hetero.run hg in
  let best_homo =
    List.fold_left
      (fun acc p -> min acc (Hetero.homogeneous_cost hg p))
      infinity Hetero.default_candidates
  in
  Alcotest.(check bool) "within 1.5x of homogeneous" true
    (r.Hetero.total_cost <= 1.5 *. best_homo)

let test_custom_candidates () =
  let hg = circuit ~cells:100 ~pads:12 5 in
  let only_big = [ { Hetero.device = Device.xc3090; unit_cost = 4.6 } ] in
  let r = Hetero.run ~candidates:only_big hg in
  Alcotest.(check bool) "feasible" true r.Hetero.feasible;
  List.iter
    (fun b ->
      Alcotest.(check string) "forced device" "XC3090" b.Hetero.blk_device.Device.dev_name)
    r.Hetero.blocks

let test_empty_candidates () =
  let hg = circuit 6 in
  Alcotest.check_raises "empty" (Invalid_argument "Hetero.run: empty candidate list")
    (fun () -> ignore (Hetero.run ~candidates:[] hg))

let test_deterministic () =
  let hg = circuit 7 in
  let a = Hetero.run hg and b = Hetero.run hg in
  Alcotest.(check (float 1e-9)) "same cost" a.Hetero.total_cost b.Hetero.total_cost;
  Alcotest.(check (array int)) "same assignment" a.Hetero.assignment b.Hetero.assignment

(* --- Driver.run_best ----------------------------------------------- *)

let test_run_best_not_worse () =
  let hg = circuit ~cells:300 ~pads:40 8 in
  let single = Fpart.Driver.run hg Device.xc3020 in
  let best = Fpart.Driver.run_best ~runs:3 hg Device.xc3020 in
  Alcotest.(check bool) "k not worse" true (best.Fpart.Driver.k <= single.Fpart.Driver.k);
  Alcotest.(check bool) "feasible" true best.Fpart.Driver.feasible;
  if best.Fpart.Driver.k = single.Fpart.Driver.k then
    Alcotest.(check bool) "cut not worse at equal k" true
      (best.Fpart.Driver.cut <= single.Fpart.Driver.cut)

let test_run_best_one_run_is_run () =
  let hg = circuit ~cells:120 9 in
  let single = Fpart.Driver.run hg Device.xc3042 in
  let best = Fpart.Driver.run_best ~runs:1 hg Device.xc3042 in
  Alcotest.(check int) "same k" single.Fpart.Driver.k best.Fpart.Driver.k;
  Alcotest.(check (array int)) "same assignment" single.Fpart.Driver.assignment
    best.Fpart.Driver.assignment

let test_run_best_invalid () =
  let hg = circuit 10 in
  Alcotest.check_raises "runs 0" (Invalid_argument "Driver.run_best: runs < 1")
    (fun () -> ignore (Fpart.Driver.run_best ~runs:0 hg Device.xc3020))

let prop_hetero_valid =
  QCheck.Test.make ~count:8 ~name:"hetero returns valid feasible partitions"
    QCheck.(pair (int_range 50 250) (int_range 0 1000))
    (fun (cells, seed) ->
      let hg = circuit ~cells ~pads:(max 4 (cells / 8)) seed in
      let r = Hetero.run hg in
      let k = List.length r.Hetero.blocks in
      r.Hetero.feasible && k >= 1
      && Array.for_all (fun b -> b >= 0 && b < k) r.Hetero.assignment)

let () =
  Alcotest.run "hetero"
    [
      ( "hetero",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "all assigned" `Quick test_all_assigned;
          Alcotest.test_case "small circuit" `Quick test_small_circuit_single_cheapest;
          Alcotest.test_case "competitive" `Quick test_competitive_with_homogeneous;
          Alcotest.test_case "custom candidates" `Quick test_custom_candidates;
          Alcotest.test_case "empty candidates" `Quick test_empty_candidates;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "run-best",
        [
          Alcotest.test_case "not worse" `Quick test_run_best_not_worse;
          Alcotest.test_case "one run" `Quick test_run_best_one_run_is_run;
          Alcotest.test_case "invalid" `Quick test_run_best_invalid;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_hetero_valid ]);
    ]
