(* Hgraph: the immutable circuit hypergraph and its builder. *)

module Hg = Hypergraph.Hgraph

(* A small reference circuit used across cases:

     pads : p0, p1
     cells: a(2), b(1), c(3)
     nets : n0 = {p0, a}, n1 = {a, b, c}, n2 = {b, c}, n3 = {c, p1}   *)
let small () =
  let b = Hg.Builder.create () in
  let a = Hg.Builder.add_cell b ~name:"a" ~size:2 in
  let bb = Hg.Builder.add_cell b ~name:"b" ~size:1 in
  let c = Hg.Builder.add_cell b ~name:"c" ~size:3 in
  let p0 = Hg.Builder.add_pad b ~name:"p0" in
  let p1 = Hg.Builder.add_pad b ~name:"p1" in
  let n0 = Hg.Builder.add_net b ~name:"n0" [ p0; a ] in
  let n1 = Hg.Builder.add_net b ~name:"n1" [ a; bb; c ] in
  let n2 = Hg.Builder.add_net b ~name:"n2" [ bb; c ] in
  let n3 = Hg.Builder.add_net b ~name:"n3" [ c; p1 ] in
  (Hg.Builder.freeze b, (a, bb, c, p0, p1), (n0, n1, n2, n3))

let test_counts () =
  let h, _, _ = small () in
  Alcotest.(check int) "nodes" 5 (Hg.num_nodes h);
  Alcotest.(check int) "cells" 3 (Hg.num_cells h);
  Alcotest.(check int) "pads" 2 (Hg.num_pads h);
  Alcotest.(check int) "nets" 4 (Hg.num_nets h);
  Alcotest.(check int) "total size" 6 (Hg.total_size h)

let test_kinds_sizes () =
  let h, (a, _, c, p0, _), _ = small () in
  Alcotest.(check bool) "a is cell" false (Hg.is_pad h a);
  Alcotest.(check bool) "p0 is pad" true (Hg.is_pad h p0);
  Alcotest.(check int) "size a" 2 (Hg.size h a);
  Alcotest.(check int) "size c" 3 (Hg.size h c);
  Alcotest.(check int) "size p0" 0 (Hg.size h p0)

let test_names () =
  let h, (a, _, _, p0, _), (n0, _, _, _) = small () in
  Alcotest.(check string) "node name" "a" (Hg.name h a);
  Alcotest.(check string) "pad name" "p0" (Hg.name h p0);
  Alcotest.(check string) "net name" "n0" (Hg.net_name h n0)

let test_incidence () =
  let h, (a, bb, c, _, _), (n0, n1, n2, n3) = small () in
  Alcotest.(check int) "net degree n1" 3 (Hg.net_degree h n1);
  Alcotest.(check int) "node degree c" 3 (Hg.node_degree h c);
  let nets_of_a = Array.to_list (Hg.nets_of h a) |> List.sort compare in
  Alcotest.(check (list int)) "nets of a" [ n0; n1 ] nets_of_a;
  let pins_n2 = Array.to_list (Hg.pins h n2) |> List.sort compare in
  Alcotest.(check (list int)) "pins of n2" [ bb; c ] pins_n2;
  Alcotest.(check int) "max net degree" 3 (Hg.max_net_degree h);
  Alcotest.(check int) "max node degree" 3 (Hg.max_node_degree h);
  Alcotest.(check bool) "n3 has pad" true (Hg.net_has_pad h n3);
  Alcotest.(check bool) "n2 has no pad" false (Hg.net_has_pad h n2)

let test_duplicate_pins_collapse () =
  let b = Hg.Builder.create () in
  let x = Hg.Builder.add_cell b ~name:"x" ~size:1 in
  let y = Hg.Builder.add_cell b ~name:"y" ~size:1 in
  let n = Hg.Builder.add_net b ~name:"n" [ x; y; x; y; x ] in
  let h = Hg.Builder.freeze b in
  Alcotest.(check int) "collapsed" 2 (Hg.net_degree h n)

let test_builder_errors () =
  let b = Hg.Builder.create () in
  Alcotest.check_raises "size 0" (Invalid_argument "Hgraph.Builder.add_cell: size <= 0")
    (fun () -> ignore (Hg.Builder.add_cell b ~name:"bad" ~size:0));
  let _ = Hg.Builder.add_cell b ~name:"ok" ~size:1 in
  Alcotest.check_raises "unknown pin"
    (Invalid_argument "Hgraph.Builder.add_net: unknown node id") (fun () ->
      ignore (Hg.Builder.add_net b ~name:"n" [ 5 ]));
  Alcotest.check_raises "empty net"
    (Invalid_argument "Hgraph.Builder.add_net: empty net") (fun () ->
      ignore (Hg.Builder.add_net b ~name:"n" []))

let test_validate_ok () =
  let h, _, _ = small () in
  match Hg.validate h with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid, got %s" e

let test_iterators () =
  let h, _, _ = small () in
  let cells = ref 0 and pads = ref 0 and nodes = ref 0 and nets = ref 0 in
  Hg.iter_cells (fun _ -> incr cells) h;
  Hg.iter_pads (fun _ -> incr pads) h;
  Hg.iter_nodes (fun _ -> incr nodes) h;
  Hg.iter_nets (fun _ -> incr nets) h;
  Alcotest.(check int) "cells" 3 !cells;
  Alcotest.(check int) "pads" 2 !pads;
  Alcotest.(check int) "nodes" 5 !nodes;
  Alcotest.(check int) "nets" 4 !nets;
  Alcotest.(check int) "fold_nodes" 10 (Hg.fold_nodes ( + ) 0 h);
  Alcotest.(check int) "fold_nets" 6 (Hg.fold_nets ( + ) 0 h)

let test_freeze_reusable () =
  let b = Hg.Builder.create () in
  let x = Hg.Builder.add_cell b ~name:"x" ~size:1 in
  let h1 = Hg.Builder.freeze b in
  let y = Hg.Builder.add_cell b ~name:"y" ~size:1 in
  ignore (Hg.Builder.add_net b ~name:"n" [ x; y ]);
  let h2 = Hg.Builder.freeze b in
  Alcotest.(check int) "first freeze unchanged" 1 (Hg.num_nodes h1);
  Alcotest.(check int) "second freeze grew" 2 (Hg.num_nodes h2);
  Alcotest.(check int) "second freeze has the net" 1 (Hg.num_nets h2)

(* Random builder inputs always freeze into a valid hypergraph. *)
let arbitrary_graph_spec =
  QCheck.(pair (int_range 2 40) (int_range 1 60))

let prop_random_valid =
  QCheck.Test.make ~count:100 ~name:"random builds validate"
    arbitrary_graph_spec
    (fun (n_cells, n_nets) ->
      let rng = Prng.Splitmix.create (n_cells + (1000 * n_nets)) in
      let b = Hg.Builder.create () in
      let cells =
        Array.init n_cells (fun i ->
            Hg.Builder.add_cell b ~name:(string_of_int i)
              ~size:(1 + Prng.Splitmix.int rng 5))
      in
      for j = 0 to n_nets - 1 do
        let d = 1 + Prng.Splitmix.int rng 4 in
        let pins = List.init d (fun _ -> Prng.Splitmix.choose rng cells) in
        ignore (Hg.Builder.add_net b ~name:(Printf.sprintf "n%d" j) pins)
      done;
      let h = Hg.Builder.freeze b in
      Hg.validate h = Ok ())

let prop_pin_symmetry =
  QCheck.Test.make ~count:100 ~name:"pins and nets_of are inverse incidences"
    arbitrary_graph_spec
    (fun (n_cells, n_nets) ->
      let rng = Prng.Splitmix.create (7 + n_cells + (13 * n_nets)) in
      let b = Hg.Builder.create () in
      let cells =
        Array.init n_cells (fun i -> Hg.Builder.add_cell b ~name:(string_of_int i) ~size:1)
      in
      for j = 0 to n_nets - 1 do
        let d = 2 + Prng.Splitmix.int rng 3 in
        let pins = List.init d (fun _ -> Prng.Splitmix.choose rng cells) in
        (try ignore (Hg.Builder.add_net b ~name:(Printf.sprintf "n%d" j) pins)
         with Invalid_argument _ -> ())
      done;
      let h = Hg.Builder.freeze b in
      (* total pins counted from nets equals total counted from nodes *)
      let from_nets = Hg.fold_nets (fun acc e -> acc + Hg.net_degree h e) 0 h in
      let from_nodes = Hg.fold_nodes (fun acc v -> acc + Hg.node_degree h v) 0 h in
      from_nets = from_nodes)

let () =
  Alcotest.run "hgraph"
    [
      ( "unit",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "kinds and sizes" `Quick test_kinds_sizes;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "incidence" `Quick test_incidence;
          Alcotest.test_case "duplicate pins" `Quick test_duplicate_pins_collapse;
          Alcotest.test_case "builder errors" `Quick test_builder_errors;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "iterators" `Quick test_iterators;
          Alcotest.test_case "freeze reusable" `Quick test_freeze_reusable;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_random_valid; prop_pin_symmetry ]
      );
    ]
