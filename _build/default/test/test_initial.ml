(* Initial partition creation: Seed_merge, Ratio_cut, Bipartition,
   plus the Schedule block selectors and Config derivations. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost

let circuit ?(cells = 120) ?(pads = 12) seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name:"init" ~cells ~pads ~seed)

let all v _ = v

(* --- Seed_merge ---------------------------------------------------- *)

let test_seed_merge_basic () =
  let h = circuit 1 in
  let r = Fpart.Seed_merge.split h ~member:(fun _ -> true) ~s_max:40 ~t_max:64 in
  Alcotest.(check bool) "p nonempty" true (Array.exists Fun.id r.Fpart.Seed_merge.p_side);
  Alcotest.(check bool) "p not everything" true
    (Array.exists not r.Fpart.Seed_merge.p_side);
  Alcotest.(check bool) "p within s_max" true (r.Fpart.Seed_merge.p_size <= 40);
  (* reported size/pins match the side *)
  let size = ref 0 in
  Array.iteri
    (fun v s -> if s then size := !size + Hg.size h v)
    r.Fpart.Seed_merge.p_side;
  Alcotest.(check int) "size consistent" !size r.Fpart.Seed_merge.p_size

let test_seed_merge_respects_member () =
  let h = circuit 2 in
  (* only even nodes belong to the remainder *)
  let member v = v land 1 = 0 in
  let r = Fpart.Seed_merge.split h ~member ~s_max:20 ~t_max:64 in
  Array.iteri
    (fun v s -> if s && not (member v) then Alcotest.failf "non-member %d in P" v)
    r.Fpart.Seed_merge.p_side

let test_seed_merge_fills () =
  let h = circuit ~cells:200 3 in
  let r = Fpart.Seed_merge.split h ~member:(fun _ -> true) ~s_max:50 ~t_max:64 in
  (* greedy growth should get close to the capacity *)
  Alcotest.(check bool) "good filling" true (r.Fpart.Seed_merge.p_size >= 40)

let test_seed_merge_empty_member () =
  let h = circuit 4 in
  Alcotest.check_raises "empty" (Invalid_argument "Seed_merge.split: empty member set")
    (fun () -> ignore (Fpart.Seed_merge.split h ~member:(fun _ -> false) ~s_max:10 ~t_max:64))

let test_seed_merge_singleton () =
  let h = circuit 5 in
  let r = Fpart.Seed_merge.split h ~member:(fun v -> v = 3) ~s_max:10 ~t_max:64 in
  Alcotest.(check bool) "the singleton is P" true r.Fpart.Seed_merge.p_side.(3)

(* --- Ratio_cut ----------------------------------------------------- *)

let test_ratio_cut_basic () =
  let h = circuit 7 in
  match Fpart.Ratio_cut.split h ~member:(fun _ -> true) ~s_max:60 ~t_max:64 with
  | None -> Alcotest.fail "expected a split"
  | Some r ->
    Alcotest.(check bool) "nonempty" true (Array.exists Fun.id r.Fpart.Ratio_cut.p_side);
    Alcotest.(check bool) "proper" true (Array.exists not r.Fpart.Ratio_cut.p_side);
    Alcotest.(check bool) "ratio positive" true (r.Fpart.Ratio_cut.ratio > 0.0);
    (* the P side satisfies the device constraints, as promised *)
    let st =
      State.create h ~k:2 ~assign:(fun v -> if r.Fpart.Ratio_cut.p_side.(v) then 0 else 1)
    in
    Alcotest.(check bool) "P feasible" true
      (State.size_of st 0 <= 60 && State.pins_of st 0 <= 64)

let test_ratio_cut_respects_member () =
  let h = circuit 8 in
  let member v = v mod 3 <> 0 in
  match Fpart.Ratio_cut.split h ~member ~s_max:30 ~t_max:64 with
  | None -> Alcotest.fail "expected a split"
  | Some r ->
    Array.iteri
      (fun v s -> if s && not (member v) then Alcotest.failf "non-member %d in P" v)
      r.Fpart.Ratio_cut.p_side

let test_ratio_cut_infeasible_none () =
  (* t_max = 0 makes every side infeasible: no prefix qualifies *)
  let h = circuit ~cells:30 9 in
  Alcotest.(check bool) "None" true
    (Fpart.Ratio_cut.split h ~member:(fun _ -> true) ~s_max:1 ~t_max:0 = None)

(* --- Bipartition --------------------------------------------------- *)

let test_bipartition_splits () =
  let h = circuit ~cells:150 10 in
  let ctx = Cost.context_of Device.xc3020 ~delta:0.9 h in
  let st = State.create h ~k:2 ~assign:(all 0) in
  let _method =
    Fpart.Bipartition.split st ~p_block:0 ~r_block:1 ~params:Cost.default_params
      ~ctx ~step_k:1
  in
  Alcotest.(check bool) "both blocks populated" true
    (State.cells_of st 0 > 0 && State.cells_of st 1 > 0);
  (* the P side respects the capacity *)
  Alcotest.(check bool) "P within s_max" true (State.size_of st 0 <= ctx.Cost.s_max);
  match State.check st with Ok () -> () | Error e -> Alcotest.fail e

let test_bipartition_requires_empty_r () =
  let h = circuit 11 in
  let ctx = Cost.context_of Device.xc3020 ~delta:0.9 h in
  let st = State.create h ~k:2 ~assign:(fun v -> v land 1) in
  Alcotest.check_raises "r not empty"
    (Invalid_argument "Bipartition.split: r_block not empty") (fun () ->
      ignore
        (Fpart.Bipartition.split st ~p_block:0 ~r_block:1 ~params:Cost.default_params
           ~ctx ~step_k:1))

let test_bipartition_only_remainder_moves () =
  let h = circuit ~cells:90 12 in
  let ctx = Cost.context_of Device.xc3042 ~delta:0.9 h in
  (* block 0 committed, block 1 remainder, block 2 empty *)
  let st = State.create h ~k:3 ~assign:(fun v -> if v < 20 then 0 else 1) in
  let committed = State.nodes_of_block st 0 in
  ignore
    (Fpart.Bipartition.split st ~p_block:1 ~r_block:2 ~params:Cost.default_params
       ~ctx ~step_k:1);
  Alcotest.(check (list int)) "committed untouched" committed (State.nodes_of_block st 0)

(* --- Schedule ------------------------------------------------------ *)

let sized_state sizes =
  let b = Hg.Builder.create () in
  Array.iter
    (fun s ->
      ignore (Hg.Builder.add_cell b ~name:(string_of_int s) ~size:s))
    sizes;
  let h = Hg.Builder.freeze b in
  State.create h ~k:(Array.length sizes) ~assign:(fun v -> v)

let test_schedule_min_size () =
  let st = sized_state [| 30; 10; 20; 99 |] in
  Alcotest.(check (option int)) "min size" (Some 1)
    (Fpart.Schedule.min_size_block st ~except:3);
  Alcotest.(check (option int)) "except wins" (Some 0)
    (Fpart.Schedule.min_size_block (sized_state [| 5; 9 |]) ~except:1)

let test_schedule_no_other () =
  let st = sized_state [| 5 |] in
  Alcotest.(check (option int)) "none" None (Fpart.Schedule.min_size_block st ~except:0)

let test_schedule_min_io_max_free () =
  let h = circuit ~cells:60 13 in
  let st = State.create h ~k:3 ~assign:(fun v -> v mod 3) in
  (match Fpart.Schedule.min_io_block st ~except:2 with
  | Some b ->
    let other = 1 - b in
    Alcotest.(check bool) "fewest pins" true
      (State.pins_of st b <= State.pins_of st other)
  | None -> Alcotest.fail "expected a block");
  match
    Fpart.Schedule.max_free_block Fpart.Config.default st ~except:2 ~s_max:57 ~t_max:64
  with
  | Some b -> Alcotest.(check bool) "valid block" true (b = 0 || b = 1)
  | None -> Alcotest.fail "expected a block"

(* --- Config -------------------------------------------------------- *)

let test_config_published_values () =
  let c = Fpart.Config.default in
  Alcotest.(check int) "N_small" 15 c.Fpart.Config.n_small;
  Alcotest.(check int) "D_stack" 4 c.Fpart.Config.stack_depth;
  Alcotest.(check (float 0.0)) "sigma1" 0.5 c.Fpart.Config.sigma1;
  Alcotest.(check (float 0.0)) "eps_max" 1.05 c.Fpart.Config.eps_max_multi;
  Alcotest.(check (float 0.0)) "eps_min_two" 0.95 c.Fpart.Config.eps_min_two;
  Alcotest.(check (float 0.0)) "eps_min_multi" 0.3 c.Fpart.Config.eps_min_multi

let test_config_delta_resolution () =
  let c = Fpart.Config.default in
  Alcotest.(check (float 0.0)) "xc3000 default" 0.9
    (Fpart.Config.delta_for c Device.xc3020);
  Alcotest.(check (float 0.0)) "xc2000 default" 1.0
    (Fpart.Config.delta_for c Device.xc2064);
  let c = { c with Fpart.Config.delta = Some 0.8 } in
  Alcotest.(check (float 0.0)) "override" 0.8 (Fpart.Config.delta_for c Device.xc2064)

let test_config_free_space () =
  let c = Fpart.Config.default in
  (* empty block: F = 0.5 + 0.5 = 1 *)
  Alcotest.(check (float 1e-9)) "empty" 1.0
    (Fpart.Config.free_space c ~s_max:100 ~t_max:50 ~size:0 ~pins:0);
  (* full block: F = 0 *)
  Alcotest.(check (float 1e-9)) "full" 0.0
    (Fpart.Config.free_space c ~s_max:100 ~t_max:50 ~size:100 ~pins:50)

let prop_seed_merge_within_capacity =
  QCheck.Test.make ~count:30 ~name:"seed merge P never exceeds s_max"
    QCheck.(triple (int_range 20 150) (int_range 10 60) (int_range 0 10_000))
    (fun (cells, s_max, seed) ->
      let h = circuit ~cells seed in
      let r = Fpart.Seed_merge.split h ~member:(fun _ -> true) ~s_max ~t_max:64 in
      r.Fpart.Seed_merge.p_size <= s_max)

let prop_bipartition_partitions =
  QCheck.Test.make ~count:20 ~name:"bipartition assigns every member to P or R"
    QCheck.(pair (int_range 30 120) (int_range 0 10_000))
    (fun (cells, seed) ->
      let h = circuit ~cells seed in
      let ctx = Cost.context_of Device.xc3020 ~delta:0.9 h in
      let st = State.create h ~k:2 ~assign:(all 0) in
      ignore
        (Fpart.Bipartition.split st ~p_block:0 ~r_block:1 ~params:Cost.default_params
           ~ctx ~step_k:1);
      State.cells_of st 0 + State.cells_of st 1 = Hg.num_nodes h
      && State.check st = Ok ())

let () =
  Alcotest.run "initial"
    [
      ( "seed-merge",
        [
          Alcotest.test_case "basic" `Quick test_seed_merge_basic;
          Alcotest.test_case "member respected" `Quick test_seed_merge_respects_member;
          Alcotest.test_case "fills" `Quick test_seed_merge_fills;
          Alcotest.test_case "empty member" `Quick test_seed_merge_empty_member;
          Alcotest.test_case "singleton" `Quick test_seed_merge_singleton;
        ] );
      ( "ratio-cut",
        [
          Alcotest.test_case "basic" `Quick test_ratio_cut_basic;
          Alcotest.test_case "member respected" `Quick test_ratio_cut_respects_member;
          Alcotest.test_case "infeasible -> None" `Quick test_ratio_cut_infeasible_none;
        ] );
      ( "bipartition",
        [
          Alcotest.test_case "splits" `Quick test_bipartition_splits;
          Alcotest.test_case "requires empty R" `Quick test_bipartition_requires_empty_r;
          Alcotest.test_case "committed untouched" `Quick test_bipartition_only_remainder_moves;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "min size" `Quick test_schedule_min_size;
          Alcotest.test_case "no other block" `Quick test_schedule_no_other;
          Alcotest.test_case "min io / max free" `Quick test_schedule_min_io_max_free;
        ] );
      ( "config",
        [
          Alcotest.test_case "published values" `Quick test_config_published_values;
          Alcotest.test_case "delta resolution" `Quick test_config_delta_resolution;
          Alcotest.test_case "free space" `Quick test_config_free_space;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_seed_merge_within_capacity; prop_bipartition_partitions ] );
    ]
