(* Mcnc: the Table 1 data and surrogate construction. *)

module Hg = Hypergraph.Hgraph
module Mcnc = Netlist.Mcnc

(* Table 1 verbatim. *)
let table1 =
  [
    ("c3540", 72, 373, 283);
    ("c5315", 301, 535, 377);
    ("c6288", 64, 833, 833);
    ("c7552", 313, 611, 489);
    ("s5378", 86, 500, 381);
    ("s9234", 43, 565, 454);
    ("s13207", 154, 1038, 915);
    ("s15850", 102, 1013, 842);
    ("s38417", 136, 2763, 2221);
    ("s38584", 292, 3956, 2904);
  ]

let test_table1_data () =
  Alcotest.(check int) "ten circuits" 10 (List.length Mcnc.all);
  List.iter
    (fun (name, iobs, c2000, c3000) ->
      match Mcnc.find name with
      | None -> Alcotest.failf "missing %s" name
      | Some c ->
        Alcotest.(check int) (name ^ " iobs") iobs c.Mcnc.iobs;
        Alcotest.(check int) (name ^ " clbs2000") c2000 c.Mcnc.clbs_xc2000;
        Alcotest.(check int) (name ^ " clbs3000") c3000 c.Mcnc.clbs_xc3000)
    table1

let test_order_matches_paper () =
  Alcotest.(check (list string))
    "paper row order"
    [ "c3540"; "c5315"; "c6288"; "c7552"; "s5378"; "s9234"; "s13207"; "s15850";
      "s38417"; "s38584" ]
    (List.map (fun c -> c.Mcnc.circuit_name) Mcnc.all)

let test_table5_subset () =
  Alcotest.(check (list string))
    "table 5 rows" [ "c3540"; "c5315"; "c7552"; "c6288" ]
    (List.map (fun c -> c.Mcnc.circuit_name) Mcnc.table5_subset)

let test_clbs_selector () =
  let c = Option.get (Mcnc.find "c7552") in
  Alcotest.(check int) "xc2000" 611 (Mcnc.clbs c Device.XC2000);
  Alcotest.(check int) "xc3000" 489 (Mcnc.clbs c Device.XC3000)

let test_surrogate_interface () =
  List.iter
    (fun (name, iobs, c2000, c3000) ->
      let c = Option.get (Mcnc.find name) in
      (* skip the two largest in this loop to keep the test quick *)
      if c2000 <= 1100 then begin
        let h2 = Mcnc.surrogate c Device.XC2000 in
        Alcotest.(check int) (name ^ " 2000 cells") c2000 (Hg.num_cells h2);
        Alcotest.(check int) (name ^ " 2000 pads") iobs (Hg.num_pads h2);
        let h3 = Mcnc.surrogate c Device.XC3000 in
        Alcotest.(check int) (name ^ " 3000 cells") c3000 (Hg.num_cells h3);
        Alcotest.(check int) (name ^ " 3000 pads") iobs (Hg.num_pads h3)
      end)
    table1

let test_surrogate_deterministic () =
  let c = Option.get (Mcnc.find "c3540") in
  let h1 = Mcnc.surrogate c Device.XC3000 in
  let h2 = Mcnc.surrogate c Device.XC3000 in
  Alcotest.(check int) "same structure" (Hg.num_nets h1) (Hg.num_nets h2);
  let h2000 = Mcnc.surrogate c Device.XC2000 in
  Alcotest.(check bool) "families differ" true (Hg.num_cells h1 <> Hg.num_cells h2000)

let test_surrogate_connected () =
  let c = Option.get (Mcnc.find "s9234") in
  Alcotest.(check bool) "connected" true
    (Hypergraph.Traversal.is_connected (Mcnc.surrogate c Device.XC3000))

let () =
  Alcotest.run "mcnc"
    [
      ( "unit",
        [
          Alcotest.test_case "table1 data" `Quick test_table1_data;
          Alcotest.test_case "paper order" `Quick test_order_matches_paper;
          Alcotest.test_case "table5 subset" `Quick test_table5_subset;
          Alcotest.test_case "clbs selector" `Quick test_clbs_selector;
          Alcotest.test_case "surrogate interface" `Quick test_surrogate_interface;
          Alcotest.test_case "surrogate deterministic" `Quick test_surrogate_deterministic;
          Alcotest.test_case "surrogate connected" `Quick test_surrogate_connected;
        ] );
    ]
