(* Metrics: classical hypergraph-partitioning quality measures. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Metrics = Partition.Metrics

(* nets: n1={a,b} internal to 0; n2={b,c} cut 2 ways; n3={a,c,d} spans 3 *)
let fixture () =
  let bld = Hg.Builder.create () in
  let a = Hg.Builder.add_cell bld ~name:"a" ~size:1 in
  let b = Hg.Builder.add_cell bld ~name:"b" ~size:1 in
  let c = Hg.Builder.add_cell bld ~name:"c" ~size:2 in
  let d = Hg.Builder.add_cell bld ~name:"d" ~size:1 in
  ignore (Hg.Builder.add_net bld ~name:"n1" [ a; b ]);
  ignore (Hg.Builder.add_net bld ~name:"n2" [ b; c ]);
  ignore (Hg.Builder.add_net bld ~name:"n3" [ a; c; d ]);
  let h = Hg.Builder.freeze bld in
  (* blocks: {a,b}=0, {c}=1, {d}=2 *)
  State.create h ~k:3 ~assign:(fun v -> if v = a || v = b then 0 else if v = c then 1 else 2)

let test_values () =
  let st = fixture () in
  let m = Metrics.all st in
  Alcotest.(check int) "cut" 2 m.Metrics.m_cut;
  (* n2 spans 2, n3 spans 3 *)
  Alcotest.(check int) "soed" 5 m.Metrics.m_soed;
  Alcotest.(check int) "K-1" 3 m.Metrics.m_connectivity;
  (* absorption: n1 fully absorbed (1.0); n2: 0; n3: each block holds 1 pin -> 0 *)
  Alcotest.(check (float 1e-9)) "absorption" 1.0 m.Metrics.m_absorption;
  (* sizes 2,2,1; avg 5/3; max 2 -> imbalance = 2/(5/3)-1 = 0.2 *)
  Alcotest.(check (float 1e-9)) "imbalance" 0.2 m.Metrics.m_imbalance

let test_single_block () =
  let spec = Netlist.Generator.default_spec ~name:"m" ~cells:30 ~pads:4 ~seed:3 in
  let h = Netlist.Generator.generate spec in
  let st = State.create h ~k:1 ~assign:(fun _ -> 0) in
  let m = Metrics.all st in
  Alcotest.(check int) "no cut" 0 m.Metrics.m_cut;
  Alcotest.(check int) "no soed" 0 m.Metrics.m_soed;
  Alcotest.(check (float 1e-9)) "no imbalance" 0.0 m.Metrics.m_imbalance

let test_cut_agrees_with_state () =
  let spec = Netlist.Generator.default_spec ~name:"m" ~cells:80 ~pads:8 ~seed:5 in
  let h = Netlist.Generator.generate spec in
  let st = State.create h ~k:4 ~assign:(fun v -> v mod 4) in
  Alcotest.(check int) "cut = State.cut_size" (State.cut_size st) (Metrics.cut_net st)

let prop_inequalities =
  QCheck.Test.make ~count:60 ~name:"cut <= K-1 <= soed and absorption bounded"
    QCheck.(triple (int_range 8 80) (int_range 2 5) (int_range 0 10_000))
    (fun (cells, k, seed) ->
      let spec = Netlist.Generator.default_spec ~name:"m" ~cells ~pads:4 ~seed in
      let h = Netlist.Generator.generate spec in
      let st = State.create h ~k ~assign:(fun v -> (v * 13) mod k) in
      let m = Metrics.all st in
      m.Metrics.m_cut <= m.Metrics.m_connectivity
      && m.Metrics.m_connectivity <= m.Metrics.m_soed
      && m.Metrics.m_absorption >= 0.0
      && m.Metrics.m_absorption <= float_of_int (Hg.num_nets h)
      && m.Metrics.m_imbalance >= 0.0)

let () =
  Alcotest.run "metrics"
    [
      ( "unit",
        [
          Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "single block" `Quick test_single_block;
          Alcotest.test_case "cut agrees" `Quick test_cut_agrees_with_state;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_inequalities ]);
    ]
