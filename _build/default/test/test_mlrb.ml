(* Mlrb: multilevel recursive bisection (post-paper baseline), and the
   Induce subhypergraph extraction it relies on. *)

module Hg = Hypergraph.Hgraph
module Induce = Hypergraph.Induce
module Mlrb = Mlevel.Mlrb
module State = Partition.State

let circuit ?(cells = 200) ?(pads = 24) seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name:"ml" ~cells ~pads ~seed)

(* --- Induce -------------------------------------------------------- *)

let test_induce_identity () =
  let h = circuit 1 in
  let ind = Induce.induce h ~keep:(fun _ -> true) in
  Alcotest.(check int) "same nodes" (Hg.num_nodes h) (Hg.num_nodes ind.Induce.sub);
  Alcotest.(check int) "same nets" (Hg.num_nets h) (Hg.num_nets ind.Induce.sub);
  Alcotest.(check int) "same size" (Hg.total_size h) (Hg.total_size ind.Induce.sub)

let test_induce_subset () =
  let h = circuit 2 in
  let keep v = v mod 2 = 0 in
  let ind = Induce.induce h ~keep in
  (* mappings are mutually inverse on the kept set *)
  Array.iteri
    (fun sub_v orig_v ->
      Alcotest.(check int) "roundtrip" sub_v ind.Induce.to_sub.(orig_v);
      Alcotest.(check bool) "kept" true (keep orig_v);
      (* attributes preserved *)
      Alcotest.(check int) "size" (Hg.size h orig_v) (Hg.size ind.Induce.sub sub_v);
      Alcotest.(check bool) "kind" (Hg.is_pad h orig_v) (Hg.is_pad ind.Induce.sub sub_v))
    ind.Induce.to_orig;
  Hg.iter_nodes
    (fun v -> if not (keep v) then Alcotest.(check int) "dropped" (-1) ind.Induce.to_sub.(v))
    h;
  (* induced nets have >= 2 pins and validate *)
  Alcotest.(check bool) "validates" true (Hg.validate ind.Induce.sub = Ok ());
  Hg.iter_nets
    (fun e ->
      if Hg.net_degree ind.Induce.sub e < 2 then Alcotest.fail "degenerate net kept")
    ind.Induce.sub

let test_induce_net_restriction () =
  (* a 3-pin net with one pin dropped becomes a 2-pin net *)
  let b = Hg.Builder.create () in
  let x = Hg.Builder.add_cell b ~name:"x" ~size:1 in
  let y = Hg.Builder.add_cell b ~name:"y" ~size:1 in
  let z = Hg.Builder.add_cell b ~name:"z" ~size:1 in
  ignore (Hg.Builder.add_net b ~name:"n" [ x; y; z ]);
  let h = Hg.Builder.freeze b in
  let ind = Induce.induce h ~keep:(fun v -> v <> z) in
  Alcotest.(check int) "net kept" 1 (Hg.num_nets ind.Induce.sub);
  Alcotest.(check int) "restricted degree" 2 (Hg.net_degree ind.Induce.sub 0);
  (* with two pins dropped the net disappears *)
  let ind2 = Induce.induce h ~keep:(fun v -> v = x) in
  Alcotest.(check int) "net dropped" 0 (Hg.num_nets ind2.Induce.sub)

(* --- Mlrb ---------------------------------------------------------- *)

let check_feasible hg (r : Mlrb.outcome) device delta =
  let st = State.create hg ~k:r.Mlrb.k ~assign:(fun v -> r.Mlrb.assignment.(v)) in
  let s_max = Device.s_max device ~delta in
  for b = 0 to r.Mlrb.k - 1 do
    if State.size_of st b > s_max then Alcotest.failf "block %d oversize" b;
    if State.pins_of st b > device.Device.t_max then
      Alcotest.failf "block %d pins over" b
  done

let test_end_to_end () =
  let hg = circuit 3 in
  let r = Mlrb.partition hg Device.xc3020 Mlrb.default_config in
  Alcotest.(check bool) "feasible" true r.Mlrb.feasible;
  check_feasible hg r Device.xc3020 0.9;
  let m =
    Device.lower_bound Device.xc3020 ~delta:0.9 ~total_size:(Hg.total_size hg)
      ~total_pads:(Hg.num_pads hg)
  in
  Alcotest.(check bool) "k >= M" true (r.Mlrb.k >= m)

let test_single_block () =
  let hg = circuit ~cells:40 4 in
  let r = Mlrb.partition hg Device.xc3090 Mlrb.default_config in
  Alcotest.(check int) "one block" 1 r.Mlrb.k;
  Alcotest.(check bool) "feasible" true r.Mlrb.feasible

let test_deterministic () =
  let hg = circuit 5 in
  let a = Mlrb.partition hg Device.xc3020 Mlrb.default_config in
  let b = Mlrb.partition hg Device.xc3020 Mlrb.default_config in
  Alcotest.(check int) "same k" a.Mlrb.k b.Mlrb.k;
  Alcotest.(check (array int)) "same assignment" a.Mlrb.assignment b.Mlrb.assignment

let test_all_assigned () =
  let hg = circuit 6 in
  let r = Mlrb.partition hg Device.xc3042 Mlrb.default_config in
  Array.iter
    (fun b -> if b < 0 || b >= r.Mlrb.k then Alcotest.fail "bad block id")
    r.Mlrb.assignment

let test_cut_consistent () =
  let hg = circuit 7 in
  let r = Mlrb.partition hg Device.xc3020 Mlrb.default_config in
  let st = State.create hg ~k:r.Mlrb.k ~assign:(fun v -> r.Mlrb.assignment.(v)) in
  Alcotest.(check int) "cut" (State.cut_size st) r.Mlrb.cut

let test_infeasible_flagged () =
  (* a device too tiny for the probe range: must terminate with
     feasible=false rather than loop *)
  let hg = circuit ~cells:100 ~pads:60 8 in
  let tiny = { Device.dev_name = "TINY"; family = Device.XC3000; s_ds = 8; t_max = 4 } in
  let config = { Mlrb.default_config with delta = 1.0; max_extra_k = 2 } in
  let r = Mlrb.partition hg tiny config in
  Alcotest.(check bool) "flagged infeasible" false r.Mlrb.feasible

let prop_valid_partitions =
  QCheck.Test.make ~count:8 ~name:"MLRB returns valid feasible partitions"
    QCheck.(pair (int_range 60 250) (int_range 0 1000))
    (fun (cells, seed) ->
      let hg = circuit ~cells ~pads:(max 4 (cells / 10)) seed in
      let r = Mlrb.partition hg Device.xc3042 Mlrb.default_config in
      let st = State.create hg ~k:r.Mlrb.k ~assign:(fun v -> r.Mlrb.assignment.(v)) in
      let s_max = Device.s_max Device.xc3042 ~delta:0.9 in
      let ok = ref r.Mlrb.feasible in
      for b = 0 to r.Mlrb.k - 1 do
        if State.size_of st b > s_max || State.pins_of st b > 96 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "mlrb"
    [
      ( "induce",
        [
          Alcotest.test_case "identity" `Quick test_induce_identity;
          Alcotest.test_case "subset" `Quick test_induce_subset;
          Alcotest.test_case "net restriction" `Quick test_induce_net_restriction;
        ] );
      ( "mlrb",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "single block" `Quick test_single_block;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "all assigned" `Quick test_all_assigned;
          Alcotest.test_case "cut consistent" `Quick test_cut_consistent;
          Alcotest.test_case "infeasible flagged" `Quick test_infeasible_flagged;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_valid_partitions ]);
    ]
