(* Splitmix: the deterministic PRNG behind every stochastic component. *)

module R = Prng.Splitmix

let test_determinism () =
  let a = R.create 42 and b = R.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (R.bits64 a) (R.bits64 b)
  done

let test_seed_sensitivity () =
  let a = R.create 1 and b = R.create 2 in
  Alcotest.(check bool) "different streams" true (R.bits64 a <> R.bits64 b)

let test_copy_independent () =
  let a = R.create 7 in
  ignore (R.bits64 a);
  let b = R.copy a in
  Alcotest.(check int64) "copy continues identically" (R.bits64 a) (R.bits64 b);
  ignore (R.bits64 a);
  (* advancing a does not advance b *)
  let a' = R.bits64 a and b' = R.bits64 b in
  Alcotest.(check bool) "diverged" true (a' <> b')

let test_split () =
  let a = R.create 9 in
  let b = R.split a in
  Alcotest.(check bool) "split differs from parent" true (R.bits64 a <> R.bits64 b)

let test_int_bounds () =
  let r = R.create 3 in
  for _ = 1 to 1000 do
    let v = R.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of [0,17)"
  done

let test_int_invalid () =
  let r = R.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: bound <= 0")
    (fun () -> ignore (R.int r 0))

let test_int_in () =
  let r = R.create 5 in
  for _ = 1 to 1000 do
    let v = R.int_in r (-3) 4 in
    if v < -3 || v > 4 then Alcotest.fail "int_in out of range"
  done

let test_float_range () =
  let r = R.create 11 in
  for _ = 1 to 1000 do
    let f = R.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_shuffle_permutation () =
  let r = R.create 13 in
  let a = Array.init 50 (fun i -> i) in
  R.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_choose () =
  let r = R.create 17 in
  let a = [| 5; 6; 7 |] in
  for _ = 1 to 100 do
    let v = R.choose r a in
    if v < 5 || v > 7 then Alcotest.fail "choose outside array"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Splitmix.choose: empty array")
    (fun () -> ignore (R.choose r [||]))

let test_geometric () =
  let r = R.create 19 in
  for _ = 1 to 1000 do
    if R.geometric r 0.5 < 1 then Alcotest.fail "geometric < 1"
  done;
  (* p = 1 is always exactly 1 *)
  for _ = 1 to 10 do
    Alcotest.(check int) "p=1" 1 (R.geometric r 1.0)
  done

let test_geometric_mean () =
  let r = R.create 23 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + R.geometric r 0.25
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* true mean is 4; allow generous tolerance *)
  if mean < 3.6 || mean > 4.4 then
    Alcotest.failf "geometric mean %f too far from 4" mean

let prop_int_uniformish =
  QCheck.Test.make ~count:50 ~name:"int hits every residue of a small bound"
    QCheck.(int_range 2 8)
    (fun bound ->
      let r = R.create bound in
      let seen = Array.make bound false in
      for _ = 1 to 1000 do
        seen.(R.int r bound) <- true
      done;
      Array.for_all (fun b -> b) seen)

let () =
  Alcotest.run "prng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "geometric support" `Quick test_geometric;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_int_uniformish ]);
    ]
