(* Quotient (board-level view) and Dot (Graphviz export). *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Quotient = Partition.Quotient

(* blocks: {a,b}=0, {c}=1, {d,p}=2; nets n1={a,b} internal, n2={b,c},
   n3={a,c,d}, np={d,p} (pad net inside block 2) *)
let fixture () =
  let bld = Hg.Builder.create () in
  let a = Hg.Builder.add_cell bld ~name:"a" ~size:1 in
  let b = Hg.Builder.add_cell bld ~name:"b" ~size:1 in
  let c = Hg.Builder.add_cell bld ~name:"c" ~size:2 in
  let d = Hg.Builder.add_cell bld ~name:"d" ~size:1 in
  let p = Hg.Builder.add_pad bld ~name:"p" in
  ignore (Hg.Builder.add_net bld ~name:"n1" [ a; b ]);
  ignore (Hg.Builder.add_net bld ~name:"n2" [ b; c ]);
  ignore (Hg.Builder.add_net bld ~name:"n3" [ a; c; d ]);
  ignore (Hg.Builder.add_net bld ~name:"np" [ d; p ]);
  let h = Hg.Builder.freeze bld in
  State.create h ~k:3 ~assign:(fun v ->
      if v = a || v = b then 0 else if v = c then 1 else 2)

let test_interconnect () =
  let st = fixture () in
  let q = Quotient.interconnect st in
  (* 3 block nodes + 1 pad *)
  Alcotest.(check int) "cells" 3 (Hg.num_cells q);
  Alcotest.(check int) "pads" 1 (Hg.num_pads q);
  (* nets surviving: n2 (blocks 0,1), n3 (0,1,2), np (block2 + pad) *)
  Alcotest.(check int) "nets" 3 (Hg.num_nets q);
  (* block sizes preserved *)
  Alcotest.(check int) "total size" (Hg.total_size (State.hypergraph st))
    (Hg.total_size q)

let test_interconnect_pins_match () =
  (* the quotient's per-block pin counts equal the original partition's *)
  let spec = Netlist.Generator.default_spec ~name:"q" ~cells:120 ~pads:14 ~seed:9 in
  let h = Netlist.Generator.generate spec in
  let r = Fpart.Driver.run h Device.xc3042 in
  let st = Fpart.Driver.final_state r h in
  let q = Quotient.interconnect st in
  (* in the quotient, each block is one node: its pin count is its
     number of incident nets (every quotient net is cut or pad-carrying) *)
  let qst = Partition.State.create q ~k:r.Fpart.Driver.k ~assign:(fun v ->
      if Hg.is_pad q v then 0 (* pads land with block 0 for this check *)
      else v)
  in
  ignore qst;
  for b = 0 to r.Fpart.Driver.k - 1 do
    (* count quotient nets incident to block node b *)
    let incident = Hg.node_degree q b in
    Alcotest.(check int) (Printf.sprintf "block %d pins" b)
      (State.pins_of st b) incident
  done

let test_wire_matrix () =
  let st = fixture () in
  let m = Quotient.wire_matrix st in
  (* n2 joins (0,1); n3 joins (0,1),(0,2),(1,2) *)
  Alcotest.(check int) "0-1" 2 m.(0).(1);
  Alcotest.(check int) "0-2" 1 m.(0).(2);
  Alcotest.(check int) "1-2" 1 m.(1).(2);
  Alcotest.(check int) "symmetric" m.(1).(0) m.(0).(1);
  Alcotest.(check int) "diagonal" 0 m.(0).(0)

let test_io_utilization () =
  let st = fixture () in
  let l = Quotient.io_utilization st ~t_max:10 in
  Alcotest.(check int) "entries" 3 (List.length l);
  List.iter
    (fun (b, pins, cap, ratio) ->
      Alcotest.(check int) "pins consistent" (State.pins_of st b) pins;
      Alcotest.(check int) "cap" 10 cap;
      Alcotest.(check (float 1e-9)) "ratio" (float_of_int pins /. 10.0) ratio)
    l

let test_report_renders () =
  let st = fixture () in
  let s = Format.asprintf "%a" (fun ppf -> Quotient.pp_report ppf ~t_max:10) st in
  Alcotest.(check bool) "mentions devices" true
    (String.length s > 0 && String.sub s 0 10 = "board view")

(* --- Dot ----------------------------------------------------------- *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_dot_basic () =
  let st = fixture () in
  let h = State.hypergraph st in
  let dot = Hypergraph.Dot.to_dot h in
  Alcotest.(check bool) "graph header" true (contains ~affix:"graph" dot);
  Alcotest.(check bool) "cell node" true (contains ~affix:"\"a\"" dot);
  Alcotest.(check bool) "pad circle" true (contains ~affix:"circle" dot);
  (* 3-pin net n3 gets a junction *)
  Alcotest.(check bool) "junction" true (contains ~affix:"shape=point" dot)

let test_dot_colored () =
  let st = fixture () in
  let h = State.hypergraph st in
  let dot = Hypergraph.Dot.to_dot ~assignment:(State.assignment st) h in
  Alcotest.(check bool) "filled" true (contains ~affix:"fillcolor" dot)

let test_dot_bad_assignment () =
  let st = fixture () in
  let h = State.hypergraph st in
  Alcotest.check_raises "length" (Invalid_argument "Dot.to_dot: wrong assignment length")
    (fun () -> ignore (Hypergraph.Dot.to_dot ~assignment:[| 0 |] h))

let test_dot_file () =
  let st = fixture () in
  let h = State.hypergraph st in
  let path = Filename.temp_file "fpart_dot" ".dot" in
  Hypergraph.Dot.write_file path h;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "starts with graph" true (contains ~affix:"graph" line)

let prop_quotient_valid =
  QCheck.Test.make ~count:30 ~name:"quotient hypergraphs validate"
    QCheck.(triple (int_range 10 80) (int_range 2 5) (int_range 0 10_000))
    (fun (cells, k, seed) ->
      let spec = Netlist.Generator.default_spec ~name:"q" ~cells ~pads:4 ~seed in
      let h = Netlist.Generator.generate spec in
      let st = State.create h ~k ~assign:(fun v -> (v * 11) mod k) in
      Hg.validate (Quotient.interconnect st) = Ok ())

let () =
  Alcotest.run "quotient-dot"
    [
      ( "quotient",
        [
          Alcotest.test_case "interconnect" `Quick test_interconnect;
          Alcotest.test_case "pins match" `Quick test_interconnect_pins_match;
          Alcotest.test_case "wire matrix" `Quick test_wire_matrix;
          Alcotest.test_case "io utilization" `Quick test_io_utilization;
          Alcotest.test_case "report" `Quick test_report_renders;
        ] );
      ( "dot",
        [
          Alcotest.test_case "basic" `Quick test_dot_basic;
          Alcotest.test_case "colored" `Quick test_dot_colored;
          Alcotest.test_case "bad assignment" `Quick test_dot_bad_assignment;
          Alcotest.test_case "file" `Quick test_dot_file;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_quotient_valid ]);
    ]
