(* Report: table renderer, published data and the experiment harness. *)

module Table = Report.Table
module Published = Report.Published
module Experiments = Report.Experiments

let test_table_render () =
  let s =
    Table.render ~title:"T" ~header:[ "a"; "bb" ]
      ~align:[ Table.Left ]
      [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check string) "title" "T" (List.nth lines 0);
  Alcotest.(check string) "header" "a   bb" (List.nth lines 1);
  Alcotest.(check string) "row pads" "x    1" (List.nth lines 3 |> fun _ -> List.nth lines 3)

let test_table_alignment () =
  let s =
    Table.render ~title:"t" ~header:[ "col" ] ~align:[ Table.Right ] [ [ "7" ] ]
  in
  Alcotest.(check bool) "right aligned" true
    (String.length s > 0 && String.split_on_char '\n' s |> fun l -> List.nth l 3 = "  7")

let test_table_short_row () =
  (* rows narrower than the header are padded with blanks *)
  let s = Table.render ~title:"t" ~header:[ "a"; "b" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_wide_row_rejected () =
  Alcotest.check_raises "too wide" (Invalid_argument "Table.render: row wider than header")
    (fun () -> ignore (Table.render ~title:"t" ~header:[ "a" ] [ [ "x"; "y" ] ]))

(* Published data sanity: the totals printed in the paper. *)
let sum f rows =
  List.fold_left (fun acc r -> acc + Option.value ~default:0 (f r)) 0 rows

let test_published_table2_totals () =
  Alcotest.(check int) "kwayx total" 210 (sum (fun r -> r.Published.kwayx) Published.table2);
  Alcotest.(check int) "fbb total" 183 (sum (fun r -> r.Published.fbb_mw) Published.table2);
  Alcotest.(check int) "fpart total" 180 (sum (fun r -> r.Published.fpart) Published.table2);
  Alcotest.(check int) "M total" 172
    (List.fold_left (fun acc r -> acc + r.Published.m) 0 Published.table2)

let test_published_table3_totals () =
  Alcotest.(check int) "kwayx" 94 (sum (fun r -> r.Published.kwayx) Published.table3);
  Alcotest.(check int) "fbb" 84 (sum (fun r -> r.Published.fbb_mw) Published.table3);
  Alcotest.(check int) "fpart" 84 (sum (fun r -> r.Published.fpart) Published.table3);
  Alcotest.(check int) "M" 81
    (List.fold_left (fun acc r -> acc + r.Published.m) 0 Published.table3)

let test_published_table4_totals () =
  (* paper prints the table in two halves: FPART 14 + 27, M 14 + 26 *)
  Alcotest.(check int) "fpart" 41 (sum (fun r -> r.Published.fpart) Published.table4);
  Alcotest.(check int) "M" 40
    (List.fold_left (fun acc r -> acc + r.Published.m) 0 Published.table4)

let test_published_table5_totals () =
  Alcotest.(check int) "kwayx" 42 (sum (fun r -> r.Published.kwayx) Published.table5);
  Alcotest.(check int) "fbb" 40 (sum (fun r -> r.Published.fbb_mw) Published.table5);
  Alcotest.(check int) "fpart" 40 (sum (fun r -> r.Published.fpart) Published.table5);
  Alcotest.(check int) "M" 39
    (List.fold_left (fun acc r -> acc + r.Published.m) 0 Published.table5)

let test_published_find () =
  (match Published.find Published.table2 "s38584" with
  | Some r -> Alcotest.(check (option int)) "fpart" (Some 52) r.Published.fpart
  | None -> Alcotest.fail "missing s38584");
  Alcotest.(check bool) "unknown" true (Published.find Published.table2 "zzz" = None)

let test_published_cell () =
  Alcotest.(check string) "some" "7" (Published.cell (Some 7));
  Alcotest.(check string) "none" "-" (Published.cell None)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* Experiments: memoisation and small-table generation.  Use the
   smallest circuit/device pair to keep the suite fast. *)
let test_run_one_memoised () =
  let calls = ref 0 in
  let t = Experiments.create ~progress:(fun _ -> incr calls) () in
  let c = Option.get (Netlist.Mcnc.find "c3540") in
  let r1 = Experiments.run_one t Experiments.Fpart_algo c Device.xc3090 in
  let r2 = Experiments.run_one t Experiments.Fpart_algo c Device.xc3090 in
  Alcotest.(check int) "one fresh run" 1 !calls;
  Alcotest.(check int) "same k" r1.Experiments.k r2.Experiments.k;
  Alcotest.(check bool) "plausible k" true (r1.Experiments.k >= 1)

let test_figures_render () =
  let t = Experiments.create () in
  let f2 = Experiments.figure2 t in
  Alcotest.(check bool) "figure2 mentions semi-feasible" true
    (contains ~affix:"semi-feasible" f2);
  let f3 = Experiments.figure3 t in
  Alcotest.(check bool) "figure3 mentions remainder" true
    (contains ~affix:"remainder" f3)

let test_table1_renders () =
  let t = Experiments.create () in
  let s = Experiments.table1 t in
  List.iter
    (fun circuit ->
      Alcotest.(check bool) (circuit ^ " present") true
        (contains ~affix:circuit s))
    [ "c3540"; "s38584" ]

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "short row" `Quick test_table_short_row;
          Alcotest.test_case "wide row" `Quick test_table_wide_row_rejected;
        ] );
      ( "published",
        [
          Alcotest.test_case "table2 totals" `Quick test_published_table2_totals;
          Alcotest.test_case "table3 totals" `Quick test_published_table3_totals;
          Alcotest.test_case "table4 totals" `Quick test_published_table4_totals;
          Alcotest.test_case "table5 totals" `Quick test_published_table5_totals;
          Alcotest.test_case "find" `Quick test_published_find;
          Alcotest.test_case "cell" `Quick test_published_cell;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "memoised" `Quick test_run_one_memoised;
          Alcotest.test_case "figures render" `Quick test_figures_render;
          Alcotest.test_case "table1 renders" `Quick test_table1_renders;
        ] );
    ]
