(* Sa: the simulated-annealing baseline. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Sa = Anneal.Sa

let circuit ?(cells = 150) ?(pads = 18) seed =
  Netlist.Generator.generate
    (Netlist.Generator.default_spec ~name:"sa" ~cells ~pads ~seed)

(* a fast schedule for tests *)
let quick = { Sa.default_config with moves_factor = 3; initial_temp = 0.3; cooling = 0.85 }

let test_end_to_end () =
  let hg = circuit 1 in
  let r = Sa.partition hg Device.xc3020 quick in
  Alcotest.(check bool) "feasible" true r.Sa.feasible;
  let st = State.create hg ~k:r.Sa.k ~assign:(fun v -> r.Sa.assignment.(v)) in
  let s_max = Device.s_max Device.xc3020 ~delta:0.9 in
  for b = 0 to r.Sa.k - 1 do
    Alcotest.(check bool) "size" true (State.size_of st b <= s_max);
    Alcotest.(check bool) "pins" true (State.pins_of st b <= 64)
  done;
  let m =
    Device.lower_bound Device.xc3020 ~delta:0.9 ~total_size:(Hg.total_size hg)
      ~total_pads:(Hg.num_pads hg)
  in
  Alcotest.(check bool) "k >= M" true (r.Sa.k >= m)

let test_deterministic () =
  let hg = circuit 2 in
  let a = Sa.partition hg Device.xc3042 quick in
  let b = Sa.partition hg Device.xc3042 quick in
  Alcotest.(check int) "same k" a.Sa.k b.Sa.k;
  Alcotest.(check (array int)) "same assignment" a.Sa.assignment b.Sa.assignment

let test_seed_changes_search () =
  let hg = circuit 3 in
  let a = Sa.partition hg Device.xc3020 quick in
  let b = Sa.partition hg Device.xc3020 { quick with Sa.seed = quick.Sa.seed + 1 } in
  (* different random walks almost surely differ somewhere *)
  Alcotest.(check bool) "assignments differ" true (a.Sa.assignment <> b.Sa.assignment)

let test_trials_counted () =
  let hg = circuit 4 in
  let r = Sa.partition hg Device.xc3042 quick in
  Alcotest.(check bool) "trials > 0" true (r.Sa.trials > 0)

let test_cut_consistent () =
  let hg = circuit 5 in
  let r = Sa.partition hg Device.xc3020 quick in
  let st = State.create hg ~k:r.Sa.k ~assign:(fun v -> r.Sa.assignment.(v)) in
  Alcotest.(check int) "cut" (State.cut_size st) r.Sa.cut

let test_infeasible_flagged () =
  let hg = circuit ~cells:100 ~pads:60 6 in
  let tiny = { Device.dev_name = "TINY"; family = Device.XC3000; s_ds = 8; t_max = 3 } in
  let cfg = { quick with Sa.delta = 1.0; max_extra_k = 1 } in
  let r = Sa.partition hg tiny cfg in
  Alcotest.(check bool) "flagged" false r.Sa.feasible

let prop_valid =
  QCheck.Test.make ~count:6 ~name:"SA returns valid feasible partitions"
    QCheck.(pair (int_range 50 160) (int_range 0 1000))
    (fun (cells, seed) ->
      let hg = circuit ~cells ~pads:(max 4 (cells / 10)) seed in
      let r = Sa.partition hg Device.xc3042 quick in
      r.Sa.feasible
      && Array.for_all (fun b -> b >= 0 && b < r.Sa.k) r.Sa.assignment)

let () =
  Alcotest.run "sa"
    [
      ( "unit",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_search;
          Alcotest.test_case "trials counted" `Quick test_trials_counted;
          Alcotest.test_case "cut consistent" `Quick test_cut_consistent;
          Alcotest.test_case "infeasible flagged" `Quick test_infeasible_flagged;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_valid ]);
    ]
