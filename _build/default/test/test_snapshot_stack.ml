(* Snapshot and Solution_stack (paper section 3.6). *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Snapshot = Partition.Snapshot
module Stack = Partition.Solution_stack

let circuit () =
  let spec = Netlist.Generator.default_spec ~name:"s" ~cells:20 ~pads:3 ~seed:11 in
  Netlist.Generator.generate spec

let value ~f ~d =
  { Cost.feasible_blocks = f; distance = d; t_sum = 0; io_bal = 0.0 }

let test_capture_restore () =
  let h = circuit () in
  let st = State.create h ~k:3 ~assign:(fun v -> v mod 3) in
  let snap = Snapshot.capture st ~value:(value ~f:1 ~d:0.5) in
  (* scramble *)
  for v = 0 to Hg.num_nodes h - 1 do
    State.move st v 0
  done;
  Snapshot.restore snap st;
  Alcotest.(check (array int)) "assignment restored" snap.Snapshot.assign
    (State.assignment st);
  match State.check st with Ok () -> () | Error e -> Alcotest.fail e

let test_snapshot_frozen () =
  let h = circuit () in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  let snap = Snapshot.capture st ~value:(value ~f:1 ~d:0.0) in
  State.move st 0 1;
  Alcotest.(check int) "capture is a copy" 0 snap.Snapshot.assign.(0)

let test_same_assignment () =
  let h = circuit () in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  let a = Snapshot.capture st ~value:(value ~f:1 ~d:0.0) in
  let b = Snapshot.capture st ~value:(value ~f:0 ~d:9.0) in
  Alcotest.(check bool) "same" true (Snapshot.same_assignment a b);
  State.move st 0 1;
  let c = Snapshot.capture st ~value:(value ~f:1 ~d:0.0) in
  Alcotest.(check bool) "different" false (Snapshot.same_assignment a c)

let test_snapshot_compare () =
  let h = circuit () in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  let good = Snapshot.capture st ~value:(value ~f:2 ~d:0.0) in
  let bad = Snapshot.capture st ~value:(value ~f:1 ~d:1.0) in
  Alcotest.(check bool) "ordered" true (Snapshot.compare good bad < 0)

(* Stack tests use distinct assignments via a counter cell. *)
let snap_with st i value =
  State.move st 0 i;
  Snapshot.capture st ~value

let test_stack_ordering () =
  let h = circuit () in
  let st = State.create h ~k:4 ~assign:(fun _ -> 0) in
  let stack = Stack.create ~depth:3 in
  let s1 = snap_with st 1 (value ~f:1 ~d:0.5) in
  let s2 = snap_with st 2 (value ~f:1 ~d:0.1) in
  let s3 = snap_with st 3 (value ~f:1 ~d:0.9) in
  Alcotest.(check bool) "offer s1" true (Stack.offer stack s1);
  Alcotest.(check bool) "offer s2" true (Stack.offer stack s2);
  Alcotest.(check bool) "offer s3" true (Stack.offer stack s3);
  (match Stack.best stack with
  | Some b -> Alcotest.(check (float 0.0)) "best is s2" 0.1 b.Snapshot.value.Cost.distance
  | None -> Alcotest.fail "empty");
  let ds = List.map (fun s -> s.Snapshot.value.Cost.distance) (Stack.contents stack) in
  Alcotest.(check (list (float 0.0))) "best first" [ 0.1; 0.5; 0.9 ] ds

let test_stack_bounded () =
  let h = circuit () in
  let st = State.create h ~k:4 ~assign:(fun _ -> 0) in
  let stack = Stack.create ~depth:2 in
  ignore (Stack.offer stack (snap_with st 1 (value ~f:1 ~d:0.5)));
  ignore (Stack.offer stack (snap_with st 2 (value ~f:1 ~d:0.3)));
  (* worse than the tail and stack full: rejected *)
  Alcotest.(check bool) "reject worse" false
    (Stack.offer stack (snap_with st 3 (value ~f:1 ~d:0.9)));
  (* better: accepted, evicting the tail *)
  Alcotest.(check bool) "accept better" true
    (Stack.offer stack (snap_with st 0 (value ~f:1 ~d:0.1)));
  Alcotest.(check int) "still depth 2" 2 (Stack.length stack);
  let ds = List.map (fun s -> s.Snapshot.value.Cost.distance) (Stack.contents stack) in
  Alcotest.(check (list (float 0.0))) "kept the best two" [ 0.1; 0.3 ] ds

let test_stack_dedup () =
  let h = circuit () in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  let stack = Stack.create ~depth:4 in
  let s = Snapshot.capture st ~value:(value ~f:1 ~d:0.5) in
  let s' = Snapshot.capture st ~value:(value ~f:1 ~d:0.2) in
  Alcotest.(check bool) "first" true (Stack.offer stack s);
  Alcotest.(check bool) "duplicate assignment rejected" false (Stack.offer stack s');
  Alcotest.(check int) "one entry" 1 (Stack.length stack)

let test_stack_clear () =
  let h = circuit () in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  let stack = Stack.create ~depth:2 in
  ignore (Stack.offer stack (Snapshot.capture st ~value:(value ~f:1 ~d:0.5)));
  Stack.clear stack;
  Alcotest.(check int) "cleared" 0 (Stack.length stack);
  Alcotest.(check bool) "no best" true (Stack.best stack = None)

let test_stack_depth_invalid () =
  Alcotest.check_raises "depth 0" (Invalid_argument "Solution_stack.create: depth < 1")
    (fun () -> ignore (Stack.create ~depth:0))

let prop_stack_sorted_and_bounded =
  QCheck.Test.make ~count:100 ~name:"stack stays sorted, unique and bounded"
    QCheck.(pair (int_range 1 6) (small_list (pair (int_bound 4) (int_bound 100))))
    (fun (depth, offers) ->
      let h = circuit () in
      let st = State.create h ~k:5 ~assign:(fun _ -> 0) in
      let stack = Stack.create ~depth in
      List.iteri
        (fun i (f, d100) ->
          State.move st (i mod Hg.num_nodes h) (i mod 5);
          let snap =
            Snapshot.capture st ~value:(value ~f ~d:(float_of_int d100 /. 100.0))
          in
          ignore (Stack.offer stack snap))
        offers;
      let contents = Stack.contents stack in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Snapshot.compare a b <= 0 && sorted rest
        | _ -> true
      in
      List.length contents <= depth && sorted contents)

let () =
  Alcotest.run "snapshot-stack"
    [
      ( "snapshot",
        [
          Alcotest.test_case "capture/restore" `Quick test_capture_restore;
          Alcotest.test_case "frozen copy" `Quick test_snapshot_frozen;
          Alcotest.test_case "same_assignment" `Quick test_same_assignment;
          Alcotest.test_case "compare" `Quick test_snapshot_compare;
        ] );
      ( "stack",
        [
          Alcotest.test_case "ordering" `Quick test_stack_ordering;
          Alcotest.test_case "bounded" `Quick test_stack_bounded;
          Alcotest.test_case "dedup" `Quick test_stack_dedup;
          Alcotest.test_case "clear" `Quick test_stack_clear;
          Alcotest.test_case "invalid depth" `Quick test_stack_depth_invalid;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_stack_sorted_and_bounded ] );
    ]
