(* State: incremental k-way partition bookkeeping.  The key property is
   that every cached quantity (sizes, pins, pads, spans, cut, T_SUM)
   stays equal to a from-scratch recomputation under arbitrary move
   sequences — State.check does the recomputation. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State

(* Reference circuit:

     pads : p0 p1
     cells: a b c d (unit size)
     nets : n0={p0,a} n1={a,b} n2={b,c,d} n3={d,p1}                  *)
let fixture () =
  let bld = Hg.Builder.create () in
  let a = Hg.Builder.add_cell bld ~name:"a" ~size:1 in
  let b = Hg.Builder.add_cell bld ~name:"b" ~size:1 in
  let c = Hg.Builder.add_cell bld ~name:"c" ~size:1 in
  let d = Hg.Builder.add_cell bld ~name:"d" ~size:1 in
  let p0 = Hg.Builder.add_pad bld ~name:"p0" in
  let p1 = Hg.Builder.add_pad bld ~name:"p1" in
  ignore (Hg.Builder.add_net bld ~name:"n0" [ p0; a ]);
  ignore (Hg.Builder.add_net bld ~name:"n1" [ a; b ]);
  ignore (Hg.Builder.add_net bld ~name:"n2" [ b; c; d ]);
  ignore (Hg.Builder.add_net bld ~name:"n3" [ d; p1 ]);
  (Hg.Builder.freeze bld, (a, b, c, d, p0, p1))

let test_initial_bookkeeping () =
  let h, (a, b, _, _, p0, _) = fixture () in
  (* blocks: {a,b,p0} = 0, {c,d,p1} = 1 *)
  let st =
    State.create h ~k:2 ~assign:(fun v -> if v = a || v = b || v = p0 then 0 else 1)
  in
  Alcotest.(check int) "size 0" 2 (State.size_of st 0);
  Alcotest.(check int) "size 1" 2 (State.size_of st 1);
  Alcotest.(check int) "pads 0" 1 (State.pads_of st 0);
  Alcotest.(check int) "pads 1" 1 (State.pads_of st 1);
  Alcotest.(check int) "cells 0" 3 (State.cells_of st 0);
  (* pins: block0 sees n0 (pad inside) and n2 (cut); block1 sees n2 and n3 *)
  Alcotest.(check int) "pins 0" 2 (State.pins_of st 0);
  Alcotest.(check int) "pins 1" 2 (State.pins_of st 1);
  Alcotest.(check int) "cut" 1 (State.cut_size st);
  Alcotest.(check int) "t_sum" 4 (State.total_pins st)

let test_pad_pin_model () =
  let h, _ = fixture () in
  (* everything in one block: no cut nets, but both pad nets pay a pin *)
  let st = State.create h ~k:1 ~assign:(fun _ -> 0) in
  Alcotest.(check int) "cut" 0 (State.cut_size st);
  Alcotest.(check int) "pins = pad nets" 2 (State.pins_of st 0)

let test_move_updates () =
  let h, (a, b, c, d, p0, p1) = fixture () in
  let st =
    State.create h ~k:2 ~assign:(fun v -> if v = a || v = b || v = p0 then 0 else 1)
  in
  State.move st b 1;
  (* now {a,p0} vs {b,c,d,p1}: only n1 is cut *)
  Alcotest.(check int) "cut after move" 1 (State.cut_size st);
  Alcotest.(check int) "size 0" 1 (State.size_of st 0);
  Alcotest.(check int) "size 1" 3 (State.size_of st 1);
  (* block0 pins: n0 (pad), n1 (cut) = 2; block1: n1 (cut), n3 (pad) = 2 *)
  Alcotest.(check int) "pins 0" 2 (State.pins_of st 0);
  Alcotest.(check int) "pins 1" 2 (State.pins_of st 1);
  (match State.check st with Ok () -> () | Error e -> Alcotest.fail e);
  ignore (c, d, p1)

let test_move_noop () =
  let h, (a, _, _, _, _, _) = fixture () in
  let st = State.create h ~k:2 ~assign:(fun v -> v land 1) in
  let cut = State.cut_size st in
  State.move st a (State.block_of st a);
  Alcotest.(check int) "noop keeps cut" cut (State.cut_size st)

let test_move_pad () =
  let h, (_, _, _, _, p0, _) = fixture () in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  State.move st p0 1;
  (* n0 = {p0, a} becomes cut: block1 pays a pin (pad inside), block0
     pays one too (cut net) *)
  Alcotest.(check int) "cut" 1 (State.cut_size st);
  Alcotest.(check int) "pads moved" 1 (State.pads_of st 1);
  Alcotest.(check int) "size unchanged" 0 (State.size_of st 1);
  match State.check st with Ok () -> () | Error e -> Alcotest.fail e

let test_cut_gain_matches_move () =
  let h, (a, b, c, d, p0, p1) = fixture () in
  let st = State.create h ~k:2 ~assign:(fun v -> if v = a || v = p0 then 0 else 1) in
  List.iter
    (fun v ->
      let target = 1 - State.block_of st v in
      let predicted = State.cut_gain st v target in
      let before = State.cut_size st in
      State.move st v target;
      let actual = before - State.cut_size st in
      Alcotest.(check int) (Printf.sprintf "gain of node %d" v) predicted actual;
      State.move st v (1 - target))
    [ a; b; c; d; p0; p1 ]

let test_pin_gain_matches_move () =
  let h, (a, b, c, d, p0, p1) = fixture () in
  let st = State.create h ~k:2 ~assign:(fun v -> if v = a || v = p0 then 0 else 1) in
  List.iter
    (fun v ->
      let target = 1 - State.block_of st v in
      let predicted = State.pin_gain st v target in
      let before = State.total_pins st in
      State.move st v target;
      let actual = before - State.total_pins st in
      Alcotest.(check int) (Printf.sprintf "pin gain of node %d" v) predicted actual;
      State.move st v (1 - target))
    [ a; b; c; d; p0; p1 ]

let test_net_span_counts () =
  let h, (a, b, c, d, _, _) = fixture () in
  let st = State.create h ~k:4 ~assign:(fun _ -> 0) in
  State.move st b 1;
  State.move st c 2;
  State.move st d 3;
  (* n2 = {b,c,d} spans blocks 1,2,3 *)
  let n2 = 2 in
  Alcotest.(check int) "span" 3 (State.net_span st n2);
  Alcotest.(check int) "count in 1" 1 (State.net_count st n2 1);
  Alcotest.(check int) "count in 0" 0 (State.net_count st n2 0);
  ignore a

let test_copy_independent () =
  let h, (a, _, _, _, _, _) = fixture () in
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  let st2 = State.copy st in
  State.move st a 1;
  Alcotest.(check int) "copy untouched" 0 (State.block_of st2 a);
  match State.check st2 with Ok () -> () | Error e -> Alcotest.fail e

let test_assignment_roundtrip () =
  let h, (a, b, _, _, _, _) = fixture () in
  let st = State.create h ~k:3 ~assign:(fun _ -> 0) in
  State.move st a 1;
  State.move st b 2;
  let saved = State.assignment st in
  State.move st a 0;
  State.move st b 0;
  State.load_assignment st saved;
  Alcotest.(check int) "a restored" 1 (State.block_of st a);
  Alcotest.(check int) "b restored" 2 (State.block_of st b);
  match State.check st with Ok () -> () | Error e -> Alcotest.fail e

let test_nodes_of_block () =
  let h, (a, b, _, _, _, _) = fixture () in
  let st = State.create h ~k:2 ~assign:(fun v -> if v = a || v = b then 1 else 0) in
  Alcotest.(check (list int)) "block 1" [ a; b ] (State.nodes_of_block st 1)

let test_create_errors () =
  let h, _ = fixture () in
  Alcotest.check_raises "k < 1" (Invalid_argument "State.create: k < 1") (fun () ->
      ignore (State.create h ~k:0 ~assign:(fun _ -> 0)));
  (try
     ignore (State.create h ~k:2 ~assign:(fun _ -> 5));
     Alcotest.fail "expected out-of-range error"
   with Invalid_argument _ -> ());
  let st = State.create h ~k:2 ~assign:(fun _ -> 0) in
  Alcotest.check_raises "move out of range"
    (Invalid_argument "State.move: block out of range") (fun () -> State.move st 0 7)

(* The central property: random move sequences keep every cache exact. *)
let prop_incremental_exact =
  QCheck.Test.make ~count:60 ~name:"incremental caches match recomputation"
    QCheck.(triple (int_range 4 60) (int_range 2 6) (int_range 0 100_000))
    (fun (cells, k, seed) ->
      let spec = Netlist.Generator.default_spec ~name:"s" ~cells ~pads:3 ~seed in
      let h = Netlist.Generator.generate spec in
      let rng = Prng.Splitmix.create (seed + 1) in
      let st = State.create h ~k ~assign:(fun _ -> 0) in
      let n = Hg.num_nodes h in
      for _ = 1 to 120 do
        State.move st (Prng.Splitmix.int rng n) (Prng.Splitmix.int rng k)
      done;
      State.check st = Ok ())

let prop_gains_match_moves =
  QCheck.Test.make ~count:40 ~name:"cut_gain and pin_gain predict moves"
    QCheck.(pair (int_range 6 50) (int_range 0 10_000))
    (fun (cells, seed) ->
      let spec = Netlist.Generator.default_spec ~name:"s" ~cells ~pads:2 ~seed in
      let h = Netlist.Generator.generate spec in
      let rng = Prng.Splitmix.create (seed * 3) in
      let k = 3 in
      let st = State.create h ~k ~assign:(fun v -> v mod k) in
      let ok = ref true in
      for _ = 1 to 60 do
        let v = Prng.Splitmix.int rng (Hg.num_nodes h) in
        let b = Prng.Splitmix.int rng k in
        let cg = State.cut_gain st v b in
        let pg = State.pin_gain st v b in
        let cut0 = State.cut_size st and pins0 = State.total_pins st in
        State.move st v b;
        if cut0 - State.cut_size st <> cg then ok := false;
        if pins0 - State.total_pins st <> pg then ok := false
      done;
      !ok)

let prop_block_sums_invariant =
  QCheck.Test.make ~count:40 ~name:"sizes/cells/pads sum to circuit totals"
    QCheck.(pair (int_range 4 60) (int_range 0 10_000))
    (fun (cells, seed) ->
      let spec = Netlist.Generator.default_spec ~name:"s" ~cells ~pads:4 ~seed in
      let h = Netlist.Generator.generate spec in
      let rng = Prng.Splitmix.create seed in
      let k = 4 in
      let st = State.create h ~k ~assign:(fun v -> v mod k) in
      for _ = 1 to 80 do
        State.move st (Prng.Splitmix.int rng (Hg.num_nodes h)) (Prng.Splitmix.int rng k)
      done;
      let sum f = List.fold_left (fun acc i -> acc + f i) 0 (List.init k Fun.id) in
      sum (State.size_of st) = Hg.total_size h
      && sum (State.cells_of st) = Hg.num_nodes h
      && sum (State.pads_of st) = Hg.num_pads h)

let () =
  Alcotest.run "state"
    [
      ( "unit",
        [
          Alcotest.test_case "initial bookkeeping" `Quick test_initial_bookkeeping;
          Alcotest.test_case "pad pin model" `Quick test_pad_pin_model;
          Alcotest.test_case "move updates" `Quick test_move_updates;
          Alcotest.test_case "move noop" `Quick test_move_noop;
          Alcotest.test_case "move pad" `Quick test_move_pad;
          Alcotest.test_case "cut_gain matches move" `Quick test_cut_gain_matches_move;
          Alcotest.test_case "pin_gain matches move" `Quick test_pin_gain_matches_move;
          Alcotest.test_case "net span" `Quick test_net_span_counts;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "assignment roundtrip" `Quick test_assignment_roundtrip;
          Alcotest.test_case "nodes_of_block" `Quick test_nodes_of_block;
          Alcotest.test_case "create errors" `Quick test_create_errors;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_incremental_exact; prop_gains_match_moves; prop_block_sums_invariant ]
      );
    ]
