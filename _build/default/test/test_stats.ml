(* Stats: hypergraph summaries, external-net counting, Rent estimate. *)

module Hg = Hypergraph.Hgraph
module Stats = Hypergraph.Stats

let small () =
  let b = Hg.Builder.create () in
  let a = Hg.Builder.add_cell b ~name:"a" ~size:2 in
  let c = Hg.Builder.add_cell b ~name:"c" ~size:1 in
  let d = Hg.Builder.add_cell b ~name:"d" ~size:1 in
  let p = Hg.Builder.add_pad b ~name:"p" in
  ignore (Hg.Builder.add_net b ~name:"n0" [ a; c ]);
  ignore (Hg.Builder.add_net b ~name:"n1" [ a; c; d ]);
  ignore (Hg.Builder.add_net b ~name:"n2" [ d; p ]);
  (Hg.Builder.freeze b, a, c, d, p)

let test_summary () =
  let h, _, _, _, _ = small () in
  let s = Stats.summary h in
  Alcotest.(check int) "nodes" 4 s.Stats.nodes;
  Alcotest.(check int) "cells" 3 s.Stats.cells;
  Alcotest.(check int) "pads" 1 s.Stats.pads;
  Alcotest.(check int) "nets" 3 s.Stats.nets;
  Alcotest.(check int) "total size" 4 s.Stats.total_size;
  Alcotest.(check int) "max net degree" 3 s.Stats.max_net_degree;
  Alcotest.(check (float 1e-9)) "avg net degree" (7.0 /. 3.0) s.Stats.avg_net_degree;
  Alcotest.(check int) "components" 1 s.Stats.components

let test_histogram () =
  let h, _, _, _, _ = small () in
  let hist = Stats.net_degree_histogram h in
  Alcotest.(check int) "2-pin nets" 2 hist.(2);
  Alcotest.(check int) "3-pin nets" 1 hist.(3)

let test_external_nets () =
  let h, a, c, d, p = small () in
  (* {a, c}: n0 internal, n1 crosses to d -> 1 external net *)
  Alcotest.(check int) "a,c" 1 (Stats.external_nets h [ a; c ]);
  (* {a, c, d}: n2 crosses to pad -> 1 *)
  Alcotest.(check int) "a,c,d" 1 (Stats.external_nets h [ a; c; d ]);
  (* everything incl. pad: n2 has a pad inside -> still 1 (pad pin) *)
  Alcotest.(check int) "all" 1 (Stats.external_nets h [ a; c; d; p ]);
  (* {d}: n1 crosses, n2 crosses -> 2 *)
  Alcotest.(check int) "d" 2 (Stats.external_nets h [ d ])

let test_external_nets_empty () =
  let h, _, _, _, _ = small () in
  Alcotest.(check int) "empty set" 0 (Stats.external_nets h [])

let test_rent_small_is_none () =
  let h, _, _, _, _ = small () in
  Alcotest.(check bool) "too small" true
    (Stats.rent_exponent h ~rng_seed:1 ~samples:3 = None)

let test_rent_generated () =
  let spec = Netlist.Generator.default_spec ~name:"r" ~cells:600 ~pads:40 ~seed:5 in
  let h = Netlist.Generator.generate spec in
  match Stats.rent_exponent h ~rng_seed:11 ~samples:4 with
  | None -> Alcotest.fail "expected a Rent estimate on a 600-cell circuit"
  | Some p ->
    (* Rent exponents of realistic circuits live well inside (0, 1). *)
    if p < 0.1 || p > 1.1 then Alcotest.failf "implausible Rent exponent %f" p

let prop_external_vs_bruteforce =
  QCheck.Test.make ~count:60 ~name:"external_nets matches brute force"
    QCheck.(pair (int_range 6 40) (int_range 1 1000))
    (fun (n, seed) ->
      let spec = Netlist.Generator.default_spec ~name:"x" ~cells:n ~pads:3 ~seed in
      let h = Netlist.Generator.generate spec in
      let rng = Prng.Splitmix.create (seed * 7) in
      let inside =
        Hg.fold_nodes
          (fun acc v -> if Prng.Splitmix.bool rng then v :: acc else acc)
          [] h
      in
      let member = Array.make (Hg.num_nodes h) false in
      List.iter (fun v -> member.(v) <- true) inside;
      let brute =
        Hg.fold_nets
          (fun acc e ->
            let pins = Hg.pins h e in
            let has_in = Array.exists (fun v -> member.(v)) pins in
            let has_out = Array.exists (fun v -> not member.(v)) pins in
            let pad_in = Array.exists (fun v -> member.(v) && Hg.is_pad h v) pins in
            if has_in && (has_out || pad_in) then acc + 1 else acc)
          0 h
      in
      Stats.external_nets h inside = brute)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "external nets" `Quick test_external_nets;
          Alcotest.test_case "external empty" `Quick test_external_nets_empty;
          Alcotest.test_case "rent too small" `Quick test_rent_small_is_none;
          Alcotest.test_case "rent generated" `Quick test_rent_generated;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_external_vs_bruteforce ] );
    ]
