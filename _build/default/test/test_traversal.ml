(* Traversal: BFS distances, components, eccentric seeds. *)

module Hg = Hypergraph.Hgraph
module T = Hypergraph.Traversal

(* A path of cells c0 - c1 - c2 - c3 (2-pin nets), plus an isolated pair
   c4 - c5 in a second component. *)
let path_plus_island () =
  let b = Hg.Builder.create () in
  let c = Array.init 6 (fun i -> Hg.Builder.add_cell b ~name:(Printf.sprintf "c%d" i) ~size:1) in
  ignore (Hg.Builder.add_net b ~name:"e01" [ c.(0); c.(1) ]);
  ignore (Hg.Builder.add_net b ~name:"e12" [ c.(1); c.(2) ]);
  ignore (Hg.Builder.add_net b ~name:"e23" [ c.(2); c.(3) ]);
  ignore (Hg.Builder.add_net b ~name:"e45" [ c.(4); c.(5) ]);
  (Hg.Builder.freeze b, c)

let test_bfs_distances () =
  let h, c = path_plus_island () in
  let d = T.bfs_distances h c.(0) in
  Alcotest.(check int) "d(c0)" 0 d.(c.(0));
  Alcotest.(check int) "d(c1)" 1 d.(c.(1));
  Alcotest.(check int) "d(c2)" 2 d.(c.(2));
  Alcotest.(check int) "d(c3)" 3 d.(c.(3));
  Alcotest.(check int) "unreachable" (-1) d.(c.(4))

let test_farthest () =
  let h, c = path_plus_island () in
  let u, dist = T.farthest_node h c.(0) in
  Alcotest.(check int) "farthest node" c.(3) u;
  Alcotest.(check int) "distance" 3 dist

let test_farthest_isolated () =
  let b = Hg.Builder.create () in
  let x = Hg.Builder.add_cell b ~name:"x" ~size:1 in
  let _ = Hg.Builder.add_net b ~name:"n" [ x ] in
  let h = Hg.Builder.freeze b in
  let u, dist = T.farthest_node h x in
  Alcotest.(check int) "self" x u;
  Alcotest.(check int) "zero" 0 dist

let test_components () =
  let h, c = path_plus_island () in
  let comp, count = T.components h in
  Alcotest.(check int) "two components" 2 count;
  Alcotest.(check bool) "same component" true (comp.(c.(0)) = comp.(c.(3)));
  Alcotest.(check bool) "different components" true (comp.(c.(0)) <> comp.(c.(4)));
  Alcotest.(check bool) "not connected" false (T.is_connected h)

let test_hyperedge_distance () =
  (* one 4-pin net: all pins at distance 1 from each other *)
  let b = Hg.Builder.create () in
  let c = Array.init 4 (fun i -> Hg.Builder.add_cell b ~name:(string_of_int i) ~size:1) in
  ignore (Hg.Builder.add_net b ~name:"n" (Array.to_list c));
  let h = Hg.Builder.freeze b in
  let d = T.bfs_distances h c.(0) in
  for i = 1 to 3 do
    Alcotest.(check int) "hyperedge hop" 1 d.(c.(i))
  done

let test_eccentric_pair () =
  let h, c = path_plus_island () in
  let a, b = T.eccentric_pair h c.(1) in
  (* from c1 the farthest is c3 (hmm, distance 2) or c0+c3... BFS from c1
     reaches c3 at distance 2, c0 at 1; farthest = c3; from c3 farthest = c0 *)
  Alcotest.(check int) "first sweep" c.(3) a;
  Alcotest.(check int) "second sweep" c.(0) b

let prop_components_cover =
  QCheck.Test.make ~count:50 ~name:"component count is within [1, nodes]"
    QCheck.(int_range 2 80)
    (fun n ->
      let spec =
        Netlist.Generator.default_spec ~name:"t" ~cells:n ~pads:2 ~seed:n
      in
      let h = Netlist.Generator.generate spec in
      let _, count = T.components h in
      count >= 1 && count <= Hg.num_nodes h)

let prop_generated_connected =
  QCheck.Test.make ~count:30 ~name:"generator output is connected"
    QCheck.(int_range 8 200)
    (fun n ->
      let spec =
        Netlist.Generator.default_spec ~name:"t" ~cells:n ~pads:4 ~seed:(n * 3)
      in
      T.is_connected (Netlist.Generator.generate spec))

let () =
  Alcotest.run "traversal"
    [
      ( "unit",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "farthest" `Quick test_farthest;
          Alcotest.test_case "farthest isolated" `Quick test_farthest_isolated;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "hyperedge distance" `Quick test_hyperedge_distance;
          Alcotest.test_case "eccentric pair" `Quick test_eccentric_pair;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_components_cover; prop_generated_connected ] );
    ]
