(* Vec: the resizable vector used by hypergraph builders. *)

module Vec = Hypergraph.Vec

let test_empty () =
  let v = Vec.create () in
  Alcotest.(check int) "length" 0 (Vec.length v);
  Alcotest.(check (array int)) "to_array" [||] (Vec.to_array v)

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" (99 * 99) (Vec.get v 99)

let test_set () =
  let v = Vec.make 3 7 in
  Vec.set v 1 42;
  Alcotest.(check (array int)) "after set" [| 7; 42; 7 |] (Vec.to_array v)

let test_out_of_bounds () =
  let v = Vec.make 2 0 in
  Alcotest.check_raises "get -1" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)));
  Alcotest.check_raises "get 2" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 2));
  Alcotest.check_raises "set 5" (Invalid_argument "Vec: index out of bounds")
    (fun () -> Vec.set v 5 1)

let test_iter_order () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 3; 1; 4; 1; 5 ];
  let out = ref [] in
  Vec.iter (fun x -> out := x :: !out) v;
  Alcotest.(check (list int)) "push order" [ 3; 1; 4; 1; 5 ] (List.rev !out)

let test_iteri () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 10; 20; 30 ];
  let out = ref [] in
  Vec.iteri (fun i x -> out := (i, x) :: !out) v;
  Alcotest.(check (list (pair int int)))
    "indexed" [ (0, 10); (1, 20); (2, 30) ] (List.rev !out)

let test_fold () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "sum" 10 (Vec.fold ( + ) 0 v)

let test_clear () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.push v 2;
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check int) "reusable" 9 (Vec.get v 0)

let test_make () =
  let v = Vec.make 4 'x' in
  Alcotest.(check int) "length" 4 (Vec.length v);
  Vec.push v 'y';
  Alcotest.(check char) "pushed after make" 'y' (Vec.get v 4)

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"to_array reflects pushes"
    QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_array v = Array.of_list xs)

let prop_growth =
  QCheck.Test.make ~count:50 ~name:"length equals number of pushes"
    QCheck.(int_bound 2000)
    (fun n ->
      let v = Vec.create () in
      for i = 1 to n do
        Vec.push v i
      done;
      Vec.length v = n)

let () =
  Alcotest.run "vec"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "push/get" `Quick test_push_get;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "iteri" `Quick test_iteri;
          Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "make" `Quick test_make;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_growth ] );
    ]
