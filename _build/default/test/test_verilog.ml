(* Verilog: structural subset reader/writer. *)

module Hg = Hypergraph.Hgraph
module V = Netlist.Verilog

let parse_ok text =
  match V.parse_string text with
  | Ok m -> m
  | Error e -> Alcotest.failf "parse failed: %s" e

let sample =
  {|// tiny circuit
module tiny (a, b, y);
  input a, b;
  output y;
  wire t1;
  AND2 g1 (a, b, t1);
  INV g2 (t1, y);
endmodule
|}

let test_parse_basic () =
  let m = parse_ok sample in
  Alcotest.(check string) "name" "tiny" m.V.mod_name;
  let h = m.V.graph in
  Alcotest.(check int) "cells" 2 (Hg.num_cells h);
  Alcotest.(check int) "pads" 3 (Hg.num_pads h);
  (* nets a, b, t1, y *)
  Alcotest.(check int) "nets" 4 (Hg.num_nets h)

let test_named_connections () =
  let m =
    parse_ok
      "module n (a, y);\n input a;\n output y;\n BUF u1 (.A(a), .Y(y));\nendmodule\n"
  in
  Alcotest.(check int) "cells" 1 (Hg.num_cells m.V.graph);
  Alcotest.(check int) "nets" 2 (Hg.num_nets m.V.graph)

let test_parameters () =
  let m =
    parse_ok
      "module p (a, y);\n input a;\n output y;\n CELL #(.SIZE(3), .FLOPS(2)) u (a, y);\nendmodule\n"
  in
  let h = m.V.graph in
  Alcotest.(check int) "size" 3 (Hg.total_size h);
  Alcotest.(check int) "flops" 2 (Hg.total_flops h)

let test_assign_is_buffer () =
  let m =
    parse_ok "module a (x, y);\n input x;\n output y;\n assign y = x;\nendmodule\n"
  in
  Alcotest.(check int) "buffer cell" 1 (Hg.num_cells m.V.graph)

let test_comments () =
  let m =
    parse_ok
      "module c (a, y); // ports\n input a; /* multi\nline */ output y;\n BUF u (a, y);\nendmodule\n"
  in
  Alcotest.(check int) "cells" 1 (Hg.num_cells m.V.graph)

let test_inout () =
  let m =
    parse_ok "module io (a, b);\n input a;\n inout b;\n BUF u (a, b);\nendmodule\n"
  in
  Alcotest.(check int) "pads incl. inout" 2 (Hg.num_pads m.V.graph)

let test_unconnected_port () =
  let m =
    parse_ok
      "module u (a, y);\n input a;\n output y;\n C g (.A(a), .B(), .Y(y));\nendmodule\n"
  in
  Alcotest.(check int) "cells" 1 (Hg.num_cells m.V.graph)

let test_errors () =
  let is_line_err = function
    | Error e -> String.length e >= 4 && String.sub e 0 4 = "line"
    | Ok _ -> false
  in
  Alcotest.(check bool) "no module" true
    (is_line_err (V.parse_string "wire x;\n"));
  Alcotest.(check bool) "missing endmodule" true
    (is_line_err (V.parse_string "module m (a);\n input a;\n"));
  Alcotest.(check bool) "bad decl" true
    (is_line_err (V.parse_string "module m (a);\n input a,;\nendmodule\n"));
  Alcotest.(check bool) "bad size" true
    (match V.parse_string
             "module m (a, y);\n input a;\n output y;\n C #(.SIZE(0)) u (a, y);\nendmodule\n"
     with
    | Error _ -> true
    | Ok _ -> false)

let test_roundtrip_sample () =
  let m = parse_ok sample in
  let m2 = parse_ok (V.to_string m) in
  Alcotest.(check int) "cells" (Hg.num_cells m.V.graph) (Hg.num_cells m2.V.graph);
  Alcotest.(check int) "pads" (Hg.num_pads m.V.graph) (Hg.num_pads m2.V.graph);
  Alcotest.(check int) "nets" (Hg.num_nets m.V.graph) (Hg.num_nets m2.V.graph)

let test_roundtrip_weights () =
  (* weighted circuits round-trip exactly, including flip-flops *)
  let b = Hg.Builder.create () in
  let x = Hg.Builder.add_cell b ~flops:2 ~name:"x" ~size:3 in
  let y = Hg.Builder.add_cell b ~name:"y" ~size:5 in
  let p = Hg.Builder.add_pad b ~name:"p" in
  ignore (Hg.Builder.add_net b ~name:"nx" [ x; y ]);
  ignore (Hg.Builder.add_net b ~name:"np" [ y; p ]);
  let h = Hg.Builder.freeze b in
  let m2 = parse_ok (V.to_string (V.of_hypergraph ~name:"w" h)) in
  let h2 = m2.V.graph in
  Alcotest.(check int) "total size" (Hg.total_size h) (Hg.total_size h2);
  Alcotest.(check int) "total flops" (Hg.total_flops h) (Hg.total_flops h2);
  Alcotest.(check int) "nets" (Hg.num_nets h) (Hg.num_nets h2)

let test_file_io () =
  let m = parse_ok sample in
  let path = Filename.temp_file "fpart_v" ".v" in
  V.write_file path m;
  (match V.parse_file path with
  | Ok m2 -> Alcotest.(check string) "name" "tiny" m2.V.mod_name
  | Error e -> Alcotest.failf "reparse: %s" e);
  Sys.remove path

let prop_generated_roundtrip =
  QCheck.Test.make ~count:25 ~name:"generated circuits round-trip through Verilog"
    QCheck.(pair (int_range 10 120) (int_range 2 24))
    (fun (cells, pads) ->
      let spec =
        Netlist.Generator.default_spec ~name:"vr" ~cells ~pads ~seed:(cells * pads)
      in
      let h = Netlist.Generator.generate spec in
      match V.parse_string (V.to_string (V.of_hypergraph ~name:"vr" h)) with
      | Error _ -> false
      | Ok m2 ->
        let h2 = m2.V.graph in
        Hg.num_cells h = Hg.num_cells h2
        && Hg.num_pads h = Hg.num_pads h2
        && Hg.num_nets h = Hg.num_nets h2
        && Hg.total_size h = Hg.total_size h2
        && Hg.total_flops h = Hg.total_flops h2)

let prop_parser_total =
  QCheck.Test.make ~count:300 ~name:"parser is total on arbitrary text"
    QCheck.(string_gen_of_size (Gen.int_bound 200) Gen.printable)
    (fun text -> match V.parse_string text with Ok _ | Error _ -> true)

let prop_parser_total_veriloglike =
  let fragment =
    QCheck.Gen.oneofl
      [ "module m (a);"; "input a;"; "output y;"; "wire w;"; "inout b;";
        "BUF u (a, y);"; "C #(.SIZE(2)) i (.A(a));"; "assign y = a;";
        "endmodule"; "// c"; "/*"; "*/"; "("; ")"; ";"; "#"; "..";
        "module"; "assign y ="; "C u (a," ]
  in
  let gen = QCheck.Gen.(map (String.concat "\n") (list_size (int_bound 16) fragment)) in
  QCheck.Test.make ~count:300 ~name:"parser is total on Verilog-like soup"
    (QCheck.make gen)
    (fun text ->
      match V.parse_string text with
      | Ok m -> Hg.validate m.V.graph = Ok ()
      | Error _ -> true)

let () =
  Alcotest.run "verilog"
    [
      ( "unit",
        [
          Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "named connections" `Quick test_named_connections;
          Alcotest.test_case "parameters" `Quick test_parameters;
          Alcotest.test_case "assign" `Quick test_assign_is_buffer;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "inout" `Quick test_inout;
          Alcotest.test_case "unconnected port" `Quick test_unconnected_port;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "roundtrip sample" `Quick test_roundtrip_sample;
          Alcotest.test_case "roundtrip weights" `Quick test_roundtrip_weights;
          Alcotest.test_case "file io" `Quick test_file_io;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_roundtrip; prop_parser_total; prop_parser_total_veriloglike ]
      );
    ]
