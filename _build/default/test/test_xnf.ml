(* Xnf: Xilinx Netlist Format subset. *)

module Hg = Hypergraph.Hgraph
module Xnf = Netlist.Xnf

let parse_ok ?name text =
  match Xnf.parse_string ?name text with
  | Ok d -> d
  | Error e -> Alcotest.failf "parse failed: %s" e

let sample =
  {|LCANET, 4
PROG, tool
PART, 3020PC68
# two gates
SYM, g1, AND, SIZE=1
PIN, A, I, neta
PIN, B, I, netb
PIN, Y, O, nett
END
SYM, g2, INV
PIN, I, I, nett
PIN, O, O, nety
END
EXT, neta, I
EXT, netb, I
EXT, nety, O
EOF
|}

let test_parse_basic () =
  let d = parse_ok ~name:"s" sample in
  Alcotest.(check (option string)) "part" (Some "3020PC68") d.Xnf.part;
  let h = d.Xnf.graph in
  Alcotest.(check int) "cells" 2 (Hg.num_cells h);
  Alcotest.(check int) "pads" 3 (Hg.num_pads h);
  Alcotest.(check int) "nets" 4 (Hg.num_nets h)

let test_attributes () =
  let d =
    parse_ok
      "SYM, g, C, SIZE=4, FLOPS=2\nPIN, A, I, n1\nEND\nSYM, h, C\nPIN, A, I, n1\nEND\nEOF\n"
  in
  let hg = d.Xnf.graph in
  Alcotest.(check int) "size" 5 (Hg.total_size hg);
  Alcotest.(check int) "flops" 2 (Hg.total_flops hg)

let test_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "pin outside sym" true
    (is_err (Xnf.parse_string "PIN, A, I, n\nEOF\n"));
  Alcotest.(check bool) "nested sym" true
    (is_err (Xnf.parse_string "SYM, a, C\nSYM, b, C\n"));
  Alcotest.(check bool) "unterminated" true
    (is_err (Xnf.parse_string "SYM, a, C\nPIN, A, I, n\n"));
  Alcotest.(check bool) "bad size" true
    (is_err (Xnf.parse_string "SYM, a, C, SIZE=0\nPIN, A, I, n\nEND\nEOF\n"));
  Alcotest.(check bool) "unknown record" true
    (is_err (Xnf.parse_string "FROB, x\n"))

let test_eof_optional () =
  let d = parse_ok "SYM, a, C\nPIN, A, I, n1\nEND\nEXT, n1, I\n" in
  Alcotest.(check int) "cells" 1 (Hg.num_cells d.Xnf.graph)

let test_roundtrip () =
  let d = parse_ok ~name:"rt" sample in
  let d2 = parse_ok ~name:"rt" (Xnf.to_string d) in
  let h = d.Xnf.graph and h2 = d2.Xnf.graph in
  Alcotest.(check int) "cells" (Hg.num_cells h) (Hg.num_cells h2);
  Alcotest.(check int) "pads" (Hg.num_pads h) (Hg.num_pads h2);
  Alcotest.(check int) "nets" (Hg.num_nets h) (Hg.num_nets h2);
  Alcotest.(check (option string)) "part survives" d.Xnf.part d2.Xnf.part

let test_file_io () =
  let d = parse_ok ~name:"f" sample in
  let path = Filename.temp_file "fpart_xnf" ".xnf" in
  Xnf.write_file path d;
  (match Xnf.parse_file path with
  | Ok d2 -> Alcotest.(check int) "cells" 2 (Hg.num_cells d2.Xnf.graph)
  | Error e -> Alcotest.failf "reparse: %s" e);
  Sys.remove path

let prop_generated_roundtrip =
  QCheck.Test.make ~count:25 ~name:"generated circuits round-trip through XNF"
    QCheck.(pair (int_range 10 120) (int_range 2 24))
    (fun (cells, pads) ->
      let spec =
        Netlist.Generator.default_spec ~name:"xr" ~cells ~pads ~seed:(7 * cells + pads)
      in
      let h = Netlist.Generator.generate spec in
      match Xnf.parse_string (Xnf.to_string (Xnf.of_hypergraph ~name:"xr" h)) with
      | Error _ -> false
      | Ok d2 ->
        let h2 = d2.Xnf.graph in
        Hg.num_cells h = Hg.num_cells h2
        && Hg.num_pads h = Hg.num_pads h2
        && Hg.num_nets h = Hg.num_nets h2
        && Hg.total_size h = Hg.total_size h2
        && Hg.total_flops h = Hg.total_flops h2)

let prop_parser_total =
  let fragment =
    QCheck.Gen.oneofl
      [ "LCANET, 4"; "PROG, x"; "PART, 3020"; "SYM, a, C, SIZE=2"; "SYM, a";
        "PIN, A, I, n1"; "PIN"; "END"; "EXT, n1, I"; "EXT"; "EOF"; "#c"; "";
        "SYM, b, C, SIZE=x"; "JUNK, 1" ]
  in
  let gen = QCheck.Gen.(map (String.concat "\n") (list_size (int_bound 16) fragment)) in
  QCheck.Test.make ~count:300 ~name:"parser is total on XNF-like soup"
    (QCheck.make gen)
    (fun text ->
      match Xnf.parse_string text with
      | Ok d -> Hg.validate d.Xnf.graph = Ok ()
      | Error _ -> true)

let () =
  Alcotest.run "xnf"
    [
      ( "unit",
        [
          Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "EOF optional" `Quick test_eof_optional;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "file io" `Quick test_file_io;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_generated_roundtrip; prop_parser_total ]
      );
    ]
