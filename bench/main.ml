(* Bechamel benchmarks: one per paper table/figure (timing a
   representative slice of the experiment that regenerates it; the full
   tables are produced by bin/run_experiments.exe), plus
   micro-benchmarks of the hot data structures.

   Run with: dune exec bench/main.exe

   Besides the stdout table, every run writes BENCH_fpart.json — the
   machine-readable perf snapshot that perf PRs diff against.
   Environment knobs (all optional):
     FPART_BENCH_QUOTA    seconds of sampling per benchmark (default 1.0)
     FPART_BENCH_ONLY     substring filter on benchmark names
     FPART_BENCH_REPEATS  interleaved repeats for the overhead sections
                          (default 5; the snapshot reports the median)
     FPART_BENCH_LEDGER   also append one fpart-ledger/1 entry to this
                          file (see fpart_inspect trend/regress)
     FPART_BENCH_SCALE_CELLS
                          comma-separated circuit sizes for the
                          mlevel/table-scale section (default
                          "10000,100000") *)

open Bechamel
open Toolkit

let mcnc name = Option.get (Netlist.Mcnc.find name)

(* Shared workloads, built once. *)
let c3540_3000 = lazy (Netlist.Mcnc.surrogate (mcnc "c3540") Device.XC3000)
let c3540_2000 = lazy (Netlist.Mcnc.surrogate (mcnc "c3540") Device.XC2000)
let s5378_3000 = lazy (Netlist.Mcnc.surrogate (mcnc "s5378") Device.XC3000)

let fpart hg device = ignore (Fpart.Driver.run (Lazy.force hg) device)

(* Table 1: workload generation (the surrogate builder itself). *)
let bench_table1 =
  Test.make ~name:"table1/generate-c3540"
    (Staged.stage (fun () ->
         let spec =
           Netlist.Generator.default_spec ~name:"c3540" ~cells:283 ~pads:72 ~seed:1
         in
         ignore (Netlist.Generator.generate spec)))

(* Tables 2-5: one representative (circuit, device) per table, all three
   algorithms for Table 2 (the headline comparison). *)
let bench_table2_fpart =
  Test.make ~name:"table2/fpart-c3540-xc3020"
    (Staged.stage (fun () -> fpart c3540_3000 Device.xc3020))

let bench_table2_kwayx =
  Test.make ~name:"table2/kwayx-c3540-xc3020"
    (Staged.stage (fun () ->
         ignore (Fpart.Kwayx.run (Lazy.force c3540_3000) Device.xc3020)))

let bench_table2_fbbmw =
  Test.make ~name:"table2/fbbmw-c3540-xc3020"
    (Staged.stage (fun () ->
         ignore
           (Flow.Fbb_mw.partition (Lazy.force c3540_3000) Device.xc3020
              Flow.Fbb_mw.default_config)))

let bench_table3 =
  Test.make ~name:"table3/fpart-c3540-xc3042"
    (Staged.stage (fun () -> fpart c3540_3000 Device.xc3042))

let bench_table4 =
  Test.make ~name:"table4/fpart-s5378-xc3090"
    (Staged.stage (fun () -> fpart s5378_3000 Device.xc3090))

let bench_table5 =
  Test.make ~name:"table5/fpart-c3540-xc2064"
    (Staged.stage (fun () -> fpart c3540_2000 Device.xc2064))

(* Table 6 is itself a timing table; benchmark the dominant cost (a full
   FPART run on a mid-size circuit). *)
let bench_table6 =
  Test.make ~name:"table6/fpart-s5378-xc3020"
    (Staged.stage (fun () -> fpart s5378_3000 Device.xc3020))

(* Figure 1: driver with trace recording. *)
let bench_figure1 =
  Test.make ~name:"figure1/fpart-trace-s5378-xc3042"
    (Staged.stage (fun () -> fpart s5378_3000 Device.xc3042))

(* Figure 2: the lexicographic solution evaluation (runs once per move
   in every improvement pass — the hot cost path). *)
let bench_figure2 =
  let st =
    lazy
      (Partition.State.create (Lazy.force c3540_3000) ~k:6 ~assign:(fun v -> v mod 6))
  in
  let ctx =
    lazy (Partition.Cost.context_of Device.xc3020 ~delta:0.9 (Lazy.force c3540_3000))
  in
  Test.make ~name:"figure2/cost-evaluate"
    (Staged.stage (fun () ->
         ignore
           (Partition.Cost.evaluate Partition.Cost.default_params (Lazy.force ctx)
              (Lazy.force st) ~remainder:(Some 5) ~step_k:3)))

(* Figure 3: one bounded Sanchis pair pass (the move-region machinery). *)
let bench_figure3 =
  Test.make ~name:"figure3/sanchis-pair-pass"
    (Staged.stage (fun () ->
         let hg = Lazy.force c3540_3000 in
         let st = Partition.State.create hg ~k:2 ~assign:(fun v -> v land 1) in
         let ctx = Partition.Cost.context_of Device.xc3020 ~delta:0.9 hg in
         let spec =
           {
             Sanchis.active = [| 0; 1 |];
             remainder = Some 1;
             lower = Array.make 2 0;
             upper = Array.make 2 max_int;
           }
         in
         let config = { Sanchis.default_config with max_passes = 1; stack_depth = 0 } in
         let eval st =
           Partition.Cost.evaluate Partition.Cost.default_params ctx st
             ~remainder:(Some 1) ~step_k:1
         in
         ignore (Sanchis.improve st ~spec ~config ~eval)))

(* Micro-benchmarks of the substrates. *)
let bench_state_move =
  let st =
    lazy
      (Partition.State.create (Lazy.force c3540_3000) ~k:4 ~assign:(fun v -> v mod 4))
  in
  Test.make ~name:"micro/state-move"
    (Staged.stage (fun () ->
         let st = Lazy.force st in
         Partition.State.move st 0 1;
         Partition.State.move st 0 0))

let bench_cut_gain =
  let st =
    lazy
      (Partition.State.create (Lazy.force c3540_3000) ~k:4 ~assign:(fun v -> v mod 4))
  in
  Test.make ~name:"micro/cut-gain"
    (Staged.stage (fun () -> ignore (Partition.State.cut_gain (Lazy.force st) 0 1)))

let bench_bucket =
  Test.make ~name:"micro/bucket-insert-remove"
    (Staged.stage
       (let b = Gainbucket.Bucket_array.create ~cells:1024 ~max_gain:32 () in
        fun () ->
          for c = 0 to 63 do
            Gainbucket.Bucket_array.insert b c ((c mod 65) - 32)
          done;
          for c = 0 to 63 do
            Gainbucket.Bucket_array.remove b c
          done))

let bench_fbb =
  Test.make ~name:"micro/fbb-bipartition-small"
    (Staged.stage (fun () ->
         let hg = Lazy.force c3540_3000 in
         let rng = Prng.Splitmix.create 7 in
         ignore
           (Flow.Fbb.bipartition hg
              ~keep:(fun _ -> true)
              ~seed_s:0
              ~seed_t:(Hypergraph.Hgraph.num_cells hg - 1)
              ~lo:100 ~hi:160 ~rng)))

(* Extensions: clustering pre-pass, clustered driver, heterogeneous. *)
let bench_cluster_build =
  Test.make ~name:"ext/cluster-build-c3540"
    (Staged.stage (fun () ->
         ignore (Cluster.build (Lazy.force c3540_3000) ~max_cluster_size:4 ~seed:1)))

let bench_fpart_clustered =
  Test.make ~name:"ext/fpart-clustered-c3540-xc3020"
    (Staged.stage (fun () ->
         let config = { Fpart.Config.default with cluster_size = Some 4 } in
         ignore (Fpart.Driver.run ~config (Lazy.force c3540_3000) Device.xc3020)))

let bench_hetero =
  Test.make ~name:"ext/hetero-c3540"
    (Staged.stage (fun () -> ignore (Fpart.Hetero.run (Lazy.force c3540_3000))))

let all_tests =
  [
    bench_table1;
    bench_table2_fpart;
    bench_table2_kwayx;
    bench_table2_fbbmw;
    bench_table3;
    bench_table4;
    bench_table5;
    bench_table6;
    bench_figure1;
    bench_figure2;
    bench_figure3;
    bench_state_move;
    bench_cut_gain;
    bench_bucket;
    bench_fbb;
    bench_cluster_build;
    bench_fpart_clustered;
    bench_hetero;
  ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let quota =
  match Sys.getenv_opt "FPART_BENCH_QUOTA" with
  | Some s -> (
    match float_of_string_opt s with Some q when q > 0.0 -> q | _ -> 1.0)
  | None -> 1.0

let parallel_name = "parallel/run-best-table2"
let mlevel_scale_name = "mlevel/table-scale"
let refiner_table_name = "refiner/table2"
let serve_table_name = "serve/latency-table"
let selfcheck_name = "selfcheck/overhead-table2"
let gain_update_name = "gain_update/table2"
let recorder_name = "recorder/overhead-table2"
let resource_name = "resource/overhead-table2"
let expose_name = "expose/overhead-table2"

(* Repeats for the A/B overhead sections.  Min-of-3 systematically
   underestimates whichever side happens to catch a quiet machine —
   the committed snapshot once recorded a -3.4% recorder "overhead" —
   so each side runs FPART_BENCH_REPEATS interleaved samples and the
   snapshot reports the median alongside the repeat count. *)
let overhead_repeats =
  match Sys.getenv_opt "FPART_BENCH_REPEATS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 5)
  | None -> 5

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else if n mod 2 = 1 then a.(n / 2)
  else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

(* One (a, b) sample per repeat, alternating sides within each repeat
   so drift (thermal, page cache) hits both equally. *)
let interleaved_medians ~repeats fa fb =
  let xa = ref [] and xb = ref [] in
  for _ = 1 to repeats do
    xa := fa () :: !xa;
    xb := fb () :: !xb
  done;
  (median !xa, median !xb)

let parallel_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains parallel_name pat

let selfcheck_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains selfcheck_name pat

let gain_update_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains gain_update_name pat

let recorder_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains recorder_name pat

let resource_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains resource_name pat

let expose_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains expose_name pat

let mlevel_scale_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains mlevel_scale_name pat

let refiner_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains refiner_table_name pat

let serve_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains serve_table_name pat

let tests =
  let kept =
    match Sys.getenv_opt "FPART_BENCH_ONLY" with
    | None -> all_tests
    | Some pat -> List.filter (fun t -> contains (Test.name t) pat) all_tests
  in
  if
    kept = [] && not parallel_wanted && not selfcheck_wanted
    && not gain_update_wanted && not recorder_wanted && not resource_wanted
    && not expose_wanted && not mlevel_scale_wanted && not refiner_wanted
    && not serve_wanted
  then begin
    prerr_endline "bench: FPART_BENCH_ONLY matched no benchmarks";
    exit 1
  end;
  match kept with
  | [] -> None
  | kept -> Some (Test.make_grouped ~name:"fpart" kept)

module Json = Fpart_obs.Json

(* Parallel speedup: wall time of an 8-start Driver.run_best at jobs=1
   vs jobs=FPART_BENCH_JOBS (default: recommended_domain_count).  Not a
   bechamel benchmark — one timed run each is enough for a wall-clock
   ratio, and bechamel's per-run allocation probes would fight the
   domain pool.  Reported as its own "parallel" object in the snapshot
   (the "benchmarks" list keeps its schema). *)

let bench_jobs =
  match Sys.getenv_opt "FPART_BENCH_JOBS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let measure_parallel () =
  if not parallel_wanted then None
  else begin
    let hg = Lazy.force c3540_3000 in
    let time jobs =
      let t0 = Unix.gettimeofday () in
      let r = Fpart.Driver.run_best ~jobs ~runs:8 hg Device.xc3020 in
      (Unix.gettimeofday () -. t0, r)
    in
    let w1, r1 = time 1 in
    let wn, rn = time bench_jobs in
    if rn.Fpart.Driver.assignment <> r1.Fpart.Driver.assignment then begin
      prerr_endline "bench: parallel run_best diverged from sequential";
      exit 1
    end;
    Some (w1, wn)
  end

(* Scale comparison: flat FPART vs the multilevel V-cycle engine on
   Rent-rule circuits at 10^4 and 10^5 cells (virtual devices sized to
   keep k ≈ 9, matching the paper's usual arity).  One timed run per
   engine per size — these are multi-second wall-clock measurements, so
   bechamel's per-run probes would only add noise.  Sizes come from
   FPART_BENCH_SCALE_CELLS (comma-separated; default "10000,100000" —
   trim it for a quick machine).  Cut and feasibility ride along: the
   speedup claim is only meaningful while mlevel stays in the flat
   engine's quality class. *)

type mlevel_row = {
  ms_cells : int;
  ms_device : string;
  ms_wall_flat : float;
  ms_wall_ml : float;
  ms_cut_flat : int;
  ms_cut_ml : int;
  ms_k_flat : int;
  ms_k_ml : int;
  ms_feas_flat : bool;
  ms_feas_ml : bool;
  ms_levels : int;
  ms_ratio : float;
}

let mlevel_scale_cells =
  let spec =
    match Sys.getenv_opt "FPART_BENCH_SCALE_CELLS" with
    | Some s when s <> "" -> s
    | _ -> "10000,100000"
  in
  List.filter_map
    (fun s ->
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 64 -> Some n
      | _ -> None)
    (String.split_on_char ',' spec)

let measure_mlevel_scale () =
  if not mlevel_scale_wanted then None
  else
    Some
      (List.map
         (fun cells ->
           let device = if cells <= 30_000 then Device.v1250 else Device.v12500 in
           let hg =
             Netlist.Generator.generate
               (Netlist.Generator.rent_spec ~name:"bench" ~cells ~seed:1)
           in
           let t0 = Unix.gettimeofday () in
           let flat = Fpart.Driver.run hg device in
           let wall_flat = Unix.gettimeofday () -. t0 in
           let t0 = Unix.gettimeofday () in
           let ml = Mlevel.Engine.run hg device in
           let wall_ml = Unix.gettimeofday () -. t0 in
           {
             ms_cells = cells;
             ms_device = device.Device.dev_name;
             ms_wall_flat = wall_flat;
             ms_wall_ml = wall_ml;
             ms_cut_flat = flat.Fpart.Driver.cut;
             ms_cut_ml = ml.Mlevel.Engine.res.Fpart.Driver.cut;
             ms_k_flat = flat.Fpart.Driver.k;
             ms_k_ml = ml.Mlevel.Engine.res.Fpart.Driver.k;
             ms_feas_flat = flat.Fpart.Driver.feasible;
             ms_feas_ml = ml.Mlevel.Engine.res.Fpart.Driver.feasible;
             ms_levels = ml.Mlevel.Engine.levels;
             ms_ratio = ml.Mlevel.Engine.coarsen_ratio;
           })
         mlevel_scale_cells)

(* Refinement-backend comparison (docs/FLOW_REFINEMENT.md): the same
   workload through the paper's Sanchis passes, the corridor max-flow
   refiner and the stall-driven hybrid.  One timed Driver.run per
   backend per workload — multi-second wall-clock measurements, so
   bechamel's probes would only add noise.  Cut quality is the point:
   the committed rows include a workload where the hybrid strictly
   beats pure Sanchis (rent:2000 seed 5), and the per-workload
   hybrid-gain ledger row lets `fpart_inspect regress` catch that win
   silently evaporating. *)

type refiner_run = {
  rr_wall : float;
  rr_cut : int;
  rr_k : int;
  rr_feas : bool;
}

type refiner_row = {
  rf_workload : string;
  rf_device : string;
  rf_sanchis : refiner_run;
  rf_flow : refiner_run;
  rf_hybrid : refiner_run;
}

let measure_refiner () =
  if not refiner_wanted then None
  else begin
    (* rent:2000 at seed 5 matches `fpart --generate rent:2000 --seed 5`
       bit for bit (same generator spec, same config seed). *)
    let rent2000 =
      Netlist.Generator.generate
        (Netlist.Generator.rent_spec ~name:"rent" ~cells:2000 ~seed:5)
    in
    let workloads =
      [
        ("c3540-xc3020", Lazy.force c3540_3000, Device.xc3020, Fpart.Config.default);
        ( "rent2000-v1250",
          rent2000,
          Device.v1250,
          { Fpart.Config.default with seed = 5 } );
      ]
    in
    Some
      (List.map
         (fun (wname, hg, device, base) ->
           let one refiner =
             let config = { base with Fpart.Config.refiner } in
             let t0 = Unix.gettimeofday () in
             let r = Fpart.Driver.run ~config hg device in
             {
               rr_wall = Unix.gettimeofday () -. t0;
               rr_cut = r.Fpart.Driver.cut;
               rr_k = r.Fpart.Driver.k;
               rr_feas = r.Fpart.Driver.feasible;
             }
           in
           {
             rf_workload = wname;
             rf_device = device.Device.dev_name;
             rf_sanchis = one Fpart.Config.Sanchis_refiner;
             rf_flow = one Fpart.Config.Flow_refiner;
             rf_hybrid = one Fpart.Config.Hybrid_refiner;
           })
         workloads)
  end

(* Self-check overhead: wall time of a Driver.run on the table-2
   workload with selfcheck off vs cheap (pass-boundary oracle
   validation).  Median of FPART_BENCH_REPEATS interleaved runs each,
   so transient noise cannot inflate either side.  The acceptance bar
   is <= 10% overhead for the cheap level. *)

let measure_selfcheck () =
  if not selfcheck_wanted then None
  else begin
    let hg = Lazy.force c3540_3000 in
    let time level () =
      let config = { Fpart.Config.default with selfcheck = level } in
      let t0 = Unix.gettimeofday () in
      ignore (Fpart.Driver.run ~config hg Device.xc3020);
      Unix.gettimeofday () -. t0
    in
    Some
      (interleaved_medians ~repeats:overhead_repeats
         (time Fpart_check.Selfcheck.Off)
         (time Fpart_check.Selfcheck.Cheap))
  end

(* Delta-gain throughput on the table-2 circuit, [gain_update = Delta]
   (incremental critical-net updates, the default) vs [Recompute] (the
   escape hatch that rebuilds every neighbour gain from scratch).  Two
   measurements, both bit-identical across modes:

   - maintenance: [Sanchis.drive_gain_maintenance] applies the same
     scripted move sequence through the real per-move machinery with no
     selection, lookahead, evaluation or rewind, and clocks only the
     neighbour refresh itself — the one piece the two modes implement
     differently.  This is the headline moves/sec the bench-regression
     CI job guards, with an acceptance bar of >= 2x for delta.
   - engine: a full 4-way [Sanchis.improve] from a fresh round-robin
     assignment.  Selection, evaluation and pass setup are shared by
     both modes, so this end-to-end ratio is much smaller (Amdahl);
     recorded so the snapshot keeps the honest whole-engine number.

   Min of 3 interleaved samples per measurement per mode.  The delta
   engine's update/avoided counters ride along so regressions in the
   quiet-net skip show up in the snapshot diff too. *)

type gu_pair = {
  gp_wall_delta : float;
  gp_wall_recompute : float;
  gp_moves : int;  (** applied moves per sample (identical across modes) *)
}

type gain_update_result = {
  gu_maintenance : gu_pair;
  gu_engine : gu_pair;
  gu_updates : int;  (** sanchis.delta.updates over one delta sample *)
  gu_avoided : int;  (** sanchis.delta.avoided over one delta sample *)
}

let gu_maintenance_moves = 50_000

let measure_gain_update () =
  if not gain_update_wanted then None
  else begin
    let module Metrics = Fpart_obs.Metrics in
    let hg = Lazy.force c3540_3000 in
    (* table 2 splits c3540 across 7 XC3020s; matching that arity also
       matters for the measurement itself: recompute refreshes every
       neighbour towards all k-1 targets while delta touches ~2, so the
       maintenance gap is a function of k. *)
    let k = 7 in
    let ctx = Partition.Cost.context_of Device.xc3020 ~delta:0.9 hg in
    let spec =
      {
        Sanchis.active = Array.init k Fun.id;
        remainder = None;
        lower = Array.make k 0;
        upper = Array.make k max_int;
      }
    in
    let c_updates = Metrics.counter "sanchis.delta.updates" in
    let c_avoided = Metrics.counter "sanchis.delta.avoided" in
    let config mode = { Sanchis.default_config with gain_update = mode } in
    let maintenance_sample mode =
      let st = Partition.State.create hg ~k ~assign:(fun v -> v mod k) in
      let applied, refresh_s =
        Sanchis.drive_gain_maintenance st ~spec ~config:(config mode)
          ~moves:gu_maintenance_moves ~seed:1
      in
      (refresh_s, applied, Array.copy (Partition.State.assignment st))
    in
    let engine_sample mode =
      let st = Partition.State.create hg ~k ~assign:(fun v -> v mod k) in
      let tracker =
        Partition.Cost.tracker Partition.Cost.default_params ctx st
          ~remainder:None ~step_k:k
      in
      let eval st = Partition.Cost.tracked_evaluate tracker st in
      let t0 = Unix.gettimeofday () in
      let report = Sanchis.improve st ~spec ~config:(config mode) ~eval in
      let wall = Unix.gettimeofday () -. t0 in
      ( wall,
        report.Sanchis.moves_applied,
        Array.copy (Partition.State.assignment st) )
    in
    let compare_modes name sample =
      let best_d = ref infinity and best_r = ref infinity in
      let moves = ref 0 in
      for _ = 1 to 3 do
        let wd, md, ad = sample Sanchis.Delta in
        let wr, mr, ar = sample Sanchis.Recompute in
        if md <> mr || ad <> ar then begin
          Printf.eprintf "bench: %s diverged between delta and recompute\n"
            name;
          exit 1
        end;
        best_d := min !best_d wd;
        best_r := min !best_r wr;
        moves := md
      done;
      {
        gp_wall_delta = !best_d;
        gp_wall_recompute = !best_r;
        gp_moves = !moves;
      }
    in
    let u0 = Metrics.counter_value c_updates in
    let a0 = Metrics.counter_value c_avoided in
    let maintenance = compare_modes "gain maintenance" maintenance_sample in
    let updates = ref (Metrics.counter_value c_updates - u0) in
    let avoided = ref (Metrics.counter_value c_avoided - a0) in
    (* three delta samples ran above; report per-sample counts *)
    updates := !updates / 3;
    avoided := !avoided / 3;
    let engine = compare_modes "engine run" engine_sample in
    Some
      {
        gu_maintenance = maintenance;
        gu_engine = engine;
        gu_updates = !updates;
        gu_avoided = !avoided;
      }
  end

(* Recorder overhead: wall time of a Driver.run on the table-2 workload
   with observability disabled (the default — every span_begin is one
   atomic load) vs fully enabled into a null sink (span bookkeeping,
   gain-curve accumulation and record assembly, minus I/O).  Median of
   FPART_BENCH_REPEATS interleaved runs each.  The acceptance bar is
   <= 5%: CI asserts [overhead < 0.05] where
   overhead = (enabled - disabled) / disabled. *)

let measure_recorder () =
  if not recorder_wanted then None
  else begin
    let module Metrics = Fpart_obs.Metrics in
    let module Sink = Fpart_obs.Sink in
    let hg = Lazy.force c3540_3000 in
    let time enabled () =
      if enabled then begin
        Metrics.set_enabled true;
        Sink.set Sink.null
      end;
      let t0 = Unix.gettimeofday () in
      ignore (Fpart.Driver.run hg Device.xc3020);
      let wall = Unix.gettimeofday () -. t0 in
      if enabled then begin
        Metrics.set_enabled false;
        Metrics.reset ();
        Fpart_obs.Recorder.reset ()
      end;
      wall
    in
    Some (interleaved_medians ~repeats:overhead_repeats (time false) (time true))
  end

(* Resource-telemetry overhead: like the recorder measurement but with
   per-span GC/RSS sampling on as well (recorder + Resource into a null
   sink) — the full price of a memory-profiled run.  Held to the same
   5% bar as the recorder. *)

let measure_resource () =
  if not resource_wanted then None
  else begin
    let module Metrics = Fpart_obs.Metrics in
    let module Resource = Fpart_obs.Resource in
    let module Sink = Fpart_obs.Sink in
    let hg = Lazy.force c3540_3000 in
    let time enabled () =
      if enabled then begin
        Metrics.set_enabled true;
        Resource.set_enabled true;
        Sink.set Sink.null
      end;
      let t0 = Unix.gettimeofday () in
      ignore (Fpart.Driver.run hg Device.xc3020);
      let wall = Unix.gettimeofday () -. t0 in
      if enabled then begin
        Metrics.set_enabled false;
        Resource.set_enabled false;
        Metrics.reset ();
        Fpart_obs.Recorder.reset ();
        Resource.reset ()
      end;
      wall
    in
    Some (interleaved_medians ~repeats:overhead_repeats (time false) (time true))
  end

(* Exporter overhead: the marginal price of the live telemetry plane on
   an already-instrumented run.  Both sides run with the recorder
   enabled into a null sink — the serve daemon's steady state — and the
   exported side additionally renders the full Prometheus exposition
   page and writes one access-log JSON line per run, i.e. what
   fpart_serve pays when a scraper polls /metrics once per request (the
   worst sane polling cadence).  Held to the same bar as the recorder:
   CI asserts overhead < 0.05. *)

let measure_expose () =
  if not expose_wanted then None
  else begin
    let module Metrics = Fpart_obs.Metrics in
    let module Sink = Fpart_obs.Sink in
    let hg = Lazy.force c3540_3000 in
    let devnull = open_out "/dev/null" in
    let access_line wall_s =
      Json.Obj
        [
          ("type", Json.Str "access");
          ("rid", Json.Str "r000001");
          ("id", Json.Str "bench");
          ("op", Json.Str "partition");
          ("status", Json.Str "ok");
          ("mode", Json.Str "cold");
          ("wall_ms", Json.Float (wall_s *. 1000.0));
        ]
    in
    let time exported () =
      Metrics.set_enabled true;
      Sink.set Sink.null;
      let t0 = Unix.gettimeofday () in
      ignore (Fpart.Driver.run hg Device.xc3020);
      if exported then begin
        ignore (Fpart_obs.Expose.render ());
        output_string devnull
          (Json.to_string (access_line (Unix.gettimeofday () -. t0)));
        output_char devnull '\n'
      end;
      let wall = Unix.gettimeofday () -. t0 in
      Metrics.set_enabled false;
      Metrics.reset ();
      Fpart_obs.Recorder.reset ();
      wall
    in
    let result =
      interleaved_medians ~repeats:overhead_repeats (time false) (time true)
    in
    close_out devnull;
    Some result
  end

(* Partition-service latency table.  Two measurements through the real
   engine (same code path as fpart_serve):

   - throughput: one batch of distinct single-start workloads answered
     at jobs=1 and jobs=FPART_BENCH_JOBS — requests/sec of the batch
     fan-out.
   - cold vs warm: for each repeat, a cold request on a fresh circuit,
     then an ECO request (small netlist delta + the cold result's
     partfile) on the same circuit.  The engine's own
     serve.latency.{cold,warm}_ms histograms supply the p50/p95 the
     serve-smoke CI job and the ledger trend watch. *)

type serve_result = {
  sv_requests : int;
  sv_wall_s_jobs1 : float;
  sv_wall_s_jobsn : float;
  sv_cold_p50_ms : float;
  sv_cold_p95_ms : float;
  sv_warm_p50_ms : float;
  sv_warm_p95_ms : float;
}

let measure_serve () =
  if not serve_wanted then None
  else begin
    let module Metrics = Fpart_obs.Metrics in
    Metrics.set_enabled true;
    let request ?eco ~id ~spec ~gen_seed () =
      {
        Serve.Protocol.id;
        netlist = Serve.Protocol.Generate { spec; gen_seed };
        device = "XC3042";
        delta = None;
        runs = 1;
        seed = None;
        max_passes = None;
        refiner = None;
        timeout_s = None;
        eco;
        inject = None;
      }
    in
    let expect_ok rs =
      List.iter
        (fun r ->
          match r.Serve.Protocol.outcome with
          | Ok _ -> ()
          | Error e ->
            Printf.eprintf "bench: serve request %s failed: %s\n"
              r.Serve.Protocol.resp_id e;
            exit 1)
        rs
    in
    (* throughput: 12 distinct workloads per batch, fresh engine per
       jobs setting so the cache cannot carry answers across sides *)
    let batch_requests =
      List.init 12 (fun i ->
          request ~id:(Printf.sprintf "t%d" i) ~spec:"200x20" ~gen_seed:(100 + i) ())
    in
    let timed_batch jobs () =
      let engine = Serve.Engine.create ~jobs () in
      let t0 = Unix.gettimeofday () in
      let rs = Serve.Engine.handle_requests engine batch_requests in
      let wall = Unix.gettimeofday () -. t0 in
      Serve.Engine.shutdown engine;
      expect_ok rs;
      wall
    in
    let wall1, walln =
      interleaved_medians ~repeats:overhead_repeats (timed_batch 1)
        (timed_batch bench_jobs)
    in
    (* cold vs warm on one engine; a fresh circuit per repeat keeps the
       cache out of both sides *)
    let engine = Serve.Engine.create ~jobs:1 () in
    let eco_spec = "360x36" in
    let cells = 360 and pads = 36 in
    for i = 0 to overhead_repeats - 1 do
      let gen_seed = 9000 + i in
      let cold =
        match
          Serve.Engine.handle_requests engine
            [ request ~id:(Printf.sprintf "c%d" i) ~spec:eco_spec ~gen_seed () ]
        with
        | [ { Serve.Protocol.outcome = Ok s; _ } ] -> s
        | [ { Serve.Protocol.outcome = Error e; _ } ] ->
          Printf.eprintf "bench: serve cold request failed: %s\n" e;
          exit 1
        | _ ->
          prerr_endline "bench: serve cold request lost";
          exit 1
      in
      (* the engine generated ~name:"gen" with this spec/seed; rebuild
         it to learn real node names for the delta *)
      let hg =
        Netlist.Generator.generate
          (Netlist.Generator.default_spec ~name:"gen" ~cells ~pads
             ~seed:gen_seed)
      in
      let module Hg = Hypergraph.Hgraph in
      let cell_names =
        let acc = ref [] in
        Hg.iter_nodes
          (fun v -> if not (Hg.is_pad hg v) then acc := Hg.name hg v :: !acc)
          hg;
        List.rev !acc
      in
      let d =
        {
          Netlist.Delta.empty with
          Netlist.Delta.remove_nodes = [ List.nth cell_names 0 ];
          add_cells =
            [ { Netlist.Delta.cell_name = "bench_eco"; size = 1; flops = 0 } ];
          add_nets =
            [
              {
                Netlist.Delta.net_name = "bench_eco_net";
                pins = [ "bench_eco"; List.nth cell_names 2 ];
              };
            ];
        }
      in
      let eco =
        {
          Serve.Protocol.eco_delta =
            Serve.Protocol.Src_text (Netlist.Delta.to_string d);
          eco_partfile = Serve.Protocol.Src_text cold.Serve.Protocol.partition;
        }
      in
      match
        Serve.Engine.handle_requests engine
          [ request ~eco ~id:(Printf.sprintf "w%d" i) ~spec:eco_spec ~gen_seed () ]
      with
      | [ { Serve.Protocol.outcome = Ok _; _ } ] -> ()
      | [ { Serve.Protocol.outcome = Error e; _ } ] ->
        Printf.eprintf "bench: serve eco request failed: %s\n" e;
        exit 1
      | _ ->
        prerr_endline "bench: serve eco request lost";
        exit 1
    done;
    Serve.Engine.shutdown engine;
    let q name p =
      let h = Metrics.histogram name in
      if Metrics.count h = 0 then 0.0 else Metrics.quantile h p
    in
    let result =
      {
        sv_requests = List.length batch_requests;
        sv_wall_s_jobs1 = wall1;
        sv_wall_s_jobsn = walln;
        sv_cold_p50_ms = q "serve.latency.cold_ms" 0.5;
        sv_cold_p95_ms = q "serve.latency.cold_ms" 0.95;
        sv_warm_p50_ms = q "serve.latency.warm_ms" 0.5;
        sv_warm_p95_ms = q "serve.latency.warm_ms" 0.95;
      }
    in
    Metrics.set_enabled false;
    Metrics.reset ();
    Fpart_obs.Recorder.reset ();
    Some result
  end

let snapshot_path = "BENCH_fpart.json"

let overhead_fields ~name (off, on) =
  [
    ("name", Json.Str name);
    ("repeats", Json.Int overhead_repeats);
    ( "overhead",
      Json.Float (if off > 0.0 then (on -. off) /. off else 0.0) );
  ]

let mlevel_row_json r =
  Json.Obj
    [
      ("cells", Json.Int r.ms_cells);
      ("device", Json.Str r.ms_device);
      ("wall_s_flat", Json.Float r.ms_wall_flat);
      ("wall_s_mlevel", Json.Float r.ms_wall_ml);
      ( "speedup",
        Json.Float (if r.ms_wall_ml > 0.0 then r.ms_wall_flat /. r.ms_wall_ml else 0.0) );
      ("cut_flat", Json.Int r.ms_cut_flat);
      ("cut_mlevel", Json.Int r.ms_cut_ml);
      ("k_flat", Json.Int r.ms_k_flat);
      ("k_mlevel", Json.Int r.ms_k_ml);
      ("feasible_flat", Json.Bool r.ms_feas_flat);
      ("feasible_mlevel", Json.Bool r.ms_feas_ml);
      ("levels", Json.Int r.ms_levels);
      ("coarsen_ratio", Json.Float r.ms_ratio);
    ]

let refiner_run_json rr =
  Json.Obj
    [
      ("wall_s", Json.Float rr.rr_wall);
      ("cut", Json.Int rr.rr_cut);
      ("k", Json.Int rr.rr_k);
      ("feasible", Json.Bool rr.rr_feas);
    ]

let refiner_row_json row =
  Json.Obj
    [
      ("workload", Json.Str row.rf_workload);
      ("device", Json.Str row.rf_device);
      ("sanchis", refiner_run_json row.rf_sanchis);
      ("flow", refiner_run_json row.rf_flow);
      ("hybrid", refiner_run_json row.rf_hybrid);
      ( "hybrid_gain",
        Json.Int (row.rf_sanchis.rr_cut - row.rf_hybrid.rr_cut) );
    ]

let serve_field_json sv =
  let rps wall =
    if wall > 0.0 then float_of_int sv.sv_requests /. wall else 0.0
  in
  Json.Obj
    [
      ("name", Json.Str serve_table_name);
      ("requests", Json.Int sv.sv_requests);
      ("wall_s_jobs1", Json.Float sv.sv_wall_s_jobs1);
      ("wall_s_jobsN", Json.Float sv.sv_wall_s_jobsn);
      ("requests_per_s_jobs1", Json.Float (rps sv.sv_wall_s_jobs1));
      ("requests_per_s_jobsN", Json.Float (rps sv.sv_wall_s_jobsn));
      ("cold_p50_ms", Json.Float sv.sv_cold_p50_ms);
      ("cold_p95_ms", Json.Float sv.sv_cold_p95_ms);
      ("warm_p50_ms", Json.Float sv.sv_warm_p50_ms);
      ("warm_p95_ms", Json.Float sv.sv_warm_p95_ms);
      ( "warm_speedup",
        Json.Float
          (if sv.sv_warm_p50_ms > 0.0 then sv.sv_cold_p50_ms /. sv.sv_warm_p50_ms
           else 0.0) );
    ]

let write_snapshot rows parallel selfcheck gain_update recorder resource
    expose mlevel_scale refiner serve =
  let benchmarks =
    List.map
      (fun (name, est) ->
        Json.Obj
          [
            ("name", Json.Str name);
            ( "time_ns",
              match est with Some e -> Json.Float e | None -> Json.Null );
          ])
      rows
  in
  let parallel_field =
    match parallel with
    | None -> Json.Null
    | Some (w1, wn) ->
      Json.Obj
        [
          ("name", Json.Str parallel_name);
          ("wall_s_jobs1", Json.Float w1);
          ("wall_s_jobsN", Json.Float wn);
          ("speedup", Json.Float (if wn > 0.0 then w1 /. wn else 0.0));
        ]
  in
  let selfcheck_field =
    match selfcheck with
    | None -> Json.Null
    | Some (off, cheap) ->
      Json.Obj
        (overhead_fields ~name:selfcheck_name (off, cheap)
        @ [
            ("wall_s_off", Json.Float off);
            ("wall_s_cheap", Json.Float cheap);
          ])
  in
  let gain_update_field =
    match gain_update with
    | None -> Json.Null
    | Some g ->
      let pair p =
        let per_s wall =
          if wall > 0.0 then float_of_int p.gp_moves /. wall else 0.0
        in
        Json.Obj
          [
            ("wall_s_delta", Json.Float p.gp_wall_delta);
            ("wall_s_recompute", Json.Float p.gp_wall_recompute);
            ("moves", Json.Int p.gp_moves);
            ("moves_per_s_delta", Json.Float (per_s p.gp_wall_delta));
            ("moves_per_s_recompute", Json.Float (per_s p.gp_wall_recompute));
            ( "speedup",
              Json.Float
                (if p.gp_wall_delta > 0.0 then
                   p.gp_wall_recompute /. p.gp_wall_delta
                 else 0.0) );
          ]
      in
      Json.Obj
        [
          ("name", Json.Str gain_update_name);
          ("maintenance", pair g.gu_maintenance);
          ("engine", pair g.gu_engine);
          ("delta_updates", Json.Int g.gu_updates);
          ("delta_avoided", Json.Int g.gu_avoided);
        ]
  in
  let recorder_field =
    match recorder with
    | None -> Json.Null
    | Some (off, on) ->
      Json.Obj
        (overhead_fields ~name:recorder_name (off, on)
        @ [
            ("wall_s_disabled", Json.Float off);
            ("wall_s_enabled", Json.Float on);
          ])
  in
  let resource_field =
    match resource with
    | None -> Json.Null
    | Some (off, on) ->
      Json.Obj
        (overhead_fields ~name:resource_name (off, on)
        @ [
            ("wall_s_disabled", Json.Float off);
            ("wall_s_enabled", Json.Float on);
          ])
  in
  let expose_field =
    match expose with
    | None -> Json.Null
    | Some (off, on) ->
      Json.Obj
        (overhead_fields ~name:expose_name (off, on)
        @ [
            ("wall_s_base", Json.Float off);
            ("wall_s_exported", Json.Float on);
          ])
  in
  let mlevel_field =
    match mlevel_scale with
    | None -> Json.Null
    | Some rows ->
      Json.Obj
        [
          ("name", Json.Str mlevel_scale_name);
          ("rows", Json.List (List.map mlevel_row_json rows));
        ]
  in
  let refiner_field =
    match refiner with
    | None -> Json.Null
    | Some rows ->
      Json.Obj
        [
          ("name", Json.Str refiner_table_name);
          ("rows", Json.List (List.map refiner_row_json rows));
        ]
  in
  let json =
    Json.Obj
      [
        ("schema", Json.Str "fpart-bench/1");
        ("quota_s", Json.Float quota);
        ("jobs", Json.Int bench_jobs);
        ("unix_time", Json.Float (Unix.gettimeofday ()));
        ("benchmarks", Json.List benchmarks);
        ("parallel", parallel_field);
        ("selfcheck", selfcheck_field);
        ("gain_update", gain_update_field);
        ("recorder", recorder_field);
        ("resource", resource_field);
        ("expose", expose_field);
        ("mlevel", mlevel_field);
        ("refiner", refiner_field);
        ( "serve",
          match serve with None -> Json.Null | Some sv -> serve_field_json sv );
      ]
  in
  let oc = open_out snapshot_path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc

(* {2 Run-history ledger}

   With FPART_BENCH_LEDGER=FILE set, every bench run also appends one
   fpart-ledger/1 entry carrying the measured values as rows, so
   [fpart_inspect trend]/[regress] can compute per-benchmark
   trajectories across runs — the accumulating counterpart of the
   overwritable snapshot.  Only well-behaved absolute quantities (times,
   throughputs, speedups) become rows; overhead fractions stay in the
   snapshot, where a near-zero baseline cannot blow up a relative
   gate. *)

module Ledger = Fpart_obs.Ledger

(* The bench runner does not link the C stubs in bin/, so its OS
   reading combines Unix.times with the stdlib /proc RSS parser — the
   throttled variant, or the overhead bench would measure the parse. *)
let install_resource_source () =
  Fpart_obs.Resource.set_os_source (fun () ->
      let t = Unix.times () in
      {
        Fpart_obs.Resource.os_maxrss_kb =
          Fpart_obs.Resource.throttled_maxrss_kb ();
        os_utime_s = t.Unix.tms_utime;
        os_stime_s = t.Unix.tms_stime;
      })

let ledger_rows rows parallel selfcheck gain_update recorder resource expose
    mlevel_scale refiner serve =
  let r name value unit_ higher_better =
    { Ledger.name; value; unit_; higher_better }
  in
  let opt f = function None -> [] | Some v -> f v in
  List.filter_map
    (fun (name, est) ->
      Option.map (fun e -> r (name ^ "/time_ns") e "ns" false) est)
    rows
  @ opt
      (fun (w1, wn) ->
        [ r (parallel_name ^ "/speedup") (if wn > 0.0 then w1 /. wn else 0.0) "x" true ])
      parallel
  @ opt
      (fun (off, cheap) ->
        [
          r (selfcheck_name ^ "/wall_s_off") off "s" false;
          r (selfcheck_name ^ "/wall_s_cheap") cheap "s" false;
        ])
      selfcheck
  @ opt
      (fun g ->
        let per_s p w = if w > 0.0 then float_of_int p.gp_moves /. w else 0.0 in
        [
          r
            (gain_update_name ^ "/maintenance-moves-per-s")
            (per_s g.gu_maintenance g.gu_maintenance.gp_wall_delta)
            "moves/s" true;
          r
            (gain_update_name ^ "/engine-speedup")
            (if g.gu_engine.gp_wall_delta > 0.0 then
               g.gu_engine.gp_wall_recompute /. g.gu_engine.gp_wall_delta
             else 0.0)
            "x" true;
        ])
      gain_update
  @ opt
      (fun (off, on) ->
        [
          r (recorder_name ^ "/wall_s_disabled") off "s" false;
          r (recorder_name ^ "/wall_s_enabled") on "s" false;
        ])
      recorder
  @ opt
      (fun (off, on) ->
        [
          r (resource_name ^ "/wall_s_disabled") off "s" false;
          r (resource_name ^ "/wall_s_enabled") on "s" false;
        ])
      resource
  @ opt
      (fun (off, on) ->
        [
          r (expose_name ^ "/wall_s_base") off "s" false;
          r (expose_name ^ "/wall_s_exported") on "s" false;
        ])
      expose
  @ opt
      (fun scale_rows ->
        List.concat_map
          (fun row ->
            let p =
              Printf.sprintf "%s/%dcells" mlevel_scale_name row.ms_cells
            in
            [
              r (p ^ "/wall_s_mlevel") row.ms_wall_ml "s" false;
              r
                (p ^ "/speedup")
                (if row.ms_wall_ml > 0.0 then row.ms_wall_flat /. row.ms_wall_ml
                 else 0.0)
                "x" true;
              r (p ^ "/cut_mlevel") (float_of_int row.ms_cut_ml) "nets" false;
            ])
          scale_rows)
      mlevel_scale
  @ opt
      (fun refiner_rows ->
        List.concat_map
          (fun row ->
            let p =
              Printf.sprintf "%s/%s" refiner_table_name row.rf_workload
            in
            [
              r (p ^ "/cut_sanchis") (float_of_int row.rf_sanchis.rr_cut) "nets" false;
              r (p ^ "/cut_flow") (float_of_int row.rf_flow.rr_cut) "nets" false;
              r (p ^ "/cut_hybrid") (float_of_int row.rf_hybrid.rr_cut) "nets" false;
              r
                (p ^ "/hybrid_gain")
                (float_of_int (row.rf_sanchis.rr_cut - row.rf_hybrid.rr_cut))
                "nets" true;
              r (p ^ "/wall_s_flow") row.rf_flow.rr_wall "s" false;
              r (p ^ "/wall_s_hybrid") row.rf_hybrid.rr_wall "s" false;
            ])
          refiner_rows)
      refiner
  @ opt
      (fun sv ->
        let rps wall =
          if wall > 0.0 then float_of_int sv.sv_requests /. wall else 0.0
        in
        let p = serve_table_name in
        [
          r (p ^ "/requests-per-s-jobs1") (rps sv.sv_wall_s_jobs1) "req/s" true;
          r (p ^ "/requests-per-s-jobsN") (rps sv.sv_wall_s_jobsn) "req/s" true;
          r (p ^ "/cold-p50-ms") sv.sv_cold_p50_ms "ms" false;
          r (p ^ "/warm-p50-ms") sv.sv_warm_p50_ms "ms" false;
          r
            (p ^ "/warm-speedup")
            (if sv.sv_warm_p50_ms > 0.0 then
               sv.sv_cold_p50_ms /. sv.sv_warm_p50_ms
             else 0.0)
            "x" true;
        ])
      serve

let append_ledger path entry_rows =
  let entry =
    {
      Ledger.time = Unix.gettimeofday ();
      git_rev = Ledger.git_rev ();
      kind = "bench";
      label = "bench/main";
      jobs = bench_jobs;
      repeats = overhead_repeats;
      config_digest = None;
      netlist_digest = None;
      rows = entry_rows;
      resource = Some (Fpart_obs.Resource.summary ());
    }
  in
  match Ledger.append path entry with
  | Ok () -> Printf.printf "ledger entry appended to %s\n" path
  | Error e -> Printf.eprintf "bench: cannot append to ledger %s: %s\n" path e

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Some est
            | _ -> None
          in
          rows := (name, est) :: !rows)
        tbl)
    merged;
  List.sort compare !rows

let () =
  install_resource_source ();
  let rows = match tests with None -> [] | Some tests -> run_bechamel tests in
  Printf.printf "%-42s %15s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 58 '-');
  List.iter
    (fun (name, est) ->
      let pretty =
        match est with
        | None -> "n/a"
        | Some est ->
          if est >= 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est >= 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est >= 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
      in
      Printf.printf "%-42s %15s\n" name pretty)
    rows;
  let parallel = measure_parallel () in
  (match parallel with
  | None -> ()
  | Some (w1, wn) ->
    Printf.printf "%-42s %15s\n" parallel_name
      (Printf.sprintf "%.2fx (jobs=%d)" (if wn > 0.0 then w1 /. wn else 0.0)
         bench_jobs));
  let selfcheck = measure_selfcheck () in
  (match selfcheck with
  | None -> ()
  | Some (off, cheap) ->
    Printf.printf "%-42s %15s\n" selfcheck_name
      (Printf.sprintf "%+.1f%% (cheap)"
         (if off > 0.0 then 100.0 *. (cheap -. off) /. off else 0.0)));
  let gain_update = measure_gain_update () in
  (match gain_update with
  | None -> ()
  | Some g ->
    let speedup p =
      if p.gp_wall_delta > 0.0 then p.gp_wall_recompute /. p.gp_wall_delta
      else 0.0
    in
    Printf.printf "%-42s %15s\n" gain_update_name
      (Printf.sprintf "%.2fx maint, %.2fx engine"
         (speedup g.gu_maintenance) (speedup g.gu_engine)));
  let recorder = measure_recorder () in
  (match recorder with
  | None -> ()
  | Some (off, on) ->
    Printf.printf "%-42s %15s\n" recorder_name
      (Printf.sprintf "%+.1f%% (enabled)"
         (if off > 0.0 then 100.0 *. (on -. off) /. off else 0.0)));
  let resource = measure_resource () in
  (match resource with
  | None -> ()
  | Some (off, on) ->
    Printf.printf "%-42s %15s\n" resource_name
      (Printf.sprintf "%+.1f%% (enabled)"
         (if off > 0.0 then 100.0 *. (on -. off) /. off else 0.0)));
  let expose = measure_expose () in
  (match expose with
  | None -> ()
  | Some (off, on) ->
    Printf.printf "%-42s %15s\n" expose_name
      (Printf.sprintf "%+.1f%% (exported)"
         (if off > 0.0 then 100.0 *. (on -. off) /. off else 0.0)));
  let mlevel_scale = measure_mlevel_scale () in
  (match mlevel_scale with
  | None -> ()
  | Some scale_rows ->
    List.iter
      (fun r ->
        Printf.printf "%-42s %15s\n"
          (Printf.sprintf "%s/%dcells" mlevel_scale_name r.ms_cells)
          (Printf.sprintf "%.2fx (cut %d vs %d)"
             (if r.ms_wall_ml > 0.0 then r.ms_wall_flat /. r.ms_wall_ml else 0.0)
             r.ms_cut_ml r.ms_cut_flat))
      scale_rows);
  let refiner = measure_refiner () in
  (match refiner with
  | None -> ()
  | Some refiner_rows ->
    List.iter
      (fun row ->
        Printf.printf "%-42s %15s\n"
          (Printf.sprintf "%s/%s" refiner_table_name row.rf_workload)
          (Printf.sprintf "cut %d/%d/%d s/f/h" row.rf_sanchis.rr_cut
             row.rf_flow.rr_cut row.rf_hybrid.rr_cut))
      refiner_rows);
  let serve = measure_serve () in
  (match serve with
  | None -> ()
  | Some sv ->
    Printf.printf "%-42s %15s\n" serve_table_name
      (Printf.sprintf "cold %.1fms warm %.1fms p50" sv.sv_cold_p50_ms
         sv.sv_warm_p50_ms));
  write_snapshot rows parallel selfcheck gain_update recorder resource expose
    mlevel_scale refiner serve;
  Printf.printf "perf snapshot written to %s\n" snapshot_path;
  match Sys.getenv_opt "FPART_BENCH_LEDGER" with
  | None | Some "" -> ()
  | Some path ->
    append_ledger path
      (ledger_rows rows parallel selfcheck gain_update recorder resource expose
         mlevel_scale refiner serve)
