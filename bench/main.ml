(* Bechamel benchmarks: one per paper table/figure (timing a
   representative slice of the experiment that regenerates it; the full
   tables are produced by bin/run_experiments.exe), plus
   micro-benchmarks of the hot data structures.

   Run with: dune exec bench/main.exe

   Besides the stdout table, every run writes BENCH_fpart.json — the
   machine-readable perf snapshot that perf PRs diff against.
   Environment knobs (both optional):
     FPART_BENCH_QUOTA  seconds of sampling per benchmark (default 1.0)
     FPART_BENCH_ONLY   substring filter on benchmark names *)

open Bechamel
open Toolkit

let mcnc name = Option.get (Netlist.Mcnc.find name)

(* Shared workloads, built once. *)
let c3540_3000 = lazy (Netlist.Mcnc.surrogate (mcnc "c3540") Device.XC3000)
let c3540_2000 = lazy (Netlist.Mcnc.surrogate (mcnc "c3540") Device.XC2000)
let s5378_3000 = lazy (Netlist.Mcnc.surrogate (mcnc "s5378") Device.XC3000)

let fpart hg device = ignore (Fpart.Driver.run (Lazy.force hg) device)

(* Table 1: workload generation (the surrogate builder itself). *)
let bench_table1 =
  Test.make ~name:"table1/generate-c3540"
    (Staged.stage (fun () ->
         let spec =
           Netlist.Generator.default_spec ~name:"c3540" ~cells:283 ~pads:72 ~seed:1
         in
         ignore (Netlist.Generator.generate spec)))

(* Tables 2-5: one representative (circuit, device) per table, all three
   algorithms for Table 2 (the headline comparison). *)
let bench_table2_fpart =
  Test.make ~name:"table2/fpart-c3540-xc3020"
    (Staged.stage (fun () -> fpart c3540_3000 Device.xc3020))

let bench_table2_kwayx =
  Test.make ~name:"table2/kwayx-c3540-xc3020"
    (Staged.stage (fun () ->
         ignore (Fpart.Kwayx.run (Lazy.force c3540_3000) Device.xc3020)))

let bench_table2_fbbmw =
  Test.make ~name:"table2/fbbmw-c3540-xc3020"
    (Staged.stage (fun () ->
         ignore
           (Flow.Fbb_mw.partition (Lazy.force c3540_3000) Device.xc3020
              Flow.Fbb_mw.default_config)))

let bench_table3 =
  Test.make ~name:"table3/fpart-c3540-xc3042"
    (Staged.stage (fun () -> fpart c3540_3000 Device.xc3042))

let bench_table4 =
  Test.make ~name:"table4/fpart-s5378-xc3090"
    (Staged.stage (fun () -> fpart s5378_3000 Device.xc3090))

let bench_table5 =
  Test.make ~name:"table5/fpart-c3540-xc2064"
    (Staged.stage (fun () -> fpart c3540_2000 Device.xc2064))

(* Table 6 is itself a timing table; benchmark the dominant cost (a full
   FPART run on a mid-size circuit). *)
let bench_table6 =
  Test.make ~name:"table6/fpart-s5378-xc3020"
    (Staged.stage (fun () -> fpart s5378_3000 Device.xc3020))

(* Figure 1: driver with trace recording. *)
let bench_figure1 =
  Test.make ~name:"figure1/fpart-trace-s5378-xc3042"
    (Staged.stage (fun () -> fpart s5378_3000 Device.xc3042))

(* Figure 2: the lexicographic solution evaluation (runs once per move
   in every improvement pass — the hot cost path). *)
let bench_figure2 =
  let st =
    lazy
      (Partition.State.create (Lazy.force c3540_3000) ~k:6 ~assign:(fun v -> v mod 6))
  in
  let ctx =
    lazy (Partition.Cost.context_of Device.xc3020 ~delta:0.9 (Lazy.force c3540_3000))
  in
  Test.make ~name:"figure2/cost-evaluate"
    (Staged.stage (fun () ->
         ignore
           (Partition.Cost.evaluate Partition.Cost.default_params (Lazy.force ctx)
              (Lazy.force st) ~remainder:(Some 5) ~step_k:3)))

(* Figure 3: one bounded Sanchis pair pass (the move-region machinery). *)
let bench_figure3 =
  Test.make ~name:"figure3/sanchis-pair-pass"
    (Staged.stage (fun () ->
         let hg = Lazy.force c3540_3000 in
         let st = Partition.State.create hg ~k:2 ~assign:(fun v -> v land 1) in
         let ctx = Partition.Cost.context_of Device.xc3020 ~delta:0.9 hg in
         let spec =
           {
             Sanchis.active = [| 0; 1 |];
             remainder = Some 1;
             lower = Array.make 2 0;
             upper = Array.make 2 max_int;
           }
         in
         let config = { Sanchis.default_config with max_passes = 1; stack_depth = 0 } in
         let eval st =
           Partition.Cost.evaluate Partition.Cost.default_params ctx st
             ~remainder:(Some 1) ~step_k:1
         in
         ignore (Sanchis.improve st ~spec ~config ~eval)))

(* Micro-benchmarks of the substrates. *)
let bench_state_move =
  let st =
    lazy
      (Partition.State.create (Lazy.force c3540_3000) ~k:4 ~assign:(fun v -> v mod 4))
  in
  Test.make ~name:"micro/state-move"
    (Staged.stage (fun () ->
         let st = Lazy.force st in
         Partition.State.move st 0 1;
         Partition.State.move st 0 0))

let bench_cut_gain =
  let st =
    lazy
      (Partition.State.create (Lazy.force c3540_3000) ~k:4 ~assign:(fun v -> v mod 4))
  in
  Test.make ~name:"micro/cut-gain"
    (Staged.stage (fun () -> ignore (Partition.State.cut_gain (Lazy.force st) 0 1)))

let bench_bucket =
  Test.make ~name:"micro/bucket-insert-remove"
    (Staged.stage
       (let b = Gainbucket.Bucket_array.create ~cells:1024 ~max_gain:32 () in
        fun () ->
          for c = 0 to 63 do
            Gainbucket.Bucket_array.insert b c ((c mod 65) - 32)
          done;
          for c = 0 to 63 do
            Gainbucket.Bucket_array.remove b c
          done))

let bench_fbb =
  Test.make ~name:"micro/fbb-bipartition-small"
    (Staged.stage (fun () ->
         let hg = Lazy.force c3540_3000 in
         let rng = Prng.Splitmix.create 7 in
         ignore
           (Flow.Fbb.bipartition hg
              ~keep:(fun _ -> true)
              ~seed_s:0
              ~seed_t:(Hypergraph.Hgraph.num_cells hg - 1)
              ~lo:100 ~hi:160 ~rng)))

(* Extensions: clustering pre-pass, clustered driver, heterogeneous. *)
let bench_cluster_build =
  Test.make ~name:"ext/cluster-build-c3540"
    (Staged.stage (fun () ->
         ignore (Cluster.build (Lazy.force c3540_3000) ~max_cluster_size:4 ~seed:1)))

let bench_fpart_clustered =
  Test.make ~name:"ext/fpart-clustered-c3540-xc3020"
    (Staged.stage (fun () ->
         let config = { Fpart.Config.default with cluster_size = Some 4 } in
         ignore (Fpart.Driver.run ~config (Lazy.force c3540_3000) Device.xc3020)))

let bench_hetero =
  Test.make ~name:"ext/hetero-c3540"
    (Staged.stage (fun () -> ignore (Fpart.Hetero.run (Lazy.force c3540_3000))))

let all_tests =
  [
    bench_table1;
    bench_table2_fpart;
    bench_table2_kwayx;
    bench_table2_fbbmw;
    bench_table3;
    bench_table4;
    bench_table5;
    bench_table6;
    bench_figure1;
    bench_figure2;
    bench_figure3;
    bench_state_move;
    bench_cut_gain;
    bench_bucket;
    bench_fbb;
    bench_cluster_build;
    bench_fpart_clustered;
    bench_hetero;
  ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let quota =
  match Sys.getenv_opt "FPART_BENCH_QUOTA" with
  | Some s -> (
    match float_of_string_opt s with Some q when q > 0.0 -> q | _ -> 1.0)
  | None -> 1.0

let parallel_name = "parallel/run-best-table2"
let selfcheck_name = "selfcheck/overhead-table2"
let gain_update_name = "gain_update/table2"
let recorder_name = "recorder/overhead-table2"

let parallel_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains parallel_name pat

let selfcheck_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains selfcheck_name pat

let gain_update_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains gain_update_name pat

let recorder_wanted =
  match Sys.getenv_opt "FPART_BENCH_ONLY" with
  | None -> true
  | Some pat -> contains recorder_name pat

let tests =
  let kept =
    match Sys.getenv_opt "FPART_BENCH_ONLY" with
    | None -> all_tests
    | Some pat -> List.filter (fun t -> contains (Test.name t) pat) all_tests
  in
  if
    kept = [] && not parallel_wanted && not selfcheck_wanted
    && not gain_update_wanted && not recorder_wanted
  then begin
    prerr_endline "bench: FPART_BENCH_ONLY matched no benchmarks";
    exit 1
  end;
  match kept with
  | [] -> None
  | kept -> Some (Test.make_grouped ~name:"fpart" kept)

module Json = Fpart_obs.Json

(* Parallel speedup: wall time of an 8-start Driver.run_best at jobs=1
   vs jobs=FPART_BENCH_JOBS (default: recommended_domain_count).  Not a
   bechamel benchmark — one timed run each is enough for a wall-clock
   ratio, and bechamel's per-run allocation probes would fight the
   domain pool.  Reported as its own "parallel" object in the snapshot
   (the "benchmarks" list keeps its schema). *)

let bench_jobs =
  match Sys.getenv_opt "FPART_BENCH_JOBS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let measure_parallel () =
  if not parallel_wanted then None
  else begin
    let hg = Lazy.force c3540_3000 in
    let time jobs =
      let t0 = Unix.gettimeofday () in
      let r = Fpart.Driver.run_best ~jobs ~runs:8 hg Device.xc3020 in
      (Unix.gettimeofday () -. t0, r)
    in
    let w1, r1 = time 1 in
    let wn, rn = time bench_jobs in
    if rn.Fpart.Driver.assignment <> r1.Fpart.Driver.assignment then begin
      prerr_endline "bench: parallel run_best diverged from sequential";
      exit 1
    end;
    Some (w1, wn)
  end

(* Self-check overhead: wall time of a Driver.run on the table-2
   workload with selfcheck off vs cheap (pass-boundary oracle
   validation).  Min of 3 interleaved runs each, so transient noise
   cannot inflate either side.  The acceptance bar is <= 10% overhead
   for the cheap level. *)

let measure_selfcheck () =
  if not selfcheck_wanted then None
  else begin
    let hg = Lazy.force c3540_3000 in
    let time level =
      let config = { Fpart.Config.default with selfcheck = level } in
      let t0 = Unix.gettimeofday () in
      ignore (Fpart.Driver.run ~config hg Device.xc3020);
      Unix.gettimeofday () -. t0
    in
    let best_off = ref infinity and best_cheap = ref infinity in
    for _ = 1 to 3 do
      best_off := min !best_off (time Fpart_check.Selfcheck.Off);
      best_cheap := min !best_cheap (time Fpart_check.Selfcheck.Cheap)
    done;
    Some (!best_off, !best_cheap)
  end

(* Delta-gain throughput on the table-2 circuit, [gain_update = Delta]
   (incremental critical-net updates, the default) vs [Recompute] (the
   escape hatch that rebuilds every neighbour gain from scratch).  Two
   measurements, both bit-identical across modes:

   - maintenance: [Sanchis.drive_gain_maintenance] applies the same
     scripted move sequence through the real per-move machinery with no
     selection, lookahead, evaluation or rewind, and clocks only the
     neighbour refresh itself — the one piece the two modes implement
     differently.  This is the headline moves/sec the bench-regression
     CI job guards, with an acceptance bar of >= 2x for delta.
   - engine: a full 4-way [Sanchis.improve] from a fresh round-robin
     assignment.  Selection, evaluation and pass setup are shared by
     both modes, so this end-to-end ratio is much smaller (Amdahl);
     recorded so the snapshot keeps the honest whole-engine number.

   Min of 3 interleaved samples per measurement per mode.  The delta
   engine's update/avoided counters ride along so regressions in the
   quiet-net skip show up in the snapshot diff too. *)

type gu_pair = {
  gp_wall_delta : float;
  gp_wall_recompute : float;
  gp_moves : int;  (** applied moves per sample (identical across modes) *)
}

type gain_update_result = {
  gu_maintenance : gu_pair;
  gu_engine : gu_pair;
  gu_updates : int;  (** sanchis.delta.updates over one delta sample *)
  gu_avoided : int;  (** sanchis.delta.avoided over one delta sample *)
}

let gu_maintenance_moves = 50_000

let measure_gain_update () =
  if not gain_update_wanted then None
  else begin
    let module Metrics = Fpart_obs.Metrics in
    let hg = Lazy.force c3540_3000 in
    (* table 2 splits c3540 across 7 XC3020s; matching that arity also
       matters for the measurement itself: recompute refreshes every
       neighbour towards all k-1 targets while delta touches ~2, so the
       maintenance gap is a function of k. *)
    let k = 7 in
    let ctx = Partition.Cost.context_of Device.xc3020 ~delta:0.9 hg in
    let spec =
      {
        Sanchis.active = Array.init k Fun.id;
        remainder = None;
        lower = Array.make k 0;
        upper = Array.make k max_int;
      }
    in
    let c_updates = Metrics.counter "sanchis.delta.updates" in
    let c_avoided = Metrics.counter "sanchis.delta.avoided" in
    let config mode = { Sanchis.default_config with gain_update = mode } in
    let maintenance_sample mode =
      let st = Partition.State.create hg ~k ~assign:(fun v -> v mod k) in
      let applied, refresh_s =
        Sanchis.drive_gain_maintenance st ~spec ~config:(config mode)
          ~moves:gu_maintenance_moves ~seed:1
      in
      (refresh_s, applied, Array.copy (Partition.State.assignment st))
    in
    let engine_sample mode =
      let st = Partition.State.create hg ~k ~assign:(fun v -> v mod k) in
      let tracker =
        Partition.Cost.tracker Partition.Cost.default_params ctx st
          ~remainder:None ~step_k:k
      in
      let eval st = Partition.Cost.tracked_evaluate tracker st in
      let t0 = Unix.gettimeofday () in
      let report = Sanchis.improve st ~spec ~config:(config mode) ~eval in
      let wall = Unix.gettimeofday () -. t0 in
      ( wall,
        report.Sanchis.moves_applied,
        Array.copy (Partition.State.assignment st) )
    in
    let compare_modes name sample =
      let best_d = ref infinity and best_r = ref infinity in
      let moves = ref 0 in
      for _ = 1 to 3 do
        let wd, md, ad = sample Sanchis.Delta in
        let wr, mr, ar = sample Sanchis.Recompute in
        if md <> mr || ad <> ar then begin
          Printf.eprintf "bench: %s diverged between delta and recompute\n"
            name;
          exit 1
        end;
        best_d := min !best_d wd;
        best_r := min !best_r wr;
        moves := md
      done;
      {
        gp_wall_delta = !best_d;
        gp_wall_recompute = !best_r;
        gp_moves = !moves;
      }
    in
    let u0 = Metrics.counter_value c_updates in
    let a0 = Metrics.counter_value c_avoided in
    let maintenance = compare_modes "gain maintenance" maintenance_sample in
    let updates = ref (Metrics.counter_value c_updates - u0) in
    let avoided = ref (Metrics.counter_value c_avoided - a0) in
    (* three delta samples ran above; report per-sample counts *)
    updates := !updates / 3;
    avoided := !avoided / 3;
    let engine = compare_modes "engine run" engine_sample in
    Some
      {
        gu_maintenance = maintenance;
        gu_engine = engine;
        gu_updates = !updates;
        gu_avoided = !avoided;
      }
  end

(* Recorder overhead: wall time of a Driver.run on the table-2 workload
   with observability disabled (the default — every span_begin is one
   atomic load) vs fully enabled into a null sink (span bookkeeping,
   gain-curve accumulation and record assembly, minus I/O).  Min of 3
   interleaved runs each.  The acceptance bar is <= 5%: CI asserts
   [overhead < 0.05] where overhead = (enabled - disabled) / disabled. *)

let measure_recorder () =
  if not recorder_wanted then None
  else begin
    let module Metrics = Fpart_obs.Metrics in
    let module Sink = Fpart_obs.Sink in
    let hg = Lazy.force c3540_3000 in
    let time enabled =
      if enabled then begin
        Metrics.set_enabled true;
        Sink.set Sink.null
      end;
      let t0 = Unix.gettimeofday () in
      ignore (Fpart.Driver.run hg Device.xc3020);
      let wall = Unix.gettimeofday () -. t0 in
      if enabled then begin
        Metrics.set_enabled false;
        Metrics.reset ();
        Fpart_obs.Recorder.reset ()
      end;
      wall
    in
    let best_off = ref infinity and best_on = ref infinity in
    for _ = 1 to 3 do
      best_off := min !best_off (time false);
      best_on := min !best_on (time true)
    done;
    Some (!best_off, !best_on)
  end

let snapshot_path = "BENCH_fpart.json"

let write_snapshot rows parallel selfcheck gain_update recorder =
  let benchmarks =
    List.map
      (fun (name, est) ->
        Json.Obj
          [
            ("name", Json.Str name);
            ( "time_ns",
              match est with Some e -> Json.Float e | None -> Json.Null );
          ])
      rows
  in
  let parallel_field =
    match parallel with
    | None -> Json.Null
    | Some (w1, wn) ->
      Json.Obj
        [
          ("name", Json.Str parallel_name);
          ("wall_s_jobs1", Json.Float w1);
          ("wall_s_jobsN", Json.Float wn);
          ("speedup", Json.Float (if wn > 0.0 then w1 /. wn else 0.0));
        ]
  in
  let selfcheck_field =
    match selfcheck with
    | None -> Json.Null
    | Some (off, cheap) ->
      Json.Obj
        [
          ("name", Json.Str selfcheck_name);
          ("wall_s_off", Json.Float off);
          ("wall_s_cheap", Json.Float cheap);
          ( "overhead",
            Json.Float (if off > 0.0 then (cheap -. off) /. off else 0.0) );
        ]
  in
  let gain_update_field =
    match gain_update with
    | None -> Json.Null
    | Some g ->
      let pair p =
        let per_s wall =
          if wall > 0.0 then float_of_int p.gp_moves /. wall else 0.0
        in
        Json.Obj
          [
            ("wall_s_delta", Json.Float p.gp_wall_delta);
            ("wall_s_recompute", Json.Float p.gp_wall_recompute);
            ("moves", Json.Int p.gp_moves);
            ("moves_per_s_delta", Json.Float (per_s p.gp_wall_delta));
            ("moves_per_s_recompute", Json.Float (per_s p.gp_wall_recompute));
            ( "speedup",
              Json.Float
                (if p.gp_wall_delta > 0.0 then
                   p.gp_wall_recompute /. p.gp_wall_delta
                 else 0.0) );
          ]
      in
      Json.Obj
        [
          ("name", Json.Str gain_update_name);
          ("maintenance", pair g.gu_maintenance);
          ("engine", pair g.gu_engine);
          ("delta_updates", Json.Int g.gu_updates);
          ("delta_avoided", Json.Int g.gu_avoided);
        ]
  in
  let recorder_field =
    match recorder with
    | None -> Json.Null
    | Some (off, on) ->
      Json.Obj
        [
          ("name", Json.Str recorder_name);
          ("wall_s_disabled", Json.Float off);
          ("wall_s_enabled", Json.Float on);
          ( "overhead",
            Json.Float (if off > 0.0 then (on -. off) /. off else 0.0) );
        ]
  in
  let json =
    Json.Obj
      [
        ("schema", Json.Str "fpart-bench/1");
        ("quota_s", Json.Float quota);
        ("jobs", Json.Int bench_jobs);
        ("unix_time", Json.Float (Unix.gettimeofday ()));
        ("benchmarks", Json.List benchmarks);
        ("parallel", parallel_field);
        ("selfcheck", selfcheck_field);
        ("gain_update", gain_update_field);
        ("recorder", recorder_field);
      ]
  in
  let oc = open_out snapshot_path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Some est
            | _ -> None
          in
          rows := (name, est) :: !rows)
        tbl)
    merged;
  List.sort compare !rows

let () =
  let rows = match tests with None -> [] | Some tests -> run_bechamel tests in
  Printf.printf "%-42s %15s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 58 '-');
  List.iter
    (fun (name, est) ->
      let pretty =
        match est with
        | None -> "n/a"
        | Some est ->
          if est >= 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est >= 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est >= 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
      in
      Printf.printf "%-42s %15s\n" name pretty)
    rows;
  let parallel = measure_parallel () in
  (match parallel with
  | None -> ()
  | Some (w1, wn) ->
    Printf.printf "%-42s %15s\n" parallel_name
      (Printf.sprintf "%.2fx (jobs=%d)" (if wn > 0.0 then w1 /. wn else 0.0)
         bench_jobs));
  let selfcheck = measure_selfcheck () in
  (match selfcheck with
  | None -> ()
  | Some (off, cheap) ->
    Printf.printf "%-42s %15s\n" selfcheck_name
      (Printf.sprintf "%+.1f%% (cheap)"
         (if off > 0.0 then 100.0 *. (cheap -. off) /. off else 0.0)));
  let gain_update = measure_gain_update () in
  (match gain_update with
  | None -> ()
  | Some g ->
    let speedup p =
      if p.gp_wall_delta > 0.0 then p.gp_wall_recompute /. p.gp_wall_delta
      else 0.0
    in
    Printf.printf "%-42s %15s\n" gain_update_name
      (Printf.sprintf "%.2fx maint, %.2fx engine"
         (speedup g.gu_maintenance) (speedup g.gu_engine)));
  let recorder = measure_recorder () in
  (match recorder with
  | None -> ()
  | Some (off, on) ->
    Printf.printf "%-42s %15s\n" recorder_name
      (Printf.sprintf "%+.1f%% (enabled)"
         (if off > 0.0 then 100.0 *. (on -. off) /. off else 0.0)));
  write_snapshot rows parallel selfcheck gain_update recorder;
  Printf.printf "perf snapshot written to %s\n" snapshot_path
