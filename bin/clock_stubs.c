/* Monotonic time for the fpart binaries: CLOCK_MONOTONIC nanoseconds
   as an int64, immune to wall-clock steps (NTP, DST).  Kept in bin/ so
   the libraries stay free of C stubs. */

#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

int64_t fpart_clock_monotonic_ns_native(void)
{
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return 0;
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

value fpart_clock_monotonic_ns_bytecode(value unit)
{
  (void)unit;
  return caml_copy_int64(fpart_clock_monotonic_ns_native());
}
