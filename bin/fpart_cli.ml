(* fpart: partition a BLIF netlist onto copies of an FPGA device.

   Usage:
     fpart CIRCUIT.blif --device XC3020 [--delta 0.9] [--algo fpart]
     fpart --generate 400x60 --device XC3042 -o out_prefix

   Prints a per-block report; with -o, also writes one BLIF per block
   whose cells are the block's cells (pads become that device's I/O). *)

open Cmdliner

let load_circuit input generate seed =
  match (input, generate) with
  | Some path, None -> (
    (* format by extension: .v = structural Verilog, everything else BLIF *)
    if Filename.check_suffix path ".v" then
      match Netlist.Verilog.parse_file path with
      | Ok m -> Ok (m.Netlist.Verilog.mod_name, m.Netlist.Verilog.graph)
      | Error e -> Error (Printf.sprintf "cannot parse %s: %s" path e)
    else
      match Netlist.Blif.parse_file path with
      | Ok m -> Ok (m.Netlist.Blif.model_name, m.Netlist.Blif.graph)
      | Error e -> Error (Printf.sprintf "cannot parse %s: %s" path e))
  | None, Some spec when String.length spec > 5 && String.sub spec 0 5 = "rent:"
    -> (
    (* rent:CELLS — Rent-rule family with pads = 3·sqrt(cells), the
       scale regime of the multilevel engine *)
    match int_of_string_opt (String.sub spec 5 (String.length spec - 5)) with
    | Some cells when cells >= 64 ->
      let spec = Netlist.Generator.rent_spec ~name:"rent" ~cells ~seed in
      Ok ("generated", Netlist.Generator.generate spec)
    | _ -> Error "bad --generate spec (expected rent:CELLS with CELLS >= 64)")
  | None, Some spec -> (
    match String.split_on_char 'x' spec with
    | [ cells; pads ] -> (
      match (int_of_string_opt cells, int_of_string_opt pads) with
      | Some cells, Some pads when cells >= 2 && pads >= 1 ->
        let spec =
          Netlist.Generator.default_spec ~name:"gen" ~cells ~pads ~seed
        in
        Ok ("generated", Netlist.Generator.generate spec)
      | _ -> Error "bad --generate spec (expected CELLSxPADS or rent:CELLS)")
    | _ -> Error "bad --generate spec (expected CELLSxPADS or rent:CELLS)")
  | Some _, Some _ -> Error "give either an input file or --generate, not both"
  | None, None -> Error "no input: give a BLIF file or --generate CELLSxPADS"

type algo = Algo_fpart | Algo_kwayx | Algo_fbb_mw

type engine = Eng_flat | Eng_mlevel

type log_level = Quiet | Info | Debug

(* Observability wiring: --trace/--stats/--log-level all enable the
   Fpart_obs layer; the sinks compose (JSONL file + pretty stderr).
   Info shows the algorithm narrative (trace events), debug adds the
   span records. *)
let setup_obs ~trace ~trace_format ~stats ~log_level =
  (* the getrusage source backs --stats gc reporting and --ledger
     resource peaks even when the recorder stays off, so install it
     unconditionally *)
  Obs_setup.install_resource ();
  let obs_on = stats || trace <> None || log_level <> Quiet in
  if obs_on then begin
    Obs_setup.install_clock ();
    Fpart_obs.Metrics.set_enabled true;
    Fpart_obs.Resource.set_enabled true;
    let sinks =
      match trace with
      | Some path -> (
        try [ Obs_setup.file_sink trace_format (open_out path) ]
        with Sys_error msg ->
          prerr_endline ("fpart: cannot open trace file: " ^ msg);
          exit 1)
      | None -> []
    in
    let sinks =
      match log_level with
      | Quiet -> sinks
      | Debug -> Fpart_obs.Sink.pretty Format.err_formatter :: sinks
      | Info ->
        Fpart_obs.Sink.filtered
          ~keep:(fun j ->
            Fpart_obs.Json.member "type" j = Some (Fpart_obs.Json.Str "trace"))
          (Fpart_obs.Sink.pretty Format.err_formatter)
        :: sinks
    in
    match sinks with
    | [] -> () (* --stats alone: metrics on, no record stream *)
    | [ s ] -> Fpart_obs.Sink.set s
    | sinks -> Fpart_obs.Sink.set (Fpart_obs.Sink.tee sinks)
  end

(* {2 Run ledger}

   --ledger FILE appends one schema-versioned record per run: wall
   time, result shape, config/netlist digests (so trend analysis can
   tell "same workload" from "different workload") and the process
   resource summary.  Analyzed offline by fpart_inspect trend/regress. *)

let algo_name = function
  | Algo_fpart -> "fpart"
  | Algo_kwayx -> "kwayx"
  | Algo_fbb_mw -> "fbb-mw"

let engine_name = function Eng_flat -> "flat" | Eng_mlevel -> "mlevel"

(* Shared fpart configuration from the CLI knobs; also the canonical
   config-digest producer for the ledger (kwayx/fbb-mw runs digest the
   same record — their relevant knobs, delta and seed, live in it). *)
let make_config ~delta ~seed ~cluster ~jobs ~selfcheck ~gain_update ~refiner =
  {
    Fpart.Config.default with
    delta;
    seed;
    cluster_size = cluster;
    jobs;
    selfcheck;
    gain_update;
    refiner;
  }

let config_digest ~algo ~engine ~runs config =
  Fpart.Config.digest
    ~extra:
      (Printf.sprintf "algo=%s;engine=%s;runs=%d" (algo_name algo)
         (engine_name engine) runs)
    config

let netlist_digest = Hypergraph.Hgraph.digest

let append_ledger path ~label ~jobs ~config_digest ~netlist_digest ~rows =
  let entry =
    {
      Fpart_obs.Ledger.time = Unix.gettimeofday ();
      git_rev = Fpart_obs.Ledger.git_rev ();
      kind = "run";
      label;
      jobs;
      repeats = 1;
      config_digest = Some config_digest;
      netlist_digest = Some netlist_digest;
      rows;
      resource = Some (Fpart_obs.Resource.summary ());
    }
  in
  match Fpart_obs.Ledger.append path entry with
  | Ok () -> Format.printf "run recorded in %s@." path
  | Error e -> Printf.eprintf "fpart: cannot append to ledger %s: %s\n" path e

let algo_conv =
  let parse = function
    | "fpart" -> Ok Algo_fpart
    | "kwayx" | "k-way.x" -> Ok Algo_kwayx
    | "fbb-mw" | "fbbmw" -> Ok Algo_fbb_mw
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Algo_fpart -> "fpart"
      | Algo_kwayx -> "kwayx"
      | Algo_fbb_mw -> "fbb-mw")
  in
  Arg.conv (parse, print)

let partition algo engine hg device ~config ~delta ~seed ~runs =
  match algo with
  | Algo_fpart -> (
    match engine with
    | Eng_flat ->
      let r = Fpart.Driver.run_best ~config ~runs hg device in
      (r.Fpart.Driver.k, r.Fpart.Driver.assignment, r.Fpart.Driver.feasible,
       r.Fpart.Driver.trace)
    | Eng_mlevel ->
      (* --runs becomes the coarse-level multi-start breadth *)
      let mcfg =
        if runs > 1 then
          { Mlevel.Engine.default_config with Mlevel.Engine.coarse_runs = runs }
        else Mlevel.Engine.default_config
      in
      let r = Mlevel.Engine.run ~config:mcfg ~base:config hg device in
      let res = r.Mlevel.Engine.res in
      (res.Fpart.Driver.k, res.Fpart.Driver.assignment,
       res.Fpart.Driver.feasible, res.Fpart.Driver.trace))
  | Algo_kwayx ->
    let r = Fpart.Kwayx.run ?delta hg device in
    (r.Fpart.Kwayx.k, r.Fpart.Kwayx.assignment, r.Fpart.Kwayx.feasible, [])
  | Algo_fbb_mw ->
    let d = match delta with Some d -> d | None -> Device.paper_delta device in
    let cfg = { Flow.Fbb_mw.default_config with delta = d; rng_seed = seed } in
    let r = Flow.Fbb_mw.partition hg device cfg in
    (r.Flow.Fbb_mw.k, r.Flow.Fbb_mw.assignment, r.Flow.Fbb_mw.feasible, [])

let write_blocks prefix name hg assignment k =
  for b = 0 to k - 1 do
    let bld = Hypergraph.Hgraph.Builder.create () in
    let ids = Hashtbl.create 64 in
    Hypergraph.Hgraph.iter_nodes
      (fun v ->
        if assignment.(v) = b then
          let id =
            match Hypergraph.Hgraph.kind hg v with
            | Hypergraph.Hgraph.Cell ->
              Hypergraph.Hgraph.Builder.add_cell bld
                ~name:(Hypergraph.Hgraph.name hg v)
                ~size:(Hypergraph.Hgraph.size hg v)
            | Hypergraph.Hgraph.Pad ->
              Hypergraph.Hgraph.Builder.add_pad bld
                ~name:(Hypergraph.Hgraph.name hg v)
          in
          Hashtbl.replace ids v id)
      hg;
    Hypergraph.Hgraph.iter_nets
      (fun e ->
        let pins =
          Array.to_list (Hypergraph.Hgraph.pins hg e)
          |> List.filter_map (Hashtbl.find_opt ids)
        in
        if List.length pins >= 2 then
          ignore
            (Hypergraph.Hgraph.Builder.add_net bld
               ~name:(Hypergraph.Hgraph.net_name hg e)
               pins))
      hg;
    let sub = Hypergraph.Hgraph.Builder.freeze bld in
    let path = Printf.sprintf "%s_block%d.blif" prefix b in
    (* pads in subcircuits may have several nets after cutting; export
       structurally instead when that happens *)
    (try
       Netlist.Blif.write_file path
         (Netlist.Blif.of_hypergraph ~name:(Printf.sprintf "%s_b%d" name b) sub)
     with Invalid_argument msg ->
       Printf.eprintf "warning: %s not written (%s)\n" path msg)
  done

(* --check FILE: load a saved partition and validate it instead of
   partitioning from scratch. *)
let check_mode path hg device delta =
  match Netlist.Partfile.parse_file path with
  | Error e -> Error (Printf.sprintf "cannot parse %s: %s" path e)
  | Ok pf -> (
    match Netlist.Partfile.apply pf hg with
    | Error e -> Error (Printf.sprintf "%s does not match the circuit: %s" path e)
    | Ok (assignment, k) ->
      let ctx = Partition.Cost.context_of device ~delta hg in
      let report = Partition.Check.of_assignment hg ~k ~assignment ~ctx in
      Format.printf "checking %s against %s (S_MAX=%d T_MAX=%d)@." path
        device.Device.dev_name ctx.Partition.Cost.s_max device.Device.t_max;
      Format.printf "%a" Partition.Check.pp report;
      if report.Partition.Check.feasible then Ok () else Error "partition is infeasible")

let main input generate device_name delta algo engine seed runs cluster jobs
    selfcheck gain_update refiner output save check board dot trace trace_format
    stats log_level trace_log ledger =
  setup_obs ~trace ~trace_format ~stats ~log_level;
  let result =
    match Device.find device_name with
    | None ->
      Error
        (Printf.sprintf "unknown device %S (known: %s)" device_name
           (String.concat ", " (List.map (fun d -> d.Device.dev_name) Device.catalog)))
    | Some device -> (
      match load_circuit input generate seed with
      | Error e -> Error e
      | Ok (name, hg) -> (
        match check with
        | Some path ->
          let d = match delta with Some d -> d | None -> Device.paper_delta device in
          check_mode path hg device d
        | None ->
        let t0 = Unix.gettimeofday () in
        let config =
          make_config ~delta ~seed ~cluster ~jobs ~selfcheck ~gain_update
            ~refiner
        in
        let k, assignment, feasible, trace_events =
          partition algo engine hg device ~config ~delta ~seed ~runs
        in
        let wall_s = Unix.gettimeofday () -. t0 in
        let violations = Fpart_check.Selfcheck.violations_seen () in
        if violations > 0 then
          Format.eprintf
            "fpart: self-check found %d violation(s) — incremental state diverged from the oracle@."
            violations;
        let st = Partition.State.create hg ~k ~assign:(fun v -> assignment.(v)) in
        let d = match delta with Some d -> d | None -> Device.paper_delta device in
        let s_max = Device.s_max device ~delta:d in
        Format.printf "%s: %d cells, %d pads, %d nets@." name
          (Hypergraph.Hgraph.num_cells hg)
          (Hypergraph.Hgraph.num_pads hg)
          (Hypergraph.Hgraph.num_nets hg);
        Format.printf "%d x %s (S_MAX=%d T_MAX=%d), feasible=%b@." k
          device.Device.dev_name s_max device.Device.t_max feasible;
        let ctx = Partition.Cost.context_of device ~delta:d hg in
        let report = Partition.Check.of_state st ~ctx in
        Format.printf "%a" Partition.Check.pp report;
        if board then Format.printf "%a" (fun ppf -> Partition.Quotient.pp_report ppf ~t_max:device.Device.t_max) st;
        if trace_log then begin
          if trace_events = [] then
            Format.printf "trace log: no events recorded for this algorithm@."
          else begin
            Format.printf "trace log:@.";
            List.iter
              (fun e -> Format.printf "  %a@." Fpart.Trace.pp_event e)
              trace_events
          end
        end;
        (match dot with
        | Some path ->
          Hypergraph.Dot.write_file path ~assignment ~name hg;
          Format.printf "graphviz rendering written to %s@." path
        | None -> ());
        (match output with
        | Some prefix -> write_blocks prefix name hg assignment k
        | None -> ());
        (match save with
        | Some path ->
          let pf =
            Netlist.Partfile.of_assignment hg ~circuit:name ~delta:d
              ~block_devices:(Array.make k device.Device.dev_name)
              ~assignment
          in
          Netlist.Partfile.write_file path pf;
          Format.printf "partition written to %s@." path
        | None -> ());
        (match ledger with
        | Some path ->
          let prefix =
            Printf.sprintf "run/%s-%s-%s" name device.Device.dev_name
              (algo_name algo)
          in
          let prefix =
            match engine with
            | Eng_flat -> prefix
            | Eng_mlevel -> prefix ^ "-mlevel"
          in
          let row rname value unit_ higher_better =
            { Fpart_obs.Ledger.name = prefix ^ "/" ^ rname; value; unit_; higher_better }
          in
          append_ledger path
            ~label:(Printf.sprintf "%s on %s (%s)" name device.Device.dev_name (algo_name algo))
            ~jobs
            ~config_digest:(config_digest ~algo ~engine ~runs config)
            ~netlist_digest:(netlist_digest hg)
            ~rows:
              [
                row "wall_s" wall_s "s" false;
                row "devices" (float_of_int k) "blocks" false;
                row "cut" (float_of_int (Partition.State.cut_size st)) "nets" false;
              ]
        | None -> ());
        Ok ()))
  in
  if stats then begin
    Format.eprintf "%a" Fpart_obs.Metrics.pp_report ();
    Format.eprintf "%a" Fpart_obs.Resource.pp_summary ()
  end;
  Fpart_obs.Sink.close_current ();
  match result with
  | Ok () -> 0
  | Error e ->
    prerr_endline ("fpart: " ^ e);
    1

let input =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"CIRCUIT.blif" ~doc:"Input BLIF netlist.")

let generate =
  Arg.(
    value
    & opt (some string) None
    & info [ "generate" ] ~docv:"CELLSxPADS" ~doc:"Generate a synthetic circuit instead of reading one.")

let device =
  Arg.(
    value
    & opt string "XC3020"
    & info [ "device"; "d" ] ~docv:"NAME" ~doc:"Target FPGA device (XC3020, XC3042, XC3090, XC2064).")

let delta =
  Arg.(
    value
    & opt (some float) None
    & info [ "delta" ] ~docv:"RATIO" ~doc:"Filling ratio; defaults to the paper's per-family value.")

let algo =
  Arg.(
    value
    & opt algo_conv Algo_fpart
    & info [ "algo"; "a" ] ~docv:"ALGO" ~doc:"Algorithm: fpart, kwayx or fbb-mw.")

let engine =
  Arg.(
    value
    & opt (enum [ ("flat", Eng_flat); ("mlevel", Eng_mlevel) ]) Eng_flat
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Partitioning engine (fpart only): $(b,flat) (default, the paper's \
           recursive driver on the full netlist) or $(b,mlevel) (the \
           multilevel V-cycle: coarsen by heavy-edge matching, partition \
           the coarsest graph — $(b,--runs) seeds — then uncoarsen with \
           bounded refinement per level; for 10^5-cell-and-up circuits).")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let runs =
  Arg.(
    value
    & opt int 1
    & info [ "runs" ] ~docv:"N"
        ~doc:"Multi-start: run FPART N times with different seeds and keep the best (fpart only).")

let cluster =
  Arg.(
    value
    & opt (some int) None
    & info [ "cluster" ] ~docv:"SIZE"
        ~doc:"Clustering pre-pass: coarsen into connectivity clusters of logic size <= SIZE before partitioning (fpart only).")

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg "JOBS must be at least 1")
    | None -> Error (`Msg "JOBS must be an integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs =
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "Execution domains: run the multi-start runs (and the initial-bipartition portfolio) on JOBS parallel domains. The result is bit-identical to JOBS=1 (fpart only).")

let selfcheck =
  Arg.(
    value
    & opt
        (enum
           [
             ("off", Fpart_check.Selfcheck.Off);
             ("cheap", Fpart_check.Selfcheck.Cheap);
             ("paranoid", Fpart_check.Selfcheck.Paranoid);
           ])
        Fpart_check.Selfcheck.Off
    & info [ "selfcheck" ] ~docv:"LEVEL"
        ~doc:
          "Validate the incremental state against the reference oracle while partitioning: $(b,off) (default), $(b,cheap) (pass boundaries, a few percent overhead) or $(b,paranoid) (every applied move, debugging only). Violations are reported on stderr and counted in --stats (fpart only).")

let gain_update =
  Arg.(
    value
    & opt
        (enum [ ("delta", Sanchis.Delta); ("recompute", Sanchis.Recompute) ])
        Sanchis.Delta
    & info [ "gain-update" ] ~docv:"MODE"
        ~doc:
          "Neighbour-gain maintenance inside the improvement engine: $(b,delta) (default, incremental critical-net updates) or $(b,recompute) (escape hatch recomputing every neighbour gain from scratch). Both produce bit-identical partitions; delta is faster (fpart only).")

let refiner =
  Arg.(
    value
    & opt
        (enum
           [
             ("sanchis", Fpart.Config.Sanchis_refiner);
             ("flow", Fpart.Config.Flow_refiner);
             ("hybrid", Fpart.Config.Hybrid_refiner);
           ])
        Fpart.Config.Sanchis_refiner
    & info [ "refiner" ] ~docv:"BACKEND"
        ~doc:
          "Improvement backend for the Improve() calls and the uncoarsening refinement: $(b,sanchis) (default, the paper's gain-bucket passes), $(b,flow) (corridor max-flow min-cut refinement between adjacent block pairs) or $(b,hybrid) (Sanchis first, flow on the pairs where a Sanchis pass retained zero moves). All backends respect the feasible move windows; flow proposals apply only when they improve the solution value without growing the cut (fpart only).")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"PREFIX" ~doc:"Write one BLIF per block to PREFIX_blockN.blif.")

let save =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE" ~doc:"Save the partition (node-name to block map) to FILE.")

let check =
  Arg.(
    value
    & opt (some file) None
    & info [ "check" ] ~docv:"FILE"
        ~doc:"Validate a previously saved partition FILE against the circuit and device instead of partitioning.")

let board =
  Arg.(
    value & flag
    & info [ "board" ]
        ~doc:"Print the board-level view: per-device I/O budgets and the densest inter-device buses.")

let dot =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write a Graphviz rendering of the circuit coloured by block to FILE.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream observability records (recorder spans, trace events, pass/schedule telemetry) to FILE (see --trace-format).")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the metrics report (counters, span histograms) to stderr at exit.")

let log_level =
  Arg.(
    value
    & opt (enum [ ("quiet", Quiet); ("info", Info); ("debug", Debug) ]) Quiet
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Narrate the run on stderr: $(b,quiet) (default), $(b,info) (algorithm trace events) or $(b,debug) (everything, including spans).")

let trace_log =
  Arg.(
    value & flag
    & info [ "trace-log" ]
        ~doc:"Print the recorded driver event log (human-readable) after the report.")

let ledger =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "Append one run-history record (wall time, result shape, GC/RSS \
           peaks, config and netlist digests; JSONL, schema fpart-ledger/1) \
           to FILE. Analyze accumulated entries with $(b,fpart_inspect trend) \
           and $(b,fpart_inspect regress).")

let cmd =
  let doc = "multi-way FPGA netlist partitioning (FPART reproduction)" in
  Cmd.v
    (Cmd.info "fpart" ~doc)
    Term.(
      const main $ input $ generate $ device $ delta $ algo $ engine $ seed
      $ runs $ cluster $ jobs $ selfcheck $ gain_update $ refiner $ output
      $ save $ check $ board $ dot $ trace $ Obs_setup.trace_format_arg $ stats
      $ log_level $ trace_log $ ledger)

let () = exit (Cmd.eval' cmd)
