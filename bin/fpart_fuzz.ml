(* fpart_fuzz: randomized differential testing of the FPART pipeline.

   Each round generates a synthetic circuit (one third of the rounds
   reweighted with random cell sizes, which stress the size-window
   legality tests that unit-size circuits never exercise) and drives
   four independent comparisons against the reference oracles of
   Fpart_check:

   1. move-log replay — a random move sequence is executed through the
      incremental Partition.State; the recorded log (with the engine's
      own gain and cut claims) must replay cleanly against the oracle;
   2. end-to-end driver run with [selfcheck = Cheap] — every pass
      boundary is validated against the oracle, and the final partition
      must pass a full state diff.  The gain mode (cut/pin) and bucket
      discipline (LIFO/FIFO) are drawn at random so the whole engine
      matrix gets oracle coverage;
   3. jobs determinism — [Driver.run_best] at jobs=1 and jobs=4 must
      produce bit-identical assignments (capped to smaller circuits to
      keep the round cheap);
   4. delta-vs-recompute — the same run with [gain_update = Delta] and
      [gain_update = Recompute] must produce bit-identical partitions,
      again across a random draw of gain mode and bucket discipline;
   5. flat-vs-mlevel — the multilevel V-cycle engine runs the same
      circuit under [selfcheck = Cheap] (which exercises its per-level
      contraction-exactness oracle): its claimed cut must equal the
      oracle recomputation, the self-check must stay clean, and its
      quality must stay in the flat driver's class (never infeasible
      where flat is feasible, never more than 2 extra devices);
   6. refiner differential — the sanchis, flow and hybrid improvement
      backends each drive the circuit end to end (paranoid self-checks
      on the smaller rounds): every result must match the oracle
      recomputation and end feasible; then, as a refine-step
      differential on the same projected state, the hybrid refinement
      (the identical Sanchis schedule plus cut-non-increasing flow
      passes) must never end with a worse cut than pure Sanchis.

   Rounds are seeded [seed, seed+1, ..]: a failing seed printed by this
   tool replays exactly with [--seed N --rounds 1].  Randomness comes
   from the in-tree SplitMix64 generator, not QCheck, so this executable
   can ship in the fpart package without test-only dependencies. *)

open Cmdliner
module Sm = Prng.Splitmix
module Hg = Hypergraph.Hgraph
module State = Partition.State
module Check = Fpart_check

let devices = [| "XC2064"; "XC3020"; "XC3042" |]

let device_of_name name =
  match Device.find name with
  | Some d -> d
  | None -> failwith ("fpart_fuzz: unknown device " ^ name)

type outcome = Ok_round | Divergence of string

(* Rebuild [hg] with fresh random cell sizes in [1, 4] (names, flops,
   node numbering and net order preserved).  The generator emits
   unit-size cells only, so without this pass the fuzzer would never
   exercise the weighted size arithmetic of the move windows. *)
let reweight rng hg =
  let b = Hg.Builder.create () in
  Hg.iter_nodes
    (fun v ->
      ignore
        (match Hg.kind hg v with
        | Hg.Cell ->
          Hg.Builder.add_cell b ~flops:(Hg.flops hg v) ~name:(Hg.name hg v)
            ~size:(Sm.int_in rng 1 4)
        | Hg.Pad -> Hg.Builder.add_pad b ~name:(Hg.name hg v)))
    hg;
  Hg.iter_nets
    (fun e ->
      ignore
        (Hg.Builder.add_net b ~name:(Hg.net_name hg e)
           (Array.to_list (Hg.pins hg e))))
    hg;
  Hg.Builder.freeze b

let random_circuit rng ~max_cells =
  let cells = Sm.int_in rng 10 (max max_cells 10) in
  let pads = Sm.int_in rng 4 (max 4 (cells / 4)) in
  let seed = Sm.int rng 0x3FFFFFFF in
  let spec =
    Netlist.Generator.default_spec ~name:"fuzz" ~cells ~pads ~seed
  in
  let hg = Netlist.Generator.generate spec in
  if Sm.int rng 3 = 0 then reweight rng hg else hg

(* A random point in the engine matrix shared by the driver and the
   delta-vs-recompute checks. *)
let random_engine_axes rng =
  let gain_mode = if Sm.bool rng then Sanchis.Cut_gain else Sanchis.Pin_gain in
  let discipline =
    if Sm.bool rng then Gainbucket.Bucket_array.Lifo
    else Gainbucket.Bucket_array.Fifo
  in
  (gain_mode, discipline)

(* Comparison 1: random move log, recorded through the incremental state,
   replayed against the oracle. *)
let check_replay rng hg =
  let n = Hypergraph.Hgraph.num_nodes hg in
  let k = Sm.int_in rng 2 4 in
  let init = Array.init n (fun _ -> Sm.int rng k) in
  let n_moves = 2 * n in
  let assign = Array.copy init in
  let moves =
    List.init n_moves (fun _ ->
        let v = Sm.int rng n in
        let dest = (assign.(v) + 1 + Sm.int rng (k - 1)) mod k in
        assign.(v) <- dest;
        (v, dest))
  in
  let log = Check.Diff.log_of_moves hg ~k ~init ~moves in
  match Check.Diff.replay hg ~k ~init ~log with
  | Ok _ -> Ok_round
  | Error v -> Divergence (Format.asprintf "replay: %a" Check.Diff.pp_violation v)

(* Comparison 2: full driver run under the cheap self-check level, plus a
   final state diff. *)
let check_driver rng hg =
  let device = device_of_name (Sm.choose rng devices) in
  let gain_mode, bucket_discipline = random_engine_axes rng in
  let config =
    {
      Fpart.Config.default with
      seed = Sm.int rng 0xFFFF;
      selfcheck = Check.Selfcheck.Cheap;
      gain_mode;
      bucket_discipline;
    }
  in
  let before = Check.Selfcheck.violations_seen () in
  let r = Fpart.Driver.run ~config hg device in
  let after = Check.Selfcheck.violations_seen () in
  if after > before then
    Divergence
      (Printf.sprintf "driver selfcheck: %d violation(s) on %s" (after - before)
         device.Device.dev_name)
  else
    let st = Fpart.Driver.final_state r hg in
    match Check.Oracle.diff_state st with
    | [] -> Ok_round
    | reason :: _ -> Divergence ("driver final state: " ^ reason)

(* Comparison 3: run_best must be bit-identical across domain counts. *)
let check_jobs rng hg =
  let device = device_of_name (Sm.choose rng devices) in
  let config = { Fpart.Config.default with seed = Sm.int rng 0xFFFF } in
  let r1 = Fpart.Driver.run_best ~config ~jobs:1 ~runs:3 hg device in
  let r4 = Fpart.Driver.run_best ~config ~jobs:4 ~runs:3 hg device in
  if
    r1.Fpart.Driver.k = r4.Fpart.Driver.k
    && r1.Fpart.Driver.assignment = r4.Fpart.Driver.assignment
  then Ok_round
  else
    Divergence
      (Printf.sprintf "jobs determinism: jobs=1 gave k=%d cut=%d, jobs=4 gave k=%d cut=%d"
         r1.Fpart.Driver.k r1.Fpart.Driver.cut r4.Fpart.Driver.k r4.Fpart.Driver.cut)

(* Comparison 4: the incremental delta-gain engine must be bit-identical
   to the recompute-everything escape hatch, at a random point of the
   (gain mode × bucket discipline) matrix. *)
let check_delta rng hg =
  let device = device_of_name (Sm.choose rng devices) in
  let gain_mode, bucket_discipline = random_engine_axes rng in
  let config =
    {
      Fpart.Config.default with
      seed = Sm.int rng 0xFFFF;
      gain_mode;
      bucket_discipline;
    }
  in
  let run gain_update = Fpart.Driver.run ~config:{ config with gain_update } hg device in
  let rd = run Sanchis.Delta in
  let rr = run Sanchis.Recompute in
  if
    rd.Fpart.Driver.k = rr.Fpart.Driver.k
    && rd.Fpart.Driver.cut = rr.Fpart.Driver.cut
    && rd.Fpart.Driver.assignment = rr.Fpart.Driver.assignment
  then Ok_round
  else
    Divergence
      (Printf.sprintf
         "delta vs recompute: delta gave k=%d cut=%d, recompute gave k=%d cut=%d"
         rd.Fpart.Driver.k rd.Fpart.Driver.cut rr.Fpart.Driver.k
         rr.Fpart.Driver.cut)

(* Comparison 5: quality differential between the flat driver and the
   multilevel engine, with the contraction cross-checks live. *)
let check_mlevel rng hg =
  let device = device_of_name (Sm.choose rng devices) in
  let seed = Sm.int rng 0xFFFF in
  let flat =
    Fpart.Driver.run ~config:{ Fpart.Config.default with seed } hg device
  in
  let base =
    { Fpart.Config.default with seed; selfcheck = Check.Selfcheck.Cheap }
  in
  let before = Check.Selfcheck.violations_seen () in
  let ml = (Mlevel.Engine.run ~base hg device).Mlevel.Engine.res in
  let after = Check.Selfcheck.violations_seen () in
  let o =
    Check.Oracle.recompute hg ~k:ml.Fpart.Driver.k
      ~assign:(fun v -> ml.Fpart.Driver.assignment.(v))
  in
  if after > before then
    Divergence
      (Printf.sprintf "mlevel selfcheck: %d violation(s) on %s" (after - before)
         device.Device.dev_name)
  else if o.Check.Oracle.cut <> ml.Fpart.Driver.cut then
    Divergence
      (Printf.sprintf "mlevel cut: claimed %d, oracle %d" ml.Fpart.Driver.cut
         o.Check.Oracle.cut)
  else if flat.Fpart.Driver.feasible && not ml.Fpart.Driver.feasible then
    Divergence
      (Printf.sprintf "mlevel quality: flat feasible at k=%d, mlevel infeasible"
         flat.Fpart.Driver.k)
  else if ml.Fpart.Driver.k > flat.Fpart.Driver.k + 2 then
    Divergence
      (Printf.sprintf "mlevel quality: k=%d vs flat k=%d" ml.Fpart.Driver.k
         flat.Fpart.Driver.k)
  else Ok_round

(* Comparison 6: the refiner matrix.  End-to-end runs cannot promise a
   cut order between backends (their trajectories diverge after the
   first Improve call), so the cut assertion is made where it is
   guaranteed: one [Driver.refine] step applied to copies of the same
   state, where hybrid = the identical Sanchis refinement followed by
   flow passes that only ever apply cut-non-increasing proposals. *)
let check_refiner rng hg =
  let device = device_of_name (Sm.choose rng devices) in
  let seed = Sm.int rng 0xFFFF in
  let selfcheck =
    if Hg.num_cells hg <= 150 then Check.Selfcheck.Paranoid
    else Check.Selfcheck.Cheap
  in
  let run refiner =
    let config = { Fpart.Config.default with seed; selfcheck; refiner } in
    let name = Fpart.Config.refiner_name refiner in
    let before = Check.Selfcheck.violations_seen () in
    let r = Fpart.Driver.run ~config hg device in
    let after = Check.Selfcheck.violations_seen () in
    if after > before then
      Error
        (Printf.sprintf "%s selfcheck: %d violation(s) on %s" name
           (after - before) device.Device.dev_name)
    else
      let o =
        Check.Oracle.recompute hg ~k:r.Fpart.Driver.k
          ~assign:(fun v -> r.Fpart.Driver.assignment.(v))
      in
      if o.Check.Oracle.cut <> r.Fpart.Driver.cut then
        Error
          (Printf.sprintf "%s cut: claimed %d, oracle %d" name
             r.Fpart.Driver.cut o.Check.Oracle.cut)
      else if not r.Fpart.Driver.feasible then
        Error (Printf.sprintf "%s ended infeasible at k=%d" name r.Fpart.Driver.k)
      else Ok r
  in
  match run Fpart.Config.Sanchis_refiner with
  | Error e -> Divergence e
  | Ok rs -> (
    match run Fpart.Config.Flow_refiner with
    | Error e -> Divergence e
    | Ok _ -> (
      match run Fpart.Config.Hybrid_refiner with
      | Error e -> Divergence e
      | Ok _ ->
        let delta = Fpart.Config.delta_for Fpart.Config.default device in
        let ctx = Partition.Cost.context_of device ~delta hg in
        let refined refiner =
          let st = Fpart.Driver.final_state rs hg in
          Fpart.Driver.refine { Fpart.Config.default with seed; refiner } ctx st;
          State.cut_size st
        in
        let cut_sanchis = refined Fpart.Config.Sanchis_refiner in
        let cut_flow = refined Fpart.Config.Flow_refiner in
        let cut_hybrid = refined Fpart.Config.Hybrid_refiner in
        let cut_input = State.cut_size (Fpart.Driver.final_state rs hg) in
        if cut_hybrid > cut_sanchis then
          Divergence
            (Printf.sprintf "hybrid refine cut %d > sanchis refine cut %d"
               cut_hybrid cut_sanchis)
        else if cut_flow > cut_input then
          Divergence
            (Printf.sprintf "flow refine grew the cut: %d > input %d" cut_flow
               cut_input)
        else Ok_round))

(* Comparison 7: the ECO warm path.  Partition cold, apply a random
   small netlist edit, re-legalize from the stale partfile.  A [Warm]
   outcome must be feasible and oracle-consistent; a [Cold_needed]
   fallback must leave the delta'd netlist partitionable from scratch.
   The warm wall time is measured against the cold repartition of the
   same edited netlist — the quantitative claim lives in the bench
   latency table; here the fuzzer only insists both answers are legal. *)
let check_eco rng hg =
  if Hg.num_cells hg < 8 then Ok_round
  else begin
    let device = device_of_name (Sm.choose rng devices) in
    let config = { Fpart.Config.default with seed = Sm.int rng 0xFFFF } in
    let cold = Fpart.Driver.run ~config hg device in
    let pf =
      Netlist.Partfile.of_assignment hg ~circuit:"fuzz"
        ~delta:cold.Fpart.Driver.delta
        ~block_devices:(Array.make cold.Fpart.Driver.k device.Device.dev_name)
        ~assignment:cold.Fpart.Driver.assignment
    in
    (* remove one random cell, add one cell wired to a random survivor *)
    let rec pick_cell () =
      let v = Sm.int rng (Hg.num_nodes hg) in
      if Hg.is_pad hg v then pick_cell () else v
    in
    let removed = pick_cell () in
    let rec pick_anchor () =
      let v = pick_cell () in
      if v = removed then pick_anchor () else v
    in
    let d =
      {
        Netlist.Delta.empty with
        Netlist.Delta.remove_nodes = [ Hg.name hg removed ];
        add_cells =
          [ { Netlist.Delta.cell_name = "fz_eco"; size = 1; flops = 0 } ];
        add_nets =
          [
            {
              Netlist.Delta.net_name = "fz_eco_net";
              pins = [ "fz_eco"; Hg.name hg (pick_anchor ()) ];
            };
          ];
      }
    in
    match Netlist.Delta.apply d hg with
    | Error e -> Divergence ("delta apply refused a valid edit: " ^ e)
    | Ok hg' -> (
      match Serve.Eco.relegalize ~config ~device ~partfile:pf hg' with
      | Error e -> Divergence ("relegalize errored on a fresh partfile: " ^ e)
      | Ok (Serve.Eco.Warm { assignment; k; cut; total_pins; _ }) ->
        let o =
          Check.Oracle.recompute hg' ~k ~assign:(fun v -> assignment.(v))
        in
        if o.Check.Oracle.cut <> cut then
          Divergence
            (Printf.sprintf "eco warm cut: claimed %d, oracle %d" cut
               o.Check.Oracle.cut)
        else if o.Check.Oracle.t_sum <> total_pins then
          Divergence
            (Printf.sprintf "eco warm pins: claimed %d, oracle %d" total_pins
               o.Check.Oracle.t_sum)
        else begin
          let st = State.create hg' ~k ~assign:(fun v -> assignment.(v)) in
          let delta = Fpart.Config.delta_for config device in
          let ctx = Partition.Cost.context_of device ~delta hg' in
          match Partition.Cost.classify ctx st with
          | Partition.Cost.Feasible -> Ok_round
          | _ -> Divergence "eco warm outcome is not feasible"
        end
      | Ok (Serve.Eco.Cold_needed _) ->
        let cold' = Fpart.Driver.run ~config hg' device in
        if cold'.Fpart.Driver.feasible then Ok_round
        else
          Divergence
            (Printf.sprintf
               "eco fallback: cold repartition of the edited netlist infeasible at k=%d"
               cold'.Fpart.Driver.k))
  end

let run_round ~max_cells round_seed =
  let rng = Sm.create round_seed in
  let hg = random_circuit rng ~max_cells in
  let checks =
    [
      ("replay", fun () -> check_replay rng hg);
      ("driver", fun () -> check_driver rng hg);
      ( "jobs",
        fun () ->
          if Hg.num_cells hg <= 150 then check_jobs rng hg
          else Ok_round );
      ("delta", fun () -> check_delta rng hg);
      ("mlevel", fun () -> check_mlevel rng hg);
      ("refiner", fun () -> check_refiner rng hg);
      ("eco", fun () -> check_eco rng hg);
    ]
  in
  List.fold_left
    (fun acc (name, f) ->
      match acc with
      | Divergence _ -> acc
      | Ok_round -> (
        match f () with
        | Ok_round -> Ok_round
        | Divergence d -> Divergence (name ^ ": " ^ d)))
    Ok_round checks

let main rounds max_cells seed trace trace_format =
  if rounds < 1 then begin
    prerr_endline "fpart_fuzz: --rounds must be at least 1";
    2
  end
  else begin
    Obs_setup.setup_trace trace trace_format;
    let divergences = ref 0 in
    for i = 0 to rounds - 1 do
      let round_seed = seed + i in
      match run_round ~max_cells round_seed with
      | Ok_round -> ()
      | Divergence msg ->
        incr divergences;
        Printf.printf "DIVERGENCE at seed %d: %s\n" round_seed msg;
        Printf.printf "  replay with: fpart_fuzz --seed %d --rounds 1 --max-cells %d\n"
          round_seed max_cells
    done;
    Printf.printf "fuzz: %d rounds, %d divergences (seeds %d..%d)\n" rounds
      !divergences seed
      (seed + rounds - 1);
    Obs_setup.finish_trace ();
    if !divergences = 0 then 0 else 1
  end

let rounds =
  Arg.(
    value
    & opt int 50
    & info [ "rounds" ] ~docv:"N" ~doc:"Number of fuzz rounds to run.")

let max_cells =
  Arg.(
    value
    & opt int 500
    & info [ "max-cells" ] ~docv:"N"
        ~doc:"Upper bound on generated circuit size (cells).")

let seed =
  Arg.(
    value
    & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Base seed; round $(i,i) uses seed+$(i,i), so a reported failing seed replays with --seed SEED --rounds 1.")

let cmd =
  let doc = "randomized differential fuzzing of the FPART pipeline" in
  Cmd.v
    (Cmd.info "fpart_fuzz" ~doc)
    Term.(
      const main $ rounds $ max_cells $ seed $ Obs_setup.trace_arg
      $ Obs_setup.trace_format_arg)

let () = exit (Cmd.eval' cmd)
