(* Offline trace analyzer: hotspot and convergence tables from a
   recorded trace (JSONL or chrome export), structural validation for
   CI, a two-run diff for A/B-ing flags like --gain-update or --jobs,
   plus subcommands over the other artifact kinds: [mem] (allocation
   view of a trace) and [trend]/[regress] (run-history ledger
   statistics).  All analysis lives in Fpart_obs.Inspect; this file is
   argument plumbing. *)

module Inspect = Fpart_obs.Inspect
module Ledger = Fpart_obs.Ledger
open Cmdliner

let load path =
  match Inspect.load_file path with
  | Ok t -> Ok t
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

(* Exit codes: 0 ok, 1 structural errors (orphaned spans, duplicate
   ids, dangling telemetry references), 2 unreadable/unparseable
   input. *)
let validate_exit path t =
  match Inspect.validate t with
  | [] -> 0
  | errors ->
    List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) errors;
    1

let main file_a file_b diff check passes times =
  let times = not times in
  let ppf = Format.std_formatter in
  let run () =
    match (diff, file_b) with
    | true, None ->
      prerr_endline "fpart_inspect: --diff needs two trace files";
      2
    | true, Some b_path -> (
      match (load file_a, load b_path) with
      | Error e, _ | _, Error e ->
        prerr_endline ("fpart_inspect: " ^ e);
        2
      | Ok a, Ok b ->
        Format.fprintf ppf "diff %s -> %s@." file_a b_path;
        Inspect.pp_diff ~times ppf a b;
        max (validate_exit file_a a) (validate_exit b_path b))
    | false, Some _ ->
      prerr_endline "fpart_inspect: second trace file needs --diff";
      2
    | false, None -> (
      match load file_a with
      | Error e ->
        prerr_endline ("fpart_inspect: " ^ e);
        2
      | Ok t ->
        let rc = validate_exit file_a t in
        if check then begin
          if rc = 0 then
            Format.fprintf ppf "ok: %d records, %d spans@."
              (List.length (Inspect.records t))
              (List.length (Inspect.spans t))
        end
        else begin
          Format.fprintf ppf "== hotspots (self time) ==@.";
          Inspect.pp_hotspots ~times ppf t;
          Format.fprintf ppf "@.== convergence (one row per Improve() call) ==@.";
          Inspect.pp_convergence ppf t;
          if passes then begin
            Format.fprintf ppf "@.== passes ==@.";
            Inspect.pp_passes ppf t
          end
        end;
        rc)
  in
  let rc = run () in
  Format.pp_print_flush ppf ();
  rc

let file_a =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"Trace file (JSONL or chrome export).")

let file_b =
  Arg.(
    value
    & pos 1 (some file) None
    & info [] ~docv:"TRACE_B" ~doc:"Second trace file (with $(b,--diff)).")

let diff =
  Arg.(
    value & flag
    & info [ "diff" ]
        ~doc:"Compare two traces: per-phase self-time deltas and convergence totals.")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Only validate: parse the file and check the span tree is well-formed \
           (exit 2 on parse errors, 1 on orphaned spans or duplicate ids).")

let passes =
  Arg.(
    value & flag
    & info [ "passes" ] ~doc:"Also print the per-pass detail table.")

let no_times =
  Arg.(
    value & flag
    & info [ "no-times" ]
        ~doc:
          "Omit wall-clock columns (deterministic output, used by the cram tests).")

let analyze_term =
  Term.(const main $ file_a $ file_b $ diff $ check $ passes $ no_times)

(* {2 mem: allocation view of a trace} *)

let mem_main file =
  match load file with
  | Error e ->
    prerr_endline ("fpart_inspect: " ^ e);
    2
  | Ok t ->
    Inspect.pp_mem Format.std_formatter t;
    Format.pp_print_flush Format.std_formatter ();
    validate_exit file t

let mem_cmd =
  let doc =
    "allocation report: self-allocation hotspots, per-pass allocation and \
     GC/RSS peaks from a trace recorded with resource telemetry"
  in
  Cmd.v
    (Cmd.info "mem" ~doc)
    Term.(
      const mem_main
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"TRACE" ~doc:"Trace file (JSONL or chrome export)."))

(* {2 trend / regress: ledger statistics}

   Exit codes: 0 ok, 1 regression found or corrupt/mixed-schema ledger
   (the history cannot be trusted, so a gate must fail), 2 unreadable
   file. *)

let load_ledger path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "fpart_inspect: %s: no such file\n" path;
    Some 2
  end
  else
    match Ledger.load path with
    | Ok _ -> None
    | Error e ->
      Printf.eprintf "fpart_inspect: %s: %s\n" path e;
      Some 1

let ledger_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"LEDGER"
        ~doc:
          "Run-history ledger (JSONL, schema fpart-ledger/1) written by \
           $(b,fpart --ledger) or $(b,bench/main.exe) with \
           $(b,FPART_BENCH_LEDGER).")

let trend_main path =
  match load_ledger path with
  | Some rc -> rc
  | None ->
    let entries = Result.get_ok (Ledger.load path) in
    Inspect.pp_trend Format.std_formatter entries;
    Format.pp_print_flush Format.std_formatter ();
    0

let trend_cmd =
  let doc = "per-benchmark median/MAD trajectories across ledger entries" in
  Cmd.v (Cmd.info "trend" ~doc) Term.(const trend_main $ ledger_arg)

let min_delta_arg =
  Arg.(
    value
    & opt float 0.20
    & info [ "min-delta" ] ~docv:"FRAC"
        ~doc:
          "Floor of the allowed worse-direction relative change (default \
           0.20); the gate never fires below it however quiet the history.")

let mad_k_arg =
  Arg.(
    value
    & opt float 4.0
    & info [ "mad-k" ] ~docv:"K"
        ~doc:
          "Noise multiplier: allow up to K scaled MADs (1.4826·MAD, a sigma \
           estimate) of worse-direction change for historically noisy rows.")

let regress_main path min_delta mad_k =
  match load_ledger path with
  | Some rc -> rc
  | None ->
    let entries = Result.get_ok (Ledger.load path) in
    let verdicts = Inspect.regress ~min_delta ~mad_k entries in
    Inspect.pp_regress Format.std_formatter verdicts;
    Format.pp_print_flush Format.std_formatter ();
    if List.exists (fun v -> v.Inspect.v_regressed) verdicts then 1 else 0

let regress_cmd =
  let doc =
    "judge the newest ledger entry against the median of its history; exit 1 \
     on regression (or on a corrupt ledger)"
  in
  Cmd.v
    (Cmd.info "regress" ~doc)
    Term.(const regress_main $ ledger_arg $ min_delta_arg $ mad_k_arg)

(* {2 scrape / live: exposition consumers}

   [scrape] fetches one /metrics page (or reads a --metrics-out file),
   strict-parses it and prints the compact table; [live] polls an
   address and renders interval deltas.  Exit codes: 0 ok, 1 invalid
   exposition, 2 unreachable/unreadable source. *)

let fetch_page source =
  if Sys.file_exists source then begin
    let ic = open_in_bin source in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    Ok text
  end
  else Serve.Http.get ~addr:source "/metrics"

let parse_page source text =
  match Fpart_obs.Expose.parse text with
  | Ok fams -> Ok fams
  | Error e -> Error (Printf.sprintf "%s: invalid exposition: %s" source e)

let scrape_main source health raw =
  match fetch_page source with
  | Error e ->
    Printf.eprintf "fpart_inspect: %s: %s\n" source e;
    2
  | Ok text -> (
    match parse_page source text with
    | Error e ->
      prerr_endline ("fpart_inspect: " ^ e);
      1
    | Ok fams ->
      let health_rc =
        if not health then 0
        else if Sys.file_exists source then begin
          Printf.eprintf
            "fpart_inspect: --health needs an address, not a file\n";
          2
        end
        else
          match Serve.Http.get ~addr:source "/healthz" with
          | Ok body ->
            print_string body;
            0
          | Error e ->
            Printf.eprintf "fpart_inspect: %s: health probe failed: %s\n"
              source e;
            1
      in
      if health_rc <> 0 then health_rc
      else begin
        if raw then print_string text
        else begin
          Inspect.pp_scrape Format.std_formatter fams;
          Format.pp_print_flush Format.std_formatter ()
        end;
        0
      end)

let scrape_cmd =
  let doc =
    "fetch one exposition page from a daemon's $(b,/metrics) endpoint (or a \
     $(b,--metrics-out) file), validate it against the strict text-format \
     parser and print a compact table; exit 1 when the page does not parse"
  in
  Cmd.v
    (Cmd.info "scrape" ~doc)
    Term.(
      const scrape_main
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"SOURCE"
              ~doc:
                "Metrics address ($(b,PORT) or $(b,HOST:PORT)) or a saved \
                 exposition file.")
      $ Arg.(
          value & flag
          & info [ "health" ]
              ~doc:"Also probe $(b,/healthz) first and print its JSON body.")
      $ Arg.(
          value & flag
          & info [ "raw" ]
              ~doc:
                "Print the validated page verbatim instead of the table (for \
                 diffing two scrapes)."))

let live_main addr interval frames no_clear =
  let rec loop prev t_prev n =
    match Serve.Http.get ~addr "/metrics" with
    | Error e ->
      Printf.eprintf "fpart_inspect: %s: %s\n" addr e;
      2
    | Ok text -> (
      match parse_page addr text with
      | Error e ->
        prerr_endline ("fpart_inspect: " ^ e);
        1
      | Ok cur ->
        let t_now = Unix.gettimeofday () in
        let dt_s = match prev with [] -> interval | _ -> t_now -. t_prev in
        if not no_clear then print_string "\027[2J\027[H";
        Inspect.pp_live_header Format.std_formatter ();
        Inspect.pp_live_row Format.std_formatter
          (Inspect.live_stats ~prev ~cur ~dt_s);
        Format.pp_print_flush Format.std_formatter ();
        if frames > 0 && n + 1 >= frames then 0
        else begin
          Unix.sleepf interval;
          loop cur t_now (n + 1)
        end)
  in
  loop [] (Unix.gettimeofday ()) 0

let live_cmd =
  let doc =
    "poll a daemon's $(b,/metrics) endpoint and render a one-row terminal \
     dashboard per interval: request and error rates, interval cold/warm \
     latency quantiles, cache hit ratio and size, RSS and heap"
  in
  Cmd.v
    (Cmd.info "live" ~doc)
    Term.(
      const live_main
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"ADDR"
              ~doc:"Metrics address ($(b,PORT) or $(b,HOST:PORT)).")
      $ Arg.(
          value
          & opt float 2.0
          & info [ "interval" ] ~docv:"SECONDS"
              ~doc:"Seconds between scrapes (default 2).")
      $ Arg.(
          value
          & opt int 0
          & info [ "frames" ] ~docv:"N"
              ~doc:"Stop after N frames (default 0: poll until interrupted).")
      $ Arg.(
          value & flag
          & info [ "no-clear" ]
              ~doc:
                "Do not clear the screen between frames (append rows; for \
                 logs and tests)."))

let doc = "analyze fpart observability traces and run ledgers offline"

let group =
  Cmd.group ~default:analyze_term (Cmd.info "fpart_inspect" ~doc)
    [ mem_cmd; trend_cmd; regress_cmd; scrape_cmd; live_cmd ]

let analyze_cmd = Cmd.v (Cmd.info "fpart_inspect" ~doc) analyze_term

(* [fpart_inspect TRACE] predates the subcommands and must keep
   working; Cmd.group would reject a bare first positional as an
   unknown command, so route those straight to the analyzer. *)
let () =
  let subcommand = [ "mem"; "trend"; "regress"; "scrape"; "live"; "help" ] in
  let bare_positional =
    Array.length Sys.argv > 1
    &&
    let a = Sys.argv.(1) in
    String.length a > 0 && a.[0] <> '-' && not (List.mem a subcommand)
  in
  exit (Cmd.eval' (if bare_positional then analyze_cmd else group))
