(* Offline trace analyzer: hotspot and convergence tables from a
   recorded trace (JSONL or chrome export), structural validation for
   CI, and a two-run diff for A/B-ing flags like --gain-update or
   --jobs.  All analysis lives in Fpart_obs.Inspect; this file is
   argument plumbing. *)

module Inspect = Fpart_obs.Inspect
open Cmdliner

let load path =
  match Inspect.load_file path with
  | Ok t -> Ok t
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

(* Exit codes: 0 ok, 1 structural errors (orphaned spans, duplicate
   ids, dangling telemetry references), 2 unreadable/unparseable
   input. *)
let validate_exit path t =
  match Inspect.validate t with
  | [] -> 0
  | errors ->
    List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) errors;
    1

let main file_a file_b diff check passes times =
  let times = not times in
  let ppf = Format.std_formatter in
  let run () =
    match (diff, file_b) with
    | true, None ->
      prerr_endline "fpart_inspect: --diff needs two trace files";
      2
    | true, Some b_path -> (
      match (load file_a, load b_path) with
      | Error e, _ | _, Error e ->
        prerr_endline ("fpart_inspect: " ^ e);
        2
      | Ok a, Ok b ->
        Format.fprintf ppf "diff %s -> %s@." file_a b_path;
        Inspect.pp_diff ~times ppf a b;
        max (validate_exit file_a a) (validate_exit b_path b))
    | false, Some _ ->
      prerr_endline "fpart_inspect: second trace file needs --diff";
      2
    | false, None -> (
      match load file_a with
      | Error e ->
        prerr_endline ("fpart_inspect: " ^ e);
        2
      | Ok t ->
        let rc = validate_exit file_a t in
        if check then begin
          if rc = 0 then
            Format.fprintf ppf "ok: %d records, %d spans@."
              (List.length (Inspect.records t))
              (List.length (Inspect.spans t))
        end
        else begin
          Format.fprintf ppf "== hotspots (self time) ==@.";
          Inspect.pp_hotspots ~times ppf t;
          Format.fprintf ppf "@.== convergence (one row per Improve() call) ==@.";
          Inspect.pp_convergence ppf t;
          if passes then begin
            Format.fprintf ppf "@.== passes ==@.";
            Inspect.pp_passes ppf t
          end
        end;
        rc)
  in
  let rc = run () in
  Format.pp_print_flush ppf ();
  rc

let file_a =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"Trace file (JSONL or chrome export).")

let file_b =
  Arg.(
    value
    & pos 1 (some file) None
    & info [] ~docv:"TRACE_B" ~doc:"Second trace file (with $(b,--diff)).")

let diff =
  Arg.(
    value & flag
    & info [ "diff" ]
        ~doc:"Compare two traces: per-phase self-time deltas and convergence totals.")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Only validate: parse the file and check the span tree is well-formed \
           (exit 2 on parse errors, 1 on orphaned spans or duplicate ids).")

let passes =
  Arg.(
    value & flag
    & info [ "passes" ] ~doc:"Also print the per-pass detail table.")

let no_times =
  Arg.(
    value & flag
    & info [ "no-times" ]
        ~doc:
          "Omit wall-clock columns (deterministic output, used by the cram tests).")

let cmd =
  let doc = "analyze fpart observability traces offline" in
  Cmd.v
    (Cmd.info "fpart_inspect" ~doc)
    Term.(const main $ file_a $ file_b $ diff $ check $ passes $ no_times)

let () = exit (Cmd.eval' cmd)
