(* fpart_serve: long-running partition service.

   Three modes sharing one engine and wire protocol (docs/SERVICE.md):

     fpart_serve --batch requests.jsonl        # script -> responses on stdout
     fpart_serve --socket /tmp/fpart.sock      # daemon on a Unix socket
     fpart_serve --client /tmp/fpart.sock      # pump stdin to a daemon

   Requests are framed JSONL; every partition request yields one
   response line carrying the same id.  A {"op":"shutdown"} line stops
   the daemon cleanly (acknowledged with {"op":"bye",...}). *)

open Cmdliner

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let append_ledger path engine ~label ~jobs =
  let entry =
    {
      Fpart_obs.Ledger.time = Unix.gettimeofday ();
      git_rev = Fpart_obs.Ledger.git_rev ();
      kind = "serve";
      label;
      jobs;
      repeats = 1;
      (* a serve ledger entry aggregates many workloads, so the
         per-workload digests live in the responses, not here *)
      config_digest = None;
      netlist_digest = None;
      rows = Serve.Engine.ledger_rows engine;
      resource = Some (Fpart_obs.Resource.summary ());
    }
  in
  match Fpart_obs.Ledger.append path entry with
  | Ok () -> ()
  | Error e -> Printf.eprintf "fpart_serve: cannot append to ledger %s: %s\n" path e

let batch_mode engine path ledger jobs =
  let lines =
    if path = "-" then read_lines stdin
    else begin
      let ic = open_in path in
      let lines = read_lines ic in
      close_in ic;
      lines
    end
  in
  let _written = Serve.Server.run_batch engine lines stdout in
  Option.iter
    (fun l -> append_ledger l engine ~label:("batch " ^ path) ~jobs)
    ledger;
  0

(* Accept loop: connections are served one at a time (the engine owns
   the domain pool; concurrency lives inside a batch, not across
   clients), each connection streams request lines until EOF or
   shutdown. *)
let socket_mode engine path ledger jobs =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Printf.eprintf "fpart_serve: listening on %s (jobs=%d)\n%!" path
    (Serve.Engine.jobs engine);
  let shutdown = ref false in
  while not !shutdown do
    let fd, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try
       let rec serve_lines () =
         match input_line ic with
         | line -> (
           match Serve.Server.react engine line with
           | Serve.Server.Lines ls ->
             List.iter
               (fun l ->
                 output_string oc l;
                 output_char oc '\n')
               ls;
             flush oc;
             serve_lines ()
           | Serve.Server.Quit ->
             output_string oc
               (Serve.Protocol.bye_line ~served:(Serve.Engine.served engine));
             output_char oc '\n';
             flush oc;
             shutdown := true)
         | exception End_of_file -> ()
       in
       serve_lines ()
     with Sys_error _ | Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if Sys.file_exists path then Sys.remove path;
  Option.iter
    (fun l -> append_ledger l engine ~label:("socket " ^ path) ~jobs)
    ledger;
  Printf.eprintf "fpart_serve: shut down cleanly (%d request(s) served)\n%!"
    (Serve.Engine.served engine);
  0

(* Client pump for scripts and CI: send every stdin line, then read
   responses until the server closes the connection.  Always appends a
   shutdown-free EOF, so the daemon keeps running unless the script
   itself carries {"op":"shutdown"}. *)
let client_mode path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "fpart_serve: cannot connect to %s: %s\n" path
       (Unix.error_message e);
     exit 1);
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  let lines = read_lines stdin in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  Unix.shutdown sock Unix.SHUTDOWN_SEND;
  (try
     while true do
       print_endline (input_line ic)
     done
   with End_of_file -> ());
  (try Unix.close sock with Unix.Unix_error _ -> ());
  0

(* The telemetry endpoints served by --metrics: the Prometheus page
   and a JSON liveness probe.  The handler runs on a posix thread of
   the engine's domain, so the scrape reads the same instrument cells
   the engine merges worker activity into. *)
let telemetry_handler engine path =
  match path with
  | "/metrics" ->
    Some ("text/plain; version=0.0.4", Fpart_obs.Expose.render ())
  | "/healthz" ->
    Some
      ( "application/json",
        Fpart_obs.Json.to_string (Serve.Engine.health_json engine) ^ "\n" )
  | _ -> None

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let run_engine ~batch ~socket ~jobs ~timeout_s ~ledger ~metrics ~metrics_out
    ~access_log ~cache_warn_mb =
  let access_oc =
    Option.map (fun p -> if p = "-" then stderr else open_out p) access_log
  in
  let access =
    Option.map
      (fun oc j ->
        output_string oc (Fpart_obs.Json.to_string j);
        output_char oc '\n';
        flush oc)
      access_oc
  in
  let engine =
    Serve.Engine.create ?timeout_s ?cache_warn_mb
      ~warn:(fun m -> Printf.eprintf "fpart_serve: warning: %s\n%!" m)
      ?access ~jobs ()
  in
  let http =
    match metrics with
    | None -> Ok None
    | Some addr -> (
      match Serve.Http.start ~addr ~handler:(telemetry_handler engine) with
      | Ok t ->
        Printf.eprintf "fpart_serve: metrics on http://127.0.0.1:%d/metrics\n%!"
          (Serve.Http.port t);
        Ok (Some t)
      | Error e ->
        Printf.eprintf "fpart_serve: %s\n" e;
        Error 1)
  in
  let code =
    match http with
    | Error rc -> rc
    | Ok http ->
      let code =
        match (batch, socket) with
        | Some bpath, _ -> batch_mode engine bpath ledger jobs
        | None, Some spath -> socket_mode engine spath ledger jobs
        | None, None -> assert false
      in
      (* one-shot exposition dump: the same page /metrics would have
         served, written after the last request for deterministic
         offline consumption (cram tests, fpart_inspect scrape FILE) *)
      Option.iter (fun p -> write_file p (Fpart_obs.Expose.render ())) metrics_out;
      Option.iter Serve.Http.stop http;
      code
  in
  Serve.Engine.shutdown engine;
  Option.iter (fun oc -> if oc != stderr then close_out oc) access_oc;
  code

let main batch socket client jobs timeout_s ledger trace trace_format stats
    metrics metrics_out access_log cache_warn_mb =
  Obs_setup.install_resource ();
  Obs_setup.install_clock ();
  Fpart_obs.Metrics.set_enabled true;
  Fpart_obs.Resource.set_enabled true;
  Obs_setup.setup_trace trace trace_format;
  let result =
    match (batch, socket, client) with
    | _, _, Some path ->
      (* pure pump: no engine on this side *)
      client_mode path
    | None, None, None ->
      prerr_endline
        "fpart_serve: give one of --batch FILE, --socket PATH or --client PATH";
      2
    | Some _, _, None | None, Some _, None ->
      (* --batch wins when both are given, as before *)
      let batch, socket =
        match batch with Some _ -> (batch, None) | None -> (None, socket)
      in
      run_engine ~batch ~socket ~jobs ~timeout_s ~ledger ~metrics ~metrics_out
        ~access_log ~cache_warn_mb
  in
  if stats then begin
    Format.eprintf "%a" Fpart_obs.Metrics.pp_report ();
    Format.eprintf "%a" Fpart_obs.Resource.pp_summary ()
  end;
  Obs_setup.finish_trace ();
  result

let batch =
  Arg.(
    value
    & opt (some string) None
    & info [ "batch" ] ~docv:"FILE"
        ~doc:
          "Process a request script (one JSONL request per line; $(b,-) for \
           stdin), write response lines to stdout and exit.  Consecutive \
           partition requests are answered as one batched fan-out.")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen for request lines on a Unix domain socket at PATH.  A \
           $(b,{\"op\":\"shutdown\"}) line stops the daemon cleanly.")

let client =
  Arg.(
    value
    & opt (some string) None
    & info [ "client" ] ~docv:"PATH"
        ~doc:
          "Connect to a daemon's socket, send every stdin line, print the \
           response lines.  For scripts and CI (no netcat dependency).")

let jobs =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "Execution domains of the engine's pool: batched requests and \
           multi-start portfolios are sharded across JOBS domains.")

let timeout_s =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Default per-request time limit for batched jobs (cooperative: an \
           overrunning job is reported as timed out when it completes).")

let ledger =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "Append one serve-session record (request count, cache hits, \
           cold/warm latency quantiles; schema fpart-ledger/1) to FILE at \
           shutdown.")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the metrics report (counters, span histograms) to stderr at exit.")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"ADDR"
        ~doc:
          "Serve Prometheus exposition on $(b,http://ADDR/metrics) and a JSON \
           liveness probe on $(b,/healthz) while the service runs.  ADDR is \
           $(b,PORT) or $(b,HOST:PORT); port $(b,0) picks a free port \
           (announced on stderr).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write one exposition page (the same text $(b,/metrics) serves) to \
           FILE after the last request; for offline diffing and \
           $(b,fpart_inspect scrape FILE).")

let access_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:
          "Append one structured JSONL record per answered request to FILE \
           ($(b,-) for stderr): request id, client id, mode \
           (cold/warm/hit), wall ms, cut, k and workload digests.  The \
           request id also stamps every recorder span and convergence event \
           recorded while serving that request.")

let cache_warn_mb =
  Arg.(
    value
    & opt (some float) None
    & info [ "cache-warn-mb" ] ~docv:"MB"
        ~doc:
          "Warn once on stderr (and count $(b,serve.cache.warnings)) when the \
           result cache's estimated size first exceeds MB mebibytes.  The \
           cache is unbounded; this makes its growth visible.")

let cmd =
  let doc = "long-running multi-way FPGA partition service" in
  Cmd.v
    (Cmd.info "fpart_serve" ~doc)
    Term.(
      const main $ batch $ socket $ client $ jobs $ timeout_s $ ledger
      $ Obs_setup.trace_arg $ Obs_setup.trace_format_arg $ stats $ metrics
      $ metrics_out $ access_log $ cache_warn_mb)

let () = exit (Cmd.eval' cmd)
