(* Observability bootstrap shared by the binaries: the monotonic clock
   source and the --trace-format plumbing. *)

module Sink = Fpart_obs.Sink

external monotonic_ns : unit -> (int64[@unboxed])
  = "fpart_clock_monotonic_ns_bytecode" "fpart_clock_monotonic_ns_native"
[@@noalloc]

let monotonic_seconds () = Int64.to_float (monotonic_ns ()) *. 1e-9

(* Install before any recording (and before spawning domains): spans
   then measure real elapsed time on a clock that cannot step
   backwards, and trace timestamps count from process start. *)
let install_clock () =
  Fpart_obs.Clock.set_source monotonic_seconds;
  Fpart_obs.Recorder.set_epoch ()

external rusage_self : unit -> float * float * float = "fpart_rusage_self"

(* Replace the library's /proc fallback with the getrusage(2) stub;
   cheap enough to install unconditionally at startup, whether or not
   per-span resource sampling ends up enabled. *)
let install_resource () =
  Fpart_obs.Resource.set_os_source (fun () ->
      let maxrss_kb, utime_s, stime_s = rusage_self () in
      {
        Fpart_obs.Resource.os_maxrss_kb = int_of_float maxrss_kb;
        os_utime_s = utime_s;
        os_stime_s = stime_s;
      })

type trace_format = Jsonl | Chrome

let file_sink format oc =
  match format with Jsonl -> Sink.jsonl oc | Chrome -> Sink.chrome oc

(* Shared --trace wiring for the binaries whose only observability
   option is a trace file (fpart_fuzz, run_experiments); fpart_cli
   composes its own sinks with --stats/--log-level. *)
let trace_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record observability records (recorder spans, trace events, \
           pass/schedule telemetry) to FILE (see --trace-format).")

let setup_trace trace format =
  match trace with
  | None -> ()
  | Some path -> (
    install_clock ();
    install_resource ();
    Fpart_obs.Metrics.set_enabled true;
    Fpart_obs.Resource.set_enabled true;
    try Fpart_obs.Sink.set (file_sink format (open_out path))
    with Sys_error msg ->
      prerr_endline ("cannot open trace file: " ^ msg);
      exit 1)

let finish_trace () = Fpart_obs.Sink.close_current ()

let trace_format_arg =
  Cmdliner.Arg.(
    value
    & opt (enum [ ("jsonl", Jsonl); ("chrome", Chrome) ]) Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Format of the --trace file: $(b,jsonl) (one record per line, the \
           fpart_inspect native input) or $(b,chrome) (Chrome Trace Event \
           JSON, loadable in chrome://tracing and Perfetto).")
