(* Regenerate the paper's tables and figures.

   Usage: run_experiments [ARTIFACT ...]
   where ARTIFACT is table1..table6, figure1..figure3, or all (default). *)

let artifacts =
  [
    ("table1", Report.Experiments.table1);
    ("table2", Report.Experiments.table2);
    ("table3", Report.Experiments.table3);
    ("table4", Report.Experiments.table4);
    ("table5", Report.Experiments.table5);
    ("table6", Report.Experiments.table6);
    ("figure1", Report.Experiments.figure1);
    ("figure2", Report.Experiments.figure2);
    ("figure3", Report.Experiments.figure3);
    ("ablations", Report.Experiments.ablations);
    ("variance", Report.Experiments.variance);
    ("modern", Report.Experiments.modern);
    ("anneal", Report.Experiments.anneal);
    ("delta_sweep", Report.Experiments.delta_sweep);
    ("csv2", Report.Experiments.csv2);
    ("csv3", Report.Experiments.csv3);
    ("csv4", Report.Experiments.csv4);
    ("csv5", Report.Experiments.csv5);
    ("all", Report.Experiments.all);
  ]

let names = String.concat ", " (List.map fst artifacts)

let run jobs engine refiner trace trace_format selected =
  Obs_setup.setup_trace trace trace_format;
  let progress msg =
    prerr_endline ("# " ^ msg);
    flush stderr
  in
  let t = Report.Experiments.create ~progress ~jobs ~engine ~refiner () in
  Fun.protect
    ~finally:(fun () ->
      Report.Experiments.shutdown t;
      Obs_setup.finish_trace ())
    (fun () ->
      List.iter
        (fun name ->
          match List.assoc_opt name artifacts with
          | Some f ->
            print_string (f t);
            print_newline ()
          | None ->
            Printf.eprintf "unknown artifact %S; expected one of: %s\n" name
              names;
            exit 2)
        selected)

open Cmdliner

let selected =
  let doc = Printf.sprintf "Artifacts to regenerate: %s." names in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ARTIFACT" ~doc)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg "JOBS must be at least 1")
    | None -> Error (`Msg "JOBS must be an integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs =
  let doc =
    "Execution domains for the independent algorithm runs behind the \
     tables (default 1 = fully sequential).  Output is identical for \
     every $(docv); only wall-clock time changes."
  in
  Arg.(value & opt jobs_conv 1 & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

let engine =
  let engine_conv =
    Arg.enum
      [
        ("flat", Report.Experiments.Flat);
        ("mlevel", Report.Experiments.Multilevel);
      ]
  in
  let doc =
    "Engine behind the FPART runs: $(b,flat) (the paper's driver) or \
     $(b,mlevel) (the multilevel V-cycle)."
  in
  Arg.(value & opt engine_conv Report.Experiments.Flat
       & info [ "engine" ] ~docv:"ENGINE" ~doc)

let refiner =
  let refiner_conv =
    Arg.enum
      [
        ("sanchis", Fpart.Config.Sanchis_refiner);
        ("flow", Fpart.Config.Flow_refiner);
        ("hybrid", Fpart.Config.Hybrid_refiner);
      ]
  in
  let doc =
    "Improvement backend behind the FPART runs: $(b,sanchis) (the \
     paper's gain-bucket passes), $(b,flow) (corridor max-flow \
     refinement) or $(b,hybrid) (Sanchis with flow escalation on \
     stalled pairs)."
  in
  Arg.(value & opt refiner_conv Fpart.Config.Sanchis_refiner
       & info [ "refiner" ] ~docv:"BACKEND" ~doc)

let cmd =
  let doc = "regenerate the FPART paper's tables and figures on MCNC surrogates" in
  Cmd.v
    (Cmd.info "run_experiments" ~doc)
    Term.(
      const run $ jobs $ engine $ refiner $ Obs_setup.trace_arg
      $ Obs_setup.trace_format_arg $ selected)

let () = exit (Cmd.eval cmd)
