/* Process resource readings for Fpart_obs.Resource: peak RSS and
   user/system CPU time via getrusage(2).  The library's stdlib-only
   fallback parses /proc/self/status; this stub is cheaper and portable
   to non-procfs systems, so the binaries install it at startup (see
   obs_setup.ml), mirroring the monotonic clock in clock_stubs.c. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

#if defined(_WIN32)

CAMLprim value fpart_rusage_self(value unit)
{
  CAMLparam1(unit);
  CAMLlocal1(res);
  res = caml_alloc_tuple(3);
  Store_field(res, 0, caml_copy_double(0.0));
  Store_field(res, 1, caml_copy_double(0.0));
  Store_field(res, 2, caml_copy_double(0.0));
  CAMLreturn(res);
}

#else

#include <sys/resource.h>

CAMLprim value fpart_rusage_self(value unit)
{
  CAMLparam1(unit);
  CAMLlocal1(res);
  struct rusage ru;
  double maxrss_kb = 0.0, utime = 0.0, stime = 0.0;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    /* ru_maxrss is kilobytes on Linux, bytes on macOS */
#if defined(__APPLE__)
    maxrss_kb = (double)ru.ru_maxrss / 1024.0;
#else
    maxrss_kb = (double)ru.ru_maxrss;
#endif
    utime = (double)ru.ru_utime.tv_sec + (double)ru.ru_utime.tv_usec * 1e-6;
    stime = (double)ru.ru_stime.tv_sec + (double)ru.ru_stime.tv_usec * 1e-6;
  }
  res = caml_alloc_tuple(3);
  Store_field(res, 0, caml_copy_double(maxrss_kb));
  Store_field(res, 1, caml_copy_double(utime));
  Store_field(res, 2, caml_copy_double(stime));
  CAMLreturn(res);
}

#endif
