Generate a synthetic circuit and partition it with FPART (default algo):

  $ fpart --generate 120x16 --device XC3090 --seed 7
  generated: 120 cells, 16 pads, 177 nets
  1 x XC3090 (S_MAX=288 T_MAX=144), feasible=true
  block  0: size  120  pins   16  flops    0  pads  16
  1 blocks, feasible (0 violating), cut 0, total pins 16

The k-way.x and FBB-MW baselines run on the same input:

  $ fpart --generate 120x16 --device XC3090 --seed 7 --algo kwayx | head -2
  generated: 120 cells, 16 pads, 177 nets
  1 x XC3090 (S_MAX=288 T_MAX=144), feasible=true

  $ fpart --generate 120x16 --device XC3090 --seed 7 --algo fbb-mw | head -2
  generated: 120 cells, 16 pads, 177 nets
  1 x XC3090 (S_MAX=288 T_MAX=144), feasible=true

Unknown devices are rejected with the catalog:

  $ fpart --generate 10x2 --device XC9999
  fpart: unknown device "XC9999" (known: XC3020, XC3042, XC3090, XC2064, XC2018, XC3030, XC3064, V1250, V12500)
  [1]

Saving and inspecting a partition file:

  $ fpart --generate 120x16 --device XC3042 --seed 7 --save out.part > /dev/null
  $ head -5 out.part
  # fpart partition
  circuit generated
  delta 0.9000
  blocks 1
  block 0 device XC3042

A partition of a BLIF netlist:

  $ cat > tiny.blif <<'BLIF'
  > .model tiny
  > .inputs a b
  > .outputs y
  > .names a b t
  > 11 1
  > .names t y
  > 1 1
  > .end
  > BLIF
  $ fpart tiny.blif --device XC3020
  tiny: 2 cells, 3 pads, 4 nets
  1 x XC3020 (S_MAX=57 T_MAX=64), feasible=true
  block  0: size    2  pins    3  flops    0  pads   3
  1 blocks, feasible (0 violating), cut 0, total pins 3

And of a structural Verilog netlist:

  $ cat > tiny.v <<'V'
  > module tiny (a, b, y);
  >   input a, b;
  >   output y;
  >   wire t;
  >   AND2 g1 (a, b, t);
  >   INV g2 (t, y);
  > endmodule
  > V
  $ fpart tiny.v --device XC3020
  tiny: 2 cells, 3 pads, 4 nets
  1 x XC3020 (S_MAX=57 T_MAX=64), feasible=true
  block  0: size    2  pins    3  flops    0  pads   3
  1 blocks, feasible (0 violating), cut 0, total pins 3

Parse errors are reported with a line number:

  $ printf '.model m\n.names\n.end\n' > bad.blif
  $ fpart bad.blif --device XC3020
  fpart: cannot parse bad.blif: line 2: .names without signals
  [1]

Round-trip: save a partition, then validate it with --check:

  $ fpart --generate 120x16 --device XC3042 --seed 7 --save rt.part > /dev/null
  $ fpart --generate 120x16 --device XC3042 --seed 7 --check rt.part
  checking rt.part against XC3042 (S_MAX=129 T_MAX=96)
  block  0: size  120  pins   16  flops    0  pads  16
  1 blocks, feasible (0 violating), cut 0, total pins 16

A partition checked against a too-small device fails:

  $ fpart --generate 120x16 --device XC3020 --seed 7 --check rt.part 2>&1 | tail -1
  fpart: partition is infeasible

Observability: --stats prints a metrics report on stderr and --trace
streams span/trace records as JSON Lines:

  $ fpart --generate 200x24 --device XC2064 --seed 7 --stats --trace out.jsonl > /dev/null 2> stats.txt
  $ head -1 stats.txt
  == fpart_obs metrics ==
  $ grep -q "driver.iterations" stats.txt && echo have-iteration-counter
  have-iteration-counter
  $ grep -c '"name":"driver.run"' out.jsonl
  1
  $ grep -q '"name":"driver.iteration"' out.jsonl && echo have-iteration-spans
  have-iteration-spans
  $ grep -q '"name":"improve.pass"' out.jsonl && echo have-improve-spans
  have-improve-spans
  $ grep -q '"type":"trace"' out.jsonl && echo have-trace-events
  have-trace-events

Resource telemetry rides in the same artifacts: --stats appends a
gc/resource summary after the metrics report, and trace spans carry
allocation deltas plus one counter record per closed span:

  $ grep -q '== fpart_obs gc/resource ==' stats.txt && echo have-gc-summary
  have-gc-summary
  $ grep -q 'maxrss_kb' stats.txt && echo have-rss-peak
  have-rss-peak
  $ grep -q 'alloc_words' stats.txt && echo have-alloc-total
  have-alloc-total
  $ grep -q '"alloc_w"' out.jsonl && echo have-resource-spans
  have-resource-spans
  $ grep -q '"type":"counter"' out.jsonl && echo have-counter-records
  have-counter-records

--ledger appends one run-history record per invocation (wall time,
block count, cut — plus config/netlist digests and resource peaks)
that fpart_inspect trend/regress aggregate across runs:

  $ fpart --generate 120x16 --device XC3090 --seed 7 --ledger run.jsonl | tail -1
  run recorded in run.jsonl
  $ fpart --generate 120x16 --device XC3090 --seed 7 --ledger run.jsonl > /dev/null
  $ fpart_inspect trend run.jsonl | tail -1
  2 entries, 3 benchmark rows
  $ fpart_inspect trend run.jsonl | awk 'NR > 1 && $1 ~ /^run\// { print $1 }'
  run/generated-XC3090-fpart/cut
  run/generated-XC3090-fpart/devices
  run/generated-XC3090-fpart/wall_s

Identical runs cannot regress on the structural rows (devices, cut),
and with a floor wide enough to absorb wall-clock noise on a
millisecond run the gate exits 0:

  $ fpart_inspect regress --min-delta 10 run.jsonl | tail -1
  2 rows checked, 0 regression(s)

Recorder spans carry tree structure (id/parent/track) and the trace
file is a well-formed span tree:

  $ grep '"name":"driver.run"' out.jsonl | grep -q '"id":' && echo have-span-ids
  have-span-ids
  $ fpart_inspect --check out.jsonl | sed 's/[0-9][0-9]*/N/g'
  ok: N records, N spans

--trace-format chrome writes the same records as a single Chrome Trace
Event JSON document (loadable in chrome://tracing and Perfetto), and
fpart_inspect folds it back into the identical validated tree:

  $ fpart --generate 200x24 --device XC2064 --seed 7 --trace out.json --trace-format chrome > /dev/null
  $ head -c 16 out.json
  {"traceEvents":[
  $ grep -q '"ph":"X"' out.json && echo have-complete-events
  have-complete-events
  $ grep -q '"ph":"M"' out.json && echo have-thread-names
  have-thread-names
  $ fpart_inspect --check out.json > chrome.count
  $ fpart_inspect --check out.jsonl > jsonl.count
  $ diff chrome.count jsonl.count && echo formats-agree
  formats-agree

--trace-log prints the recorded driver event log after the report:

  $ fpart --generate 120x16 --device XC3090 --seed 7 --trace-log | tail -2
  trace log:
    done after 0 iterations: k=1 feasible=true

Without observability flags nothing extra is printed:

  $ fpart --generate 120x16 --device XC3090 --seed 7 2>&1 | wc -l
  4

Parallel execution: --jobs N runs the multi-start / portfolio machinery
on N domains and is bit-identical to the sequential run:

  $ fpart --generate 200x24 --device XC2064 --seed 7 --runs 4 --jobs 1 > seq.out
  $ fpart --generate 200x24 --device XC2064 --seed 7 --runs 4 --jobs 4 > par.out
  $ diff seq.out par.out && echo identical
  identical

A jobs count below 1 is rejected up front:

  $ fpart --generate 10x2 --device XC3020 --jobs 0 2>&1 | head -1
  fpart: option '--jobs': JOBS must be at least 1
  $ fpart --generate 10x2 --device XC3020 --jobs 0 2> /dev/null
  [124]

Self-checking: --selfcheck validates the incremental state against the
reference oracle while partitioning.  The output is identical to a
plain run (no violations on a healthy tree), even at the per-move
paranoid level:

  $ fpart --generate 120x16 --device XC2064 --seed 7 > plain.out
  $ fpart --generate 120x16 --device XC2064 --seed 7 --selfcheck paranoid > paranoid.out
  $ diff plain.out paranoid.out && echo identical
  identical

The cheap level counts its checks in the metrics report and finds no
violations:

  $ fpart --generate 120x16 --device XC2064 --seed 7 --selfcheck cheap --stats > /dev/null 2> sc.txt
  $ grep -q "selfcheck.checks" sc.txt && echo checks-counted
  checks-counted
  $ grep -q "selfcheck.violations" sc.txt || echo no-violations
  no-violations

An unknown level is rejected:

  $ fpart --generate 10x2 --device XC3020 --selfcheck sometimes 2>&1 | head -1
  fpart: option '--selfcheck': invalid value 'sometimes', expected one of
