The experiment runner lists its artifacts on a bad name:

  $ run_fpart_experiments no_such_artifact 2>&1 | head -1
  unknown artifact "no_such_artifact"; expected one of: table1, table2, table3, table4, table5, table6, figure1, figure2, figure3, ablations, variance, modern, anneal, delta_sweep, csv2, csv3, csv4, csv5, all

Figure 3 is static (no partitioning runs needed):

  $ run_fpart_experiments figure3 2>/dev/null
  Figure 3. Feasible space for cell move
  device XC3020, delta = 0.90, S_MAX = 57; a move is allowed while the affected blocks stay in their size window (no pin constraint on moves)
  
  (a) multi-block pass : non-remainder blocks in [17, 59]  (eps*_min = 0.30, eps*_max = 1.05)
  (b) two-block pass   : non-remainder blocks in [54, 59]  (eps2_min = 0.95, eps2_max = 1.05)
      remainder block  : [0, +inf)  (eps^R_max = infinity)
      once k reaches M : upper bounds tighten to S_MAX = 57 (no size-violating moves)
  

The experiment runner validates --jobs the same way:

  $ run_fpart_experiments --jobs 0 table1 2>&1 | head -1
  run_experiments: option '--jobs': JOBS must be at least 1
