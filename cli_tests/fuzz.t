The fuzzer runs randomized differential rounds (incremental state vs
the reference oracle, jobs=1 vs jobs=N determinism) and reports the
seed range so any failure replays exactly:

  $ fpart_fuzz --rounds 5 --max-cells 60
  fuzz: 5 rounds, 0 divergences (seeds 1..5)

A specific round replays from its seed:

  $ fpart_fuzz --seed 4 --rounds 1 --max-cells 60
  fuzz: 1 rounds, 0 divergences (seeds 4..4)

Bad arguments are rejected:

  $ fpart_fuzz --rounds 0
  fpart_fuzz: --rounds must be at least 1
  [2]
