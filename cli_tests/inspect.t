fpart_inspect analyzes recorded traces offline.  Record one (the
trajectory is seed-deterministic; --no-times hides the wall-clock
columns so this output is stable):

  $ fpart --generate 200x24 --device XC2064 --seed 7 --trace a.jsonl > /dev/null

The default view is a self-time hotspot table plus one convergence row
per Improve() call (waste = moves explored minus moves retained after
the rewind to the best prefix):

  $ fpart_inspect --no-times a.jsonl | sed '/^$/d'
  == hotspots (self time) ==
  phase                           count
  improve.pass                       18
  driver.iteration                    3
  driver.run                          1
  == convergence (one row per Improve() call) ==
    it step         blocks passes  moves retained  waste        cut value
     1 pair_latest       2      1    156        0    156   30->30   (f=1, d=0.4500, T=81, dE=0.0000)
     1 all_blocks        2      1    156        0    156   30->30   (f=1, d=0.4500, T=81, dE=0.0000)
     1 min_size          2      1    156        0    156   30->30   (f=1, d=0.4500, T=81, dE=0.0000)
     1 min_io            2      1    156        0    156   30->30   (f=1, d=0.4500, T=81, dE=0.0000)
     1 max_free          2      1    156        0    156   30->30   (f=1, d=0.4500, T=81, dE=0.0000)
     2 pair_latest       2      1    149        0    149   37->37   (f=2, d=0.0500, T=95, dE=0.0000)
     2 all_blocks        3      1    224        0    224   37->37   (f=2, d=0.0500, T=95, dE=0.0000)
     2 min_size          2      1    148        0    148   37->37   (f=2, d=0.0500, T=95, dE=0.0000)
     2 min_io            2      1    149        0    149   37->37   (f=2, d=0.0500, T=95, dE=0.0000)
     2 max_free          2      1    149        0    149   37->37   (f=2, d=0.0500, T=95, dE=0.0000)
     3 pair_latest       2      1     40        0     40   38->38   (f=4, d=0.0000, T=97, dE=0.8333)
     3 all_blocks        4      8   1791       14   1777   38->34   (f=4, d=0.0000, T=90, dE=0.8333)
     3 min_size          2      1     45        0     45   34->34   (f=4, d=0.0000, T=90, dE=0.8333)
     3 min_io            2      1     45        0     45   34->34   (f=4, d=0.0000, T=90, dE=0.8333)
     3 max_free          2      1     45        0     45   34->34   (f=4, d=0.0000, T=90, dE=0.8333)
     3 final_pairs       2      1     45        0     45   34->34   (f=4, d=0.0000, T=90, dE=0.8333)
     3 final_pairs       2      5    257       10    247   34->31   (f=4, d=0.0000, T=84, dE=0.6667)
     3 final_pairs       2      1     48        0     48   31->31   (f=4, d=0.0000, T=84, dE=0.6667)
  total: 18 Improve() calls, 29 passes, 3915 moves (24 retained, 3891 rewound)

--passes adds the per-pass detail (gain-prefix maximum and the cut
trajectory of every Sanchis pass):

  $ fpart_inspect --no-times --passes a.jsonl | sed -n '/== passes ==/,$p' | head -5
  == passes ==
   exec  pass  moves   prefix     gmax        cut
      1     1    156        0      5.0   30->30
      1     1    156        0      8.0   30->30
      1     1    156        0      5.0   30->30

--diff compares two runs phase by phase and in convergence totals:

  $ fpart --generate 200x24 --device XC2064 --seed 8 --trace b.jsonl > /dev/null
  $ fpart_inspect --diff --no-times a.jsonl b.jsonl
  diff a.jsonl -> b.jsonl
  phase                         count_a  count_b  delta
  driver.iteration                    3        3     +0
  driver.run                          1        1     +0
  improve.pass                       18       18     +0
  convergence: improves 18 -> 18, passes 29 -> 33, moves 3915 -> 4449, retained 24 -> 30, final cut 31 -> 25

--check validates without printing tables; structural damage (an
orphaned parent id) exits 1, unparseable input exits 2:

  $ printf '%s\n' '{"type":"span","name":"x","dur_ms":1.0,"id":5,"parent":9,"track":0,"t_ms":0.0}' > orphan.jsonl
  $ fpart_inspect --check orphan.jsonl
  orphan.jsonl: span 5 (x) has orphaned parent 9
  [1]
  $ echo 'not json' > bad.jsonl
  $ fpart_inspect bad.jsonl
  fpart_inspect: bad.jsonl: line 1: offset 0: bad literal
  [2]
  $ fpart_inspect --diff a.jsonl
  fpart_inspect: --diff needs two trace files
  [2]
