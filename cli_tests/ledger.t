fpart_inspect has three artifact subcommands besides the default
trace analysis: [mem] renders the allocation view of a trace, [trend]
and [regress] compute run-history statistics over a fpart-ledger/1
JSONL file.

Resource telemetry rides along with --trace: span records carry
allocation deltas and every closed span emits one counter record:

  $ fpart --generate 200x24 --device XC2064 --seed 7 --trace a.jsonl > /dev/null
  $ grep -q '"alloc_w"' a.jsonl && echo have-resource-fields
  have-resource-fields
  $ grep -q '"type":"counter"' a.jsonl && echo have-counter-records
  have-counter-records

The mem report mirrors the hotspot table in allocated words.  The
word counts are machine-dependent, so only the shape is checked:

  $ fpart_inspect mem a.jsonl | sed -n '1p;2p'
  == allocation hotspots (self words) ==
  phase                           count        total_w         self_w
  $ fpart_inspect mem a.jsonl | awk '{print $1}' | grep -x -e improve.pass -e driver.run -e driver.iteration | sort -u
  driver.iteration
  driver.run
  improve.pass
  $ fpart_inspect mem a.jsonl | grep -q '== per-pass allocation' && echo have-per-pass
  have-per-pass
  $ fpart_inspect mem a.jsonl | grep -c '^totals: alloc_w='
  1

A chrome export round-trips through the same report (counter records
become "C" events and fold back on load):

  $ fpart --generate 200x24 --device XC2064 --seed 7 --trace a.json --trace-format chrome > /dev/null
  $ grep -q '"ph":"C"' a.json && echo have-counter-events
  have-counter-events
  $ fpart_inspect mem a.json | sed -n '1p'
  == allocation hotspots (self words) ==

A trace recorded without resource telemetry says so (exit 0 — absence
is not structural damage):

  $ printf '%s\n' '{"type":"span","name":"x","dur_ms":1.0,"id":1,"parent":0,"track":0,"t_ms":0.0}' > plain.jsonl
  $ fpart_inspect mem plain.jsonl
  no resource records (record the trace with resource telemetry enabled)

Ledger trends: per-row median/MAD trajectories in file order.  Three
entries, a steady wall-time row and an improving throughput row:

  $ cat > ledger.jsonl <<'EOF'
  > {"schema":"fpart-ledger/1","time":1,"kind":"bench","label":"b","jobs":1,"repeats":5,"rows":[{"name":"table2/wall","value":1.0,"unit":"s","better":"lower"},{"name":"gain/rate","value":100.0,"unit":"moves/s","better":"higher"}]}
  > {"schema":"fpart-ledger/1","time":2,"kind":"bench","label":"b","jobs":1,"repeats":5,"rows":[{"name":"table2/wall","value":1.1,"unit":"s","better":"lower"},{"name":"gain/rate","value":110.0,"unit":"moves/s","better":"higher"}]}
  > {"schema":"fpart-ledger/1","time":3,"kind":"bench","label":"b","jobs":1,"repeats":5,"rows":[{"name":"table2/wall","value":1.05,"unit":"s","better":"lower"},{"name":"gain/rate","value":120.0,"unit":"moves/s","better":"higher"}]}
  > EOF
  $ fpart_inspect trend ledger.jsonl
  benchmark                                    unit       dir      n       median          mad       latest    delta
  gain/rate                                    moves/s    higher   3          110           10          120    +9.1%
  table2/wall                                  s          lower    3         1.05         0.05         1.05    +0.0%
  3 entries, 2 benchmark rows

regress judges the newest entry against the median of its history;
nothing here moves beyond the 20% floor, so the gate passes:

  $ fpart_inspect regress ledger.jsonl
  benchmark                                      n     baseline       latest    worse  allowed  verdict
  table2/wall                                    2         1.05         1.05    +0.0%    28.2%  ok
  gain/rate                                      2          105          120   -14.3%    28.2%  ok
  2 rows checked, 0 regression(s)

A real regression (wall time doubling) fails with exit 1:

  $ sed 's/"time":3/"time":4/;s/"value":1.05/"value":2.2/' ledger.jsonl | tail -1 >> ledger.jsonl
  $ fpart_inspect regress ledger.jsonl
  benchmark                                      n     baseline       latest    worse  allowed  verdict
  table2/wall                                    3         1.05          2.2  +109.5%    28.2%  REGRESSED
  gain/rate                                      3          110          120    -9.1%    53.9%  ok
  2 rows checked, 1 regression(s)
  [1]

The gate is strict about history it cannot trust: a foreign schema tag
anywhere in the file fails the load (exit 1), and a missing file is a
usage error (exit 2):

  $ cp ledger.jsonl mixed.jsonl
  $ sed 's/fpart-ledger\/1/fpart-ledger\/9/' ledger.jsonl | head -1 >> mixed.jsonl
  $ fpart_inspect regress mixed.jsonl
  fpart_inspect: mixed.jsonl: line 5: unsupported ledger schema "fpart-ledger/9" (want "fpart-ledger/1")
  [1]
  $ fpart_inspect trend mixed.jsonl
  fpart_inspect: mixed.jsonl: line 5: unsupported ledger schema "fpart-ledger/9" (want "fpart-ledger/1")
  [1]
  $ fpart_inspect trend missing.jsonl
  fpart_inspect: missing.jsonl: no such file
  [2]
