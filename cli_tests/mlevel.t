The multilevel V-cycle engine partitions a Rent-rule circuit on a
virtual scale device:

  $ fpart --generate rent:2000 --device V1250 --engine mlevel --seed 1
  generated: 2000 cells, 135 pads, 2981 nets
  2 x V1250 (S_MAX=1125 T_MAX=600), feasible=true
  block  0: size 1042  pins   99  flops    0  pads  60
  block  1: size  958  pins  114  flops    0  pads  75
  2 blocks, feasible (0 violating), cut 39, total pins 213

It is bit-identical across --jobs (the partition files match):

  $ fpart --generate rent:2000 --device V1250 --engine mlevel --seed 1 \
  >   --jobs 1 --save j1.part > /dev/null
  $ fpart --generate rent:2000 --device V1250 --engine mlevel --seed 1 \
  >   --jobs 4 --save j4.part > /dev/null
  $ cmp j1.part j4.part && echo identical
  identical

The cheap self-check level adds the per-level contraction oracle
(coarse aggregates must equal the projected flat ones); a clean run
prints nothing extra:

  $ fpart --generate rent:2000 --device V1250 --engine mlevel --seed 1 \
  >   --selfcheck cheap | tail -1
  2 blocks, feasible (0 violating), cut 39, total pins 213

The trace stream records the engine's phases and per-level convergence:

  $ fpart --generate rent:2000 --device V1250 --engine mlevel --seed 1 \
  >   --trace trace.jsonl > /dev/null
  $ grep -c '"name":"mlevel.run"' trace.jsonl
  1
  $ grep -c '"name":"mlevel.coarsen"' trace.jsonl
  1
  $ grep -c '"name":"mlevel.initial"' trace.jsonl
  1
  $ grep -c '"name":"mlevel.uncoarsen"' trace.jsonl
  1
  $ grep '"type":"mlevel_coarsen"' trace.jsonl | head -1 | grep -o '"level":1'
  "level":1
  $ grep -q '"type":"mlevel_level"' trace.jsonl && echo levels-traced
  levels-traced

Bad rent specs are rejected:

  $ fpart --generate rent:10 --device V1250 --engine mlevel
  fpart: bad --generate spec (expected rent:CELLS with CELLS >= 64)
  [1]
