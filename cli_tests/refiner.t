The --refiner flag selects the improvement backend: the paper's
Sanchis passes (default), corridor max-flow refinement, or the hybrid
that escalates stalled pairs to flow:

  $ fpart --generate rent:2000 --device V1250 --refiner flow --seed 1
  generated: 2000 cells, 135 pads, 2981 nets
  2 x V1250 (S_MAX=1125 T_MAX=600), feasible=true
  block  0: size  956  pins  295  flops    0  pads  67
  block  1: size 1044  pins  298  flops    0  pads  68
  2 blocks, feasible (0 violating), cut 235, total pins 593

The hybrid never does worse than pure Sanchis on the same run (flow
only fires on pairs where a Sanchis pass retained zero moves, and a
corridor proposal is kept only when it improves the value):

  $ fpart --generate rent:2000 --device V1250 --refiner hybrid --seed 1 | tail -1
  2 blocks, feasible (0 violating), cut 181, total pins 489
  $ fpart --generate rent:2000 --device V1250 --refiner sanchis --seed 1 | tail -1
  2 blocks, feasible (0 violating), cut 181, total pins 489

Unknown backends are rejected:

  $ fpart --generate rent:2000 --device V1250 --refiner bogus
  fpart: option '--refiner': invalid value 'bogus', expected one of 'sanchis',
         'flow' or 'hybrid'
  Usage: fpart [OPTION]… [CIRCUIT.blif]
  Try 'fpart --help' for more information.
  [124]

Flow refinement is bit-identical across --jobs, like every other
backend (the corridor admission order and Dinic are seedless):

  $ fpart --generate rent:2000 --device V1250 --refiner flow --seed 1 \
  >   --jobs 1 --save j1.part > /dev/null
  $ fpart --generate rent:2000 --device V1250 --refiner flow --seed 1 \
  >   --jobs 4 --save j4.part > /dev/null
  $ cmp j1.part j4.part && echo identical
  identical

The oracle self-checks stay clean on a flow-refined run:

  $ fpart --generate rent:2000 --device V1250 --refiner flow --seed 1 \
  >   --selfcheck cheap | tail -1
  2 blocks, feasible (0 violating), cut 235, total pins 593

The flight recorder captures the refiner's phases (extract / dinic /
apply under flow.refine) and per-pair convergence events, and the
recorded trace passes the stream checker:

  $ fpart --generate rent:2000 --device V1250 --refiner flow --seed 1 \
  >   --trace trace.jsonl > /dev/null
  $ grep -q '"name":"flow.refine"' trace.jsonl && echo refine-spans
  refine-spans
  $ grep -q '"name":"flow.extract"' trace.jsonl && echo extract-spans
  extract-spans
  $ grep -q '"name":"flow.dinic"' trace.jsonl && echo dinic-spans
  dinic-spans
  $ grep -q '"type":"flow_pair"' trace.jsonl && echo pairs-traced
  pairs-traced
  $ fpart_inspect --check trace.jsonl
  ok: 99 records, 38 spans

The hybrid's escalations land in the Chrome trace export too:

  $ fpart --generate rent:2000 --device V1250 --refiner hybrid --seed 1 \
  >   --trace chrome.json --trace-format chrome > /dev/null
  $ grep -q '"name":"flow.refine"' chrome.json && echo hybrid-flow-spans
  hybrid-flow-spans
