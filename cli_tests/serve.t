fpart_serve answers framed JSONL requests.  Batch mode processes a
script: consecutive partition requests become one batched fan-out, a
crashing request or a malformed line costs only its own response, and
a repeated workload is served from the digest-keyed cache.

  $ cat > req.jsonl <<'EOF'
  > {"op":"ping"}
  > {"id":"r1","netlist":{"generate":"60x8","seed":5},"device":"XC3042"}
  > {"id":"r2","netlist":{"generate":"60x8","seed":5},"device":"XC3042"}
  > {"id":"boom","netlist":{"generate":"60x8","seed":5},"device":"XC3042","inject":"crash"}
  > not json
  > {"id":"r3","netlist":{"generate":"60x8","seed":6},"device":"XC9999"}
  > {"op":"shutdown"}
  > EOF
  $ fpart_serve --batch req.jsonl > resp.jsonl
  $ wc -l < resp.jsonl
  7

One response line per input line, ids preserved, and the daemon kept
answering after the crash and the parse error:

  $ sed 's/{"op":"pong"}/pong/;s/.*"id":"\([^"]*\)","status":"\([a-z]*\)".*/\1 \2/;s/{"op":"bye".*/bye/' resp.jsonl
  pong
  r1 ok
  r2 ok
  boom error
  ? error
  r3 error
  bye

The repeated workload is a cache hit and its partition is
bit-identical to the cold answer:

  $ grep '"id":"r1"' resp.jsonl | grep -c '"cache":"miss"'
  1
  $ grep '"id":"r2"' resp.jsonl | grep -c '"cache":"hit"'
  1
  $ sed -n 's/.*"id":"r1".*"partition":"\(.*\)"}/\1/p' resp.jsonl > p1
  $ sed -n 's/.*"id":"r2".*"partition":"\(.*\)"}/\1/p' resp.jsonl > p2
  $ test -s p1 && cmp p1 p2 && echo bit-identical
  bit-identical

The crash is reported as a typed error naming the injection, and the
unknown device as a preparation error:

  $ grep '"id":"boom"' resp.jsonl | grep -c 'injected crash'
  1
  $ grep '"id":"r3"' resp.jsonl | grep -c 'unknown device'
  1

Responses carry the canonical workload digests (32-hex MD5 of the
relabel-invariant netlist form and of the result-relevant config
knobs) — the same keys the run ledger and fpart_inspect trend use:

  $ grep '"id":"r1"' resp.jsonl | grep -c '"netlist_digest":"[0-9a-f]\{32\}"'
  1
  $ grep '"id":"r1"' resp.jsonl | grep -c '"config_digest":"[0-9a-f]\{32\}"'
  1

An ECO request re-legalizes a previous partition after a netlist
delta instead of repartitioning cold.  Feed r1's partition back with
a one-cell edit (the generator names cells gen_c0, gen_c1, ...):

  $ sed -n 's/.*"id":"r1".*"partition":"\(.*\)"}/\1/p' resp.jsonl | sed 's/\\n/\n/g' > prev.part
  $ printf 'remove node gen_c0\nadd cell eco_cell 1\nadd net eco_net eco_cell gen_c1\n' > eco.delta
  $ python3 - > eco.jsonl <<'EOF'
  > import json
  > req = {"id": "eco1",
  >        "netlist": {"generate": "60x8", "seed": 5},
  >        "device": "XC3042",
  >        "eco": {"delta": {"text": open("eco.delta").read()},
  >                "partfile": {"text": open("prev.part").read()}}}
  > print(json.dumps(req))
  > EOF
  $ fpart_serve --batch eco.jsonl | sed -n 's/.*"id":"eco1","status":"\([a-z]*\)".*"mode":"\([a-z-]*\)".*/\1 \2/p'
  ok warm

A serve session can append its latency table to a run-history ledger:

  $ fpart_serve --batch req.jsonl --ledger serve.jsonl > /dev/null
  $ fpart_inspect trend serve.jsonl | sed -n '$p'
  1 entries, 4 benchmark rows
  $ fpart_inspect trend serve.jsonl | awk 'NR > 1 && $1 ~ /serve/ { print $1 }'
  serve/latency-table/cold-p95-ms
  serve/latency-table/cold-p50-ms
  serve/latency-table/cache-hits
  serve/latency-table/requests
