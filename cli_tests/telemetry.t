The live telemetry plane: stats/health protocol ops, the one-shot
exposition dump, the structured access log, and the fpart_inspect
scrape consumer with its strict text-format parser.

  $ cat > req.jsonl <<'EOF'
  > {"id":"a","netlist":{"generate":"60x8","seed":5},"device":"XC3042"}
  > {"id":"b","netlist":{"generate":"60x8","seed":5},"device":"XC3042"}
  > {"op":"stats"}
  > {"op":"health"}
  > EOF
  $ fpart_serve --batch req.jsonl --metrics-out page.txt --access-log access.jsonl > resp.jsonl

The stats op answers after the requests before it in the script, so it
sees both of them and the cached entry; the health op is a cheap
liveness probe:

  $ sed -n 's/.*"op":"stats".*"served":\([0-9]*\),"errors":\([0-9]*\).*"entries":\([0-9]*\).*"hits":\([0-9]*\).*/served=\1 errors=\2 entries=\3 hits=\4/p' resp.jsonl
  served=2 errors=0 entries=1 hits=1
  $ grep -c '"op":"health","status":"ok"' resp.jsonl
  1

The access log carries one record per answered request: an
engine-minted request id, the client id, the serving mode and the
workload digests:

  $ sed 's/.*"rid":"\([^"]*\)","id":"\([^"]*\)".*"mode":"\([^"]*\)".*/\1 \2 \3/' access.jsonl
  r000001 a cold
  r000002 b hit
  $ grep -c '"netlist_digest":"[0-9a-f]*","config_digest":"[0-9a-f]*"' access.jsonl
  2

The exposition page is the same text /metrics serves: counter families
carry a _total suffix, histograms the full cumulative ladder ending in
+Inf, and the serve cache gauges are present:

  $ grep -c '^# TYPE fpart_serve_requests_total counter$' page.txt
  1
  $ grep '^fpart_serve_requests_total' page.txt
  fpart_serve_requests_total 2
  $ grep '^fpart_serve_cache_entries' page.txt
  fpart_serve_cache_entries 1
  $ grep -c '^fpart_serve_latency_cold_ms_bucket{le="+Inf"} 1$' page.txt
  1
  $ grep '^fpart_serve_latency_cold_ms_count' page.txt
  fpart_serve_latency_cold_ms_count 1
  $ grep '^fpart_serve_op_' page.txt
  fpart_serve_op_health_total 1
  fpart_serve_op_partition_total 2
  fpart_serve_op_stats_total 1

fpart_inspect scrape strict-parses the page (a file source works like
an address) and prints the compact table; the deterministic rows:

  $ fpart_inspect scrape page.txt | grep -E 'requests_total|cache_entries|op_partition'
  fpart_serve_cache_entries              1
  fpart_serve_op_partition_total         2
  fpart_serve_requests_total             2
  $ fpart_inspect scrape page.txt | sed -n 's/^fpart_serve_latency_cold_ms  *\(count=[0-9]*\).*/\1/p'
  count=1

A corrupt page fails the strict parser and exits 1:

  $ sed 's/^fpart_serve_requests_total 2/fpart_serve_requests_total -2/' page.txt > bad.txt
  $ fpart_inspect scrape bad.txt
  fpart_inspect: bad.txt: invalid exposition: family fpart_serve_requests_total: negative counter value
  [1]

The cache-size warning is one-shot and lands on stderr:

  $ fpart_serve --batch req.jsonl --cache-warn-mb 0.000001 >/dev/null
  fpart_serve: warning: result cache estimated at 0.0 MiB (1 entries) exceeds --cache-warn-mb 1e-06; the cache is unbounded — restart the daemon to clear it
