(* Baselines head-to-head: FPART vs k-way.x vs FBB-MW on one circuit —
   the per-row story of the paper's Tables 2-5 (FPART and FBB-MW close
   to the lower bound, greedy k-way.x behind).

   Run with: dune exec examples/baselines_compare.exe [circuit] [device]
   Defaults: s15850 XC3020. *)

let () =
  let circuit_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s15850" in
  let device_name = if Array.length Sys.argv > 2 then Sys.argv.(2) else "XC3020" in
  let circuit =
    match Netlist.Mcnc.find circuit_name with
    | Some c -> c
    | None ->
      Printf.eprintf "unknown circuit %s\n" circuit_name;
      exit 1
  in
  let device =
    match Device.find device_name with
    | Some d -> d
    | None ->
      Printf.eprintf "unknown device %s\n" device_name;
      exit 1
  in
  let hg = Netlist.Mcnc.surrogate circuit device.Device.family in
  let delta = Device.paper_delta device in
  let m =
    Device.lower_bound device ~delta
      ~total_size:(Hypergraph.Hgraph.total_size hg)
      ~total_pads:(Hypergraph.Hgraph.num_pads hg)
  in
  Format.printf "%s on %s: %a, lower bound M = %d@.@." circuit_name
    device.Device.dev_name Hypergraph.Hgraph.pp hg m;
  Format.printf "%-10s %4s %5s %9s %8s@." "algorithm" "k" "cut" "feasible" "cpu";

  let t0 = Sys.time () in
  let kw = Fpart.Kwayx.run hg device in
  Format.printf "%-10s %4d %5d %9b %7.2fs@." "k-way.x" kw.Fpart.Kwayx.k
    kw.Fpart.Kwayx.cut kw.Fpart.Kwayx.feasible (Sys.time () -. t0);

  let t0 = Sys.time () in
  let fb =
    Flow.Fbb_mw.partition hg device { Flow.Fbb_mw.default_config with delta }
  in
  Format.printf "%-10s %4d %5d %9b %7.2fs@." "FBB-MW" fb.Flow.Fbb_mw.k
    fb.Flow.Fbb_mw.cut fb.Flow.Fbb_mw.feasible (Sys.time () -. t0);

  let t0 = Sys.time () in
  let ml = (Mlevel.Engine.run hg device).Mlevel.Engine.res in
  Format.printf "%-10s %4d %5d %9b %7.2fs@." "MLEVEL" ml.Fpart.Driver.k
    ml.Fpart.Driver.cut ml.Fpart.Driver.feasible (Sys.time () -. t0);

  let t0 = Sys.time () in
  let fp = Fpart.Driver.run hg device in
  Format.printf "%-10s %4d %5d %9b %7.2fs@." "FPART" fp.Fpart.Driver.k
    fp.Fpart.Driver.cut fp.Fpart.Driver.feasible (Sys.time () -. t0);

  Format.printf
    "@.Expected shape (paper Tables 2-5): FPART <= FBB-MW <= k-way.x in@.\
     device count, with FPART at or near M.@."
