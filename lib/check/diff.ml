module Hg = Hypergraph.Hgraph
module State = Partition.State

type entry = {
  node : int;
  dest : int;
  gain : int option;
  cut_after : int option;
}

type violation = { index : int; reason : string }

let pp_violation ppf v =
  if v.index < 0 then Format.fprintf ppf "initial state: %s" v.reason
  else Format.fprintf ppf "move %d: %s" v.index v.reason

let log_of_moves hg ~k ~init ~moves =
  let assign = Array.copy init in
  let st = State.create hg ~k ~assign:(fun v -> assign.(v)) in
  List.map
    (fun (node, dest) ->
      let gain = State.cut_gain st node dest in
      State.move st node dest;
      { node; dest; gain = Some gain; cut_after = Some (State.cut_size st) })
    moves

let replay hg ~k ~init ~log =
  let assign = Array.copy init in
  let st = State.create hg ~k ~assign:(fun v -> assign.(v)) in
  let fail index fmt = Format.kasprintf (fun reason -> Error { index; reason }) fmt in
  let check_state index =
    match Oracle.diff_state st with
    | [] -> Ok ()
    | reason :: _ -> fail index "incremental state diverged: %s" reason
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let step index e =
    (match e.gain with
    | None -> Ok ()
    | Some claimed ->
      let oracle = Oracle.cut_gain hg ~k ~assign e.node e.dest in
      if claimed = oracle then Ok ()
      else
        fail index "stale gain for node %d -> block %d: engine %d, oracle %d"
          e.node e.dest claimed oracle)
    >>= fun () ->
    State.move st e.node e.dest;
    assign.(e.node) <- e.dest;
    (match e.cut_after with
    | None -> Ok ()
    | Some claimed ->
      let oracle = (Oracle.recompute hg ~k ~assign:(fun v -> assign.(v))).Oracle.cut in
      if claimed = oracle then Ok ()
      else fail index "cut after move: engine %d, oracle %d" claimed oracle)
    >>= fun () -> check_state index
  in
  match check_state (-1) with
  | Error _ as e -> e
  | Ok () ->
    let rec go index = function
      | [] -> Ok index
      | e :: rest -> ( match step index e with Ok () -> go (index + 1) rest | Error v -> Error v)
    in
    go 0 log
