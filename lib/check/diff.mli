(** Differential replay of move logs: incremental engine vs oracle.

    An improvement pass is a sequence of [State.move] calls driven by
    cached gains.  This harness replays such a sequence on a fresh
    incremental state and, after {e every} move, asserts that the
    incremental bookkeeping agrees with the from-scratch {!Oracle}
    recomputation; when the log also records what the engine {e
    believed} (the selected gain, the cut after the move), those claims
    are checked too.  A stale gain or a missed cache update therefore
    surfaces at the exact move that introduced it, instead of as a
    silently worse solution. *)

(** One logged move.  [gain] is the cut gain the engine predicted when
    it selected the move; [cut_after] the cut size its incremental state
    reported after applying it.  Both are optional so raw (node, block)
    sequences can be replayed too. *)
type entry = {
  node : int;
  dest : int;
  gain : int option;
  cut_after : int option;
}

(** A detected divergence: the 0-based index of the offending move in
    the log ([-1] for the initial state) and what disagreed. *)
type violation = { index : int; reason : string }

val pp_violation : Format.formatter -> violation -> unit

(** [log_of_moves h ~k ~init ~moves] runs the incremental machinery over
    the raw move sequence and records, for each move, the incremental
    [State.cut_gain] prediction and the incremental cut after the move —
    the engine's own account of the pass, ready to be checked by
    {!replay}.  [init] is not modified. *)
val log_of_moves :
  Hypergraph.Hgraph.t ->
  k:int ->
  init:int array ->
  moves:(int * int) list ->
  entry list

(** [replay h ~k ~init ~log] replays the log move by move, checking
    after every move that the incremental state matches the oracle and
    that the logged [gain] / [cut_after] claims hold.  Returns the
    number of moves replayed, or the first violation.  [init] is not
    modified. *)
val replay :
  Hypergraph.Hgraph.t ->
  k:int ->
  init:int array ->
  log:entry list ->
  (int, violation) result
