(** FPART differential-testing and self-checking layer.

    One entry point for every correctness oracle in the tree:

    - {!Oracle} — from-scratch recomputation of the per-block aggregates,
      move gains and the lexicographic solution value, plus a brute-force
      optimal bipartitioner for tiny circuits;
    - {!Diff} — replay of a pass's move log asserting the incremental
      state (and the engine's recorded gains) match the oracle after
      every move;
    - {!Selfcheck} — the runtime validation levels behind
      [Config.selfcheck] / [--selfcheck], reporting through [Fpart_obs];
    - {!Check} — the partition-level constraint report
      ([Partition.Check], re-exported so callers need only this
      library), which also cross-validates the cached [S_i]/[T_i]
      against its own quotient recomputation. *)

module Oracle = Oracle
module Diff = Diff
module Selfcheck = Selfcheck
module Check = Partition.Check
