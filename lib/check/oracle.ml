module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost

type blocks = {
  sizes : int array;
  flops : int array;
  pins : int array;
  pads : int array;
  cells : int array;
  cut : int;
  t_sum : int;
}

let recompute hg ~k ~assign =
  if k < 1 then invalid_arg "Oracle.recompute: k < 1";
  let sizes = Array.make k 0 in
  let flops = Array.make k 0 in
  let pins = Array.make k 0 in
  let pads = Array.make k 0 in
  let cells = Array.make k 0 in
  Hg.iter_nodes
    (fun v ->
      let b = assign v in
      if b < 0 || b >= k then invalid_arg "Oracle.recompute: block out of range";
      sizes.(b) <- sizes.(b) + Hg.size hg v;
      flops.(b) <- flops.(b) + Hg.flops hg v;
      cells.(b) <- cells.(b) + 1;
      if Hg.is_pad hg v then pads.(b) <- pads.(b) + 1)
    hg;
  let cut = ref 0 in
  let t_sum = ref 0 in
  let touched = Array.make k false in
  Hg.iter_nets
    (fun e ->
      Array.fill touched 0 k false;
      let span = ref 0 in
      let has_pad = ref false in
      Array.iter
        (fun v ->
          if Hg.is_pad hg v then has_pad := true;
          let b = assign v in
          if not touched.(b) then begin
            touched.(b) <- true;
            incr span
          end)
        (Hg.pins hg e);
      if !span >= 2 then incr cut;
      (* pin model: a net consumes a terminal on every block it touches
         iff it is cut or carries a pad somewhere *)
      if !span >= 2 || !has_pad then
        for b = 0 to k - 1 do
          if touched.(b) then begin
            pins.(b) <- pins.(b) + 1;
            incr t_sum
          end
        done)
    hg;
  { sizes; flops; pins; pads; cells; cut = !cut; t_sum = !t_sum }

let of_state st =
  let a = State.assignment st in
  recompute (State.hypergraph st) ~k:(State.k st) ~assign:(fun v -> a.(v))

let diff_state st =
  let o = of_state st in
  let k = State.k st in
  let errs = ref [] in
  let add fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let block name cached fresh =
    for b = k - 1 downto 0 do
      if cached b <> fresh.(b) then
        add "%s of block %d: cached %d, oracle %d" name b (cached b) fresh.(b)
    done
  in
  block "size" (State.size_of st) o.sizes;
  block "flops" (State.flops_of st) o.flops;
  block "pins" (State.pins_of st) o.pins;
  block "pads" (State.pads_of st) o.pads;
  block "cells" (State.cells_of st) o.cells;
  if State.cut_size st <> o.cut then
    add "cut: cached %d, oracle %d" (State.cut_size st) o.cut;
  if State.total_pins st <> o.t_sum then
    add "total pins: cached %d, oracle %d" (State.total_pins st) o.t_sum;
  !errs

let with_move assign v b f =
  let old = assign.(v) in
  assign.(v) <- b;
  let r = f () in
  assign.(v) <- old;
  r

let cut_gain hg ~k ~assign v b =
  let before = (recompute hg ~k ~assign:(fun u -> assign.(u))).cut in
  let after =
    with_move assign v b (fun () ->
        (recompute hg ~k ~assign:(fun u -> assign.(u))).cut)
  in
  before - after

let pin_gain hg ~k ~assign v b =
  let before = (recompute hg ~k ~assign:(fun u -> assign.(u))).t_sum in
  let after =
    with_move assign v b (fun () ->
        (recompute hg ~k ~assign:(fun u -> assign.(u))).t_sum)
  in
  before - after

let evaluate params ctx hg ~k ~assign ~remainder ~step_k =
  let o = recompute hg ~k ~assign:(fun v -> assign.(v)) in
  let f = ref 0 in
  let d = ref 0.0 in
  for b = 0 to k - 1 do
    if
      Cost.block_feasible ctx ~size:o.sizes.(b) ~pins:o.pins.(b) ~flops:o.flops.(b)
    then incr f;
    d :=
      !d
      +. Cost.block_distance params ctx ~size:o.sizes.(b) ~pins:o.pins.(b)
           ~flops:o.flops.(b)
  done;
  (match remainder with
  | Some r ->
    d :=
      !d
      +. params.Cost.lambda_r
         *. Cost.deviation_penalty ctx ~remainder_size:o.sizes.(r) ~step_k
  | None -> ());
  let io_bal =
    if ctx.Cost.total_pads = 0 || ctx.Cost.m_lower = 0 then 0.0
    else begin
      let t_avg =
        float_of_int ctx.Cost.total_pads /. float_of_int ctx.Cost.m_lower
      in
      let sum = ref 0.0 in
      for b = 0 to k - 1 do
        let te = float_of_int o.pads.(b) in
        if te < t_avg then sum := !sum +. ((t_avg -. te) /. t_avg)
      done;
      !sum
    end
  in
  { Cost.feasible_blocks = !f; distance = !d; t_sum = o.t_sum; io_bal }

let iter_assignments n k f =
  let assign = Array.make n 0 in
  let rec go i =
    if i = n then f assign
    else
      for b = 0 to k - 1 do
        assign.(i) <- b;
        go (i + 1)
      done
  in
  if n > 0 then go 0 else f assign

let best_bipartition params ctx hg =
  let n = Hg.num_nodes hg in
  if n > 20 then invalid_arg "Oracle.best_bipartition: more than 20 nodes";
  let best_assign = ref None in
  let best_value = ref None in
  iter_assignments n 2 (fun assign ->
      let v = evaluate params ctx hg ~k:2 ~assign ~remainder:None ~step_k:1 in
      let better =
        match !best_value with
        | None -> true
        | Some bv -> Cost.compare_value v bv < 0
      in
      if better then begin
        best_assign := Some (Array.copy assign);
        best_value := Some v
      end);
  match (!best_assign, !best_value) with
  | Some a, Some v -> (a, v)
  | _ -> invalid_arg "Oracle.best_bipartition: empty circuit"
