(** Reference (slow) recomputation of every quantity the incremental
    machinery maintains.

    The partitioning engines trust [Partition.State]'s O(1)-amortized
    bookkeeping — per-block sizes, terminal counts, cut, total pins —
    and the gain buckets derived from it.  A stale increment there does
    not crash: it silently degrades solutions.  This module is the
    oracle the differential harness ({!Diff}), the runtime self-check
    ({!Selfcheck}) and the fuzzer compare against: every function
    recomputes from scratch, from the hypergraph and a plain assignment,
    sharing {e no} code with the incremental paths in
    [lib/partition/state.ml].

    Everything here is O(pins) or worse — test/validation use only. *)

(** From-scratch per-block aggregates of one assignment. *)
type blocks = {
  sizes : int array;  (** [S_i]: summed cell size. *)
  flops : int array;  (** [F_i]: summed flip-flop count. *)
  pins : int array;   (** [T_i]: terminal count (DESIGN.md §7 pin model). *)
  pads : int array;   (** [T_i^E]: pads assigned to the block. *)
  cells : int array;  (** Nodes (cells and pads) per block. *)
  cut : int;          (** Nets spanning at least two blocks. *)
  t_sum : int;        (** [T_SUM = Σ T_i]. *)
}

(** [recompute h ~k ~assign] rebuilds every aggregate by walking all
    nodes and all nets once.  @raise Invalid_argument if [k < 1] or an
    assignment is out of range. *)
val recompute : Hypergraph.Hgraph.t -> k:int -> assign:(int -> int) -> blocks

(** [of_state st] recomputes the aggregates of a live state's current
    assignment (without consulting any of its caches). *)
val of_state : Partition.State.t -> blocks

(** [diff_state st] compares every cached quantity of [st] — block
    sizes, flop counts, terminal counts, pad counts, node counts, cut
    size, total pins — against the oracle recomputation and returns one
    human-readable line per discrepancy ([[]] when the incremental state
    is consistent). *)
val diff_state : Partition.State.t -> string list

(** [cut_gain h ~k ~assign v b] is the decrease in cut size if node [v]
    moved to block [b], by recomputing the cut before and after. *)
val cut_gain : Hypergraph.Hgraph.t -> k:int -> assign:int array -> int -> int -> int

(** [pin_gain h ~k ~assign v b] is the decrease in [T_SUM] if node [v]
    moved to block [b]. *)
val pin_gain : Hypergraph.Hgraph.t -> k:int -> assign:int array -> int -> int -> int

(** [evaluate params ctx h ~k ~assign ~remainder ~step_k] is the
    lexicographic solution value [(f, d_k, T_SUM, d_k^E)] of section 3.4
    computed entirely from the oracle aggregates — the reference for
    [Partition.Cost.evaluate] over a live state. *)
val evaluate :
  Partition.Cost.params ->
  Partition.Cost.context ->
  Hypergraph.Hgraph.t ->
  k:int ->
  assign:int array ->
  remainder:int option ->
  step_k:int ->
  Partition.Cost.value

(** [best_bipartition params ctx h] enumerates every 2-way assignment of
    the circuit and returns the best one under the lexicographic order
    (ties broken by enumeration order, so the result is deterministic).
    Exponential — tiny circuits only.
    @raise Invalid_argument if the circuit has more than 20 nodes. *)
val best_bipartition :
  Partition.Cost.params ->
  Partition.Cost.context ->
  Hypergraph.Hgraph.t ->
  int array * Partition.Cost.value

(** [iter_assignments n k f] calls [f] on every one of the [k^n]
    assignments of [n] nodes to [k] blocks (the array is reused across
    calls).  The exhaustive loop behind {!best_bipartition}, exposed for
    tests that enumerate with their own predicate. *)
val iter_assignments : int -> int -> (int array -> unit) -> unit
