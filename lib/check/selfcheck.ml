module Obs = Fpart_obs.Metrics
module Sink = Fpart_obs.Sink
module Json = Fpart_obs.Json

type level = Off | Cheap | Paranoid

let rank = function Off -> 0 | Cheap -> 1 | Paranoid -> 2
let at_least l threshold = rank l >= rank threshold

let level_name = function Off -> "off" | Cheap -> "cheap" | Paranoid -> "paranoid"

let level_of_string s =
  match String.lowercase_ascii s with
  | "off" -> Ok Off
  | "cheap" -> Ok Cheap
  | "paranoid" -> Ok Paranoid
  | _ -> Error (Printf.sprintf "unknown self-check level %S (off, cheap or paranoid)" s)

let c_checks = Obs.counter "selfcheck.checks"
let c_violations = Obs.counter "selfcheck.violations"

let validate ?(where = "state") st =
  Obs.incr c_checks;
  let errs = Oracle.diff_state st in
  (match errs with
  | [] -> ()
  | errs ->
    Obs.add c_violations (List.length errs);
    List.iter
      (fun reason ->
        Sink.emit
          (Json.Obj
             [
               ("type", Json.Str "selfcheck");
               ("where", Json.Str where);
               ("violation", Json.Str reason);
             ]))
      errs);
  List.length errs

let validate_gain ?(where = "gain") st ~pin ~cell ~target ~gain =
  Obs.incr c_checks;
  let hg = Partition.State.hypergraph st in
  let k = Partition.State.k st in
  let assign = Partition.State.assignment st in
  let expect =
    if pin then Oracle.pin_gain hg ~k ~assign cell target
    else Oracle.cut_gain hg ~k ~assign cell target
  in
  if expect = gain then 0
  else begin
    Obs.incr c_violations;
    Sink.emit
      (Json.Obj
         [
           ("type", Json.Str "selfcheck");
           ("where", Json.Str where);
           ( "violation",
             Json.Str
               (Printf.sprintf
                  "%s gain of cell %d towards block %d: engine says %d, oracle says %d"
                  (if pin then "pin" else "cut")
                  cell target gain expect) );
         ]);
    1
  end

let tick () = Obs.incr c_checks

let record ~where reason =
  Obs.incr c_violations;
  Sink.emit
    (Json.Obj
       [
         ("type", Json.Str "selfcheck");
         ("where", Json.Str where);
         ("violation", Json.Str reason);
       ])

let checks_run () = Obs.counter_value c_checks
let violations_seen () = Obs.counter_value c_violations
