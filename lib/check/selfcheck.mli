(** Runtime self-check levels for the FPART pipeline.

    Production-scale runs cannot afford a differential harness, but they
    can afford spot checks: [Config.selfcheck] (exposed as
    [--selfcheck] on the CLI) selects how aggressively the incremental
    state is validated against the {!Oracle} while the algorithm runs.

    - {!Off} (default): no validation, zero overhead.
    - {!Cheap}: validate at pass boundaries — after every [Improve()]
      call and on the final partition.  O(pins) per boundary, a handful
      of boundaries per iteration; overhead is a few percent.
    - {!Paranoid}: additionally validate after {e every applied move}
      inside the Sanchis engine.  O(pins) per move — debugging only.

    Violations never abort the run: they are counted
    ([selfcheck.violations]) and reported through the [Fpart_obs] sink
    as [{"type":"selfcheck",...}] records, so a production deployment
    can alert on the counter while the run completes. *)

type level = Off | Cheap | Paranoid

(** [at_least l threshold] — is [l] at least as strict as [threshold]? *)
val at_least : level -> level -> bool

val level_name : level -> string

(** Case-insensitive; accepts ["off"], ["cheap"], ["paranoid"]. *)
val level_of_string : string -> (level, string) result

(** [validate ?where st] diffs the incremental state against the oracle.
    Increments the [selfcheck.checks] counter; every discrepancy
    increments [selfcheck.violations] and emits a sink record tagged
    with [where].  Returns the number of discrepancies (0 = clean). *)
val validate : ?where:string -> Partition.State.t -> int

(** [validate_gain ?where st ~pin ~cell ~target ~gain] cross-checks one
    bucket gain maintained by the engine's incremental delta updates
    against the oracle: the decrease in cut size (or, with [pin], in
    total pin count) if [cell] moved to block [target] must equal
    [gain].  Counting and reporting as in {!validate}; returns the
    number of discrepancies (0 or 1).  O(pins) per call — this backs
    the paranoid level's per-update hook. *)
val validate_gain :
  ?where:string ->
  Partition.State.t ->
  pin:bool ->
  cell:int ->
  target:int ->
  gain:int ->
  int

(** [tick ()] counts one check performed {e outside} this module into
    [selfcheck.checks] — for cross-checks with their own comparison
    logic, like the multilevel engine's contraction oracle. *)
val tick : unit -> unit

(** [record ~where reason] counts one violation found by an external
    cross-check into [selfcheck.violations] and emits the standard
    [{"type":"selfcheck",...}] sink record.  Pair with {!tick}. *)
val record : where:string -> string -> unit

(** Calling-domain totals of the [selfcheck.checks] /
    [selfcheck.violations] counters (convenience for tests and the
    fuzzer). *)
val checks_run : unit -> int

val violations_seen : unit -> int
