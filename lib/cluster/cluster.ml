module Hg = Hypergraph.Hgraph
module Csr = Hypergraph.Csr
module Matching = Matching

type t = {
  fine_hg : Hg.t;
  coarse_hg : Hg.t;
  node_map : int array;          (* fine -> coarse *)
  member_lists : int list array; (* coarse -> fine nodes *)
}

let coarse t = t.coarse_hg
let fine t = t.fine_hg
let coarse_of t v = t.node_map.(v)
let members t c = t.member_lists.(c)

let reduction t =
  float_of_int (Hg.num_nodes t.fine_hg) /. float_of_int (Hg.num_nodes t.coarse_hg)

(* The contraction itself lives in Csr.contract and the connectivity
   heuristic in Matching.compute; this module only restores names. *)
let build hg ~max_cluster_size ~seed =
  if max_cluster_size < 1 then invalid_arg "Cluster.build: max_cluster_size < 1";
  let csr = Csr.of_hgraph hg in
  let map, n_coarse =
    Matching.compute ~policy:Matching.Agglomerate
      ~max_weight:max_cluster_size ~seed csr
  in
  let coarse_csr, memento = Csr.contract csr ~map ~coarse_nodes:n_coarse in
  let member_lists = Array.make n_coarse [] in
  for v = Hg.num_nodes hg - 1 downto 0 do
    member_lists.(map.(v)) <- v :: member_lists.(map.(v))
  done;
  let node_name c =
    match member_lists.(c) with
    | [ p ] when Hg.is_pad hg p -> Hg.name hg p
    | _ -> Printf.sprintf "cl%d" c
  in
  let net_name e = Hg.net_name hg memento.Csr.kept_nets.(e) in
  {
    fine_hg = hg;
    coarse_hg = Csr.to_hgraph coarse_csr ~node_name ~net_name;
    node_map = map;
    member_lists;
  }

let project t coarse_assignment =
  if Array.length coarse_assignment <> Hg.num_nodes t.coarse_hg then
    invalid_arg "Cluster.project: wrong assignment length";
  Array.map (fun c -> coarse_assignment.(c)) t.node_map
