(** Connectivity-based clustering pre-pass.

    Clustering is one of the classical FM parameters the paper's
    introduction lists (Hagen/Huang/Kahng 1997 study it at length): the
    circuit is coarsened by merging strongly connected cells, the k-way
    partitioning runs on the much smaller coarse hypergraph, and the
    result is projected back to the flat netlist for refinement.

    The clusterer grows clusters greedily: cells are visited in a
    seed-determined random order; an unclustered cell starts a cluster,
    which repeatedly absorbs the unclustered neighbour with the highest
    connectivity score (shared nets weighted by 1/(net degree - 1), the
    standard edge-coarsening weight) while the cluster's logic size
    stays within [max_cluster_size].

    Pads are never clustered: each terminal node stays its own coarse
    node, so the coarse hypergraph has exactly the same pad set and —
    because clusters are assigned wholesale — coarse pin counts equal
    flat pin counts for any projected assignment. *)

(** The matching machinery this module delegates to; the multilevel
    engine ([Mlevel.Engine]) uses it directly, per level. *)
module Matching = Matching

type t

(** The coarse hypergraph.  Coarse cell sizes (and flip-flop counts) are
    the sums over their members; coarse nets are the original nets with
    at least two distinct coarse endpoints. *)
val coarse : t -> Hypergraph.Hgraph.t

(** [fine t] is the original hypergraph. *)
val fine : t -> Hypergraph.Hgraph.t

(** [coarse_of t v] maps a fine node to its coarse node. *)
val coarse_of : t -> Hypergraph.Hgraph.node -> Hypergraph.Hgraph.node

(** [members t c] lists the fine nodes merged into coarse node [c]. *)
val members : t -> Hypergraph.Hgraph.node -> Hypergraph.Hgraph.node list

(** [build h ~max_cluster_size ~seed] clusters hypergraph [h].
    @raise Invalid_argument if [max_cluster_size < 1]. *)
val build : Hypergraph.Hgraph.t -> max_cluster_size:int -> seed:int -> t

(** [project t coarse_assignment] expands an assignment of the coarse
    nodes into an assignment of the fine nodes.
    @raise Invalid_argument on a wrong-length array. *)
val project : t -> int array -> int array

(** [reduction t] is [fine nodes / coarse nodes] (≥ 1.0). *)
val reduction : t -> float
