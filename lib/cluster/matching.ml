module Csr = Hypergraph.Csr
module Rng = Prng.Splitmix

type policy = Pairs | Agglomerate

(* Nets fatter than this carry no locality signal (clock/reset-style
   broadcast); skipping them keeps a matching pass O(pins). *)
let net_degree_cap = 64

let compute ~policy ~max_weight ?within ~seed csr =
  if max_weight < 1 then invalid_arg "Matching.compute: max_weight < 1";
  let n = Csr.num_nodes csr in
  (match within with
  | Some p when Array.length p <> n ->
    invalid_arg "Matching.compute: within length <> num_nodes"
  | _ -> ());
  let same u v =
    match within with None -> true | Some p -> p.(u) = p.(v)
  in
  (* group.(v) = tag of v's group (a fine node id); -1 while unmatched *)
  let group = Array.make n (-1) in
  let score = Array.make n 0.0 in
  let touched = Array.make n 0 in
  let ntouched = ref 0 in
  let reset_scores () =
    for i = 0 to !ntouched - 1 do
      score.(touched.(i)) <- 0.0
    done;
    ntouched := 0
  in
  (* Add m's connectivity into [score] for every eligible neighbour:
     2-pin nets (cones) count double, fat nets are skipped. *)
  let add_contributions m =
    Csr.iter_node_nets
      (fun e ->
        let d = Csr.net_degree csr e in
        if d >= 2 && d <= net_degree_cap then begin
          let w = if d = 2 then 2.0 else 1.0 /. float_of_int (d - 1) in
          Csr.iter_net_pins
            (fun u ->
              if
                u <> m && group.(u) < 0
                && (not (Csr.is_pad csr u))
                && same u m
              then begin
                if score.(u) = 0.0 then begin
                  touched.(!ntouched) <- u;
                  incr ntouched
                end;
                score.(u) <- score.(u) +. w
              end)
            csr e
        end)
      csr m
  in
  (* Best touched candidate under the running group size; ties break to
     the lowest id so the result is independent of net layout order. *)
  let best_candidate gsize =
    let best = ref (-1) and best_score = ref 0.0 in
    for i = 0 to !ntouched - 1 do
      let u = touched.(i) in
      if group.(u) < 0 && gsize + csr.Csr.size.(u) <= max_weight then
        if
          score.(u) > !best_score
          || (score.(u) = !best_score && !best >= 0 && u < !best)
        then begin
          best := u;
          best_score := score.(u)
        end
    done;
    !best
  in
  let order =
    let cells = ref [] in
    for v = n - 1 downto 0 do
      if not (Csr.is_pad csr v) then cells := v :: !cells
    done;
    let a = Array.of_list !cells in
    Rng.shuffle (Rng.create seed) a;
    a
  in
  Array.iter
    (fun v0 ->
      if group.(v0) < 0 then begin
        match policy with
        | Pairs ->
          let sz = csr.Csr.size.(v0) in
          if sz < max_weight then begin
            (* mark v0 ineligible for self-scoring via a temp tag *)
            group.(v0) <- v0;
            add_contributions v0;
            let u = best_candidate sz in
            reset_scores ();
            if u >= 0 then begin
              let tag = min v0 u in
              group.(v0) <- tag;
              group.(u) <- tag
            end
          end
          else group.(v0) <- v0
        | Agglomerate ->
          group.(v0) <- v0;
          let gsize = ref csr.Csr.size.(v0) in
          add_contributions v0;
          let stop = ref false in
          while not !stop do
            let u = best_candidate !gsize in
            if u < 0 then stop := true
            else begin
              group.(u) <- v0;
              gsize := !gsize + csr.Csr.size.(u);
              score.(u) <- 0.0;
              add_contributions u;
              if !gsize >= max_weight then stop := true
            end
          done;
          reset_scores ()
      end)
    order;
  (* pads (and any leftover) stay singletons *)
  for v = 0 to n - 1 do
    if group.(v) < 0 then group.(v) <- v
  done;
  (* densify group tags into coarse ids, numbered by lowest member id *)
  let map = Array.make n (-1) in
  let id_of_tag = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let tag = group.(v) in
    if id_of_tag.(tag) < 0 then begin
      id_of_tag.(tag) <- !next;
      incr next
    end;
    map.(v) <- id_of_tag.(tag)
  done;
  (map, !next)
