(** Heavy-edge / cone-aware matching on CSR hypergraphs.

    The single source of coarsening decisions: both the multilevel
    engine's per-level pairing and {!Cluster}'s agglomerative pre-pass
    delegate here, so the connectivity heuristic lives in one place.

    Scoring follows the classical edge-coarsening weight: each net
    shared between two nodes contributes [1/(degree-1)], except that
    2-pin nets (driver–load cones in a netlist — the "cone-aware" part)
    count double, so absorbing a fanout-free buffer chain beats joining
    through a fat bus.  Nets fatter than an internal cap contribute
    nothing: they carry almost no locality signal and would make
    matching quadratic on star netlists.

    Pads are never matched — every pad stays a singleton group, which
    {!Csr.contract} requires.  All tie-breaks are by lowest node id and
    the visit order comes from a seeded {!Prng.Splitmix} shuffle, so a
    matching is a pure function of [(graph, policy, max_weight, within,
    seed)]. *)

type policy =
  | Pairs
      (** Maximal matching: each group is a single node or a pair.
          Halves the graph per level; the multilevel engine's choice. *)
  | Agglomerate
      (** Greedy cluster growth: a visit seeds a group that repeatedly
          absorbs its best unmatched neighbour while the summed size
          stays within [max_weight].  {!Cluster}'s historical
          behaviour, reaching higher per-pass reduction. *)

(** [compute ~policy ~max_weight ?within ~seed csr] returns
    [(map, coarse_nodes)] where [map.(v)] is [v]'s group and group ids
    are dense, numbered by each group's lowest fine node id (so the
    result is independent of visit order up to the grouping itself).

    No group's summed node size exceeds [max_weight] (a node already
    heavier than the cap stays a singleton).  [within], when given,
    restricts matching to nodes with equal [within.(v)] — used by
    repeated V-cycles to coarsen without crossing block boundaries.

    @raise Invalid_argument if [max_weight < 1] or [within] has the
    wrong length. *)
val compute :
  policy:policy ->
  max_weight:int ->
  ?within:int array ->
  seed:int ->
  Hypergraph.Csr.t ->
  int array * int
