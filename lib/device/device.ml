type family = XC2000 | XC3000

type t = { dev_name : string; family : family; s_ds : int; t_max : int }

let xc2064 = { dev_name = "XC2064"; family = XC2000; s_ds = 64; t_max = 58 }
let xc2018 = { dev_name = "XC2018"; family = XC2000; s_ds = 100; t_max = 74 }
let xc3020 = { dev_name = "XC3020"; family = XC3000; s_ds = 64; t_max = 64 }
let xc3030 = { dev_name = "XC3030"; family = XC3000; s_ds = 100; t_max = 80 }
let xc3042 = { dev_name = "XC3042"; family = XC3000; s_ds = 144; t_max = 96 }
let xc3064 = { dev_name = "XC3064"; family = XC3000; s_ds = 224; t_max = 120 }
let xc3090 = { dev_name = "XC3090"; family = XC3000; s_ds = 320; t_max = 144 }

(* Virtual scale devices: not in the paper (whose largest part has 320
   CLBs), but the 10^5–10^6-cell regime of the multilevel engine needs
   device capacities in proportion, or every run degenerates into
   hundreds of blocks.  Capacities follow the XC3000 shape (pin count
   ~ a third of the CLB count at the V1250 scale, flatter above). *)
let v1250 = { dev_name = "V1250"; family = XC3000; s_ds = 1250; t_max = 600 }
let v12500 = { dev_name = "V12500"; family = XC3000; s_ds = 12500; t_max = 2048 }

(* The paper's four devices first, then the rest of the two families,
   then the virtual scale devices. *)
let catalog =
  [ xc3020; xc3042; xc3090; xc2064; xc2018; xc3030; xc3064; v1250; v12500 ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun d -> String.lowercase_ascii d.dev_name = name) catalog

let s_max d ~delta =
  if delta <= 0.0 || delta > 1.0 then invalid_arg "Device.s_max: delta out of (0,1]";
  int_of_float (float_of_int d.s_ds *. delta)

let paper_delta d = match d.family with XC2000 -> 1.0 | XC3000 -> 0.9

let ff_per_clb d = match d.family with XC2000 -> 1 | XC3000 -> 2

let ff_max d ~delta = Some (ff_per_clb d * s_max d ~delta)

let feasible d ~delta ~size ~pins = size <= s_max d ~delta && pins <= d.t_max

let ceil_div a b = (a + b - 1) / b

(* The logic term divides by the *real* derated capacity [S_ds * delta]
   (not the floored S_MAX): this reproduces every M printed in the
   paper's Tables 2-5, including s13207/XC3020 where M = ceil(915/57.6)
   = 16 even though 16 blocks of floor(57.6) = 57 CLBs cannot actually
   hold 915 CLBs. *)
let lower_bound d ~delta ~total_size ~total_pads =
  if delta <= 0.0 || delta > 1.0 then
    invalid_arg "Device.lower_bound: delta out of (0,1]";
  let s_cap = float_of_int d.s_ds *. delta in
  let s = int_of_float (ceil (float_of_int total_size /. s_cap)) in
  let t = ceil_div total_pads d.t_max in
  max s t

let io_critical d ~delta ~total_size ~total_pads =
  let s_cap = float_of_int d.s_ds *. delta in
  let s = int_of_float (ceil (float_of_int total_size /. s_cap)) in
  let t = ceil_div total_pads d.t_max in
  s <= t

let pp ppf d =
  Format.fprintf ppf "%s(S_ds=%d, T_MAX=%d)" d.dev_name d.s_ds d.t_max
