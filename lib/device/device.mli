(** FPGA device models.

    A device [D = (S_MAX, T_MAX)] is characterised by its logic capacity
    in basic cells (CLBs) and its terminal (IOB pin) count, following
    section 2 of the paper.  The effective capacity is derated by a
    user-chosen filling ratio [delta]: [S_MAX = S_ds * delta], where
    [S_ds] is the data-sheet value.  The paper uses [delta = 0.9] for
    the XC3000 family and [delta = 1.0] for the XC2064. *)

type family =
  | XC2000  (** Xilinx XC2000 series (first-generation CLBs). *)
  | XC3000  (** Xilinx XC3000 series. *)

type t = {
  dev_name : string;  (** Data-sheet name, e.g. ["XC3020"]. *)
  family : family;
  s_ds : int;         (** Data-sheet CLB count. *)
  t_max : int;        (** IOB pin count. *)
}

(** {1 The catalog used in the paper's evaluation} *)

(** 64 CLBs, 58 IOBs, XC2000 family. *)
val xc2064 : t

(** 64 CLBs, 64 IOBs. *)
val xc3020 : t

(** 144 CLBs, 96 IOBs. *)
val xc3042 : t

(** 320 CLBs, 144 IOBs. *)
val xc3090 : t

(** 100 CLBs, 74 IOBs, XC2000 family. *)
val xc2018 : t

(** 100 CLBs, 80 IOBs. *)
val xc3030 : t

(** 224 CLBs, 120 IOBs. *)
val xc3064 : t

(** {1 Virtual scale devices}

    Not in the paper: capacities scaled up (XC3000 family rules, so
    [delta = 0.9] and 2 FFs/CLB) for the 10^5–10^6-cell circuits the
    multilevel engine targets, keeping the block count in the paper's
    usual M ≈ 10 range at that scale. *)

(** 1250 CLBs, 600 IOBs — for ~10^4-cell circuits. *)
val v1250 : t

(** 12500 CLBs, 2048 IOBs — for ~10^5-cell circuits. *)
val v12500 : t

(** The paper's four devices (Tables 2-5 order), then the rest of the
    two families, then the virtual scale devices. *)
val catalog : t list

(** [find name] looks a device up by (case-insensitive) name. *)
val find : string -> t option

(** {1 Derived quantities} *)

(** [s_max d ~delta] is the derated logic capacity
    [floor (S_ds * delta)].  @raise Invalid_argument if
    [delta <= 0 || delta > 1]. *)
val s_max : t -> delta:float -> int

(** [paper_delta d] is the filling ratio the paper used for [d]: 1.0 for
    the XC2064 and 0.9 for the XC3000-family devices. *)
val paper_delta : t -> float

(** [ff_max d ~delta] is the flip-flop capacity of the derated device:
    one FF per CLB on the XC2000 family, two on the XC3000 family (the
    "rarely critical" additional resource of the paper's section 2). *)
val ff_max : t -> delta:float -> int option

(** [feasible d ~delta ~size ~pins] is [P |= D]: [size <= S_MAX] and
    [pins <= T_MAX]. *)
val feasible : t -> delta:float -> size:int -> pins:int -> bool

(** [lower_bound d ~delta ~total_size ~total_pads] is the lower bound
    [M = max (ceil (S_0 / S_MAX)) (ceil (|Y_0| / T_MAX))] on the number
    of devices needed (section 2).  The logic term divides by the real
    derated capacity [S_ds · delta] rather than the floored {!s_max};
    this is the convention that reproduces every M printed in the
    paper's tables. *)
val lower_bound : t -> delta:float -> total_size:int -> total_pads:int -> int

(** [io_critical d ~delta ~total_size ~total_pads] is [true] when the
    pin term dominates the lower bound
    ([ceil (S_0/S_MAX) <= ceil (|Y_0|/T_MAX)]); such designs need the
    external-I/O balancing factor of section 3.4. *)
val io_critical : t -> delta:float -> total_size:int -> total_pads:int -> bool

val pp : Format.formatter -> t -> unit
