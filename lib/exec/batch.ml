type error =
  | Crashed of { exn : string; backtrace : string }
  | Timed_out of { elapsed_s : float; limit_s : float }

let error_to_string = function
  | Crashed { exn; _ } -> Printf.sprintf "crashed: %s" exn
  | Timed_out { elapsed_s; limit_s } ->
    Printf.sprintf "timed out: %.1fs (limit %.1fs)" elapsed_s limit_s

let run ?timeout_s ~pool ~f jobs =
  let arr = Array.of_list jobs in
  let results =
    Pool.map pool
      (fun _i job ->
        let t0 = Unix.gettimeofday () in
        match f job with
        | v -> (
          let elapsed_s = Unix.gettimeofday () -. t0 in
          match timeout_s with
          | Some limit_s when elapsed_s > limit_s ->
            Error (Timed_out { elapsed_s; limit_s })
          | _ -> Ok v)
        | exception e ->
          Error
            (Crashed
               {
                 exn = Printexc.to_string e;
                 backtrace = Printexc.get_backtrace ();
               }))
      arr
  in
  Array.to_list results
