(** Batch runner: fan a list of independent jobs over a {!Pool} with
    per-job exception isolation and a per-job time limit.  One crashing
    or overrunning job yields an [Error] in its slot; it never kills the
    batch or disturbs the other jobs' results.

    The time limit is cooperative: domains cannot be cancelled, so an
    overrunning job is detected (and reported as [Timed_out]) when it
    completes, while the remaining jobs keep running on the other
    domains.  It bounds what a batch {e reports}, not what a stuck job
    {e consumes} — see docs/PARALLELISM.md. *)

type error =
  | Crashed of { exn : string; backtrace : string }
      (** The job raised; the exception is rendered to strings so batch
          results can cross domains and be serialized freely. *)
  | Timed_out of { elapsed_s : float; limit_s : float }
      (** The job completed after its deadline; its result is dropped. *)

val error_to_string : error -> string

(** [run ?timeout_s ~pool ~f jobs] maps [f] over [jobs] on the pool and
    returns one [result] per job, in order. *)
val run :
  ?timeout_s:float ->
  pool:Pool.t ->
  f:('a -> 'b) ->
  'a list ->
  ('b, error) result list
