module Metrics = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Resource = Fpart_obs.Resource

(* One batch of tasks, fanned out by index.  [next] and [unfinished] are
   only touched under the pool mutex; [run i] itself executes unlocked. *)
type batch = {
  run : int -> unit;
  size : int;
  mutable next : int;
  mutable unfinished : int;
}

type shared = {
  mutex : Mutex.t;
  work : Condition.t;  (* workers wait here for a batch *)
  idle : Condition.t;  (* the submitting caller waits here for the join *)
  mutable pending : batch option;
  mutable stop : bool;
}

type t = {
  jobs : int;
  shared : shared;
  workers : unit Domain.t array;  (* jobs - 1 entries *)
  mutable active : bool;  (* a batch is in flight (caller domain only) *)
  mutable closed : bool;
}

(* Set on pool worker domains; lets task code detect that it is already
   running inside a fork (nested forks then degrade to inline), and
   lets the task wrapper know its metrics need snapshotting back. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let take_index sh =
  (* under sh.mutex *)
  match sh.pending with
  | Some b when b.next < b.size ->
    b.next <- b.next + 1;
    Some (b, b.next - 1)
  | _ -> None

let finish_one sh b =
  Mutex.lock sh.mutex;
  b.unfinished <- b.unfinished - 1;
  if b.unfinished = 0 then Condition.broadcast sh.idle;
  Mutex.unlock sh.mutex

let worker_loop sh =
  Domain.DLS.set in_worker true;
  let running = ref true in
  while !running do
    Mutex.lock sh.mutex;
    let job = ref None in
    while
      (not sh.stop)
      &&
      match take_index sh with
      | Some ji -> job := Some ji; false
      | None -> true
    do
      Condition.wait sh.work sh.mutex
    done;
    Mutex.unlock sh.mutex;
    match !job with
    | None -> running := false (* stop requested *)
    | Some (b, i) ->
      b.run i;
      finish_one sh b
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Fpart_exec.Pool.create: jobs < 1";
  let shared =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      pending = None;
      stop = false;
    }
  in
  let workers =
    Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop shared))
  in
  { jobs; shared; workers; active = false; closed = false }

let jobs t = t.jobs

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    let sh = t.shared in
    Mutex.lock sh.mutex;
    sh.stop <- true;
    Condition.broadcast sh.work;
    Mutex.unlock sh.mutex;
    Array.iter Domain.join t.workers
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Fork [size] tasks and join.  The caller participates in running
   tasks, so a 1-job pool has no worker domains and executes everything
   inline — the exact sequential path.  Re-entrant calls (from a task on
   any domain) and calls on a closed pool also run inline. *)
let run_batch t ~size ~run =
  if size > 0 then begin
    let inline () =
      for i = 0 to size - 1 do
        run i
      done
    in
    if Domain.DLS.get in_worker then inline ()
    else begin
      let sh = t.shared in
      Mutex.lock sh.mutex;
      if t.active || t.closed then begin
        Mutex.unlock sh.mutex;
        inline ()
      end
      else begin
        t.active <- true;
        let b = { run; size; next = 0; unfinished = size } in
        sh.pending <- Some b;
        Condition.broadcast sh.work;
        let continue = ref true in
        while !continue do
          match take_index sh with
          | Some (b, i) ->
            Mutex.unlock sh.mutex;
            b.run i;
            finish_one sh b;
            Mutex.lock sh.mutex
          | None -> continue := false
        done;
        while b.unfinished > 0 do
          Condition.wait sh.idle sh.mutex
        done;
        sh.pending <- None;
        t.active <- false;
        Mutex.unlock sh.mutex
      end
    end
  end

type 'b cell = Pending | Done of 'b | Raised of exn * Printexc.raw_backtrace

let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n Pending in
    let snaps = Array.make n None in
    let wmarks = Array.make n None in
    let rsnaps = Array.make n Recorder.empty_snapshot in
    let run i =
      (* Every task — including those the caller runs itself — records
         spans into a task-local capture, so the join can replay them
         in task index order: the emitted id/parent/order stream is
         then independent of how tasks were scheduled across domains. *)
      let (), rsnap =
        Recorder.capture (fun () ->
            results.(i) <-
              (match f i arr.(i) with
              | v -> Done v
              | exception e -> Raised (e, Printexc.get_raw_backtrace ())))
      in
      rsnaps.(i) <- rsnap;
      (* hand this task's metric activity back to the caller; tasks the
         caller ran itself accumulated in the right cells already.
         Resource peak watermarks travel the same way — max-merged at
         the join, so a post-join summary on the caller reflects peaks
         only a worker domain observed (flows need no merge: per-span
         resource deltas already ride in the recorder snapshot). *)
      if Domain.DLS.get in_worker then begin
        snaps.(i) <- Some (Metrics.snapshot_and_reset ());
        wmarks.(i) <- Some (Resource.snapshot_watermark ())
      end
    in
    run_batch t ~size:n ~run;
    Array.iter Recorder.merge rsnaps;
    Array.iter (function Some s -> Metrics.merge s | None -> ()) snaps;
    Array.iter (function Some w -> Resource.merge_watermark w | None -> ()) wmarks;
    Array.map
      (function
        | Done v -> v
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
      results
  end

let map_seeded t ~master_seed f arr =
  map t
    (fun i x -> f ~rng:(Prng.Splitmix.derive ~master:master_seed ~index:i) i x)
    arr

let run_all t thunks =
  let arr = Array.of_list thunks in
  Array.to_list (map t (fun _ f -> f ()) arr)

let both t f g =
  let wrapped =
    [| (fun () -> `Fst (f ())); (fun () -> `Snd (g ())) |]
  in
  match map t (fun _ h -> h ()) wrapped with
  | [| `Fst a; `Snd b |] -> (a, b)
  | _ -> assert false
