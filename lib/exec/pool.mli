(** Fixed-size domain pool with a deterministic fork/join API.

    A pool owns [jobs - 1] worker domains; the caller participates in
    every fork, so [create ~jobs:1] spawns nothing and runs every task
    inline in submission order — the exact sequential path.  Results are
    always collected in task-index order, and randomness is only handed
    to tasks as streams derived from [(master_seed, task_index)]
    ({!map_seeded}), so the value computed by a fork is bit-identical
    for every [jobs] and every scheduling.

    {b Metrics.}  Worker domains record [Fpart_obs] activity into their
    own cells; the pool snapshots each task's activity and merges the
    snapshots into the caller's registry at the join, in task-index
    order, so counter totals match a sequential run ({!Fpart_obs.Metrics}).

    {b Recorder.}  Every task additionally runs inside an
    {!Fpart_obs.Recorder.capture}; the captured span trees are replayed
    at the join in task-index order, so a trace recorded under any
    [jobs] has the same span ids, parents and record order as a
    sequential run (only [track] values and timestamps differ).

    {b Nesting.}  A fork submitted from inside a task (on any domain),
    or while another fork of the same pool is in flight, degrades to
    inline sequential execution — same values, no deadlock.

    {b Exceptions.}  If tasks raise, the fork still runs to completion
    and the exception of the lowest-indexed failing task is re-raised at
    the join ([Batch] builds isolation on top of this). *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains.
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> t

(** Domain budget of the pool (the [jobs] it was created with). *)
val jobs : t -> int

(** [map t f arr] computes [f i arr.(i)] for every index, in parallel,
    and returns the results in index order. *)
val map : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [map_seeded t ~master_seed f arr] is {!map} where task [i] also
    receives the PRNG stream [Splitmix.derive ~master:master_seed
    ~index:i] — the deterministic way to run randomized tasks in
    parallel. *)
val map_seeded :
  t ->
  master_seed:int ->
  (rng:Prng.Splitmix.t -> int -> 'a -> 'b) ->
  'a array ->
  'b array

(** [run_all t thunks] runs the thunks in parallel and returns their
    results in order. *)
val run_all : t -> (unit -> 'a) list -> 'a list

(** [both t f g] runs the two thunks in parallel (the two-candidate
    portfolio shape). *)
val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** Stop and join the worker domains.  Further forks run inline; idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] is [f (create ~jobs)] with a guaranteed
    {!shutdown}. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
