module Hg = Hypergraph.Hgraph
module Rng = Prng.Splitmix
module Obs = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Json = Fpart_obs.Json

let c_runs = Obs.counter "fbb_mw.runs"
let c_carves = Obs.counter "fbb_mw.carves"
let c_attempts = Obs.counter "fbb_mw.fbb_attempts"
let c_greedy = Obs.counter "fbb_mw.greedy_carves"

type config = {
  delta : float;
  window : float;
  pin_retries : int;
  refine_passes : int;
  rng_seed : int;
}

let default_config =
  { delta = 0.9; window = 0.85; pin_retries = 4; refine_passes = 4; rng_seed = 1 }

type outcome = { assignment : int array; k : int; feasible : bool; cut : int }

(* Pin count a device would pay for hosting exactly the [member] set:
   nets with a pin inside that either cross the set boundary or carry a
   pad inside (same model as Partition.State). *)
let pins_of_set hg member =
  let count = ref 0 in
  Hg.iter_nets
    (fun e ->
      let pins = Hg.pins hg e in
      let has_in = Array.exists member pins in
      if has_in then begin
        let has_out = Array.exists (fun v -> not (member v)) pins in
        let pad_in = Array.exists (fun v -> member v && Hg.is_pad hg v) pins in
        if has_out || pad_in then incr count
      end)
    hg;
  !count

let weight_where hg pred =
  let w = ref 0 in
  Hg.iter_cells (fun v -> if pred v then w := !w + Hg.size hg v) hg;
  !w

(* BFS restricted to [keep], returning the last node dequeued (an
   approximately eccentric node) — or [start] when isolated. *)
let far_node hg ~keep start =
  let n = Hg.num_nodes hg in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(start) <- true;
  Queue.add start q;
  let last = ref start in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    last := v;
    Array.iter
      (fun e ->
        Array.iter
          (fun u ->
            if (not seen.(u)) && keep u then begin
              seen.(u) <- true;
              Queue.add u q
            end)
          (Hg.pins hg e))
      (Hg.nets_of hg v)
  done;
  !last

(* Greedy BFS carve used when FBB cannot reach the weight window: grow a
   cluster from [start] until the weight enters [lo, hi]. *)
let greedy_carve hg ~keep ~start ~hi =
  let n = Hg.num_nodes hg in
  let side = Array.make n false in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(start) <- true;
  Queue.add start q;
  let w = ref 0 in
  let stop = ref false in
  while (not !stop) && not (Queue.is_empty q) do
    let v = Queue.pop q in
    let s = Hg.size hg v in
    if !w + s <= hi then begin
      side.(v) <- true;
      w := !w + s;
      if !w >= hi then stop := true
      else
        Array.iter
          (fun e ->
            Array.iter
              (fun u ->
                if (not seen.(u)) && keep u then begin
                  seen.(u) <- true;
                  Queue.add u q
                end)
              (Hg.pins hg e))
          (Hg.nets_of hg v)
    end
  done;
  (* guarantee progress even for oversized single nodes *)
  if !w = 0 then side.(start) <- true;
  side

(* FM cleanup between the freshly carved block [b] and the rest. *)
let refine_boundary hg assigned ~b ~s_max ~passes =
  if passes > 0 then begin
    let rest = b + 1 in
    let st =
      Partition.State.create hg ~k:(b + 2) ~assign:(fun v ->
          if assigned.(v) >= 0 then assigned.(v) else rest)
    in
    let limits =
      {
        Fm.lo0 = max 0 (s_max * 7 / 10);
        hi0 = s_max;
        lo1 = 0;
        hi1 = max_int / 2;
      }
    in
    ignore (Fm.refine st ~block0:b ~block1:rest ~limits ~max_passes:passes);
    Hg.iter_nodes
      (fun v ->
        if assigned.(v) = b || assigned.(v) < 0 then
          assigned.(v) <- (if Partition.State.block_of st v = b then b else -1))
      hg
  end

let partition hg device config =
  Obs.incr c_runs;
  let sp_run = Recorder.span_begin "fbb_mw.run" in
  let s_max = Device.s_max device ~delta:config.delta in
  let t_max = device.Device.t_max in
  let n = Hg.num_nodes hg in
  let assigned = Array.make n (-1) in
  let keep v = assigned.(v) < 0 in
  let rng = Rng.create config.rng_seed in
  let rest_feasible () =
    weight_where hg keep <= s_max && pins_of_set hg keep <= t_max
  in
  let remaining_nodes () =
    let out = ref [] in
    for v = n - 1 downto 0 do
      if keep v then out := v :: !out
    done;
    Array.of_list !out
  in
  let carve () =
    Obs.incr c_carves;
    (* try FBB with progressively tighter windows and fresh seeds *)
    let best : (bool array * int) option ref = ref None in
    let consider side =
      let pins = pins_of_set hg (fun v -> side.(v)) in
      (match !best with
      | Some (_, p) when p <= pins -> ()
      | _ -> best := Some (side, pins));
      pins <= t_max
    in
    let rem = remaining_nodes () in
    let attempt a =
      Obs.incr c_attempts;
      let hi =
        max 1 (int_of_float (float_of_int s_max *. (0.88 ** float_of_int a)))
      in
      let lo = max 1 (int_of_float (config.window *. float_of_int hi)) in
      let start = Rng.choose rng rem in
      let seed_s = far_node hg ~keep start in
      let seed_t = far_node hg ~keep seed_s in
      if seed_s = seed_t then None
      else Fbb.bipartition hg ~keep ~seed_s ~seed_t ~lo ~hi ~rng
    in
    let rec go a =
      if a > config.pin_retries then
        match !best with
        | Some (side, _) -> side
        | None ->
          Obs.incr c_greedy;
          let start = far_node hg ~keep rem.(0) in
          greedy_carve hg ~keep ~start ~hi:s_max
      else
        match attempt a with
        | Some r when consider r.Fbb.side -> r.Fbb.side
        | Some _ | None -> go (a + 1)
    in
    go 0
  in
  let b = ref 0 in
  let safety = (2 * Hg.total_size hg / max 1 s_max) + (2 * Hg.num_pads hg / max 1 t_max) + 8 in
  while (not (rest_feasible ())) && Array.length (remaining_nodes ()) > 1 && !b < safety do
    let side = carve () in
    let any = ref false in
    Array.iteri
      (fun v s ->
        if s && keep v then begin
          assigned.(v) <- !b;
          any := true
        end)
      side;
    if !any then begin
      refine_boundary hg assigned ~b:!b ~s_max ~passes:config.refine_passes;
      (* the refinement may empty the block; drop it if so *)
      let still = Array.exists (fun a -> a = !b) assigned in
      if still then incr b
      else ()
    end
    else begin
      (* give up carving: dump one remaining node to guarantee progress *)
      let rem = remaining_nodes () in
      assigned.(rem.(0)) <- !b;
      incr b
    end
  done;
  (* the rest becomes the final block *)
  let final = !b in
  Hg.iter_nodes (fun v -> if keep v then assigned.(v) <- final) hg;
  let k = final + 1 in
  let st = Partition.State.create hg ~k ~assign:(fun v -> assigned.(v)) in
  let feasible = ref true in
  for i = 0 to k - 1 do
    if
      Partition.State.size_of st i > s_max
      || Partition.State.pins_of st i > t_max
    then feasible := false
  done;
  Recorder.span_end sp_run
    ~attrs:[ ("k", Json.Int k); ("feasible", Json.Bool !feasible) ];
  { assignment = assigned; k; feasible = !feasible; cut = Partition.State.cut_size st }
