(* Flow-based boundary refinement between block pairs.

   For a pair of blocks adjacent in the quotient graph, extract the
   corridor of cells around their cut nets, convert it to a flow
   network (Flownet's clause expansion), and let a Dinic min-cut
   propose a bipartition of the corridor.  The proposal is applied
   only when the lexicographic solution value improves without
   increasing the global cut; otherwise the previous assignment is
   restored from a snapshot, so a refinement call can never make the
   partition worse. *)

module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Snapshot = Partition.Snapshot
module Quotient = Partition.Quotient
module Obs = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Json = Fpart_obs.Json

type config = {
  max_corridor : int;
  corridor_depth : int;
  max_passes : int;
}

let default_config = { max_corridor = 2048; corridor_depth = 3; max_passes = 4 }

type outcome =
  | Applied of { moves : int; cut_delta : int }
  | Restored
  | Skipped

type report = {
  pairs_tried : int;
  pairs_applied : int;
  moves_applied : int;
  passes_run : int;
}

let c_pairs = Obs.counter "flow.pairs"
let c_applied = Obs.counter "flow.applied"
let c_restored = Obs.counter "flow.restored"
let c_skipped = Obs.counter "flow.skipped"
let c_moves = Obs.counter "flow.moves"
let c_corridor = Obs.counter "flow.corridor_nodes"

(* Weight allowed to travel [src]→[dst] without leaving the feasible
   move region: [src] must keep at least [lower.(src)] and [dst] may
   hold at most [upper.(dst)].  An already-oversized destination (or a
   source at its floor) clamps to 0: nothing may enter, though the
   opposite direction stays open.  In particular a zero-headroom
   window — [upper.(dst)] equal to the current size — admits nothing,
   not even size-0 movers. *)
let headroom st ~lower ~upper ~src ~dst =
  let give = State.size_of st src - lower.(src) in
  let take = upper.(dst) - State.size_of st dst in
  max 0 (min give take)

type corridor = {
  nodes : Hg.node array;  (* members in admission order *)
  mem : bool array;       (* hypergraph node → member *)
}

(* Bounded BFS from the pair's cut nets.  Every admitted node stays
   within the side's headroom budget, so even the worst-case proposal
   (an entire side changing block) respects the feasible windows.
   Pads never enter a corridor: they are size-free but anchor the
   external I/O balance, which flow's cut objective does not model.
   Admission order is net-id then pin-array order — no randomness, so
   refinement is bit-identical across runs and worker pools. *)
let extract cfg st ~a ~b ~lower ~upper =
  let hg = State.hypergraph st in
  let n = Hg.num_nodes hg in
  let mem = Array.make n false in
  let cap_ab = headroom st ~lower ~upper ~src:a ~dst:b in
  let cap_ba = headroom st ~lower ~upper ~src:b ~dst:a in
  let w_a = ref 0 and w_b = ref 0 in
  let order = ref [] and count = ref 0 in
  let admit v =
    if mem.(v) || !count >= cfg.max_corridor || Hg.is_pad hg v then false
    else
      let blk = State.block_of st v in
      if blk <> a && blk <> b then false
      else begin
        let s = Hg.size hg v in
        let w, cap = if blk = a then (w_a, cap_ab) else (w_b, cap_ba) in
        if !w + s > cap then false
        else begin
          w := !w + s;
          mem.(v) <- true;
          order := v :: !order;
          incr count;
          true
        end
      end
  in
  let level = ref [] in
  Hg.iter_nets
    (fun e ->
      if State.net_count st e a > 0 && State.net_count st e b > 0 then
        Array.iter (fun v -> if admit v then level := v :: !level) (Hg.pins hg e))
    hg;
  let depth = ref 1 in
  while !depth < cfg.corridor_depth && !level <> [] do
    let frontier = List.rev !level in
    level := [];
    List.iter
      (fun v ->
        Array.iter
          (fun e ->
            Array.iter (fun u -> if admit u then level := u :: !level) (Hg.pins hg e))
          (Hg.nets_of hg v))
      frontier;
    incr depth
  done;
  { nodes = Array.of_list (List.rev !order); mem }

(* A corridor node still wired to its own block outside the corridor
   is a border node: pinning it to its side models the (uncut) nets
   that leave the corridor.  Pads are never corridor members, so a pad
   neighbour in the node's block also pins it. *)
let border st mem v =
  let hg = State.hypergraph st in
  let blk = State.block_of st v in
  Array.exists
    (fun e ->
      Array.exists
        (fun u -> (not mem.(u)) && State.block_of st u = blk)
        (Hg.pins hg e))
    (Hg.nets_of hg v)

let refine_pair cfg st ~a ~b ~lower ~upper ~eval =
  Obs.incr c_pairs;
  let telemetry = Obs.enabled () in
  let sp = Recorder.span_begin "flow.extract" in
  let cor = extract cfg st ~a ~b ~lower ~upper in
  let corridor_nodes = Array.length cor.nodes in
  Recorder.span_end sp
    ~attrs:[ ("a", Json.Int a); ("b", Json.Int b); ("nodes", Json.Int corridor_nodes) ];
  if corridor_nodes < 2 then begin
    Obs.incr c_skipped;
    Skipped
  end
  else begin
    Obs.add c_corridor corridor_nodes;
    let hg = State.hypergraph st in
    let net = Flownet.build hg ~keep:(fun v -> cor.mem.(v)) in
    Array.iter
      (fun v ->
        if border st cor.mem v then
          if State.block_of st v = a then Flownet.attach_source net v
          else Flownet.attach_sink net v)
      cor.nodes;
    let sp = Recorder.span_begin "flow.dinic" in
    let flow = Flownet.run net in
    Recorder.span_end sp
      ~attrs:[ ("a", Json.Int a); ("b", Json.Int b); ("flow", Json.Int flow) ];
    let side = Flownet.source_side net in
    let value_before = eval st in
    let cut_before = State.cut_size st in
    let snap = Snapshot.capture st ~value:value_before in
    let sp = Recorder.span_begin "flow.apply" in
    let moves = ref 0 in
    Array.iter
      (fun v ->
        let target = if side.(v) then a else b in
        if State.block_of st v <> target then begin
          State.move st v target;
          incr moves
        end)
      cor.nodes;
    let value_after = eval st in
    let cut_after = State.cut_size st in
    let cmp = Cost.compare_value value_after value_before in
    (* Accept only strict improvement that does not grow the cut: the
       lexicographic value does not contain the cut, so the explicit
       guard is what lets a hybrid schedule promise cut(hybrid) ≤
       cut(sanchis). *)
    let accept =
      !moves > 0
      && ((cmp < 0 && cut_after <= cut_before) || (cmp = 0 && cut_after < cut_before))
    in
    if not accept then Snapshot.restore snap st;
    Recorder.span_end sp
      ~attrs:
        [
          ("a", Json.Int a);
          ("b", Json.Int b);
          ("moves", Json.Int !moves);
          ("applied", Json.Bool accept);
        ];
    if telemetry then
      Recorder.event
        [
          ("type", Json.Str "flow_pair");
          ("a", Json.Int a);
          ("b", Json.Int b);
          ("corridor", Json.Int corridor_nodes);
          ("flow", Json.Int flow);
          ("moves", Json.Int !moves);
          ("applied", Json.Bool accept);
          ("cut_before", Json.Int cut_before);
          ("cut_after", Json.Int (if accept then cut_after else cut_before));
          ( "value_after",
            Cost.value_to_json (if accept then value_after else value_before) );
        ];
    if accept then begin
      Obs.incr c_applied;
      Obs.add c_moves !moves;
      Applied { moves = !moves; cut_delta = cut_before - cut_after }
    end
    else if !moves = 0 then begin
      Obs.incr c_skipped;
      Skipped
    end
    else begin
      Obs.incr c_restored;
      Restored
    end
  end

let refine_active cfg st ~active ~lower ~upper ~eval =
  let sp = Recorder.span_begin "flow.refine" in
  let tried = ref 0 and applied = ref 0 and moved = ref 0 in
  let passes = ref 0 in
  let continue_ = ref true in
  while !continue_ && !passes < cfg.max_passes do
    incr passes;
    let wires = Quotient.wire_matrix st in
    let improved = ref false in
    let na = Array.length active in
    for i = 0 to na - 1 do
      for j = i + 1 to na - 1 do
        let a = active.(i) and b = active.(j) in
        if a <> b && wires.(a).(b) > 0 then begin
          incr tried;
          match refine_pair cfg st ~a ~b ~lower ~upper ~eval with
          | Applied { moves; _ } ->
            improved := true;
            incr applied;
            moved := !moved + moves
          | Restored | Skipped -> ()
        end
      done
    done;
    continue_ := !improved
  done;
  let report =
    {
      pairs_tried = !tried;
      pairs_applied = !applied;
      moves_applied = !moved;
      passes_run = !passes;
    }
  in
  Recorder.span_end sp
    ~attrs:
      [
        ("pairs", Json.Int report.pairs_tried);
        ("applied", Json.Int report.pairs_applied);
        ("moves", Json.Int report.moves_applied);
        ("passes", Json.Int report.passes_run);
      ];
  report
