(** Flow-based boundary refinement (Heuer, Sanders & Schlag style).

    For a pair of blocks adjacent in the quotient graph, a bounded BFS
    from their cut nets extracts a {e corridor} of cells whose summed
    weight per side never exceeds the headroom the feasible move
    windows grant (so any corridor bipartition keeps both blocks
    inside their windows), a {!Flownet} min-cut proposes a new
    corridor split, and the proposal is kept only when the
    lexicographic {!Partition.Cost.value} improves without growing the
    global cut — otherwise a {!Partition.Snapshot} restores the
    previous assignment.

    The refiner is deterministic: corridor admission follows net-id
    and pin-array order and Dinic itself is seedless, so results are
    bit-identical across repeated runs and worker pools. *)

type config = {
  max_corridor : int;  (** Node cap on one corridor (both sides). *)
  corridor_depth : int;  (** BFS hops from the pair's cut nets. *)
  max_passes : int;  (** Pair sweeps per {!refine_active} call. *)
}

val default_config : config

type outcome =
  | Applied of { moves : int; cut_delta : int }
      (** The min-cut proposal improved the value; [cut_delta ≥ 0] is
          the cut reduction. *)
  | Restored  (** Proposal evaluated and rejected; state rolled back. *)
  | Skipped  (** No usable corridor (no cut nets, or headroom 0). *)

type report = {
  pairs_tried : int;
  pairs_applied : int;
  moves_applied : int;
  passes_run : int;
}

(** [refine_pair cfg st ~a ~b ~lower ~upper ~eval] runs one corridor
    min-cut between blocks [a] and [b].  [lower]/[upper] are the
    per-block size windows (see [Improve.windows]); [eval] must return
    the lexicographic value of [st] (trackers welcome — restores are
    plain assignments). *)
val refine_pair :
  config ->
  Partition.State.t ->
  a:int ->
  b:int ->
  lower:int array ->
  upper:int array ->
  eval:(Partition.State.t -> Partition.Cost.value) ->
  outcome

(** [refine_active cfg st ~active ~lower ~upper ~eval] sweeps every
    wired pair of [active] blocks (ascending index order), repeating
    up to [cfg.max_passes] times while some pair still improves. *)
val refine_active :
  config ->
  Partition.State.t ->
  active:int array ->
  lower:int array ->
  upper:int array ->
  eval:(Partition.State.t -> Partition.Cost.value) ->
  report
