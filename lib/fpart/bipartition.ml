module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost

type method_used = Used_seed_merge | Used_ratio_cut | Used_random

let method_name = function
  | Used_seed_merge -> "seed-merge"
  | Used_ratio_cut -> "ratio-cut"
  | Used_random -> "random"

let split ?(salt = 0) ?pool st ~p_block ~r_block ~params ~ctx ~step_k =
  if State.cells_of st r_block <> 0 then
    invalid_arg "Bipartition.split: r_block not empty";
  let hg = State.hypergraph st in
  (* Freeze the membership: both constructive methods and the candidate
     application must see the remainder as it is now. *)
  let frozen = Array.init (Hg.num_nodes hg) (fun v -> State.block_of st v = p_block) in
  let member v = frozen.(v) in
  let members = Hg.fold_nodes (fun acc v -> if member v then v :: acc else acc) [] hg in
  let apply p_side =
    List.iter
      (fun v -> State.move st v (if p_side.(v) then p_block else r_block))
      members
  in
  let evaluate () = Cost.evaluate params ctx st ~remainder:(Some r_block) ~step_k in
  (* The two constructive candidates only read [hg] and [frozen] (each
     builds its own scratch state), so the portfolio can evaluate them
     on two domains; the apply/compare below stays on the caller. *)
  let run_sm () =
    Seed_merge.split ~salt hg ~member ~s_max:ctx.Cost.s_max ~t_max:ctx.Cost.t_max
  and run_rc () =
    Ratio_cut.split hg ~member ~s_max:ctx.Cost.s_max ~t_max:ctx.Cost.t_max
  in
  let sm, rc =
    match pool with
    | Some pool when Fpart_exec.Pool.jobs pool > 1 ->
      Fpart_exec.Pool.both pool run_sm run_rc
    | _ -> (run_sm (), run_rc ())
  in
  apply sm.Seed_merge.p_side;
  match rc with
  | None -> Used_seed_merge
  | Some rc ->
    let v_sm = evaluate () in
    apply rc.Ratio_cut.p_side;
    let v_rc = evaluate () in
    if Cost.compare_value v_sm v_rc <= 0 then begin
      apply sm.Seed_merge.p_side;
      Used_seed_merge
    end
    else Used_ratio_cut

let random_split st ~p_block ~r_block ~s_max ~rng =
  let hg = State.hypergraph st in
  let members =
    Hg.fold_nodes
      (fun acc v -> if State.block_of st v = p_block then v :: acc else acc)
      [] hg
    |> Array.of_list
  in
  Prng.Splitmix.shuffle rng members;
  let size = ref 0 in
  Array.iter
    (fun v ->
      let s = Hg.size hg v in
      if !size + s <= s_max && (s > 0 || Prng.Splitmix.bool rng) then
        size := !size + s
        (* v stays in p_block *)
      else State.move st v r_block)
    members
