(** Initial partition creation: best of the two constructive methods
    (paper section 3.2).

    Runs {!Seed_merge} and {!Ratio_cut} on the remainder, materialises
    each candidate split in the partition state, evaluates both with the
    lexicographic cost of section 3.4, and keeps the better one.  The
    winning side that is meant to become a device goes to [p_block];
    everything else goes to [r_block] (the new remainder). *)

type method_used =
  | Used_seed_merge
  | Used_ratio_cut
  | Used_random

val method_name : method_used -> string

(** [split st ~p_block ~r_block ~params ~ctx ~step_k] splits the nodes
    currently in [p_block] (the old remainder) between [p_block] and
    [r_block].  [r_block] must be empty beforehand.

    With [?pool] (of > 1 jobs), the two constructive candidates are
    computed as a parallel portfolio on the pool; candidate application
    and comparison stay on the caller, so the chosen split is identical
    to the sequential one.
    @raise Invalid_argument if [r_block] is not empty. *)
val split :
  ?salt:int ->
  ?pool:Fpart_exec.Pool.t ->
  Partition.State.t ->
  p_block:int ->
  r_block:int ->
  params:Partition.Cost.params ->
  ctx:Partition.Cost.context ->
  step_k:int ->
  method_used

(** [random_split st ~p_block ~r_block ~s_max ~rng] assigns a uniformly
    random subset of the remainder of logic size ≤ [s_max] to
    [p_block] — the baseline the paper dismisses in section 3.2
    ("randomly created initial partition may lead to poor results");
    kept for the ablation that reproduces that observation. *)
val random_split :
  Partition.State.t ->
  p_block:int ->
  r_block:int ->
  s_max:int ->
  rng:Prng.Splitmix.t ->
  unit
