type refiner = Sanchis_refiner | Flow_refiner | Hybrid_refiner

let refiner_name = function
  | Sanchis_refiner -> "sanchis"
  | Flow_refiner -> "flow"
  | Hybrid_refiner -> "hybrid"

let refiner_of_string = function
  | "sanchis" -> Some Sanchis_refiner
  | "flow" -> Some Flow_refiner
  | "hybrid" -> Some Hybrid_refiner
  | _ -> None

type t = {
  delta : float option;
  sigma1 : float;
  sigma2 : float;
  n_small : int;
  cost : Partition.Cost.params;
  eps_max_multi : float;
  eps_max_two : float;
  eps_min_multi : float;
  eps_min_two : float;
  stack_depth : int;
  max_passes : int;
  gain_levels : int;
  bucket_discipline : Gainbucket.Bucket_array.discipline;
  scan_limit : int;
  gain_mode : Sanchis.gain_mode;
  gain_update : Sanchis.gain_update;
  drift_limit : int option;
  random_initial : bool;
  cluster_size : int option;
  refiner : refiner;
  seed : int;
  jobs : int;
  selfcheck : Fpart_check.Selfcheck.level;
}

let default =
  {
    delta = None;
    sigma1 = 0.5;
    sigma2 = 0.5;
    n_small = 15;
    cost = Partition.Cost.default_params;
    eps_max_multi = 1.05;
    eps_max_two = 1.05;
    eps_min_multi = 0.3;
    eps_min_two = 0.95;
    stack_depth = 4;
    max_passes = 8;
    gain_levels = 2;
    bucket_discipline = Gainbucket.Bucket_array.Lifo;
    scan_limit = 16;
    gain_mode = Sanchis.Cut_gain;
    gain_update = Sanchis.Delta;
    drift_limit = None;
    random_initial = false;
    cluster_size = None;
    refiner = Sanchis_refiner;
    seed = 0x5eed;
    jobs = 1;
    selfcheck = Fpart_check.Selfcheck.Off;
  }

let delta_for t device =
  match t.delta with Some d -> d | None -> Device.paper_delta device

let engine t =
  {
    Sanchis.gain_levels = t.gain_levels;
    scan_limit = t.scan_limit;
    max_passes = t.max_passes;
    stack_depth = t.stack_depth;
    gain_mode = t.gain_mode;
    gain_update = t.gain_update;
    drift_limit = t.drift_limit;
    bucket_discipline = t.bucket_discipline;
    tie_salt = t.seed land 0xFFFF;
    on_move = None;
    on_gain_update = None;
  }

let free_space t ~s_max ~t_max ~size ~pins =
  (t.sigma1 *. (float_of_int (s_max - size) /. float_of_int s_max))
  +. (t.sigma2 *. (float_of_int (t_max - pins) /. float_of_int t_max))

(* Canonical configuration digest: every field that can change the
   partitioning result, rendered to a fixed textual form and hashed.
   This is the producer behind the [config_digest] field of run-ledger
   entries; [?extra] lets a caller fold in knobs living outside this
   record (CLI algorithm/engine selection, run counts). *)
let digest ?(extra = "") t =
  let b = Buffer.create 256 in
  let f name v = Buffer.add_string b (Printf.sprintf "%s=%.9g;" name v) in
  let i name v = Buffer.add_string b (Printf.sprintf "%s=%d;" name v) in
  let s name v = Buffer.add_string b (Printf.sprintf "%s=%s;" name v) in
  s "schema" "fpart-config/1";
  (match t.delta with Some d -> f "delta" d | None -> s "delta" "paper");
  f "sigma1" t.sigma1;
  f "sigma2" t.sigma2;
  i "n_small" t.n_small;
  f "lambda_s" t.cost.Partition.Cost.lambda_s;
  f "lambda_t" t.cost.Partition.Cost.lambda_t;
  f "lambda_r" t.cost.Partition.Cost.lambda_r;
  f "lambda_f" t.cost.Partition.Cost.lambda_f;
  f "eps_max_multi" t.eps_max_multi;
  f "eps_max_two" t.eps_max_two;
  f "eps_min_multi" t.eps_min_multi;
  f "eps_min_two" t.eps_min_two;
  i "stack_depth" t.stack_depth;
  i "max_passes" t.max_passes;
  i "gain_levels" t.gain_levels;
  s "bucket"
    (match t.bucket_discipline with
    | Gainbucket.Bucket_array.Lifo -> "lifo"
    | Gainbucket.Bucket_array.Fifo -> "fifo");
  i "scan_limit" t.scan_limit;
  s "gain_mode"
    (match t.gain_mode with Sanchis.Cut_gain -> "cut" | Sanchis.Pin_gain -> "pin");
  s "gain_update"
    (match t.gain_update with Sanchis.Delta -> "delta" | Sanchis.Recompute -> "recompute");
  (match t.drift_limit with Some d -> i "drift_limit" d | None -> s "drift_limit" "off");
  s "random_initial" (string_of_bool t.random_initial);
  (match t.cluster_size with Some c -> i "cluster" c | None -> s "cluster" "off");
  s "refiner" (refiner_name t.refiner);
  i "seed" t.seed;
  if extra <> "" then s "extra" extra;
  (* jobs and selfcheck deliberately excluded: both are documented to
     never change the produced partition, so two runs differing only
     there are the same workload to the trend analysis. *)
  Digest.to_hex (Digest.string (Buffer.contents b))
