(** FPART algorithm parameters.

    All knobs of the paper with their published values as defaults
    (section 4: "All the results of the FPART algorithm were obtained
    with the following fixed values...").

    A note on the move-region coefficients: the paper's text writes the
    feasible move region as [S_MAX·(1-ε_min) ≤ S_i ≤ S_MAX·(1+ε_max)]
    but then reports [ε²_min = 0.95] as {e more strict} than
    [ε*_min = 0.3], which only reads consistently when the coefficients
    multiply [S_MAX] directly (lower bound [ε_min·S_MAX], upper bound
    [ε_max·S_MAX]).  We implement the direct-multiplier reading: a
    two-block pass forbids shrinking a non-remainder block below
    [0.95·S_MAX] (so clusters cannot drain back into the remainder),
    a multi-block pass allows shrinking to [0.3·S_MAX], and both allow
    growing to [1.05·S_MAX] while the device lower bound has not been
    reached. *)

(** Which improvement backend the driver's [Improve()] calls and the
    post-projection refinement use:

    - [Sanchis_refiner] — the paper's gain-bucket passes (default);
    - [Flow_refiner] — corridor max-flow min-cut refinement
      ({!Flow.Refine}) between quotient-adjacent block pairs;
    - [Hybrid_refiner] — Sanchis passes first, then flow passes when
      the Sanchis pass retained zero moves (the stall signal).

    All three respect the same feasible move windows; flow proposals
    additionally apply only when they improve the lexicographic value
    without growing the cut.  See docs/FLOW_REFINEMENT.md. *)
type refiner = Sanchis_refiner | Flow_refiner | Hybrid_refiner

(** CLI-facing names: ["sanchis"], ["flow"], ["hybrid"]. *)
val refiner_name : refiner -> string

val refiner_of_string : string -> refiner option

type t = {
  delta : float option;
      (** Filling ratio; [None] uses {!Device.paper_delta}. *)
  sigma1 : float;  (** Size weight in the free-space estimate (0.5). *)
  sigma2 : float;  (** Pin weight in the free-space estimate (0.5). *)
  n_small : int;   (** Threshold [N_small] between strategies (15). *)
  cost : Partition.Cost.params;  (** λ^S, λ^T, λ^R. *)
  eps_max_multi : float;  (** [ε*_max] = 1.05. *)
  eps_max_two : float;    (** [ε²_max] = 1.05. *)
  eps_min_multi : float;  (** [ε*_min] = 0.3. *)
  eps_min_two : float;    (** [ε²_min] = 0.95. *)
  stack_depth : int;      (** [D_stack] = 4. *)
  max_passes : int;       (** Pass budget per improvement execution. *)
  gain_levels : int;      (** Lookahead gain depth (section 3.7); 2 = published. *)
  bucket_discipline : Gainbucket.Bucket_array.discipline;
      (** LIFO (published default) or FIFO gain buckets (section 1). *)
  scan_limit : int;       (** Tie-break scan bound per bucket. *)
  gain_mode : Sanchis.gain_mode;
      (** Primary gain: published [Cut_gain], or the future-work
          [Pin_gain] (section 5). *)
  gain_update : Sanchis.gain_update;
      (** Neighbour-gain maintenance inside the engine: [Delta]
          (default, incremental critical-net updates) or [Recompute]
          (the escape hatch that recomputes every neighbour gain from
          scratch).  Both produce bit-identical partitions — see
          docs/PERFORMANCE.md. *)
  drift_limit : int option;
      (** Future-work early pass abort (section 5); [None] = published
          behaviour. *)
  random_initial : bool;
      (** Replace the constructive initial bipartition of section 3.2
          with a uniformly random one — the baseline the paper dismisses;
          kept for the ablation reproducing that observation.  Default
          [false]. *)
  cluster_size : int option;
      (** Clustering pre-pass (one of the classical FM parameters of the
          paper's section 1): [Some n] coarsens the circuit into
          connectivity clusters of logic size ≤ n, partitions the coarse
          hypergraph, projects back and refines flat.  [None]
          (published behaviour) partitions the flat netlist. *)
  refiner : refiner;
      (** Improvement backend: Sanchis gain buckets (published),
          corridor max-flow, or the hybrid escalation.  Default
          [Sanchis_refiner]. *)
  seed : int;             (** PRNG seed for deterministic tie-breaks. *)
  jobs : int;
      (** Domain budget for the execution layer ([Fpart_exec]): the
          multi-start runs of {!Driver.run_best}, the initial-bipartition
          portfolio and {!Driver.run_batch} fan out over this many
          domains.  [1] (default) is the exact sequential path.  Results
          are bit-identical for every value — see docs/PARALLELISM.md. *)
  selfcheck : Fpart_check.Selfcheck.level;
      (** Runtime validation of the incremental state against the
          reference oracle ({!Fpart_check.Selfcheck}): [Off] (default),
          [Cheap] (pass boundaries), [Paranoid] (every applied move).
          Violations are counted and reported through [Fpart_obs], never
          abort the run.  See docs/TESTING.md. *)
}

(** The paper's published parameter set. *)
val default : t

(** [delta_for t device] resolves the filling ratio. *)
val delta_for : t -> Device.t -> float

(** [engine t] derives the Sanchis engine configuration. *)
val engine : t -> Sanchis.config

(** [free_space t ~s_max ~t_max ~size ~pins] is the free-space estimate
    [F = σ1·(S_MAX-S_i)/S_MAX + σ2·(T_MAX-|Y_i|)/T_MAX] used to pick
    [P_MIN_F] (section 3.1). *)
val free_space : t -> s_max:int -> t_max:int -> size:int -> pins:int -> float

(** [digest ?extra t] is a hex digest of the canonical rendering of
    every result-relevant field ([jobs] and [selfcheck] are excluded —
    both are documented never to change the produced partition).
    [?extra] folds caller-side knobs (CLI algorithm/engine, run counts)
    into the same digest.  This is the producer behind the
    [config_digest] field of run-ledger entries. *)
val digest : ?extra:string -> t -> string
