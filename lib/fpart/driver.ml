module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Obs = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Json = Fpart_obs.Json

let c_runs = Obs.counter "driver.runs"
let c_iterations = Obs.counter "driver.iterations"

type result = {
  k : int;
  assignment : int array;
  feasible : bool;
  iterations : int;
  cut : int;
  total_pins : int;
  m_lower : int;
  delta : float;
  cpu_seconds : float;
  trace : Trace.event list;
}

let swap_labels assign a b =
  Array.iteri
    (fun v blk -> if blk = a then assign.(v) <- b else if blk = b then assign.(v) <- a)
    assign

let run_flat ?pool config hg device =
  let t0 = Sys.time () in
  Obs.incr c_runs;
  let sp_run = Recorder.span_begin "driver.run" in
  let rng = Prng.Splitmix.create config.Config.seed in
  let delta = Config.delta_for config device in
  let ctx = Cost.context_of device ~delta hg in
  let m = ctx.Cost.m_lower in
  let trace = Trace.create () in
  let imp = { Improve.cfg = config; params = config.Config.cost; ctx; trace } in
  let n = Hg.num_nodes hg in
  let assign = Array.make n 0 in
  let finish ~k ~feasible ~iterations =
    let st = State.create hg ~k ~assign:(fun v -> assign.(v)) in
    if
      Fpart_check.Selfcheck.at_least config.Config.selfcheck
        Fpart_check.Selfcheck.Cheap
    then ignore (Fpart_check.Selfcheck.validate ~where:"driver.final" st);
    Trace.record trace (Trace.Done { iterations; k; feasible });
    Recorder.span_end sp_run
      ~attrs:
        [
          ("k", Json.Int k);
          ("feasible", Json.Bool feasible);
          ("iterations", Json.Int iterations);
          ("m_lower", Json.Int m);
        ];
    {
      k;
      assignment = Array.copy assign;
      feasible;
      iterations;
      cut = State.cut_size st;
      total_pins = State.total_pins st;
      m_lower = m;
      delta;
      cpu_seconds = Sys.time () -. t0;
      trace = Trace.events trace;
    }
  in
  (* trivial case: the whole circuit fits one device *)
  let whole = State.create hg ~k:1 ~assign:(fun _ -> 0) in
  if Cost.classify ctx whole = Cost.Feasible then finish ~k:1 ~feasible:true ~iterations:0
  else begin
    let max_iterations = max ((3 * m) + 12) 16 in
    let rec iterate j =
      (* invariant: blocks 0..j-1 committed, remainder at index j *)
      let iteration = j + 1 in
      if iteration > max_iterations then finish ~k:(j + 1) ~feasible:false ~iterations:j
      else begin
        let st = State.create hg ~k:(j + 2) ~assign:(fun v -> assign.(v)) in
        let r = j + 1 in
        if State.cells_of st j < 2 then
          (* unsplittable remainder *)
          finish ~k:(j + 1) ~feasible:false ~iterations:j
        else begin
          Obs.incr c_iterations;
          let sp_it = Recorder.span_begin "driver.iteration" in
          let method_used =
            if config.Config.random_initial then begin
              Bipartition.random_split st ~p_block:j ~r_block:r
                ~s_max:ctx.Cost.s_max ~rng;
              Bipartition.Used_random
            end
            else
              Bipartition.split
                ~salt:(config.Config.seed land 0xFFFF)
                ?pool st ~p_block:j ~r_block:r ~params:config.Config.cost ~ctx
                ~step_k:iteration
          in
          Trace.record trace
            (Trace.Bipartition
               {
                 iteration;
                 p_block = j;
                 r_block = r;
                 method_used = Bipartition.method_name method_used;
               });
          Obs.incr
            (Obs.counter ("driver.method." ^ Bipartition.method_name method_used));
          let blocks_now = j + 2 in
          let allow_violation = blocks_now < m in
          (* improvement schedule of section 3.1 *)
          Improve.pair imp st ~iteration ~remainder:r ~other:j ~allow_violation
            ~kind:Trace.Pair_latest;
          if m <= config.Config.n_small then
            Improve.all_blocks imp st ~iteration ~remainder:r ~allow_violation;
          let pair_with kind = function
            | Some b ->
              Improve.pair imp st ~iteration ~remainder:r ~other:b ~allow_violation ~kind
            | None -> ()
          in
          pair_with Trace.Min_size (Schedule.min_size_block st ~except:r);
          pair_with Trace.Min_io (Schedule.min_io_block st ~except:r);
          pair_with Trace.Max_free
            (Schedule.max_free_block config st ~except:r ~s_max:ctx.Cost.s_max
               ~t_max:ctx.Cost.t_max);
          if blocks_now = m && m <= config.Config.n_small then
            for i = 0 to j do
              Improve.pair imp st ~iteration ~remainder:r ~other:i ~allow_violation
                ~kind:Trace.Final_pairs
            done;
          Array.blit (State.assignment st) 0 assign 0 n;
          Trace.record trace
            (Trace.Committed
               {
                 iteration;
                 block = j;
                 size = State.size_of st j;
                 pins = State.pins_of st j;
               });
          Recorder.span_end sp_it
            ~attrs:
              [
                ("iteration", Json.Int iteration);
                ("method", Json.Str (Bipartition.method_name method_used));
                ("blocks", Json.Int blocks_now);
              ];
          match Cost.classify ctx st with
          | Cost.Feasible -> finish ~k:blocks_now ~feasible:true ~iterations:iteration
          | Cost.Semi_feasible b ->
            if b <> r then swap_labels assign b r;
            iterate (j + 1)
          | Cost.Infeasible bad ->
            (* keep an infeasible block in the remainder slot *)
            if not (List.mem r bad) then
              (match bad with b :: _ -> swap_labels assign b r | [] -> ());
            iterate (j + 1)
        end
      end
    in
    iterate 0
  end

(* Flat refinement after projecting a coarse partition: one multi-block
   pass when k is small, otherwise a ring of pairwise passes.  Windows
   are strict (no size violations) so feasibility can only improve. *)
let refine_flat config ctx st =
  let k = State.k st in
  if k < 2 then ()
  else begin
  let lower = Array.make k 0 and upper = Array.make k ctx.Cost.s_max in
  let eval st = Cost.evaluate config.Config.cost ctx st ~remainder:None ~step_k:k in
  let engine =
    let e = Config.engine config in
    if Fpart_check.Selfcheck.at_least config.Config.selfcheck Fpart_check.Selfcheck.Paranoid
    then
      {
        e with
        Sanchis.on_move =
          Some
            (fun st ->
              ignore (Fpart_check.Selfcheck.validate ~where:"sanchis.move" st));
      }
    else e
  in
  let boundary st =
    if Fpart_check.Selfcheck.at_least config.Config.selfcheck Fpart_check.Selfcheck.Cheap
    then ignore (Fpart_check.Selfcheck.validate ~where:"driver.refine" st)
  in
  let flow_cfg =
    { Flow.Refine.default_config with max_passes = min 4 config.Config.max_passes }
  in
  let flow_all () =
    ignore
      (Flow.Refine.refine_active flow_cfg st ~active:(Array.init k Fun.id) ~lower
         ~upper ~eval);
    boundary st
  in
  match config.Config.refiner with
  | Config.Flow_refiner -> flow_all ()
  | (Config.Sanchis_refiner | Config.Hybrid_refiner) as refiner ->
    let retained = ref 0 in
    if k <= 18 then begin
      let report =
        Sanchis.improve st
          ~spec:{ Sanchis.active = Array.init k Fun.id; remainder = None; lower; upper }
          ~config:engine ~eval
      in
      retained := report.Sanchis.moves_retained;
      boundary st
    end
    else begin
      for i = 0 to k - 1 do
        let j = (i + 1) mod k in
        let report =
          Sanchis.improve st
            ~spec:{ Sanchis.active = [| i; j |]; remainder = None; lower; upper }
            ~config:engine ~eval
        in
        retained := !retained + report.Sanchis.moves_retained;
        boundary st
      done
    end;
    (* The hybrid adds a flow sweep after the Sanchis schedule has run
       in full (never interleaved), so its cut can only match or beat
       the pure Sanchis refinement of the same state. *)
    if refiner = Config.Hybrid_refiner && !retained = 0 then flow_all ()
  end

let refine = refine_flat

let run_clustered ?pool config hg device ~max_cluster_size =
  let t0 = Sys.time () in
  let cl = Cluster.build hg ~max_cluster_size ~seed:config.Config.seed in
  let coarse_config = { config with Config.cluster_size = None } in
  let coarse = run_flat ?pool coarse_config (Cluster.coarse cl) device in
  let assign = Cluster.project cl coarse.assignment in
  let st = State.create hg ~k:coarse.k ~assign:(fun v -> assign.(v)) in
  let delta = Config.delta_for config device in
  let ctx = Cost.context_of device ~delta hg in
  let sp = Recorder.span_begin "driver.refine" in
  refine_flat config ctx st;
  Recorder.span_end sp ~attrs:[ ("k", Json.Int coarse.k) ];
  let feasible = Cost.classify ctx st = Cost.Feasible in
  {
    coarse with
    assignment = State.assignment st;
    feasible;
    cut = State.cut_size st;
    total_pins = State.total_pins st;
    cpu_seconds = Sys.time () -. t0;
  }

let run ?(config = Config.default) ?pool hg device =
  match config.Config.cluster_size with
  | Some cs when cs > 1 -> run_clustered ?pool config hg device ~max_cluster_size:cs
  | Some _ | None -> run_flat ?pool config hg device

let better a b =
  (* fewest devices; then feasibility; then cut; then pins *)
  if a.feasible <> b.feasible then a.feasible
  else if a.k <> b.k then a.k < b.k
  else if a.cut <> b.cut then a.cut < b.cut
  else a.total_pins < b.total_pins

(* First strictly-better result wins, scanning in run order — the same
   tie-break the sequential loop applies. *)
let pick_best_opt results =
  Array.fold_left
    (fun best r ->
      match best with Some b when not (better r b) -> best | _ -> Some r)
    None results

let pick_best results =
  match pick_best_opt results with
  | Some r -> r
  | None -> invalid_arg "Driver.pick_best: no results"

let run_config config i = { config with Config.seed = config.Config.seed + i }

let run_best ?(config = Config.default) ?jobs ~runs hg device =
  if runs < 1 then invalid_arg "Driver.run_best: runs < 1";
  let jobs = match jobs with Some j -> j | None -> config.Config.jobs in
  if jobs < 1 then invalid_arg "Driver.run_best: jobs < 1";
  let t0 = Sys.time () in
  let r =
    if jobs = 1 then
      pick_best (Array.init runs (fun i -> run ~config:(run_config config i) hg device))
    else
      Fpart_exec.Pool.with_pool ~jobs (fun pool ->
          if runs = 1 then
            (* nothing to multi-start: spend the domains inside the run,
               on the initial-bipartition portfolio *)
            run ~config ~pool hg device
          else
            pick_best
              (Fpart_exec.Pool.map pool
                 (fun i () -> run ~config:(run_config config i) hg device)
                 (Array.make runs ())))
  in
  { r with cpu_seconds = Sys.time () -. t0 }

let run_batch ?(config = Config.default) ?jobs ?timeout_s jobs_list =
  let jobs = match jobs with Some j -> j | None -> config.Config.jobs in
  if jobs < 1 then invalid_arg "Driver.run_batch: jobs < 1";
  Fpart_exec.Pool.with_pool ~jobs (fun pool ->
      Fpart_exec.Batch.run ?timeout_s ~pool
        ~f:(fun (hg, device) -> run ~config hg device)
        jobs_list)

(* Multi-start with per-run isolation: every seed runs as its own Batch
   job, so one crashing or overrunning start yields an [Error] slot
   instead of killing the whole fan-out.  Unlike {!run_best} — which
   re-raises because losing one seed invalidates the "best of N"
   contract for callers that asked for exactly that — this variant is
   for long-running callers (the partition service) that must survive a
   poisoned request: the empty-result case comes back as a typed
   [Error] listing the per-run failures, never an exception. *)
let run_best_isolated ?(config = Config.default) ?jobs ?timeout_s ?run_one
    ?pool ~runs hg device =
  if runs < 1 then invalid_arg "Driver.run_best_isolated: runs < 1";
  let one =
    match run_one with
    | Some f -> f
    | None -> fun config hg device -> run ~config hg device
  in
  let t0 = Sys.time () in
  let f i = one (run_config config i) hg device in
  let slots =
    match pool with
    | Some pool ->
      Fpart_exec.Batch.run ?timeout_s ~pool ~f (List.init runs Fun.id)
    | None ->
      let jobs = match jobs with Some j -> j | None -> config.Config.jobs in
      if jobs < 1 then invalid_arg "Driver.run_best_isolated: jobs < 1";
      Fpart_exec.Pool.with_pool ~jobs (fun pool ->
          Fpart_exec.Batch.run ?timeout_s ~pool ~f (List.init runs Fun.id))
  in
  let ok = List.filter_map Result.to_option slots in
  match pick_best_opt (Array.of_list ok) with
  | Some r -> Ok { r with cpu_seconds = Sys.time () -. t0 }
  | None ->
    let reasons =
      List.mapi
        (fun i -> function
          | Ok _ -> None
          | Error e ->
            Some (Printf.sprintf "run %d: %s" i (Fpart_exec.Batch.error_to_string e)))
        slots
      |> List.filter_map Fun.id
    in
    Error
      (Printf.sprintf "all %d run(s) failed (%s)" runs
         (String.concat "; " reasons))

let final_state r hg =
  State.create hg ~k:r.k ~assign:(fun v -> r.assignment.(v))
