(** FPART — Algorithm 1 of the paper.

    Recursive multi-way partitioning: each iteration bipartitions the
    remainder with the best of two constructive methods, then runs the
    improvement schedule of section 3.1 (pair pass on the lately created
    blocks; all-blocks pass when [M ≤ N_small]; pair passes against the
    min-size, min-I/O and max-free-space committed blocks; pairwise
    passes against every committed block once the partition reaches the
    theoretical minimum [M]).  Iterations stop when every block meets
    the device constraints.

    A robustness addition over the paper's pseudocode: when an
    improvement pass trades feasibility between blocks (the remainder
    becomes feasible while a committed block goes infeasible), the two
    blocks swap labels so the violating block keeps the remainder role
    — the invariant "only the last block may violate constraints" is
    restored instead of looping. *)

type result = {
  k : int;                 (** Number of devices produced. *)
  assignment : int array;  (** node → block, blocks [0 .. k-1]. *)
  feasible : bool;         (** Every block meets the constraints. *)
  iterations : int;        (** Bipartition iterations executed. *)
  cut : int;               (** Cut nets in the final partition. *)
  total_pins : int;        (** [T_SUM] of the final partition. *)
  m_lower : int;           (** Lower bound [M] for this problem. *)
  delta : float;           (** Filling ratio used. *)
  cpu_seconds : float;     (** Processor time consumed. *)
  trace : Trace.event list;  (** Full improvement schedule (Figure 1). *)
}

(** [run ?config ?pool h device] partitions circuit [h] onto copies of
    [device].  Deterministic for a given [config.seed]; [?pool] only
    adds parallelism inside the run (the initial-bipartition portfolio)
    and never changes the result. *)
val run :
  ?config:Config.t ->
  ?pool:Fpart_exec.Pool.t ->
  Hypergraph.Hgraph.t ->
  Device.t ->
  result

(** [run_best ?config ?jobs ~runs h device] runs FPART [runs] times with
    seeds [config.seed, config.seed+1, ...] and returns the best result
    (fewest devices; ties broken by cut, then total pins).  "Number of
    runs" is one of the classical FM parameters the paper's introduction
    lists.

    [?jobs] (default [config.jobs]) fans the runs out over a domain pool;
    the reduction applies the lexicographic comparison in run order, so
    the returned solution is bit-identical for every [jobs] (only
    [cpu_seconds] varies).  With [runs = 1] the domains are spent inside
    the single run instead (initial-bipartition portfolio).
    @raise Invalid_argument if [runs < 1] or [jobs < 1]. *)
val run_best :
  ?config:Config.t ->
  ?jobs:int ->
  runs:int ->
  Hypergraph.Hgraph.t ->
  Device.t ->
  result

(** [run_batch ?config ?jobs ?timeout_s jobs_list] partitions a list of
    [(circuit, device)] jobs in parallel on a fresh pool of [jobs]
    domains (default [config.jobs]), with {!Fpart_exec.Batch} isolation:
    a crashing or overrunning job yields an [Error] slot and never kills
    the batch.  Results come back in job order.
    @raise Invalid_argument if [jobs < 1]. *)
val run_batch :
  ?config:Config.t ->
  ?jobs:int ->
  ?timeout_s:float ->
  (Hypergraph.Hgraph.t * Device.t) list ->
  (result, Fpart_exec.Batch.error) Stdlib.result list

(** [pick_best_opt results] reduces a fan-out with the lexicographic
    comparison of {!run_best} (fewest devices, then feasibility, cut,
    total pins), scanning in run order; [None] on an empty array.  Use
    this — not the raising fold — when the array is the surviving
    slice of an isolated batch and may legitimately be empty. *)
val pick_best_opt : result array -> result option

(** [run_best_isolated ?config ?jobs ?timeout_s ?run_one ?pool ~runs h
    device] is {!run_best} with {!Fpart_exec.Batch} isolation per seed:
    a crashing or overrunning start loses only its own slot.  When every
    start fails, the outcome is [Error msg] (one line per failed run) —
    a typed answer a serving loop can report per-request instead of
    dying.  [?run_one] substitutes the per-seed runner (fault injection
    in tests and the service's crash hook); [?pool] reuses a caller's
    domain pool instead of creating one per call. *)
val run_best_isolated :
  ?config:Config.t ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?run_one:(Config.t -> Hypergraph.Hgraph.t -> Device.t -> result) ->
  ?pool:Fpart_exec.Pool.t ->
  runs:int ->
  Hypergraph.Hgraph.t ->
  Device.t ->
  (result, string) Stdlib.result

(** [final_state r h] rebuilds the partition state of a result (for
    reporting: per-block sizes and pins). *)
val final_state : result -> Hypergraph.Hgraph.t -> Partition.State.t

(** [refine config ctx st] is the flat refinement pass applied after
    projecting a coarse partition onto a finer graph: one multi-block
    Sanchis pass when [k ≤ 18], otherwise a ring of pairwise passes.
    Move windows are strict ([0 .. S_MAX], no remainder), so sizes stay
    within the device and — because the engine rewinds each pass to its
    best prefix — the lexicographic solution value never worsens.  Pass
    intensity follows [config.max_passes]; the multilevel engine calls
    this at every uncoarsening level with its own bound. *)
val refine : Config.t -> Partition.Cost.context -> Partition.State.t -> unit
