module State = Partition.State
module Cost = Partition.Cost

type t = {
  cfg : Config.t;
  params : Cost.params;
  ctx : Cost.context;
  trace : Trace.t;
}

(* Move-region bounds (section 3.5).  The lower bound rounds down and
   the upper bound rounds up, so the window always contains the real
   interval [ε_min·S_MAX, ε_max·S_MAX]: truncating the upper bound
   (the historical [int_of_float] behaviour) forbade block sizes the
   paper's region admits whenever ε_max·S_MAX is fractional. *)
let scale_lower s_max eps = int_of_float (Float.floor (eps *. float_of_int s_max))
let scale_upper s_max eps = int_of_float (Float.ceil (eps *. float_of_int s_max))

let windows t st ~remainder ~allow_violation ~two_block =
  let k = State.k st in
  let s_max = t.ctx.Cost.s_max in
  let eps_min = if two_block then t.cfg.Config.eps_min_two else t.cfg.Config.eps_min_multi in
  let eps_max = if two_block then t.cfg.Config.eps_max_two else t.cfg.Config.eps_max_multi in
  let lower = Array.make k 0 in
  let upper = Array.make k max_int in
  for b = 0 to k - 1 do
    if b <> remainder then begin
      lower.(b) <- scale_lower s_max eps_min;
      upper.(b) <- (if allow_violation then scale_upper s_max eps_max else s_max)
    end
  done;
  (lower, upper)

module Obs = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Json = Fpart_obs.Json
module Selfcheck = Fpart_check.Selfcheck

(* Self-check wiring: paranoid installs a per-move state validator into
   the engine and, when the delta-gain engine is active, a per-update
   gain validator that cross-checks every delta-adjusted bucket gain
   against the oracle; cheap (and up) validates the state once per
   Improve() call. *)
let engine_config t =
  let cfg = Config.engine t.cfg in
  if Selfcheck.at_least t.cfg.Config.selfcheck Selfcheck.Paranoid then
    {
      cfg with
      Sanchis.on_move =
        Some (fun st -> ignore (Selfcheck.validate ~where:"sanchis.move" st));
      on_gain_update =
        (match t.cfg.Config.gain_update with
        | Sanchis.Recompute -> None
        | Sanchis.Delta ->
          let pin = t.cfg.Config.gain_mode = Sanchis.Pin_gain in
          Some
            (fun st ~cell ~target ~gain ->
              ignore
                (Selfcheck.validate_gain ~where:"sanchis.gain" st ~pin ~cell
                   ~target ~gain)));
    }
  else cfg

(* Flow refinement budget: corridor sweeps share the configured pass
   budget but are clamped — each sweep re-runs Dinic on every wired
   pair, so a handful already reaches the fixed point. *)
let flow_config t =
  { Flow.Refine.default_config with max_passes = min 4 t.cfg.Config.max_passes }

let run t st ~iteration ~remainder ~active ~allow_violation ~two_block ~kind =
  let lower, upper = windows t st ~remainder ~allow_violation ~two_block in
  let spec = { Sanchis.active; remainder = Some remainder; lower; upper } in
  (* Per-move evaluation goes through a dirty-block tracker: only the
     two blocks a move touches are re-derived, and the result is
     bit-identical to a fresh [Cost.evaluate] (rewinds and snapshot
     restores are caught by the tracker's self-contained dirty test). *)
  let tracker =
    Cost.tracker t.params t.ctx st ~remainder:(Some remainder) ~step_k:iteration
  in
  let eval st = Cost.tracked_evaluate tracker st in
  let telemetry = Obs.enabled () in
  let cut_before = if telemetry then State.cut_size st else 0 in
  let value_before = if telemetry then Some (eval st) else None in
  (* The recorder span parents this Improve() call's [pass] records
     (Sanchis emits them under the open span) and its own [schedule]
     record below. *)
  let sp = Recorder.span_begin "improve.pass" in
  let refiner = t.cfg.Config.refiner in
  let report =
    match refiner with
    | Config.Flow_refiner -> None
    | Config.Sanchis_refiner | Config.Hybrid_refiner ->
      Some (Sanchis.improve st ~spec ~config:(engine_config t) ~eval)
  in
  (* The hybrid escalates to flow exactly when Sanchis stalled: a pass
     that retained zero moves means the gain buckets see no profitable
     trajectory, which is the situation corridor min-cuts unblock. *)
  let flow_report =
    match refiner with
    | Config.Sanchis_refiner -> None
    | Config.Flow_refiner ->
      Some (Flow.Refine.refine_active (flow_config t) st ~active ~lower ~upper ~eval)
    | Config.Hybrid_refiner ->
      (match report with
      | Some r when r.Sanchis.moves_retained = 0 ->
        Some (Flow.Refine.refine_active (flow_config t) st ~active ~lower ~upper ~eval)
      | _ -> None)
  in
  if Selfcheck.at_least t.cfg.Config.selfcheck Selfcheck.Cheap then
    ignore (Selfcheck.validate ~where:"improve.boundary" st);
  (* After a Sanchis run the state sits at the retained best, so a
     fresh tracked evaluation reproduces [report.best] bit-identically;
     after a flow run it reflects the applied corridor cuts. *)
  let value_after = eval st in
  let passes =
    (match report with Some r -> r.Sanchis.passes_run | None -> 0)
    + match flow_report with Some f -> f.Flow.Refine.passes_run | None -> 0
  in
  let moves =
    (match report with Some r -> r.Sanchis.moves_applied | None -> 0)
    + match flow_report with Some f -> f.Flow.Refine.moves_applied | None -> 0
  in
  let moves_retained =
    (match report with Some r -> r.Sanchis.moves_retained | None -> 0)
    + match flow_report with Some f -> f.Flow.Refine.moves_applied | None -> 0
  in
  let restarts = match report with Some r -> r.Sanchis.restarts | None -> 0 in
  let flow_attrs =
    match flow_report with
    | None -> []
    | Some f ->
      [
        ("flow_pairs", Json.Int f.Flow.Refine.pairs_tried);
        ("flow_applied", Json.Int f.Flow.Refine.pairs_applied);
        ("flow_moves", Json.Int f.Flow.Refine.moves_applied);
      ]
  in
  if telemetry then
    Recorder.event
      ([
         ("type", Json.Str "schedule");
         ("iteration", Json.Int iteration);
         ("step", Json.Str (Trace.kind_name kind));
         ("refiner", Json.Str (Config.refiner_name refiner));
         ("blocks", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) active)));
         ("passes", Json.Int passes);
         ("moves", Json.Int moves);
         ("moves_retained", Json.Int moves_retained);
         ("restarts", Json.Int restarts);
         ("cut_before", Json.Int cut_before);
         ("cut_after", Json.Int (State.cut_size st));
         ( "value_before",
           match value_before with
           | Some v -> Cost.value_to_json v
           | None -> Json.Null );
         ("value_after", Cost.value_to_json value_after);
       ]
      @ flow_attrs);
  Recorder.span_end sp
    ~attrs:
      ([
         ("iteration", Json.Int iteration);
         ("kind", Json.Str (Trace.kind_name kind));
         ("refiner", Json.Str (Config.refiner_name refiner));
         ("blocks", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) active)));
         ("passes", Json.Int passes);
         ("moves", Json.Int moves);
         ("moves_retained", Json.Int moves_retained);
         ("restarts", Json.Int restarts);
       ]
      @ flow_attrs);
  Trace.record t.trace
    (Trace.Improve
       {
         iteration;
         kind;
         blocks = Array.to_list active;
         value = value_after;
         passes;
         moves;
         restarts;
       })

let pair t st ~iteration ~remainder ~other ~allow_violation ~kind =
  if other <> remainder then
    run t st ~iteration ~remainder ~active:[| other; remainder |] ~allow_violation
      ~two_block:true ~kind

let all_blocks t st ~iteration ~remainder ~allow_violation =
  let active = Array.init (State.k st) (fun i -> i) in
  run t st ~iteration ~remainder ~active ~allow_violation ~two_block:false
    ~kind:Trace.All_blocks
