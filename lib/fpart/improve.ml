module State = Partition.State
module Cost = Partition.Cost

type t = {
  cfg : Config.t;
  params : Cost.params;
  ctx : Cost.context;
  trace : Trace.t;
}

let scale s_max eps = int_of_float (eps *. float_of_int s_max)

let windows t st ~remainder ~allow_violation ~two_block =
  let k = State.k st in
  let s_max = t.ctx.Cost.s_max in
  let eps_min = if two_block then t.cfg.Config.eps_min_two else t.cfg.Config.eps_min_multi in
  let eps_max = if two_block then t.cfg.Config.eps_max_two else t.cfg.Config.eps_max_multi in
  let lower = Array.make k 0 in
  let upper = Array.make k max_int in
  for b = 0 to k - 1 do
    if b <> remainder then begin
      lower.(b) <- scale s_max eps_min;
      upper.(b) <- (if allow_violation then scale s_max eps_max else s_max)
    end
  done;
  (lower, upper)

module Obs = Fpart_obs.Metrics
module Json = Fpart_obs.Json
module Selfcheck = Fpart_check.Selfcheck

(* Self-check wiring: paranoid installs a per-move validator into the
   engine; cheap (and up) validates the state once per Improve() call. *)
let engine_config t =
  let cfg = Config.engine t.cfg in
  if Selfcheck.at_least t.cfg.Config.selfcheck Selfcheck.Paranoid then
    {
      cfg with
      Sanchis.on_move =
        Some (fun st -> ignore (Selfcheck.validate ~where:"sanchis.move" st));
    }
  else cfg

let run t st ~iteration ~remainder ~active ~allow_violation ~two_block ~kind =
  let lower, upper = windows t st ~remainder ~allow_violation ~two_block in
  let spec = { Sanchis.active; remainder = Some remainder; lower; upper } in
  let eval st =
    Cost.evaluate t.params t.ctx st ~remainder:(Some remainder) ~step_k:iteration
  in
  let sp = Obs.span_begin () in
  let report = Sanchis.improve st ~spec ~config:(engine_config t) ~eval in
  if Selfcheck.at_least t.cfg.Config.selfcheck Selfcheck.Cheap then
    ignore (Selfcheck.validate ~where:"improve.boundary" st);
  Obs.span_end sp ~name:"improve.pass"
    ~attrs:
      [
        ("iteration", Json.Int iteration);
        ("kind", Json.Str (Trace.kind_name kind));
        ("blocks", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) active)));
        ("passes", Json.Int report.Sanchis.passes_run);
        ("moves", Json.Int report.Sanchis.moves_applied);
        ("restarts", Json.Int report.Sanchis.restarts);
      ];
  Trace.record t.trace
    (Trace.Improve
       {
         iteration;
         kind;
         blocks = Array.to_list active;
         value = report.Sanchis.best;
         passes = report.Sanchis.passes_run;
         moves = report.Sanchis.moves_applied;
         restarts = report.Sanchis.restarts;
       })

let pair t st ~iteration ~remainder ~other ~allow_violation ~kind =
  if other <> remainder then
    run t st ~iteration ~remainder ~active:[| other; remainder |] ~allow_violation
      ~two_block:true ~kind

let all_blocks t st ~iteration ~remainder ~allow_violation =
  let active = Array.init (State.k st) (fun i -> i) in
  run t st ~iteration ~remainder ~active ~allow_violation ~two_block:false
    ~kind:Trace.All_blocks
