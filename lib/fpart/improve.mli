(** The [Improve()] calls of Algorithm 1: Sanchis passes configured with
    the paper's feasible move regions (section 3.5).

    Size windows use the direct-multiplier reading of the ε coefficients
    (see {!Config}):
    - two-block passes bound non-remainder blocks to
      [[ε²_min·S_MAX, ε²_max·S_MAX]];
    - multi-block passes use [[ε*_min·S_MAX, ε*_max·S_MAX]];
    - the remainder is never bounded ([ε^R_max = ∞], lower bound 0);
    - once the theoretical minimum [M] has been reached
      ([allow_violation = false]), the upper bound tightens to [S_MAX]
      (no size-violating moves for non-remainder blocks);
    - I/O violations are never blocked (no pin constraint on moves). *)

type t = {
  cfg : Config.t;
  params : Partition.Cost.params;
  ctx : Partition.Cost.context;
  trace : Trace.t;
}

(** [windows t st ~remainder ~allow_violation ~two_block] is the
    per-block [(lower, upper)] size windows of the feasible move region,
    indexed by global block.  The remainder gets [(0, max_int)];
    exposed for the table-driven edge-case tests. *)
val windows :
  t ->
  Partition.State.t ->
  remainder:int ->
  allow_violation:bool ->
  two_block:bool ->
  int array * int array

(** [pair t st ~iteration ~remainder ~other ~allow_violation ~kind] runs
    a two-block improvement between [remainder] and [other] and records
    a trace event.  A no-op when [other = remainder]. *)
val pair :
  t ->
  Partition.State.t ->
  iteration:int ->
  remainder:int ->
  other:int ->
  allow_violation:bool ->
  kind:Trace.pass_kind ->
  unit

(** [all_blocks t st ~iteration ~remainder ~allow_violation] runs the
    improvement pass over every block of the partition. *)
val all_blocks :
  t ->
  Partition.State.t ->
  iteration:int ->
  remainder:int ->
  allow_violation:bool ->
  unit
