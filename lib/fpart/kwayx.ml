module Hg = Hypergraph.Hgraph
module State = Partition.State
module Obs = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Json = Fpart_obs.Json

let c_runs = Obs.counter "kwayx.runs"
let c_iterations = Obs.counter "kwayx.iterations"

type result = {
  k : int;
  assignment : int array;
  feasible : bool;
  iterations : int;
  cut : int;
  cpu_seconds : float;
}

(* Shed cells from block [b] into [r] until the pin budget fits, taking
   the cell with the best pin gain each time. *)
let shed_pins st ~b ~r ~t_max =
  let budget = ref (State.cells_of st b) in
  while State.pins_of st b > t_max && !budget > 0 && State.cells_of st b > 1 do
    decr budget;
    let best = ref (-1) in
    let best_gain = ref min_int in
    List.iter
      (fun v ->
        let g = State.pin_gain st v r in
        if g > !best_gain then begin
          best_gain := g;
          best := v
        end)
      (State.nodes_of_block st b);
    if !best >= 0 then State.move st !best r else budget := 0
  done

let run ?delta ?(max_passes = 8) hg device =
  let t0 = Sys.time () in
  Obs.incr c_runs;
  let sp_run = Recorder.span_begin "kwayx.run" in
  let delta = match delta with Some d -> d | None -> Device.paper_delta device in
  let s_max = Device.s_max device ~delta in
  let t_max = device.Device.t_max in
  let n = Hg.num_nodes hg in
  let assign = Array.make n 0 in
  let block_ok st i = State.size_of st i <= s_max && State.pins_of st i <= t_max in
  let finish ~k ~iterations =
    let st = State.create hg ~k ~assign:(fun v -> assign.(v)) in
    let feasible = ref true in
    for i = 0 to k - 1 do
      if not (block_ok st i) then feasible := false
    done;
    Recorder.span_end sp_run
      ~attrs:
        [
          ("k", Json.Int k);
          ("feasible", Json.Bool !feasible);
          ("iterations", Json.Int iterations);
        ];
    {
      k;
      assignment = Array.copy assign;
      feasible = !feasible;
      iterations;
      cut = State.cut_size st;
      cpu_seconds = Sys.time () -. t0;
    }
  in
  let whole = State.create hg ~k:1 ~assign:(fun _ -> 0) in
  if block_ok whole 0 then finish ~k:1 ~iterations:0
  else begin
    let m =
      Device.lower_bound device ~delta ~total_size:(Hg.total_size hg)
        ~total_pads:(Hg.num_pads hg)
    in
    let max_iterations = max ((4 * m) + 12) 16 in
    let rec iterate j =
      let iteration = j + 1 in
      if iteration > max_iterations then finish ~k:(j + 1) ~iterations:j
      else begin
        let st = State.create hg ~k:(j + 2) ~assign:(fun v -> assign.(v)) in
        let r = j + 1 in
        if State.cells_of st j < 2 then finish ~k:(j + 1) ~iterations:j
        else begin
          Obs.incr c_iterations;
          let sp_it = Recorder.span_begin "kwayx.iteration" in
          let member v = State.block_of st v = j in
          let sm = Seed_merge.split hg ~member ~s_max ~t_max in
          Hg.iter_nodes
            (fun v ->
              if member v then
                State.move st v (if sm.Seed_merge.p_side.(v) then j else r))
            hg;
          let limits =
            {
              Fm.lo0 = s_max * 7 / 10;
              hi0 = s_max;
              lo1 = 0;
              hi1 = max_int / 2;
            }
          in
          ignore (Fm.refine st ~block0:j ~block1:r ~limits ~max_passes);
          shed_pins st ~b:j ~r ~t_max;
          Array.blit (State.assignment st) 0 assign 0 n;
          Recorder.span_end sp_it
            ~attrs:[ ("iteration", Json.Int iteration) ];
          if block_ok st r then finish ~k:(j + 2) ~iterations:iteration
          else iterate (j + 1)
        end
      end
    in
    iterate 0
  end
