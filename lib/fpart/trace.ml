type pass_kind =
  | Pair_latest
  | All_blocks
  | Min_size
  | Min_io
  | Max_free
  | Final_pairs

type event =
  | Bipartition of { iteration : int; p_block : int; r_block : int; method_used : string }
  | Improve of {
      iteration : int;
      kind : pass_kind;
      blocks : int list;
      value : Partition.Cost.value;
      passes : int;
      moves : int;
      restarts : int;
    }
  | Committed of { iteration : int; block : int; size : int; pins : int }
  | Done of { iterations : int; k : int; feasible : bool }

type t = { mutable rev_events : event list }

let create () = { rev_events = [] }

let kind_name = function
  | Pair_latest -> "pair_latest"
  | All_blocks -> "all_blocks"
  | Min_size -> "min_size"
  | Min_io -> "min_io"
  | Max_free -> "max_free"
  | Final_pairs -> "final_pairs"

module Json = Fpart_obs.Json

let value_to_json = Partition.Cost.value_to_json

let to_fields e =
  let trace event fields =
    ("type", Json.Str "trace") :: ("event", Json.Str event) :: fields
  in
  match e with
  | Bipartition { iteration; p_block; r_block; method_used } ->
    trace "bipartition"
      [
        ("iteration", Json.Int iteration);
        ("p_block", Json.Int p_block);
        ("r_block", Json.Int r_block);
        ("method", Json.Str method_used);
      ]
  | Improve { iteration; kind; blocks; value; passes; moves; restarts } ->
    trace "improve"
      [
        ("iteration", Json.Int iteration);
        ("kind", Json.Str (kind_name kind));
        ("blocks", Json.List (List.map (fun b -> Json.Int b) blocks));
        ("value", value_to_json value);
        ("passes", Json.Int passes);
        ("moves", Json.Int moves);
        ("restarts", Json.Int restarts);
      ]
  | Committed { iteration; block; size; pins } ->
    trace "committed"
      [
        ("iteration", Json.Int iteration);
        ("block", Json.Int block);
        ("size", Json.Int size);
        ("pins", Json.Int pins);
      ]
  | Done { iterations; k; feasible } ->
    trace "done"
      [
        ("iterations", Json.Int iterations);
        ("k", Json.Int k);
        ("feasible", Json.Bool feasible);
      ]

let to_json e = Json.Obj (to_fields e)

(* Emission goes through {!Fpart_obs.Recorder.event} so each trace
   record is annotated with (and buffered alongside) the span it was
   recorded under — keeping trace/span interleaving deterministic
   across [--jobs]. *)
let record t e =
  t.rev_events <- e :: t.rev_events;
  if Fpart_obs.Metrics.enabled () then Fpart_obs.Recorder.event (to_fields e)

let events t = List.rev t.rev_events

let pp_kind ppf = function
  | Pair_latest -> Format.pp_print_string ppf "pair(R,P)"
  | All_blocks -> Format.pp_print_string ppf "all-blocks"
  | Min_size -> Format.pp_print_string ppf "min-size"
  | Min_io -> Format.pp_print_string ppf "min-io"
  | Max_free -> Format.pp_print_string ppf "max-free"
  | Final_pairs -> Format.pp_print_string ppf "final-pairs"

let pp_blocks ppf blocks =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int blocks))

let pp_event ppf = function
  | Bipartition { iteration; p_block; r_block; method_used } ->
    Format.fprintf ppf "it%-3d bipartition -> P=%d R=%d (%s)" iteration p_block
      r_block method_used
  | Improve { iteration; kind; blocks; value; passes; moves; restarts } ->
    Format.fprintf ppf "it%-3d improve %a %a %a [%d passes, %d moves, %d restarts]"
      iteration pp_kind kind pp_blocks blocks Partition.Cost.pp_value value passes
      moves restarts
  | Committed { iteration; block; size; pins } ->
    Format.fprintf ppf "it%-3d committed block %d (size=%d pins=%d)" iteration block
      size pins
  | Done { iterations; k; feasible } ->
    Format.fprintf ppf "done after %d iterations: k=%d feasible=%b" iterations k
      feasible
