(** Execution traces of the FPART driver.

    Records which improvement passes were called on which blocks at each
    iteration of Algorithm 1 — the information Figure 1 of the paper
    visualises.  The experiment harness replays a trace to regenerate
    that figure as text. *)

type pass_kind =
  | Pair_latest      (** Improve(R_k, P_k): the two lately created blocks. *)
  | All_blocks       (** Improve(P_0 … P_k, R_k) — only when [M ≤ N_small]. *)
  | Min_size         (** Improve(P_MIN_size, R_k). *)
  | Min_io           (** Improve(P_MIN_IO, R_k). *)
  | Max_free         (** Improve(P_MIN_F, R_k). *)
  | Final_pairs      (** Improve(P_i, R_k) for every i, once k = M. *)

type event =
  | Bipartition of { iteration : int; p_block : int; r_block : int; method_used : string }
  | Improve of {
      iteration : int;
      kind : pass_kind;
      blocks : int list;       (** Global block indices involved. *)
      value : Partition.Cost.value;  (** Solution value after the pass. *)
      passes : int;            (** FM passes executed by the engine. *)
      moves : int;             (** Retained (non-rewound) moves. *)
      restarts : int;          (** Solution-stack restarts. *)
    }
  | Committed of { iteration : int; block : int; size : int; pins : int }
  | Done of { iterations : int; k : int; feasible : bool }

(** A mutable recorder; [record] appends, [events] lists in order. *)
type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list

val pp_kind : Format.formatter -> pass_kind -> unit
val pp_event : Format.formatter -> event -> unit

(** Stable machine-readable name of a pass kind ([pair_latest],
    [all_blocks], …) — the [kind] field of the JSON encoding. *)
val kind_name : pass_kind -> string

(** JSON encoding of an event:
    [{"type":"trace","event":"bipartition"|"improve"|"committed"|"done",…}].
    [record] also emits this encoding to the current [Fpart_obs.Sink]
    whenever observability is enabled. *)
val to_json : event -> Fpart_obs.Json.t
