(* Doubly linked gain buckets.  [head.(g + max_gain)] is the first cell of
   bucket [g] or -1.  [prev.(c)] is the predecessor cell or -1 when [c] is
   a bucket head; [next.(c)] the successor or -1.  [gain.(c)] is only
   meaningful when [present.(c)]. *)

(* Always-on workload counters (plain int increments, see Fpart_obs).
   "scans" counts fold_top calls, "scanned_cells" the cells they
   visited, "settle_steps" the empty buckets skipped while lowering
   [top] — together they expose how much bucket-walking a pass pays. *)
module Obs = Fpart_obs.Metrics

let c_inserts = Obs.counter "bucket.inserts"
let c_removes = Obs.counter "bucket.removes"
let c_updates = Obs.counter "bucket.updates"
let c_clears = Obs.counter "bucket.clears"
let c_scans = Obs.counter "bucket.scans"
let c_scanned = Obs.counter "bucket.scanned_cells"
let c_settle = Obs.counter "bucket.settle_steps"

type discipline = Lifo | Fifo

type t = {
  discipline : discipline;
  max_gain : int;
  head : int array;
  tail : int array;
  prev : int array;
  next : int array;
  gain : int array;
  present : bool array;
  mutable count : int;
  mutable top : int; (* upper bound on the highest non-empty bucket index *)
}

let create ?(discipline = Lifo) ~cells ~max_gain () =
  if cells < 0 then invalid_arg "Bucket_array.create: cells < 0";
  if max_gain < 0 then invalid_arg "Bucket_array.create: max_gain < 0";
  {
    discipline;
    max_gain;
    head = Array.make ((2 * max_gain) + 1) (-1);
    tail = Array.make ((2 * max_gain) + 1) (-1);
    prev = Array.make cells (-1);
    next = Array.make cells (-1);
    gain = Array.make cells 0;
    present = Array.make cells false;
    count = 0;
    top = -1;
  }

let mem t cell = t.present.(cell)

let gain_of t cell =
  if not t.present.(cell) then invalid_arg "Bucket_array.gain_of: absent cell";
  t.gain.(cell)

let bucket_index t g = g + t.max_gain

(* Raw link/unlink: the list surgery shared by insert/remove/update.
   Workload counters live in the public operations only, so an update is
   one [bucket.updates] tick — not a phantom insert + remove pair. *)
let link t cell g =
  let i = bucket_index t g in
  (match t.discipline with
  | Lifo ->
    let old_head = t.head.(i) in
    t.head.(i) <- cell;
    t.prev.(cell) <- -1;
    t.next.(cell) <- old_head;
    if old_head >= 0 then t.prev.(old_head) <- cell
    else t.tail.(i) <- cell
  | Fifo ->
    let old_tail = t.tail.(i) in
    t.tail.(i) <- cell;
    t.next.(cell) <- -1;
    t.prev.(cell) <- old_tail;
    if old_tail >= 0 then t.next.(old_tail) <- cell
    else t.head.(i) <- cell);
  t.gain.(cell) <- g;
  t.present.(cell) <- true;
  if i > t.top then t.top <- i

let unlink t cell =
  let p = t.prev.(cell) and n = t.next.(cell) in
  let i = bucket_index t t.gain.(cell) in
  if p >= 0 then t.next.(p) <- n else t.head.(i) <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail.(i) <- p;
  t.present.(cell) <- false;
  t.prev.(cell) <- -1;
  t.next.(cell) <- -1

let insert t cell g =
  if t.present.(cell) then invalid_arg "Bucket_array.insert: cell already present";
  if g < -t.max_gain || g > t.max_gain then
    invalid_arg "Bucket_array.insert: gain out of range";
  link t cell g;
  t.count <- t.count + 1;
  Obs.incr c_inserts

let remove t cell =
  if t.present.(cell) then begin
    unlink t cell;
    t.count <- t.count - 1;
    Obs.incr c_removes
  end

let update t cell g =
  if not t.present.(cell) then invalid_arg "Bucket_array.update: absent cell";
  if g <> t.gain.(cell) then begin
    if g < -t.max_gain || g > t.max_gain then
      invalid_arg "Bucket_array.update: gain out of range";
    Obs.incr c_updates;
    unlink t cell;
    link t cell g
  end

let cardinal t = t.count

let is_empty t = t.count = 0

(* Lower [top] until it points at a non-empty bucket. *)
let settle_top t =
  if t.count = 0 then t.top <- -1
  else begin
    while t.top >= 0 && t.head.(t.top) < 0 do
      Obs.incr c_settle;
      t.top <- t.top - 1
    done
  end

let top_gain t =
  settle_top t;
  if t.top < 0 then None else Some (t.top - t.max_gain)

let fold_top t ~limit ~init ~f =
  settle_top t;
  if t.top < 0 then init
  else begin
    Obs.incr c_scans;
    let acc = ref init in
    let cell = ref t.head.(t.top) in
    let n = ref 0 in
    while !cell >= 0 && !n < limit do
      acc := f !acc !cell;
      cell := t.next.(!cell);
      incr n
    done;
    Obs.add c_scanned !n;
    !acc
  end

let iter t f =
  Array.iteri (fun c p -> if p then f c) t.present

let clear t =
  Obs.incr c_clears;
  Array.fill t.head 0 (Array.length t.head) (-1);
  Array.fill t.tail 0 (Array.length t.tail) (-1);
  Array.fill t.present 0 (Array.length t.present) false;
  Array.fill t.prev 0 (Array.length t.prev) (-1);
  Array.fill t.next 0 (Array.length t.next) (-1);
  t.count <- 0;
  t.top <- -1

let check t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let seen = ref 0 in
  let result = ref (Ok ()) in
  Array.iteri
    (fun i h ->
      if !result = Ok () && h >= 0 then begin
        let g = i - t.max_gain in
        let rec walk prev cell steps =
          if !result <> Ok () then ()
          else if steps > Array.length t.present then
            result := fail "cycle detected in bucket %d" g
          else if cell >= 0 then begin
            if not t.present.(cell) then result := fail "absent cell %d linked" cell
            else if t.gain.(cell) <> g then
              result := fail "cell %d in bucket %d but gain %d" cell g t.gain.(cell)
            else if t.prev.(cell) <> prev then
              result := fail "bad prev link at cell %d" cell
            else begin
              incr seen;
              walk cell t.next.(cell) (steps + 1)
            end
          end
        in
        walk (-1) h 0
      end)
    t.head;
  match !result with
  | Error _ as e -> e
  | Ok () ->
    if !seen <> t.count then fail "count %d but %d cells linked" t.count !seen
    else Ok ()
