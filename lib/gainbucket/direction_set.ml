(* Private top-index: directions bucketed by their current top gain, the
   same intrusive doubly-linked layout as [Bucket_array] but over
   direction ids.  Deliberately counter-free — it is bookkeeping of the
   bucket layer itself, and ticking the [bucket.*] workload counters for
   it would pollute the very metrics the perf benches diff. *)
module Top_index = struct
  type t = {
    max_gain : int;
    head : int array;
    prev : int array;
    next : int array;
    gain : int array;
    present : bool array;
    mutable count : int;
    mutable top : int;
  }

  let create ~directions ~max_gain =
    {
      max_gain;
      head = Array.make ((2 * max_gain) + 1) (-1);
      prev = Array.make directions (-1);
      next = Array.make directions (-1);
      gain = Array.make directions 0;
      present = Array.make directions false;
      count = 0;
      top = -1;
    }

  let unlink t dir =
    let p = t.prev.(dir) and n = t.next.(dir) in
    let i = t.gain.(dir) + t.max_gain in
    if p >= 0 then t.next.(p) <- n else t.head.(i) <- n;
    if n >= 0 then t.prev.(n) <- p;
    t.present.(dir) <- false;
    t.prev.(dir) <- -1;
    t.next.(dir) <- -1;
    t.count <- t.count - 1

  let link t dir g =
    let i = g + t.max_gain in
    let old_head = t.head.(i) in
    t.head.(i) <- dir;
    t.prev.(dir) <- -1;
    t.next.(dir) <- old_head;
    if old_head >= 0 then t.prev.(old_head) <- dir;
    t.gain.(dir) <- g;
    t.present.(dir) <- true;
    t.count <- t.count + 1;
    if i > t.top then t.top <- i

  (* Record that [dir]'s bucket currently tops out at [g]. *)
  let set t dir g =
    if t.present.(dir) then begin
      if t.gain.(dir) <> g then begin
        unlink t dir;
        link t dir g
      end
    end
    else link t dir g

  (* Record that [dir] has no eligible top (empty or disabled). *)
  let drop t dir = if t.present.(dir) then unlink t dir

  let settle t =
    if t.count = 0 then t.top <- -1
    else
      while t.top >= 0 && t.head.(t.top) < 0 do
        t.top <- t.top - 1
      done

  let top_gain t =
    settle t;
    if t.top < 0 then None else Some (t.top - t.max_gain)

  (* Directions whose top equals the global best, ascending. *)
  let top_dirs t =
    settle t;
    if t.top < 0 then []
    else begin
      let out = ref [] in
      let dir = ref t.head.(t.top) in
      while !dir >= 0 do
        out := !dir :: !out;
        dir := t.next.(!dir)
      done;
      List.sort compare !out
    end

  let clear t =
    Array.fill t.head 0 (Array.length t.head) (-1);
    Array.fill t.prev 0 (Array.length t.prev) (-1);
    Array.fill t.next 0 (Array.length t.next) (-1);
    Array.fill t.present 0 (Array.length t.present) false;
    t.count <- 0;
    t.top <- -1
end

type t = {
  buckets : Bucket_array.t array;
  enabled : bool array;
  tops : Top_index.t;
}

let create ?discipline ~directions ~cells ~max_gain () =
  {
    buckets =
      Array.init directions (fun _ ->
          Bucket_array.create ?discipline ~cells ~max_gain ());
    enabled = Array.make directions true;
    tops = Top_index.create ~directions ~max_gain;
  }

let bucket t dir = t.buckets.(dir)

(* Re-derive [dir]'s entry in the top index from its bucket.  Every
   mutation below ends here, so the index is always exact and
   [best_gain]/[best_dirs] never rescan the other directions. *)
let sync t dir =
  if t.enabled.(dir) then
    match Bucket_array.top_gain t.buckets.(dir) with
    | Some g -> Top_index.set t.tops dir g
    | None -> Top_index.drop t.tops dir
  else Top_index.drop t.tops dir

let insert t ~dir cell gain =
  Bucket_array.insert t.buckets.(dir) cell gain;
  sync t dir

let remove t ~dir cell =
  Bucket_array.remove t.buckets.(dir) cell;
  sync t dir

let update t ~dir cell gain =
  Bucket_array.update t.buckets.(dir) cell gain;
  sync t dir

let mem t ~dir cell = Bucket_array.mem t.buckets.(dir) cell
let gain_of t ~dir cell = Bucket_array.gain_of t.buckets.(dir) cell

let set_enabled t dir flag =
  if t.enabled.(dir) <> flag then begin
    t.enabled.(dir) <- flag;
    sync t dir
  end

let enabled t dir = t.enabled.(dir)

let best_gain t = Top_index.top_gain t.tops

let best_dirs t = Top_index.top_dirs t.tops

let total_cells t =
  Array.fold_left (fun acc b -> acc + Bucket_array.cardinal b) 0 t.buckets

let clear t =
  Array.iter Bucket_array.clear t.buckets;
  Array.fill t.enabled 0 (Array.length t.enabled) true;
  Top_index.clear t.tops

let check t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec go dir =
    if dir >= Array.length t.buckets then Ok ()
    else
      match Bucket_array.check t.buckets.(dir) with
      | Error e -> fail "direction %d: %s" dir e
      | Ok () ->
        let expect =
          if t.enabled.(dir) then Bucket_array.top_gain t.buckets.(dir) else None
        in
        let stored =
          if t.tops.Top_index.present.(dir) then Some t.tops.Top_index.gain.(dir)
          else None
        in
        if expect <> stored then
          fail "direction %d: top index holds %s but bucket tops at %s" dir
            (match stored with None -> "nothing" | Some g -> string_of_int g)
            (match expect with None -> "nothing" | Some g -> string_of_int g)
        else go (dir + 1)
  in
  go 0
