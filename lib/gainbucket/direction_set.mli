(** The set of per-direction gain buckets of a multi-way pass, with
    top-direction tracking.

    The Sanchis engine maintains one {!Bucket_array} per ordered pair of
    active blocks ("move direction", paper section 3.7) and repeatedly
    asks for the direction(s) whose best cell has the globally highest
    gain.  Scanning all [k·(k-1)] direction tops every selection round
    is the naive answer; this module instead keeps an exact top index —
    directions bucketed by their current {!Bucket_array.top_gain}, the
    paper's "heap" specialised to the small integer gain range — so
    {!best_gain} is O(1) and {!best_dirs} touches only the tied
    directions.

    The index is maintained by routing every mutation through the set
    ({!insert}/{!remove}/{!update}/{!set_enabled}); {!bucket} exposes
    the underlying arrays for {e read-only} access ([fold_top],
    [top_gain], [cardinal]) — mutating one directly desynchronises the
    index.  Disabled directions (blocks on the feasible-move-region
    boundary, section 3.5) leave the index and are skipped by both
    queries.

    Directions are dense integers [0 .. n-1] chosen by the caller. *)

type t

(** [create ?discipline ~directions ~cells ~max_gain ()] allocates
    [directions] empty bucket arrays (shared insertion discipline). *)
val create :
  ?discipline:Bucket_array.discipline ->
  directions:int ->
  cells:int ->
  max_gain:int ->
  unit ->
  t

(** [bucket t dir] is the bucket array of a direction, for {e read-only}
    use; mutate through the set operations below so the top index stays
    exact. *)
val bucket : t -> int -> Bucket_array.t

(** [insert t ~dir cell gain] — {!Bucket_array.insert} plus index sync. *)
val insert : t -> dir:int -> int -> int -> unit

(** [remove t ~dir cell] — {!Bucket_array.remove} plus index sync. *)
val remove : t -> dir:int -> int -> unit

(** [update t ~dir cell gain] — {!Bucket_array.update} plus index sync. *)
val update : t -> dir:int -> int -> int -> unit

(** [mem t ~dir cell] is [Bucket_array.mem (bucket t dir) cell]. *)
val mem : t -> dir:int -> int -> bool

(** [gain_of t ~dir cell] is [Bucket_array.gain_of (bucket t dir) cell]. *)
val gain_of : t -> dir:int -> int -> int

(** [set_enabled t dir flag] enables or disables a direction; disabled
    directions are invisible to {!best_gain}/{!best_dirs}. *)
val set_enabled : t -> int -> bool -> unit

(** [enabled t dir] reads the flag (directions start enabled). *)
val enabled : t -> int -> bool

(** [best_gain t] is the highest top gain over enabled, non-empty
    directions — O(1) from the top index. *)
val best_gain : t -> int option

(** [best_dirs t] is all enabled directions whose top gain equals
    {!best_gain}, ascending (empty when all buckets are empty or
    disabled).  Touches only the tied directions. *)
val best_dirs : t -> int list

(** [total_cells t] sums {!Bucket_array.cardinal} over all directions. *)
val total_cells : t -> int

(** [clear t] empties every bucket, re-enables every direction and
    resets the index. *)
val clear : t -> unit

(** [check t] verifies bucket integrity and that the top index matches
    every direction's actual top (test-only). *)
val check : t -> (unit, string) result
