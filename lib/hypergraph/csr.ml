type t = {
  nodes : int;
  nets : int;
  xpins : int array;
  pin_nodes : int array;
  xnets : int array;
  net_ids : int array;
  size : int array;
  flops : int array;
}

type memento = {
  fine_nodes : int;
  coarse_nodes : int;
  map : int array;
  kept_nets : int array;
}

let num_nodes t = t.nodes
let num_nets t = t.nets
let num_pins t = t.xpins.(t.nets)

let num_pads t =
  let c = ref 0 in
  for v = 0 to t.nodes - 1 do
    if t.size.(v) = 0 then incr c
  done;
  !c

let is_pad t v = t.size.(v) = 0
let total_size t = Array.fold_left ( + ) 0 t.size
let net_degree t e = t.xpins.(e + 1) - t.xpins.(e)
let node_degree t v = t.xnets.(v + 1) - t.xnets.(v)

let iter_net_pins f t e =
  for i = t.xpins.(e) to t.xpins.(e + 1) - 1 do
    f t.pin_nodes.(i)
  done

let iter_node_nets f t v =
  for i = t.xnets.(v) to t.xnets.(v + 1) - 1 do
    f t.net_ids.(i)
  done

let net_pins t e = Array.sub t.pin_nodes t.xpins.(e) (net_degree t e)

(* Rebuild the node->net direction by counting the net->pin direction;
   shared by [of_pins] and [contract]. *)
let index_nets ~nodes ~xpins ~pin_nodes =
  let nets = Array.length xpins - 1 in
  let xnets = Array.make (nodes + 1) 0 in
  let total = xpins.(nets) in
  for i = 0 to total - 1 do
    let v = pin_nodes.(i) in
    xnets.(v + 1) <- xnets.(v + 1) + 1
  done;
  for v = 1 to nodes do
    xnets.(v) <- xnets.(v) + xnets.(v - 1)
  done;
  let net_ids = Array.make total 0 in
  let cursor = Array.copy xnets in
  for e = 0 to nets - 1 do
    for i = xpins.(e) to xpins.(e + 1) - 1 do
      let v = pin_nodes.(i) in
      net_ids.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1
    done
  done;
  (xnets, net_ids)

let of_hgraph hg =
  let nodes = Hgraph.num_nodes hg and nets = Hgraph.num_nets hg in
  let xpins = Array.make (nets + 1) 0 in
  for e = 0 to nets - 1 do
    xpins.(e + 1) <- xpins.(e) + Hgraph.net_degree hg e
  done;
  let pin_nodes = Array.make xpins.(nets) 0 in
  for e = 0 to nets - 1 do
    let pins = Hgraph.pins hg e in
    Array.blit pins 0 pin_nodes xpins.(e) (Array.length pins)
  done;
  let xnets, net_ids = index_nets ~nodes ~xpins ~pin_nodes in
  let size = Array.init nodes (Hgraph.size hg) in
  let flops = Array.init nodes (Hgraph.flops hg) in
  { nodes; nets; xpins; pin_nodes; xnets; net_ids; size; flops }

let to_hgraph ?node_name ?net_name t =
  let node_name = match node_name with
    | Some f -> f
    | None -> fun v -> Printf.sprintf "v%d" v
  in
  let net_name = match net_name with
    | Some f -> f
    | None -> fun e -> Printf.sprintf "e%d" e
  in
  let b = Hgraph.Builder.create () in
  for v = 0 to t.nodes - 1 do
    if t.size.(v) = 0 then
      ignore (Hgraph.Builder.add_pad b ~name:(node_name v))
    else
      ignore
        (Hgraph.Builder.add_cell b ~flops:t.flops.(v) ~name:(node_name v)
           ~size:t.size.(v))
  done;
  for e = 0 to t.nets - 1 do
    let pins = ref [] in
    for i = t.xpins.(e + 1) - 1 downto t.xpins.(e) do
      pins := t.pin_nodes.(i) :: !pins
    done;
    ignore (Hgraph.Builder.add_net b ~name:(net_name e) !pins)
  done;
  Hgraph.Builder.freeze b

let contract t ~map ~coarse_nodes =
  if Array.length map <> t.nodes then
    invalid_arg "Csr.contract: map length <> num_nodes";
  if coarse_nodes < 1 && t.nodes > 0 then
    invalid_arg "Csr.contract: coarse_nodes < 1";
  let size = Array.make coarse_nodes 0 in
  let flops = Array.make coarse_nodes 0 in
  let members = Array.make coarse_nodes 0 in
  let has_pad_member = Array.make coarse_nodes false in
  for v = 0 to t.nodes - 1 do
    let c = map.(v) in
    if c < 0 || c >= coarse_nodes then
      invalid_arg "Csr.contract: coarse id out of range";
    size.(c) <- size.(c) + t.size.(v);
    flops.(c) <- flops.(c) + t.flops.(v);
    members.(c) <- members.(c) + 1;
    if t.size.(v) = 0 then has_pad_member.(c) <- true
  done;
  for c = 0 to coarse_nodes - 1 do
    if members.(c) = 0 then invalid_arg "Csr.contract: empty coarse node";
    if has_pad_member.(c) && members.(c) > 1 then
      invalid_arg "Csr.contract: pad contracted with another node"
  done;
  (* Pass 1: per fine net, count distinct coarse endpoints (stamp array
     keyed by the net id), decide keep, accumulate coarse pin total. *)
  let stamp = Array.make coarse_nodes (-1) in
  let keep = Array.make t.nets false in
  let coarse_deg = Array.make t.nets 0 in
  let kept = ref 0 and coarse_pins = ref 0 in
  for e = 0 to t.nets - 1 do
    let distinct = ref 0 and pad = ref false in
    for i = t.xpins.(e) to t.xpins.(e + 1) - 1 do
      let v = t.pin_nodes.(i) in
      if t.size.(v) = 0 then pad := true;
      let c = map.(v) in
      if stamp.(c) <> e then begin
        stamp.(c) <- e;
        incr distinct
      end
    done;
    if !distinct >= 2 || (!pad && !distinct >= 1) then begin
      keep.(e) <- true;
      coarse_deg.(e) <- !distinct;
      incr kept;
      coarse_pins := !coarse_pins + !distinct
    end
  done;
  (* Pass 2: emit kept nets with deduplicated coarse pins, first-seen
     order (a second stamp array keeps the passes independent). *)
  let xpins = Array.make (!kept + 1) 0 in
  let pin_nodes = Array.make !coarse_pins 0 in
  let kept_nets = Array.make !kept 0 in
  let stamp2 = Array.make coarse_nodes (-1) in
  let ce = ref 0 and cursor = ref 0 in
  for e = 0 to t.nets - 1 do
    if keep.(e) then begin
      kept_nets.(!ce) <- e;
      for i = t.xpins.(e) to t.xpins.(e + 1) - 1 do
        let c = map.(t.pin_nodes.(i)) in
        if stamp2.(c) <> e then begin
          stamp2.(c) <- e;
          pin_nodes.(!cursor) <- c;
          incr cursor
        end
      done;
      incr ce;
      xpins.(!ce) <- !cursor
    end
  done;
  let xnets, net_ids = index_nets ~nodes:coarse_nodes ~xpins ~pin_nodes in
  let coarse =
    {
      nodes = coarse_nodes;
      nets = !kept;
      xpins;
      pin_nodes;
      xnets;
      net_ids;
      size;
      flops;
    }
  in
  let memento =
    { fine_nodes = t.nodes; coarse_nodes; map = Array.copy map; kept_nets }
  in
  (coarse, memento)

let project m coarse_assign =
  if Array.length coarse_assign <> m.coarse_nodes then
    invalid_arg "Csr.project: wrong assignment length";
  Array.init m.fine_nodes (fun v -> coarse_assign.(m.map.(v)))

let validate t =
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () =
    if Array.length t.xpins <> t.nets + 1 then fail "xpins length"
    else if Array.length t.xnets <> t.nodes + 1 then fail "xnets length"
    else if Array.length t.size <> t.nodes then fail "size length"
    else if Array.length t.flops <> t.nodes then fail "flops length"
    else Ok ()
  in
  let* () =
    let bad = ref None in
    for e = 0 to t.nets - 1 do
      if !bad = None && t.xpins.(e + 1) < t.xpins.(e) then bad := Some e
    done;
    match !bad with
    | Some e -> fail "net %d: xpins not monotone" e
    | None ->
      if t.xpins.(t.nets) <> Array.length t.pin_nodes then
        fail "xpins.(nets) <> |pin_nodes|"
      else Ok ()
  in
  let* () =
    let bad = ref None in
    Array.iteri
      (fun i v -> if !bad = None && (v < 0 || v >= t.nodes) then bad := Some i)
      t.pin_nodes;
    match !bad with
    | Some i -> fail "pin %d: node id out of range" i
    | None -> Ok ()
  in
  let* () =
    (* duplicate-free pin lists *)
    let stamp = Array.make (max 1 t.nodes) (-1) in
    let bad = ref None in
    for e = 0 to t.nets - 1 do
      for i = t.xpins.(e) to t.xpins.(e + 1) - 1 do
        let v = t.pin_nodes.(i) in
        if stamp.(v) = e && !bad = None then bad := Some e;
        stamp.(v) <- e
      done
    done;
    match !bad with
    | Some e -> fail "net %d: duplicate pin" e
    | None -> Ok ()
  in
  let* () =
    let xnets, net_ids = index_nets ~nodes:t.nodes ~xpins:t.xpins ~pin_nodes:t.pin_nodes in
    if xnets <> t.xnets then fail "xnets disagrees with pin lists"
    else if net_ids <> t.net_ids then fail "net_ids disagrees with pin lists"
    else Ok ()
  in
  let bad = ref None in
  Array.iteri
    (fun v s -> if !bad = None && s < 0 then bad := Some v)
    t.size;
  match !bad with
  | Some v -> fail "node %d: negative size" v
  | None -> Ok ()
