(** Frozen CSR (compressed sparse row) hypergraph for the multilevel
    engine's coarse levels.

    {!Hgraph.t} is the right representation for the flat engines: it
    carries names, validates on construction, and is built once per
    circuit.  The multilevel engine instead builds a whole hierarchy of
    successively coarser graphs, and tears through their pin lists on
    every matching and contraction pass — for that regime this module
    stores a hypergraph as six flat [int array]s (xadj/adjncy style, in
    both the net→pin and node→net directions) with no names, no
    hashing and no per-object allocation.

    Layout, for a graph with [n] nodes and [m] nets:

    - [xpins] : [m+1] offsets into [pin_nodes]; net [e]'s pins are
      [pin_nodes.(xpins.(e)) .. pin_nodes.(xpins.(e+1)-1)].
    - [xnets] : [n+1] offsets into [net_ids]; node [v]'s nets are
      [net_ids.(xnets.(v)) .. net_ids.(xnets.(v+1)-1)].
    - [size], [flops] : per-node weights ([size.(v) = 0] iff [v] is a
      terminal pad, matching {!Hgraph}'s convention).

    Pin lists are duplicate-free, mirroring {!Hgraph.pins}.

    {b Contraction} ({!contract}) collapses a clustering [map] into a
    coarser CSR graph plus a {!memento} that allows the exact inverse
    projection.  The invariant the multilevel engine relies on: pads
    are never contracted (every coarse pad is a singleton), and a fine
    net survives iff it has [>= 2] distinct coarse endpoints {i or}
    touches a pad.  Under that rule the coarse graph's block sizes
    [S_i], pin counts [T_i] (DESIGN.md section 7 pin model) and cut are
    {i exactly} equal to the flat values of the projected partition —
    coarse feasibility is flat feasibility, and the
    [Fpart_check.Oracle] cross-check in the engine is an equality, not
    an approximation. *)

type t = private {
  nodes : int;
  nets : int;
  xpins : int array;      (* length nets+1 *)
  pin_nodes : int array;  (* length xpins.(nets) *)
  xnets : int array;      (* length nodes+1 *)
  net_ids : int array;    (* length xnets.(nodes) *)
  size : int array;       (* per node; 0 iff pad *)
  flops : int array;      (* per node *)
}

(** Inverse of one {!contract} step. *)
type memento = {
  fine_nodes : int;
  coarse_nodes : int;
  map : int array;        (* fine node -> coarse node, length fine_nodes *)
  kept_nets : int array;  (* coarse net -> originating fine net *)
}

(** {1 Accessors} *)

val num_nodes : t -> int
val num_nets : t -> int
val num_pins : t -> int

(** [num_pads t] counts nodes with [size = 0]. *)
val num_pads : t -> int

val is_pad : t -> int -> bool
val total_size : t -> int

(** [net_degree t e] is the number of pins on net [e]. *)
val net_degree : t -> int -> int

(** [node_degree t v] is the number of nets on node [v]. *)
val node_degree : t -> int -> int

(** [iter_net_pins f t e] applies [f] to each pin of net [e] in layout
    order.  Allocation-free. *)
val iter_net_pins : (int -> unit) -> t -> int -> unit

(** [iter_node_nets f t v] applies [f] to each net of node [v]. *)
val iter_node_nets : (int -> unit) -> t -> int -> unit

(** [net_pins t e] is a fresh array of net [e]'s pins (tests and
    diagnostics; the engines use {!iter_net_pins}). *)
val net_pins : t -> int -> int array

(** {1 Conversion} *)

(** [of_hgraph hg] freezes [hg] into CSR form, preserving node and net
    ids. *)
val of_hgraph : Hgraph.t -> t

(** [to_hgraph t] rebuilds an {!Hgraph.t} with the same node/net ids.
    Generated names default to ["v<id>"] / ["e<id>"]; [node_name] /
    [net_name] override them (e.g. to keep pad names through a
    contraction). *)
val to_hgraph :
  ?node_name:(int -> string) -> ?net_name:(int -> string) -> t -> Hgraph.t

(** {1 Contraction} *)

(** [contract t ~map ~coarse_nodes] collapses each fine node [v] into
    coarse node [map.(v)].  Coarse sizes and flop counts are member
    sums.  A fine net is kept iff its pins span [>= 2] distinct coarse
    nodes or it touches a pad; kept nets' pin lists are the
    deduplicated coarse endpoints, in first-seen order.

    @raise Invalid_argument if [map] has the wrong length, a coarse id
    is out of [0 .. coarse_nodes-1], some coarse id has no members, or
    a pad is grouped with any other node (pads must stay singletons —
    each consumes one IOB on whatever device it lands on, so merging
    one into a cell would mis-count [T_i] after projection). *)
val contract : t -> map:int array -> coarse_nodes:int -> t * memento

(** [project m coarse_assign] maps a coarse partition back onto the
    fine nodes: fine node [v] lands in [coarse_assign.(m.map.(v))]. *)
val project : memento -> int array -> int array

(** {1 Integrity} *)

(** [validate t] re-derives the node→net direction from the net→pin
    direction and checks offsets, ranges, duplicate-free pin lists and
    the [size = 0] ⇔ pad convention.  [Error msg] on first violation. *)
val validate : t -> (unit, string) result
