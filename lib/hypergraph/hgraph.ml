type node = int
type net = int

type kind = Cell | Pad

type t = {
  kinds : kind array;
  sizes : int array;
  flop_counts : int array;
  names : string array;
  net_names : string array;
  net_pins : node array array;
  node_nets : net array array;
  net_pad : bool array;
  num_cells : int;
  num_pads : int;
  total_size : int;
  max_node_degree : int;
  max_net_degree : int;
}

module Builder = struct
  type t = {
    b_kinds : kind Vec.t;
    b_sizes : int Vec.t;
    b_flops : int Vec.t;
    b_names : string Vec.t;
    b_net_names : string Vec.t;
    b_net_pins : node array Vec.t;
  }

  let create () =
    {
      b_kinds = Vec.create ();
      b_sizes = Vec.create ();
      b_flops = Vec.create ();
      b_names = Vec.create ();
      b_net_names = Vec.create ();
      b_net_pins = Vec.create ();
    }

  let num_nodes b = Vec.length b.b_kinds

  let add_node b ~name ~size ~flops k =
    let id = Vec.length b.b_kinds in
    Vec.push b.b_kinds k;
    Vec.push b.b_sizes size;
    Vec.push b.b_flops flops;
    Vec.push b.b_names name;
    id

  let add_cell ?(flops = 0) b ~name ~size =
    if size <= 0 then invalid_arg "Hgraph.Builder.add_cell: size <= 0";
    if flops < 0 then invalid_arg "Hgraph.Builder.add_cell: flops < 0";
    add_node b ~name ~size ~flops Cell

  let add_pad b ~name = add_node b ~name ~size:0 ~flops:0 Pad

  let add_net b ~name pins =
    let n = num_nodes b in
    List.iter
      (fun v ->
        if v < 0 || v >= n then
          invalid_arg "Hgraph.Builder.add_net: unknown node id")
      pins;
    let pins = List.sort_uniq compare pins in
    if pins = [] then invalid_arg "Hgraph.Builder.add_net: empty net";
    let id = Vec.length b.b_net_pins in
    Vec.push b.b_net_pins (Array.of_list pins);
    Vec.push b.b_net_names name;
    id

  let freeze b =
    let kinds = Vec.to_array b.b_kinds in
    let sizes = Vec.to_array b.b_sizes in
    let flop_counts = Vec.to_array b.b_flops in
    let names = Vec.to_array b.b_names in
    let net_names = Vec.to_array b.b_net_names in
    let net_pins = Vec.to_array b.b_net_pins in
    let n = Array.length kinds in
    let m = Array.length net_pins in
    let degree = Array.make n 0 in
    Array.iter (fun pins -> Array.iter (fun v -> degree.(v) <- degree.(v) + 1) pins) net_pins;
    let node_nets = Array.map (fun d -> Array.make d 0) (Array.map (fun d -> d) degree) in
    let fill = Array.make n 0 in
    for e = 0 to m - 1 do
      Array.iter
        (fun v ->
          node_nets.(v).(fill.(v)) <- e;
          fill.(v) <- fill.(v) + 1)
        net_pins.(e)
    done;
    let net_pad =
      Array.map (fun pins -> Array.exists (fun v -> kinds.(v) = Pad) pins) net_pins
    in
    let num_cells = Array.fold_left (fun acc k -> if k = Cell then acc + 1 else acc) 0 kinds in
    {
      kinds;
      sizes;
      flop_counts;
      names;
      net_names;
      net_pins;
      node_nets;
      net_pad;
      num_cells;
      num_pads = n - num_cells;
      total_size = Array.fold_left ( + ) 0 sizes;
      max_node_degree = Array.fold_left max 0 degree;
      max_net_degree =
        Array.fold_left (fun acc pins -> max acc (Array.length pins)) 0 net_pins;
    }
end

let num_nodes h = Array.length h.kinds
let num_cells h = h.num_cells
let num_pads h = h.num_pads
let num_nets h = Array.length h.net_pins
let kind h v = h.kinds.(v)
let is_pad h v = h.kinds.(v) = Pad
let size h v = h.sizes.(v)
let flops h v = h.flop_counts.(v)
let name h v = h.names.(v)
let net_name h e = h.net_names.(e)
let pins h e = h.net_pins.(e)
let net_degree h e = Array.length h.net_pins.(e)
let nets_of h v = h.node_nets.(v)
let node_degree h v = Array.length h.node_nets.(v)
let total_size h = h.total_size
let total_flops h = Array.fold_left ( + ) 0 h.flop_counts
let max_node_degree h = h.max_node_degree
let max_net_degree h = h.max_net_degree
let net_has_pad h e = h.net_pad.(e)

let iter_nodes f h =
  for v = 0 to num_nodes h - 1 do f v done

let iter_cells f h =
  for v = 0 to num_nodes h - 1 do if h.kinds.(v) = Cell then f v done

let iter_pads f h =
  for v = 0 to num_nodes h - 1 do if h.kinds.(v) = Pad then f v done

let iter_nets f h =
  for e = 0 to num_nets h - 1 do f e done

let fold_nodes f acc h =
  let acc = ref acc in
  iter_nodes (fun v -> acc := f !acc v) h;
  !acc

let fold_nets f acc h =
  let acc = ref acc in
  iter_nets (fun e -> acc := f !acc e) h;
  !acc

let validate h =
  let n = num_nodes h and m = num_nets h in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_sizes () =
    let rec go v =
      if v >= n then Ok ()
      else
        match h.kinds.(v) with
        | Cell when h.sizes.(v) <= 0 -> fail "cell %d has size %d" v h.sizes.(v)
        | Cell when h.flop_counts.(v) < 0 -> fail "cell %d has flops %d" v h.flop_counts.(v)
        | Pad when h.sizes.(v) <> 0 -> fail "pad %d has size %d" v h.sizes.(v)
        | Pad when h.flop_counts.(v) <> 0 -> fail "pad %d has flops %d" v h.flop_counts.(v)
        | Cell | Pad -> go (v + 1)
    in
    go 0
  in
  let check_pins () =
    let rec go e =
      if e >= m then Ok ()
      else
        let pins = h.net_pins.(e) in
        if Array.length pins = 0 then fail "net %d has no pins" e
        else if Array.exists (fun v -> v < 0 || v >= n) pins then
          fail "net %d has out-of-range pin" e
        else if
          (* each pin must list the net back *)
          Array.exists (fun v -> not (Array.exists (fun e' -> e' = e) h.node_nets.(v))) pins
        then fail "net %d missing from a pin's net list" e
        else go (e + 1)
    in
    go 0
  in
  let check_node_nets () =
    let rec go v =
      if v >= n then Ok ()
      else if
        Array.exists
          (fun e -> e < 0 || e >= m || not (Array.exists (fun u -> u = v) h.net_pins.(e)))
          h.node_nets.(v)
      then fail "node %d lists a net it is not a pin of" v
      else go (v + 1)
    in
    go 0
  in
  let check_pad_flags () =
    let rec go e =
      if e >= m then Ok ()
      else
        let expect = Array.exists (fun v -> h.kinds.(v) = Pad) h.net_pins.(e) in
        if expect <> h.net_pad.(e) then fail "net %d has stale pad flag" e
        else go (e + 1)
    in
    go 0
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  check_sizes () >>= check_pins >>= check_node_nets >>= check_pad_flags

let pp ppf h =
  Format.fprintf ppf "hypergraph: %d cells, %d pads, %d nets, total size %d"
    (num_cells h) (num_pads h) (num_nets h) (total_size h)

(* {2 Canonical digest}

   The canonical form orders nodes by name and nets by their sorted
   pin-name lists (ties broken by net name), so any node relabeling
   that keeps names stable — including the pad permutations of the
   test generators — and any reordering of the net list produce the
   same digest.  Names are length-prefixed before hashing so no
   concatenation of fields can collide with another record split. *)

let digest h =
  let buf = Buffer.create (4096 + (num_nodes h * 16)) in
  let add_str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let add_int i =
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  in
  add_str "fpart-hgraph/1";
  add_int (num_cells h);
  add_int (num_pads h);
  add_int (num_nets h);
  let node_records =
    fold_nodes
      (fun acc v ->
        let b = Buffer.create 32 in
        Buffer.add_string b (name h v);
        Buffer.add_char b '\x00';
        Buffer.add_string b
          (match kind h v with Cell -> "c" | Pad -> "p");
        Buffer.add_string b (string_of_int (size h v));
        Buffer.add_char b ',';
        Buffer.add_string b (string_of_int (flops h v));
        Buffer.contents b :: acc)
      [] h
  in
  List.iter
    (fun r -> add_str r)
    (List.sort String.compare node_records);
  let net_records =
    fold_nets
      (fun acc e ->
        let names =
          Array.to_list (Array.map (fun v -> name h v) (pins h e))
          |> List.sort String.compare
        in
        let b = Buffer.create 64 in
        List.iter
          (fun s ->
            Buffer.add_string b (string_of_int (String.length s));
            Buffer.add_char b ':';
            Buffer.add_string b s)
          names;
        Buffer.add_char b '\x00';
        Buffer.add_string b (net_name h e);
        Buffer.contents b :: acc)
      [] h
  in
  List.iter
    (fun r -> add_str r)
    (List.sort String.compare net_records);
  Stdlib.Digest.to_hex (Stdlib.Digest.string (Buffer.contents buf))
