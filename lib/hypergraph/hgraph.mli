(** Circuit hypergraphs.

    A digital circuit is a hypergraph [H = ({X, Y}, E)] following the
    problem definition of Krupnova & Saucier (DATE'99, section 2):

    - {b interior nodes} [X] ("cells") carry a positive size in target
      technology cells (CLBs);
    - {b terminal nodes} [Y] ("pads") model the primary I/Os of the
      circuit; they have size 0 and must also be assigned to devices,
      where each consumes one IOB pin;
    - {b nets} [E] are hyperedges over nodes.

    The structure is immutable once frozen from a {!Builder}; node and
    net identifiers are dense integers, which lets partitioning engines
    use plain arrays for all per-node and per-net state. *)

(** Node identifier: [0 .. num_nodes - 1]. *)
type node = int

(** Net identifier: [0 .. num_nets - 1]. *)
type net = int

(** Kind of a node: an interior logic cell or a terminal I/O pad. *)
type kind =
  | Cell  (** Interior node, occupies [size] CLBs. *)
  | Pad   (** Terminal node (primary I/O), size 0, occupies one IOB. *)

type t

(** {1 Construction} *)

module Builder : sig
  (** Accumulates nodes and nets, then {!freeze}s to an immutable
      {!Hgraph.t}.  Typical clients: the BLIF reader and the synthetic
      circuit generator. *)

  type hgraph := t
  type t

  (** [create ()] is an empty builder. *)
  val create : unit -> t

  (** [add_cell b ~name ~size] registers an interior node and returns
      its identifier.  [flops] (default 0) is the number of flip-flops
      the node occupies — the secondary resource of the paper's
      section 2 ("additional constraints ... number of flip-flops").
      @raise Invalid_argument if [size <= 0] or [flops < 0]. *)
  val add_cell : ?flops:int -> t -> name:string -> size:int -> node

  (** [add_pad b ~name] registers a terminal node (size 0). *)
  val add_pad : t -> name:string -> node

  (** [add_net b ~name pins] registers a net over the given nodes.
      Duplicate pins are collapsed.  Nets with fewer than one pin are
      rejected.  @raise Invalid_argument on an unknown node id. *)
  val add_net : t -> name:string -> node list -> net

  (** [num_nodes b] is the number of nodes registered so far. *)
  val num_nodes : t -> int

  (** [freeze b] produces the immutable hypergraph.  The builder can be
      reused afterwards (freezing copies all data). *)
  val freeze : t -> hgraph
end

(** {1 Accessors} *)

(** Total number of nodes (cells + pads). *)
val num_nodes : t -> int

(** Number of interior nodes. *)
val num_cells : t -> int

(** Number of terminal nodes. *)
val num_pads : t -> int

(** Number of nets. *)
val num_nets : t -> int

(** [kind h v] is the kind of node [v]. *)
val kind : t -> node -> kind

(** [is_pad h v] is [true] iff [v] is a terminal node. *)
val is_pad : t -> node -> bool

(** [size h v] is the size of node [v] in CLBs (0 for pads). *)
val size : t -> node -> int

(** [flops h v] is the number of flip-flops of node [v] (0 for pads). *)
val flops : t -> node -> int

(** [name h v] is the node's name (unique per builder input). *)
val name : t -> node -> string

(** [net_name h e] is the net's name. *)
val net_name : t -> net -> string

(** [pins h e] is the array of nodes on net [e].  Do not mutate. *)
val pins : t -> net -> node array

(** [net_degree h e] is [Array.length (pins h e)]. *)
val net_degree : t -> net -> int

(** [nets_of h v] is the array of nets incident to node [v].  Do not
    mutate. *)
val nets_of : t -> node -> net array

(** [node_degree h v] is the number of nets incident to [v]. *)
val node_degree : t -> node -> int

(** [total_size h] is the sum of all cell sizes ([S_0] in the paper). *)
val total_size : t -> int

(** [total_flops h] is the sum of all cell flip-flop counts. *)
val total_flops : t -> int

(** [max_node_degree h] is the largest number of nets on any node; 0 for
    a netless hypergraph.  Gain buckets size themselves from this. *)
val max_node_degree : t -> int

(** [max_net_degree h] is the largest pin count of any net. *)
val max_net_degree : t -> int

(** [net_has_pad h e] is [true] iff net [e] touches a terminal node. *)
val net_has_pad : t -> net -> bool

(** {1 Iteration} *)

(** [iter_nodes f h] applies [f] to every node id in increasing order. *)
val iter_nodes : (node -> unit) -> t -> unit

(** [iter_cells f h] applies [f] to every interior node id. *)
val iter_cells : (node -> unit) -> t -> unit

(** [iter_pads f h] applies [f] to every terminal node id. *)
val iter_pads : (node -> unit) -> t -> unit

(** [iter_nets f h] applies [f] to every net id in increasing order. *)
val iter_nets : (net -> unit) -> t -> unit

(** [fold_nodes f acc h] folds over node ids in increasing order. *)
val fold_nodes : ('acc -> node -> 'acc) -> 'acc -> t -> 'acc

(** [fold_nets f acc h] folds over net ids in increasing order. *)
val fold_nets : ('acc -> net -> 'acc) -> 'acc -> t -> 'acc

(** {1 Integrity} *)

(** [validate h] checks internal invariants (pin/net cross references,
    sizes, degree caches) and returns [Error msg] on the first violation.
    Used by tests and by the BLIF reader after construction. *)
val validate : t -> (unit, string) result

(** [pp] prints a short summary: node/net counts and total size. *)
val pp : Format.formatter -> t -> unit

(** {1 Canonical digest} *)

(** [digest h] is a hex digest of the hypergraph's canonical form:
    nodes ordered by name, nets ordered by their sorted pin-name lists.
    Invariant under any node relabeling that preserves names (e.g. a
    pad permutation) and under net reordering; sensitive to every
    structural change (sizes, flops, pin membership, added or removed
    nodes/nets).  This is the producer behind the [netlist_digest]
    field of run-ledger entries and the partition-service cache key. *)
val digest : t -> string
