module Hg = Hypergraph.Hgraph
module Csr = Hypergraph.Csr
module Matching = Cluster.Matching
module State = Partition.State
module Cost = Partition.Cost
module Obs = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Json = Fpart_obs.Json
module Selfcheck = Fpart_check.Selfcheck
module Oracle = Fpart_check.Oracle
module Config = Fpart.Config
module Driver = Fpart.Driver

type config = {
  coarsen_thresh : int;
  max_weight_frac : float;
  min_reduction : float;
  max_levels : int;
  coarse_runs : int;
  refine_passes : int;
  cycles : int;
}

let default_config =
  {
    coarsen_thresh = 160;
    max_weight_frac = 0.125;
    min_reduction = 1.1;
    max_levels = 24;
    coarse_runs = 3;
    refine_passes = 1;
    cycles = 1;
  }

type level_stat = {
  level : int;
  nodes : int;
  nets : int;
  cut_before : int;
  cut_after : int;
  value_before : Cost.value;
  value_after : Cost.value;
}

type result = {
  res : Driver.result;
  levels : int;
  coarsen_ratio : float;
  level_stats : level_stat list;
}

let c_levels = Obs.counter "mlevel.levels"
let c_refines = Obs.counter "mlevel.refines"

(* One rung of the hierarchy: the coarse graph produced by contracting
   the previous level, the memento to undo it, and the composed
   flat-node → this-level map for the oracle cross-check. *)
type level = {
  index : int;  (* 1-based; 0 is the original graph *)
  csr : Csr.t;
  memento : Csr.memento;
  flat_map : int array;
  hg_view : Hg.t Lazy.t;
}

(* Coarsen until the node count reaches [thresh] (pads never contract,
   so the threshold is on top of the pad count), the hierarchy hits
   [max_levels], or a matching pass stops pulling its weight.  Returns
   levels finest-first. *)
let coarsen_hierarchy mcfg ~max_w ~thresh ~seed ?within csr0 =
  let levels = ref [] in
  let csr = ref csr0 in
  let flat_map = ref (Array.init (Csr.num_nodes csr0) Fun.id) in
  let cur_within = ref within in
  let idx = ref 0 in
  let stop = ref false in
  while
    (not !stop) && !idx < mcfg.max_levels && Csr.num_nodes !csr > thresh
  do
    let fine_nodes = Csr.num_nodes !csr in
    let map, nc =
      Matching.compute ~policy:Matching.Pairs ~max_weight:max_w
        ?within:!cur_within
        ~seed:(seed + (0x9e37 * (!idx + 1)))
        !csr
    in
    if float_of_int fine_nodes /. float_of_int nc < mcfg.min_reduction then
      stop := true
    else begin
      let coarse, memento = Csr.contract !csr ~map ~coarse_nodes:nc in
      incr idx;
      Obs.incr c_levels;
      flat_map := Array.map (fun c -> map.(c)) !flat_map;
      levels :=
        {
          index = !idx;
          csr = coarse;
          memento;
          flat_map = !flat_map;
          hg_view = lazy (Csr.to_hgraph coarse);
        }
        :: !levels;
      (match !cur_within with
      | Some w ->
        let w' = Array.make nc (-1) in
        Array.iteri (fun v c -> w'.(c) <- w.(v)) map;
        cur_within := Some w'
      | None -> ());
      if Obs.enabled () then
        Recorder.event
          [
            ("type", Json.Str "mlevel_coarsen");
            ("level", Json.Int !idx);
            ("nodes", Json.Int nc);
            ("nets", Json.Int (Csr.num_nets coarse));
            ( "ratio",
              Json.Float (float_of_int fine_nodes /. float_of_int nc) );
          ];
      csr := coarse
    end
  done;
  List.rev !levels

(* The contraction-exactness cross-check (--selfcheck cheap): project
   this level's partition all the way down and require the coarse
   aggregates to equal the flat oracle's, as equalities. *)
let crosscheck base ~hg ~k ~lvl_index ~flat_map st =
  if Selfcheck.at_least base.Config.selfcheck Selfcheck.Cheap then begin
    Selfcheck.tick ();
    let a = State.assignment st in
    let o = Oracle.recompute hg ~k ~assign:(fun v -> a.(flat_map.(v))) in
    let where = Printf.sprintf "mlevel.contract.level%d" lvl_index in
    if o.Oracle.cut <> State.cut_size st then
      Selfcheck.record ~where
        (Printf.sprintf "cut: coarse %d, projected flat %d"
           (State.cut_size st) o.Oracle.cut);
    for b = 0 to k - 1 do
      if o.Oracle.sizes.(b) <> State.size_of st b then
        Selfcheck.record ~where
          (Printf.sprintf "block %d size: coarse %d, projected flat %d" b
             (State.size_of st b) o.Oracle.sizes.(b));
      if o.Oracle.pins.(b) <> State.pins_of st b then
        Selfcheck.record ~where
          (Printf.sprintf "block %d pins: coarse %d, projected flat %d" b
             (State.pins_of st b) o.Oracle.pins.(b))
    done
  end

(* Refine one level: seed a fresh state (and thus gain buckets) from
   the projected assignment, run the bounded flat improvement, record
   the convergence point.  Returns the refined assignment. *)
let refine_level mcfg base ~ctx ~hg ~k ~stats ~lvl_index ~flat_map lvl_hg
    assign =
  Obs.incr c_refines;
  let refine_cfg =
    (* The projected partition is already near its pass optimum, so a
       full sweep rewinds almost every move; the paper's §5 drift abort
       caps that tail.  Scale-aware and deterministic, so --jobs
       bit-identity is unaffected; an explicit drift_limit wins. *)
    let drift =
      match base.Config.drift_limit with
      | Some _ as d -> d
      | None -> Some (max 1000 (Hg.num_cells lvl_hg / 50))
    in
    {
      base with
      Config.max_passes = mcfg.refine_passes;
      Config.cluster_size = None;
      Config.drift_limit = drift;
    }
  in
  let st = State.create lvl_hg ~k ~assign:(fun v -> assign.(v)) in
  crosscheck base ~hg ~k ~lvl_index ~flat_map st;
  let eval st =
    Cost.evaluate base.Config.cost ctx st ~remainder:None ~step_k:k
  in
  let cut_before = State.cut_size st in
  let value_before = eval st in
  let sp = Recorder.span_begin "mlevel.refine" in
  Driver.refine refine_cfg ctx st;
  let cut_after = State.cut_size st in
  let value_after = eval st in
  let nodes = Hg.num_nodes lvl_hg and nets = Hg.num_nets lvl_hg in
  Recorder.span_end sp
    ~attrs:
      [
        ("level", Json.Int lvl_index);
        ("nodes", Json.Int nodes);
        ("cut_before", Json.Int cut_before);
        ("cut_after", Json.Int cut_after);
      ];
  if Obs.enabled () then
    Recorder.event
      [
        ("type", Json.Str "mlevel_level");
        ("level", Json.Int lvl_index);
        ("nodes", Json.Int nodes);
        ("nets", Json.Int nets);
        ("cut_before", Json.Int cut_before);
        ("cut_after", Json.Int cut_after);
        ("value_before", Cost.value_to_json value_before);
        ("value_after", Cost.value_to_json value_after);
      ];
  stats :=
    { level = lvl_index; nodes; nets; cut_before; cut_after; value_before;
      value_after }
    :: !stats;
  State.assignment st

(* Unwind a hierarchy: optionally refine the coarsest level itself
   (V-cycle repeats), then project memento by memento, refining at
   each finer level down to and including the flat graph. *)
let descend mcfg base ~ctx ~hg ~levels ~k ~stats ~refine_top assign_top =
  let arr = Array.of_list levels in
  let t = Array.length arr in
  let identity = lazy (Array.init (Hg.num_nodes hg) Fun.id) in
  let assign = ref assign_top in
  if refine_top && t > 0 then begin
    let top = arr.(t - 1) in
    assign :=
      refine_level mcfg base ~ctx ~hg ~k ~stats ~lvl_index:top.index
        ~flat_map:top.flat_map (Lazy.force top.hg_view) !assign
  end;
  for i = t - 1 downto 0 do
    let lvl = arr.(i) in
    let fine_assign = Csr.project lvl.memento !assign in
    let fine_hg, fine_map, fine_index =
      if i = 0 then (hg, Lazy.force identity, 0)
      else
        (Lazy.force arr.(i - 1).hg_view, arr.(i - 1).flat_map, arr.(i - 1).index)
    in
    assign :=
      refine_level mcfg base ~ctx ~hg ~k ~stats ~lvl_index:fine_index
        ~flat_map:fine_map fine_hg fine_assign
  done;
  !assign

let run ?(config = default_config) ?(base = Config.default) hg device =
  let t0 = Sys.time () in
  let sp_run = Recorder.span_begin "mlevel.run" in
  let delta = Config.delta_for base device in
  let ctx = Cost.context_of device ~delta hg in
  let m = ctx.Cost.m_lower in
  let csr0 = Csr.of_hgraph hg in
  let n0 = Csr.num_nodes csr0 in
  (* pads never contract, so the stop threshold sits on top of them;
     12·M keeps enough resolution for an M-way coarse partition *)
  let thresh =
    max config.coarsen_thresh (12 * m) + Csr.num_pads csr0
  in
  let max_w =
    max 1
      (int_of_float (config.max_weight_frac *. float_of_int ctx.Cost.s_max))
  in
  let sp_c = Recorder.span_begin "mlevel.coarsen" in
  let levels =
    coarsen_hierarchy config ~max_w ~thresh ~seed:base.Config.seed csr0
  in
  let nlevels = List.length levels in
  let top = match List.rev levels with l :: _ -> Some l | [] -> None in
  let top_nodes =
    match top with Some l -> Csr.num_nodes l.csr | None -> n0
  in
  let coarsen_ratio = float_of_int n0 /. float_of_int top_nodes in
  Recorder.span_end sp_c
    ~attrs:
      [
        ("levels", Json.Int nlevels);
        ("nodes", Json.Int top_nodes);
        ("ratio", Json.Float coarsen_ratio);
      ];
  let top_hg = match top with Some l -> Lazy.force l.hg_view | None -> hg in
  let sp_i = Recorder.span_begin "mlevel.initial" in
  let coarse_cfg = { base with Config.cluster_size = None } in
  let r0 =
    Driver.run_best ~config:coarse_cfg ~runs:config.coarse_runs top_hg device
  in
  let k = r0.Driver.k in
  Recorder.span_end sp_i
    ~attrs:
      [
        ("nodes", Json.Int top_nodes);
        ("k", Json.Int k);
        ("feasible", Json.Bool r0.Driver.feasible);
        ("runs", Json.Int config.coarse_runs);
      ];
  let stats = ref [] in
  let sp_u = Recorder.span_begin "mlevel.uncoarsen" in
  let assign =
    ref
      (descend config base ~ctx ~hg ~levels ~k ~stats ~refine_top:false
         r0.Driver.assignment)
  in
  Recorder.span_end sp_u ~attrs:[ ("cycle", Json.Int 1) ];
  for cycle = 2 to config.cycles do
    let levels' =
      coarsen_hierarchy config ~max_w ~thresh
        ~seed:(base.Config.seed + (0x51 * cycle))
        ~within:!assign csr0
    in
    match List.rev levels' with
    | [] -> ()
    | top' :: _ ->
      (* clusters respect blocks, so the coarse seed partition is just
         the flat one read through the composed map *)
      let top_assign = Array.make (Csr.num_nodes top'.csr) 0 in
      Array.iteri (fun v c -> top_assign.(c) <- !assign.(v)) top'.flat_map;
      let sp = Recorder.span_begin "mlevel.uncoarsen" in
      assign :=
        descend config base ~ctx ~hg ~levels:levels' ~k ~stats
          ~refine_top:true top_assign;
      Recorder.span_end sp ~attrs:[ ("cycle", Json.Int cycle) ]
  done;
  let st = State.create hg ~k ~assign:(fun v -> !assign.(v)) in
  if Selfcheck.at_least base.Config.selfcheck Selfcheck.Cheap then
    ignore (Selfcheck.validate ~where:"mlevel.final" st);
  let feasible = Cost.classify ctx st = Cost.Feasible in
  let res =
    {
      r0 with
      Driver.assignment = State.assignment st;
      feasible;
      cut = State.cut_size st;
      total_pins = State.total_pins st;
      m_lower = m;
      delta;
      cpu_seconds = Sys.time () -. t0;
    }
  in
  Recorder.span_end sp_run
    ~attrs:
      [
        ("k", Json.Int k);
        ("feasible", Json.Bool feasible);
        ("levels", Json.Int nlevels);
        ("ratio", Json.Float coarsen_ratio);
      ];
  { res; levels = nlevels; coarsen_ratio; level_stats = List.rev !stats }
