(** Multilevel V-cycle engine: coarsen → initial partition → FPART
    refinement.

    The flat FPART driver explores a few thousand cells comfortably,
    but the 10^5–10^6-cell regime needs the multilevel shape that
    superseded flat FM (hMETIS; Heuer/Sanders/Schlag survey it as the
    standard frame): contract the circuit through a hierarchy of
    matchings until it is small, solve the small problem well, then
    project back level by level, refining at each.

    {2 Phases}

    1. {b Coarsening.}  Heavy-edge / cone-aware matching
       ({!Cluster.Matching}, [Pairs] policy) on a frozen CSR view
       ({!Hypergraph.Csr}), level after level.  Contracted-vertex
       weights are capped at [max_weight_frac · S_MAX] so a coarse node
       always fits a device and coarse solutions stay projectable.
       Stops at [coarsen_thresh] nodes (scaled up to [12·M] when the
       device lower bound [M] is large), after [max_levels], or when a
       level shrinks by less than [min_reduction].

    2. {b Initial partition.}  The existing multi-start
       {!Fpart.Driver.run_best} on the coarsest graph —
       [coarse_runs] seeds sharded across [Fpart_exec.Pool] domains
       ([base.jobs]), bit-identical at any job count.

    3. {b Uncoarsening + refinement.}  Each contraction memento is
       unwound in turn; the projected partition re-seeds the gain
       buckets and a bounded FPART improvement ({!Fpart.Driver.refine}
       with [refine_passes]) runs at every level.  Because contraction
       is exact (pads stay singletons; a net survives iff it spans ≥ 2
       coarse nodes or touches a pad), block sizes [S_i], pin counts
       [T_i] and the cut are {e equal} between a coarse partition and
       its flat projection — coarse feasibility {e is} flat
       feasibility, and under [--selfcheck cheap] the engine
       cross-checks that equality against [Fpart_check.Oracle] at
       every level.

    Additional V-cycles ([cycles > 1]) re-coarsen with the matching
    restricted to the current blocks ([~within]) and refine back down.

    Every phase is wrapped in [Fpart_obs.Recorder] spans
    ([mlevel.run/coarsen/initial/uncoarsen/refine]) with coarsening
    ratios and per-level cut/value convergence events. *)

type config = {
  coarsen_thresh : int;
      (** Stop coarsening at this many nodes (before the [12·M]
          floor).  Default 160. *)
  max_weight_frac : float;
      (** Contracted-vertex weight cap as a fraction of the derated
          device capacity [S_MAX].  Default 0.125. *)
  min_reduction : float;
      (** Stop when a level shrinks by less than this factor (matching
          has collapsed, e.g. on a star netlist).  Default 1.1. *)
  max_levels : int;  (** Hierarchy depth bound.  Default 24. *)
  coarse_runs : int;
      (** Multi-start seeds for the initial partition.  Default 3. *)
  refine_passes : int;
      (** [Sanchis.max_passes] bound per refinement level.  Default 2. *)
  cycles : int;
      (** V-cycles: 1 = plain coarsen/solve/refine; each extra cycle
          re-coarsens within the current blocks and refines back down.
          Default 1. *)
}

val default_config : config

(** Refinement telemetry for one uncoarsening level (also emitted as
    [{"type":"mlevel_level",...}] recorder events). *)
type level_stat = {
  level : int;  (** 0 = the original flat graph. *)
  nodes : int;
  nets : int;
  cut_before : int;   (** After projection, before refinement. *)
  cut_after : int;
  value_before : Partition.Cost.value;
  value_after : Partition.Cost.value;
}

type result = {
  res : Fpart.Driver.result;
      (** Final flat partition; [trace] is the coarse-level FPART
          trace, [iterations] its iteration count. *)
  levels : int;  (** Coarsening levels built (0 = never coarsened). *)
  coarsen_ratio : float;
      (** Original nodes / coarsest nodes (≥ 1). *)
  level_stats : level_stat list;
      (** One per refinement, coarsest first, across all cycles. *)
}

(** [run ?config ?base hg device] partitions [hg] onto copies of
    [device].  [base] carries the FPART knobs (seed, jobs, selfcheck,
    cost, engine discipline); [base.cluster_size] is ignored — the
    hierarchy replaces the single clustering pre-pass.  Deterministic
    for a given [(config, base.seed)] and bit-identical across
    [base.jobs]. *)
val run :
  ?config:config ->
  ?base:Fpart.Config.t ->
  Hypergraph.Hgraph.t ->
  Device.t ->
  result
