module Hg = Hypergraph.Hgraph

type cell = {
  cell_name : string;
  size : int;
  flops : int;
}

type net = {
  net_name : string;
  pins : string list;
}

type t = {
  remove_nodes : string list;
  remove_nets : string list;
  add_cells : cell list;
  add_pads : string list;
  add_nets : net list;
}

let empty =
  {
    remove_nodes = [];
    remove_nets = [];
    add_cells = [];
    add_pads = [];
    add_nets = [];
  }

let is_empty d =
  d.remove_nodes = [] && d.remove_nets = [] && d.add_cells = []
  && d.add_pads = [] && d.add_nets = []

let summary d =
  Printf.sprintf "-%d nodes -%d nets +%d cells +%d pads +%d nets"
    (List.length d.remove_nodes)
    (List.length d.remove_nets)
    (List.length d.add_cells) (List.length d.add_pads)
    (List.length d.add_nets)

let apply d hg =
  let exception Fail of string in
  try
    let removed_nodes = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace removed_nodes n ()) d.remove_nodes;
    let removed_nets = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace removed_nets n ()) d.remove_nets;
    (* every removal must name something present — a silent no-op here
       usually means the request paired the delta with the wrong base *)
    let node_names = Hashtbl.create (Hg.num_nodes hg * 2) in
    Hg.iter_nodes (fun v -> Hashtbl.replace node_names (Hg.name hg v) v) hg;
    List.iter
      (fun n ->
        if not (Hashtbl.mem node_names n) then
          raise (Fail (Printf.sprintf "remove node %S: no such node" n)))
      d.remove_nodes;
    let net_names = Hashtbl.create (Hg.num_nets hg * 2) in
    Hg.iter_nets (fun e -> Hashtbl.replace net_names (Hg.net_name hg e) ()) hg;
    List.iter
      (fun n ->
        if not (Hashtbl.mem net_names n) then
          raise (Fail (Printf.sprintf "remove net %S: no such net" n)))
      d.remove_nets;
    let b = Hg.Builder.create () in
    let ids = Hashtbl.create (Hg.num_nodes hg * 2) in
    let add_named name id = Hashtbl.replace ids name id in
    Hg.iter_nodes
      (fun v ->
        let name = Hg.name hg v in
        if not (Hashtbl.mem removed_nodes name) then
          let id =
            if Hg.is_pad hg v then Hg.Builder.add_pad b ~name
            else
              Hg.Builder.add_cell b ~flops:(Hg.flops hg v) ~name
                ~size:(Hg.size hg v)
          in
          add_named name id)
      hg;
    let check_fresh what name =
      if Hashtbl.mem ids name then
        raise
          (Fail (Printf.sprintf "add %s %S: name already in circuit" what name))
    in
    List.iter
      (fun c ->
        check_fresh "cell" c.cell_name;
        if c.size <= 0 then
          raise (Fail (Printf.sprintf "add cell %S: size must be > 0" c.cell_name));
        if c.flops < 0 then
          raise (Fail (Printf.sprintf "add cell %S: flops must be >= 0" c.cell_name));
        add_named c.cell_name
          (Hg.Builder.add_cell b ~flops:c.flops ~name:c.cell_name ~size:c.size))
      d.add_cells;
    List.iter
      (fun name ->
        check_fresh "pad" name;
        add_named name (Hg.Builder.add_pad b ~name))
      d.add_pads;
    Hg.iter_nets
      (fun e ->
        let name = Hg.net_name hg e in
        if not (Hashtbl.mem removed_nets name) then begin
          let pins =
            Array.to_list (Hg.pins hg e)
            |> List.filter_map (fun v -> Hashtbl.find_opt ids (Hg.name hg v))
          in
          (* a net whose every pin was removed disappears with them *)
          if pins <> [] then ignore (Hg.Builder.add_net b ~name pins)
        end)
      hg;
    List.iter
      (fun n ->
        if n.pins = [] then
          raise (Fail (Printf.sprintf "add net %S: no pins" n.net_name));
        let pins =
          List.map
            (fun p ->
              match Hashtbl.find_opt ids p with
              | Some id -> id
              | None ->
                raise
                  (Fail
                     (Printf.sprintf "add net %S: unknown pin %S" n.net_name p)))
            n.pins
        in
        ignore (Hg.Builder.add_net b ~name:n.net_name pins))
      d.add_nets;
    Ok (Hg.Builder.freeze b)
  with Fail msg -> Error msg

(* --- text form ----------------------------------------------------- *)

let to_string d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# fpart delta\n";
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "remove node %s\n" n))
    d.remove_nodes;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "remove net %s\n" n))
    d.remove_nets;
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "add cell %s %d %d\n" c.cell_name c.size c.flops))
    d.add_cells;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "add pad %s\n" n))
    d.add_pads;
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "add net %s %s\n" n.net_name (String.concat " " n.pins)))
    d.add_nets;
  Buffer.contents buf

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let d = ref empty in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec go lineno = function
    | [] ->
      let d = !d in
      (* accumulators are reversed by construction *)
      Ok
        {
          remove_nodes = List.rev d.remove_nodes;
          remove_nets = List.rev d.remove_nets;
          add_cells = List.rev d.add_cells;
          add_pads = List.rev d.add_pads;
          add_nets = List.rev d.add_nets;
        }
    | line :: rest -> (
      let line = String.trim line in
      let tokens =
        String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> go (lineno + 1) rest
      | tok :: _ when tok.[0] = '#' -> go (lineno + 1) rest
      | [ "remove"; "node"; n ] ->
        d := { !d with remove_nodes = n :: !d.remove_nodes };
        go (lineno + 1) rest
      | [ "remove"; "net"; n ] ->
        d := { !d with remove_nets = n :: !d.remove_nets };
        go (lineno + 1) rest
      | "add" :: "cell" :: name :: size :: flops -> (
        let flops =
          match flops with
          | [] -> Some 0
          | [ f ] -> int_of_string_opt f
          | _ -> None
        in
        match (int_of_string_opt size, flops) with
        | Some size, Some flops when size > 0 && flops >= 0 ->
          d :=
            { !d with add_cells = { cell_name = name; size; flops } :: !d.add_cells };
          go (lineno + 1) rest
        | _ -> err lineno "bad add-cell line (want: add cell NAME SIZE [FLOPS])")
      | [ "add"; "pad"; n ] ->
        d := { !d with add_pads = n :: !d.add_pads };
        go (lineno + 1) rest
      | "add" :: "net" :: name :: (_ :: _ as pins) ->
        d := { !d with add_nets = { net_name = name; pins } :: !d.add_nets };
        go (lineno + 1) rest
      | _ -> err lineno (Printf.sprintf "unrecognised line %S" line))
  in
  go 1 lines

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
