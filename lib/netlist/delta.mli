(** Netlist deltas for ECO (engineering change order) flows.

    A delta is a small edit script against a frozen hypergraph: remove
    nodes (cells or pads) and nets by name, add new cells/pads/nets.
    Applying a delta rebuilds a fresh hypergraph — the base is immutable
    — so a partition service can re-legalize a previous assignment on
    the edited circuit instead of re-partitioning from scratch.

    The text form is line-oriented, in the spirit of {!Partfile}:

    {v
    # fpart delta
    remove node u123
    remove net clk_gated
    add cell u900 4 1
    add pad new_io
    add net n_eco u900 new_io u17
    v}

    [add cell NAME SIZE [FLOPS]]; removing a node silently drops it from
    its surviving nets (a net left with no pins disappears). *)

type cell = {
  cell_name : string;
  size : int;
  flops : int;
}

type net = {
  net_name : string;
  pins : string list;  (** Node names; must exist after removals/adds. *)
}

type t = {
  remove_nodes : string list;
  remove_nets : string list;
  add_cells : cell list;
  add_pads : string list;
  add_nets : net list;
}

val empty : t

val is_empty : t -> bool

(** [summary d] is a short human-readable count string, e.g.
    ["-2 nodes -1 nets +3 cells +1 pads +2 nets"]. *)
val summary : t -> string

(** [apply d h] rebuilds [h] with the delta applied.  Surviving nodes
    keep their names, sizes and flops; surviving nets keep their names
    and lose removed pins.  [Error msg] (naming the offending item) on:
    removing an unknown node/net, adding a node whose name collides
    with a surviving one, or adding a net over an unknown pin name. *)
val apply : t -> Hypergraph.Hgraph.t -> (Hypergraph.Hgraph.t, string) result

(** [parse_string s] parses the text form; [Error msg] carries a
    1-based line number. *)
val parse_string : string -> (t, string) result

val parse_file : string -> (t, string) result

val to_string : t -> string
