module Hg = Hypergraph.Hgraph
module Rng = Prng.Splitmix

type spec = {
  gen_name : string;
  cells : int;
  pads : int;
  rent : float;
  leaf_size : int;
  wiring : float;
  max_fanout : int;
  flop_ratio : float;
  seed : int;
}

let default_spec ~name ~cells ~pads ~seed =
  {
    gen_name = name;
    cells;
    pads;
    rent = 0.6;
    leaf_size = 8;
    wiring = 0.27;
    max_fanout = 12;
    flop_ratio = 0.0;
    seed;
  }

let rent_spec ~name ~cells ~seed =
  if cells < 64 then invalid_arg "Generator.rent_spec: cells < 64";
  (* Rent's terminal rule at the package level: |Y| = t · cells^p with
     t = 3 (avg pins per cell) and p = 0.5 — the I/O exponent sits
     below the internal wiring exponent (0.6) on real designs, and
     keeps the pad count (hence the pin lower bound) sane at 10^6
     cells. *)
  let pads = max 16 (int_of_float (ceil (3.0 *. sqrt (float_of_int cells)))) in
  {
    gen_name = name;
    cells;
    pads;
    rent = 0.6;
    leaf_size = 8;
    wiring = 0.27;
    max_fanout = 12;
    flop_ratio = 0.0;
    seed;
  }

(* Pick [k] distinct values from the integer range [lo, hi); [k] must not
   exceed the range width.  Rejection sampling is fine: k is tiny. *)
let pick_distinct rng lo hi k =
  let width = hi - lo in
  assert (k <= width);
  let seen = Hashtbl.create (k * 2) in
  let out = ref [] in
  let n = ref 0 in
  while !n < k do
    let v = lo + Rng.int rng width in
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      out := v :: !out;
      incr n
    end
  done;
  !out

(* Sample a net degree: 2 + geometric tail, capped.  Mean ≈ 3. *)
let sample_degree rng max_fanout =
  let d = 1 + Rng.geometric rng 0.55 in
  min d (max max_fanout 2)

let generate spec =
  if spec.cells < 2 then invalid_arg "Generator.generate: cells < 2";
  if spec.pads < 1 then invalid_arg "Generator.generate: pads < 1";
  let rng = Rng.create spec.seed in
  let b = Hg.Builder.create () in
  let cell_id = Array.make spec.cells 0 in
  for i = 0 to spec.cells - 1 do
    let flops = if Rng.float rng < spec.flop_ratio then 1 else 0 in
    cell_id.(i) <-
      Hg.Builder.add_cell b ~flops
        ~name:(Printf.sprintf "%s_c%d" spec.gen_name i)
        ~size:1
  done;
  let net_count = ref 0 in
  let fresh_net_name () =
    incr net_count;
    Printf.sprintf "%s_n%d" spec.gen_name !net_count
  in
  let add_net pins =
    match List.sort_uniq compare pins with
    | _ :: _ :: _ as pins -> ignore (Hg.Builder.add_net b ~name:(fresh_net_name ()) pins)
    | _ -> ()
  in
  (* Recursive bisection over the index range [lo, hi): leaf clusters get
     local nets; each internal level gets Rent-scaled crossing nets whose
     pins are drawn from both halves. *)
  let rec wire lo hi =
    let s = hi - lo in
    if s <= spec.leaf_size then begin
      (* roughly one local net per cell, 2..max pins inside the leaf *)
      for _ = 1 to max 1 s do
        let d = min (sample_degree rng spec.max_fanout) s in
        if d >= 2 then add_net (List.map (fun i -> cell_id.(i)) (pick_distinct rng lo hi d))
      done
    end
    else begin
      let mid = lo + (s / 2) in
      wire lo mid;
      wire mid hi;
      let crossing =
        int_of_float (ceil (spec.wiring *. (float_of_int s ** spec.rent)))
      in
      for _ = 1 to max 1 crossing do
        let d = min (sample_degree rng spec.max_fanout) s in
        if d >= 2 then begin
          (* at least one pin on each side so the net really crosses *)
          let left = lo + Rng.int rng (mid - lo) in
          let right = mid + Rng.int rng (hi - mid) in
          let rest =
            if d > 2 then pick_distinct rng lo hi (d - 2) else []
          in
          add_net (cell_id.(left) :: cell_id.(right) :: List.map (fun i -> cell_id.(i)) rest)
        end
      done
    end
  in
  wire 0 spec.cells;
  (* Pads: even ids are inputs (fan out to 2-5 cells clustered in one
     region), odd ids are outputs (driven by a single cell, plus the pad). *)
  for p = 0 to spec.pads - 1 do
    let pad = Hg.Builder.add_pad b ~name:(Printf.sprintf "%s_io%d" spec.gen_name p) in
    if p land 1 = 0 then begin
      let fanout = min (2 + Rng.int rng 4) spec.cells in
      (* Input cones are tightly local in mapped netlists: the fanout
         stays inside one leaf-size neighbourhood so pad nets survive
         partitioning uncut (this is what makes the I/O-critical MCNC
         circuits partitionable at their pin-derived lower bounds). *)
      let window = max fanout (min spec.cells (2 * spec.leaf_size)) in
      let start = Rng.int rng (max 1 (spec.cells - window)) in
      let sinks =
        pick_distinct rng start (min spec.cells (start + window)) fanout
      in
      add_net (pad :: List.map (fun i -> cell_id.(i)) sinks)
    end
    else begin
      let driver = Rng.int rng spec.cells in
      add_net [ pad; cell_id.(driver) ]
    end
  done;
  let h = Hg.Builder.freeze b in
  (* Stitch disconnected components together with 2-pin nets so that BFS
     seed selection (section 3.2) works on the whole circuit. *)
  let comp, count = Hypergraph.Traversal.components h in
  if count <= 1 then h
  else begin
    let b2 = Hg.Builder.create () in
    (* Rebuild: copy nodes and nets, then add stitches. *)
    let n = Hg.num_nodes h in
    for v = 0 to n - 1 do
      ignore
        (match Hg.kind h v with
        | Hg.Cell ->
          Hg.Builder.add_cell b2 ~flops:(Hg.flops h v) ~name:(Hg.name h v)
            ~size:(Hg.size h v)
        | Hg.Pad -> Hg.Builder.add_pad b2 ~name:(Hg.name h v))
    done;
    Hg.iter_nets
      (fun e ->
        ignore
          (Hg.Builder.add_net b2 ~name:(Hg.net_name h e)
             (Array.to_list (Hg.pins h e))))
      h;
    (* one representative cell (or pad) per component *)
    let rep = Array.make count (-1) in
    for v = n - 1 downto 0 do
      if not (Hg.is_pad h v) || rep.(comp.(v)) < 0 then rep.(comp.(v)) <- v
    done;
    for c = 1 to count - 1 do
      ignore
        (Hg.Builder.add_net b2
           ~name:(Printf.sprintf "%s_stitch%d" spec.gen_name c)
           [ rep.(0); rep.(c) ])
    done;
    Hg.Builder.freeze b2
  end
