(** Synthetic clustered circuit generator.

    The MCNC Partitioning93 benchmark netlists used in the paper are not
    redistributable here, so experiments run on surrogate circuits
    produced by this generator (see DESIGN.md, "Substitutions").  A
    surrogate matches a real circuit's published interface exactly — the
    number of terminal nodes (IOBs) and the number of interior cells
    (CLBs) from Table 1 — and approximates its internal structure:

    - {b locality}: cells are organised in a recursive-bisection
      hierarchy; most nets connect cells inside a small cluster, and the
      number of nets crossing a cluster of size [s] scales like
      [s^rent] (Rent's rule), so recursive partitioners find natural cut
      lines the same way they do on real netlists;
    - {b fanout}: net degrees follow a geometric-ish distribution with
      mean ≈ 3 pins and a bounded tail, like mapped LUT netlists;
    - {b I/O structure}: input pads fan out to a handful of cells in one
      region; output pads are driven by a single cell.

    Generation is deterministic given [seed]. *)

type spec = {
  gen_name : string;   (** Circuit name (used for node/net names). *)
  cells : int;         (** Number of interior nodes, each of size 1. *)
  pads : int;          (** Number of terminal nodes. *)
  rent : float;        (** Rent exponent for inter-cluster wiring, in (0,1). *)
  leaf_size : int;     (** Cluster size at the bottom of the hierarchy. *)
  wiring : float;      (** Inter-cluster nets per [s^rent] unit (densities). *)
  max_fanout : int;    (** Hard cap on net degree. *)
  flop_ratio : float;
      (** Fraction of cells carrying one flip-flop (sequential density;
          0 for combinational circuits). *)
  seed : int;          (** PRNG seed. *)
}

(** [default_spec ~name ~cells ~pads ~seed] fills the structural knobs
    with values calibrated to give avg net degree ≈ 3 and a Rent
    exponent ≈ 0.6 (typical of the MCNC suite). *)
val default_spec : name:string -> cells:int -> pads:int -> seed:int -> spec

(** [rent_spec ~name ~cells ~seed] is the Rent-rule family for the
    multilevel engine's scale regime (10^5–10^6 cells): the pad count
    is derived from Rent's terminal rule [|Y| = 3 · cells^0.5] instead
    of being pinned to a published interface, and the structural knobs
    match {!default_spec}.  The CLI accepts it as
    [--generate rent:CELLS].  @raise Invalid_argument if
    [cells < 64]. *)
val rent_spec : name:string -> cells:int -> seed:int -> spec

(** [generate spec] builds the circuit.  The result is connected, has
    exactly [spec.cells] interior nodes of size 1 and [spec.pads]
    terminal nodes, and every net has between 2 and [spec.max_fanout]
    pins.  @raise Invalid_argument if [cells < 2] or [pads < 1]. *)
val generate : spec -> Hypergraph.Hgraph.t
