module Hg = Hypergraph.Hgraph

type t = {
  circuit : string;
  delta : float;
  block_devices : string array;
  assignment : (string * int) list;
  node_lines : int list;
}

(* Validating constructor: every failure names the offending cell and
   its node index so a serving loop can report the mismatch (the
   classic one: an ECO-delta'd netlist paired with a stale partition)
   per-request instead of aborting the process. *)
let of_assignment_checked hg ~circuit ~delta ~block_devices ~assignment =
  let n = Hg.num_nodes hg in
  if Array.length assignment <> n then
    Error
      (Printf.sprintf
         "assignment covers %d node(s) but circuit %S has %d — netlist and \
          partition are out of sync"
         (Array.length assignment) circuit n)
  else begin
    let k = Array.length block_devices in
    let bad = ref None in
    Array.iteri
      (fun v b ->
        if !bad = None && (b < 0 || b >= k) then
          bad :=
            Some
              (Printf.sprintf
                 "node %S (index %d) assigned to block %d outside [0, %d)"
                 (Hg.name hg v) v b k))
      assignment;
    match !bad with
    | Some e -> Error e
    | None ->
      let assignment_list =
        Hg.fold_nodes (fun acc v -> (Hg.name hg v, assignment.(v)) :: acc) [] hg
        |> List.rev
      in
      Ok { circuit; delta; block_devices; assignment = assignment_list; node_lines = [] }
  end

let of_assignment hg ~circuit ~delta ~block_devices ~assignment =
  match of_assignment_checked hg ~circuit ~delta ~block_devices ~assignment with
  | Ok t -> t
  | Error e -> invalid_arg ("Partfile.of_assignment: " ^ e)

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# fpart partition\n";
  Buffer.add_string buf (Printf.sprintf "circuit %s\n" t.circuit);
  Buffer.add_string buf (Printf.sprintf "delta %.4f\n" t.delta);
  Buffer.add_string buf (Printf.sprintf "blocks %d\n" (Array.length t.block_devices));
  Array.iteri
    (fun i d -> Buffer.add_string buf (Printf.sprintf "block %d device %s\n" i d))
    t.block_devices;
  List.iter
    (fun (name, b) -> Buffer.add_string buf (Printf.sprintf "node %s %d\n" name b))
    t.assignment;
  Buffer.contents buf

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let circuit = ref None in
  let delta = ref 1.0 in
  let blocks = ref None in
  let devices : (int * string) list ref = ref [] in
  let nodes = ref [] in
  let node_ls = ref [] in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec go lineno = function
    | [] -> (
      match (!circuit, !blocks) with
      | None, _ -> Error "missing 'circuit' line"
      | _, None -> Error "missing 'blocks' line"
      | Some c, Some k ->
        let block_devices = Array.make k "?" in
        List.iter
          (fun (i, d) -> if i >= 0 && i < k then block_devices.(i) <- d)
          !devices;
        Ok
          {
            circuit = c;
            delta = !delta;
            block_devices;
            assignment = List.rev !nodes;
            node_lines = List.rev !node_ls;
          })
    | line :: rest -> (
      let line = String.trim line in
      let tokens =
        String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> go (lineno + 1) rest
      | tok :: _ when tok.[0] = '#' -> go (lineno + 1) rest
      | [ "circuit"; name ] ->
        circuit := Some name;
        go (lineno + 1) rest
      | [ "delta"; d ] -> (
        match float_of_string_opt d with
        | Some f ->
          delta := f;
          go (lineno + 1) rest
        | None -> err lineno "bad delta")
      | [ "blocks"; k ] -> (
        match int_of_string_opt k with
        | Some k when k >= 1 ->
          blocks := Some k;
          go (lineno + 1) rest
        | _ -> err lineno "bad block count")
      | [ "block"; i; "device"; d ] -> (
        match int_of_string_opt i with
        | Some i ->
          devices := (i, d) :: !devices;
          go (lineno + 1) rest
        | None -> err lineno "bad block line")
      | [ "node"; name; b ] -> (
        match int_of_string_opt b with
        | Some b ->
          nodes := (name, b) :: !nodes;
          node_ls := lineno :: !node_ls;
          go (lineno + 1) rest
        | None -> err lineno "bad node line")
      | _ -> err lineno (Printf.sprintf "unrecognised line %S" line))
  in
  go 1 lines

let write_file path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

(* Position of the [i]-th assignment entry for error messages: the
   original file line when the value came from the parser, the entry
   ordinal otherwise. *)
let entry_pos t i =
  match List.nth_opt t.node_lines i with
  | Some line -> Printf.sprintf "line %d" line
  | None -> Printf.sprintf "entry %d" (i + 1)

let apply t hg =
  let k = Array.length t.block_devices in
  let by_name = Hashtbl.create (Hg.num_nodes hg * 2) in
  Hg.iter_nodes (fun v -> Hashtbl.replace by_name (Hg.name hg v) v) hg;
  let assignment = Array.make (Hg.num_nodes hg) (-1) in
  let error = ref None in
  List.iteri
    (fun i (name, b) ->
      if !error = None then
        match Hashtbl.find_opt by_name name with
        | None ->
          error :=
            Some
              (Printf.sprintf "%s: node %S is not in the circuit" (entry_pos t i)
                 name)
        | Some v ->
          if b < 0 || b >= k then
            error :=
              Some
                (Printf.sprintf "%s: node %S assigned to block %d outside [0, %d)"
                   (entry_pos t i) name b k)
          else assignment.(v) <- b)
    t.assignment;
  match !error with
  | Some e -> Error e
  | None ->
    let missing = ref [] in
    Array.iteri
      (fun v b -> if b < 0 then missing := Hg.name hg v :: !missing)
      assignment;
    (match List.rev !missing with
    | [] -> Ok (assignment, k)
    | [ name ] -> Error (Printf.sprintf "node %S has no assignment" name)
    | name :: rest ->
      Error
        (Printf.sprintf "%d nodes have no assignment (first: %S)"
           (List.length rest + 1) name))
