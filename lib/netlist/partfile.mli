(** Reader/writer for partition result files.

    A simple line-oriented text format so partitions can be saved,
    diffed and reloaded (e.g. to hand a placement to downstream tools or
    to archive experiment outputs):

    {v
    # fpart partition
    circuit demo
    device XC3020
    delta 0.90
    blocks 3
    block 0 device XC3020
    node a 0
    node b 0
    node io1 2
    ...
    v}

    Node lines map node {e names} (not ids) to block indices, so a
    partition file survives any re-numbering of the hypergraph as long
    as names are stable.  Heterogeneous partitions record one device per
    block; homogeneous writers repeat the same device. *)

type t = {
  circuit : string;
  delta : float;
  block_devices : string array;  (** Device name per block. *)
  assignment : (string * int) list;  (** node name → block. *)
  node_lines : int list;
      (** Source line of each assignment entry when the value came from
          the parser ([[]] for programmatic construction); lets {!apply}
          report line-numbered errors. *)
}

(** [of_assignment_checked h ~circuit ~delta ~block_devices ~assignment]
    builds the file content from a result, validating the assignment
    against the current hypergraph: [Error msg] names the offending cell
    (and its index) on a length mismatch or out-of-range block — the
    shape a serving loop reports per-request instead of crashing. *)
val of_assignment_checked :
  Hypergraph.Hgraph.t ->
  circuit:string ->
  delta:float ->
  block_devices:string array ->
  assignment:int array ->
  (t, string) result

(** Raising variant of {!of_assignment_checked} for contexts where the
    assignment is known-consistent (just produced by the driver).
    @raise Invalid_argument with the same cell-named message. *)
val of_assignment :
  Hypergraph.Hgraph.t ->
  circuit:string ->
  delta:float ->
  block_devices:string array ->
  assignment:int array ->
  t

(** [to_string t] renders the file. *)
val to_string : t -> string

(** [parse_string s] parses; [Error msg] carries a line number. *)
val parse_string : string -> (t, string) result

(** [write_file path t] / [parse_file path]. *)
val write_file : string -> t -> unit

val parse_file : string -> (t, string) result

(** [apply t h] resolves the node names against hypergraph [h] and
    returns [(assignment, k)].  Nodes of [h] missing from the file, or
    file entries naming unknown nodes or out-of-range blocks, yield
    [Error]; messages carry the source line (via [node_lines]) and the
    cell name. *)
val apply : t -> Hypergraph.Hgraph.t -> (int array * int, string) result
