let source = ref Sys.time
let now () = !source ()
let set_source f = source := f
