(* The guard keeps one high-water cell per domain: span begin/end pairs
   always run on a single domain, so a per-domain non-decreasing clock
   is enough to make every span duration non-negative even when the
   installed source steps backwards (NTP slew on a wall clock, a buggy
   source in tests).  Cross-domain comparisons additionally rely on the
   source itself being shared, which both defaults are. *)

let source = ref Sys.time

let high_water : float ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref neg_infinity)

let now () =
  let cell = Domain.DLS.get high_water in
  let t = !source () in
  if t < !cell then !cell
  else begin
    cell := t;
    t
  end

let set_source f =
  source := f;
  (* Switching to a source with a smaller origin (e.g. seconds since
     boot after seconds since the epoch) must not pin the clock at the
     old maximum.  Only the calling domain's cell can be reset here;
     install sources at startup, before spawning domains. *)
  Domain.DLS.get high_water := neg_infinity
