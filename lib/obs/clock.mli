(** Time source for spans.

    [now ()] returns seconds on a non-decreasing clock.  The default
    source is [Sys.time] (process CPU time) so the library stays
    dependency-free; executables install a real clock with
    {!set_source} at startup — the binaries use a
    [clock_gettime(CLOCK_MONOTONIC)] stub (see [bin/obs_setup.ml]),
    library/bench users may install [Unix.gettimeofday].

    Whatever the source does, [now] is guarded per domain: a source
    that steps backwards (NTP slew, a buggy test source) is clamped to
    the domain's previous maximum, so span durations can never go
    negative. *)

val now : unit -> float

(** [set_source f] installs [f] as the time source and resets the
    {e calling} domain's regression guard (so switching to a source
    with a smaller origin takes effect immediately).  Install sources
    at startup, before spawning domains. *)
val set_source : (unit -> float) -> unit
