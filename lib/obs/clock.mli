(** Time source for spans.

    [now ()] returns seconds on a non-decreasing clock.  The default
    source is [Sys.time] (process CPU time) so the library stays
    dependency-free; executables that link [unix] install a wall clock
    with [set_source Unix.gettimeofday] at startup. *)

val now : unit -> float
val set_source : (unit -> float) -> unit
