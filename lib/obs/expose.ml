(* Prometheus text-format exposition + strict parser.  See the .mli
   for the contract; the renderer and parser are kept in one module so
   the dialect cannot drift: the QCheck property in test_expose renders
   random instrument states and re-parses them. *)

(* --- gauge registry ------------------------------------------------ *)

type gauge = { g_help : string; g_read : unit -> float }

let gauges_mutex = Mutex.create ()
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let set_gauge name ~help read =
  Mutex.protect gauges_mutex (fun () ->
      Hashtbl.replace gauges name { g_help = help; g_read = read })

let remove_gauge name =
  Mutex.protect gauges_mutex (fun () -> Hashtbl.remove gauges name)

let clear_gauges () =
  Mutex.protect gauges_mutex (fun () -> Hashtbl.reset gauges)

let gauge_list () =
  Mutex.protect gauges_mutex (fun () ->
      Hashtbl.fold (fun name g acc -> (name, g) :: acc) gauges [])

(* --- naming -------------------------------------------------------- *)

let metric_name name =
  let b = Buffer.create (String.length name + 6) in
  Buffer.add_string b "fpart_";
  String.iter
    (fun c ->
      match c with
      | '.' | '-' | '/' | ' ' -> Buffer.add_char b '_'
      | c -> Buffer.add_char b c)
    name;
  Buffer.contents b

(* Sample values: integral values print without an exponent or
   fraction so pages stay diffable; everything else uses %.9g — enough
   significant digits that a histogram _sum of large samples survives
   the parse round-trip (plain %g keeps 6 and visibly truncates). *)
let value_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let bound_str le =
  if le = infinity then "+Inf" else value_str le

(* --- rendering ----------------------------------------------------- *)

type rendered = { r_name : string; r_lines : string list }

let counter_family name n =
  let m = metric_name name ^ "_total" in
  {
    r_name = m;
    r_lines =
      [
        Printf.sprintf "# TYPE %s counter" m;
        Printf.sprintf "%s %d" m n;
      ];
  }

let gauge_family name help v =
  let m = metric_name name in
  let help_line =
    if help = "" then []
    else [ Printf.sprintf "# HELP %s %s" m help ]
  in
  {
    r_name = m;
    r_lines =
      help_line
      @ [
          Printf.sprintf "# TYPE %s gauge" m;
          Printf.sprintf "%s %s" m (value_str v);
        ];
  }

let histogram_family name h =
  let m = metric_name name in
  let per_bucket = Metrics.bucket_totals h in
  let lines = ref [] in
  let cum = ref 0 in
  Array.iteri
    (fun i n ->
      cum := !cum + n;
      let le =
        if i < Array.length Metrics.bucket_bounds then
          Metrics.bucket_bounds.(i)
        else infinity
      in
      lines :=
        Printf.sprintf "%s_bucket{le=\"%s\"} %d" m (bound_str le) !cum
        :: !lines)
    per_bucket;
  {
    r_name = m;
    r_lines =
      Printf.sprintf "# TYPE %s histogram" m
      :: List.rev !lines
      @ [
          Printf.sprintf "%s_sum %s" m (value_str (Metrics.hist_sum h));
          Printf.sprintf "%s_count %d" m (Metrics.count h);
        ];
  }

(* Process-level gauges from one Resource sample: cheap (a
   Gc.quick_stat plus the throttled OS reading) and engine-agnostic. *)
let process_families () =
  let s = Resource.sample () in
  [
    gauge_family "process.max_rss_kb" "Peak resident set size (KiB)."
      (float_of_int s.Resource.os.Resource.os_maxrss_kb);
    gauge_family "process.top_heap_words" "Major-heap high-water (words)."
      (float_of_int s.Resource.top_heap_words);
    counter_family "process.minor_collections"
      s.Resource.minor_gcs;
    counter_family "process.major_collections"
      s.Resource.major_gcs;
    gauge_family "process.cpu_user_seconds" "Cumulative user CPU time."
      s.Resource.os.Resource.os_utime_s;
    gauge_family "process.cpu_system_seconds" "Cumulative system CPU time."
      s.Resource.os.Resource.os_stime_s;
  ]

let render () =
  let fams =
    List.map (fun (name, n) -> counter_family name n)
      (Metrics.active_counters ())
    @ List.map
        (fun h -> histogram_family (Metrics.hist_name h) h)
        (Metrics.active_histograms ())
    @ List.map
        (fun (name, g) ->
          let v = try g.g_read () with _ -> Float.nan in
          gauge_family name g.g_help v)
        (gauge_list ())
    @ process_families ()
  in
  let fams = List.sort (fun a b -> compare a.r_name b.r_name) fams in
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      List.iter
        (fun line ->
          Buffer.add_string b line;
          Buffer.add_char b '\n')
        f.r_lines)
    fams;
  Buffer.contents b

(* --- strict parser ------------------------------------------------- *)

type sample = {
  s_suffix : string;
  s_labels : (string * string) list;
  s_value : float;
}

type family = { f_name : string; f_type : string; f_samples : sample list }

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char s

let ( let* ) = Result.bind

(* One sample line: NAME{labels} VALUE (labels optional).  Returns the
   full metric name (suffix not yet split off), labels and value. *)
let parse_sample_line ~lineno line =
  let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let n = String.length line in
  let rec name_end i = if i < n && is_name_char line.[i] then name_end (i + 1) else i in
  let ne = name_end 0 in
  if ne = 0 then fail "expected a metric name"
  else begin
    let name = String.sub line 0 ne in
    if not (valid_name name) then fail (Printf.sprintf "bad metric name %S" name)
    else begin
      let labels = ref [] in
      let pos = ref ne in
      let* () =
        if !pos < n && line.[!pos] = '{' then begin
          incr pos;
          let rec labels_loop () =
            if !pos >= n then fail "unterminated label set"
            else if line.[!pos] = '}' then begin
              incr pos;
              Ok ()
            end
            else begin
              let ls = !pos in
              let rec lname_end i =
                if i < n && is_name_char line.[i] then lname_end (i + 1) else i
              in
              let le = lname_end ls in
              if le = ls then fail "expected a label name"
              else if le >= n || line.[le] <> '=' then fail "expected '=' after label name"
              else if le + 1 >= n || line.[le + 1] <> '"' then
                fail "label value must be quoted"
              else begin
                let lname = String.sub line ls (le - ls) in
                let b = Buffer.create 16 in
                let rec value_loop i =
                  if i >= n then fail "unterminated label value"
                  else
                    match line.[i] with
                    | '"' -> Ok (i + 1)
                    | '\\' ->
                      if i + 1 >= n then fail "dangling escape"
                      else (
                        match line.[i + 1] with
                        | '\\' -> Buffer.add_char b '\\'; value_loop (i + 2)
                        | '"' -> Buffer.add_char b '"'; value_loop (i + 2)
                        | 'n' -> Buffer.add_char b '\n'; value_loop (i + 2)
                        | c -> fail (Printf.sprintf "bad escape \\%c" c))
                    | c -> Buffer.add_char b c; value_loop (i + 1)
                in
                let* after = value_loop (le + 2) in
                labels := (lname, Buffer.contents b) :: !labels;
                pos := after;
                if !pos < n && line.[!pos] = ',' then begin
                  incr pos;
                  labels_loop ()
                end
                else if !pos < n && line.[!pos] = '}' then labels_loop ()
                else fail "expected ',' or '}' in label set"
              end
            end
          in
          labels_loop ()
        end
        else Ok ()
      in
      if !pos >= n || line.[!pos] <> ' ' then fail "expected ' ' before the value"
      else begin
        let vstr = String.sub line (!pos + 1) (n - !pos - 1) in
        let v =
          match String.trim vstr with
          | "+Inf" -> Some infinity
          | "-Inf" -> Some neg_infinity
          | "NaN" -> Some Float.nan
          | s -> float_of_string_opt s
        in
        match v with
        | None -> fail (Printf.sprintf "bad sample value %S" vstr)
        | Some v ->
          let labels = List.rev !labels in
          let rec sorted = function
            | (a, _) :: ((b, _) :: _ as rest) ->
              if String.compare a b >= 0 then
                fail (Printf.sprintf "labels not sorted/unique at %S" b)
              else sorted rest
            | _ -> Ok ()
          in
          let* () = sorted labels in
          Ok (name, labels, v)
      end
    end
  end

let strip_suffix fam_name metric =
  if metric = fam_name then Some ""
  else
    let fl = String.length fam_name and ml = String.length metric in
    if ml > fl && String.sub metric 0 fl = fam_name then begin
      match String.sub metric fl (ml - fl) with
      | ("_bucket" | "_sum" | "_count") as s -> Some s
      | _ -> None
    end
    else None

(* Family-level invariants, checked once the family's samples are
   complete. *)
let check_family f =
  let fail msg = Error (Printf.sprintf "family %s: %s" f.f_name msg) in
  match f.f_type with
  | "counter" | "gauge" -> (
    match f.f_samples with
    | [] -> fail "no samples"
    | samples ->
      if List.exists (fun s -> s.s_suffix <> "") samples then
        fail "histogram-style sample in a scalar family"
      else if
        f.f_type = "counter"
        && List.exists (fun s -> s.s_value < 0.0) samples
      then fail "negative counter value"
      else Ok ())
  | "histogram" ->
    let buckets =
      List.filter (fun s -> s.s_suffix = "_bucket") f.f_samples
    in
    let* les =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match List.assoc_opt "le" s.s_labels with
          | None -> fail "_bucket without an le label"
          | Some le -> (
            let le =
              match le with "+Inf" -> Some infinity | s -> float_of_string_opt s
            in
            match le with
            | None -> fail "unparseable le bound"
            | Some le -> Ok ((le, s.s_value) :: acc)))
        (Ok []) buckets
    in
    let les = List.rev les in
    let rec ascending_cumulative = function
      | (le1, c1) :: ((le2, c2) :: _ as rest) ->
        if not (le1 < le2) then fail "bucket bounds not strictly ascending"
        else if c2 < c1 then fail "cumulative bucket counts decrease"
        else ascending_cumulative rest
      | _ -> Ok ()
    in
    let* () = ascending_cumulative les in
    let* last =
      match List.rev les with
      | [] -> fail "no buckets"
      | (le, c) :: _ ->
        if le <> infinity then fail "missing le=\"+Inf\" bucket" else Ok c
    in
    let count =
      List.find_opt (fun s -> s.s_suffix = "_count") f.f_samples
    in
    let sum = List.find_opt (fun s -> s.s_suffix = "_sum") f.f_samples in
    let* () =
      match count with
      | None -> fail "missing _count"
      | Some c ->
        (* _count must equal the +Inf bucket — i.e. the sum of the
           per-bucket deltas of the cumulative series. *)
        if c.s_value <> last then
          fail
            (Printf.sprintf "_count %s <> +Inf bucket %s"
               (value_str c.s_value) (value_str last))
        else Ok ()
    in
    (match sum with None -> fail "missing _sum" | Some _ -> Ok ())
  | t -> fail (Printf.sprintf "unknown family type %S" t)

let parse text =
  let lines = String.split_on_char '\n' text in
  let fams : (string, family) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  (* current open family, samples accumulated in reverse *)
  let current = ref None in
  let close_current () =
    match !current with
    | None -> Ok ()
    | Some (name, typ, rev_samples) ->
      let f = { f_name = name; f_type = typ; f_samples = List.rev rev_samples } in
      let* () = check_family f in
      Hashtbl.replace fams name f;
      current := None;
      Ok ()
  in
  let rec go lineno = function
    | [] -> close_current ()
    | line :: rest ->
      let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
      let* () =
        if line = "" then Ok ()
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then
          Ok ()  (* free-form; content not validated *)
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          let* () = close_current () in
          match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
          | [ name; typ ] ->
            if not (valid_name name) then
              fail (Printf.sprintf "bad family name %S" name)
            else if Hashtbl.mem fams name then
              fail (Printf.sprintf "duplicate family %S" name)
            else begin
              order := name :: !order;
              current := Some (name, typ, []);
              Ok ()
            end
          | _ -> fail "malformed # TYPE line"
        end
        else if String.length line >= 1 && line.[0] = '#' then
          fail "only # HELP and # TYPE comments are allowed"
        else begin
          let* metric, labels, v = parse_sample_line ~lineno line in
          match !current with
          | None -> fail (Printf.sprintf "sample %S before any # TYPE" metric)
          | Some (fname, typ, samples) -> (
            match strip_suffix fname metric with
            | None ->
              fail
                (Printf.sprintf "sample %S does not belong to open family %S"
                   metric fname)
            | Some suffix ->
              current :=
                Some
                  ( fname,
                    typ,
                    { s_suffix = suffix; s_labels = labels; s_value = v }
                    :: samples );
              Ok ())
        end
      in
      go (lineno + 1) rest
  in
  let* () = go 1 lines in
  Ok (List.rev_map (Hashtbl.find fams) !order)

(* --- consumer helpers ---------------------------------------------- *)

let family fams name = List.find_opt (fun f -> f.f_name = name) fams

let find fams name =
  match family fams name with
  | Some { f_type = "counter" | "gauge"; f_samples = [ s ]; _ } ->
    Some s.s_value
  | _ -> None

let buckets fams name =
  match family fams name with
  | Some { f_type = "histogram"; f_samples; _ } ->
    List.filter_map
      (fun s ->
        if s.s_suffix <> "_bucket" then None
        else
          match List.assoc_opt "le" s.s_labels with
          | Some "+Inf" -> Some (infinity, s.s_value)
          | Some le -> Option.map (fun b -> (b, s.s_value)) (float_of_string_opt le)
          | None -> None)
      f_samples
  | _ -> []

let hist_sample fams name suffix =
  match family fams name with
  | Some { f_type = "histogram"; f_samples; _ } ->
    Option.map
      (fun s -> s.s_value)
      (List.find_opt (fun s -> s.s_suffix = suffix) f_samples)
  | _ -> None

let hist_count fams name = hist_sample fams name "_count"
let hist_sum fams name = hist_sample fams name "_sum"

let quantile_of_buckets ~p series =
  match List.rev series with
  | [] -> Float.nan
  | (_, total) :: _ ->
    if total <= 0.0 then Float.nan
    else begin
      let target = Float.max 1.0 (Float.ceil (p *. total -. 1e-9)) in
      let finite_max =
        List.fold_left
          (fun acc (le, _) -> if le < infinity then le else acc)
          Float.nan series
      in
      let rec go = function
        | [] -> finite_max
        | (le, c) :: rest ->
          if c >= target then (if le = infinity then finite_max else le)
          else go rest
      in
      go series
    end

let delta_buckets ~prev ~cur =
  if
    List.length prev = List.length cur
    && List.for_all2 (fun (a, _) (b, _) -> a = b) prev cur
  then List.map2 (fun (le, c) (_, p) -> (le, c -. p)) cur prev
  else cur
