(** Prometheus text-format exposition over the live {!Metrics} and
    {!Resource} state, plus the strict parser the tests, the CI smoke
    job and [fpart_inspect scrape]/[live] use to validate and consume
    it.

    {!render} walks the calling domain's instrument cells — in a
    daemon that is the domain where the engine merges worker activity,
    so a scrape between requests sees the process totals — and emits
    one text-format page:

    - every active {!Metrics} counter as a [counter] family named
      [fpart_<name>_total];
    - every active {!Metrics} histogram as a [histogram] family named
      [fpart_<name>] with the fixed {!Metrics.bucket_bounds} ladder:
      cumulative [_bucket{le="..."}] series ending in [le="+Inf"],
      [_sum] and [_count] (all lifetime aggregates, monotone across
      scrapes);
    - every registered gauge callback ({!set_gauge}) as a [gauge]
      family named [fpart_<name>];
    - process gauges sampled from {!Resource}: peak RSS, major-heap
      high-water, GC collection totals and CPU seconds.

    Metric names are the instrument names with [.], [-] and [/]
    mapped to [_] (the documented registry lives in
    docs/OBSERVABILITY.md); families are emitted in sorted name order
    with a [# TYPE] line each, so output is deterministic given the
    same instrument state.

    The exposition layer is engine-agnostic: it never names an
    instrument explicitly, so the flat, multilevel and flow paths all
    surface under the same families they already feed. *)

(** {1 Gauge registry}

    Gauges are callbacks, not cells: the owner of a mutable structure
    (e.g. the serve result cache) registers a closure and every
    {!render} reads the live value.  Registration replaces any
    previous callback under the same name. *)

val set_gauge : string -> help:string -> (unit -> float) -> unit

val remove_gauge : string -> unit

(** Drop every registered gauge; for test isolation. *)
val clear_gauges : unit -> unit

(** {1 Rendering} *)

(** [metric_name name] is the exposition name for instrument [name]:
    [fpart_] + [name] with [.], [-] and [/] replaced by [_]. *)
val metric_name : string -> string

(** One full text-format page (version 0.0.4), trailing newline
    included. *)
val render : unit -> string

(** {1 Strict parser}

    Accepts exactly the dialect {!render} emits (plus arbitrary
    [# HELP] comments and blank lines) and checks the structural
    invariants a registry consumer relies on:

    - every sample belongs to a family declared by a preceding
      [# TYPE] line, and family names are unique;
    - labels are unique and sorted, label values are quoted with valid
      escapes, sample values parse as floats;
    - histogram families carry a full cumulative bucket series ending
      in [le="+Inf"], bucket counts are non-decreasing in [le] order,
      and [_count] equals the [+Inf] bucket (equivalently: the sum of
      the per-bucket deltas) while [_sum] is present. *)

type sample = {
  s_suffix : string;  (** "", ["_bucket"], ["_sum"] or ["_count"] *)
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  f_name : string;
  f_type : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  f_samples : sample list;  (** in emission order *)
}

val parse : string -> (family list, string) result

(** {1 Consumer helpers} *)

(** [find fams name] is the single unlabelled sample value of family
    [name] (counter or gauge). *)
val find : family list -> string -> float option

(** [buckets fams name] is the cumulative [(le, count)] series of
    histogram family [name], in ascending [le] order (last is
    [infinity]); [[]] when absent. *)
val buckets : family list -> string -> (float * float) list

(** [hist_count fams name] / [hist_sum fams name]: the [_count] and
    [_sum] samples of histogram family [name]. *)
val hist_count : family list -> string -> float option

val hist_sum : family list -> string -> float option

(** [quantile_of_buckets ~p series] estimates quantile [p] from a
    cumulative [(le, count)] series: the lowest bucket bound at which
    the cumulative count reaches ⌈p·total⌉.  [nan] on an empty or
    zero-count series; an answer in the +Inf bucket reports the last
    finite bound.  Feed it the {e delta} of two scrapes' series to get
    interval quantiles ([fpart_inspect live]'s p50/p95 columns). *)
val quantile_of_buckets : p:float -> (float * float) list -> float

(** [delta_buckets ~prev ~cur] subtracts two cumulative series of the
    same shape pointwise (what happened between two scrapes); [cur]
    when shapes differ (e.g. first scrape). *)
val delta_buckets :
  prev:(float * float) list -> cur:(float * float) list -> (float * float) list
