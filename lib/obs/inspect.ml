(* Offline trace analysis: everything here is pure on a loaded record
   list, so the same code backs [bin/fpart_inspect], the CI trace
   check and the unit tests. *)

type span = {
  id : int;
  parent : int;
  track : int;
  name : string;
  t_ms : float;
  dur_ms : float;
}

type t = {
  records : Json.t list;
  spans : span list;  (* file order *)
  by_id : (int, span) Hashtbl.t;
}

let records t = t.records
let spans t = t.spans
let fget k j = Json.member k j

let fnum k j =
  match fget k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let fint k j = Option.bind (fget k j) Json.int
let fstr k j = Option.bind (fget k j) Json.str
let num_or d = function Some f -> f | None -> d
let int_or d = function Some i -> i | None -> d

let span_of_record j =
  match fstr "type" j with
  | Some "span" ->
    Option.map
      (fun id ->
        {
          id;
          parent = int_or 0 (fint "parent" j);
          track = int_or 0 (fint "track" j);
          name = (match fstr "name" j with Some n -> n | None -> "span");
          t_ms = num_or 0.0 (fnum "t_ms" j);
          dur_ms = num_or 0.0 (fnum "dur_ms" j);
        })
      (fint "id" j)
  | _ -> None

let of_records records =
  let spans = List.filter_map span_of_record records in
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> if not (Hashtbl.mem by_id s.id) then Hashtbl.add by_id s.id s) spans;
  { records; spans; by_id }

(* {2 Loading}

   A trace file is either JSONL (one record per line) or a chrome
   export ([{"traceEvents":[...]}]); sniffed by parsing.  Chrome
   events are folded back into the original record shape: ["X"] events
   become span records, ["i"] events return their [args] (which kept
   the original fields), ["M"] metadata is dropped. *)

let record_of_chrome_event ev =
  let args = match fget "args" ev with Some (Json.Obj f) -> f | _ -> [] in
  let t_ms = num_or 0.0 (fnum "ts" ev) /. 1000.0 in
  let track = int_or 0 (fint "tid" ev) in
  match fstr "ph" ev with
  | Some "X" ->
    Some
      (Json.Obj
         (("type", Json.Str "span")
         :: ( "name",
              Json.Str (match fstr "name" ev with Some n -> n | None -> "span") )
         :: ("dur_ms", Json.Float (num_or 0.0 (fnum "dur" ev) /. 1000.0))
         :: ("track", Json.Int track)
         :: ("t_ms", Json.Float t_ms)
         :: args))
  | Some "i" ->
    Some (Json.Obj (args @ [ ("track", Json.Int track); ("t_ms", Json.Float t_ms) ]))
  | _ -> None

let load_string text =
  (* A chrome export is one JSON object covering the whole file; a
     multi-record JSONL file fails that parse on the second line, and a
     single-record JSONL object lacks [traceEvents] — so the sniff has
     no false positives. *)
  match Json.of_string (String.trim text) with
  | Ok j when fget "traceEvents" j <> None -> (
    match fget "traceEvents" j with
    | Some (Json.List evs) ->
      Ok (of_records (List.filter_map record_of_chrome_event evs))
    | _ -> Error "chrome export without a traceEvents list")
  | _ ->
    let errors = ref [] in
    let records = ref [] in
    List.iteri
      (fun i line ->
        let line = String.trim line in
        if line <> "" then
          match Json.of_string line with
          | Ok j -> records := j :: !records
          | Error e ->
            errors := Printf.sprintf "line %d: %s" (i + 1) e :: !errors)
      (String.split_on_char '\n' text);
    (match List.rev !errors with
    | [] -> Ok (of_records (List.rev !records))
    | e :: _ -> Error e)

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> load_string text
  | exception Sys_error e -> Error e

(* {2 Validation} *)

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.id then err "duplicate span id %d (%s)" s.id s.name;
      Hashtbl.replace seen s.id ())
    t.spans;
  List.iter
    (fun s ->
      if s.parent <> 0 && not (Hashtbl.mem t.by_id s.parent) then
        err "span %d (%s) has orphaned parent %d" s.id s.name s.parent;
      if s.dur_ms < 0.0 then err "span %d (%s) has negative duration" s.id s.name)
    t.spans;
  List.iter
    (fun j ->
      match fstr "type" j with
      | Some "span" | None -> ()
      | Some ty -> (
        match fint "span" j with
        | Some sid when sid <> 0 && not (Hashtbl.mem t.by_id sid) ->
          err "%s record references missing span %d" ty sid
        | _ -> ()))
    t.records;
  List.rev !errors

(* {2 Hotspots}

   Self time = a span's duration minus its direct children's; the
   table answers "where did the wall-clock actually go" without the
   double counting an inclusive-only table has. *)

type hotspot = {
  h_name : string;
  h_count : int;
  h_total_ms : float;
  h_self_ms : float;
}

let hotspots t =
  let child_ms = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if s.parent <> 0 && Hashtbl.mem t.by_id s.parent then
        Hashtbl.replace child_ms s.parent
          (num_or 0.0 (Hashtbl.find_opt child_ms s.parent) +. s.dur_ms))
    t.spans;
  let acc = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let self = s.dur_ms -. num_or 0.0 (Hashtbl.find_opt child_ms s.id) in
      let c, tot, slf =
        match Hashtbl.find_opt acc s.name with
        | Some (c, t, sf) -> (c, t, sf)
        | None -> (0, 0.0, 0.0)
      in
      Hashtbl.replace acc s.name (c + 1, tot +. s.dur_ms, slf +. self))
    t.spans;
  Hashtbl.fold
    (fun name (c, tot, slf) rows ->
      { h_name = name; h_count = c; h_total_ms = tot; h_self_ms = slf } :: rows)
    acc []
  |> List.sort (fun a b ->
         let c = compare b.h_self_ms a.h_self_ms in
         if c <> 0 then c else compare a.h_name b.h_name)

let pp_hotspots ?(times = true) ppf t =
  let rows = hotspots t in
  if rows = [] then Format.fprintf ppf "no spans recorded@."
  else begin
    if times then
      Format.fprintf ppf "%-28s %8s %12s %12s@." "phase" "count" "total_ms"
        "self_ms"
    else Format.fprintf ppf "%-28s %8s@." "phase" "count";
    List.iter
      (fun r ->
        if times then
          Format.fprintf ppf "%-28s %8d %12.3f %12.3f@." r.h_name r.h_count
            r.h_total_ms r.h_self_ms
        else Format.fprintf ppf "%-28s %8d@." r.h_name r.h_count)
      rows
  end

(* {2 Convergence}

   One row per [schedule] record (one per [Improve()] call), enriched
   with the [pass] records recorded under the same span: passes to
   convergence, moves applied vs retained after the rewind (the
   difference is wasted work), and the value trajectory. *)

type conv_row = {
  c_iteration : int;
  c_step : string;
  c_blocks : int;
  c_passes : int;
  c_moves : int;
  c_retained : int;
  c_restarts : int;
  c_cut_before : int;
  c_cut_after : int;
  c_value_after : Json.t option;
}

let pp_value_json ppf = function
  | Some (Json.Obj fields as j) -> (
    match
      ( fget "feasible_blocks" (Json.Obj fields),
        fnum "distance" (Json.Obj fields),
        fget "t_sum" (Json.Obj fields),
        fnum "io_bal" (Json.Obj fields) )
    with
    | Some (Json.Int f), Some d, Some (Json.Int t), Some e ->
      Format.fprintf ppf "(f=%d, d=%.4f, T=%d, dE=%.4f)" f d t e
    | _ -> Format.pp_print_string ppf (Json.to_string j))
  | Some j -> Format.pp_print_string ppf (Json.to_string j)
  | None -> Format.pp_print_string ppf "-"

let convergence t =
  List.filter_map
    (fun j ->
      match fstr "type" j with
      | Some "schedule" ->
        Some
          {
            c_iteration = int_or 0 (fint "iteration" j);
            c_step = (match fstr "step" j with Some s -> s | None -> "?");
            c_blocks =
              (match fget "blocks" j with
              | Some (Json.List l) -> List.length l
              | _ -> int_or 0 (fint "blocks" j));
            c_passes = int_or 0 (fint "passes" j);
            c_moves = int_or 0 (fint "moves" j);
            c_retained = int_or 0 (fint "moves_retained" j);
            c_restarts = int_or 0 (fint "restarts" j);
            c_cut_before = int_or 0 (fint "cut_before" j);
            c_cut_after = int_or 0 (fint "cut_after" j);
            c_value_after = fget "value_after" j;
          }
      | _ -> None)
    t.records

let pp_convergence ppf t =
  let rows = convergence t in
  if rows = [] then
    Format.fprintf ppf "no schedule records (run with --trace and --stats)@."
  else begin
    Format.fprintf ppf "%4s %-12s %6s %6s %6s %8s %6s %10s %s@." "it" "step"
      "blocks" "passes" "moves" "retained" "waste" "cut" "value";
    List.iter
      (fun r ->
        Format.fprintf ppf "%4d %-12s %6d %6d %6d %8d %6d %4d->%-4d %a@."
          r.c_iteration r.c_step r.c_blocks r.c_passes r.c_moves r.c_retained
          (r.c_moves - r.c_retained) r.c_cut_before r.c_cut_after pp_value_json
          r.c_value_after)
      rows;
    let improves = List.length rows in
    let passes = List.fold_left (fun a r -> a + r.c_passes) 0 rows in
    let moves = List.fold_left (fun a r -> a + r.c_moves) 0 rows in
    let retained = List.fold_left (fun a r -> a + r.c_retained) 0 rows in
    Format.fprintf ppf
      "total: %d Improve() calls, %d passes, %d moves (%d retained, %d rewound)@."
      improves passes moves retained (moves - retained)
  end

(* {2 Pass detail} *)

let pp_passes ppf t =
  let rows =
    List.filter_map
      (fun j ->
        match fstr "type" j with Some "pass" -> Some j | _ -> None)
      t.records
  in
  if rows = [] then Format.fprintf ppf "no pass records@."
  else begin
    Format.fprintf ppf "%5s %5s %6s %8s %8s %10s@." "exec" "pass" "moves"
      "prefix" "gmax" "cut";
    List.iter
      (fun j ->
        let curve =
          match fget "gain_curve" j with
          | Some (Json.List l) ->
            List.filter_map
              (function
                | Json.Int i -> Some (float_of_int i)
                | Json.Float f -> Some f
                | _ -> None)
              l
          | _ -> []
        in
        let gmax = List.fold_left max neg_infinity (0.0 :: curve) in
        Format.fprintf ppf "%5d %5d %6d %8d %8.1f %4d->%d@."
          (int_or 0 (fint "execution" j))
          (int_or 0 (fint "pass" j))
          (int_or 0 (fint "moves" j))
          (int_or 0 (fint "best_prefix" j))
          gmax
          (int_or 0 (fint "cut_before" j))
          (int_or 0 (fint "cut_after" j)))
      rows
  end

(* {2 Diff} *)

let conv_totals t =
  let rows = convergence t in
  ( List.length rows,
    List.fold_left (fun a r -> a + r.c_passes) 0 rows,
    List.fold_left (fun a r -> a + r.c_moves) 0 rows,
    List.fold_left (fun a r -> a + r.c_retained) 0 rows,
    match List.rev rows with r :: _ -> r.c_cut_after | [] -> 0 )

let pp_diff ?(times = true) ppf a b =
  let ra = hotspots a and rb = hotspots b in
  let names =
    List.sort_uniq compare
      (List.map (fun r -> r.h_name) ra @ List.map (fun r -> r.h_name) rb)
  in
  let find rows n = List.find_opt (fun r -> r.h_name = n) rows in
  if times then begin
    Format.fprintf ppf "%-28s %10s %10s %10s@." "phase" "self_a" "self_b" "delta";
    List.iter
      (fun n ->
        let sa = match find ra n with Some r -> r.h_self_ms | None -> 0.0 in
        let sb = match find rb n with Some r -> r.h_self_ms | None -> 0.0 in
        Format.fprintf ppf "%-28s %10.3f %10.3f %+10.3f@." n sa sb (sb -. sa))
      names
  end
  else begin
    Format.fprintf ppf "%-28s %8s %8s %6s@." "phase" "count_a" "count_b" "delta";
    List.iter
      (fun n ->
        let ca = match find ra n with Some r -> r.h_count | None -> 0 in
        let cb = match find rb n with Some r -> r.h_count | None -> 0 in
        Format.fprintf ppf "%-28s %8d %8d %+6d@." n ca cb (cb - ca))
      names
  end;
  let ia, pa, ma, rta, cuta = conv_totals a in
  let ib, pb, mb, rtb, cutb = conv_totals b in
  Format.fprintf ppf
    "convergence: improves %d -> %d, passes %d -> %d, moves %d -> %d, retained %d -> %d, final cut %d -> %d@."
    ia ib pa pb ma mb rta rtb cuta cutb
