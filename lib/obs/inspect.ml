(* Offline trace analysis: everything here is pure on a loaded record
   list, so the same code backs [bin/fpart_inspect], the CI trace
   check and the unit tests. *)

type span = {
  id : int;
  parent : int;
  track : int;
  name : string;
  t_ms : float;
  dur_ms : float;
}

type t = {
  records : Json.t list;
  spans : span list;  (* file order *)
  by_id : (int, span) Hashtbl.t;
}

let records t = t.records
let spans t = t.spans
let fget k j = Json.member k j

let fnum k j =
  match fget k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let fint k j = Option.bind (fget k j) Json.int
let fstr k j = Option.bind (fget k j) Json.str
let num_or d = function Some f -> f | None -> d
let int_or d = function Some i -> i | None -> d

let span_of_record j =
  match fstr "type" j with
  | Some "span" ->
    Option.map
      (fun id ->
        {
          id;
          parent = int_or 0 (fint "parent" j);
          track = int_or 0 (fint "track" j);
          name = (match fstr "name" j with Some n -> n | None -> "span");
          t_ms = num_or 0.0 (fnum "t_ms" j);
          dur_ms = num_or 0.0 (fnum "dur_ms" j);
        })
      (fint "id" j)
  | _ -> None

let of_records records =
  let spans = List.filter_map span_of_record records in
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> if not (Hashtbl.mem by_id s.id) then Hashtbl.add by_id s.id s) spans;
  { records; spans; by_id }

(* {2 Loading}

   A trace file is either JSONL (one record per line) or a chrome
   export ([{"traceEvents":[...]}]); sniffed by parsing.  Chrome
   events are folded back into the original record shape: ["X"] events
   become span records, ["i"] events return their [args] (which kept
   the original fields), ["M"] metadata is dropped. *)

let record_of_chrome_event ev =
  let args = match fget "args" ev with Some (Json.Obj f) -> f | _ -> [] in
  let t_ms = num_or 0.0 (fnum "ts" ev) /. 1000.0 in
  let track = int_or 0 (fint "tid" ev) in
  match fstr "ph" ev with
  | Some "X" ->
    Some
      (Json.Obj
         (("type", Json.Str "span")
         :: ( "name",
              Json.Str (match fstr "name" ev with Some n -> n | None -> "span") )
         :: ("dur_ms", Json.Float (num_or 0.0 (fnum "dur" ev) /. 1000.0))
         :: ("track", Json.Int track)
         :: ("t_ms", Json.Float t_ms)
         :: args))
  | Some "i" | Some "C" ->
    (* "i" instants and "C" counters both kept their original record
       fields in [args]; counters lost only the [span] back-reference
       (see Sink.chrome). *)
    Some (Json.Obj (args @ [ ("track", Json.Int track); ("t_ms", Json.Float t_ms) ]))
  | _ -> None

let load_string text =
  (* A chrome export is one JSON object covering the whole file; a
     multi-record JSONL file fails that parse on the second line, and a
     single-record JSONL object lacks [traceEvents] — so the sniff has
     no false positives. *)
  match Json.of_string (String.trim text) with
  | Ok j when fget "traceEvents" j <> None -> (
    match fget "traceEvents" j with
    | Some (Json.List evs) ->
      Ok (of_records (List.filter_map record_of_chrome_event evs))
    | _ -> Error "chrome export without a traceEvents list")
  | _ ->
    let errors = ref [] in
    let records = ref [] in
    List.iteri
      (fun i line ->
        let line = String.trim line in
        if line <> "" then
          match Json.of_string line with
          | Ok j -> records := j :: !records
          | Error e ->
            errors := Printf.sprintf "line %d: %s" (i + 1) e :: !errors)
      (String.split_on_char '\n' text);
    (match List.rev !errors with
    | [] -> Ok (of_records (List.rev !records))
    | e :: _ -> Error e)

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> load_string text
  | exception Sys_error e -> Error e

(* {2 Validation} *)

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.id then err "duplicate span id %d (%s)" s.id s.name;
      Hashtbl.replace seen s.id ())
    t.spans;
  List.iter
    (fun s ->
      if s.parent <> 0 && not (Hashtbl.mem t.by_id s.parent) then
        err "span %d (%s) has orphaned parent %d" s.id s.name s.parent;
      if s.dur_ms < 0.0 then err "span %d (%s) has negative duration" s.id s.name)
    t.spans;
  List.iter
    (fun j ->
      match fstr "type" j with
      | Some "span" | None -> ()
      | Some ty -> (
        match fint "span" j with
        | Some sid when sid <> 0 && not (Hashtbl.mem t.by_id sid) ->
          err "%s record references missing span %d" ty sid
        | _ -> ()))
    t.records;
  List.rev !errors

(* {2 Hotspots}

   Self time = a span's duration minus its direct children's; the
   table answers "where did the wall-clock actually go" without the
   double counting an inclusive-only table has. *)

type hotspot = {
  h_name : string;
  h_count : int;
  h_total_ms : float;
  h_self_ms : float;
}

let hotspots t =
  let child_ms = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if s.parent <> 0 && Hashtbl.mem t.by_id s.parent then
        Hashtbl.replace child_ms s.parent
          (num_or 0.0 (Hashtbl.find_opt child_ms s.parent) +. s.dur_ms))
    t.spans;
  let acc = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let self = s.dur_ms -. num_or 0.0 (Hashtbl.find_opt child_ms s.id) in
      let c, tot, slf =
        match Hashtbl.find_opt acc s.name with
        | Some (c, t, sf) -> (c, t, sf)
        | None -> (0, 0.0, 0.0)
      in
      Hashtbl.replace acc s.name (c + 1, tot +. s.dur_ms, slf +. self))
    t.spans;
  Hashtbl.fold
    (fun name (c, tot, slf) rows ->
      { h_name = name; h_count = c; h_total_ms = tot; h_self_ms = slf } :: rows)
    acc []
  |> List.sort (fun a b ->
         let c = compare b.h_self_ms a.h_self_ms in
         if c <> 0 then c else compare a.h_name b.h_name)

let pp_hotspots ?(times = true) ppf t =
  let rows = hotspots t in
  if rows = [] then Format.fprintf ppf "no spans recorded@."
  else begin
    if times then
      Format.fprintf ppf "%-28s %8s %12s %12s@." "phase" "count" "total_ms"
        "self_ms"
    else Format.fprintf ppf "%-28s %8s@." "phase" "count";
    List.iter
      (fun r ->
        if times then
          Format.fprintf ppf "%-28s %8d %12.3f %12.3f@." r.h_name r.h_count
            r.h_total_ms r.h_self_ms
        else Format.fprintf ppf "%-28s %8d@." r.h_name r.h_count)
      rows
  end

(* {2 Memory}

   Mirrors the hotspot analysis with allocation words in place of
   wall-clock: self allocation = a span's [alloc_w] minus its direct
   children's, so the table answers "which phase allocates" without
   inclusive double counting.  The resource fields live on the span
   records themselves (appended by Recorder.span_end), so this works
   on jsonl and chrome loads alike. *)

type resource_row = {
  r_alloc_w : float;
  r_minor_gcs : int;
  r_major_gcs : int;
  r_heap_w : int;
  r_rss_kb : int;
}

(* span id -> resource fields, for span records that carry them *)
let span_resources t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun j ->
      match (fstr "type" j, fint "id" j, fnum "alloc_w" j) with
      | Some "span", Some id, Some alloc ->
        if not (Hashtbl.mem tbl id) then
          Hashtbl.add tbl id
            {
              r_alloc_w = alloc;
              r_minor_gcs = int_or 0 (fint "minor_gcs" j);
              r_major_gcs = int_or 0 (fint "major_gcs" j);
              r_heap_w = int_or 0 (fint "heap_w" j);
              r_rss_kb = int_or 0 (fint "rss_kb" j);
            }
      | _ -> ())
    t.records;
  tbl

type memspot = {
  m_name : string;
  m_count : int;
  m_total_w : float;
  m_self_w : float;
}

let memspots t =
  let res = span_resources t in
  let alloc_of id =
    match Hashtbl.find_opt res id with Some r -> r.r_alloc_w | None -> 0.0
  in
  let child_w = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if s.parent <> 0 && Hashtbl.mem t.by_id s.parent then
        Hashtbl.replace child_w s.parent
          (num_or 0.0 (Hashtbl.find_opt child_w s.parent) +. alloc_of s.id))
    t.spans;
  let acc = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let total = alloc_of s.id in
      let self = total -. num_or 0.0 (Hashtbl.find_opt child_w s.id) in
      let c, tot, slf =
        match Hashtbl.find_opt acc s.name with
        | Some (c, t, sf) -> (c, t, sf)
        | None -> (0, 0.0, 0.0)
      in
      Hashtbl.replace acc s.name (c + 1, tot +. total, slf +. self))
    t.spans;
  Hashtbl.fold
    (fun name (c, tot, slf) rows ->
      { m_name = name; m_count = c; m_total_w = tot; m_self_w = slf } :: rows)
    acc []
  |> List.sort (fun a b ->
         let c = compare b.m_self_w a.m_self_w in
         if c <> 0 then c else compare a.m_name b.m_name)

type mem_totals = {
  t_alloc_w : float;
  t_minor_gcs : int;
  t_major_gcs : int;
  t_heap_w : int;  (* peak over all spans *)
  t_rss_kb : int;
}

(* Totals come from root spans only — nested spans' flows are already
   included in their ancestors' deltas, so summing every span would
   double count.  Peaks are max over every span (they are end-values,
   not flows). *)
let mem_totals t =
  let res = span_resources t in
  let zero =
    { t_alloc_w = 0.0; t_minor_gcs = 0; t_major_gcs = 0; t_heap_w = 0; t_rss_kb = 0 }
  in
  List.fold_left
    (fun acc s ->
      match Hashtbl.find_opt res s.id with
      | None -> acc
      | Some r ->
        let is_root = s.parent = 0 || not (Hashtbl.mem t.by_id s.parent) in
        {
          t_alloc_w = (acc.t_alloc_w +. if is_root then r.r_alloc_w else 0.0);
          t_minor_gcs = (acc.t_minor_gcs + if is_root then r.r_minor_gcs else 0);
          t_major_gcs = (acc.t_major_gcs + if is_root then r.r_major_gcs else 0);
          t_heap_w = max acc.t_heap_w r.r_heap_w;
          t_rss_kb = max acc.t_rss_kb r.r_rss_kb;
        })
    zero t.spans

let has_resource_data t = Hashtbl.length (span_resources t) > 0

(* {2 Convergence}

   One row per [schedule] record (one per [Improve()] call), enriched
   with the [pass] records recorded under the same span: passes to
   convergence, moves applied vs retained after the rewind (the
   difference is wasted work), and the value trajectory. *)

type conv_row = {
  c_iteration : int;
  c_step : string;
  c_blocks : int;
  c_passes : int;
  c_moves : int;
  c_retained : int;
  c_restarts : int;
  c_cut_before : int;
  c_cut_after : int;
  c_value_after : Json.t option;
}

let pp_value_json ppf = function
  | Some (Json.Obj fields as j) -> (
    match
      ( fget "feasible_blocks" (Json.Obj fields),
        fnum "distance" (Json.Obj fields),
        fget "t_sum" (Json.Obj fields),
        fnum "io_bal" (Json.Obj fields) )
    with
    | Some (Json.Int f), Some d, Some (Json.Int t), Some e ->
      Format.fprintf ppf "(f=%d, d=%.4f, T=%d, dE=%.4f)" f d t e
    | _ -> Format.pp_print_string ppf (Json.to_string j))
  | Some j -> Format.pp_print_string ppf (Json.to_string j)
  | None -> Format.pp_print_string ppf "-"

let convergence t =
  List.filter_map
    (fun j ->
      match fstr "type" j with
      | Some "schedule" ->
        Some
          {
            c_iteration = int_or 0 (fint "iteration" j);
            c_step = (match fstr "step" j with Some s -> s | None -> "?");
            c_blocks =
              (match fget "blocks" j with
              | Some (Json.List l) -> List.length l
              | _ -> int_or 0 (fint "blocks" j));
            c_passes = int_or 0 (fint "passes" j);
            c_moves = int_or 0 (fint "moves" j);
            c_retained = int_or 0 (fint "moves_retained" j);
            c_restarts = int_or 0 (fint "restarts" j);
            c_cut_before = int_or 0 (fint "cut_before" j);
            c_cut_after = int_or 0 (fint "cut_after" j);
            c_value_after = fget "value_after" j;
          }
      | _ -> None)
    t.records

let pp_convergence ppf t =
  let rows = convergence t in
  if rows = [] then
    Format.fprintf ppf "no schedule records (run with --trace and --stats)@."
  else begin
    Format.fprintf ppf "%4s %-12s %6s %6s %6s %8s %6s %10s %s@." "it" "step"
      "blocks" "passes" "moves" "retained" "waste" "cut" "value";
    List.iter
      (fun r ->
        Format.fprintf ppf "%4d %-12s %6d %6d %6d %8d %6d %4d->%-4d %a@."
          r.c_iteration r.c_step r.c_blocks r.c_passes r.c_moves r.c_retained
          (r.c_moves - r.c_retained) r.c_cut_before r.c_cut_after pp_value_json
          r.c_value_after)
      rows;
    let improves = List.length rows in
    let passes = List.fold_left (fun a r -> a + r.c_passes) 0 rows in
    let moves = List.fold_left (fun a r -> a + r.c_moves) 0 rows in
    let retained = List.fold_left (fun a r -> a + r.c_retained) 0 rows in
    Format.fprintf ppf
      "total: %d Improve() calls, %d passes, %d moves (%d retained, %d rewound)@."
      improves passes moves retained (moves - retained)
  end

(* [pp_mem] renders the memory view of a trace: self-allocation
   hotspots, per-Improve() allocation rows (keyed by the [span] field
   of each schedule record), and root-span totals. *)
let pp_mem ppf t =
  if not (has_resource_data t) then
    Format.fprintf ppf
      "no resource records (record the trace with resource telemetry enabled)@."
  else begin
    let rows = memspots t in
    Format.fprintf ppf "== allocation hotspots (self words) ==@.";
    Format.fprintf ppf "%-28s %8s %14s %14s@." "phase" "count" "total_w" "self_w";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-28s %8d %14.0f %14.0f@." r.m_name r.m_count
          r.m_total_w r.m_self_w)
      rows;
    let res = span_resources t in
    let sched =
      List.filter_map
        (fun j ->
          match (fstr "type" j, fint "span" j) with
          | Some "schedule", Some sid ->
            Option.map
              (fun r ->
                (int_or 0 (fint "iteration" j),
                 (match fstr "step" j with Some s -> s | None -> "?"),
                 r))
              (Hashtbl.find_opt res sid)
          | _ -> None)
        t.records
    in
    if sched <> [] then begin
      Format.fprintf ppf "== per-pass allocation (one row per Improve() call) ==@.";
      Format.fprintf ppf "%4s %-12s %14s %10s %10s %10s@." "it" "step" "alloc_w"
        "minor_gcs" "major_gcs" "rss_kb";
      List.iter
        (fun (it, step, r) ->
          Format.fprintf ppf "%4d %-12s %14.0f %10d %10d %10d@." it step
            r.r_alloc_w r.r_minor_gcs r.r_major_gcs r.r_rss_kb)
        sched
    end;
    let tot = mem_totals t in
    Format.fprintf ppf
      "totals: alloc_w=%.0f, minor_gcs=%d, major_gcs=%d, peak heap_w=%d, peak rss_kb=%d@."
      tot.t_alloc_w tot.t_minor_gcs tot.t_major_gcs tot.t_heap_w tot.t_rss_kb
  end

(* {2 Pass detail} *)

let pp_passes ppf t =
  let rows =
    List.filter_map
      (fun j ->
        match fstr "type" j with Some "pass" -> Some j | _ -> None)
      t.records
  in
  if rows = [] then Format.fprintf ppf "no pass records@."
  else begin
    Format.fprintf ppf "%5s %5s %6s %8s %8s %10s@." "exec" "pass" "moves"
      "prefix" "gmax" "cut";
    List.iter
      (fun j ->
        let curve =
          match fget "gain_curve" j with
          | Some (Json.List l) ->
            List.filter_map
              (function
                | Json.Int i -> Some (float_of_int i)
                | Json.Float f -> Some f
                | _ -> None)
              l
          | _ -> []
        in
        let gmax = List.fold_left max neg_infinity (0.0 :: curve) in
        Format.fprintf ppf "%5d %5d %6d %8d %8.1f %4d->%d@."
          (int_or 0 (fint "execution" j))
          (int_or 0 (fint "pass" j))
          (int_or 0 (fint "moves" j))
          (int_or 0 (fint "best_prefix" j))
          gmax
          (int_or 0 (fint "cut_before" j))
          (int_or 0 (fint "cut_after" j)))
      rows
  end

(* {2 Diff} *)

let conv_totals t =
  let rows = convergence t in
  ( List.length rows,
    List.fold_left (fun a r -> a + r.c_passes) 0 rows,
    List.fold_left (fun a r -> a + r.c_moves) 0 rows,
    List.fold_left (fun a r -> a + r.c_retained) 0 rows,
    match List.rev rows with r :: _ -> r.c_cut_after | [] -> 0 )

let pp_diff ?(times = true) ppf a b =
  let ra = hotspots a and rb = hotspots b in
  let names =
    List.sort_uniq compare
      (List.map (fun r -> r.h_name) ra @ List.map (fun r -> r.h_name) rb)
  in
  let find rows n = List.find_opt (fun r -> r.h_name = n) rows in
  if times then begin
    Format.fprintf ppf "%-28s %10s %10s %10s@." "phase" "self_a" "self_b" "delta";
    List.iter
      (fun n ->
        let sa = match find ra n with Some r -> r.h_self_ms | None -> 0.0 in
        let sb = match find rb n with Some r -> r.h_self_ms | None -> 0.0 in
        Format.fprintf ppf "%-28s %10.3f %10.3f %+10.3f@." n sa sb (sb -. sa))
      names
  end
  else begin
    Format.fprintf ppf "%-28s %8s %8s %6s@." "phase" "count_a" "count_b" "delta";
    List.iter
      (fun n ->
        let ca = match find ra n with Some r -> r.h_count | None -> 0 in
        let cb = match find rb n with Some r -> r.h_count | None -> 0 in
        Format.fprintf ppf "%-28s %8d %8d %+6d@." n ca cb (cb - ca))
      names
  end;
  let ia, pa, ma, rta, cuta = conv_totals a in
  let ib, pb, mb, rtb, cutb = conv_totals b in
  Format.fprintf ppf
    "convergence: improves %d -> %d, passes %d -> %d, moves %d -> %d, retained %d -> %d, final cut %d -> %d@."
    ia ib pa pb ma mb rta rtb cuta cutb

(* {2 Ledger trends}

   Per-row statistics across ledger entries.  Median/MAD rather than
   mean/stddev: bench rows are heavy-tailed (GC pauses, CPU migration)
   and a single outlier entry must not move the baseline.  The MAD is
   scaled by 1.4826 so it estimates sigma under a normal model, and the
   regression threshold is the larger of a floor ([min_delta]) and
   [mad_k] scaled MADs — a noisy benchmark earns a wide band, a stable
   one a tight band. *)

let fmedian xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n mod 2 = 1 then a.(n / 2)
  else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

let fmad xs med = fmedian (List.map (fun x -> abs_float (x -. med)) xs)

type series = {
  sr_name : string;
  sr_tag : string;  (* workload tag from entry digests; "" when absent *)
  sr_unit : string;
  sr_higher_better : bool;
  sr_values : float list;  (* entry file order *)
}

(* Entries carrying canonical digests describe a specific workload
   (netlist x config); entries without them are legacy history.  Rows
   are grouped per (name, workload) so that e.g. run/.../cut measured
   on two different netlists never pollutes one baseline. *)
let workload_tag (e : Ledger.entry) =
  match (e.Ledger.netlist_digest, e.Ledger.config_digest) with
  | None, None -> ""
  | n, c ->
    let short = function
      | Some d when String.length d > 8 -> String.sub d 0 8
      | Some d -> d
      | None -> "-"
    in
    short n ^ "/" ^ short c

let series_of_entries entries =
  let order = ref [] in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (e : Ledger.entry) ->
      let tag = workload_tag e in
      List.iter
        (fun (r : Ledger.row) ->
          let key = (r.Ledger.name, tag) in
          match Hashtbl.find_opt tbl key with
          | Some s ->
            Hashtbl.replace tbl key
              { s with sr_values = r.Ledger.value :: s.sr_values }
          | None ->
            order := key :: !order;
            Hashtbl.add tbl key
              {
                sr_name = r.Ledger.name;
                sr_tag = tag;
                sr_unit = r.Ledger.unit_;
                sr_higher_better = r.Ledger.higher_better;
                sr_values = [ r.Ledger.value ];
              })
        e.Ledger.rows)
    entries;
  List.rev_map
    (fun key ->
      let s = Hashtbl.find tbl key in
      { s with sr_values = List.rev s.sr_values })
    !order
  |> List.rev

let pp_trend ppf entries =
  let series = series_of_entries entries in
  if series = [] then Format.fprintf ppf "empty ledger@."
  else begin
    (* a workload suffix is only informative when one row name spans
       several workloads — a single-workload ledger prints bare names *)
    let ambiguous name =
      List.length (List.filter (fun s -> s.sr_name = name) series) > 1
    in
    let display s =
      if s.sr_tag <> "" && ambiguous s.sr_name then
        s.sr_name ^ " [" ^ s.sr_tag ^ "]"
      else s.sr_name
    in
    Format.fprintf ppf "%-44s %-10s %-6s %3s %12s %12s %12s %8s@." "benchmark"
      "unit" "dir" "n" "median" "mad" "latest" "delta";
    List.iter
      (fun s ->
        let med = fmedian s.sr_values in
        let mad = fmad s.sr_values med in
        let latest = List.nth s.sr_values (List.length s.sr_values - 1) in
        let delta =
          if med = 0.0 || not (Float.is_finite med) then nan
          else 100.0 *. (latest -. med) /. abs_float med
        in
        Format.fprintf ppf "%-44s %-10s %-6s %3d %12.4g %12.4g %12.4g %+7.1f%%@."
          (display s) s.sr_unit
          (if s.sr_higher_better then "higher" else "lower")
          (List.length s.sr_values) med mad latest delta)
      series;
    Format.fprintf ppf "%d entries, %d benchmark rows@." (List.length entries)
      (List.length series)
  end

type verdict = {
  v_name : string;
  v_unit : string;
  v_n : int;  (* baseline entries backing the median *)
  v_baseline : float;
  v_mad : float;
  v_latest : float;
  v_worse : float;  (* worse-positive relative delta vs baseline *)
  v_allowed : float;
  v_regressed : bool;
}

let regress ?(min_delta = 0.20) ?(mad_k = 4.0) entries =
  match List.rev entries with
  | [] | [ _ ] -> []
  | latest :: prev_rev ->
    let base = series_of_entries (List.rev prev_rev) in
    let tag = workload_tag latest in
    (* prefer history from the same workload; fall back to the
       digest-less legacy series so pre-digest ledgers keep gating *)
    let find name =
      match
        List.find_opt (fun s -> s.sr_name = name && s.sr_tag = tag) base
      with
      | Some s -> Some s
      | None ->
        if tag = "" then None
        else List.find_opt (fun s -> s.sr_name = name && s.sr_tag = "") base
    in
    List.filter_map
      (fun (r : Ledger.row) ->
        match find r.Ledger.name with
        | None -> None  (* a new benchmark has no history to regress against *)
        | Some s ->
          let med = fmedian s.sr_values in
          if med = 0.0 || not (Float.is_finite med) then None
          else begin
            let mad = fmad s.sr_values med in
            let worse =
              (if r.Ledger.higher_better then med -. r.Ledger.value
               else r.Ledger.value -. med)
              /. abs_float med
            in
            let allowed = Float.max min_delta (mad_k *. 1.4826 *. mad /. abs_float med) in
            Some
              {
                v_name = r.Ledger.name;
                v_unit = r.Ledger.unit_;
                v_n = List.length s.sr_values;
                v_baseline = med;
                v_mad = mad;
                v_latest = r.Ledger.value;
                v_worse = worse;
                v_allowed = allowed;
                v_regressed = worse > allowed;
              }
          end)
      latest.Ledger.rows

let pp_regress ppf verdicts =
  if verdicts = [] then
    Format.fprintf ppf "nothing to compare (need a ledger with >= 2 entries sharing rows)@."
  else begin
    Format.fprintf ppf "%-44s %3s %12s %12s %8s %8s  %s@." "benchmark" "n"
      "baseline" "latest" "worse" "allowed" "verdict";
    List.iter
      (fun v ->
        Format.fprintf ppf "%-44s %3d %12.4g %12.4g %+7.1f%% %7.1f%%  %s@."
          v.v_name v.v_n v.v_baseline v.v_latest (100.0 *. v.v_worse)
          (100.0 *. v.v_allowed)
          (if v.v_regressed then "REGRESSED" else "ok"))
      verdicts;
    let bad = List.length (List.filter (fun v -> v.v_regressed) verdicts) in
    Format.fprintf ppf "%d rows checked, %d regression(s)@."
      (List.length verdicts) bad
  end

(* {2 Exposition consumers: scrape and live}

   Rendering for [fpart_inspect scrape] (one parsed exposition page as
   a compact table) and [fpart_inspect live] (the delta of two pages as
   one dashboard row).  Everything works on {!Expose.family} lists so a
   page fetched over HTTP and one read from a [--metrics-out] file look
   identical. *)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let pp_scrape ppf (fams : Expose.family list) =
  let sorted =
    List.sort (fun a b -> compare a.Expose.f_name b.Expose.f_name) fams
  in
  let w =
    List.fold_left
      (fun w (f : Expose.family) -> max w (String.length f.f_name))
      10 sorted
  in
  List.iter
    (fun (f : Expose.family) ->
      match f.Expose.f_type with
      | "histogram" ->
        let n = Option.value ~default:0.0 (Expose.hist_count fams f.f_name) in
        if n = 0.0 then Format.fprintf ppf "%-*s  count=0@." w f.f_name
        else begin
          let s = Option.value ~default:0.0 (Expose.hist_sum fams f.f_name) in
          let series = Expose.buckets fams f.f_name in
          Format.fprintf ppf "%-*s  count=%s sum=%s p50<=%s p95<=%s@." w
            f.f_name (fmt_value n) (fmt_value s)
            (fmt_value (Expose.quantile_of_buckets ~p:0.5 series))
            (fmt_value (Expose.quantile_of_buckets ~p:0.95 series))
        end
      | _ -> (
        match f.f_samples with
        | [ smp ] ->
          Format.fprintf ppf "%-*s  %s@." w f.f_name
            (fmt_value smp.Expose.s_value)
        | _ -> ()))
    sorted

type live_stats = {
  l_req_s : float;
  l_err_s : float;
  l_cold_n : int;
  l_cold_p50 : float;
  l_cold_p95 : float;
  l_warm_n : int;
  l_warm_p50 : float;
  l_warm_p95 : float;
  l_hit_ratio : float;
  l_cache_entries : int;
  l_rss_kb : int;
  l_heap_w : int;
}

let live_stats ~prev ~cur ~dt_s =
  let v name = Option.value ~default:0.0 (Expose.find cur name) in
  let dv name =
    let p =
      match prev with
      | [] -> 0.0
      | _ -> Option.value ~default:0.0 (Expose.find prev name)
    in
    Float.max 0.0 (v name -. p)
  in
  let hist name =
    let curb = Expose.buckets cur name in
    let d =
      match prev with
      | [] -> curb
      | _ -> Expose.delta_buckets ~prev:(Expose.buckets prev name) ~cur:curb
    in
    let n =
      match List.rev d with [] -> 0.0 | (_, total) :: _ -> total
    in
    ( int_of_float n,
      Expose.quantile_of_buckets ~p:0.5 d,
      Expose.quantile_of_buckets ~p:0.95 d )
  in
  let cold_n, cold_p50, cold_p95 = hist "fpart_serve_latency_cold_ms" in
  let warm_n, warm_p50, warm_p95 = hist "fpart_serve_latency_warm_ms" in
  let dt = if dt_s <= 0.0 then 1.0 else dt_s in
  {
    l_req_s = dv "fpart_serve_requests_total" /. dt;
    l_err_s = dv "fpart_serve_errors_total" /. dt;
    l_cold_n = cold_n;
    l_cold_p50 = cold_p50;
    l_cold_p95 = cold_p95;
    l_warm_n = warm_n;
    l_warm_p50 = warm_p50;
    l_warm_p95 = warm_p95;
    l_hit_ratio = v "fpart_serve_cache_hit_ratio";
    l_cache_entries = int_of_float (v "fpart_serve_cache_entries");
    l_rss_kb = int_of_float (v "fpart_process_max_rss_kb");
    l_heap_w = int_of_float (v "fpart_process_top_heap_words");
  }

let pp_live_header ppf () =
  Format.fprintf ppf "%8s %6s  %-20s %-20s %5s %7s %8s %10s@." "req/s" "err/s"
    "cold n/p50/p95 ms" "warm n/p50/p95 ms" "hit%" "entries" "rss MiB"
    "heap Mw"

let pp_live_row ppf l =
  let q v = if Float.is_nan v then "-" else fmt_value v in
  let h n p50 p95 = Printf.sprintf "%d/%s/%s" n (q p50) (q p95) in
  Format.fprintf ppf "%8.1f %6.1f  %-20s %-20s %4.0f%% %7d %8.1f %10.2f@."
    l.l_req_s l.l_err_s
    (h l.l_cold_n l.l_cold_p50 l.l_cold_p95)
    (h l.l_warm_n l.l_warm_p50 l.l_warm_p95)
    (l.l_hit_ratio *. 100.0) l.l_cache_entries
    (float_of_int l.l_rss_kb /. 1024.0)
    (float_of_int l.l_heap_w /. 1e6)
