(** Offline analysis of recorded traces (JSONL or chrome export).

    Pure functions over a loaded record list; [bin/fpart_inspect], the
    CI trace check and the unit tests all go through this module. *)

type span = {
  id : int;
  parent : int;
  track : int;
  name : string;
  t_ms : float;
  dur_ms : float;
}

type t

val of_records : Json.t list -> t

(** Records in file order (spans and telemetry alike). *)
val records : t -> Json.t list

val spans : t -> span list

(** Parse [text] as a trace: a chrome export (one JSON object with
    [traceEvents], events folded back into record shape) or JSONL.
    [Error] carries the first parse failure. *)
val load_string : string -> (t, string) result

val load_file : string -> (t, string) result

(** Structural errors: duplicate span ids, non-root spans whose parent
    never appears, negative durations, telemetry records referencing a
    missing span.  Empty list = well-formed. *)
val validate : t -> string list

type hotspot = {
  h_name : string;
  h_count : int;
  h_total_ms : float;
  h_self_ms : float;  (** duration minus direct children *)
}

(** Per-phase rows sorted by self time (descending, then name). *)
val hotspots : t -> hotspot list

(** [~times:false] prints only the deterministic columns (for tests). *)
val pp_hotspots : ?times:bool -> Format.formatter -> t -> unit

(** {2 Memory}

    The allocation mirror of the hotspot analysis, computed from the
    resource fields {!Recorder} appends to span records when
    {!Resource.enabled}. *)

type memspot = {
  m_name : string;
  m_count : int;
  m_total_w : float;  (** inclusive allocated words *)
  m_self_w : float;  (** allocation minus direct children's *)
}

(** Per-phase rows sorted by self allocation (descending, then name);
    spans without resource fields count as zero. *)
val memspots : t -> memspot list

type mem_totals = {
  t_alloc_w : float;  (** summed over root spans (nesting-safe) *)
  t_minor_gcs : int;
  t_major_gcs : int;
  t_heap_w : int;  (** peak major-heap words over all spans *)
  t_rss_kb : int;  (** peak resident set over all spans *)
}

val mem_totals : t -> mem_totals

(** True when at least one span record carries resource fields. *)
val has_resource_data : t -> bool

(** Memory report: self-allocation hotspots, per-Improve() allocation
    rows (schedule records joined to their spans) and totals. *)
val pp_mem : Format.formatter -> t -> unit

type conv_row = {
  c_iteration : int;
  c_step : string;
  c_blocks : int;
  c_passes : int;
  c_moves : int;
  c_retained : int;
  c_restarts : int;
  c_cut_before : int;
  c_cut_after : int;
  c_value_after : Json.t option;
}

(** One row per [schedule] record (one per [Improve()] call). *)
val convergence : t -> conv_row list

val pp_convergence : Format.formatter -> t -> unit

(** Per-pass detail from [pass] records (gain-prefix maxima, rewind
    points, cut trajectory). *)
val pp_passes : Format.formatter -> t -> unit

(** A/B comparison: per-phase self-time (or count, with
    [~times:false]) deltas plus convergence totals. *)
val pp_diff : ?times:bool -> Format.formatter -> t -> t -> unit

(** {2 Ledger trends}

    Noise-aware statistics over {!Ledger} entries: per-benchmark
    median and MAD (scaled by 1.4826 to estimate sigma), so one
    outlier entry cannot move a baseline. *)

(** Trajectory table: one line per benchmark row name and workload
    (entries carrying netlist/config digests are grouped per
    workload; digest-less entries form one legacy series), with
    direction, entry count, median, MAD, latest value and its signed
    relative delta vs the median.  When a row name spans several
    workloads each line carries a [name [netdigest/cfgdigest]]
    suffix. *)
val pp_trend : Format.formatter -> Ledger.entry list -> unit

type verdict = {
  v_name : string;
  v_unit : string;
  v_n : int;  (** baseline entries backing the median *)
  v_baseline : float;  (** median of all entries but the last *)
  v_mad : float;
  v_latest : float;
  v_worse : float;  (** worse-positive relative delta vs baseline *)
  v_allowed : float;  (** max of [min_delta] and [mad_k] scaled MADs *)
  v_regressed : bool;
}

(** Judge the last entry's rows against the median of all earlier
    entries measured on the same workload (matching netlist/config
    digests, falling back to the digest-less legacy series when the
    workload has no history of its own).  A row regresses when its
    worse-direction relative delta exceeds
    [max min_delta (mad_k * 1.4826 * mad / |median|)] — so the gate
    widens for historically noisy benchmarks.  Rows with no history,
    or a zero/non-finite baseline, are skipped.  Defaults:
    [min_delta = 0.20], [mad_k = 4.0]. *)
val regress :
  ?min_delta:float -> ?mad_k:float -> Ledger.entry list -> verdict list

val pp_regress : Format.formatter -> verdict list -> unit

(** {2 Exposition consumers}

    Rendering for [fpart_inspect scrape] and [live] over parsed
    {!Expose} pages, so an HTTP scrape and a [--metrics-out] file are
    consumed identically. *)

(** Compact sorted table of one page: one line per family — counters
    and gauges as [name value], histograms as
    [name count=… sum=… p50<=… p95<=…] (bucket-resolution quantiles). *)
val pp_scrape : Format.formatter -> Expose.family list -> unit

type live_stats = {
  l_req_s : float;  (** request rate over the interval *)
  l_err_s : float;
  l_cold_n : int;  (** cold completions in the interval *)
  l_cold_p50 : float;  (** interval quantiles, bucket resolution *)
  l_cold_p95 : float;
  l_warm_n : int;
  l_warm_p50 : float;
  l_warm_p95 : float;
  l_hit_ratio : float;  (** lifetime cache hit ratio gauge *)
  l_cache_entries : int;
  l_rss_kb : int;
  l_heap_w : int;
}

(** [live_stats ~prev ~cur ~dt_s] is the dashboard row for the
    interval between two scrapes ([prev = []] for the first frame:
    deltas fall back to lifetime values). *)
val live_stats :
  prev:Expose.family list -> cur:Expose.family list -> dt_s:float ->
  live_stats

val pp_live_header : Format.formatter -> unit -> unit

val pp_live_row : Format.formatter -> live_stats -> unit
