(** Offline analysis of recorded traces (JSONL or chrome export).

    Pure functions over a loaded record list; [bin/fpart_inspect], the
    CI trace check and the unit tests all go through this module. *)

type span = {
  id : int;
  parent : int;
  track : int;
  name : string;
  t_ms : float;
  dur_ms : float;
}

type t

val of_records : Json.t list -> t

(** Records in file order (spans and telemetry alike). *)
val records : t -> Json.t list

val spans : t -> span list

(** Parse [text] as a trace: a chrome export (one JSON object with
    [traceEvents], events folded back into record shape) or JSONL.
    [Error] carries the first parse failure. *)
val load_string : string -> (t, string) result

val load_file : string -> (t, string) result

(** Structural errors: duplicate span ids, non-root spans whose parent
    never appears, negative durations, telemetry records referencing a
    missing span.  Empty list = well-formed. *)
val validate : t -> string list

type hotspot = {
  h_name : string;
  h_count : int;
  h_total_ms : float;
  h_self_ms : float;  (** duration minus direct children *)
}

(** Per-phase rows sorted by self time (descending, then name). *)
val hotspots : t -> hotspot list

(** [~times:false] prints only the deterministic columns (for tests). *)
val pp_hotspots : ?times:bool -> Format.formatter -> t -> unit

type conv_row = {
  c_iteration : int;
  c_step : string;
  c_blocks : int;
  c_passes : int;
  c_moves : int;
  c_retained : int;
  c_restarts : int;
  c_cut_before : int;
  c_cut_after : int;
  c_value_after : Json.t option;
}

(** One row per [schedule] record (one per [Improve()] call). *)
val convergence : t -> conv_row list

val pp_convergence : Format.formatter -> t -> unit

(** Per-pass detail from [pass] records (gain-prefix maxima, rewind
    points, cut trajectory). *)
val pp_passes : Format.formatter -> t -> unit

(** A/B comparison: per-phase self-time (or count, with
    [~times:false]) deltas plus convergence totals. *)
val pp_diff : ?times:bool -> Format.formatter -> t -> t -> unit
