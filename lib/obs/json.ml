type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* --- parser --- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "offset %d: expected %c, found %c" !pos c c'
    | None -> fail "offset %d: expected %c, found end of input" !pos c
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "offset %d: bad literal" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape %S" hex
            | Some code ->
              (match Uchar.of_int code with
              | u -> Buffer.add_utf_8_uchar buf u
              | exception Invalid_argument _ -> fail "bad codepoint %d" code);
              go ())
          | c -> fail "bad escape \\%c" c)
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let any = ref false in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        any := true;
        advance ()
      done;
      if not !any then fail "offset %d: expected digits" !pos
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "offset %d: unexpected character %c" !pos c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "offset %d: trailing garbage" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let int = function Int i -> Some i | _ -> None
let pp ppf j = Format.pp_print_string ppf (to_string j)
