(** Minimal hand-rolled JSON: an emitter for the observability sinks and
    a small strict parser used by the tests and tooling to validate what
    the sinks wrote.  No dependencies; not a general-purpose JSON
    library (no streaming, no number-precision options). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering.  Strings are escaped per RFC 8259;
    non-finite floats render as [null] so the output is always valid
    JSON; integral floats keep a [.0] suffix so they parse back as
    [Float]. *)
val to_string : t -> string

val to_buffer : Buffer.t -> t -> unit

(** Strict recursive-descent parser for the subset {!to_string} emits
    (standard JSON).  Numbers containing [.], [e] or [E] parse as
    [Float], others as [Int].  Rejects trailing garbage. *)
val of_string : string -> (t, string) result

(** [member key j] is the value bound to [key] when [j] is an object. *)
val member : string -> t -> t option

(** [str j], [int j]: projections, [None] on shape mismatch. *)
val str : t -> string option

val int : t -> int option

val pp : Format.formatter -> t -> unit
