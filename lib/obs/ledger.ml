let schema = "fpart-ledger/1"

type row = {
  name : string;
  value : float;
  unit_ : string;
  higher_better : bool;
}

type entry = {
  time : float;
  git_rev : string option;
  kind : string;
  label : string;
  jobs : int;
  repeats : int;
  config_digest : string option;
  netlist_digest : string option;
  rows : row list;
  resource : Json.t option;
}

(* {2 JSON} *)

let opt_str = function None -> Json.Null | Some s -> Json.Str s

let row_to_json r =
  Json.Obj
    [
      ("name", Json.Str r.name);
      ("value", Json.Float r.value);
      ("unit", Json.Str r.unit_);
      ("better", Json.Str (if r.higher_better then "higher" else "lower"));
    ]

let entry_to_json e =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("time", Json.Float e.time);
      ("git_rev", opt_str e.git_rev);
      ("kind", Json.Str e.kind);
      ("label", Json.Str e.label);
      ("jobs", Json.Int e.jobs);
      ("repeats", Json.Int e.repeats);
      ("config_digest", opt_str e.config_digest);
      ("netlist_digest", opt_str e.netlist_digest);
      ("rows", Json.List (List.map row_to_json e.rows));
      ("resource", (match e.resource with Some j -> j | None -> Json.Null));
    ]

let ( let* ) = Result.bind

let str_field ?(required = true) k j =
  match Json.member k j with
  | Some (Json.Str s) -> Ok (Some s)
  | Some Json.Null | None when not required -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S is not a string" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let num_field k j =
  match Json.member k j with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing numeric field %S" k)

let int_field ?(default = None) k j =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing integer field %S" k))
  | Some _ -> Error (Printf.sprintf "field %S is not an integer" k)

let row_of_json j =
  let* name = str_field "name" j in
  let* value = num_field "value" j in
  let* unit_ = str_field "unit" j in
  let* better = str_field "better" j in
  match (name, unit_, better) with
  | Some name, Some unit_, Some better ->
    let* higher_better =
      match better with
      | "higher" -> Ok true
      | "lower" -> Ok false
      | s -> Error (Printf.sprintf "row %S: bad better=%S" name s)
    in
    Ok { name; value; unit_; higher_better }
  | _ -> Error "row with null name/unit/better"

let entry_of_json j =
  let* sch = str_field ~required:false "schema" j in
  let* () =
    match sch with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "unsupported ledger schema %S (want %S)" s schema)
    | None -> Error "record without a schema tag"
  in
  let* time = num_field "time" j in
  let* git_rev = str_field ~required:false "git_rev" j in
  let* kind = str_field "kind" j in
  let* label = str_field "label" j in
  let* jobs = int_field "jobs" j in
  let* repeats = int_field "repeats" j in
  let* config_digest = str_field ~required:false "config_digest" j in
  let* netlist_digest = str_field ~required:false "netlist_digest" j in
  let* rows =
    match Json.member "rows" j with
    | Some (Json.List l) ->
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let* row = row_of_json r in
          Ok (row :: acc))
        (Ok []) l
      |> Result.map List.rev
    | _ -> Error "missing rows list"
  in
  let resource =
    match Json.member "resource" j with
    | Some Json.Null | None -> None
    | Some r -> Some r
  in
  match (kind, label) with
  | Some kind, Some label ->
    Ok
      {
        time;
        git_rev;
        kind;
        label;
        jobs;
        repeats;
        config_digest;
        netlist_digest;
        rows;
        resource;
      }
  | _ -> Error "entry with null kind/label"

(* {2 File I/O} *)

let append path e =
  match
    Out_channel.with_open_gen
      [ Open_append; Open_creat; Open_wronly ]
      0o644 path
      (fun oc ->
        output_string oc (Json.to_string (entry_to_json e));
        output_char oc '\n')
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
    let entries = ref [] in
    let error = ref None in
    List.iteri
      (fun i line ->
        if !error = None then
          let line = String.trim line in
          if line <> "" then
            match Json.of_string line with
            | Error e -> error := Some (Printf.sprintf "line %d: %s" (i + 1) e)
            | Ok j -> (
              match entry_of_json j with
              | Error e -> error := Some (Printf.sprintf "line %d: %s" (i + 1) e)
              | Ok entry -> entries := entry :: !entries))
      (String.split_on_char '\n' text);
    (match !error with
    | Some e -> Error e
    | None -> Ok (List.rev !entries))

(* {2 Git revision}

   Stdlib-only: walk up from the cwd to the first .git, resolve HEAD
   through one level of symbolic ref (loose ref file, then
   packed-refs).  Every failure degrades to None — ledger entries are
   still useful without a revision. *)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Some (String.trim text)
  | exception Sys_error _ -> None

let resolve_ref gitdir ref_name =
  match read_file (Filename.concat gitdir ref_name) with
  | Some hex when hex <> "" -> Some hex
  | _ -> (
    match read_file (Filename.concat gitdir "packed-refs") with
    | None -> None
    | Some text ->
      List.find_map
        (fun line ->
          match String.index_opt line ' ' with
          | Some i when String.sub line (i + 1) (String.length line - i - 1) = ref_name ->
            Some (String.sub line 0 i)
          | _ -> None)
        (String.split_on_char '\n' text))

let rec find_gitdir dir depth =
  if depth > 8 then None
  else
    let cand = Filename.concat dir ".git" in
    if Sys.file_exists cand then
      if Sys.is_directory cand then Some cand
      else
        (* worktree: .git is a file "gitdir: <path>" *)
        match read_file cand with
        | Some s when String.length s > 8 && String.sub s 0 8 = "gitdir: " ->
          Some (String.sub s 8 (String.length s - 8))
        | _ -> None
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_gitdir parent (depth + 1)

let git_rev () =
  match Sys.getenv_opt "FPART_GIT_REV" with
  | Some rev when rev <> "" -> Some rev
  | _ -> (
    match find_gitdir (Sys.getcwd ()) 0 with
    | None -> None
    | Some gitdir -> (
      match read_file (Filename.concat gitdir "HEAD") with
      | None -> None
      | Some head ->
        if String.length head > 5 && String.sub head 0 5 = "ref: " then
          resolve_ref gitdir (String.sub head 5 (String.length head - 5))
        else Some head))
