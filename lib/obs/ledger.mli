(** Persistent run-history ledger: one schema-versioned JSONL record
    per benchmark or partitioning run, appended by [bench/main.exe]
    (env [FPART_BENCH_LEDGER]) and [fpart_cli --ledger], analyzed by
    [fpart_inspect trend]/[regress].

    Unlike the overwritable [BENCH_fpart.json] snapshot, the ledger
    accumulates: each entry carries the git revision, config/netlist
    digests and repeat count, so trajectories can be computed per
    benchmark row with noise-aware (median/MAD) statistics instead of a
    single fixed-threshold comparison. *)

(** Current schema tag, ["fpart-ledger/1"].  {!load} rejects files
    containing any other tag — mixing schemas would silently skew the
    statistics. *)
val schema : string

(** One measured quantity.  [name] is the trend key (e.g.
    ["gain_update/table2/maintenance-moves-per-s"]); [higher_better]
    orients the regression test. *)
type row = {
  name : string;
  value : float;
  unit_ : string;
  higher_better : bool;
}

type entry = {
  time : float;  (** unix seconds; callers supply it (this library has no clock) *)
  git_rev : string option;
  kind : string;  (** ["bench"] or ["run"] *)
  label : string;
  jobs : int;
  repeats : int;
  config_digest : string option;
  netlist_digest : string option;
  rows : row list;
  resource : Json.t option;  (** a {!Resource.summary} record *)
}

val entry_to_json : entry -> Json.t

(** Strict: missing/foreign [schema], malformed rows etc. are
    [Error]. *)
val entry_of_json : Json.t -> (entry, string) result

(** Append one entry to [path] (created if absent). *)
val append : string -> entry -> (unit, string) result

(** Load every entry of a ledger file, in file order.  Any
    unparseable line or schema mismatch fails the whole load with a
    [line N: ...] message — a corrupt ledger must not silently drop
    history. *)
val load : string -> (entry list, string) result

(** Current git revision: [FPART_GIT_REV] env override, else a
    stdlib-only walk to [.git/HEAD] (following one level of
    [ref:]/packed-refs indirection); [None] outside a repository. *)
val git_rev : unit -> string option
