(* Domain-safety layout: an instrument handle is interned once (under
   [intern_mutex], since dynamically named counters can be created from
   worker domains) but its storage is one cell *per domain*, held in
   domain-local storage.  Increments and observations touch only the
   calling domain's cell, so the hot paths stay unsynchronized; a pool
   joins worker activity back into the caller's cells through
   {!snapshot_and_reset} / {!merge}. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type ccell = { mutable n : int }
type hcell = { mutable samples : float array; mutable len : int }

(* Every cell a domain creates is registered here so the domain can
   enumerate its own activity when snapshotting. *)
type local = {
  mutable lcounters : (string * ccell) list;
  mutable lhists : (string * hcell) list;
}

let local_key : local Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { lcounters = []; lhists = [] })

type counter = { c_name : string; c_cells : ccell Domain.DLS.key }
type histogram = { h_name : string; h_cells : hcell Domain.DLS.key }

let intern_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.protect intern_mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c =
          {
            c_name = name;
            c_cells =
              Domain.DLS.new_key (fun () ->
                  let cell = { n = 0 } in
                  let l = Domain.DLS.get local_key in
                  l.lcounters <- (name, cell) :: l.lcounters;
                  cell);
          }
        in
        Hashtbl.add counters name c;
        c)

let ccell c = Domain.DLS.get c.c_cells
let incr c = let cell = ccell c in cell.n <- cell.n + 1
let add c k = let cell = ccell c in cell.n <- cell.n + k
let counter_value c = (ccell c).n

let histogram name =
  Mutex.protect intern_mutex (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_cells =
              Domain.DLS.new_key (fun () ->
                  let cell = { samples = [||]; len = 0 } in
                  let l = Domain.DLS.get local_key in
                  l.lhists <- (name, cell) :: l.lhists;
                  cell);
          }
        in
        Hashtbl.add histograms name h;
        h)

let hcell h = Domain.DLS.get h.h_cells

let happend cell x =
  if cell.len = Array.length cell.samples then begin
    let grown = Array.make (max 64 (2 * cell.len)) 0.0 in
    Array.blit cell.samples 0 grown 0 cell.len;
    cell.samples <- grown
  end;
  cell.samples.(cell.len) <- x;
  cell.len <- cell.len + 1

let observe h x = if Atomic.get enabled_flag then happend (hcell h) x

let count h = (hcell h).len

let sorted_samples cell =
  let a = Array.sub cell.samples 0 cell.len in
  Array.sort compare a;
  a

let quantile h p =
  let cell = hcell h in
  if cell.len = 0 then Float.nan
  else begin
    let a = sorted_samples cell in
    (* Nearest rank: the ⌈p·N⌉-th smallest sample, with the endpoints
       pinned (p ≤ 0 is the minimum, p ≥ 1 the maximum — ⌈0·N⌉ = 0
       names no sample) and a small tolerance on the product so binary
       rounding cannot push an exact rank over a ceiling boundary
       (0.1·30 evaluates to 3.0000000000000004; without the tolerance
       its ceiling names the 4th sample instead of the 3rd). *)
    if p <= 0.0 then a.(0)
    else if p >= 1.0 then a.(cell.len - 1)
    else begin
      let rank = int_of_float (Float.ceil ((p *. float_of_int cell.len) -. 1e-9)) in
      a.(max 0 (min (cell.len - 1) (rank - 1)))
    end
  end

let hist_max h =
  let cell = hcell h in
  if cell.len = 0 then Float.nan
  else begin
    let m = ref cell.samples.(0) in
    for i = 1 to cell.len - 1 do
      if cell.samples.(i) > !m then m := cell.samples.(i)
    done;
    !m
  end

let hist_mean h =
  let cell = hcell h in
  if cell.len = 0 then Float.nan
  else begin
    let s = ref 0.0 in
    for i = 0 to cell.len - 1 do
      s := !s +. cell.samples.(i)
    done;
    !s /. float_of_int cell.len
  end

type span = float

let span_begin () = if Atomic.get enabled_flag then Clock.now () else -1.0

let span_end t0 ~name ~attrs =
  if t0 >= 0.0 then begin
    let dur_ms = (Clock.now () -. t0) *. 1000.0 in
    observe (histogram name) dur_ms;
    Sink.emit
      (Json.Obj
         (("type", Json.Str "span")
         :: ("name", Json.Str name)
         :: ("dur_ms", Json.Float dur_ms)
         :: attrs))
  end

(* {2 Cross-domain snapshots} *)

type snapshot = {
  snap_counters : (string * int) list;
  snap_histograms : (string * float array) list;
}

let snapshot_and_reset () =
  let l = Domain.DLS.get local_key in
  let cs =
    List.filter_map
      (fun (name, (cell : ccell)) ->
        if cell.n = 0 then None
        else begin
          let n = cell.n in
          cell.n <- 0;
          Some (name, n)
        end)
      l.lcounters
  in
  let hs =
    List.filter_map
      (fun (name, (cell : hcell)) ->
        if cell.len = 0 then None
        else begin
          let s = Array.sub cell.samples 0 cell.len in
          cell.len <- 0;
          Some (name, s)
        end)
      l.lhists
  in
  { snap_counters = cs; snap_histograms = hs }

let merge snap =
  List.iter (fun (name, n) -> add (counter name) n) snap.snap_counters;
  List.iter
    (fun (name, samples) ->
      (* re-gating on [enabled] would drop samples legitimately recorded
         while the flag was on in the producing domain *)
      let cell = hcell (histogram name) in
      Array.iter (happend cell) samples)
    snap.snap_histograms

(* {2 Reporting (calling domain's cells)} *)

let interned tbl =
  Mutex.protect intern_mutex (fun () ->
      Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

let active_counters () =
  interned counters
  |> List.filter_map (fun c ->
         let n = counter_value c in
         if n = 0 then None else Some (c.c_name, n))
  |> List.sort compare

let active_histograms () =
  interned histograms
  |> List.filter (fun h -> count h > 0)
  |> List.sort (fun a b -> compare a.h_name b.h_name)

let hist_summary h =
  Json.Obj
    [
      ("count", Json.Int (count h));
      ("mean", Json.Float (hist_mean h));
      ("p50", Json.Float (quantile h 0.5));
      ("p95", Json.Float (quantile h 0.95));
      ("max", Json.Float (hist_max h));
    ]

let report () =
  Json.Obj
    [
      ("type", Json.Str "metrics");
      ( "counters",
        Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) (active_counters ())) );
      ( "histograms",
        Json.Obj (List.map (fun h -> (h.h_name, hist_summary h)) (active_histograms ()))
      );
    ]

let pp_report ppf () =
  Format.fprintf ppf "== fpart_obs metrics ==@.";
  let cs = active_counters () and hs = active_histograms () in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun (name, n) -> Format.fprintf ppf "  %-32s %12d@." name n) cs
  end;
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@.";
    Format.fprintf ppf "  %-32s %9s %9s %9s %9s %9s@." "" "count" "mean" "p50"
      "p95" "max";
    List.iter
      (fun h ->
        Format.fprintf ppf "  %-32s %9d %9.3f %9.3f %9.3f %9.3f@." h.h_name
          (count h) (hist_mean h) (quantile h 0.5) (quantile h 0.95) (hist_max h))
      hs
  end;
  if cs = [] && hs = [] then Format.fprintf ppf "  (no activity recorded)@."

let reset () =
  List.iter (fun c -> (ccell c).n <- 0) (interned counters);
  List.iter (fun h -> (hcell h).len <- 0) (interned histograms)
