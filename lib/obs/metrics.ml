let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type counter = { c_name : string; mutable n : int }

type histogram = {
  h_name : string;
  mutable samples : float array;
  mutable len : int;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; n = 0 } in
    Hashtbl.add counters name c;
    c

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let counter_value c = c.n

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h = { h_name = name; samples = [||]; len = 0 } in
    Hashtbl.add histograms name h;
    h

let observe h x =
  if !enabled_flag then begin
    if h.len = Array.length h.samples then begin
      let grown = Array.make (max 64 (2 * h.len)) 0.0 in
      Array.blit h.samples 0 grown 0 h.len;
      h.samples <- grown
    end;
    h.samples.(h.len) <- x;
    h.len <- h.len + 1
  end

let count h = h.len

let sorted_samples h =
  let a = Array.sub h.samples 0 h.len in
  Array.sort compare a;
  a

let quantile h p =
  if h.len = 0 then Float.nan
  else begin
    let a = sorted_samples h in
    (* nearest rank: the ⌈p·N⌉-th smallest sample *)
    let i = int_of_float (Float.ceil (p *. float_of_int h.len)) - 1 in
    a.(max 0 (min (h.len - 1) i))
  end

let hist_max h =
  if h.len = 0 then Float.nan
  else begin
    let m = ref h.samples.(0) in
    for i = 1 to h.len - 1 do
      if h.samples.(i) > !m then m := h.samples.(i)
    done;
    !m
  end

let hist_mean h =
  if h.len = 0 then Float.nan
  else begin
    let s = ref 0.0 in
    for i = 0 to h.len - 1 do
      s := !s +. h.samples.(i)
    done;
    !s /. float_of_int h.len
  end

type span = float

let span_begin () = if !enabled_flag then Clock.now () else -1.0

let span_end t0 ~name ~attrs =
  if t0 >= 0.0 then begin
    let dur_ms = (Clock.now () -. t0) *. 1000.0 in
    observe (histogram name) dur_ms;
    Sink.emit
      (Json.Obj
         (("type", Json.Str "span")
         :: ("name", Json.Str name)
         :: ("dur_ms", Json.Float dur_ms)
         :: attrs))
  end

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let active_counters () =
  sorted_values counters
  |> List.filter (fun c -> c.n <> 0)
  |> List.sort (fun a b -> compare a.c_name b.c_name)

let active_histograms () =
  sorted_values histograms
  |> List.filter (fun h -> h.len > 0)
  |> List.sort (fun a b -> compare a.h_name b.h_name)

let hist_summary h =
  Json.Obj
    [
      ("count", Json.Int h.len);
      ("mean", Json.Float (hist_mean h));
      ("p50", Json.Float (quantile h 0.5));
      ("p95", Json.Float (quantile h 0.95));
      ("max", Json.Float (hist_max h));
    ]

let report () =
  Json.Obj
    [
      ("type", Json.Str "metrics");
      ( "counters",
        Json.Obj (List.map (fun c -> (c.c_name, Json.Int c.n)) (active_counters ())) );
      ( "histograms",
        Json.Obj (List.map (fun h -> (h.h_name, hist_summary h)) (active_histograms ()))
      );
    ]

let pp_report ppf () =
  Format.fprintf ppf "== fpart_obs metrics ==@.";
  let cs = active_counters () and hs = active_histograms () in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun c -> Format.fprintf ppf "  %-32s %12d@." c.c_name c.n) cs
  end;
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@.";
    Format.fprintf ppf "  %-32s %9s %9s %9s %9s %9s@." "" "count" "mean" "p50"
      "p95" "max";
    List.iter
      (fun h ->
        Format.fprintf ppf "  %-32s %9d %9.3f %9.3f %9.3f %9.3f@." h.h_name
          h.len (hist_mean h) (quantile h 0.5) (quantile h 0.95) (hist_max h))
      hs
  end;
  if cs = [] && hs = [] then Format.fprintf ppf "  (no activity recorded)@."

let reset () =
  Hashtbl.iter (fun _ c -> c.n <- 0) counters;
  Hashtbl.iter (fun _ h -> h.len <- 0) histograms
