(* Domain-safety layout: an instrument handle is interned once (under
   [intern_mutex], since dynamically named counters can be created from
   worker domains) but its storage is one cell *per domain*, held in
   domain-local storage.  Increments and observations touch only the
   calling domain's cell, so the hot paths stay unsynchronized; a pool
   joins worker activity back into the caller's cells through
   {!snapshot_and_reset} / {!merge}. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type ccell = { mutable n : int }

(* Exposition buckets: one fixed ladder shared by every histogram
   (durations in milliseconds), so the Prometheus families rendered by
   {!Expose} are comparable across instruments and across engines.
   [bucket_index x] names the first bound >= x, or [nbounds] (the +Inf
   bucket) when x exceeds the ladder. *)
let bucket_bounds =
  [|
    0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0;
    2500.0; 5000.0; 10000.0; 30000.0;
  |]

let nbounds = Array.length bucket_bounds

let bucket_index x =
  let rec go i =
    if i >= nbounds then nbounds
    else if x <= bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

(* A histogram cell keeps two views of its stream:

   - lifetime aggregates ([total_count], [total_sum], per-bucket
     [total_buckets]) that grow monotonically — what a Prometheus
     scrape must see, and O(1) memory however long the daemon lives;
   - a bounded ring of the most recent {!window_capacity} samples, the
     basis for {!quantile}/{!hist_max} — so a long-lived daemon's p95
     reflects current behaviour instead of averaging over its whole
     uptime.

   Samples evicted from the ring are folded into [ev_*] aggregates so a
   cross-domain snapshot can transfer exactly what the cell saw:
   lifetime = evicted aggregates + ring contents, always. *)
type hcell = {
  mutable samples : float array;
  mutable len : int;  (* valid samples in the ring, <= window_capacity *)
  mutable pos : int;  (* next write slot once the ring is full *)
  mutable total_count : int;
  mutable total_sum : float;
  mutable total_buckets : int array;  (* length nbounds + 1; last = +Inf *)
  mutable ev_count : int;
  mutable ev_sum : float;
  mutable ev_buckets : int array;
}

let window_capacity = 4096

(* Every cell a domain creates is registered here so the domain can
   enumerate its own activity when snapshotting. *)
type local = {
  mutable lcounters : (string * ccell) list;
  mutable lhists : (string * hcell) list;
}

let local_key : local Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { lcounters = []; lhists = [] })

type counter = { c_name : string; c_cells : ccell Domain.DLS.key }
type histogram = { h_name : string; h_cells : hcell Domain.DLS.key }

let intern_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.protect intern_mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c =
          {
            c_name = name;
            c_cells =
              Domain.DLS.new_key (fun () ->
                  let cell = { n = 0 } in
                  let l = Domain.DLS.get local_key in
                  l.lcounters <- (name, cell) :: l.lcounters;
                  cell);
          }
        in
        Hashtbl.add counters name c;
        c)

let ccell c = Domain.DLS.get c.c_cells
let incr c = let cell = ccell c in cell.n <- cell.n + 1
let add c k = let cell = ccell c in cell.n <- cell.n + k
let counter_value c = (ccell c).n

let histogram name =
  Mutex.protect intern_mutex (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_cells =
              Domain.DLS.new_key (fun () ->
                  let cell =
                    {
                      samples = [||];
                      len = 0;
                      pos = 0;
                      total_count = 0;
                      total_sum = 0.0;
                      total_buckets = Array.make (nbounds + 1) 0;
                      ev_count = 0;
                      ev_sum = 0.0;
                      ev_buckets = Array.make (nbounds + 1) 0;
                    }
                  in
                  let l = Domain.DLS.get local_key in
                  l.lhists <- (name, cell) :: l.lhists;
                  cell);
          }
        in
        Hashtbl.add histograms name h;
        h)

let hcell h = Domain.DLS.get h.h_cells

let happend cell x =
  cell.total_count <- cell.total_count + 1;
  cell.total_sum <- cell.total_sum +. x;
  let b = bucket_index x in
  cell.total_buckets.(b) <- cell.total_buckets.(b) + 1;
  if cell.len < window_capacity then begin
    (* still growing: the ring doubles up to the window capacity *)
    if cell.len = Array.length cell.samples then begin
      let grown =
        Array.make (min window_capacity (max 64 (2 * cell.len))) 0.0
      in
      Array.blit cell.samples 0 grown 0 cell.len;
      cell.samples <- grown
    end;
    cell.samples.(cell.len) <- x;
    cell.len <- cell.len + 1;
    cell.pos <- cell.len mod window_capacity
  end
  else begin
    (* full: evict the oldest sample into the lifetime-only aggregates *)
    let old = cell.samples.(cell.pos) in
    cell.ev_count <- cell.ev_count + 1;
    cell.ev_sum <- cell.ev_sum +. old;
    let ob = bucket_index old in
    cell.ev_buckets.(ob) <- cell.ev_buckets.(ob) + 1;
    cell.samples.(cell.pos) <- x;
    cell.pos <- (cell.pos + 1) mod window_capacity
  end

let observe h x = if Atomic.get enabled_flag then happend (hcell h) x

let count h = (hcell h).total_count

let hist_sum h = (hcell h).total_sum

let bucket_totals h = Array.copy (hcell h).total_buckets

let window_count h = (hcell h).len

let sorted_samples cell =
  let a = Array.sub cell.samples 0 cell.len in
  Array.sort compare a;
  a

let quantile h p =
  let cell = hcell h in
  if cell.len = 0 then Float.nan
  else begin
    let a = sorted_samples cell in
    (* Nearest rank: the ⌈p·N⌉-th smallest sample, with the endpoints
       pinned (p ≤ 0 is the minimum, p ≥ 1 the maximum — ⌈0·N⌉ = 0
       names no sample) and a small tolerance on the product so binary
       rounding cannot push an exact rank over a ceiling boundary
       (0.1·30 evaluates to 3.0000000000000004; without the tolerance
       its ceiling names the 4th sample instead of the 3rd). *)
    if p <= 0.0 then a.(0)
    else if p >= 1.0 then a.(cell.len - 1)
    else begin
      let rank = int_of_float (Float.ceil ((p *. float_of_int cell.len) -. 1e-9)) in
      a.(max 0 (min (cell.len - 1) (rank - 1)))
    end
  end

let hist_max h =
  let cell = hcell h in
  if cell.len = 0 then Float.nan
  else begin
    let m = ref cell.samples.(0) in
    for i = 1 to cell.len - 1 do
      if cell.samples.(i) > !m then m := cell.samples.(i)
    done;
    !m
  end

let hist_mean h =
  let cell = hcell h in
  if cell.total_count = 0 then Float.nan
  else cell.total_sum /. float_of_int cell.total_count

type span = float

let span_begin () = if Atomic.get enabled_flag then Clock.now () else -1.0

let span_end t0 ~name ~attrs =
  if t0 >= 0.0 then begin
    let dur_ms = (Clock.now () -. t0) *. 1000.0 in
    observe (histogram name) dur_ms;
    Sink.emit
      (Json.Obj
         (("type", Json.Str "span")
         :: ("name", Json.Str name)
         :: ("dur_ms", Json.Float dur_ms)
         :: attrs))
  end

(* {2 Cross-domain snapshots} *)

(* A histogram snapshot carries the ring contents in insertion order
   plus the aggregates of the samples the window already evicted —
   together they account for every observation the cell saw, and when
   nothing was evicted the merge replays the exact sample stream, so a
   [--jobs n] run's totals stay bit-identical to a sequential run's. *)
type hist_snap = {
  hs_recent : float array;  (* window contents, oldest first *)
  hs_ev_count : int;
  hs_ev_sum : float;
  hs_ev_buckets : int array;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_histograms : (string * hist_snap) list;
}

let ring_in_order (cell : hcell) =
  if cell.len < window_capacity then Array.sub cell.samples 0 cell.len
  else
    Array.init window_capacity (fun i ->
        cell.samples.((cell.pos + i) mod window_capacity))

let clear_hcell (cell : hcell) =
  cell.len <- 0;
  cell.pos <- 0;
  cell.total_count <- 0;
  cell.total_sum <- 0.0;
  Array.fill cell.total_buckets 0 (nbounds + 1) 0;
  cell.ev_count <- 0;
  cell.ev_sum <- 0.0;
  Array.fill cell.ev_buckets 0 (nbounds + 1) 0

let snapshot_and_reset () =
  let l = Domain.DLS.get local_key in
  let cs =
    List.filter_map
      (fun (name, (cell : ccell)) ->
        if cell.n = 0 then None
        else begin
          let n = cell.n in
          cell.n <- 0;
          Some (name, n)
        end)
      l.lcounters
  in
  let hs =
    List.filter_map
      (fun (name, (cell : hcell)) ->
        if cell.total_count = 0 then None
        else begin
          let s =
            {
              hs_recent = ring_in_order cell;
              hs_ev_count = cell.ev_count;
              hs_ev_sum = cell.ev_sum;
              hs_ev_buckets = Array.copy cell.ev_buckets;
            }
          in
          clear_hcell cell;
          Some (name, s)
        end)
      l.lhists
  in
  { snap_counters = cs; snap_histograms = hs }

let merge snap =
  List.iter (fun (name, n) -> add (counter name) n) snap.snap_counters;
  List.iter
    (fun (name, s) ->
      (* re-gating on [enabled] would drop samples legitimately recorded
         while the flag was on in the producing domain *)
      let cell = hcell (histogram name) in
      Array.iter (happend cell) s.hs_recent;
      (* samples the producer's window already dropped: lifetime-only *)
      cell.total_count <- cell.total_count + s.hs_ev_count;
      cell.total_sum <- cell.total_sum +. s.hs_ev_sum;
      cell.ev_count <- cell.ev_count + s.hs_ev_count;
      cell.ev_sum <- cell.ev_sum +. s.hs_ev_sum;
      Array.iteri
        (fun i n ->
          cell.total_buckets.(i) <- cell.total_buckets.(i) + n;
          cell.ev_buckets.(i) <- cell.ev_buckets.(i) + n)
        s.hs_ev_buckets)
    snap.snap_histograms

(* {2 Reporting (calling domain's cells)} *)

let interned tbl =
  Mutex.protect intern_mutex (fun () ->
      Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

let active_counters () =
  interned counters
  |> List.filter_map (fun c ->
         let n = counter_value c in
         if n = 0 then None else Some (c.c_name, n))
  |> List.sort compare

let active_histograms () =
  interned histograms
  |> List.filter (fun h -> count h > 0)
  |> List.sort (fun a b -> compare a.h_name b.h_name)

let hist_name h = h.h_name

let hist_summary h =
  Json.Obj
    [
      ("count", Json.Int (count h));
      ("mean", Json.Float (hist_mean h));
      ("p50", Json.Float (quantile h 0.5));
      ("p95", Json.Float (quantile h 0.95));
      ("max", Json.Float (hist_max h));
    ]

let report () =
  Json.Obj
    [
      ("type", Json.Str "metrics");
      ( "counters",
        Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) (active_counters ())) );
      ( "histograms",
        Json.Obj (List.map (fun h -> (h.h_name, hist_summary h)) (active_histograms ()))
      );
    ]

let pp_report ppf () =
  Format.fprintf ppf "== fpart_obs metrics ==@.";
  let cs = active_counters () and hs = active_histograms () in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun (name, n) -> Format.fprintf ppf "  %-32s %12d@." name n) cs
  end;
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@.";
    Format.fprintf ppf "  %-32s %9s %9s %9s %9s %9s@." "" "count" "mean" "p50"
      "p95" "max";
    List.iter
      (fun h ->
        Format.fprintf ppf "  %-32s %9d %9.3f %9.3f %9.3f %9.3f@." h.h_name
          (count h) (hist_mean h) (quantile h 0.5) (quantile h 0.95) (hist_max h))
      hs
  end;
  if cs = [] && hs = [] then Format.fprintf ppf "  (no activity recorded)@."

let reset () =
  List.iter (fun c -> (ccell c).n <- 0) (interned counters);
  List.iter (fun h -> clear_hcell (hcell h)) (interned histograms)
