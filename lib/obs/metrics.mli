(** Process-wide metrics registry: counters, histograms and spans.

    Designed so that instrumentation can stay in the hot paths
    permanently:

    - counters are plain [int] field increments, always on, never
      allocating — cheap enough for per-move / per-bucket-operation
      call sites;
    - histogram observations and spans are gated on {!enabled} and cost
      one branch when the layer is off (spans additionally skip the
      clock read);
    - sinks only see records when {!enabled} is set.

    Counters and histograms are interned by name: creating the same
    name twice returns the same instrument, so modules can create their
    instruments at initialisation time without coordination.

    {b Domain-safety.}  A handle is process-wide but its storage is one
    cell per domain ([Domain.DLS]), so increments and observations from
    concurrent domains never race and never synchronize.  All read
    operations ({!counter_value}, {!quantile}, {!report}, {!reset}, ...)
    act on the {e calling} domain's cells.  A fork/join layer makes
    worker activity visible to its caller by taking a
    {!snapshot_and_reset} on the worker after each task and {!merge}-ing
    the snapshots, in task order, on the caller after the join — this is
    what [Fpart_exec.Pool] does, and it makes the merged totals equal to
    a sequential run's. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Counters} *)

type counter

(** [counter name] interns a monotonically increasing counter. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Histograms} *)

type histogram

(** [histogram name] interns a histogram of float samples (span
    durations are recorded in milliseconds; other instruments document
    their own unit).

    A histogram keeps {e lifetime} aggregates — observation count, sum
    and fixed-ladder bucket counts, all monotone and O(1) memory, what
    a Prometheus scrape ({!Expose}) needs — plus a sliding window of
    the most recent {!window_capacity} raw samples that backs
    {!quantile}/{!hist_max}, so a long-lived daemon's p95 tracks
    current behaviour instead of aggregating forever. *)
val histogram : string -> histogram

(** No-op unless {!enabled}. *)
val observe : histogram -> float -> unit

(** Lifetime observation count (monotone, survives window eviction). *)
val count : histogram -> int

(** Lifetime sum of every observed value. *)
val hist_sum : histogram -> float

(** Upper bounds of the fixed exposition bucket ladder, shared by all
    histograms (milliseconds); the implicit last bucket is +Inf. *)
val bucket_bounds : float array

(** Lifetime per-bucket observation counts: length
    [Array.length bucket_bounds + 1], the final slot counting samples
    above the ladder (+Inf).  Non-cumulative; {!Expose} renders the
    cumulative Prometheus form. *)
val bucket_totals : histogram -> int array

(** Samples currently held in the sliding window
    ([min (count h) window_capacity]). *)
val window_count : histogram -> int

val window_capacity : int

(** [quantile h p] by nearest rank over the {e sliding window}: the
    ⌈p·N⌉-th smallest of the most recent [window_capacity] samples,
    with [p <= 0] pinned to the minimum and [p >= 1] to the maximum;
    [nan] when empty.  A single-sample histogram returns that sample
    for every [p].  Until the window first fills this is exactly the
    all-samples quantile. *)
val quantile : histogram -> float -> float

(** Maximum over the sliding window. *)
val hist_max : histogram -> float

(** Lifetime mean ({!hist_sum} / {!count}). *)
val hist_mean : histogram -> float

(** {1 Spans}

    A span is a start timestamp; {!span_begin} returns a negative
    sentinel when the layer is disabled and {!span_end} is then a
    no-op.  Ending a span records its duration (ms) in the histogram
    interned under [name] and emits a
    [{"type":"span","name":...,"dur_ms":...,<attrs>}] record to the
    current {!Sink}. *)

type span = float

val span_begin : unit -> span
val span_end : span -> name:string -> attrs:(string * Json.t) list -> unit

(** {1 Cross-domain snapshots} *)

(** Activity of one domain between two resets: counter totals and raw
    histogram samples, by instrument name. *)
type snapshot

(** [snapshot_and_reset ()] captures and zeroes every instrument cell of
    the calling domain.  Cheap when idle (instruments with no activity
    are skipped). *)
val snapshot_and_reset : unit -> snapshot

(** [merge snap] adds a snapshot's counters and histogram samples into
    the calling domain's cells.  Merging the per-task snapshots of a
    fork in task order reproduces the sequential totals exactly. *)
val merge : snapshot -> unit

(** {1 Reporting} *)

(** Every counter with a non-zero value on the calling domain, as
    [(name, value)] sorted by name. *)
val active_counters : unit -> (string * int) list

(** Every histogram with at least one lifetime observation on the
    calling domain, sorted by name. *)
val active_histograms : unit -> histogram list

val hist_name : histogram -> string

(** Snapshot of every non-idle instrument as a JSON object
    [{"type":"metrics","counters":{...},"histograms":{name:{count,mean,p50,p95,max}}}],
    names sorted. *)
val report : unit -> Json.t

(** Human-readable rendering of {!report}. *)
val pp_report : Format.formatter -> unit -> unit

(** Zero every counter and empty every histogram (instruments stay
    registered). *)
val reset : unit -> unit
