(* Flight recorder: hierarchical spans on a per-domain span stack.

   Each domain keeps its own stack, id counter and entry buffer in
   domain-local storage, so recording never synchronizes on the hot
   path (the single process-wide lock is only taken when an entry
   reaches {!Sink.emit}).  Determinism across [--jobs] comes from the
   capture/merge protocol: {!Fpart_exec.Pool} wraps every task in
   {!capture}, which buffers the task's entries under task-local ids
   starting at 1, and the caller {!merge}s the snapshots back in task
   index order.  Because local ids are dense and allocated in span
   begin order, the rebase in [merge] reproduces exactly the id stream
   a sequential run would have allocated — a [--jobs 4] trace differs
   from a [--jobs 1] trace only in [track] (domain) values and
   timestamps, never in ids, parents or record order. *)

type entry =
  | Espan of {
      id : int;
      parent : int;  (* 0 = root of its capture (or of the process) *)
      track : int;
      name : string;
      t_ms : float;
      dur_ms : float;
      attrs : (string * Json.t) list;
    }
  | Eblob of { span : int; track : int; t_ms : float; fields : (string * Json.t) list }

type dstate = {
  mutable stack : int list;  (* open span ids, innermost first *)
  mutable next_id : int;
  mutable buffering : bool;
  mutable buf : entry list;  (* reversed emission order *)
  mutable request : string option;  (* request id stamped on records *)
}

let dstate_key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { stack = []; next_id = 1; buffering = false; buf = []; request = None })

let dstate () = Domain.DLS.get dstate_key
let track () = (Domain.self () :> int)

(* {2 Request attribution}

   A service mints one id per request and sets it on every domain that
   works on the request's behalf (the caller around cache/ECO handling,
   the worker inside its task closure).  While set, every span record
   and telemetry event closed on that domain carries a ["req"] field,
   so one slow request can be carved out of a live daemon's trace and
   its convergence events joined to the access-log line with the same
   id. *)

let set_request r = (dstate ()).request <- r
let current_request () = (dstate ()).request

let with_request r f =
  let d = dstate () in
  let saved = d.request in
  d.request <- r;
  Fun.protect ~finally:(fun () -> d.request <- saved) f

let req_attrs d attrs =
  match d.request with
  | None -> attrs
  | Some r -> ("req", Json.Str r) :: attrs

(* {2 Epoch}

   Timestamps are milliseconds since the first recorded instant (or
   since {!set_epoch}), so they survive a [Clock] source whose origin
   is arbitrary (monotonic clocks count from boot).  The unsynchronized
   read can at worst see a stale [None] and fall through to the
   mutex. *)

let epoch_mutex = Mutex.create ()
let epoch = ref None

let rel_ms t =
  let e =
    match !epoch with
    | Some e -> e
    | None ->
      Mutex.protect epoch_mutex (fun () ->
          match !epoch with
          | Some e -> e
          | None ->
            epoch := Some t;
            t)
  in
  (t -. e) *. 1000.0

let set_epoch () =
  Mutex.protect epoch_mutex (fun () -> epoch := Some (Clock.now ()))

(* {2 Emission} *)

let entry_to_json = function
  | Espan { id; parent; track; name; t_ms; dur_ms; attrs } ->
    Json.Obj
      (("type", Json.Str "span")
      :: ("name", Json.Str name)
      :: ("dur_ms", Json.Float dur_ms)
      :: ("id", Json.Int id)
      :: ("parent", Json.Int parent)
      :: ("track", Json.Int track)
      :: ("t_ms", Json.Float t_ms)
      :: attrs)
  | Eblob { span; track; t_ms; fields } ->
    Json.Obj
      (fields
      @ [
          ("span", Json.Int span);
          ("track", Json.Int track);
          ("t_ms", Json.Float t_ms);
        ])

let push_entry d e =
  if d.buffering then d.buf <- e :: d.buf else Sink.emit (entry_to_json e)

(* {2 Spans} *)

type span = {
  s_id : int;
  s_parent : int;
  s_name : string;
  s_t0 : float;
  s_r0 : Resource.sample option;  (* resource reading at begin, when on *)
}

let disabled =
  { s_id = 0; s_parent = 0; s_name = ""; s_t0 = 0.0; s_r0 = None }

let span_begin name =
  if not (Metrics.enabled ()) then disabled
  else begin
    let d = dstate () in
    let id = d.next_id in
    d.next_id <- id + 1;
    let parent = match d.stack with [] -> 0 | p :: _ -> p in
    d.stack <- id :: d.stack;
    let r0 = if Resource.enabled () then Some (Resource.sample ()) else None in
    { s_id = id; s_parent = parent; s_name = name; s_t0 = Clock.now (); s_r0 = r0 }
  end

let span_end s ~attrs =
  if s.s_id <> 0 then begin
    let d = dstate () in
    (match d.stack with
    | id :: rest when id = s.s_id -> d.stack <- rest
    | stack ->
      (* unbalanced end (an exception unwound past children): drop the
         stray ids above [s] as well, so later spans do not inherit a
         dead parent.  A double end ([s] not on the stack) is a no-op. *)
      if List.mem s.s_id stack then begin
        let rec drop = function
          | [] -> []
          | id :: rest -> if id = s.s_id then rest else drop rest
        in
        d.stack <- drop stack
      end);
    let t1 = Clock.now () in
    let dur_ms = (t1 -. s.s_t0) *. 1000.0 in
    Metrics.observe (Metrics.histogram s.s_name) dur_ms;
    (* Resource deltas are sampled on the same domain as the begin
       sample, so flows are differences of this domain's own counters
       — scheduling-independent, and they ride through capture/merge
       as ordinary span attrs. *)
    let res =
      match s.s_r0 with
      | Some r0 when Resource.enabled () ->
        Some (Resource.delta ~before:r0 ~after:(Resource.sample ()))
      | _ -> None
    in
    let attrs =
      match res with
      | None -> attrs
      | Some dl -> attrs @ Resource.delta_fields dl
    in
    let attrs = req_attrs d attrs in
    push_entry d
      (Espan
         {
           id = s.s_id;
           parent = s.s_parent;
           track = track ();
           name = s.s_name;
           t_ms = rel_ms s.s_t0;
           dur_ms;
           attrs;
         });
    (* One counter record per closed span: sinks export it as a Chrome
       ["C"] event so Perfetto draws heap/RSS tracks alongside the
       span flame graph. *)
    match res with
    | None -> ()
    | Some dl ->
      push_entry d
        (Eblob
           {
             span = s.s_id;
             track = track ();
             t_ms = rel_ms t1;
             fields =
               [
                 ("type", Json.Str "counter");
                 ("heap_w", Json.Int dl.Resource.d_top_heap_words);
                 ("rss_kb", Json.Int dl.Resource.d_maxrss_kb);
               ];
           })
  end

let current_id () =
  match (dstate ()).stack with [] -> 0 | id :: _ -> id

let event fields =
  let d = dstate () in
  push_entry d
    (Eblob
       {
         span = current_id ();
         track = track ();
         t_ms = rel_ms (Clock.now ());
         fields = req_attrs d fields;
       })

(* {2 Capture / merge} *)

type snapshot = entry list  (* emission order *)

let empty_snapshot = []

let capture f =
  if not (Metrics.enabled ()) then (f (), empty_snapshot)
  else begin
    let d = dstate () in
    let saved_stack = d.stack
    and saved_next = d.next_id
    and saved_buffering = d.buffering
    and saved_buf = d.buf in
    d.stack <- [];
    d.next_id <- 1;
    d.buffering <- true;
    d.buf <- [];
    let restore () =
      let entries = List.rev d.buf in
      d.stack <- saved_stack;
      d.next_id <- saved_next;
      d.buffering <- saved_buffering;
      d.buf <- saved_buf;
      entries
    in
    match f () with
    | v -> (v, restore ())
    | exception e ->
      ignore (restore ());
      raise e
  end

let merge entries =
  match entries with
  | [] -> ()
  | entries ->
    let d = dstate () in
    (* Captured span ids are dense 1..n in begin order (nested merges
       inside the capture draw from the same counter), so rebasing on
       the caller's counter reproduces the sequential allocation. *)
    let n =
      List.fold_left
        (fun acc e -> match e with Espan _ -> acc + 1 | Eblob _ -> acc)
        0 entries
    in
    let base = d.next_id - 1 in
    d.next_id <- d.next_id + n;
    let reparent = match d.stack with [] -> 0 | p :: _ -> p in
    let remap id = if id = 0 then reparent else id + base in
    List.iter
      (fun e ->
        push_entry d
          (match e with
          | Espan s -> Espan { s with id = s.id + base; parent = remap s.parent }
          | Eblob b -> Eblob { b with span = remap b.span }))
      entries

let reset () =
  let d = dstate () in
  d.stack <- [];
  d.next_id <- 1;
  d.buffering <- false;
  d.buf <- [];
  d.request <- None;
  (* A recorder reset is a measurement-epoch boundary (daemon restart,
     bench repeat, test isolation): the span-duration histograms and
     counters the spans fed must restart with it, or a long-lived
     process's quantiles and exposition counters would aggregate
     across epochs forever. *)
  Metrics.reset ();
  Mutex.protect epoch_mutex (fun () -> epoch := None)
