(** Flight recorder: hierarchical spans over the flat {!Metrics} layer.

    A recorder span is a {!Metrics} span plus tree structure: every
    span record carries a process-unique [id], the [parent] id of the
    span open on the same domain when it began ([0] for a root), the
    domain [track] it ran on, and an epoch-relative begin time [t_ms].
    Records keep the [{"type":"span","name":...,"dur_ms":...}] prefix
    of the flat layer, so existing consumers (stats tables, cram
    greps) read them unchanged, and every [span_end] still feeds the
    duration histogram of the same name.

    Recording is gated on {!Metrics.enabled} with the same cost model
    as flat spans: when disabled, {!span_begin} returns a shared
    sentinel and {!span_end} is a single comparison.

    {2 Determinism across domains}

    {!Fpart_exec.Pool} wraps each task in {!capture} and {!merge}s the
    snapshots in task index order at the join.  Captured entries use
    task-local ids which [merge] rebases onto the caller's counter
    preserving begin order, and capture roots are re-parented to the
    span open at the merge point — so a [--jobs n] run emits the same
    id/parent/order stream as a sequential one, with only [track]
    values and timestamps differing. *)

type span

(** [span_begin name] opens a span as a child of the innermost open
    span on this domain.  Cheap no-op returning a sentinel when
    {!Metrics.enabled} is false. *)
val span_begin : string -> span

(** [span_end s ~attrs] closes [s]: pops it from the domain stack,
    observes its duration in the histogram named at [span_begin], and
    emits the span record with [attrs] appended.  Tolerates unbalanced
    ends (an exception that unwound past children). *)
val span_end : span -> attrs:(string * Json.t) list -> unit

(** Id of the innermost open span on this domain; [0] when none. *)
val current_id : unit -> int

(** {2 Request attribution}

    While a request id is set on a domain, every span record closed and
    every {!event} emitted on that domain carries a ["req"] field — the
    hook a service uses to attribute recorder output (including
    convergence telemetry from deep inside the engine) to the request
    being served.  Ids are per-domain: a pool worker sets the id inside
    its task closure ({!with_request}), so captured entries carry the
    stamp through {!merge} unchanged. *)

val set_request : string option -> unit

val current_request : unit -> string option

(** [with_request r f] runs [f] with the domain's request id set to
    [r], restoring the previous id afterwards (also on exceptions). *)
val with_request : string option -> (unit -> 'a) -> 'a

(** [event fields] emits [fields] as a record annotated with the
    current span id ([span]), domain ([track]) and emission time
    ([t_ms]).  Inside a {!capture} the record is buffered with the
    spans, so its [span] reference survives the id rebase in
    {!merge}.  Not gated: callers decide (trace events have their own
    switch). *)
val event : (string * Json.t) list -> unit

(** Entries recorded during a {!capture}, in emission order. *)
type snapshot

val empty_snapshot : snapshot

(** [capture f] runs [f] with a fresh span stack and id space,
    buffering everything it records on this domain; returns [f]'s
    value and the buffered entries.  Nestable, and restores the
    previous recording state even if [f] raises (the partial capture
    is then discarded).  When {!Metrics.enabled} is false this is just
    [f ()]. *)
val capture : (unit -> 'a) -> 'a * snapshot

(** [merge snap] replays a captured snapshot on the calling domain:
    span ids are rebased onto this domain's counter (preserving begin
    order) and capture roots become children of the innermost span
    open here.  Call in task index order for a deterministic
    stream. *)
val merge : snapshot -> unit

(** Pin [t_ms = 0] to now.  Binaries call this once at startup after
    installing the real clock source; otherwise the epoch is the first
    recorded instant. *)
val set_epoch : unit -> unit

(** Discard the calling domain's recorder state (open spans, id
    counter, capture buffer, request id) and the epoch, {e and} reset
    the {!Metrics} instruments ({!Metrics.reset}): a recorder reset is
    a measurement-epoch boundary, and the span-duration histograms the
    spans fed must restart with it so a long-lived process's quantiles
    and exposition counters do not aggregate across epochs. *)
val reset : unit -> unit
