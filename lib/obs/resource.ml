(* Resource telemetry: Gc.quick_stat plus an injected OS reading.

   Everything here must stay dependency-free (no unix): the default OS
   source reads /proc/self/status with stdlib channels and falls back
   to zeros on other systems; binaries install a getrusage(2) stub via
   {!set_os_source} (see bin/obs_setup.ml), mirroring how the
   monotonic clock reaches {!Clock.set_source}. *)

type os = { os_maxrss_kb : int; os_utime_s : float; os_stime_s : float }

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_gcs : int;
  major_gcs : int;
  compactions : int;
  top_heap_words : int;
  os : os;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* {2 OS reading} *)

let proc_status_maxrss_kb () =
  (* VmHWM is the peak resident set in kB; the file is absent outside
     Linux and procfs-less sandboxes, in which case we report 0 rather
     than fail — resource telemetry degrades, never aborts a run. *)
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception Sys_error _ -> 0
  | text ->
    let kb = ref 0 in
    List.iter
      (fun line ->
        match String.index_opt line ':' with
        | Some i when String.sub line 0 i = "VmHWM" ->
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          let digits =
            String.to_seq rest
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          if digits <> "" then kb := int_of_string digits
        | _ -> ())
      (String.split_on_char '\n' text);
    !kb

(* The /proc parse costs ~10us — two orders of magnitude over
   Gc.quick_stat — so per-span sampling refreshes the peak-RSS reading
   only every [rss_refresh]-th call and serves a cached value in
   between.  maxrss is monotone and slow-moving, so span peaks lag by
   at most a handful of samples; the cache itself only ever grows. *)
let rss_refresh = 32
let rss_tick = Atomic.make 0
let rss_cache = Atomic.make 0

let throttled_maxrss_kb () =
  if Atomic.fetch_and_add rss_tick 1 mod rss_refresh = 0 then begin
    let kb = proc_status_maxrss_kb () in
    let rec publish () =
      let old = Atomic.get rss_cache in
      if kb > old && not (Atomic.compare_and_set rss_cache old kb) then
        publish ()
    in
    publish ();
    max kb (Atomic.get rss_cache)
  end
  else Atomic.get rss_cache

let default_os_source () =
  { os_maxrss_kb = throttled_maxrss_kb (); os_utime_s = Sys.time (); os_stime_s = 0.0 }

let os_source = ref default_os_source
let set_os_source f = os_source := f

(* {2 Watermarks}

   One cell per domain: peak readings seen by this domain's samples.
   Pool workers snapshot theirs after each task and the caller
   max-merges them, so post-join summaries see worker peaks even when
   the caller never sampled at the high-water moment (relevant for
   scripted sources and any future per-domain gauge). *)

type watermark = { w_top_heap_words : int; w_maxrss_kb : int }

let zero_watermark = { w_top_heap_words = 0; w_maxrss_kb = 0 }

let watermark_key : watermark ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref zero_watermark)

let watermark () = !(Domain.DLS.get watermark_key)

let raise_watermark s =
  let cell = Domain.DLS.get watermark_key in
  let w = !cell in
  cell :=
    {
      w_top_heap_words = max w.w_top_heap_words s.top_heap_words;
      w_maxrss_kb = max w.w_maxrss_kb s.os.os_maxrss_kb;
    }

let snapshot_watermark () =
  let cell = Domain.DLS.get watermark_key in
  let w = !cell in
  cell := zero_watermark;
  w

let merge_watermark w =
  let cell = Domain.DLS.get watermark_key in
  let c = !cell in
  cell :=
    {
      w_top_heap_words = max c.w_top_heap_words w.w_top_heap_words;
      w_maxrss_kb = max c.w_maxrss_kb w.w_maxrss_kb;
    }

let reset () = Domain.DLS.get watermark_key := zero_watermark

(* {2 Sampling} *)

let default_sample () =
  let st = Gc.quick_stat () in
  {
    minor_words = st.Gc.minor_words;
    promoted_words = st.Gc.promoted_words;
    major_words = st.Gc.major_words;
    minor_gcs = st.Gc.minor_collections;
    major_gcs = st.Gc.major_collections;
    compactions = st.Gc.compactions;
    top_heap_words = st.Gc.top_heap_words;
    os = !os_source ();
  }

let source : (unit -> sample) option ref = ref None
let set_source f = source := f

let sample () =
  let s = match !source with Some f -> f () | None -> default_sample () in
  raise_watermark s;
  s

(* {2 Deltas} *)

type delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_gcs : int;
  d_major_gcs : int;
  d_top_heap_words : int;
  d_maxrss_kb : int;
  d_utime_s : float;
  d_stime_s : float;
}

let zero_delta =
  {
    d_minor_words = 0.0;
    d_promoted_words = 0.0;
    d_major_words = 0.0;
    d_minor_gcs = 0;
    d_major_gcs = 0;
    d_top_heap_words = 0;
    d_maxrss_kb = 0;
    d_utime_s = 0.0;
    d_stime_s = 0.0;
  }

let delta ~before ~after =
  {
    d_minor_words = after.minor_words -. before.minor_words;
    d_promoted_words = after.promoted_words -. before.promoted_words;
    d_major_words = after.major_words -. before.major_words;
    d_minor_gcs = after.minor_gcs - before.minor_gcs;
    d_major_gcs = after.major_gcs - before.major_gcs;
    d_top_heap_words = after.top_heap_words;
    d_maxrss_kb = after.os.os_maxrss_kb;
    d_utime_s = after.os.os_utime_s -. before.os.os_utime_s;
    d_stime_s = after.os.os_stime_s -. before.os.os_stime_s;
  }

let add a b =
  {
    d_minor_words = a.d_minor_words +. b.d_minor_words;
    d_promoted_words = a.d_promoted_words +. b.d_promoted_words;
    d_major_words = a.d_major_words +. b.d_major_words;
    d_minor_gcs = a.d_minor_gcs + b.d_minor_gcs;
    d_major_gcs = a.d_major_gcs + b.d_major_gcs;
    d_top_heap_words = max a.d_top_heap_words b.d_top_heap_words;
    d_maxrss_kb = max a.d_maxrss_kb b.d_maxrss_kb;
    d_utime_s = a.d_utime_s +. b.d_utime_s;
    d_stime_s = a.d_stime_s +. b.d_stime_s;
  }

let alloc_words d = d.d_minor_words +. d.d_major_words -. d.d_promoted_words

let delta_fields d =
  [
    ("alloc_w", Json.Float (alloc_words d));
    ("minor_w", Json.Float d.d_minor_words);
    ("promoted_w", Json.Float d.d_promoted_words);
    ("major_w", Json.Float d.d_major_words);
    ("minor_gcs", Json.Int d.d_minor_gcs);
    ("major_gcs", Json.Int d.d_major_gcs);
    ("heap_w", Json.Int d.d_top_heap_words);
    ("rss_kb", Json.Int d.d_maxrss_kb);
    ("utime_ms", Json.Float (1000.0 *. d.d_utime_s));
    ("stime_ms", Json.Float (1000.0 *. d.d_stime_s));
  ]

(* {2 Summary} *)

let summary () =
  let s = sample () in
  let w = watermark () in
  Json.Obj
    [
      ("type", Json.Str "gc");
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("major_words", Json.Float s.major_words);
      ( "alloc_words",
        Json.Float (s.minor_words +. s.major_words -. s.promoted_words) );
      ("minor_gcs", Json.Int s.minor_gcs);
      ("major_gcs", Json.Int s.major_gcs);
      ("compactions", Json.Int s.compactions);
      ("top_heap_words", Json.Int (max s.top_heap_words w.w_top_heap_words));
      ("maxrss_kb", Json.Int (max s.os.os_maxrss_kb w.w_maxrss_kb));
      ("utime_s", Json.Float s.os.os_utime_s);
      ("stime_s", Json.Float s.os.os_stime_s);
    ]

let pp_summary ppf () =
  Format.fprintf ppf "== fpart_obs gc/resource ==@.";
  match summary () with
  | Json.Obj fields ->
    List.iter
      (fun (k, v) ->
        if k <> "type" then
          match v with
          | Json.Float f -> Format.fprintf ppf "  %-18s %.1f@." k f
          | Json.Int i -> Format.fprintf ppf "  %-18s %d@." k i
          | v -> Format.fprintf ppf "  %-18s %s@." k (Json.to_string v))
      fields
  | _ -> ()
