(** Resource telemetry: cheap GC/RSS/CPU accounting for spans and
    end-of-run summaries.

    A {!sample} is a [Gc.quick_stat] snapshot (no heap walk, a handful
    of field reads) plus an {!os} reading from an injected source —
    binaries install a [getrusage(2)] stub, the library default reads
    [/proc/self/status] so `dune runtest` works without C stubs, and
    tests can script the whole sampler with {!set_source}.

    {!Recorder.span_begin} takes a sample when {!enabled}, and
    {!Recorder.span_end} appends the {!delta} fields to the span record
    plus one [{"type":"counter"}] record (exported as a Chrome Trace
    ["C"] event).  Flow fields (words allocated, collections, CPU time)
    are differences and therefore scheduling-independent per domain;
    peak fields ([heap_w], [rss_kb]) are monotone end-values.

    {b Domain-safety.}  Sampling is per-domain: [Gc.quick_stat] reads
    the calling domain's view and each domain keeps its own peak
    {!watermark} cell, which {!Fpart_exec.Pool} snapshots on workers
    and max-merges into the caller at the join — mirroring
    {!Metrics.snapshot_and_reset}/{!Metrics.merge}, and order-independent
    because [max] is commutative. *)

(** Process-level readings the GC cannot see.  [os_maxrss_kb] is the
    peak resident set in KiB (monotone); [os_utime_s]/[os_stime_s] are
    cumulative user/system CPU seconds. *)
type os = { os_maxrss_kb : int; os_utime_s : float; os_stime_s : float }

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_gcs : int;
  major_gcs : int;
  compactions : int;
  top_heap_words : int;  (** high-water of the major heap, monotone *)
  os : os;
}

(** Gate for per-span sampling in {!Recorder}; defaults to [false] so
    untouched callers pay nothing.  Direct calls to {!sample} and
    {!summary} work regardless. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Replace the OS reading used by the default sampler.  The initial
    source reads [VmHWM] from [/proc/self/status] (0 when absent) and
    reports [Sys.time ()] as user time. *)
val set_os_source : (unit -> os) -> unit

(** [set_source (Some f)] replaces the {e whole} sampler — including
    the GC part — with [f]; [None] restores the default.  For
    deterministic tests. *)
val set_source : (unit -> sample) option -> unit

(** Take a sample on the calling domain (and raise its {!watermark}). *)
val sample : unit -> sample

(** [proc_status_maxrss_kb ()] parses [VmHWM] out of
    [/proc/self/status]; [0] when unreadable.  Exposed for processes
    (e.g. the bench runner) that install their own {!set_os_source}
    but still want the stdlib-only RSS reading. *)
val proc_status_maxrss_kb : unit -> int

(** Cached wrapper over {!proc_status_maxrss_kb}: the ~10us [/proc]
    parse runs only every 32nd call, the (monotone, process-wide)
    cached reading is served in between.  This is what the default OS
    source uses; custom sources that keep the [/proc] path should use
    it too. *)
val throttled_maxrss_kb : unit -> int

(** What happened between two samples: flows are differences, peaks
    ([d_top_heap_words], [d_maxrss_kb]) are the end-values of monotone
    gauges. *)
type delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_gcs : int;
  d_major_gcs : int;
  d_top_heap_words : int;
  d_maxrss_kb : int;
  d_utime_s : float;
  d_stime_s : float;
}

val delta : before:sample -> after:sample -> delta
val zero_delta : delta

(** Sum the flows, max the peaks. *)
val add : delta -> delta -> delta

(** Total words allocated: minor + major − promoted (promoted words
    are counted in both source pools). *)
val alloc_words : delta -> float

(** Span-record attributes for a delta: [alloc_w], [minor_w],
    [promoted_w], [major_w], [minor_gcs], [major_gcs], [heap_w],
    [rss_kb], [utime_ms], [stime_ms]. *)
val delta_fields : delta -> (string * Json.t) list

(** {1 Per-domain peak watermarks}

    Highest peak readings observed by {!sample} calls on the calling
    domain since the last reset.  {!Fpart_exec.Pool} carries worker
    watermarks back to the caller so a post-join {!summary} reflects
    peaks that only a worker domain observed. *)

type watermark = { w_top_heap_words : int; w_maxrss_kb : int }

val watermark : unit -> watermark

(** Capture and zero the calling domain's watermark. *)
val snapshot_watermark : unit -> watermark

(** Max-merge a watermark into the calling domain's cell. *)
val merge_watermark : watermark -> unit

(** {1 End-of-run summary} *)

(** Cumulative process totals as a
    [{"type":"gc",...}] record: allocation words, collection counts,
    [top_heap_words]/[maxrss_kb] peaks (including merged watermarks)
    and CPU seconds. *)
val summary : unit -> Json.t

(** Human-readable rendering of {!summary}, one indented
    [name value] line per field under a [== fpart_obs gc/resource ==]
    header. *)
val pp_summary : Format.formatter -> unit -> unit

(** Drop the calling domain's watermark; for test isolation. *)
val reset : unit -> unit
