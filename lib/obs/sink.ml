type t = { emit : Json.t -> unit; close : unit -> unit }

let null = { emit = ignore; close = ignore }

(* Shared write-error guard for channel-backed sinks: the first
   [Sys_error] is reported once on stderr and the sink goes inert, so a
   full disk or a closed descriptor degrades a traced run instead of
   killing it — and instead of silently swallowing every record. *)
let guarded ~what oc ~write ~close_channel =
  let failed = ref false in
  let protect op =
    if not !failed then
      try op () with
      | Sys_error msg ->
        failed := true;
        prerr_endline (Printf.sprintf "fpart_obs: %s sink error: %s (further records dropped)" what msg)
  in
  {
    emit = (fun j -> protect (fun () -> write j));
    close =
      (fun () ->
        protect (fun () -> flush oc);
        if oc != stdout && oc != stderr then
          try close_out oc
          with Sys_error msg ->
            if not !failed then
              prerr_endline
                (Printf.sprintf "fpart_obs: %s sink error on close: %s" what msg);
        ignore close_channel);
  }

let jsonl oc =
  guarded ~what:"jsonl" oc ~close_channel:true ~write:(fun j ->
      output_string oc (Json.to_string j);
      output_char oc '\n')

(* {2 Chrome Trace Event export}

   One streaming JSON object [{"traceEvents":[...]}], loadable by
   chrome://tracing and Perfetto.  Recorder span records (carrying
   [t_ms]/[dur_ms]/[track]) become complete ["X"] phase events on
   pid 1 with the domain track as tid; recorder resource records
   ([{"type":"counter",...}]) become counter ["C"] events named
   "memory" whose numeric args Perfetto plots as heap/RSS tracks;
   every other record (trace events, pass/schedule telemetry, legacy
   flat spans) becomes an instant ["i"] event at its emission time.  The remaining record
   fields — including the recorder's [id]/[parent] span ids — ride in
   ["args"], so offline tooling can rebuild the span tree from the
   chrome file too.  [close] appends thread-name metadata for every
   track seen and terminates the object, so the finished file parses
   as strict JSON. *)

let chrome oc =
  let count = ref 0 in
  let tracks = ref [] in
  let fget k fields = List.assoc_opt k fields in
  let num = function
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.0
  in
  let intv = function Some (Json.Int i) -> i | _ -> 0 in
  let write_event ev =
    output_string oc (if !count = 0 then "{\"traceEvents\":[\n" else ",\n");
    output_string oc (Json.to_string ev);
    incr count
  in
  let event_of j =
    match j with
    | Json.Obj fields ->
      let ty =
        match fget "type" fields with Some (Json.Str s) -> s | _ -> "record"
      in
      let track = intv (fget "track" fields) in
      if not (List.mem track !tracks) then tracks := track :: !tracks;
      let ts = 1000.0 *. num (fget "t_ms" fields) in
      (* [ts]/[dur]/[tid] and the event name carry the positional
         fields; everything else rides in [args] so a reader (e.g.
         [Inspect.load_file]) can rebuild the original records. *)
      if ty = "span" then
        let name =
          match fget "name" fields with Some (Json.Str s) -> s | _ -> "span"
        in
        let args =
          Json.Obj
            (List.filter
               (fun (k, _) ->
                 not
                   (List.mem k [ "type"; "name"; "dur_ms"; "t_ms"; "track" ]))
               fields)
        in
        Json.Obj
          [
            ("name", Json.Str name);
            ("cat", Json.Str "fpart");
            ("ph", Json.Str "X");
            ("ts", Json.Float ts);
            ("dur", Json.Float (1000.0 *. num (fget "dur_ms" fields)));
            ("pid", Json.Int 1);
            ("tid", Json.Int track);
            ("args", args);
          ]
      else if ty = "counter" then
        (* Recorder resource records become counter ("C") events: the
           numeric args define the counter series Perfetto plots.  The
           [span] back-reference is dropped from args (it would plot as
           a bogus series); the loader reconstructs a span-less counter
           record, which [Inspect.validate] accepts. *)
        let args =
          Json.Obj
            (List.filter
               (fun (k, _) -> not (List.mem k [ "t_ms"; "track"; "span" ]))
               fields)
        in
        Json.Obj
          [
            ("name", Json.Str "memory");
            ("cat", Json.Str "fpart");
            ("ph", Json.Str "C");
            ("ts", Json.Float ts);
            ("pid", Json.Int 1);
            ("tid", Json.Int track);
            ("args", args);
          ]
      else
        let args =
          Json.Obj
            (List.filter (fun (k, _) -> k <> "t_ms" && k <> "track") fields)
        in
        let name =
          match fget "event" fields with Some (Json.Str s) -> ty ^ "." ^ s | _ -> ty
        in
        Json.Obj
          [
            ("name", Json.Str name);
            ("cat", Json.Str "fpart");
            ("ph", Json.Str "i");
            ("ts", Json.Float ts);
            ("pid", Json.Int 1);
            ("tid", Json.Int track);
            ("s", Json.Str "t");
            ("args", args);
          ]
    | j ->
      Json.Obj
        [
          ("name", Json.Str "record");
          ("cat", Json.Str "fpart");
          ("ph", Json.Str "i");
          ("ts", Json.Float 0.0);
          ("pid", Json.Int 1);
          ("tid", Json.Int 0);
          ("s", Json.Str "t");
          ("args", j);
        ]
  in
  let metadata () =
    List.iter
      (fun track ->
        write_event
          (Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int track);
               ( "args",
                 Json.Obj
                   [
                     ( "name",
                       Json.Str
                         (if track = 0 then "domain 0 (main)"
                          else Printf.sprintf "domain %d" track) );
                   ] );
             ]))
      (List.sort compare !tracks)
  in
  let base =
    guarded ~what:"chrome" oc ~close_channel:true ~write:(fun j ->
        write_event (event_of j))
  in
  {
    emit = base.emit;
    close =
      (fun () ->
        (try
           metadata ();
           output_string oc
             (if !count = 0 then "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n"
              else "\n],\"displayTimeUnit\":\"ms\"}\n")
         with Sys_error _ -> ());
        base.close ());
  }

(* key=value one-liners; nested values fall back to compact JSON. *)
let pretty ppf =
  let pp_field ppf (k, v) =
    match v with
    | Json.Str s -> Format.fprintf ppf "%s=%s" k s
    | Json.Float f -> Format.fprintf ppf "%s=%.3f" k f
    | v -> Format.fprintf ppf "%s=%s" k (Json.to_string v)
  in
  {
    emit =
      (fun j ->
        match j with
        | Json.Obj fields ->
          Format.fprintf ppf "%a@."
            (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_field)
            fields
        | j -> Format.fprintf ppf "%s@." (Json.to_string j));
    close = (fun () -> Format.pp_print_flush ppf ());
  }

let tee sinks =
  {
    emit = (fun j -> List.iter (fun s -> s.emit j) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

let filtered ~keep s =
  { emit = (fun j -> if keep j then s.emit j); close = s.close }

let memory () =
  let acc = ref [] in
  ( { emit = (fun j -> acc := j :: !acc); close = ignore },
    fun () -> List.rev !acc )

let current = ref null

(* Individual sinks are not thread-safe (they write to channels or
   formatters), so the process-wide emission point serializes records
   from concurrent domains. *)
let emit_mutex = Mutex.create ()
let set s = Mutex.protect emit_mutex (fun () -> current := s)
let emit j = Mutex.protect emit_mutex (fun () -> !current.emit j)

let close_current () =
  Mutex.protect emit_mutex (fun () ->
      !current.close ();
      current := null)
