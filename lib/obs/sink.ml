type t = { emit : Json.t -> unit; close : unit -> unit }

let null = { emit = ignore; close = ignore }

let jsonl oc =
  {
    emit =
      (fun j ->
        output_string oc (Json.to_string j);
        output_char oc '\n');
    close =
      (fun () ->
        flush oc;
        if oc != stdout && oc != stderr then close_out oc);
  }

(* key=value one-liners; nested values fall back to compact JSON. *)
let pretty ppf =
  let pp_field ppf (k, v) =
    match v with
    | Json.Str s -> Format.fprintf ppf "%s=%s" k s
    | Json.Float f -> Format.fprintf ppf "%s=%.3f" k f
    | v -> Format.fprintf ppf "%s=%s" k (Json.to_string v)
  in
  {
    emit =
      (fun j ->
        match j with
        | Json.Obj fields ->
          Format.fprintf ppf "%a@."
            (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_field)
            fields
        | j -> Format.fprintf ppf "%s@." (Json.to_string j));
    close = (fun () -> Format.pp_print_flush ppf ());
  }

let tee sinks =
  {
    emit = (fun j -> List.iter (fun s -> s.emit j) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

let filtered ~keep s =
  { emit = (fun j -> if keep j then s.emit j); close = s.close }

let memory () =
  let acc = ref [] in
  ( { emit = (fun j -> acc := j :: !acc); close = ignore },
    fun () -> List.rev !acc )

let current = ref null

(* Individual sinks are not thread-safe (they write to channels or
   formatters), so the process-wide emission point serializes records
   from concurrent domains. *)
let emit_mutex = Mutex.create ()
let set s = Mutex.protect emit_mutex (fun () -> current := s)
let emit j = Mutex.protect emit_mutex (fun () -> !current.emit j)

let close_current () =
  Mutex.protect emit_mutex (fun () ->
      !current.close ();
      current := null)
