(** Pluggable destinations for observability records.

    Every record is one {!Json.t} object (spans from {!Metrics}, trace
    events from [Fpart.Trace], reports).  Instrumented code emits to a
    single process-wide current sink; composing sinks ([tee],
    [filtered]) is the caller's job.  The default sink is {!null}, so
    emission is a no-op until a CLI / bench / test installs one. *)

type t = {
  emit : Json.t -> unit;
  close : unit -> unit;  (** Flush and release resources. *)
}

(** Drops everything. *)
val null : t

(** One compact JSON object per line. [close] flushes; the channel is
    closed unless it is stdout/stderr.  Write failures ([Sys_error]:
    full disk, closed descriptor, read-only target) are reported once
    on stderr, after which the sink drops records instead of raising
    into instrumented code. *)
val jsonl : out_channel -> t

(** Chrome Trace Event / Perfetto export: one strict-JSON
    [{"traceEvents":[...]}] object.  {!Recorder} span records become
    complete ["X"]-phase events (ts/dur in µs, [pid] 1, [tid] = the
    record's domain track); all other records become ["i"] instant
    events named after their [type]; [close] appends per-track
    [thread_name] metadata and terminates the object.  Original record
    fields — including span [id]/[parent] — are preserved under
    ["args"].  Same error reporting as {!jsonl}. *)
val chrome : out_channel -> t

(** Human-readable one-liners ([key=value] pairs) on a formatter. *)
val pretty : Format.formatter -> t

(** Fan out to several sinks. *)
val tee : t list -> t

(** Forward only records satisfying [keep]. *)
val filtered : keep:(Json.t -> bool) -> t -> t

(** In-memory capture for tests: the second component lists the records
    emitted so far, in order. *)
val memory : unit -> t * (unit -> Json.t list)

(** {1 Process-wide current sink}

    {!emit} serializes concurrent callers behind one mutex, so records
    from worker domains never interleave mid-record; individual sink
    implementations need no locking of their own. *)

val set : t -> unit
val emit : Json.t -> unit

(** Close the current sink and reset to {!null}. *)
val close_current : unit -> unit
