module Hg = Hypergraph.Hgraph

type block_report = {
  index : int;
  size : int;
  flops : int;
  pins : int;
  pads : int;
  nodes : int;
  size_ok : bool;
  pins_ok : bool;
  flops_ok : bool;
  size_consistent : bool;
  pins_consistent : bool;
}

type report = {
  blocks : block_report list;
  feasible : bool;
  violations : int;
  cut : int;
  total_pins : int;
  consistent : bool;
}

(* Independent quotient recomputation: sizes and terminal counts rebuilt
   by walking the hypergraph directly, sharing no code with State's
   incremental bookkeeping.  This is what lets the report catch a stale
   cached [S_i] or [T_i] instead of blessing it. *)
let recompute_quotient st =
  let hg = State.hypergraph st in
  let k = State.k st in
  let sizes = Array.make k 0 in
  let pins = Array.make k 0 in
  Hg.iter_nodes
    (fun v ->
      let b = State.block_of st v in
      sizes.(b) <- sizes.(b) + Hg.size hg v)
    hg;
  let cut = ref 0 in
  let touched = Array.make k false in
  Hg.iter_nets
    (fun e ->
      Array.fill touched 0 k false;
      let span = ref 0 in
      let has_pad = ref false in
      Array.iter
        (fun v ->
          if Hg.is_pad hg v then has_pad := true;
          let b = State.block_of st v in
          if not touched.(b) then begin
            touched.(b) <- true;
            incr span
          end)
        (Hg.pins hg e);
      if !span >= 2 then incr cut;
      if !span >= 2 || !has_pad then
        for b = 0 to k - 1 do
          if touched.(b) then pins.(b) <- pins.(b) + 1
        done)
    hg;
  (sizes, pins, !cut)

let of_state st ~ctx =
  let k = State.k st in
  let ref_sizes, ref_pins, ref_cut = recompute_quotient st in
  let blocks = ref [] in
  let violations = ref 0 in
  let consistent = ref (State.cut_size st = ref_cut) in
  for i = k - 1 downto 0 do
    let size = State.size_of st i in
    let pins = State.pins_of st i in
    let flops = State.flops_of st i in
    let size_ok = size <= ctx.Cost.s_max in
    let pins_ok = pins <= ctx.Cost.t_max in
    let flops_ok = match ctx.Cost.f_max with None -> true | Some f -> flops <= f in
    let size_consistent = size = ref_sizes.(i) in
    let pins_consistent = pins = ref_pins.(i) in
    if not (size_ok && pins_ok && flops_ok) then incr violations;
    if not (size_consistent && pins_consistent) then consistent := false;
    blocks :=
      {
        index = i;
        size;
        flops;
        pins;
        pads = State.pads_of st i;
        nodes = State.cells_of st i;
        size_ok;
        pins_ok;
        flops_ok;
        size_consistent;
        pins_consistent;
      }
      :: !blocks
  done;
  {
    blocks = !blocks;
    feasible = !violations = 0;
    violations = !violations;
    cut = State.cut_size st;
    total_pins = State.total_pins st;
    consistent = !consistent;
  }

let of_assignment hg ~k ~assignment ~ctx =
  if Array.length assignment <> Hypergraph.Hgraph.num_nodes hg then
    invalid_arg "Check.of_assignment: wrong assignment length";
  Array.iter
    (fun b ->
      if b < 0 || b >= k then invalid_arg "Check.of_assignment: block out of range")
    assignment;
  of_state (State.create hg ~k ~assign:(fun v -> assignment.(v))) ~ctx

let pp ppf r =
  List.iter
    (fun b ->
      let flag ok = if ok then ' ' else '!' in
      Format.fprintf ppf "block %2d: size %4d%c pins %4d%c flops %4d%c pads %3d@."
        b.index b.size (flag b.size_ok) b.pins (flag b.pins_ok) b.flops
        (flag b.flops_ok) b.pads;
      if not b.size_consistent then
        Format.fprintf ppf "  WARNING: cached size of block %d disagrees with the quotient recomputation@."
          b.index;
      if not b.pins_consistent then
        Format.fprintf ppf "  WARNING: cached terminal count of block %d disagrees with the quotient recomputation@."
          b.index)
    r.blocks;
  Format.fprintf ppf "%d blocks, %s (%d violating), cut %d, total pins %d@."
    (List.length r.blocks)
    (if r.feasible then "feasible" else "INFEASIBLE")
    r.violations r.cut r.total_pins;
  if not r.consistent then
    Format.fprintf ppf "WARNING: incremental state inconsistent with quotient recomputation@."
