(** Partition validation reports.

    One place that answers "does this assignment really satisfy the
    device constraints?" — used by the CLI, the drivers' tests and the
    experiment harness instead of each re-deriving per-block checks.

    Beyond the device constraints, the report cross-validates the cached
    per-block aggregates ([S_i], [T_i]) and the cut against an
    independent quotient recomputation that walks the hypergraph
    directly.  A report with [consistent = false] means the incremental
    bookkeeping has drifted from ground truth — a bug in the engine, not
    in the input. *)

type block_report = {
  index : int;
  size : int;
  flops : int;
  pins : int;
  pads : int;
  nodes : int;
  size_ok : bool;
  pins_ok : bool;
  flops_ok : bool;
  size_consistent : bool;
      (** Cached block size agrees with the from-scratch recomputation. *)
  pins_consistent : bool;
      (** Cached terminal count agrees with the from-scratch recomputation. *)
}

type report = {
  blocks : block_report list;  (** One per block, in index order. *)
  feasible : bool;             (** All blocks pass all constraints. *)
  violations : int;            (** Number of failing blocks. *)
  cut : int;
  total_pins : int;
  consistent : bool;
      (** Every cached aggregate (sizes, terminal counts, cut) agrees
          with the independent quotient recomputation. *)
}

(** [of_assignment h ~k ~assignment ~ctx] builds the report.
    @raise Invalid_argument on a wrong-length assignment or an
    out-of-range block id. *)
val of_assignment :
  Hypergraph.Hgraph.t -> k:int -> assignment:int array -> ctx:Cost.context -> report

(** [of_state st ~ctx] is the report of a live partition state. *)
val of_state : State.t -> ctx:Cost.context -> report

(** [pp] prints one line per block plus a summary.  Inconsistencies
    (drifted caches) add WARNING lines; a consistent report prints
    exactly what it always did. *)
val pp : Format.formatter -> report -> unit
