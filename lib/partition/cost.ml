type params = {
  lambda_s : float;
  lambda_t : float;
  lambda_r : float;
  lambda_f : float;
}

let default_params = { lambda_s = 0.4; lambda_t = 0.6; lambda_r = 0.1; lambda_f = 0.4 }

type context = {
  s_max : int;
  t_max : int;
  f_max : int option;
  m_lower : int;
  total_pads : int;
}

let context_of device ~delta h =
  let module Hg = Hypergraph.Hgraph in
  {
    s_max = Device.s_max device ~delta;
    t_max = device.Device.t_max;
    f_max = Device.ff_max device ~delta;
    m_lower =
      Device.lower_bound device ~delta ~total_size:(Hg.total_size h)
        ~total_pads:(Hg.num_pads h);
    total_pads = Hg.num_pads h;
  }

let block_feasible ctx ~size ~pins ~flops =
  size <= ctx.s_max
  && pins <= ctx.t_max
  && match ctx.f_max with None -> true | Some f -> flops <= f

let over num cap =
  if num > cap then float_of_int (num - cap) /. float_of_int cap else 0.0

let block_distance p ctx ~size ~pins ~flops =
  (p.lambda_s *. over size ctx.s_max)
  +. (p.lambda_t *. over pins ctx.t_max)
  +. (match ctx.f_max with None -> 0.0 | Some f -> p.lambda_f *. over flops f)

type classification = Feasible | Semi_feasible of int | Infeasible of int list

let classify ctx st =
  let bad = ref [] in
  for i = State.k st - 1 downto 0 do
    if
      not
        (block_feasible ctx ~size:(State.size_of st i) ~pins:(State.pins_of st i)
           ~flops:(State.flops_of st i))
    then bad := i :: !bad
  done;
  match !bad with
  | [] -> Feasible
  | [ i ] -> Semi_feasible i
  | l -> Infeasible l

let deviation_penalty ctx ~remainder_size ~step_k =
  let remaining = max 1 (ctx.m_lower - step_k + 1) in
  let s_avg = float_of_int remainder_size /. float_of_int remaining in
  let s_max = float_of_int ctx.s_max in
  if s_avg > s_max then s_avg /. s_max else 0.0

let infeasibility p ctx st ~remainder ~step_k =
  let sum = ref 0.0 in
  for i = 0 to State.k st - 1 do
    sum :=
      !sum
      +. block_distance p ctx ~size:(State.size_of st i) ~pins:(State.pins_of st i)
           ~flops:(State.flops_of st i)
  done;
  (match remainder with
  | Some r ->
    sum :=
      !sum
      +. p.lambda_r *. deviation_penalty ctx ~remainder_size:(State.size_of st r) ~step_k
  | None -> ());
  !sum

let io_balance ctx st =
  if ctx.total_pads = 0 || ctx.m_lower = 0 then 0.0
  else begin
    let t_avg = float_of_int ctx.total_pads /. float_of_int ctx.m_lower in
    let sum = ref 0.0 in
    for i = 0 to State.k st - 1 do
      let te = float_of_int (State.pads_of st i) in
      if te < t_avg then sum := !sum +. ((t_avg -. te) /. t_avg)
    done;
    !sum
  end

type value = {
  feasible_blocks : int;
  distance : float;
  t_sum : int;
  io_bal : float;
}

let evaluate p ctx st ~remainder ~step_k =
  let f = ref 0 in
  for i = 0 to State.k st - 1 do
    if
      block_feasible ctx ~size:(State.size_of st i) ~pins:(State.pins_of st i)
        ~flops:(State.flops_of st i)
    then incr f
  done;
  {
    feasible_blocks = !f;
    distance = infeasibility p ctx st ~remainder ~step_k;
    t_sum = State.total_pins st;
    io_bal = io_balance ctx st;
  }

(* {2 Incremental evaluation}

   [evaluate] runs once per applied move inside every improvement pass —
   the hottest cost-side path.  A tracker caches each block's inputs
   (size, pins, flops, pads) and derived terms (feasibility flag,
   infeasibility distance, I/O-balance shortfall) and refreshes only the
   blocks whose inputs changed since the last call; a [State.move]
   touches exactly two.  The per-block terms are produced by the very
   same [block_feasible]/[block_distance] calls as [evaluate] and the
   aggregates are summed in the same block order, so the result is
   bit-identical to a from-scratch [evaluate] — drift here would change
   lexicographic comparisons and hence the partition. *)

type tracker = {
  tr_params : params;
  tr_ctx : context;
  tr_remainder : int option;
  tr_step_k : int;
  tr_size : int array;
  tr_pins : int array;
  tr_flops : int array;
  tr_pads : int array;
  tr_feas : bool array;
  tr_dist : float array;
  tr_io : float array;
  tr_io_active : bool;
  tr_t_avg : float;
}

let tracker_refresh t i =
  let size = t.tr_size.(i) and pins = t.tr_pins.(i) and flops = t.tr_flops.(i) in
  t.tr_feas.(i) <- block_feasible t.tr_ctx ~size ~pins ~flops;
  t.tr_dist.(i) <- block_distance t.tr_params t.tr_ctx ~size ~pins ~flops;
  t.tr_io.(i) <-
    (if t.tr_io_active then begin
       let te = float_of_int t.tr_pads.(i) in
       if te < t.tr_t_avg then (t.tr_t_avg -. te) /. t.tr_t_avg else 0.0
     end
     else 0.0)

let tracker params ctx st ~remainder ~step_k =
  let k = State.k st in
  let io_active = ctx.total_pads > 0 && ctx.m_lower > 0 in
  let t =
    {
      tr_params = params;
      tr_ctx = ctx;
      tr_remainder = remainder;
      tr_step_k = step_k;
      tr_size = Array.init k (State.size_of st);
      tr_pins = Array.init k (State.pins_of st);
      tr_flops = Array.init k (State.flops_of st);
      tr_pads = Array.init k (State.pads_of st);
      tr_feas = Array.make k false;
      tr_dist = Array.make k 0.0;
      tr_io = Array.make k 0.0;
      tr_io_active = io_active;
      tr_t_avg =
        (if io_active then
           float_of_int ctx.total_pads /. float_of_int ctx.m_lower
         else 0.0);
    }
  in
  for i = 0 to k - 1 do
    tracker_refresh t i
  done;
  t

let tracked_evaluate t st =
  let k = Array.length t.tr_size in
  if State.k st <> k then
    invalid_arg "Cost.tracked_evaluate: state has a different block count";
  for i = 0 to k - 1 do
    let size = State.size_of st i
    and pins = State.pins_of st i
    and flops = State.flops_of st i
    and pads = State.pads_of st i in
    if
      size <> t.tr_size.(i)
      || pins <> t.tr_pins.(i)
      || flops <> t.tr_flops.(i)
      || pads <> t.tr_pads.(i)
    then begin
      t.tr_size.(i) <- size;
      t.tr_pins.(i) <- pins;
      t.tr_flops.(i) <- flops;
      t.tr_pads.(i) <- pads;
      tracker_refresh t i
    end
  done;
  let f = ref 0 in
  for i = 0 to k - 1 do
    if t.tr_feas.(i) then incr f
  done;
  let d = ref 0.0 in
  for i = 0 to k - 1 do
    d := !d +. t.tr_dist.(i)
  done;
  (match t.tr_remainder with
  | Some r ->
    d :=
      !d
      +. t.tr_params.lambda_r
         *. deviation_penalty t.tr_ctx ~remainder_size:t.tr_size.(r)
              ~step_k:t.tr_step_k
  | None -> ());
  let io_bal = ref 0.0 in
  if t.tr_io_active then
    for i = 0 to k - 1 do
      io_bal := !io_bal +. t.tr_io.(i)
    done;
  {
    feasible_blocks = !f;
    distance = !d;
    t_sum = State.total_pins st;
    io_bal = !io_bal;
  }

let eps = 1e-9

let cmp_float a b = if a < b -. eps then -1 else if a > b +. eps then 1 else 0

let compare_value a b =
  (* more feasible blocks first *)
  let c = compare b.feasible_blocks a.feasible_blocks in
  if c <> 0 then c
  else
    let c = cmp_float a.distance b.distance in
    if c <> 0 then c
    else
      let c = compare a.t_sum b.t_sum in
      if c <> 0 then c else cmp_float a.io_bal b.io_bal

let pp_value ppf v =
  Format.fprintf ppf "(f=%d, d=%.4f, T=%d, dE=%.4f)" v.feasible_blocks v.distance
    v.t_sum v.io_bal

let value_to_json v =
  let module Json = Fpart_obs.Json in
  Json.Obj
    [
      ("feasible_blocks", Json.Int v.feasible_blocks);
      ("distance", Json.Float v.distance);
      ("t_sum", Json.Int v.t_sum);
      ("io_bal", Json.Float v.io_bal);
    ]
