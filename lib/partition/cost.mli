(** Infeasibility-distance cost functions (paper sections 3.3–3.4).

    A partition block is a point [(T_i, S_i)] in pin×size space; the
    device constraints [(T_MAX, S_MAX)] delimit the feasible rectangle.
    The {e infeasibility distance} of a block measures how far outside
    the rectangle it lies:

    [d_i = λ^S · max(0, (S_i - S_MAX)/S_MAX) + λ^T · max(0, (T_i - T_MAX)/T_MAX)]

    The distance of a whole solution adds a {e size-deviation penalty}
    that punishes remainders too big to fit in the theoretically minimal
    number of leftover devices, and solutions are ranked by the
    lexicographic tuple [(f, d_k, T_SUM, d_k^E)]. *)

type params = {
  lambda_s : float;  (** Weight of the size distance ([λ^S], paper: 0.4). *)
  lambda_t : float;  (** Weight of the I/O distance ([λ^T], paper: 0.6). *)
  lambda_r : float;  (** Weight of the deviation penalty ([λ^R], paper: 0.1). *)
  lambda_f : float;
      (** Weight of the flip-flop distance.  The paper handles the FF
          constraint "in a similar way as the size constraint", so the
          default equals [λ^S]. *)
}

(** The published values: [λ^S = 0.4], [λ^T = 0.6], [λ^R = 0.1];
    [λ^F = λ^S]. *)
val default_params : params

(** Problem-wide constants needed by the cost functions. *)
type context = {
  s_max : int;       (** Derated device capacity [S_ds · δ]. *)
  t_max : int;       (** Device pin count. *)
  f_max : int option;
      (** Flip-flop capacity, when the device model provides one
          ([None] disables the FF constraint entirely). *)
  m_lower : int;     (** Lower bound [M] on the number of devices. *)
  total_pads : int;  (** [|Y_0|], for the external-I/O balancing factor. *)
}

(** [context_of device ~delta h] derives the context for partitioning
    hypergraph [h] onto [device] with filling ratio [delta]. *)
val context_of : Device.t -> delta:float -> Hypergraph.Hgraph.t -> context

(** {1 Per-block quantities} *)

(** [block_feasible ctx ~size ~pins ~flops] is [P_i |= D] (the FF term
    is checked only when the context carries an [f_max]). *)
val block_feasible : context -> size:int -> pins:int -> flops:int -> bool

(** [block_distance params ctx ~size ~pins ~flops] is [d_i] (0 when
    feasible). *)
val block_distance : params -> context -> size:int -> pins:int -> flops:int -> float

(** {1 Solution classification (Figure 2)} *)

type classification =
  | Feasible                    (** Every block meets the constraints. *)
  | Semi_feasible of int        (** Exactly one violating block (its index). *)
  | Infeasible of int list      (** ≥ 2 violating blocks (their indices). *)

(** [classify ctx st] inspects every block of the state. *)
val classify : context -> State.t -> classification

(** {1 Solution cost} *)

(** [deviation_penalty ctx ~remainder_size ~step_k] is [d_k^R]: with
    [S_AVG = S(R_k) / (M - k + 1)], the penalty is [S_AVG / S_MAX] when
    [S_AVG > S_MAX] and 0 otherwise (section 3.3).  [step_k] is the
    current iteration number of Algorithm 1; the denominator is clamped
    to ≥ 1 once [k] exceeds [M]. *)
val deviation_penalty : context -> remainder_size:int -> step_k:int -> float

(** [infeasibility params ctx st ~remainder ~step_k] is
    [d_k = Σ d_i + λ^R · d_k^R].  When [remainder] is [None] the
    deviation penalty is omitted. *)
val infeasibility :
  params -> context -> State.t -> remainder:int option -> step_k:int -> float

(** [io_balance ctx st] is [d_k^E = Σ_i max(0, (T^E_AVG - T_i^E) / T^E_AVG)]
    with [T^E_AVG = |Y_0| / M]: the external-I/O balancing factor of
    section 3.4 (0 when every block already absorbs its share of pads). *)
val io_balance : context -> State.t -> float

(** The lexicographic solution value of section 3.4. *)
type value = {
  feasible_blocks : int;  (** [f] — maximise. *)
  distance : float;       (** [d_k] — minimise. *)
  t_sum : int;            (** [T^SUM] — minimise. *)
  io_bal : float;         (** [d_k^E] — minimise. *)
}

(** [evaluate params ctx st ~remainder ~step_k] computes the full tuple. *)
val evaluate :
  params -> context -> State.t -> remainder:int option -> step_k:int -> value

(** {1 Incremental evaluation}

    [evaluate] is called once per applied move inside the improvement
    engines and rescans every block each time.  A {!tracker} caches the
    per-block inputs and derived terms and refreshes only blocks whose
    [(size, pins, flops, pads)] tuple changed since the previous call —
    a move touches exactly two.  The dirty test is self-contained (it
    compares cached integers against the state), so rewinds, restores
    and bulk [load_assignment]s are handled transparently. *)

type tracker

(** [tracker params ctx st ~remainder ~step_k] allocates a tracker
    primed from [st].  The tracker is tied to [st]'s block count and to
    the given [remainder]/[step_k] (both fixed for the duration of one
    improvement run). *)
val tracker :
  params -> context -> State.t -> remainder:int option -> step_k:int -> tracker

(** [tracked_evaluate tr st] is bit-identical to
    [evaluate params ctx st ~remainder ~step_k] with the tracker's
    parameters: per-block terms come from the same
    {!block_feasible}/{!block_distance} computations and are summed in
    the same ascending block order.
    @raise Invalid_argument if [st] has a different block count. *)
val tracked_evaluate : tracker -> State.t -> value

(** [compare_value a b] is negative when [a] is the better solution
    under the lexicographic order [(f desc, d asc, T^SUM asc, d^E asc)].
    Float components compare with a 1e-9 tolerance so that noise from
    incremental accumulation cannot flip an order. *)
val compare_value : value -> value -> int

val pp_value : Format.formatter -> value -> unit

(** JSON rendering of a value, shared by trace events and the
    [pass]/[schedule] telemetry records. *)
val value_to_json : value -> Fpart_obs.Json.t
