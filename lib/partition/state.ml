module Hg = Hypergraph.Hgraph

type t = {
  hg : Hg.t;
  k : int;
  block_of : int array;
  block_size : int array;
  block_flops : int array;
  block_pads : int array;
  block_pins : int array;
  block_cells : int array;
  net_cnt : int array array;
  net_span : int array;
  mutable cut : int;
  mutable t_sum : int;
}

let bool_to_int b = if b then 1 else 0

(* A net contributes one pin to a block iff it has a pin there and either
   reaches a pad somewhere or spans >= 2 blocks (DESIGN.md §7). *)
let contrib ~pad cnt span = if cnt > 0 && (pad || span >= 2) then 1 else 0

let create hg ~k ~assign =
  if k < 1 then invalid_arg "State.create: k < 1";
  let n = Hg.num_nodes hg in
  let m = Hg.num_nets hg in
  let block_of = Array.init n assign in
  Array.iteri
    (fun v b ->
      if b < 0 || b >= k then
        invalid_arg (Printf.sprintf "State.create: node %d assigned to block %d" v b))
    block_of;
  let block_size = Array.make k 0 in
  let block_flops = Array.make k 0 in
  let block_pads = Array.make k 0 in
  let block_pins = Array.make k 0 in
  let block_cells = Array.make k 0 in
  for v = 0 to n - 1 do
    let b = block_of.(v) in
    block_size.(b) <- block_size.(b) + Hg.size hg v;
    block_flops.(b) <- block_flops.(b) + Hg.flops hg v;
    block_cells.(b) <- block_cells.(b) + 1;
    if Hg.is_pad hg v then block_pads.(b) <- block_pads.(b) + 1
  done;
  let net_cnt = Array.init m (fun _ -> Array.make k 0) in
  let net_span = Array.make m 0 in
  let cut = ref 0 in
  let t_sum = ref 0 in
  for e = 0 to m - 1 do
    let cnt = net_cnt.(e) in
    Array.iter (fun v -> cnt.(block_of.(v)) <- cnt.(block_of.(v)) + 1) (Hg.pins hg e);
    let span = Array.fold_left (fun acc c -> acc + bool_to_int (c > 0)) 0 cnt in
    net_span.(e) <- span;
    if span >= 2 then incr cut;
    let pad = Hg.net_has_pad hg e in
    for b = 0 to k - 1 do
      let c = contrib ~pad cnt.(b) span in
      block_pins.(b) <- block_pins.(b) + c;
      t_sum := !t_sum + c
    done
  done;
  {
    hg;
    k;
    block_of;
    block_size;
    block_flops;
    block_pads;
    block_pins;
    block_cells;
    net_cnt;
    net_span;
    cut = !cut;
    t_sum = !t_sum;
  }

let copy t =
  {
    t with
    block_of = Array.copy t.block_of;
    block_size = Array.copy t.block_size;
    block_flops = Array.copy t.block_flops;
    block_pads = Array.copy t.block_pads;
    block_pins = Array.copy t.block_pins;
    block_cells = Array.copy t.block_cells;
    net_cnt = Array.map Array.copy t.net_cnt;
    net_span = Array.copy t.net_span;
  }

let hypergraph t = t.hg
let k t = t.k
let block_of t v = t.block_of.(v)
let size_of t i = t.block_size.(i)
let flops_of t i = t.block_flops.(i)
let pins_of t i = t.block_pins.(i)
let pads_of t i = t.block_pads.(i)
let cells_of t i = t.block_cells.(i)
let cut_size t = t.cut
let total_pins t = t.t_sum
let net_count t e i = t.net_cnt.(e).(i)
let net_span t e = t.net_span.(e)

let nodes_of_block t i =
  let out = ref [] in
  for v = Array.length t.block_of - 1 downto 0 do
    if t.block_of.(v) = i then out := v :: !out
  done;
  !out

let assignment t = Array.copy t.block_of

let move ?on_net t v b =
  if b < 0 || b >= t.k then invalid_arg "State.move: block out of range";
  let a = t.block_of.(v) in
  if a <> b then begin
    let sz = Hg.size t.hg v in
    let ff = Hg.flops t.hg v in
    t.block_size.(a) <- t.block_size.(a) - sz;
    t.block_size.(b) <- t.block_size.(b) + sz;
    t.block_flops.(a) <- t.block_flops.(a) - ff;
    t.block_flops.(b) <- t.block_flops.(b) + ff;
    t.block_cells.(a) <- t.block_cells.(a) - 1;
    t.block_cells.(b) <- t.block_cells.(b) + 1;
    if Hg.is_pad t.hg v then begin
      t.block_pads.(a) <- t.block_pads.(a) - 1;
      t.block_pads.(b) <- t.block_pads.(b) + 1
    end;
    Array.iter
      (fun e ->
        let cnt = t.net_cnt.(e) in
        let ca = cnt.(a) and cb = cnt.(b) in
        let span = t.net_span.(e) in
        let pad = Hg.net_has_pad t.hg e in
        let ca' = ca - 1 and cb' = cb + 1 in
        let span' = span - bool_to_int (ca = 1) + bool_to_int (cb = 0) in
        (* Only blocks [a] and [b] can change pin contribution: any third
           block with pins on [e] sees span >= 2 both before and after. *)
        let da = contrib ~pad ca' span' - contrib ~pad ca span in
        let db = contrib ~pad cb' span' - contrib ~pad cb span in
        t.block_pins.(a) <- t.block_pins.(a) + da;
        t.block_pins.(b) <- t.block_pins.(b) + db;
        t.t_sum <- t.t_sum + da + db;
        t.cut <- t.cut + bool_to_int (span' >= 2) - bool_to_int (span >= 2);
        cnt.(a) <- ca';
        cnt.(b) <- cb';
        t.net_span.(e) <- span';
        match on_net with
        | None -> ()
        | Some f -> f e ~ca ~cb ~span)
      (Hg.nets_of t.hg v);
    t.block_of.(v) <- b
  end

let load_assignment t a =
  if Array.length a <> Array.length t.block_of then
    invalid_arg "State.load_assignment: wrong length";
  Array.iteri (fun v b -> move t v b) a

(* Per-net gain contributions, parameterised by the net's pin counts in
   the source/destination block and its span.  [cut_gain]/[pin_gain] are
   folds of these over the mover's nets; the Sanchis delta-gain engine
   evaluates the same functions on a net's before/after counts to adjust
   neighbour gains incrementally — sharing the arithmetic here is what
   makes the two paths bit-identical. *)
let cut_gain_net ~from_cnt ~to_cnt ~span =
  let span' = span - bool_to_int (from_cnt = 1) + bool_to_int (to_cnt = 0) in
  bool_to_int (span >= 2) - bool_to_int (span' >= 2)

let pin_gain_net ~pad ~from_cnt ~to_cnt ~span =
  let span' = span - bool_to_int (from_cnt = 1) + bool_to_int (to_cnt = 0) in
  let da = contrib ~pad (from_cnt - 1) span' - contrib ~pad from_cnt span in
  let db = contrib ~pad (to_cnt + 1) span' - contrib ~pad to_cnt span in
  -da - db

let cut_gain t v b =
  let a = t.block_of.(v) in
  if a = b then 0
  else
    Array.fold_left
      (fun acc e ->
        let cnt = t.net_cnt.(e) in
        acc
        + cut_gain_net ~from_cnt:cnt.(a) ~to_cnt:cnt.(b) ~span:t.net_span.(e))
      0 (Hg.nets_of t.hg v)

let pin_gain t v b =
  let a = t.block_of.(v) in
  if a = b then 0
  else
    Array.fold_left
      (fun acc e ->
        let cnt = t.net_cnt.(e) in
        acc
        + pin_gain_net ~pad:(Hg.net_has_pad t.hg e) ~from_cnt:cnt.(a)
            ~to_cnt:cnt.(b) ~span:t.net_span.(e))
      0 (Hg.nets_of t.hg v)

let check t =
  let fresh = create t.hg ~k:t.k ~assign:(fun v -> t.block_of.(v)) in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let arr_eq name a b =
    let rec go i =
      if i >= Array.length a then Ok ()
      else if a.(i) <> b.(i) then fail "%s differs at %d: cached %d vs fresh %d" name i a.(i) b.(i)
      else go (i + 1)
    in
    go 0
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  arr_eq "block_size" t.block_size fresh.block_size
  >>= fun () -> arr_eq "block_flops" t.block_flops fresh.block_flops
  >>= fun () -> arr_eq "block_pads" t.block_pads fresh.block_pads
  >>= fun () -> arr_eq "block_pins" t.block_pins fresh.block_pins
  >>= fun () -> arr_eq "block_cells" t.block_cells fresh.block_cells
  >>= fun () -> arr_eq "net_span" t.net_span fresh.net_span
  >>= fun () ->
  if t.cut <> fresh.cut then fail "cut: cached %d vs fresh %d" t.cut fresh.cut
  else if t.t_sum <> fresh.t_sum then fail "t_sum: cached %d vs fresh %d" t.t_sum fresh.t_sum
  else
    let rec nets e =
      if e >= Hg.num_nets t.hg then Ok ()
      else if t.net_cnt.(e) <> fresh.net_cnt.(e) then fail "net_cnt differs on net %d" e
      else nets (e + 1)
    in
    nets 0
