(** Mutable k-way partition state with O(1)-amortized incremental moves.

    A [State.t] assigns every node of a hypergraph to one of [k] blocks
    and maintains, incrementally under {!move}:

    - per-block logic size [S_i] (sum of cell sizes) and flip-flop
      count [F_i],
    - per-block terminal count [T_i] (the pin model of DESIGN.md §7: a
      net consumes one pin on block [i] iff it has a pin in [i] and is
      either connected to a pad somewhere or spans at least two blocks),
    - per-block external-pad count [T_i^E] (pads assigned to the block),
    - per-net per-block pin counts and block span,
    - the global cut size (number of nets spanning ≥ 2 blocks) and the
      total pin count [T_SUM].

    All partitioning engines (FM, Sanchis, FBB refinement) operate on
    this structure.  Blocks are dense integers [0 .. k-1]; the mapping
    from engine-level block handles (e.g. "the remainder") to indices is
    the caller's business. *)

type t

(** {1 Construction} *)

(** [create h ~k ~assign] builds the state for hypergraph [h] where node
    [v] starts in block [assign v].  @raise Invalid_argument if [k < 1]
    or an assignment is out of range. *)
val create : Hypergraph.Hgraph.t -> k:int -> assign:(Hypergraph.Hgraph.node -> int) -> t

(** [copy t] is an independent deep copy. *)
val copy : t -> t

(** {1 Accessors} *)

val hypergraph : t -> Hypergraph.Hgraph.t

(** Number of blocks. *)
val k : t -> int

(** [block_of t v] is the block currently holding node [v]. *)
val block_of : t -> Hypergraph.Hgraph.node -> int

(** [size_of t i] is [S_i], the summed cell size of block [i]. *)
val size_of : t -> int -> int

(** [flops_of t i] is [F_i], the summed flip-flop count of block [i]
    (the secondary resource of the paper's section 2). *)
val flops_of : t -> int -> int

(** [pins_of t i] is [T_i], the terminal count of block [i]. *)
val pins_of : t -> int -> int

(** [pads_of t i] is [T_i^E], the number of pads assigned to block [i]. *)
val pads_of : t -> int -> int

(** [cells_of t i] is the number of nodes (cells and pads) in block [i]. *)
val cells_of : t -> int -> int

(** [cut_size t] is the number of nets spanning at least two blocks. *)
val cut_size : t -> int

(** [total_pins t] is [T_SUM = sum_i T_i]. *)
val total_pins : t -> int

(** [net_count t e i] is the number of pins of net [e] inside block [i]. *)
val net_count : t -> Hypergraph.Hgraph.net -> int -> int

(** [net_span t e] is the number of blocks net [e] touches. *)
val net_span : t -> Hypergraph.Hgraph.net -> int

(** [nodes_of_block t i] lists the nodes of block [i] (O(n)). *)
val nodes_of_block : t -> int -> Hypergraph.Hgraph.node list

(** [assignment t] is a fresh copy of the node→block array. *)
val assignment : t -> int array

(** {1 Mutation} *)

(** [move ?on_net t v b] reassigns node [v] to block [b], updating all
    cached quantities.  A move to the node's current block is a no-op.

    When [on_net] is given it is invoked once per net of [v] (in
    [nets_of] order) with the net's {e pre-move} pin counts in the
    source block ([ca]), the destination block ([cb]) and its pre-move
    span — the transitions the move applied are then
    [ca → ca-1], [cb → cb+1],
    [span → span - (ca=1) + (cb=0)].  Counts of other blocks are
    untouched by the move.  This is the changed-nets summary consumed by
    the incremental delta-gain engine; the callback must not mutate the
    state.  No-op moves report nothing.
    @raise Invalid_argument if [b] is out of range. *)
val move :
  ?on_net:(Hypergraph.Hgraph.net -> ca:int -> cb:int -> span:int -> unit) ->
  t ->
  Hypergraph.Hgraph.node ->
  int ->
  unit

(** [load_assignment t a] bulk-restores a previously captured
    assignment (applies moves node by node; [a] must have one entry per
    node). *)
val load_assignment : t -> int array -> unit

(** {1 Gains} *)

(** [cut_gain t v b] is the decrease in {!cut_size} if [v] moved from
    its block to [b] (negative when the move adds cut nets).  This is
    the classical FM level-1 gain, O(degree of [v]). *)
val cut_gain : t -> Hypergraph.Hgraph.node -> int -> int

(** [pin_gain t v b] is the decrease in {!total_pins} if [v] moved to
    [b]; used by the "real I/O gain" extension (paper's future work). *)
val pin_gain : t -> Hypergraph.Hgraph.node -> int -> int

(** [cut_gain_net ~from_cnt ~to_cnt ~span] is one net's contribution to
    {!cut_gain} for a mover whose net has [from_cnt] pins in the source
    block, [to_cnt] in the destination and spans [span] blocks.
    {!cut_gain} is the fold of this over the mover's nets; the
    incremental delta-gain engine evaluates it on a net's before/after
    counts so both paths share the exact same arithmetic. *)
val cut_gain_net : from_cnt:int -> to_cnt:int -> span:int -> int

(** Same as {!cut_gain_net} for {!pin_gain}; [pad] is
    [Hgraph.net_has_pad] of the net. *)
val pin_gain_net : pad:bool -> from_cnt:int -> to_cnt:int -> span:int -> int

(** {1 Integrity} *)

(** [check t] recomputes every cached quantity from scratch and reports
    the first discrepancy.  Test-only (O(pins)). *)
val check : t -> (unit, string) result
