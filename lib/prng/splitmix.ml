type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let derive ~master ~index =
  if index < 0 then invalid_arg "Splitmix.derive: index < 0";
  (* one mix step scatters the (master, index) grid so the derived
     streams do not overlap the plain [create (master + i)] streams *)
  let s =
    Int64.add (Int64.of_int master)
      (Int64.mul golden_gamma (Int64.of_int (index + 1)))
  in
  { state = mix64 s }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound <= 0";
  (* Rejection-free modulo is fine here: bound is tiny w.r.t. 2^62 so the
     bias is negligible for simulation purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Splitmix.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Splitmix.choose: empty array";
  a.(int t (Array.length a))

let geometric t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Splitmix.geometric: p out of range";
  let rec go n = if n >= 1_000_000 || float t < p then n else go (n + 1) in
  go 1
