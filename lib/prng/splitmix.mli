(** Deterministic SplitMix64 pseudo-random number generator.

    Every stochastic component of the library (circuit generator,
    tie-break shuffles, sampling in statistics) draws from an explicit
    [Splitmix.t] state so that all experiments are reproducible from a
    single integer seed.  The algorithm is Steele, Lea & Flood's
    SplitMix64 (JDK 8 [SplittableRandom]). *)

type t

(** [create seed] is a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [derive ~master ~index] is the generator for the [index]-th task of
    a parallel fork seeded by [master]: a pure function of the pair, so
    every task sees the same stream regardless of how many domains run
    the fork or in which order tasks are scheduled.  The derived streams
    are decorrelated from each other and from [create master].
    @raise Invalid_argument if [index < 0]. *)
val derive : master:int -> index:int -> t

(** [split t] derives a new statistically independent generator and
    advances [t]. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)
val choose : t -> 'a array -> 'a

(** [geometric t p] samples a geometric variate [>= 1] with success
    probability [p] in (0, 1]; the mean is [1/p].  Capped at 10^6 to
    stay total for tiny [p]. *)
val geometric : t -> float -> int
