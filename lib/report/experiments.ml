module Hg = Hypergraph.Hgraph
module Mcnc = Netlist.Mcnc

type algo = Fpart_algo | Kwayx_algo | Fbb_mw_algo
type engine = Flat | Multilevel

type run = { k : int; feasible : bool; cut : int; cpu_seconds : float }

type t = {
  memo : (string * string * algo, run) Hashtbl.t;
  graphs : (string * Device.family, Hg.t) Hashtbl.t;
  progress : string -> unit;
  jobs : int;
  engine : engine;
  refiner : Fpart.Config.refiner;
  mutable pool : Fpart_exec.Pool.t option;
}

let create ?(progress = fun _ -> ()) ?(jobs = 1) ?(engine = Flat)
    ?(refiner = Fpart.Config.Sanchis_refiner) () =
  if jobs < 1 then invalid_arg "Experiments.create: jobs < 1";
  {
    memo = Hashtbl.create 64;
    graphs = Hashtbl.create 16;
    progress;
    jobs;
    engine;
    refiner;
    pool = None;
  }

(* The pool is created lazily on the first table that can use it, so a
   [jobs = 1] table run never spawns a domain. *)
let pool_of t =
  if t.jobs <= 1 then None
  else
    match t.pool with
    | Some _ as p -> p
    | None ->
      let p = Fpart_exec.Pool.create ~jobs:t.jobs in
      t.pool <- Some p;
      Some p

let shutdown t =
  match t.pool with
  | None -> ()
  | Some p ->
    t.pool <- None;
    Fpart_exec.Pool.shutdown p

let algo_name = function
  | Fpart_algo -> "FPART"
  | Kwayx_algo -> "k-way.x"
  | Fbb_mw_algo -> "FBB-MW"

let graph_of t circuit family =
  let key = (circuit.Mcnc.circuit_name, family) in
  match Hashtbl.find_opt t.graphs key with
  | Some g -> g
  | None ->
    let g = Mcnc.surrogate circuit family in
    Hashtbl.add t.graphs key g;
    g

(* The pure compute step: no memo, no graph cache, no progress — safe to
   run on a worker domain. *)
let compute ?(engine = Flat) ?(refiner = Fpart.Config.Sanchis_refiner) algo hg
    device =
  match algo with
      | Fpart_algo ->
        let config = { Fpart.Config.default with Fpart.Config.refiner } in
        let r =
          match engine with
          | Flat -> Fpart.Driver.run ~config hg device
          | Multilevel ->
            (Mlevel.Engine.run ~base:config hg device).Mlevel.Engine.res
        in
        {
          k = r.Fpart.Driver.k;
          feasible = r.Fpart.Driver.feasible;
          cut = r.Fpart.Driver.cut;
          cpu_seconds = r.Fpart.Driver.cpu_seconds;
        }
      | Kwayx_algo ->
        let r = Fpart.Kwayx.run hg device in
        {
          k = r.Fpart.Kwayx.k;
          feasible = r.Fpart.Kwayx.feasible;
          cut = r.Fpart.Kwayx.cut;
          cpu_seconds = r.Fpart.Kwayx.cpu_seconds;
        }
      | Fbb_mw_algo ->
        let t0 = Sys.time () in
        let cfg =
          { Flow.Fbb_mw.default_config with delta = Device.paper_delta device }
        in
        let r = Flow.Fbb_mw.partition hg device cfg in
        {
          k = r.Flow.Fbb_mw.k;
          feasible = r.Flow.Fbb_mw.feasible;
          cut = r.Flow.Fbb_mw.cut;
          cpu_seconds = Sys.time () -. t0;
        }

let memo_key circuit device algo =
  (circuit.Mcnc.circuit_name, device.Device.dev_name, algo)

let run_one t algo circuit device =
  let key = memo_key circuit device algo in
  match Hashtbl.find_opt t.memo key with
  | Some r -> r
  | None ->
    t.progress
      (Printf.sprintf "running %s on %s / %s ..." (algo_name algo)
         circuit.Mcnc.circuit_name device.Device.dev_name);
    let hg = graph_of t circuit device.Device.family in
    let r = compute ~engine:t.engine ~refiner:t.refiner algo hg device in
    Hashtbl.add t.memo key r;
    r

(* [prewarm t work] fills the memo for every not-yet-run (algo, circuit,
   device) triple of [work], fanning the compute steps out on the pool.
   Graphs are materialised and the memo is written on the caller only —
   the worker closures are pure — so the tables below behave exactly as
   in the sequential case, just against a warm memo.  No-op when
   [jobs = 1]. *)
let prewarm t work =
  match pool_of t with
  | None -> ()
  | Some pool ->
    let seen = Hashtbl.create 32 in
    let fresh =
      List.filter
        (fun (algo, c, d) ->
          let key = memo_key c d algo in
          if Hashtbl.mem t.memo key || Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        work
    in
    if fresh <> [] then begin
      List.iter
        (fun (algo, c, d) ->
          t.progress
            (Printf.sprintf "running %s on %s / %s ..." (algo_name algo)
               c.Mcnc.circuit_name d.Device.dev_name))
        fresh;
      let tasks =
        Array.of_list
          (List.map
             (fun (algo, c, d) -> (algo, graph_of t c d.Device.family, c, d))
             fresh)
      in
      let results =
        Fpart_exec.Pool.map pool
          (fun _ (algo, hg, _c, d) ->
            compute ~engine:t.engine ~refiner:t.refiner algo hg d)
          tasks
      in
      Array.iteri
        (fun i r ->
          let algo, _, c, d = tasks.(i) in
          Hashtbl.add t.memo (memo_key c d algo) r)
        results
    end

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let table1 t =
  let rows =
    List.map
      (fun c ->
        let g2 = graph_of t c Device.XC2000 in
        let g3 = graph_of t c Device.XC3000 in
        let s3 = Hypergraph.Stats.summary g3 in
        [
          c.Mcnc.circuit_name;
          string_of_int c.Mcnc.iobs;
          string_of_int c.Mcnc.clbs_xc2000;
          string_of_int c.Mcnc.clbs_xc3000;
          string_of_int (Hg.num_nets g2);
          string_of_int (Hg.num_nets g3);
          Printf.sprintf "%.2f" s3.Hypergraph.Stats.avg_net_degree;
        ])
      Mcnc.all
  in
  Table.render
    ~title:
      "Table 1. Benchmark circuits characteristics (surrogates; IOB and CLB \
       counts are the published ones by construction)"
    ~header:
      [
        "Circuit"; "#IOBs"; "#CLBs XC2000"; "#CLBs XC3000"; "nets(2000)";
        "nets(3000)"; "avg net deg";
      ]
    ~align:[ Table.Left ] rows

(* ------------------------------------------------------------------ *)
(* Device tables (2-5)                                                *)
(* ------------------------------------------------------------------ *)

let opt_cell = Published.cell

(* A composite "measured(published)" cell. *)
let vs measured published =
  match published with
  | None -> string_of_int measured
  | Some p -> Printf.sprintf "%d(%d)" measured p

let device_table t ~title ~device ~circuits ~published =
  prewarm t
    (List.concat_map
       (fun c ->
         [ (Kwayx_algo, c, device); (Fbb_mw_algo, c, device);
           (Fpart_algo, c, device) ])
       circuits);
  let totals = Array.make 4 0 in
  let paper_totals = Array.make 4 0 in
  let paper_complete = Array.make 4 true in
  let add i measured paper =
    totals.(i) <- totals.(i) + measured;
    match paper with
    | Some p -> paper_totals.(i) <- paper_totals.(i) + p
    | None -> paper_complete.(i) <- false
  in
  let rows =
    List.map
      (fun c ->
        let pub = Published.find published c.Mcnc.circuit_name in
        let p f = Option.bind pub f in
        let kw = run_one t Kwayx_algo c device in
        let fb = run_one t Fbb_mw_algo c device in
        let fp = run_one t Fpart_algo c device in
        let hg = graph_of t c device.Device.family in
        let m =
          Device.lower_bound device ~delta:(Device.paper_delta device)
            ~total_size:(Hg.total_size hg) ~total_pads:(Hg.num_pads hg)
        in
        add 0 kw.k (p (fun r -> r.Published.kwayx));
        add 1 fb.k (p (fun r -> r.Published.fbb_mw));
        add 2 fp.k (p (fun r -> r.Published.fpart));
        add 3 m (Option.map (fun r -> r.Published.m) pub);
        [
          c.Mcnc.circuit_name;
          vs kw.k (p (fun r -> r.Published.kwayx));
          vs fb.k (p (fun r -> r.Published.fbb_mw));
          vs fp.k (p (fun r -> r.Published.fpart));
          opt_cell (p (fun r -> r.Published.prop_prop));
          opt_cell (p (fun r -> r.Published.sc));
          opt_cell (p (fun r -> r.Published.wcdp));
          vs m (Option.map (fun r -> r.Published.m) pub);
          (if fp.feasible then "yes" else "NO");
        ])
      circuits
  in
  let total_cell i =
    if paper_complete.(i) then Printf.sprintf "%d(%d)" totals.(i) paper_totals.(i)
    else string_of_int totals.(i)
  in
  let total_row =
    [
      "Total"; total_cell 0; total_cell 1; total_cell 2; "-"; "-"; "-";
      total_cell 3; "";
    ]
  in
  Table.render ~title
    ~header:
      [
        "Circuit"; "k-way.x"; "FBB-MW"; "FPART"; "PROP*"; "SC*"; "WCDP*"; "M";
        "feas";
      ]
    ~align:[ Table.Left ]
    (rows @ [ total_row ])
  ^ "cells: measured(published); * = published-only column (method not reimplemented)\n"

let table2 t =
  device_table t
    ~title:"Table 2. Results comparison on XC3020 device (delta = 0.9)"
    ~device:Device.xc3020 ~circuits:Mcnc.all ~published:Published.table2

let table3 t =
  device_table t
    ~title:"Table 3. Results comparison on XC3042 device (delta = 0.9)"
    ~device:Device.xc3042 ~circuits:Mcnc.all ~published:Published.table3

let table4 t =
  device_table t
    ~title:"Table 4. Results comparison on XC3090 device (delta = 0.9)"
    ~device:Device.xc3090 ~circuits:Mcnc.all ~published:Published.table4

let table5 t =
  device_table t
    ~title:"Table 5. Results comparison on XC2064 device (delta = 1.0)"
    ~device:Device.xc2064 ~circuits:Mcnc.table5_subset ~published:Published.table5

(* ------------------------------------------------------------------ *)
(* Table 6                                                            *)
(* ------------------------------------------------------------------ *)

let table6 t =
  let fmt_time = function
    | None -> "-"
    | Some s -> Printf.sprintf "%.2f" s
  in
  let devices = [ Device.xc3020; Device.xc3042; Device.xc3090 ] in
  prewarm t
    (List.concat_map
       (fun c ->
         let ds =
           if
             List.exists
               (fun c' -> c'.Mcnc.circuit_name = c.Mcnc.circuit_name)
               Mcnc.table5_subset
           then devices @ [ Device.xc2064 ]
           else devices
         in
         List.map (fun d -> (Fpart_algo, c, d)) ds)
       Mcnc.all);
  let rows =
    List.map
      (fun c ->
        let paper =
          List.find_opt (fun (n, _, _, _, _) -> n = c.Mcnc.circuit_name)
            Published.cpu_times
        in
        let p1, p2, p3, p4 =
          match paper with
          | Some (_, a, b, d, e) -> (a, b, d, e)
          | None -> (None, None, None, None)
        in
        let ours device =
          Printf.sprintf "%.2f" (run_one t Fpart_algo c device).cpu_seconds
        in
        let xc2064 =
          (* the paper only ran the four c-circuits on the XC2064 *)
          if List.exists (fun c' -> c'.Mcnc.circuit_name = c.Mcnc.circuit_name)
               Mcnc.table5_subset
          then ours Device.xc2064
          else "-"
        in
        [ c.Mcnc.circuit_name ]
        @ List.map ours devices
        @ [ xc2064; fmt_time p1; fmt_time p2; fmt_time p3; fmt_time p4 ])
      Mcnc.all
  in
  Table.render
    ~title:
      "Table 6. FPART execution time, seconds (ours on this host; paper's on \
       a SUN Sparc Ultra 5)"
    ~header:
      [
        "Circuit"; "XC3020"; "XC3042"; "XC3090"; "XC2064"; "paper3020";
        "paper3042"; "paper3090"; "paper2064";
      ]
    ~align:[ Table.Left ] rows

(* ------------------------------------------------------------------ *)
(* Figures                                                            *)
(* ------------------------------------------------------------------ *)

let figure1 t =
  let c = Option.get (Mcnc.find "s5378") in
  let hg = graph_of t c Device.XC3000 in
  let r = Fpart.Driver.run hg Device.xc3042 in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 1. Call of the iterative improvement passes (trace of FPART on \
     s5378 / XC3042)\n";
  Buffer.add_string buf
    "Each line is one Improve() call of Algorithm 1; {..} lists the involved \
     blocks, the last block being the remainder.\n\n";
  List.iter
    (fun e ->
      match e with
      | Fpart.Trace.Improve _ | Fpart.Trace.Bipartition _ | Fpart.Trace.Done _ ->
        Buffer.add_string buf (Format.asprintf "%a@." Fpart.Trace.pp_event e)
      | Fpart.Trace.Committed _ -> ())
    r.Fpart.Driver.trace;
  (* The paper draws this as a grid: one row per Improve() call, one
     column per block; shadowed cells are the blocks taking part. *)
  Buffer.add_string buf
    "\nAs the paper's grid (# = involved block, R = remainder column):\n\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-18s %s\n" "step"
       (String.concat ""
          (List.init r.Fpart.Driver.k (fun b -> Printf.sprintf "%3d" b))));
  List.iter
    (fun e ->
      match e with
      | Fpart.Trace.Improve { iteration; kind; blocks; _ } ->
        let remainder = iteration in
        (* remainder block index = iteration (blocks 0..it-1 committed) *)
        let cells =
          List.init r.Fpart.Driver.k (fun b ->
              if List.mem b blocks then (if b = remainder then "  R" else "  #")
              else "  .")
        in
        Buffer.add_string buf
          (Printf.sprintf "  it%-2d %-13s %s\n" iteration
             (Format.asprintf "%a" Fpart.Trace.pp_kind kind)
             (String.concat "" cells))
      | Fpart.Trace.Bipartition _ | Fpart.Trace.Committed _ | Fpart.Trace.Done _ ->
        ())
    r.Fpart.Driver.trace;
  Buffer.contents buf

let figure2 _t =
  (* A toy 12-cell circuit partitioned three ways, reproducing the
     classification examples of Figure 2. *)
  let spec = Netlist.Generator.default_spec ~name:"fig2" ~cells:12 ~pads:4 ~seed:7 in
  let hg = Netlist.Generator.generate spec in
  let params = Partition.Cost.default_params in
  let describe title k assign ctx =
    let st = Partition.State.create hg ~k ~assign in
    let cls =
      match Partition.Cost.classify ctx st with
      | Partition.Cost.Feasible -> "feasible"
      | Partition.Cost.Semi_feasible b -> Printf.sprintf "semi-feasible (remainder = block %d)" b
      | Partition.Cost.Infeasible l ->
        Printf.sprintf "infeasible (violating blocks: %s)"
          (String.concat "," (List.map string_of_int l))
    in
    let d = Partition.Cost.infeasibility params ctx st ~remainder:None ~step_k:1 in
    let blocks =
      String.concat " "
        (List.init k (fun b ->
             Printf.sprintf "B%d(S=%d,T=%d)" b
               (Partition.State.size_of st b)
               (Partition.State.pins_of st b)))
    in
    Printf.sprintf "%s\n  blocks: %s\n  classification: %s, infeasibility distance d = %.4f\n"
      title blocks cls d
  in
  (* device tuned so that the crafted assignments classify as intended *)
  let ctx =
    { Partition.Cost.s_max = 4; t_max = 12; f_max = None; m_lower = 3; total_pads = 4 }
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Figure 2. Feasible, semi-feasible, infeasible solutions examples\n";
  Buffer.add_string buf
    (Printf.sprintf "device constraints: S_MAX = %d, T_MAX = %d\n\n" ctx.Partition.Cost.s_max
       ctx.Partition.Cost.t_max);
  Buffer.add_string buf
    (describe "(a) 4-block solution, every block inside the rectangle:" 4
       (fun v -> v mod 4) ctx);
  Buffer.add_string buf
    (describe "(b) 3-block solution, one oversized remainder:" 3
       (fun v -> if v < 3 then 0 else if v < 6 then 1 else 2) ctx);
  Buffer.add_string buf
    (describe "(c) 4-block solution, two violating blocks:" 4
       (fun v -> if v < 7 then 0 else if v < 13 then 1 else (v - 13) mod 2 + 2) ctx);
  Buffer.contents buf

let figure3 _t =
  let cfg = Fpart.Config.default in
  let device = Device.xc3020 in
  let delta = Device.paper_delta device in
  let s_max = Device.s_max device ~delta in
  let w eps = int_of_float (eps *. float_of_int s_max) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Figure 3. Feasible space for cell move\n";
  Buffer.add_string buf
    (Printf.sprintf
       "device %s, delta = %.2f, S_MAX = %d; a move is allowed while the \
        affected blocks stay in their size window (no pin constraint on moves)\n\n"
       device.Device.dev_name delta s_max);
  Buffer.add_string buf
    (Printf.sprintf
       "(a) multi-block pass : non-remainder blocks in [%d, %d]  (eps*_min = %.2f, eps*_max = %.2f)\n"
       (w cfg.Fpart.Config.eps_min_multi)
       (w cfg.Fpart.Config.eps_max_multi)
       cfg.Fpart.Config.eps_min_multi cfg.Fpart.Config.eps_max_multi);
  Buffer.add_string buf
    (Printf.sprintf
       "(b) two-block pass   : non-remainder blocks in [%d, %d]  (eps2_min = %.2f, eps2_max = %.2f)\n"
       (w cfg.Fpart.Config.eps_min_two)
       (w cfg.Fpart.Config.eps_max_two)
       cfg.Fpart.Config.eps_min_two cfg.Fpart.Config.eps_max_two);
  Buffer.add_string buf
    "    remainder block  : [0, +inf)  (eps^R_max = infinity)\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    once k reaches M : upper bounds tighten to S_MAX = %d (no \
        size-violating moves)\n"
       s_max);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let ablation_variants =
  let base = Fpart.Config.default in
  [
    ("published", base);
    ("no-lookahead-gains", { base with Fpart.Config.gain_levels = 1 });
    ("3-level-gains", { base with Fpart.Config.gain_levels = 3 });
    ("no-stacks", { base with Fpart.Config.stack_depth = 0 });
    ("single-pass", { base with Fpart.Config.max_passes = 1 });
    ( "loose-2blk-window",
      { base with Fpart.Config.eps_min_two = base.Fpart.Config.eps_min_multi } );
    ( "no-deviation-penalty",
      {
        base with
        Fpart.Config.cost =
          { base.Fpart.Config.cost with Partition.Cost.lambda_r = 0.0 };
      } );
    ("random-initial-partition", { base with Fpart.Config.random_initial = true });
    ( "fifo-buckets",
      { base with Fpart.Config.bucket_discipline = Gainbucket.Bucket_array.Fifo } );
    ("pin-gain (future work)", { base with Fpart.Config.gain_mode = Sanchis.Pin_gain });
    ("drift-limit 64 (future work)", { base with Fpart.Config.drift_limit = Some 64 });
  ]

(* The hard rows: big sequential circuits and the pad-heavy c7552,
   where the tunings of sections 3.3-3.7 actually change k. *)
let ablation_circuits = [ "c7552"; "s15850"; "s38417"; "s38584" ]

(* Ablations run each config variant of FPART on a subset of circuits
   (XC3020): the k deltas show what each tuning of sections 3.3-3.7
   buys.  Not memoised (each row is a distinct configuration). *)
let ablations t =
  let device = Device.xc3020 in
  let circuits = List.filter_map Mcnc.find ablation_circuits in
  let rows =
    List.map
      (fun (label, config) ->
        t.progress (Printf.sprintf "ablation %s ..." label);
        let ks, time =
          List.fold_left
            (fun (ks, time) c ->
              let hg = graph_of t c device.Device.family in
              let r = Fpart.Driver.run ~config hg device in
              (ks @ [ r.Fpart.Driver.k ], time +. r.Fpart.Driver.cpu_seconds))
            ([], 0.0) circuits
        in
        label
        :: List.map string_of_int ks
        @ [
            string_of_int (List.fold_left ( + ) 0 ks);
            Printf.sprintf "%.2f" time;
          ])
      ablation_variants
  in
  Table.render
    ~title:
      "Ablations: FPART device counts on XC3020 under configuration variants \
       (each knob of paper sections 3.3-3.7 and the two future-work ideas of \
       section 5)"
    ~header:("variant" :: ablation_circuits @ [ "total"; "cpu(s)" ])
    ~align:[ Table.Left ] rows

(* ------------------------------------------------------------------ *)
(* CSV export                                                         *)
(* ------------------------------------------------------------------ *)

let device_table_csv t ~device ~circuits ~published =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "circuit,kwayx,fbb_mw,fpart,m,kwayx_paper,fbb_mw_paper,fpart_paper,m_paper,fpart_feasible\n";
  List.iter
    (fun c ->
      let pub = Published.find published c.Mcnc.circuit_name in
      let p f = match Option.bind pub f with None -> "" | Some v -> string_of_int v in
      let kw = run_one t Kwayx_algo c device in
      let fb = run_one t Fbb_mw_algo c device in
      let fp = run_one t Fpart_algo c device in
      let hg = graph_of t c device.Device.family in
      let m =
        Device.lower_bound device ~delta:(Device.paper_delta device)
          ~total_size:(Hg.total_size hg) ~total_pads:(Hg.num_pads hg)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%d,%s,%s,%s,%s,%b\n" c.Mcnc.circuit_name kw.k
           fb.k fp.k m
           (p (fun r -> r.Published.kwayx))
           (p (fun r -> r.Published.fbb_mw))
           (p (fun r -> r.Published.fpart))
           (match pub with None -> "" | Some r -> string_of_int r.Published.m)
           fp.feasible))
    circuits;
  Buffer.contents buf

let csv2 t = device_table_csv t ~device:Device.xc3020 ~circuits:Mcnc.all ~published:Published.table2
let csv3 t = device_table_csv t ~device:Device.xc3042 ~circuits:Mcnc.all ~published:Published.table3
let csv4 t = device_table_csv t ~device:Device.xc3090 ~circuits:Mcnc.all ~published:Published.table4
let csv5 t = device_table_csv t ~device:Device.xc2064 ~circuits:Mcnc.table5_subset ~published:Published.table5

(* ------------------------------------------------------------------ *)
(* Seed variance                                                      *)
(* ------------------------------------------------------------------ *)

let variance_seeds = [ 1; 2; 3; 4; 5 ]

(* How sensitive is FPART to its tie-break seed?  min/median/max of k
   over five seeds, per circuit, on XC3020 — robustness evidence that
   the single-seed tables are representative. *)
let variance t =
  let device = Device.xc3020 in
  let run_seeds hg =
    let one seed =
      let config = { Fpart.Config.default with Fpart.Config.seed } in
      (Fpart.Driver.run ~config hg device).Fpart.Driver.k
    in
    match pool_of t with
    | None -> List.map one variance_seeds
    | Some pool ->
      Array.to_list
        (Fpart_exec.Pool.map pool
           (fun _ seed -> one seed)
           (Array.of_list variance_seeds))
  in
  let rows =
    List.map
      (fun c ->
        t.progress (Printf.sprintf "variance %s ..." c.Mcnc.circuit_name);
        let hg = graph_of t c device.Device.family in
        let ks = run_seeds hg |> List.sort compare in
        let arr = Array.of_list ks in
        let n = Array.length arr in
        [
          c.Mcnc.circuit_name;
          string_of_int arr.(0);
          string_of_int arr.(n / 2);
          string_of_int arr.(n - 1);
          string_of_int (arr.(n - 1) - arr.(0));
        ])
      Mcnc.all
  in
  Table.render
    ~title:
      (Printf.sprintf
         "Seed variance: FPART on XC3020 over %d tie-break seeds (min / median / max devices)"
         (List.length variance_seeds))
    ~header:[ "Circuit"; "min"; "median"; "max"; "spread" ]
    ~align:[ Table.Left ] rows

(* ------------------------------------------------------------------ *)
(* Modern baseline                                                    *)
(* ------------------------------------------------------------------ *)

(* FPART against a post-paper multilevel recursive bisection (hMETIS-
   style, cut-driven).  The point the comparison makes: on easy rows the
   better cuts of multilevel tie FPART's device counts, but where the
   pin constraint binds (s13207, s38584) cut-driven bisection needs
   extra devices — the paper's implicit thesis that device-count
   minimisation is not cut minimisation. *)
let modern t =
  let device = Device.xc3020 in
  let rows =
    List.map
      (fun c ->
        t.progress (Printf.sprintf "modern baseline %s ..." c.Mcnc.circuit_name);
        let hg = graph_of t c device.Device.family in
        let fp = run_one t Fpart_algo c device in
        let ml = (Mlevel.Engine.run hg device).Mlevel.Engine.res in
        let m =
          Device.lower_bound device ~delta:0.9 ~total_size:(Hg.total_size hg)
            ~total_pads:(Hg.num_pads hg)
        in
        [
          c.Mcnc.circuit_name;
          string_of_int fp.k;
          string_of_int fp.cut;
          string_of_int ml.Fpart.Driver.k;
          string_of_int ml.Fpart.Driver.cut;
          (if ml.Fpart.Driver.feasible then "yes" else "NO");
          string_of_int m;
        ])
      Mcnc.all
  in
  Table.render
    ~title:
      "Modern baseline: flat FPART vs the multilevel V-cycle engine \
       (coarsen / FPART / uncoarsen+refine) on XC3020"
    ~header:[ "Circuit"; "FPART k"; "cut"; "MLEVEL k"; "cut"; "MLEVEL feas"; "M" ]
    ~align:[ Table.Left ] rows

(* ------------------------------------------------------------------ *)
(* Filling-ratio sweep                                                *)
(* ------------------------------------------------------------------ *)

let sweep_deltas = [ 0.70; 0.80; 0.90; 0.95; 1.00 ]

(* The paper fixes delta = 0.9 for the XC3000 family "to guarantee the
   successful routing by the vendor place and route tool".  This sweep
   shows the cost of that insurance: devices needed as the filling
   ratio varies, on one mid-size circuit. *)
let delta_sweep t =
  let device = Device.xc3020 in
  let c = Option.get (Mcnc.find "s9234") in
  let hg = graph_of t c device.Device.family in
  let rows =
    List.map
      (fun delta ->
        t.progress (Printf.sprintf "delta sweep %.2f ..." delta);
        let config = { Fpart.Config.default with Fpart.Config.delta = Some delta } in
        let r = Fpart.Driver.run ~config hg device in
        [
          Printf.sprintf "%.2f" delta;
          string_of_int (Device.s_max device ~delta);
          string_of_int r.Fpart.Driver.m_lower;
          string_of_int r.Fpart.Driver.k;
          (if r.Fpart.Driver.feasible then "yes" else "NO");
          string_of_int r.Fpart.Driver.cut;
        ])
      sweep_deltas
  in
  Table.render
    ~title:
      (Printf.sprintf
         "Filling-ratio sweep: FPART on %s / %s as delta varies (paper uses 0.90)"
         c.Mcnc.circuit_name device.Device.dev_name)
    ~header:[ "delta"; "S_MAX"; "M"; "k"; "feasible"; "cut" ]
    ~align:[ Table.Left ] rows

(* ------------------------------------------------------------------ *)
(* Simulated annealing                                                *)
(* ------------------------------------------------------------------ *)

let anneal_circuits = [ "c3540"; "s5378"; "s9234"; "s13207" ]

(* FPART vs simulated annealing (the other classical iterative-
   improvement family; the paper's reference [17] is the canonical FM
   vs SA comparison).  At comparable budgets SA reaches feasibility on
   the easy rows but with clearly worse cuts, and falls behind in k on
   the harder ones. *)
let anneal t =
  let device = Device.xc3020 in
  let rows =
    List.map
      (fun c ->
        t.progress (Printf.sprintf "annealing %s ..." c.Mcnc.circuit_name);
        let hg = graph_of t c device.Device.family in
        let fp = run_one t Fpart_algo c device in
        let sa = Anneal.Sa.partition hg device Anneal.Sa.default_config in
        [
          c.Mcnc.circuit_name;
          string_of_int fp.k;
          string_of_int fp.cut;
          string_of_int sa.Anneal.Sa.k;
          string_of_int sa.Anneal.Sa.cut;
          (if sa.Anneal.Sa.feasible then "yes" else "NO");
          Printf.sprintf "%.1f" sa.Anneal.Sa.cpu_seconds;
        ])
      (List.filter_map Mcnc.find anneal_circuits)
  in
  Table.render
    ~title:
      "Simulated annealing vs FPART on XC3020 (the paper's reference [17] \
       comparison class)"
    ~header:[ "Circuit"; "FPART k"; "cut"; "SA k"; "SA cut"; "SA feas"; "SA cpu" ]
    ~align:[ Table.Left ] rows

let all t =
  String.concat "\n"
    [
      table1 t; table2 t; table3 t; table4 t; table5 t; table6 t; figure1 t;
      figure2 t; figure3 t; ablations t; modern t; anneal t; variance t;
      delta_sweep t;
    ]
