(** Regeneration of every table and figure of the paper's evaluation.

    Each [tableN]/[figureN] function runs the required experiments on
    the MCNC surrogates (memoised across tables — Table 6 reuses the
    FPART runs of Tables 2–5) and renders a plain-text report that
    prints our measured columns next to the published ones.  See
    EXPERIMENTS.md for the paper-vs-measured discussion.

    All runs are deterministic; [progress] (default: no output) is
    called with a short status line before each fresh (non-memoised)
    algorithm run. *)

type algo =
  | Fpart_algo   (** This paper's method ({!Fpart.Driver}). *)
  | Kwayx_algo   (** Baseline k-way.x ({!Fpart.Kwayx}). *)
  | Fbb_mw_algo  (** Baseline FBB-MW ({!Flow.Fbb_mw}). *)

(** Which engine carries the {!Fpart_algo} runs: the paper's flat
    driver, or the multilevel V-cycle ({!Mlevel.Engine}).  Baselines
    are unaffected. *)
type engine = Flat | Multilevel

type run = {
  k : int;             (** Devices produced. *)
  feasible : bool;
  cut : int;
  cpu_seconds : float;
}

(** [run_one t algo circuit device] runs (or recalls) one experiment. *)
type t

(** [create ?progress ?jobs ?engine ?refiner ()] makes a fresh memo
    table.  [jobs] (default 1) is the domain budget: with [jobs > 1]
    the device tables, Table 6 and the variance study fan their
    independent algorithm runs out on an {!Fpart_exec.Pool} (created
    lazily, released by {!shutdown}).  [engine] (default {!Flat})
    selects the engine behind every FPART run and [refiner] (default
    [Sanchis_refiner]) its improvement backend.  Every run is
    deterministic, so the rendered tables are identical for every
    [jobs]; only the progress-line order and wall-clock time change.
    @raise Invalid_argument if [jobs < 1]. *)
val create :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?engine:engine ->
  ?refiner:Fpart.Config.refiner ->
  unit ->
  t

(** [shutdown t] joins the worker domains of the lazily created pool, if
    any.  [t] remains usable (a later table re-creates the pool). *)
val shutdown : t -> unit

val run_one : t -> algo -> Netlist.Mcnc.circuit -> Device.t -> run

(** {1 Tables} *)

(** Table 1: benchmark characteristics of the surrogates (IOBs and CLB
    counts match the paper by construction; net statistics are shown to
    document the synthetic structure). *)
val table1 : t -> string

(** Table 2: number of XC3020 devices, measured vs published. *)
val table2 : t -> string

(** Table 3: number of XC3042 devices. *)
val table3 : t -> string

(** Table 4: number of XC3090 devices. *)
val table4 : t -> string

(** Table 5: number of XC2064 devices (δ = 1.0, c-circuits). *)
val table5 : t -> string

(** Table 6: FPART CPU seconds per circuit and device, ours vs the
    paper's SUN Sparc Ultra 5 numbers. *)
val table6 : t -> string

(** {1 Figures} *)

(** Figure 1: the improvement-pass schedule of one FPART run, rendered
    from the driver trace. *)
val figure1 : t -> string

(** Figure 2: feasible / semi-feasible / infeasible solution examples
    with their classifications and infeasibility distances. *)
val figure2 : t -> string

(** Figure 3: the feasible move regions (ε windows) for two-block and
    multi-block passes. *)
val figure3 : t -> string

(** {1 Ablations}

    Not in the paper, but regenerating its design arguments: FPART runs
    with each tuning of sections 3.3-3.7 disabled in turn (2-level
    gains, solution stacks, pass budget, two-block move window,
    deviation penalty) plus the two future-work variants of section 5
    (pin-gain move selection, drift-limited passes), on a subset of
    circuits against XC3020. *)
val ablations : t -> string

(** {1 Machine-readable exports}

    CSV forms of Tables 2-5 (one line per circuit, measured and
    published columns). *)

val csv2 : t -> string

val csv3 : t -> string

val csv4 : t -> string

val csv5 : t -> string

(** {1 Seed variance}

    FPART run over several tie-break seeds per circuit (XC3020):
    min/median/max device counts, showing how representative the
    single-seed tables are. *)
val variance : t -> string

(** {1 Modern baseline}

    Flat FPART vs the multilevel V-cycle engine ({!Mlevel.Engine}) on
    the paper's circuits — at MCNC scale the flat driver usually wins
    or ties (the regime the V-cycle targets starts around 10^5
    cells). *)
val modern : t -> string

(** {1 Filling-ratio sweep}

    Devices needed as the filling ratio δ varies on one circuit — the
    cost of the routing-insurance derating the paper applies
    (δ = 0.9). *)
val delta_sweep : t -> string

(** {1 Simulated annealing}

    FPART vs a feasibility-aware simulated annealer — the comparison
    class of the paper's reference [17]. *)
val anneal : t -> string

(** Every table and figure, concatenated in paper order, then the
    ablations, modern-baseline, annealing and variance studies. *)
val all : t -> string
