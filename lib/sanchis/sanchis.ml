module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Snapshot = Partition.Snapshot
module Stack = Partition.Solution_stack
module Bucket = Gainbucket.Bucket_array
module Obs = Fpart_obs.Metrics

(* Engine workload counters (always on) and the gain distribution of
   the applied moves (recorded only while observability is enabled). *)
let c_improves = Obs.counter "sanchis.improve_calls"
let c_passes = Obs.counter "sanchis.passes"
let c_moves = Obs.counter "sanchis.moves"
let c_rewound = Obs.counter "sanchis.rewound_moves"
let c_restarts = Obs.counter "sanchis.restarts"
let h_move_gain = Obs.histogram "sanchis.move_gain"

type gain_mode = Cut_gain | Pin_gain

type config = {
  gain_levels : int;
  scan_limit : int;
  max_passes : int;
  stack_depth : int;
  gain_mode : gain_mode;
  drift_limit : int option;
  tie_salt : int;
  bucket_discipline : Bucket.discipline;
  on_move : (State.t -> unit) option;
}

let default_config =
  {
    gain_levels = 2;
    scan_limit = 16;
    max_passes = 8;
    stack_depth = 4;
    gain_mode = Cut_gain;
    drift_limit = None;
    tie_salt = 0;
    bucket_discipline = Bucket.Lifo;
    on_move = None;
  }

type spec = {
  active : int array;
  remainder : int option;
  lower : int array;
  upper : int array;
}

type report = {
  best : Cost.value;
  passes_run : int;
  moves_applied : int;
  restarts : int;
}

(* Per-improve-call mutable context shared by all passes. *)
type ctx = {
  st : State.t;
  hg : Hg.t;
  cfg : config;
  spec : spec;
  eval : State.t -> Cost.value;
  nb : int;                     (* number of active blocks *)
  pos : int array;              (* global block -> active index, or -1 *)
  buckets : Bucket.t array;     (* cells; nb*nb, diagonal unused *)
  pad_buckets : Bucket.t array; (* pads: size-neutral, never window-gated *)
  locked : bool array;          (* per node, reset each pass *)
  locked_cnt : int array array; (* net -> per-(global)-block locked pins *)
}

let dir_index ctx ai bi = (ai * ctx.nb) + bi

let make_ctx st spec cfg eval =
  let hg = State.hypergraph st in
  let k = State.k st in
  let nb = Array.length spec.active in
  if nb < 2 then invalid_arg "Sanchis.improve: fewer than two active blocks";
  let pos = Array.make k (-1) in
  Array.iteri
    (fun i b ->
      if b < 0 || b >= k then invalid_arg "Sanchis.improve: block out of range";
      if pos.(b) >= 0 then invalid_arg "Sanchis.improve: repeated active block";
      pos.(b) <- i)
    spec.active;
  if Array.length spec.lower < k || Array.length spec.upper < k then
    invalid_arg "Sanchis.improve: lower/upper must cover all blocks";
  let n = Hg.num_nodes hg in
  let max_gain =
    let d = max 1 (Hg.max_node_degree hg) in
    match cfg.gain_mode with Cut_gain -> d | Pin_gain -> 2 * d
  in
  {
    st;
    hg;
    cfg;
    spec;
    eval;
    nb;
    pos;
    buckets =
      Array.init (nb * nb) (fun _ ->
          Bucket.create ~discipline:cfg.bucket_discipline ~cells:n ~max_gain ());
    pad_buckets =
      Array.init (nb * nb) (fun _ ->
          Bucket.create ~discipline:cfg.bucket_discipline ~cells:n ~max_gain ());
    locked = Array.make n false;
    locked_cnt = Array.init (Hg.num_nets hg) (fun _ -> Array.make k 0);
  }

(* Direction (a -> b) is open when block [a] may still shed size and
   block [b] may still absorb it (block-level test, paper section 3.5:
   buckets are retired as blocks hit the move-region boundary). *)
let direction_open ctx a b =
  State.size_of ctx.st a > ctx.spec.lower.(a)
  && State.size_of ctx.st b < ctx.spec.upper.(b)

(* Exact per-cell size legality (matters for weighted cells).  Pads are
   size-neutral and therefore always legal: on I/O-critical designs the
   terminals must keep migrating even when the size windows have closed
   a direction for logic cells. *)
let cell_legal ctx v b =
  let s = Hg.size ctx.hg v in
  s = 0
  ||
  let a = State.block_of ctx.st v in
  State.size_of ctx.st a - s >= ctx.spec.lower.(a)
  && State.size_of ctx.st b + s <= ctx.spec.upper.(b)

(* Lock-aware level-[i] lookahead gain for moving [v] from [a] to [b]:
   Krishnamurthy's formula (positive when the net frees after [i-1] more
   source-side moves, negative when the move cements a net the other
   side could still have freed), restricted to nets inside a∪b. *)
let level_gain ctx v ~a ~b ~level =
  Array.fold_left
    (fun acc e ->
      let d = Hg.net_degree ctx.hg e in
      let ca = State.net_count ctx.st e a and cb = State.net_count ctx.st e b in
      if ca + cb <> d then acc
      else begin
        let la = ctx.locked_cnt.(e).(a) and lb = ctx.locked_cnt.(e).(b) in
        let acc = if la = 0 && ca = level then acc + 1 else acc in
        if lb = 0 && cb = level - 1 then acc - 1 else acc
      end)
    0 (Hg.nets_of ctx.hg v)

let buckets_for ctx v = if Hg.is_pad ctx.hg v then ctx.pad_buckets else ctx.buckets

(* Primary gain: classical cut gain, or the paper's future-work variant
   that scores moves by the real change in total pin count. *)
let primary_gain ctx v b =
  match ctx.cfg.gain_mode with
  | Cut_gain -> State.cut_gain ctx.st v b
  | Pin_gain -> State.pin_gain ctx.st v b

let insert_cell ctx v =
  let a = State.block_of ctx.st v in
  let ai = ctx.pos.(a) in
  let buckets = buckets_for ctx v in
  Array.iteri
    (fun bi b ->
      if b <> a then
        Bucket.insert buckets.(dir_index ctx ai bi) v (primary_gain ctx v b))
    ctx.spec.active

let remove_cell ctx v =
  let a = State.block_of ctx.st v in
  let ai = ctx.pos.(a) in
  let buckets = buckets_for ctx v in
  for bi = 0 to ctx.nb - 1 do
    if bi <> ai then Bucket.remove buckets.(dir_index ctx ai bi) v
  done

let update_cell ctx v =
  let a = State.block_of ctx.st v in
  let ai = ctx.pos.(a) in
  let buckets = buckets_for ctx v in
  Array.iteri
    (fun bi b ->
      if b <> a then begin
        let bucket = buckets.(dir_index ctx ai bi) in
        if Bucket.mem bucket v then Bucket.update bucket v (primary_gain ctx v b)
      end)
    ctx.spec.active

(* Candidate chosen at one selection round. *)
type candidate = {
  cand_cell : int;
  cand_to : int;
  cand_gain : int;            (* primary gain (the bucket it came from) *)
  cand_lookahead : int list;  (* gains at levels 2..gain_levels *)
  cand_bal : int;
}

let better_candidate ~salt c1 c2 =
  (* g1 equal by construction; compare (lookahead vector desc, balance
     desc, salted id asc — the salt lets multi-start runs break ties
     differently) *)
  match c2 with
  | None -> true
  | Some c2 ->
    if c1.cand_lookahead <> c2.cand_lookahead then
      compare c1.cand_lookahead c2.cand_lookahead > 0
    else if c1.cand_bal <> c2.cand_bal then c1.cand_bal > c2.cand_bal
    else c1.cand_cell lxor salt < c2.cand_cell lxor salt

(* Select the next move.  Scans the top buckets of the open directions
   with the globally highest gain; cells failing the exact size test are
   popped into a stash (reinserted by the caller after the move). *)
let select ctx stash =
  let rec attempt () =
    (* best top gain over open cell directions and all pad directions *)
    let best_gain = ref min_int in
    Array.iteri
      (fun ai a ->
        Array.iteri
          (fun bi b ->
            if b <> a then begin
              let dir = dir_index ctx ai bi in
              if direction_open ctx a b then begin
                match Bucket.top_gain ctx.buckets.(dir) with
                | Some g when g > !best_gain -> best_gain := g
                | Some _ | None -> ()
              end;
              match Bucket.top_gain ctx.pad_buckets.(dir) with
              | Some g when g > !best_gain -> best_gain := g
              | Some _ | None -> ()
            end)
          ctx.spec.active)
      ctx.spec.active;
    if !best_gain = min_int then None
    else begin
      let best = ref None in
      let stashed_this_round = ref false in
      let scan_bucket ~gate_cells ai a bi b bucket =
        if Bucket.top_gain bucket = Some !best_gain then begin
          let scanned =
            Bucket.fold_top bucket ~limit:ctx.cfg.scan_limit ~init:[]
              ~f:(fun acc c -> c :: acc)
          in
          let any_legal = ref false in
          List.iter
            (fun v ->
              if cell_legal ctx v b then begin
                any_legal := true;
                let lookahead =
                  List.init
                    (max 0 (ctx.cfg.gain_levels - 1))
                    (fun i -> level_gain ctx v ~a ~b ~level:(i + 2))
                in
                let bal = State.size_of ctx.st a - State.size_of ctx.st b in
                let c =
                  {
                    cand_cell = v;
                    cand_to = b;
                    cand_gain = !best_gain;
                    cand_lookahead = lookahead;
                    cand_bal = bal;
                  }
                in
                if better_candidate ~salt:ctx.cfg.tie_salt c !best then best := Some c
              end)
            scanned;
          if gate_cells && not !any_legal then begin
            (* whole scanned prefix illegal: pop it so deeper or
               other-gain cells surface next round *)
            List.iter
              (fun v ->
                Bucket.remove bucket v;
                stash := (ai, bi, v, !best_gain) :: !stash)
              scanned;
            stashed_this_round := true
          end
        end
      in
      Array.iteri
        (fun ai a ->
          Array.iteri
            (fun bi b ->
              if b <> a then begin
                let dir = dir_index ctx ai bi in
                if direction_open ctx a b then
                  scan_bucket ~gate_cells:true ai a bi b ctx.buckets.(dir);
                scan_bucket ~gate_cells:false ai a bi b ctx.pad_buckets.(dir)
              end)
            ctx.spec.active)
        ctx.spec.active;
      match !best with
      | Some c -> Some c
      | None -> if !stashed_this_round then attempt () else None
    end
  in
  attempt ()

(* Offered to the solution stacks at improvement points of the first
   execution (section 3.6): semi-feasible solutions in one stack,
   infeasible ones in the other. *)
let offer_to_stacks ~k ~semi ~infeasible snap =
  let f = snap.Snapshot.value.Cost.feasible_blocks in
  if f >= k - 1 then ignore (Stack.offer semi snap)
  else ignore (Stack.offer infeasible snap)

(* One pass.  Returns [(best_value, retained_moves)]; [ctx.st] ends at
   the best prefix.  When [collect] is set, improvement points are
   offered to the stacks. *)
let run_pass ctx ~collect ~semi ~infeasible =
  Obs.incr c_passes;
  let st = ctx.st in
  Array.fill ctx.locked 0 (Array.length ctx.locked) false;
  Array.iter (fun cnt -> Array.fill cnt 0 (Array.length cnt) 0) ctx.locked_cnt;
  Array.iter Bucket.clear ctx.buckets;
  Array.iter Bucket.clear ctx.pad_buckets;
  Hg.iter_nodes
    (fun v -> if ctx.pos.(State.block_of st v) >= 0 then insert_cell ctx v)
    ctx.hg;
  let k = State.k st in
  let best_value = ref (ctx.eval st) in
  let best_prefix = ref 0 in
  let n_moves = ref 0 in
  let trail = ref [] in
  let stash = ref [] in
  let continue = ref true in
  let drifted () =
    match ctx.cfg.drift_limit with
    | None -> false
    | Some limit -> !n_moves - !best_prefix > limit
  in
  while !continue do
    if drifted () then continue := false
    else begin
    stash := [];
    match select ctx stash with
    | None -> continue := false
    | Some { cand_cell = v; cand_to = b; cand_gain; _ } ->
      Obs.incr c_moves;
      Obs.observe h_move_gain (float_of_int cand_gain);
      let a = State.block_of st v in
      remove_cell ctx v;
      State.move st v b;
      ctx.locked.(v) <- true;
      Array.iter
        (fun e -> ctx.locked_cnt.(e).(b) <- ctx.locked_cnt.(e).(b) + 1)
        (Hg.nets_of ctx.hg v);
      trail := (v, a) :: !trail;
      incr n_moves;
      (* Reinsert stashed cells: sizes changed, they may be legal now.
         The chosen cell [v] can itself sit in the stash (stashed from
         one direction, selected from another): locked cells must never
         come back or they would be moved again. *)
      List.iter
        (fun (ai, bi, c, g) ->
          let bucket = ctx.buckets.(dir_index ctx ai bi) in
          if (not ctx.locked.(c)) && not (Bucket.mem bucket c) then
            Bucket.insert bucket c g)
        !stash;
      (* refresh gains of unlocked neighbours *)
      Array.iter
        (fun e ->
          Array.iter
            (fun u ->
              if u <> v && (not ctx.locked.(u)) && ctx.pos.(State.block_of st u) >= 0
              then update_cell ctx u)
            (Hg.pins ctx.hg e))
        (Hg.nets_of ctx.hg v);
      (match ctx.cfg.on_move with None -> () | Some f -> f st);
      let value = ctx.eval st in
      if Cost.compare_value value !best_value < 0 then begin
        best_value := value;
        best_prefix := !n_moves;
        if collect then
          offer_to_stacks ~k ~semi ~infeasible (Snapshot.capture st ~value)
      end
    end
  done;
  (* rewind to the best prefix *)
  let rec rewind i = function
    | [] -> ()
    | (v, a) :: rest ->
      if i > !best_prefix then begin
        State.move st v a;
        rewind (i - 1) rest
      end
  in
  rewind !n_moves !trail;
  Obs.add c_rewound (!n_moves - !best_prefix);
  (!best_value, !best_prefix)

(* A series of passes from the current solution; stops when a pass fails
   to improve the value. *)
let run_execution ctx ~collect ~semi ~infeasible =
  let passes = ref 0 in
  let moves = ref 0 in
  let best = ref (ctx.eval ctx.st) in
  let continue = ref true in
  while !continue && !passes < ctx.cfg.max_passes do
    incr passes;
    let value, retained = run_pass ctx ~collect ~semi ~infeasible in
    moves := !moves + retained;
    if retained = 0 || Cost.compare_value value !best >= 0 then continue := false;
    if Cost.compare_value value !best < 0 then best := value
  done;
  (!best, !passes, !moves)

let improve st ~spec ~config ~eval =
  Obs.incr c_improves;
  let ctx = make_ctx st spec config eval in
  let depth = max config.stack_depth 1 in
  let semi = Stack.create ~depth and infeasible = Stack.create ~depth in
  let collect = config.stack_depth > 0 in
  let value0, passes0, moves0 = run_execution ctx ~collect ~semi ~infeasible in
  let global_best = ref (Snapshot.capture st ~value:value0) in
  let passes = ref passes0 in
  let moves = ref moves0 in
  let restarts = ref 0 in
  if collect then begin
    let try_restart snap =
      (* Skip restarts that coincide with the retained solution. *)
      if not (Snapshot.same_assignment snap !global_best) then begin
        incr restarts;
        Obs.incr c_restarts;
        Snapshot.restore snap st;
        let value, p, m =
          run_execution ctx ~collect:false ~semi ~infeasible
        in
        passes := !passes + p;
        moves := !moves + m;
        if Cost.compare_value value !global_best.Snapshot.value < 0 then
          global_best := Snapshot.capture st ~value
      end
    in
    List.iter try_restart (Stack.contents semi);
    List.iter try_restart (Stack.contents infeasible)
  end;
  Snapshot.restore !global_best st;
  {
    best = !global_best.Snapshot.value;
    passes_run = !passes;
    moves_applied = !moves;
    restarts = !restarts;
  }
