module Hg = Hypergraph.Hgraph
module State = Partition.State
module Cost = Partition.Cost
module Snapshot = Partition.Snapshot
module Stack = Partition.Solution_stack
module Bucket = Gainbucket.Bucket_array
module Dirset = Gainbucket.Direction_set
module Obs = Fpart_obs.Metrics
module Recorder = Fpart_obs.Recorder
module Json = Fpart_obs.Json

(* Engine workload counters (always on) and the gain distribution of
   the applied moves (recorded only while observability is enabled).
   [sanchis.delta.updates] counts bucket entries the incremental engine
   actually relinked; [sanchis.delta.avoided] counts (neighbour,
   direction) pairs whose accumulated delta was zero — each of those
   would have been a full gain recomputation under [Recompute]. *)
let c_improves = Obs.counter "sanchis.improve_calls"
let c_passes = Obs.counter "sanchis.passes"
let c_moves = Obs.counter "sanchis.moves"
let c_rewound = Obs.counter "sanchis.rewound_moves"
let c_restarts = Obs.counter "sanchis.restarts"
let c_delta_updates = Obs.counter "sanchis.delta.updates"
let c_delta_avoided = Obs.counter "sanchis.delta.avoided"
let h_move_gain = Obs.histogram "sanchis.move_gain"


type gain_mode = Cut_gain | Pin_gain
type gain_update = Delta | Recompute

type config = {
  gain_levels : int;
  scan_limit : int;
  max_passes : int;
  stack_depth : int;
  gain_mode : gain_mode;
  gain_update : gain_update;
  drift_limit : int option;
  tie_salt : int;
  bucket_discipline : Bucket.discipline;
  on_move : (State.t -> unit) option;
  on_gain_update : (State.t -> cell:int -> target:int -> gain:int -> unit) option;
}

let default_config =
  {
    gain_levels = 2;
    scan_limit = 16;
    max_passes = 8;
    stack_depth = 4;
    gain_mode = Cut_gain;
    gain_update = Delta;
    drift_limit = None;
    tie_salt = 0;
    bucket_discipline = Bucket.Lifo;
    on_move = None;
    on_gain_update = None;
  }

type spec = {
  active : int array;
  remainder : int option;
  lower : int array;
  upper : int array;
}

type report = {
  best : Cost.value;
  passes_run : int;
  moves_applied : int;
  moves_retained : int;
  restarts : int;
}

(* Per-improve-call mutable context shared by all passes. *)
type ctx = {
  st : State.t;
  hg : Hg.t;
  cfg : config;
  spec : spec;
  eval : State.t -> Cost.value;
  nb : int;                     (* number of active blocks *)
  pos : int array;              (* global block -> active index, or -1 *)
  cells : Dirset.t;             (* cells; nb*nb dirs, diagonal unused *)
  pads : Dirset.t;              (* pads: size-neutral, never window-gated *)
  locked : bool array;          (* per node, reset each pass *)
  locked_cnt : int array array; (* net -> per-(global)-block locked pins *)
  (* Scratch of the delta-gain engine, reused across moves.  The
     [d_*] arrays buffer the changed-nets summary reported by
     [State.move ~on_net]; [touched]/[touch_stamp] record affected
     neighbours in first-incidence order; [delta] accumulates per
     (cell, target-index) gain changes. *)
  d_nets : int array;
  d_ca : int array;
  d_cb : int array;
  d_span : int array;
  mutable d_len : int;
  touched : int array;
  mutable touched_len : int;
  touch_stamp : int array;
  mutable stamp : int;
  delta : int array;            (* cell * nb + target index *)
  (* Telemetry position: which execution of this improve call is
     running, and which pass within it (1-based; see the [pass]
     records in docs/OBSERVABILITY.md). *)
  mutable tel_execution : int;
  mutable tel_pass : int;
}

let dir_index ctx ai bi = (ai * ctx.nb) + bi

let make_ctx st spec cfg eval =
  let hg = State.hypergraph st in
  let k = State.k st in
  let nb = Array.length spec.active in
  if nb < 2 then invalid_arg "Sanchis.improve: fewer than two active blocks";
  let pos = Array.make k (-1) in
  Array.iteri
    (fun i b ->
      if b < 0 || b >= k then invalid_arg "Sanchis.improve: block out of range";
      if pos.(b) >= 0 then invalid_arg "Sanchis.improve: repeated active block";
      pos.(b) <- i)
    spec.active;
  if Array.length spec.lower < k || Array.length spec.upper < k then
    invalid_arg "Sanchis.improve: lower/upper must cover all blocks";
  let n = Hg.num_nodes hg in
  let max_deg = max 1 (Hg.max_node_degree hg) in
  let max_gain =
    match cfg.gain_mode with Cut_gain -> max_deg | Pin_gain -> 2 * max_deg
  in
  {
    st;
    hg;
    cfg;
    spec;
    eval;
    nb;
    pos;
    cells =
      Dirset.create ~discipline:cfg.bucket_discipline ~directions:(nb * nb)
        ~cells:n ~max_gain ();
    pads =
      Dirset.create ~discipline:cfg.bucket_discipline ~directions:(nb * nb)
        ~cells:n ~max_gain ();
    locked = Array.make n false;
    locked_cnt = Array.init (Hg.num_nets hg) (fun _ -> Array.make k 0);
    d_nets = Array.make max_deg 0;
    d_ca = Array.make max_deg 0;
    d_cb = Array.make max_deg 0;
    d_span = Array.make max_deg 0;
    d_len = 0;
    touched = Array.make (max n 1) 0;
    touched_len = 0;
    touch_stamp = Array.make (max n 1) 0;
    stamp = 0;
    delta = Array.make (max (n * nb) 1) 0;
    tel_execution = 0;
    tel_pass = 0;
  }

(* Direction (a -> b) is open when block [a] may still shed size and
   block [b] may still absorb it (block-level test, paper section 3.5:
   buckets are retired as blocks hit the move-region boundary). *)
let direction_open ctx a b =
  State.size_of ctx.st a > ctx.spec.lower.(a)
  && State.size_of ctx.st b < ctx.spec.upper.(b)

(* The open/closed state maps onto the direction set's enabled flags so
   the top index skips closed directions.  Refreshed for every
   direction at pass start and, after each applied move, only for the
   directions touching the two blocks whose sizes changed. *)
let refresh_direction ctx ai bi =
  if ai <> bi then
    Dirset.set_enabled ctx.cells (dir_index ctx ai bi)
      (direction_open ctx ctx.spec.active.(ai) ctx.spec.active.(bi))

let refresh_all_directions ctx =
  for ai = 0 to ctx.nb - 1 do
    for bi = 0 to ctx.nb - 1 do
      refresh_direction ctx ai bi
    done
  done

let refresh_directions_of ctx a b =
  let pa = ctx.pos.(a) and pb = ctx.pos.(b) in
  for i = 0 to ctx.nb - 1 do
    refresh_direction ctx pa i;
    refresh_direction ctx i pa;
    refresh_direction ctx pb i;
    refresh_direction ctx i pb
  done

(* Exact per-cell size legality (matters for weighted cells).  Pads are
   size-neutral and therefore always legal: on I/O-critical designs the
   terminals must keep migrating even when the size windows have closed
   a direction for logic cells. *)
let cell_legal ctx v b =
  let s = Hg.size ctx.hg v in
  s = 0
  ||
  let a = State.block_of ctx.st v in
  State.size_of ctx.st a - s >= ctx.spec.lower.(a)
  && State.size_of ctx.st b + s <= ctx.spec.upper.(b)

(* Lock-aware level-[i] lookahead gain for moving [v] from [a] to [b]:
   Krishnamurthy's formula (positive when the net frees after [i-1] more
   source-side moves, negative when the move cements a net the other
   side could still have freed), restricted to nets inside a∪b. *)
let level_gain ctx v ~a ~b ~level =
  Array.fold_left
    (fun acc e ->
      let d = Hg.net_degree ctx.hg e in
      let ca = State.net_count ctx.st e a and cb = State.net_count ctx.st e b in
      if ca + cb <> d then acc
      else begin
        let la = ctx.locked_cnt.(e).(a) and lb = ctx.locked_cnt.(e).(b) in
        let acc = if la = 0 && ca = level then acc + 1 else acc in
        if lb = 0 && cb = level - 1 then acc - 1 else acc
      end)
    0 (Hg.nets_of ctx.hg v)

let set_for ctx v = if Hg.is_pad ctx.hg v then ctx.pads else ctx.cells

(* Primary gain: classical cut gain, or the paper's future-work variant
   that scores moves by the real change in total pin count. *)
let primary_gain ctx v b =
  match ctx.cfg.gain_mode with
  | Cut_gain -> State.cut_gain ctx.st v b
  | Pin_gain -> State.pin_gain ctx.st v b

let insert_cell ctx v =
  let a = State.block_of ctx.st v in
  let ai = ctx.pos.(a) in
  let set = set_for ctx v in
  Array.iteri
    (fun bi b ->
      if b <> a then
        Dirset.insert set ~dir:(dir_index ctx ai bi) v (primary_gain ctx v b))
    ctx.spec.active

let remove_cell ctx v =
  let a = State.block_of ctx.st v in
  let ai = ctx.pos.(a) in
  let set = set_for ctx v in
  for bi = 0 to ctx.nb - 1 do
    if bi <> ai then Dirset.remove set ~dir:(dir_index ctx ai bi) v
  done

let update_cell ctx v =
  let a = State.block_of ctx.st v in
  let ai = ctx.pos.(a) in
  let set = set_for ctx v in
  Array.iteri
    (fun bi b ->
      if b <> a then begin
        let dir = dir_index ctx ai bi in
        if Dirset.mem set ~dir v then
          Dirset.update set ~dir v (primary_gain ctx v b)
      end)
    ctx.spec.active

(* {2 Delta-gain neighbour update}

   After moving [v]: a → b, only the nets of [v] changed, and for each
   such net only the counts of [a] and [b] and the span (FM's
   critical-net observation).  Pass 1 walks the buffered transitions in
   net order, marks every eligible neighbour the first time it is seen
   and accumulates, per (neighbour, target), the exact per-net gain
   difference [gain_net(after) - gain_net(before)] shared with
   [State.cut_gain]/[pin_gain].  Pass 2 applies each neighbour's total
   delta with one bucket relink per changed direction.

   Bit-identity with [Recompute] relies on ordering: the recompute path
   relinks a neighbour at its {e first} (net, pin) incidence (later
   [update_cell] calls find an equal gain and no-op), with directions in
   ascending active order — exactly the order pass 1 discovers cells
   and pass 2 applies directions.  Delta-zero pairs are skipped, which
   matches [Bucket_array.update]'s equal-gain no-op. *)
let apply_deltas ctx ~v ~a ~b =
  let st = ctx.st in
  let nb = ctx.nb in
  ctx.stamp <- ctx.stamp + 1;
  ctx.touched_len <- 0;
  for i = 0 to ctx.d_len - 1 do
    let e = ctx.d_nets.(i) in
    let ca = ctx.d_ca.(i) and cb = ctx.d_cb.(i) and span = ctx.d_span.(i) in
    let span' =
      span - (if ca = 1 then 1 else 0) + (if cb = 0 then 1 else 0)
    in
    (* Quiet net: in cut mode a net spanning ≥ 3 blocks before and
       after the move contributes 0 to every neighbour gain in both
       states, so the arithmetic is skipped — but its pins are still
       marked, because first-incidence ordering is what keeps the
       bucket layout identical to the recompute path. *)
    let quiet =
      match ctx.cfg.gain_mode with
      | Cut_gain -> span >= 3 && span' >= 3
      | Pin_gain -> false
    in
    let pad = Hg.net_has_pad ctx.hg e in
    Array.iter
      (fun u ->
        if u <> v && (not ctx.locked.(u)) && ctx.pos.(State.block_of st u) >= 0
        then begin
          if ctx.touch_stamp.(u) <> ctx.stamp then begin
            ctx.touch_stamp.(u) <- ctx.stamp;
            ctx.touched.(ctx.touched_len) <- u;
            ctx.touched_len <- ctx.touched_len + 1
          end;
          if not quiet then begin
            let x = State.block_of st u in
            (* counts of blocks other than a/b are untouched by the
               move, so the post-move state still holds their old
               values *)
            let fx_old =
              if x = a then ca
              else if x = b then cb
              else State.net_count st e x
            in
            let fx_new =
              if x = a then ca - 1 else if x = b then cb + 1 else fx_old
            in
            let base = u * nb in
            let accum yi ty_old ty_new =
              let g_old, g_new =
                match ctx.cfg.gain_mode with
                | Cut_gain ->
                  ( State.cut_gain_net ~from_cnt:fx_old ~to_cnt:ty_old ~span,
                    State.cut_gain_net ~from_cnt:fx_new ~to_cnt:ty_new
                      ~span:span' )
                | Pin_gain ->
                  ( State.pin_gain_net ~pad ~from_cnt:fx_old ~to_cnt:ty_old
                      ~span,
                    State.pin_gain_net ~pad ~from_cnt:fx_new ~to_cnt:ty_new
                      ~span:span' )
              in
              if g_new <> g_old then
                ctx.delta.(base + yi) <- ctx.delta.(base + yi) + g_new - g_old
            in
            if span' <> span || x = a || x = b then
              (* the source count or the span changed: every direction
                 of [u] can shift *)
              for yi = 0 to nb - 1 do
                let y = ctx.spec.active.(yi) in
                if y <> x then begin
                  let ty_old =
                    if y = a then ca
                    else if y = b then cb
                    else State.net_count st e y
                  in
                  let ty_new =
                    if y = a then ca - 1
                    else if y = b then cb + 1
                    else ty_old
                  in
                  accum yi ty_old ty_new
                end
              done
            else begin
              (* critical-net fast path: with the span and [u]'s own
                 count untouched, only the targets whose counts moved —
                 [a] and [b] — can change [u]'s gains *)
              accum ctx.pos.(a) ca (ca - 1);
              accum ctx.pos.(b) cb (cb + 1)
            end
          end
        end)
      (Hg.pins ctx.hg e)
  done;
  let avoided = ref 0 and updates = ref 0 in
  for ti = 0 to ctx.touched_len - 1 do
    let u = ctx.touched.(ti) in
    let x = State.block_of st u in
    let xi = ctx.pos.(x) in
    let set = set_for ctx u in
    let base = u * nb in
    for yi = 0 to nb - 1 do
      if yi <> xi then begin
        let d = ctx.delta.(base + yi) in
        if d = 0 then incr avoided
        else begin
          ctx.delta.(base + yi) <- 0;
          let dir = dir_index ctx xi yi in
          if Dirset.mem set ~dir u then begin
            let g = Dirset.gain_of set ~dir u + d in
            Dirset.update set ~dir u g;
            incr updates;
            match ctx.cfg.on_gain_update with
            | None -> ()
            | Some f -> f st ~cell:u ~target:ctx.spec.active.(yi) ~gain:g
          end
        end
      end
    done
  done;
  Obs.add c_delta_avoided !avoided;
  Obs.add c_delta_updates !updates

(* Candidate chosen at one selection round. *)
type candidate = {
  cand_cell : int;
  cand_to : int;
  cand_gain : int;            (* primary gain (the bucket it came from) *)
  cand_lookahead : int list;  (* gains at levels 2..gain_levels *)
  cand_bal : int;
}

let better_candidate ~salt c1 c2 =
  (* g1 equal by construction; compare (lookahead vector desc, balance
     desc, salted id asc — the salt lets multi-start runs break ties
     differently) *)
  match c2 with
  | None -> true
  | Some c2 ->
    if c1.cand_lookahead <> c2.cand_lookahead then
      compare c1.cand_lookahead c2.cand_lookahead > 0
    else if c1.cand_bal <> c2.cand_bal then c1.cand_bal > c2.cand_bal
    else c1.cand_cell lxor salt < c2.cand_cell lxor salt

(* Select the next move.  The direction sets' top indices give the
   globally best gain and the tied directions in O(tied) — no nb²
   rescan per round.  Directions are visited in ascending (a-index,
   b-index) order with a direction's cell bucket before its pad bucket,
   replicating the historical nested scan.  Cells failing the exact
   size test are popped into a stash (reinserted by the caller after
   the move). *)
let select ctx stash =
  let rec attempt () =
    let cg = Dirset.best_gain ctx.cells and pg = Dirset.best_gain ctx.pads in
    match (cg, pg) with
    | None, None -> None
    | _ ->
      let best_gain =
        match (cg, pg) with
        | Some a, Some b -> max a b
        | Some g, None | None, Some g -> g
        | None, None -> assert false
      in
      let cell_dirs =
        if cg = Some best_gain then Dirset.best_dirs ctx.cells else []
      in
      let pad_dirs =
        if pg = Some best_gain then Dirset.best_dirs ctx.pads else []
      in
      let best = ref None in
      let stashed_this_round = ref false in
      let scan_bucket ~gate_cells dir =
        let ai = dir / ctx.nb and bi = dir mod ctx.nb in
        let a = ctx.spec.active.(ai) and b = ctx.spec.active.(bi) in
        let set = if gate_cells then ctx.cells else ctx.pads in
        let scanned =
          Bucket.fold_top (Dirset.bucket set dir) ~limit:ctx.cfg.scan_limit
            ~init:[] ~f:(fun acc c -> c :: acc)
        in
        let any_legal = ref false in
        List.iter
          (fun v ->
            if cell_legal ctx v b then begin
              any_legal := true;
              let lookahead =
                List.init
                  (max 0 (ctx.cfg.gain_levels - 1))
                  (fun i -> level_gain ctx v ~a ~b ~level:(i + 2))
              in
              let bal = State.size_of ctx.st a - State.size_of ctx.st b in
              let c =
                {
                  cand_cell = v;
                  cand_to = b;
                  cand_gain = best_gain;
                  cand_lookahead = lookahead;
                  cand_bal = bal;
                }
              in
              if better_candidate ~salt:ctx.cfg.tie_salt c !best then
                best := Some c
            end)
          scanned;
        if gate_cells && not !any_legal then begin
          (* whole scanned prefix illegal: pop it so deeper or
             other-gain cells surface next round *)
          List.iter
            (fun v ->
              Dirset.remove set ~dir v;
              stash := (dir, v, best_gain) :: !stash)
            scanned;
          stashed_this_round := true
        end
      in
      let rec merge cds pds =
        match (cds, pds) with
        | [], [] -> ()
        | c :: ct, [] ->
          scan_bucket ~gate_cells:true c;
          merge ct []
        | [], p :: pt ->
          scan_bucket ~gate_cells:false p;
          merge [] pt
        | c :: ct, p :: pt ->
          if c <= p then begin
            scan_bucket ~gate_cells:true c;
            merge ct pds
          end
          else begin
            scan_bucket ~gate_cells:false p;
            merge cds pt
          end
      in
      merge cell_dirs pad_dirs;
      (match !best with
      | Some c -> Some c
      | None -> if !stashed_this_round then attempt () else None)
  in
  attempt ()

(* Offered to the solution stacks at improvement points of the first
   execution (section 3.6): semi-feasible solutions in one stack,
   infeasible ones in the other. *)
let offer_to_stacks ~k ~semi ~infeasible snap =
  let f = snap.Snapshot.value.Cost.feasible_blocks in
  if f >= k - 1 then ignore (Stack.offer semi snap)
  else ignore (Stack.offer infeasible snap)

(* Pass-start bucket build: every active node inserted with fresh gains
   in every direction, locks and lock counts cleared. *)
let fill_buckets ctx =
  let st = ctx.st in
  Array.fill ctx.locked 0 (Array.length ctx.locked) false;
  Array.iter (fun cnt -> Array.fill cnt 0 (Array.length cnt) 0) ctx.locked_cnt;
  Dirset.clear ctx.cells;
  Dirset.clear ctx.pads;
  Hg.iter_nodes
    (fun v -> if ctx.pos.(State.block_of st v) >= 0 then insert_cell ctx v)
    ctx.hg;
  refresh_all_directions ctx

(* Apply the move [v] -> [b]: pop [v] from its buckets, update the
   state (buffering the changed-nets summary when the delta engine is
   on), lock, and retire any directions the size change closed.
   Returns the source block. *)
let apply_move ctx v b =
  let st = ctx.st in
  let a = State.block_of st v in
  remove_cell ctx v;
  (match ctx.cfg.gain_update with
  | Recompute -> State.move st v b
  | Delta ->
    ctx.d_len <- 0;
    State.move st v b ~on_net:(fun e ~ca ~cb ~span ->
        let i = ctx.d_len in
        ctx.d_nets.(i) <- e;
        ctx.d_ca.(i) <- ca;
        ctx.d_cb.(i) <- cb;
        ctx.d_span.(i) <- span;
        ctx.d_len <- i + 1));
  ctx.locked.(v) <- true;
  Array.iter
    (fun e -> ctx.locked_cnt.(e).(b) <- ctx.locked_cnt.(e).(b) + 1)
    (Hg.nets_of ctx.hg v);
  refresh_directions_of ctx a b;
  a

(* Refresh the gains of the unlocked neighbours of [v] after its move
   [a] -> [b], through the configured maintenance path. *)
let refresh_neighbours ctx ~v ~a ~b =
  match ctx.cfg.gain_update with
  | Delta -> apply_deltas ctx ~v ~a ~b
  | Recompute ->
    let st = ctx.st in
    Array.iter
      (fun e ->
        Array.iter
          (fun u ->
            if
              u <> v
              && (not ctx.locked.(u))
              && ctx.pos.(State.block_of st u) >= 0
            then update_cell ctx u)
          (Hg.pins ctx.hg e))
      (Hg.nets_of ctx.hg v)

(* One pass.  Returns [(best_value, retained_moves, applied_moves)];
   [ctx.st] ends at the best prefix.  When [collect] is set,
   improvement points are offered to the stacks. *)
let run_pass ctx ~collect ~semi ~infeasible =
  Obs.incr c_passes;
  ctx.tel_pass <- ctx.tel_pass + 1;
  let st = ctx.st in
  fill_buckets ctx;
  let k = State.k st in
  let telemetry = Obs.enabled () in
  let cut_before = if telemetry then State.cut_size st else 0 in
  let best_value = ref (ctx.eval st) in
  let value_before = !best_value in
  let best_prefix = ref 0 in
  let n_moves = ref 0 in
  let gain_sum = ref 0 in
  let rev_curve = ref [] in
  let trail = ref [] in
  let stash = ref [] in
  let continue = ref true in
  let drifted () =
    match ctx.cfg.drift_limit with
    | None -> false
    | Some limit -> !n_moves - !best_prefix > limit
  in
  while !continue do
    if drifted () then continue := false
    else begin
    stash := [];
    match select ctx stash with
    | None -> continue := false
    | Some { cand_cell = v; cand_to = b; cand_gain; _ } ->
      Obs.incr c_moves;
      Obs.observe h_move_gain (float_of_int cand_gain);
      if telemetry then begin
        gain_sum := !gain_sum + cand_gain;
        rev_curve := !gain_sum :: !rev_curve
      end;
      let a = apply_move ctx v b in
      trail := (v, a) :: !trail;
      incr n_moves;
      (* Reinsert stashed cells: sizes changed, they may be legal now.
         The chosen cell [v] can itself sit in the stash (stashed from
         one direction, selected from another): locked cells must never
         come back or they would be moved again.  Reinsertion happens
         before the neighbour update so every unlocked active cell is
         back in its buckets when the gains are adjusted. *)
      List.iter
        (fun (dir, c, g) ->
          if (not ctx.locked.(c)) && not (Dirset.mem ctx.cells ~dir c) then
            Dirset.insert ctx.cells ~dir c g)
        !stash;
      refresh_neighbours ctx ~v ~a ~b;
      (match ctx.cfg.on_move with None -> () | Some f -> f st);
      let value = ctx.eval st in
      if Cost.compare_value value !best_value < 0 then begin
        best_value := value;
        best_prefix := !n_moves;
        if collect then
          offer_to_stacks ~k ~semi ~infeasible (Snapshot.capture st ~value)
      end
    end
  done;
  (* rewind to the best prefix *)
  let rec rewind i = function
    | [] -> ()
    | (v, a) :: rest ->
      if i > !best_prefix then begin
        State.move st v a;
        rewind (i - 1) rest
      end
  in
  rewind !n_moves !trail;
  Obs.add c_rewound (!n_moves - !best_prefix);
  if telemetry then begin
    (* Gain-prefix curve, downsampled to ≤ 128 points (every
       [curve_stride]-th cumulative gain, last move always kept) so a
       long pass stays a small record. *)
    let curve = Array.of_list (List.rev !rev_curve) in
    let n = Array.length curve in
    let stride = max 1 ((n + 127) / 128) in
    let sampled = ref [] in
    for i = n - 1 downto 0 do
      if (i + 1) mod stride = 0 || i = n - 1 then
        sampled := Json.Int curve.(i) :: !sampled
    done;
    Recorder.event
      [
        ("type", Json.Str "pass");
        ("execution", Json.Int ctx.tel_execution);
        ("pass", Json.Int ctx.tel_pass);
        ("moves", Json.Int !n_moves);
        ("best_prefix", Json.Int !best_prefix);
        ("cut_before", Json.Int cut_before);
        ("cut_after", Json.Int (State.cut_size st));
        ("value_before", Cost.value_to_json value_before);
        ("value_after", Cost.value_to_json !best_value);
        ("curve_stride", Json.Int stride);
        ("gain_curve", Json.List !sampled);
      ]
  end;
  (!best_value, !best_prefix, !n_moves)

(* A series of passes from the current solution; stops when a pass fails
   to improve the value. *)
let run_execution ctx ~collect ~semi ~infeasible =
  ctx.tel_execution <- ctx.tel_execution + 1;
  ctx.tel_pass <- 0;
  let passes = ref 0 in
  let applied = ref 0 in
  let retained = ref 0 in
  let best = ref (ctx.eval ctx.st) in
  let continue = ref true in
  while !continue && !passes < ctx.cfg.max_passes do
    incr passes;
    let value, kept, moved = run_pass ctx ~collect ~semi ~infeasible in
    applied := !applied + moved;
    retained := !retained + kept;
    if kept = 0 || Cost.compare_value value !best >= 0 then continue := false;
    if Cost.compare_value value !best < 0 then best := value
  done;
  (!best, !passes, !applied, !retained)

let improve st ~spec ~config ~eval =
  Obs.incr c_improves;
  let ctx = make_ctx st spec config eval in
  let depth = max config.stack_depth 1 in
  let semi = Stack.create ~depth and infeasible = Stack.create ~depth in
  let collect = config.stack_depth > 0 in
  let value0, passes0, applied0, retained0 =
    run_execution ctx ~collect ~semi ~infeasible
  in
  let global_best = ref (Snapshot.capture st ~value:value0) in
  let passes = ref passes0 in
  let applied = ref applied0 in
  let retained = ref retained0 in
  let restarts = ref 0 in
  if collect then begin
    let try_restart snap =
      (* Skip restarts that coincide with the retained solution. *)
      if not (Snapshot.same_assignment snap !global_best) then begin
        incr restarts;
        Obs.incr c_restarts;
        Snapshot.restore snap st;
        let value, p, m, r =
          run_execution ctx ~collect:false ~semi ~infeasible
        in
        passes := !passes + p;
        applied := !applied + m;
        retained := !retained + r;
        if Cost.compare_value value !global_best.Snapshot.value < 0 then
          global_best := Snapshot.capture st ~value
      end
    in
    List.iter try_restart (Stack.contents semi);
    List.iter try_restart (Stack.contents infeasible)
  end;
  Snapshot.restore !global_best st;
  {
    best = !global_best.Snapshot.value;
    passes_run = !passes;
    moves_applied = !applied;
    moves_retained = !retained;
    restarts = !restarts;
  }

(* {2 Gain-maintenance benchmark driver}

   Applies a scripted, selection-free move sequence through the real
   per-move machinery — bucket pop, [State.move], locking, direction
   retirement and the configured neighbour-gain refresh — so the wall
   clock measures gain maintenance without the selection, lookahead,
   evaluation and rewind costs that an [improve] run shares between
   both [gain_update] modes.  Cells are visited in id order with a
   seed-rotated target; a pass ends when every movable cell is locked
   or illegal, and the buckets are rebuilt for the next pass.  The
   script depends only on (state, spec, seed), never on the gain
   values, so [Delta] and [Recompute] apply bit-identical sequences.
   Returns the applied move count and the seconds spent inside the
   neighbour refresh itself: the scripted walk, bucket rebuilds and
   [State.move] are identical setup work in both modes, so only the
   refresh belongs in the subsystem's clock. *)
let drive_gain_maintenance st ~spec ~config ~moves ~seed =
  let ctx = make_ctx st spec config (fun _ -> assert false) in
  let n = Hg.num_nodes ctx.hg in
  let nb = ctx.nb in
  let applied = ref 0 in
  let refresh_s = ref 0.0 in
  let progress = ref true in
  while !applied < moves && !progress do
    progress := false;
    fill_buckets ctx;
    let v = ref 0 in
    while !applied < moves && !v < n do
      let u = !v in
      let a = State.block_of st u in
      if (not ctx.locked.(u)) && ctx.pos.(a) >= 0 then begin
        let bi =
          (ctx.pos.(a) + 1 + ((seed + !applied) mod (nb - 1))) mod nb
        in
        let b = ctx.spec.active.(bi) in
        if b <> a && cell_legal ctx u b then begin
          let a = apply_move ctx u b in
          let t0 = Fpart_obs.Clock.now () in
          refresh_neighbours ctx ~v:u ~a ~b;
          refresh_s := !refresh_s +. (Fpart_obs.Clock.now () -. t0);
          incr applied;
          progress := true
        end
      end;
      incr v
    done
  done;
  (!applied, !refresh_s)
