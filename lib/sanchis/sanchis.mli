(** Multi-way iterative improvement à la Sanchis, tuned as in the paper.

    This is the engine behind every [Improve()] call of Algorithm 1.  It
    moves nodes between the {e active} blocks of a partition state,
    selecting moves by classical cut gain with the paper's refinements
    (sections 3.5–3.7):

    - one gain bucket per move direction ([k·(k-1)] buckets over the
      active blocks), retired while a block sits on the boundary of its
      feasible move region;
    - Krishnamurthy-style lookahead gains (level 2 by default, deeper
      configurable) as first tie-break, computed lock-aware and
      restricted to nets fully contained in the direction's two blocks
      (exact for two-block passes, a documented heuristic for
      multi-block passes);
    - size balance [MAX (S_FROM - S_TO)] as second tie-break, which
      systematically prefers moves {e out of} the remainder;
    - per-move solution evaluation by the caller-supplied cost (the
      lexicographic tuple of section 3.4), with rewind to the best
      prefix at the end of each pass;
    - dual semi-feasible / infeasible solution stacks (section 3.6):
      the first execution collects restart candidates, then a series of
      passes restarts from every stacked solution, and the best solution
      over all executions wins. *)

(** What the primary (bucket) gain measures. *)
type gain_mode =
  | Cut_gain  (** Classical FM: nets removed from the cut (the paper's
                  published configuration). *)
  | Pin_gain  (** The paper's future-work variant: the real decrease in
                  total pin count, which couples move selection directly
                  to the I/O constraint. *)

(** How neighbour gains are maintained after an applied move. *)
type gain_update =
  | Delta
      (** Incremental critical-net updates: [State.move] reports the
          per-net (count, span) transitions and only the affected
          (neighbour, direction) bucket entries are adjusted by exact
          per-net deltas.  Bit-identical to [Recompute] — same gains,
          same bucket order, same selected moves — at a fraction of the
          cost.  The default. *)
  | Recompute
      (** Escape hatch: recompute every neighbour's gain towards every
          active block from scratch (the historical behaviour),
          O(degree) per neighbour per direction. *)

type config = {
  gain_levels : int;
      (** Depth of the Krishnamurthy lookahead used as tie-break:
          1 = classical FM (no lookahead), 2 = the paper's published
          configuration, 3+ = deeper lookahead (which reference [7] of
          the paper found not to pay for itself — see the ablations). *)
  scan_limit : int;    (** Bound on tie-break scans per bucket (≥ 1). *)
  max_passes : int;    (** Pass budget per execution (≥ 1). *)
  stack_depth : int;   (** [D_stack]; 0 disables stack restarts. *)
  gain_mode : gain_mode;
  gain_update : gain_update;
  drift_limit : int option;
      (** The paper's second future-work idea: abort a pass after this
          many consecutive moves without improving on the pass best
          (time otherwise wasted deep in the infeasible region).
          [None] (published behaviour) never aborts early. *)
  tie_salt : int;
      (** XOR salt applied to cell ids in the final deterministic
          tie-break: different salts explore different (equally good)
          move orders, which is what makes multi-start runs diverge.
          0 = plain id order. *)
  bucket_discipline : Gainbucket.Bucket_array.discipline;
      (** LIFO (published default) or FIFO gain buckets — one of the
          classical FM parameters of the paper's section 1. *)
  on_move : (Partition.State.t -> unit) option;
      (** Hook invoked after every applied move (state already updated,
          before evaluation).  [None] (default) costs nothing; the
          paranoid self-check level installs a per-move validator here.
          The hook must not mutate the state. *)
  on_gain_update : (Partition.State.t -> cell:int -> target:int -> gain:int -> unit) option;
      (** Hook invoked for every bucket gain the {!Delta} engine
          adjusts: [cell]'s gain towards global block [target] became
          [gain].  The paranoid self-check level cross-checks each
          against the reference oracle.  Never fired under
          {!Recompute}.  Must not mutate the state. *)
}

(** Paper values: gain levels 2, scan limit 16, 8 passes per execution,
    stack depth 4, cut gain, delta updates, no drift limit, salt 0, no
    hooks. *)
val default_config : config

(** Which blocks take part, and the per-block size windows of the
    feasible move region.  [lower]/[upper] are indexed by {e global}
    block index; only entries of active blocks are read.  Use [0] /
    [max_int] to leave a side unconstrained (the remainder block). *)
type spec = {
  active : int array;      (** Global indices of participating blocks. *)
  remainder : int option;  (** Which active block is the remainder, if any. *)
  lower : int array;       (** Minimum block size for moves {e out}. *)
  upper : int array;       (** Maximum block size for moves {e in}. *)
}

type report = {
  best : Partition.Cost.value;  (** Value of the retained solution. *)
  passes_run : int;             (** Total passes over all executions. *)
  moves_applied : int;
      (** Every applied move, including later-rewound ones — the same
          events the [sanchis.moves] counter ticks. *)
  moves_retained : int;
      (** Moves surviving the rewind to each pass's best prefix
          (≤ [moves_applied]). *)
  restarts : int;               (** Stack restarts performed. *)
}

(** [improve st ~spec ~config ~eval] mutates [st] to the best solution
    found.  [eval st] must return the solution value used for ranking —
    callers build it from {!Partition.Cost.evaluate} so that the tuple
    [(f, d_k, T_SUM, d_k^E)] drives the search.  Nodes outside active
    blocks never move.

    @raise Invalid_argument if [spec.active] has fewer than two blocks,
    repeats a block, or indexes out of range. *)
val improve :
  Partition.State.t ->
  spec:spec ->
  config:config ->
  eval:(Partition.State.t -> Partition.Cost.value) ->
  report


(** [drive_gain_maintenance st ~spec ~config ~moves ~seed] is the
    benchmark driver for the neighbour-gain maintenance subsystem (see
    docs/PERFORMANCE.md).  It applies up to [moves] scripted moves
    through the engine's real per-move machinery — bucket pop,
    {!Partition.State.move}, locking, direction retirement and the
    configured [config.gain_update] refresh — but performs no
    selection, lookahead, evaluation or rewinding, and clocks only
    the neighbour refresh, so the returned time compares [Delta] and
    [Recompute] on gain maintenance alone.  The move script depends
    only on [(st, spec, seed)], never on gain values: both modes apply
    bit-identical sequences.  Mutates [st]; returns
    [(applied, refresh_seconds)] — the number of moves actually applied
    (the script stops early once no cell has a legal scripted move) and
    the seconds spent inside the configured gain refresh.

    @raise Invalid_argument on the same [spec] errors as {!improve}. *)
val drive_gain_maintenance :
  Partition.State.t ->
  spec:spec ->
  config:config ->
  moves:int ->
  seed:int ->
  int * float
