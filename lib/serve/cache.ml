type t = {
  tbl : (string, Protocol.success) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

let key ~netlist_digest ~device ~config_digest ~runs =
  Printf.sprintf "%s|%s|%s|%d" netlist_digest device config_digest runs

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some s ->
    t.hits <- t.hits + 1;
    Some s
  | None ->
    t.misses <- t.misses + 1;
    None

let add t k s = Hashtbl.replace t.tbl k s

let hits t = t.hits

let misses t = t.misses

let size t = Hashtbl.length t.tbl
