type t = {
  tbl : (string, Protocol.success) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable bytes_est : int;
}

let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0; bytes_est = 0 }

let key ~netlist_digest ~device ~config_digest ~runs =
  Printf.sprintf "%s|%s|%s|%d" netlist_digest device config_digest runs

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some s ->
    t.hits <- t.hits + 1;
    Some s
  | None ->
    t.misses <- t.misses + 1;
    None

(* Estimated retained bytes of one entry: the key, the dominant string
   payloads of the success record, and a flat allowance for the record,
   the hashtable bucket and the small fixed fields.  An estimate is
   enough — the gauge exists so an unbounded cache is visible, not to
   account the heap exactly. *)
let entry_cost k (s : Protocol.success) =
  String.length k
  + String.length s.Protocol.partition
  + String.length s.Protocol.netlist_digest
  + String.length s.Protocol.config_digest
  + String.length s.Protocol.cache
  + String.length s.Protocol.mode
  + 160

let add t k s =
  (match Hashtbl.find_opt t.tbl k with
  | Some old -> t.bytes_est <- t.bytes_est - entry_cost k old
  | None -> ());
  Hashtbl.replace t.tbl k s;
  t.bytes_est <- t.bytes_est + entry_cost k s

let hits t = t.hits

let misses t = t.misses

let size t = Hashtbl.length t.tbl

let bytes_est t = t.bytes_est
